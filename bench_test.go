package datalink

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/blocking"
	"repro/internal/linkage"
	"repro/internal/rdf"
	"repro/internal/segment"
	"repro/internal/similarity"
	"repro/internal/store"
)

// Benchmarks cover every experiment of DESIGN.md's index (E1-E6) plus the
// hot paths underneath them. Experiment benches run on the small-scale
// corpus so `go test -bench=.` stays fast; the CLI (`linkrules`)
// regenerates the paper-scale numbers.

var (
	benchOnce   sync.Once
	benchCorpus *Corpus
	benchErr    error
)

func corpusForBench(b *testing.B) *Corpus {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := GenerateCorpus(SmallCorpusConfig(77))
		if err != nil {
			benchErr = err
			return
		}
		benchCorpus, benchErr = BuildCorpus(ds, LearnerConfig{})
	})
	if benchErr != nil {
		b.Fatalf("building bench corpus: %v", benchErr)
	}
	return benchCorpus
}

// BenchmarkTable1 regenerates the paper's Table 1 (experiment E1).
func BenchmarkTable1(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := Table1(c, PaperBands())
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkSectionStats measures the full learning run that produces the
// Section 5 corpus statistics (experiment E2).
func BenchmarkSectionStats(b *testing.B) {
	c := corpusForBench(b)
	ds := c.Dataset
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Learn(LearnerConfig{Properties: []Term{PartNumberProperty}},
			ds.Training, ds.External, ds.Local, ds.Ontology)
		if err != nil {
			b.Fatal(err)
		}
		if m.Stats.RuleCount == 0 {
			b.Fatal("no rules")
		}
	}
}

// BenchmarkSpaceReduction computes the per-band space reduction
// (experiment E3).
func BenchmarkSpaceReduction(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := SpaceReduction(c, PaperBands())
		if len(rows) != 4 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkBlockingComparison runs the candidate-generation comparison
// (experiment E4).
func BenchmarkBlockingComparison(b *testing.B) {
	c := corpusForBench(b)
	methods := DefaultBlockingMethods(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := CompareBlocking(c, methods)
		if len(rows) != len(methods) {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkThresholdSweep relearns across support thresholds
// (experiment E5a).
func BenchmarkThresholdSweep(b *testing.B) {
	c := corpusForBench(b)
	ths := []float64{0.005, 0.02, 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ThresholdSweep(c.Dataset, LearnerConfig{}, ths); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitterAblation relearns with separator vs n-gram splitting
// (experiment E5b).
func BenchmarkSplitterAblation(b *testing.B) {
	c := corpusForBench(b)
	sps := []Splitter{
		NewSeparatorSplitter(SplitterOptions{}),
		NewNGramSplitter(3, false, SplitterOptions{}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitterAblation(c.Dataset, LearnerConfig{}, sps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderingAblation replays decisions under alternative rule
// orderings (experiment E5c).
func BenchmarkOrderingAblation(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := OrderingAblation(c)
		if len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkGeneralization runs the subsumption-generalization experiment
// (experiment E6).
func BenchmarkGeneralization(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := GeneralizationExperiment(c)
		if len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkCrossValidate runs the k-fold held-out evaluation
// (experiment E7).
func BenchmarkCrossValidate(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(c.Dataset, LearnerConfig{}, 3, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifyItem measures single-item classification, the
// per-document cost at integration time.
func BenchmarkClassifyItem(b *testing.B) {
	c := corpusForBench(b)
	values := map[Term][]string{
		PartNumberProperty: {"CRCW0805-63V-ohm-Q7"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classifier.ClassifyValues(values)
	}
}

// BenchmarkGenerateCorpus measures corpus synthesis.
func BenchmarkGenerateCorpus(b *testing.B) {
	cfg := SmallCorpusConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := GenerateCorpus(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkSeparatorSplit(b *testing.B) {
	sp := segment.NewSeparatorSplitter(segment.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Split("CRCW0805-63V ohm/T83.SMD_220uF")
	}
}

func BenchmarkNGramSplit(b *testing.B) {
	sp := segment.NewNGramSplitter(3, true, segment.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Split("CRCW0805-63V ohm/T83.SMD_220uF")
	}
}

func BenchmarkGraphAdd(b *testing.B) {
	p := rdf.NewIRI("http://ex.org/p")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := rdf.NewGraph()
		for j := 0; j < 100; j++ {
			s := rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", j))
			g.Add(rdf.T(s, p, rdf.NewLiteral(fmt.Sprintf("v%d", j))))
		}
	}
}

func BenchmarkGraphMatch(b *testing.B) {
	g := rdf.NewGraph()
	p := rdf.NewIRI("http://ex.org/p")
	for j := 0; j < 1000; j++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", j%50))
		g.Add(rdf.T(s, p, rdf.NewLiteral(fmt.Sprintf("v%d", j))))
	}
	s25 := rdf.NewIRI("http://ex.org/s25")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.Match(s25, p, rdf.Term{}, func(rdf.Triple) bool { n++; return true })
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkNTriplesRoundTrip(b *testing.B) {
	g := rdf.NewGraph()
	for j := 0; j < 500; j++ {
		g.Add(rdf.T(
			rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", j)),
			rdf.NewIRI("http://ex.org/p"),
			rdf.NewLiteral(fmt.Sprintf("value %d with text", j)),
		))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := rdf.WriteNTriples(&buf, g); err != nil {
			b.Fatal(err)
		}
		if _, err := rdf.ReadNTriples(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- linkage engine benchmarks (tentpole of the parallel value-indexed
// engine): the legacy per-pair graph-lookup path vs the indexed engine,
// serial and parallel. ---

// linkageBenchFixture builds a part-number-shaped workload: two graphs,
// a candidate pair list and the engine config.
func linkageBenchFixture(nExt, nLoc, candsPer int) (se, sl *rdf.Graph, pairs [][2]rdf.Term, cfg linkage.Config) {
	rng := rand.New(rand.NewSource(99))
	se, sl = rdf.NewGraph(), rdf.NewGraph()
	pnProp := rdf.NewIRI("http://ex.org/pn")
	labelProp := rdf.NewIRI("http://ex.org/label")
	randPN := func() string {
		return fmt.Sprintf("CRCW%04d-%dV-%c%d", rng.Intn(1000), rng.Intn(64), 'A'+rune(rng.Intn(26)), rng.Intn(10))
	}
	ext := make([]rdf.Term, nExt)
	loc := make([]rdf.Term, nLoc)
	for i := range ext {
		ext[i] = rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i))
		se.Add(rdf.T(ext[i], pnProp, rdf.NewLiteral(randPN())))
		se.Add(rdf.T(ext[i], labelProp, rdf.NewLiteral("chip resistor "+randPN())))
	}
	for i := range loc {
		loc[i] = rdf.NewIRI(fmt.Sprintf("http://ex.org/l/%d", i))
		sl.Add(rdf.T(loc[i], pnProp, rdf.NewLiteral(randPN())))
		sl.Add(rdf.T(loc[i], labelProp, rdf.NewLiteral("resistor chip "+randPN())))
	}
	for _, e := range ext {
		for k := 0; k < candsPer; k++ {
			pairs = append(pairs, [2]rdf.Term{e, loc[rng.Intn(len(loc))]})
		}
	}
	cfg = linkage.Config{
		Comparators: []linkage.Comparator{
			{ExternalProperty: pnProp, LocalProperty: pnProp, Measure: similarity.Levenshtein{}, Weight: 2},
			{ExternalProperty: labelProp, LocalProperty: labelProp, Measure: similarity.Jaccard{}, Weight: 1},
		},
		Threshold: 0.5,
	}
	return se, sl, pairs, cfg
}

// legacyScorePairs replicates the pre-index engine: every comparator of
// every pair walks the graphs via Objects and re-runs the raw measure.
func legacyScorePairs(cfg linkage.Config, se, sl *rdf.Graph, pairs [][2]rdf.Term) int {
	literalValues := func(g *rdf.Graph, item, prop rdf.Term) []string {
		var out []string
		for _, o := range g.Objects(item, prop) {
			if o.IsLiteral() {
				out = append(out, o.Value)
			}
		}
		return out
	}
	kept := 0
	for _, p := range pairs {
		num, den := 0.0, 0.0
		for _, cmp := range cfg.Comparators {
			den += cmp.Weight
			best := 0.0
			for _, ev := range literalValues(se, p[0], cmp.ExternalProperty) {
				for _, lv := range literalValues(sl, p[1], cmp.LocalProperty) {
					if s := cmp.Measure.Similarity(ev, lv); s > best {
						best = s
					}
				}
			}
			num += cmp.Weight * best
		}
		if num/den >= cfg.Threshold {
			kept++
		}
	}
	return kept
}

// BenchmarkScorePairsGraphLookup is the old hot path: graph lookups and
// raw measure calls per pair. The allocs/op column is the point.
func BenchmarkScorePairsGraphLookup(b *testing.B) {
	se, sl, pairs, cfg := linkageBenchFixture(500, 500, 8)
	b.SetBytes(int64(len(pairs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if legacyScorePairs(cfg, se, sl, pairs) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkScorePairsSerial is the value-indexed engine on one worker:
// zero graph lookups and near-zero allocations inside Score.
func BenchmarkScorePairsSerial(b *testing.B) {
	se, sl, pairs, cfg := linkageBenchFixture(500, 500, 8)
	cfg.Workers = 1
	eng, err := linkage.New(cfg, se, sl)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pairs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(eng.ScorePairs(pairs)) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkScorePairsParallel is the same engine fanned out across all
// cores (Workers=0).
func BenchmarkScorePairsParallel(b *testing.B) {
	se, sl, pairs, cfg := linkageBenchFixture(500, 500, 8)
	eng, err := linkage.New(cfg, se, sl)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pairs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(eng.ScorePairs(pairs)) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkLinkBestParallel exercises the one-to-one greedy linker on
// the same fixture.
func BenchmarkLinkBestParallel(b *testing.B) {
	se, sl, pairs, cfg := linkageBenchFixture(500, 500, 8)
	cands := map[rdf.Term][]rdf.Term{}
	for _, p := range pairs {
		cands[p[0]] = append(cands[p[0]], p[1])
	}
	eng, err := linkage.New(cfg, se, sl)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pairs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(eng.LinkBest(cands)) == 0 {
			b.Fatal("no links")
		}
	}
}

// --- live-service benchmarks: incremental index maintenance and
// streaming candidate scoring. ---

// BenchmarkUpsert is the cost of keeping a live engine current: one item
// changes in the graph and gets re-indexed in place. Compare with
// BenchmarkUpsertFullRebuild, the cost the pre-incremental engine paid
// for the same mutation (the acceptance bar is >= 10x).
func BenchmarkUpsert(b *testing.B) {
	se, sl, _, cfg := linkageBenchFixture(2000, 2000, 1)
	eng, err := linkage.New(cfg, se, sl)
	if err != nil {
		b.Fatal(err)
	}
	pnProp := rdf.NewIRI("http://ex.org/pn")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i%2000))
		for _, o := range se.Objects(item, pnProp) {
			se.Remove(rdf.T(item, pnProp, o))
		}
		se.Add(rdf.T(item, pnProp, rdf.NewLiteral(fmt.Sprintf("CRCW%04d-UP", i))))
		eng.Upsert(linkage.ExternalSide, item)
	}
	if !eng.Fresh() {
		b.Fatal("engine stale after upserts")
	}
}

// BenchmarkUpsertFullRebuild applies the same single-item mutation but
// rebuilds the whole value index with linkage.New, the only option
// before incremental maintenance existed.
func BenchmarkUpsertFullRebuild(b *testing.B) {
	se, sl, _, cfg := linkageBenchFixture(2000, 2000, 1)
	pnProp := rdf.NewIRI("http://ex.org/pn")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i%2000))
		for _, o := range se.Objects(item, pnProp) {
			se.Remove(rdf.T(item, pnProp, o))
		}
		se.Add(rdf.T(item, pnProp, rdf.NewLiteral(fmt.Sprintf("CRCW%04d-UP", i))))
		if _, err := linkage.New(cfg, se, sl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPairs compares scoring a cross-product candidate space
// that is materialized as a [][2]Term up front against streaming it
// through the engine pair by pair. The allocs/op column is the point:
// the streaming path never holds the candidate space.
func BenchmarkStreamPairs(b *testing.B) {
	se, sl, _, cfg := linkageBenchFixture(200, 200, 1)
	cfg.Workers = 1
	eng, err := linkage.New(cfg, se, sl)
	if err != nil {
		b.Fatal(err)
	}
	exts := make([]rdf.Term, 200)
	locs := make([]rdf.Term, 200)
	for i := range exts {
		exts[i] = rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i))
		locs[i] = rdf.NewIRI(fmt.Sprintf("http://ex.org/l/%d", i))
	}
	nPairs := int64(len(exts) * len(locs))

	b.Run("materialized", func(b *testing.B) {
		b.SetBytes(nPairs)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pairs := make([][2]rdf.Term, 0, nPairs)
			for _, e := range exts {
				for _, l := range locs {
					pairs = append(pairs, [2]rdf.Term{e, l})
				}
			}
			if len(eng.ScorePairs(pairs)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(nPairs)
		b.ReportAllocs()
		src := func(yield func([2]rdf.Term) bool) {
			for _, e := range exts {
				for _, l := range locs {
					if !yield([2]rdf.Term{e, l}) {
						return
					}
				}
			}
		}
		for i := 0; i < b.N; i++ {
			n := 0
			if err := eng.StreamPairs(context.Background(), src, func(linkage.Match) bool {
				n++
				return true
			}); err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

// --- snapshot-isolation benchmarks: the cost of publishing a frozen
// query view after a mutation, vs the deep copy it replaces, and the
// cost of one incremental instance-index update vs the full rebuild. ---

// snapshotBenchGraph is a mutating-service-shaped graph: one mutation
// lands, then a fresh point-in-time view is needed for queries.
func snapshotBenchGraph() (*rdf.Graph, []rdf.Triple) {
	se, _, _, _ := linkageBenchFixture(2000, 2000, 1)
	toggles := make([]rdf.Triple, 256)
	pnProp := rdf.NewIRI("http://ex.org/pn")
	for i := range toggles {
		toggles[i] = rdf.T(
			rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i)),
			pnProp,
			rdf.NewLiteral(fmt.Sprintf("TOGGLE-%d", i)),
		)
	}
	return se, toggles
}

// BenchmarkSnapshot measures one mutate-then-snapshot cycle: the
// copy-on-write snapshot is O(1) and the mutation path-copies only the
// buckets it touches (plus one pointer-shallow top-level map copy per
// cycle). Compare with BenchmarkSnapshotFullClone, the deep copy a
// snapshotless design pays for the same isolation; the acceptance bar
// is orders of magnitude.
func BenchmarkSnapshot(b *testing.B) {
	g, toggles := snapshotBenchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := toggles[i%len(toggles)]
		if !g.Add(tr) {
			g.Remove(tr)
		}
		if snap := g.Snapshot(); snap.Len() == 0 || !snap.Frozen() {
			b.Fatal("bad snapshot")
		}
	}
}

// BenchmarkSnapshotFullClone applies the same single mutation but deep
// copies the whole graph for the frozen view.
func BenchmarkSnapshotFullClone(b *testing.B) {
	g, toggles := snapshotBenchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := toggles[i%len(toggles)]
		if !g.Add(tr) {
			g.Remove(tr)
		}
		if c := g.Clone(); c.Len() == 0 {
			b.Fatal("bad clone")
		}
	}
}

// instanceBenchFixture is a typed catalog: nInst instances spread over a
// two-level hierarchy of nClasses leaf classes under one root.
func instanceBenchFixture(nInst, nClasses int) (*rdf.Graph, *Ontology, []Term) {
	sl := rdf.NewGraph()
	ol := NewOntology()
	root := NewIRI("http://ex.org/onto#Part")
	ol.AddClass(root)
	classes := make([]Term, nClasses)
	for i := range classes {
		classes[i] = NewIRI(fmt.Sprintf("http://ex.org/onto#C%d", i))
		ol.AddClass(classes[i])
		ol.AddSubClassOf(classes[i], root)
	}
	for i := 0; i < nInst; i++ {
		sl.Add(rdf.T(
			NewIRI(fmt.Sprintf("http://ex.org/l/%d", i)),
			RDFType,
			classes[i%nClasses],
		))
	}
	return sl, ol, classes
}

// BenchmarkInstanceUpsert is the cost of keeping the instance index
// current when one local item changes class: a per-item incremental
// update. Compare with BenchmarkInstanceUpsertFullRebuild, the full
// NewInstanceIndex pass the service paid per upsert before; the
// acceptance bar is >= 10x.
func BenchmarkInstanceUpsert(b *testing.B) {
	const nInst, nClasses = 10000, 50
	sl, ol, classes := instanceBenchFixture(nInst, nClasses)
	ix := NewInstanceIndex(sl, ol)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := NewIRI(fmt.Sprintf("http://ex.org/l/%d", i%nInst))
		for _, tr := range sl.Find(item, RDFType, Term{}) {
			sl.Remove(tr)
		}
		next := classes[(i+1)%nClasses]
		sl.Add(T(item, RDFType, next))
		ix.UpsertInstance(item, []Term{next})
	}
	if ix.Total() != nInst {
		b.Fatalf("index drifted: %d instances, want %d", ix.Total(), nInst)
	}
}

// BenchmarkInstanceUpsertFullRebuild applies the same single-item class
// change but rebuilds the whole index, the only option before
// incremental maintenance existed.
func BenchmarkInstanceUpsertFullRebuild(b *testing.B) {
	const nInst, nClasses = 10000, 50
	sl, ol, classes := instanceBenchFixture(nInst, nClasses)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := NewIRI(fmt.Sprintf("http://ex.org/l/%d", i%nInst))
		for _, tr := range sl.Find(item, RDFType, Term{}) {
			sl.Remove(tr)
		}
		sl.Add(T(item, RDFType, classes[(i+1)%nClasses]))
		if ix := NewInstanceIndex(sl, ol); ix.Total() != nInst {
			b.Fatalf("index drifted: %d instances, want %d", ix.Total(), nInst)
		}
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	m := similarity.Levenshtein{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity("CRCW0805-63V-ohm", "CRCW0812/63V/ohm")
	}
}

// BenchmarkLevenshteinUnicode hits the rune path (multi-byte input), the
// slow branch the ASCII fast path avoids.
func BenchmarkLevenshteinUnicode(b *testing.B) {
	m := similarity.Levenshtein{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity("CRCW0805-63V-Ω", "CRCW0812/63V/Ω")
	}
}

func BenchmarkDamerau(b *testing.B) {
	m := similarity.Damerau{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity("CRCW0805-63V-ohm", "CRCW0812/63V/ohm")
	}
}

// distSink keeps distance results observable so the kernel loops are
// not optimized away.
var distSink int

// BenchmarkMyersLevenshtein times the exported distance entry point on
// the ASCII fast path, which dispatches to the bit-parallel Myers
// kernel — the exact call the link engine's hot loop makes.
func BenchmarkMyersLevenshtein(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distSink += similarity.LevenshteinDistance("CRCW0805-63V-ohm", "CRCW0812/63V/ohm")
	}
}

// BenchmarkMyersDamerau is the transposition-aware counterpart.
func BenchmarkMyersDamerau(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distSink += similarity.DamerauDistance("CRCW0805-63V-ohm", "CRCW0812/63V/ohm")
	}
}

// BenchmarkReferenceLevenshtein times the retained DP oracle on the same
// input, the denominator of the kernel speedup.
func BenchmarkReferenceLevenshtein(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distSink += similarity.ReferenceLevenshteinDistance("CRCW0805-63V-ohm", "CRCW0812/63V/ohm")
	}
}

// BenchmarkReferenceDamerau is the DP baseline for the Damerau kernel.
func BenchmarkReferenceDamerau(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distSink += similarity.ReferenceDamerauDistance("CRCW0805-63V-ohm", "CRCW0812/63V/ohm")
	}
}

// BenchmarkLearnParallel measures a full Learn over the small corpus at
// one worker and at one worker per CPU. The model is byte-identical at
// both settings (TestLearnDeterministicAcrossWorkers); only wall time
// differs, and on a single-CPU host the two are honestly equal.
func BenchmarkLearnParallel(b *testing.B) {
	ds, err := GenerateCorpus(SmallCorpusConfig(77))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := LearnerConfig{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := LearnCtx(context.Background(), cfg, ds.Training, ds.External, ds.Local, ds.Ontology); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	m := similarity.JaroWinkler{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity("CRCW0805-63V-ohm", "CRCW0812/63V/ohm")
	}
}

func BenchmarkTFIDF(b *testing.B) {
	m := similarity.NewTFIDF()
	corpus := make([]string, 200)
	for i := range corpus {
		corpus[i] = fmt.Sprintf("acme part %d resistor %d ohm", i, i*7%100)
	}
	m.Fit(corpus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity("acme part 10 resistor 70 ohm", "acme part 11 resistor 77 ohm")
	}
}

func benchRecords(n int) []blocking.Record {
	out := make([]blocking.Record, n)
	for i := range out {
		out[i] = blocking.Record{
			ID:  fmt.Sprintf("r%d", i),
			Key: fmt.Sprintf("CRCW%04d-%dV", i%500, i%64),
		}
	}
	return out
}

func BenchmarkBlockingStandard(b *testing.B) {
	ext, loc := benchRecords(500), benchRecords(1000)
	m := blocking.Standard{Key: blocking.PrefixKey(6)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Pairs(ext, loc)
	}
}

func BenchmarkBlockingSortedNeighborhood(b *testing.B) {
	ext, loc := benchRecords(500), benchRecords(1000)
	m := blocking.SortedNeighborhood{Window: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Pairs(ext, loc)
	}
}

func BenchmarkBlockingBigram(b *testing.B) {
	ext, loc := benchRecords(200), benchRecords(400)
	m := blocking.Bigram{Threshold: 0.8, MaxSublists: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Pairs(ext, loc)
	}
}

// --- durability benchmarks (tentpole of the snapshot+WAL persistence):
// the binary snapshot codec vs the N-Triples text path on the bench
// corpus, and WAL append latency per mutation. ---

// benchGraphs returns the bench corpus's two graphs (the data a service
// checkpoint actually serializes).
func benchGraphs(b *testing.B) (se, sl *rdf.Graph) {
	c := corpusForBench(b)
	return c.Dataset.External, c.Dataset.Local
}

func BenchmarkSnapshotEncode(b *testing.B) {
	se, sl := benchGraphs(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := rdf.EncodeSnapshot(&buf, se); err != nil {
			b.Fatal(err)
		}
		if err := rdf.EncodeSnapshot(&buf, sl); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkSnapshotDecode(b *testing.B) {
	se, sl := benchGraphs(b)
	var seBuf, slBuf bytes.Buffer
	if err := rdf.EncodeSnapshot(&seBuf, se); err != nil {
		b.Fatal(err)
	}
	if err := rdf.EncodeSnapshot(&slBuf, sl); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(seBuf.Len() + slBuf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.DecodeSnapshot(bytes.NewReader(seBuf.Bytes())); err != nil {
			b.Fatal(err)
		}
		if _, err := rdf.DecodeSnapshot(bytes.NewReader(slBuf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRoundTripBinary vs ...NTriples is the acceptance
// comparison: full encode+decode of the bench corpus through each codec.
func BenchmarkSnapshotRoundTripBinary(b *testing.B) {
	se, sl := benchGraphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range []*rdf.Graph{se, sl} {
			var buf bytes.Buffer
			if err := rdf.EncodeSnapshot(&buf, g); err != nil {
				b.Fatal(err)
			}
			if _, err := rdf.DecodeSnapshot(&buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSnapshotRoundTripNTriples(b *testing.B) {
	se, sl := benchGraphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range []*rdf.Graph{se, sl} {
			var buf bytes.Buffer
			if err := rdf.WriteNTriples(&buf, g); err != nil {
				b.Fatal(err)
			}
			if _, err := rdf.ReadNTriples(&buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// walAppendRecord mirrors a single-item service upsert, the WAL's
// dominant record shape.
func walAppendRecord(i int) *store.Record {
	return &store.Record{
		Op: store.OpUpsert,
		Upsert: &store.UpsertOp{
			Side: store.External,
			Items: []store.Item{{
				ID:    fmt.Sprintf("http://provider.example/item/D%06d", i),
				Props: map[string][]string{"http://provider.example/prop#partNumber": {fmt.Sprintf("RES %04d TX99 B%d", i, i%7)}},
			}},
		},
	}
}

func benchWALAppend(b *testing.B, mode store.FsyncMode) {
	st, _, err := store.Open(b.TempDir(), store.Options{Fsync: mode, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append(walAppendRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(st.Stats().WALBytes / int64(b.N))
}

func BenchmarkWALAppend(b *testing.B)       { benchWALAppend(b, store.FsyncNever) }
func BenchmarkWALAppendAlways(b *testing.B) { benchWALAppend(b, store.FsyncAlways) }

// BenchmarkSnapshotDecodeEager additionally materializes the deferred
// POS and OSP indexes, measuring the full cost a recovery pays if every
// query path gets exercised (the plain Decode bench is the boot cost).
func BenchmarkSnapshotDecodeEager(b *testing.B) {
	se, sl := benchGraphs(b)
	var seBuf, slBuf bytes.Buffer
	if err := rdf.EncodeSnapshot(&seBuf, se); err != nil {
		b.Fatal(err)
	}
	if err := rdf.EncodeSnapshot(&slBuf, sl); err != nil {
		b.Fatal(err)
	}
	obj := rdf.NewLiteral("no-such-object")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, enc := range [][]byte{seBuf.Bytes(), slBuf.Bytes()} {
			g, err := rdf.DecodeSnapshot(bytes.NewReader(enc))
			if err != nil {
				b.Fatal(err)
			}
			g.Predicates()                                               // materialize POS
			g.Match(rdf.Term{}, rdf.Term{}, obj, func(rdf.Triple) bool { // materialize OSP
				return true
			})
		}
	}
}
