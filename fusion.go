package datalink

import (
	"io"

	"repro/internal/fusion"
	"repro/internal/rdf"
)

// Fusion types: once items are linked, their descriptions merge into one
// entity per real-world object (the paper's motivating "data fusion
// step").
type (
	// FusionStrategy resolves conflicting property values across sources.
	FusionStrategy = fusion.Strategy
	// FusionConfig maps properties to strategies.
	FusionConfig = fusion.Config
	// FusedEntity is one merged description with provenance per value.
	FusedEntity = fusion.Entity
	// FusedValue is one property value with its provenance.
	FusedValue = fusion.Value
)

// Fusion strategies.
const (
	// FuseUnion keeps every distinct value.
	FuseUnion = fusion.Union
	// FusePreferLocal keeps catalog values when present.
	FusePreferLocal = fusion.PreferLocal
	// FusePreferExternal keeps provider values when present.
	FusePreferExternal = fusion.PreferExternal
	// FuseVote keeps the most frequent value (ties favour the catalog).
	FuseVote = fusion.Vote
	// FuseLongest keeps the longest literal value.
	FuseLongest = fusion.Longest
)

// Fuse merges matched (external, local) pairs into fused entities.
func Fuse(pairs [][2]Term, se, sl *Graph, cfg FusionConfig) []FusedEntity {
	return fusion.Fuse(pairs, se, sl, cfg)
}

// FusedToGraph serializes fused entities back to RDF, including the
// owl:sameAs links recording each reconciliation.
func FusedToGraph(entities []FusedEntity) *Graph { return fusion.ToGraph(entities) }

// TurtleWriterOptions configures WriteTurtle.
type TurtleWriterOptions = rdf.TurtleWriterOptions

// WriteTurtle serializes a graph as Turtle with prefix compaction; the
// output parses back with ReadTurtle.
func WriteTurtle(w io.Writer, g *Graph, opts TurtleWriterOptions) error {
	return rdf.WriteTurtle(w, g, opts)
}
