package datalink

import (
	"bytes"
	"strings"
	"testing"
)

// buildTinyWorld assembles a minimal end-to-end world through the public
// API only: ontology, catalog, provider docs and training links.
func buildTinyWorld(t testing.TB) (TrainingSet, *Graph, *Graph, *Ontology, Term) {
	t.Helper()
	pn := NewIRI("http://ex.org/pn")

	ol := NewOntology()
	product := NewIRI("http://ex.org/Product")
	resistor := NewIRI("http://ex.org/Resistor")
	capacitor := NewIRI("http://ex.org/Capacitor")
	ol.AddSubClassOf(resistor, product)
	ol.AddSubClassOf(capacitor, product)

	se := NewGraph()
	sl := NewGraph()
	var ts TrainingSet
	add := func(id, pnv string, class Term) {
		ext := NewIRI("http://ex.org/ext/" + id)
		loc := NewIRI("http://ex.org/loc/" + id)
		se.Add(T(ext, pn, NewLiteral(pnv)))
		sl.Add(T(loc, RDFType, class))
		sl.Add(T(loc, pn, NewLiteral(pnv)))
		ts.Links = append(ts.Links, Link{External: ext, Local: loc})
	}
	for i, v := range []string{"ohm-100", "ohm-220", "ohm-470", "ohm-512"} {
		add("r"+string(rune('0'+i)), v, resistor)
	}
	for i, v := range []string{"T83-1", "T83-2", "T83-3"} {
		add("c"+string(rune('0'+i)), v, capacitor)
	}
	return ts, se, sl, ol, pn
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ts, se, sl, ol, pn := buildTinyWorld(t)
	p, err := NewPipeline(LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if p.Model.Rules.Len() == 0 {
		t.Fatal("no rules learned")
	}

	// Classify a new provider item through the public surface.
	newItem := NewIRI("http://ex.org/ext/new")
	se.Add(T(newItem, pn, NewLiteral("XX/ohm/33")))
	preds := p.Classify(newItem)
	if len(preds) == 0 {
		t.Fatal("no predictions for ohm item")
	}
	if got := preds[0].Class; got != NewIRI("http://ex.org/Resistor") {
		t.Errorf("predicted %v, want Resistor", got)
	}

	sr := p.ReducedSpace(newItem)
	if sr.UnionSize != 4 || sr.CatalogSize != 7 {
		t.Errorf("space = %d of %d, want 4 of 7", sr.UnionSize, sr.CatalogSize)
	}
	if rf := sr.ReductionFactor(); rf < 1.7 || rf > 1.8 {
		t.Errorf("reduction factor = %v", rf)
	}

	// Link inside the reduced space.
	matches, err := p.LinkWithin([]Term{newItem}, LinkerConfig{
		Comparators: []Comparator{{
			ExternalProperty: pn, LocalProperty: pn,
			Measure: JaroWinkler, Weight: 1,
		}},
		Threshold: 0.3,
	})
	if err != nil {
		t.Fatalf("LinkWithin: %v", err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
}

func TestPublicAPIRuleSerialization(t *testing.T) {
	ts, se, sl, ol, _ := buildTinyWorld(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Rules.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	rs, err := ReadRules(&buf)
	if err != nil {
		t.Fatalf("ReadRules: %v", err)
	}
	if rs.Len() != m.Rules.Len() {
		t.Errorf("round-trip rules = %d, want %d", rs.Len(), m.Rules.Len())
	}
	cl := NewClassifier(rs, nil)
	preds := cl.ClassifyValues(map[Term][]string{
		NewIRI("http://ex.org/pn"): {"zzz T83 yyy"},
	})
	if len(preds) == 0 || preds[0].Class != NewIRI("http://ex.org/Capacitor") {
		t.Errorf("deserialized rules misclassify: %v", preds)
	}
}

func TestPublicAPIRDFRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(T(NewIRI("http://a"), NewIRI("http://p"), NewLangLiteral("été", "fr")))
	g.Add(T(NewBlank("b"), NewIRI("http://p"), NewTypedLiteral("4", "http://www.w3.org/2001/XMLSchema#integer")))
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 2 {
		t.Errorf("round-trip triples = %d", g2.Len())
	}
	ttl := `@prefix ex: <http://ex.org/> . ex:a a ex:B .`
	g3, err := ReadTurtle(strings.NewReader(ttl))
	if err != nil {
		t.Fatal(err)
	}
	if !g3.Has(T(NewIRI("http://ex.org/a"), RDFType, NewIRI("http://ex.org/B"))) {
		t.Error("turtle triple missing")
	}
}

func TestPublicAPIExperimentFlow(t *testing.T) {
	ds, err := GenerateCorpus(SmallCorpusConfig(5))
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	c, err := BuildCorpus(ds, LearnerConfig{})
	if err != nil {
		t.Fatalf("BuildCorpus: %v", err)
	}
	rows := Table1(c, PaperBands())
	if len(rows) != 4 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	out := Table1Table(rows).String()
	if !strings.Contains(out, "#rules") {
		t.Errorf("table rendering broken:\n%s", out)
	}
	if len(SectionStats(c)) == 0 {
		t.Error("no section stats")
	}
	red := SpaceReduction(c, PaperBands())
	if len(red) != 4 {
		t.Errorf("reduction rows = %d", len(red))
	}
	cmp := CompareBlocking(c, DefaultBlockingMethods(c))
	if len(cmp) == 0 {
		t.Error("no blocking rows")
	}
	gen := GeneralizationExperiment(c)
	if len(gen) != 3 {
		t.Errorf("generalization rows = %d", len(gen))
	}
	ord := OrderingAblation(c)
	if len(ord) != 3 {
		t.Errorf("ordering rows = %d", len(ord))
	}
}

func TestPublicAPIToponyms(t *testing.T) {
	ds, err := GenerateToponyms(ToponymConfig{Seed: 2, Links: 150})
	if err != nil {
		t.Fatalf("GenerateToponyms: %v", err)
	}
	m, err := Learn(LearnerConfig{SupportThreshold: 0.01}, ds.Training, ds.External, ds.Local, ds.Ontology)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.Rules.Len() == 0 {
		t.Fatal("no toponym rules learned")
	}
	cl := NewClassifier(&m.Rules, m.Config.Splitter)
	preds := cl.ClassifyValues(map[Term][]string{
		RDFSLabel: {"Grand Solferino Museum"},
	})
	if len(preds) == 0 {
		t.Fatal("museum label not classified")
	}
	if preds[0].Class != NewIRI("http://thales.example/onto#Museum") {
		t.Errorf("predicted %v, want Museum", preds[0].Class)
	}
}

// TestLinkWithinCacheInvalidation pins the engine cache in Pipeline to
// the pre-cache semantics: items added to the graphs after a LinkWithin
// call must be visible to the next call (the incremental-linking flow of
// examples/fusion), and a caller mutating its comparator slice in place
// must not be served the stale engine.
func TestLinkWithinCacheInvalidation(t *testing.T) {
	ts, se, sl, ol, pn := buildTinyWorld(t)
	p, err := NewPipeline(LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	cmps := []Comparator{{
		ExternalProperty: pn, LocalProperty: pn,
		Measure: JaroWinkler, Weight: 1,
	}}
	cfg := LinkerConfig{Comparators: cmps, Threshold: 0.3}

	item1 := NewIRI("http://ex.org/ext/inc1")
	se.Add(T(item1, pn, NewLiteral("XX/ohm/100")))
	m1, err := p.LinkWithin([]Term{item1}, cfg)
	if err != nil {
		t.Fatalf("first LinkWithin: %v", err)
	}
	if len(m1) != 1 {
		t.Fatalf("first call matches = %v", m1)
	}

	// Second arriving item: added after the engine cache was built.
	item2 := NewIRI("http://ex.org/ext/inc2")
	se.Add(T(item2, pn, NewLiteral("YY/ohm/220")))
	m2, err := p.LinkWithin([]Term{item2}, cfg)
	if err != nil {
		t.Fatalf("second LinkWithin: %v", err)
	}
	if len(m2) != 1 {
		t.Fatalf("stale value index: second item not linked, matches = %v", m2)
	}

	// Unchanged graphs + config: the cache must serve identical output.
	m2b, err := p.LinkWithin([]Term{item2}, cfg)
	if err != nil {
		t.Fatalf("cached LinkWithin: %v", err)
	}
	if len(m2b) != len(m2) || m2b[0] != m2[0] {
		t.Errorf("cached call diverges: %v vs %v", m2b, m2)
	}

	// In-place mutation of the caller's comparator slice must not be
	// aliased into the cache's change detection.
	cmps[0].Measure = Levenshtein
	cmps[0].Weight = 3
	m3, err := p.LinkWithin([]Term{item2}, cfg)
	if err != nil {
		t.Fatalf("post-mutation LinkWithin: %v", err)
	}
	if len(m3) != 1 || m3[0].Score == m2[0].Score {
		t.Errorf("stale engine after comparator mutation: %v vs %v", m3, m2)
	}
}
