package datalink

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// viewFixture builds a pipeline over a small typed corpus.
func viewFixture(t *testing.T) (*Pipeline, LinkerConfig) {
	t.Helper()
	og := NewGraph()
	cls := NewIRI("http://ex.org/onto#Resistor")
	og.Add(T(cls, RDFType, OWLClass))
	ol, err := OntologyFromGraph(og)
	if err != nil {
		t.Fatal(err)
	}
	pn := NewIRI("http://ex.org/pn")
	se, sl := NewGraph(), NewGraph()
	var links []Link
	for i := 0; i < 15; i++ {
		e := NewIRI(fmt.Sprintf("http://ex.org/e/%d", i))
		l := NewIRI(fmt.Sprintf("http://ex.org/l/%d", i))
		se.Add(T(e, pn, NewLiteral(fmt.Sprintf("RES-%04d-X", i))))
		sl.Add(T(l, pn, NewLiteral(fmt.Sprintf("RES-%04d-X", i))))
		sl.Add(T(l, RDFType, cls))
		links = append(links, Link{External: e, Local: l})
	}
	p, err := NewPipeline(LearnerConfig{SupportThreshold: 0.01}, TrainingSet{Links: links}, se, sl, ol)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinkerConfig{
		Comparators: []Comparator{{ExternalProperty: pn, LocalProperty: pn, Measure: Levenshtein, Weight: 1}},
		Threshold:   0.5,
	}
	return p, cfg
}

// TestQueryViewFrozen: a view keeps answering from its snapshot while
// the live pipeline mutates, and a fresh view sees the mutation.
func TestQueryViewFrozen(t *testing.T) {
	p, cfg := viewFixture(t)
	item := NewIRI("http://ex.org/e/3")
	view := p.Snapshot()

	want, err := view.LinkTopK(context.Background(), []Term{item}, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(want[item]) == 0 {
		t.Fatal("view query returned no matches")
	}

	// Live mutation: a new local item that matches e/3 exactly, plus the
	// incremental maintenance a caller performs.
	pn := NewIRI("http://ex.org/pn")
	cls := NewIRI("http://ex.org/onto#Resistor")
	newLoc := NewIRI("http://ex.org/l/new")
	p.Local().Add(T(newLoc, pn, NewLiteral("RES-0003-X")))
	p.Local().Add(T(newLoc, RDFType, cls))
	p.Upsert(LocalSide, newLoc)

	// The old view must not see it.
	got, err := view.LinkTopK(context.Background(), []Term{item}, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frozen view drifted after live mutation:\n got %+v\nwant %+v", got, want)
	}
	for _, m := range got[item] {
		if m.Local == newLoc {
			t.Fatal("frozen view returned a post-snapshot item")
		}
	}

	// A fresh view must.
	fresh, err := p.Snapshot().LinkTopK(context.Background(), []Term{item}, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range fresh[item] {
		found = found || m.Local == newLoc
	}
	if !found {
		t.Fatalf("fresh view missed the upserted item: %+v", fresh[item])
	}
}

// TestQueryViewMatchesPipeline: with no interleaved mutation, the view's
// results equal the pipeline's own.
func TestQueryViewMatchesPipeline(t *testing.T) {
	p, cfg := viewFixture(t)
	items := p.External().AllSubjects()
	want, err := p.LinkTopK(context.Background(), items, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Snapshot().LinkTopK(context.Background(), items, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("view results differ from pipeline results")
	}
	// LinkWithinCtx parity too.
	wantBest, err := p.LinkWithinCtx(context.Background(), items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotBest, err := p.Snapshot().LinkWithinCtx(context.Background(), items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBest, wantBest) {
		t.Fatalf("view LinkWithinCtx differs from pipeline")
	}
}

// TestQueryViewConfigError: invalid configs surface as ErrLinkerConfig,
// the sentinel HTTP handlers classify as client errors.
func TestQueryViewConfigError(t *testing.T) {
	p, cfg := viewFixture(t)
	cfg.Threshold = 3
	_, err := p.Snapshot().LinkTopK(context.Background(), p.External().AllSubjects(), cfg, 1)
	if err == nil {
		t.Fatal("threshold 3 accepted")
	}
	if !errors.Is(err, ErrLinkerConfig) {
		t.Fatalf("error %v does not wrap ErrLinkerConfig", err)
	}
}
