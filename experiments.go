package datalink

import (
	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/eval"
)

// Corpus bundles a generated dataset with its learned model, classifier
// and instance index — the unit every experiment runs on.
type Corpus = eval.Corpus

// CorpusConfig controls synthetic corpus generation (the stand-in for
// the paper's proprietary Thales catalog; see DESIGN.md §2).
type CorpusConfig = datagen.Config

// Dataset is a generated corpus: ontology, catalog, provider documents,
// training links and ground truth.
type Dataset = datagen.Dataset

// Table1Row, Band and the experiment row types mirror internal/eval.
type (
	// Band is a confidence interval labeling one Table 1 row.
	Band = eval.Band
	// Table1Row is one reproduced row of the paper's Table 1.
	Table1Row = eval.Table1Row
	// PaperStat compares one Section 5 statistic with the paper value.
	PaperStat = eval.PaperStat
	// ReductionRow summarizes per-band linking-space reduction.
	ReductionRow = eval.ReductionRow
	// MethodRow is one line of the blocking comparison.
	MethodRow = eval.MethodRow
	// SweepRow is one point of the support-threshold sweep.
	SweepRow = eval.SweepRow
	// SplitterRow is one line of the splitter ablation.
	SplitterRow = eval.SplitterRow
	// OrderingRow is one line of the rule-ordering ablation.
	OrderingRow = eval.OrderingRow
	// GeneralizationRow is one line of the generalization experiment.
	GeneralizationRow = eval.GeneralizationRow
	// LinkingRow is one line of the in-space linking experiment.
	LinkingRow = eval.LinkingRow
	// ExperimentTable is a renderable fixed-width text table.
	ExperimentTable = eval.Table
)

// PaperCorpusConfig returns the configuration reproducing the paper's
// experimental scale (|TS| = 10265, 566 classes, 226 leaves).
func PaperCorpusConfig(seed int64) CorpusConfig { return datagen.NewConfig(seed) }

// SmallCorpusConfig returns a fast ~1/20-scale configuration for tests,
// examples and quick runs.
func SmallCorpusConfig(seed int64) CorpusConfig { return datagen.SmallConfig(seed) }

// GenerateCorpus builds the synthetic corpus for cfg, deterministically
// in cfg.Seed.
func GenerateCorpus(cfg CorpusConfig) (*Dataset, error) { return datagen.Generate(cfg) }

// CorpusSink receives streamed corpus entities in generation order; see
// StreamCorpus.
type CorpusSink = datagen.Sink

// StreamCorpus generates the corpus for cfg directly into sink without
// materializing graphs or links, so memory stays bounded by the taxonomy
// (O(classes)) rather than the corpus — million-item catalogs generate
// in constant space. Content and order are identical to GenerateCorpus
// for the same cfg. Returns the corpus ontology.
func StreamCorpus(cfg CorpusConfig, sink CorpusSink) (*Ontology, error) {
	return datagen.Stream(cfg, sink)
}

// PartNumberProperty is the provider part-number property of generated
// corpora — the property the paper's expert selected.
var PartNumberProperty = datagen.PartNumberProp

// ManufacturerProperty is the provider manufacturer property of
// generated corpora — present but deliberately not class-indicative.
var ManufacturerProperty = datagen.ManufacturerProp

// BuildCorpus learns a model over a dataset (zero config = paper
// settings on the part-number property) and prepares shared state for
// the experiments below.
func BuildCorpus(ds *Dataset, cfg LearnerConfig) (*Corpus, error) {
	return eval.BuildCorpus(ds, cfg)
}

// PaperBands returns the four confidence bands of the paper's Table 1.
func PaperBands() []Band { return eval.PaperBands() }

// Table1 reproduces the paper's Table 1 over the corpus.
func Table1(c *Corpus, bands []Band) []Table1Row { return eval.Table1(c, bands) }

// Table1Table renders Table 1 rows in the paper's column layout.
func Table1Table(rows []Table1Row) *ExperimentTable { return eval.Table1Table(rows) }

// SectionStats lines the corpus statistics up against Section 5's
// quoted values.
func SectionStats(c *Corpus) []PaperStat { return eval.SectionStats(c) }

// SectionStatsTable renders the statistics comparison.
func SectionStatsTable(stats []PaperStat) *ExperimentTable {
	return eval.SectionStatsTable(stats)
}

// SpaceReduction computes per-band linking-space reduction (E3).
func SpaceReduction(c *Corpus, bands []Band) []ReductionRow { return eval.Reduction(c, bands) }

// SpaceReductionTable renders reduction rows.
func SpaceReductionTable(rows []ReductionRow) *ExperimentTable { return eval.ReductionTable(rows) }

// CompareBlocking evaluates candidate-generation methods on the corpus
// (E4); DefaultBlockingMethods supplies the paper-context line-up.
func CompareBlocking(c *Corpus, methods []blocking.Method) []MethodRow {
	return eval.CompareBlocking(c, methods)
}

// DefaultBlockingMethods returns cartesian, standard blocking, sorted
// neighbourhood, bi-gram indexing and the paper's rule-based reduction.
func DefaultBlockingMethods(c *Corpus) []blocking.Method { return eval.DefaultMethods(c) }

// BlockingTable renders the comparison.
func BlockingTable(rows []MethodRow) *ExperimentTable { return eval.BlockingTable(rows) }

// ThresholdSweep relearns at each support threshold (E5a).
func ThresholdSweep(ds *Dataset, base LearnerConfig, thresholds []float64) ([]SweepRow, error) {
	return eval.ThresholdSweep(ds, base, thresholds)
}

// SweepTable renders the threshold sweep.
func SweepTable(rows []SweepRow) *ExperimentTable { return eval.SweepTable(rows) }

// SplitterAblation relearns with each splitter (E5b).
func SplitterAblation(ds *Dataset, base LearnerConfig, splitters []Splitter) ([]SplitterRow, error) {
	return eval.SplitterAblation(ds, base, splitters)
}

// SplitterAblationTable renders the splitter ablation.
func SplitterAblationTable(rows []SplitterRow) *ExperimentTable { return eval.SplitterTable(rows) }

// OrderingAblation replays decisions under alternative rule orderings
// (E5c) using eval.Policies.
func OrderingAblation(c *Corpus) []OrderingRow {
	return eval.OrderingAblation(c, eval.Policies())
}

// OrderingAblationTable renders the ordering ablation.
func OrderingAblationTable(rows []OrderingRow) *ExperimentTable { return eval.OrderingTable(rows) }

// GeneralizationExperiment compares base and generalized rule sets (E6).
func GeneralizationExperiment(c *Corpus) []GeneralizationRow {
	return eval.GeneralizationExperiment(c)
}

// GeneralizationTable renders the generalization experiment.
func GeneralizationTable(rows []GeneralizationRow) *ExperimentTable {
	return eval.GeneralizationTable(rows)
}

// DefaultLinkingConfig returns the matcher configuration the in-space
// linking experiment uses (edit distance on the part number).
func DefaultLinkingConfig() LinkerConfig { return eval.DefaultLinkingConfig() }

// LinkingWorkerCounts returns the default worker-count ladder (1, 2, 4,
// ... up to all cores).
func LinkingWorkerCounts() []int { return eval.LinkingWorkerCounts() }

// LinkingExperiment runs the matcher inside the rule-reduced linking
// spaces at each worker count (E8): quality is identical across rows;
// the throughput column shows the parallel engine's scaling.
func LinkingExperiment(c *Corpus, cfg LinkerConfig, workers []int) ([]LinkingRow, error) {
	return eval.Linking(c, cfg, workers)
}

// LinkingExperimentTable renders the linking experiment.
func LinkingExperimentTable(rows []LinkingRow) *ExperimentTable { return eval.LinkingTable(rows) }

// ToponymConfig sizes the secondary-domain (geographic) corpus.
type ToponymConfig = datagen.ToponymConfig

// GenerateToponyms builds the toponym corpus of the intro's motivating
// scenario (labels embedding place-type words).
func GenerateToponyms(cfg ToponymConfig) (*Dataset, error) {
	return datagen.GenerateToponyms(cfg)
}

// GeneralizeModel applies the subsumption extension to a model.
func GeneralizeModel(m *Model, ol *Ontology, opts GeneralizeOptions) RuleSet {
	return m.Generalize(ol, opts)
}

// HoldoutRow is one fold of the cross-validation experiment (E7).
type HoldoutRow = eval.HoldoutRow

// HoldoutSummary aggregates cross-validation folds plus the paper's
// resubstitution baseline.
type HoldoutSummary = eval.HoldoutSummary

// CrossValidate runs k-fold held-out evaluation over a corpus's training
// links (E7) — the paper's protocol evaluates on the training set itself;
// this measures generalization to unseen provider items.
func CrossValidate(ds *Dataset, cfg LearnerConfig, k int, seed int64) (HoldoutSummary, error) {
	return eval.CrossValidate(ds, cfg, k, seed)
}

// HoldoutTable renders the cross-validation summary.
func HoldoutTable(s HoldoutSummary) *ExperimentTable { return eval.HoldoutTable(s) }
