package keys

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

var (
	clsA  = rdf.NewIRI("http://onto/A")
	serNo = rdf.NewIRI("http://ex/serial")
	color = rdf.NewIRI("http://ex/color")
	size  = rdf.NewIRI("http://ex/size")
)

// keyGraph: serial is a perfect key; color is not; (color,size) is a key.
func keyGraph(t testing.TB) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	colors := []string{"red", "blue"}
	sizes := []string{"S", "M", "L", "XL", "XXL"}
	for i := 0; i < 10; i++ {
		inst := rdf.NewIRI(fmt.Sprintf("http://cat/i%d", i))
		g.Add(rdf.T(inst, rdf.TypeTerm, clsA))
		g.Add(rdf.T(inst, serNo, rdf.NewLiteral(fmt.Sprintf("SN%04d", i))))
		g.Add(rdf.T(inst, color, rdf.NewLiteral(colors[i%2])))
		g.Add(rdf.T(inst, size, rdf.NewLiteral(sizes[i/2])))
	}
	return g
}

func findKey(keys []Key, props ...rdf.Term) *Key {
	for i, k := range keys {
		if len(k.Properties) != len(props) {
			continue
		}
		match := true
		for j := range props {
			if k.Properties[j] != props[j] {
				match = false
				break
			}
		}
		if match {
			return &keys[i]
		}
	}
	return nil
}

func TestDiscoverSingleKey(t *testing.T) {
	g := keyGraph(t)
	keys := Discover(g, []rdf.Term{clsA}, Config{})
	serial := findKey(keys, serNo)
	if serial == nil {
		t.Fatalf("serial key not discovered: %v", keys)
	}
	if serial.Distinctness != 1 || serial.Coverage != 1 {
		t.Errorf("serial key stats = %+v", *serial)
	}
	if k := findKey(keys, color); k != nil {
		t.Errorf("color wrongly discovered as key: %+v", *k)
	}
}

func TestDiscoverPairKeyWithPruning(t *testing.T) {
	g := keyGraph(t)
	keys := Discover(g, []rdf.Term{clsA}, Config{})
	// (color,size) identifies each instance: 2 colors x 5 sizes = 10.
	pair := findKey(keys, color, size)
	if pair == nil {
		t.Fatalf("(color,size) key not discovered: %v", keys)
	}
	if pair.Distinctness != 1 {
		t.Errorf("pair distinctness = %v", pair.Distinctness)
	}
	// Pruning: no pair involving the already-keyed serial property.
	for _, k := range keys {
		if len(k.Properties) == 2 {
			for _, p := range k.Properties {
				if p == serNo {
					t.Errorf("superset of serial key reported: %v", k)
				}
			}
		}
	}
}

func TestDiscoverCoverageFilter(t *testing.T) {
	g := keyGraph(t)
	// A property present on only 3 of 10 instances.
	rare := rdf.NewIRI("http://ex/rare")
	for i := 0; i < 3; i++ {
		g.Add(rdf.T(rdf.NewIRI(fmt.Sprintf("http://cat/i%d", i)), rare, rdf.NewLiteral(fmt.Sprintf("r%d", i))))
	}
	keys := Discover(g, []rdf.Term{clsA}, Config{MinCoverage: 0.8})
	if k := findKey(keys, rare); k != nil {
		t.Errorf("low-coverage property reported as key: %+v", *k)
	}
	// With a lax coverage floor it appears.
	keys = Discover(g, []rdf.Term{clsA}, Config{MinCoverage: 0.1})
	if k := findKey(keys, rare); k == nil {
		t.Error("rare key missing under lax coverage")
	}
}

func TestDiscoverAlmostKey(t *testing.T) {
	g := keyGraph(t)
	// Duplicate one serial: distinctness 9/10.
	g.Add(rdf.T(rdf.NewIRI("http://cat/dup"), rdf.TypeTerm, clsA))
	g.Add(rdf.T(rdf.NewIRI("http://cat/dup"), serNo, rdf.NewLiteral("SN0000")))
	g.Add(rdf.T(rdf.NewIRI("http://cat/dup"), color, rdf.NewLiteral("red")))
	g.Add(rdf.T(rdf.NewIRI("http://cat/dup"), size, rdf.NewLiteral("S")))

	strict := Discover(g, []rdf.Term{clsA}, Config{MinDistinctness: 0.999})
	if k := findKey(strict, serNo); k != nil {
		t.Errorf("duplicated serial still a strict key: %+v", *k)
	}
	lax := Discover(g, []rdf.Term{clsA}, Config{MinDistinctness: 0.9})
	if k := findKey(lax, serNo); k == nil {
		t.Error("almost-key not found at 0.9 distinctness")
	}
}

func TestDiscoverMinInstances(t *testing.T) {
	g := rdf.NewGraph()
	tiny := rdf.NewIRI("http://onto/Tiny")
	for i := 0; i < 3; i++ {
		inst := rdf.NewIRI(fmt.Sprintf("http://cat/t%d", i))
		g.Add(rdf.T(inst, rdf.TypeTerm, tiny))
		g.Add(rdf.T(inst, serNo, rdf.NewLiteral(fmt.Sprintf("S%d", i))))
	}
	if keys := Discover(g, []rdf.Term{tiny}, Config{MinInstances: 5}); len(keys) != 0 {
		t.Errorf("keys over tiny class: %v", keys)
	}
}

func TestDiscoverNilClassesScansAll(t *testing.T) {
	g := keyGraph(t)
	keys := Discover(g, nil, Config{})
	if findKey(keys, serNo) == nil {
		t.Errorf("nil classes scan missed the serial key: %v", keys)
	}
}

func TestDiscoverArity1Only(t *testing.T) {
	g := keyGraph(t)
	keys := Discover(g, []rdf.Term{clsA}, Config{MaxArity: 1})
	for _, k := range keys {
		if len(k.Properties) > 1 {
			t.Errorf("arity-2 key at MaxArity 1: %v", k)
		}
	}
}

func TestBlockingKey(t *testing.T) {
	g := keyGraph(t)
	inst := rdf.NewIRI("http://cat/i0")
	bk := BlockingKey(g, inst, []rdf.Term{color, size})
	if bk == "" || !strings.Contains(bk, "red") || !strings.Contains(bk, "S") {
		t.Errorf("BlockingKey = %q", bk)
	}
	// Missing property -> no block.
	if got := BlockingKey(g, inst, []rdf.Term{rdf.NewIRI("http://ex/none")}); got != "" {
		t.Errorf("BlockingKey with missing property = %q", got)
	}
	// Multi-valued properties are order-insensitive.
	multi := rdf.NewIRI("http://cat/multi")
	tag := rdf.NewIRI("http://ex/tag")
	g.Add(rdf.T(multi, tag, rdf.NewLiteral("b")))
	g.Add(rdf.T(multi, tag, rdf.NewLiteral("a")))
	if got := BlockingKey(g, multi, []rdf.Term{tag}); got != "a\x1eb" {
		t.Errorf("multi-value key = %q", got)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{
		Class:        clsA,
		Properties:   []rdf.Term{serNo},
		Coverage:     1,
		Distinctness: 0.987,
	}
	s := k.String()
	for _, want := range []string{"key(A)", "serial", "0.987"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q missing %q", s, want)
		}
	}
}

func TestDiscoverOnGeneratedCatalog(t *testing.T) {
	// On the synthetic catalog, partNumber should surface as an
	// (almost-)key for the frequent classes: serial chunks make most
	// part numbers unique within a class.
	ds, err := datagen.Generate(datagen.SmallConfig(8))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	keys := Discover(ds.Local, ds.Leaves[:4], Config{MinDistinctness: 0.9})
	foundPN := false
	for _, k := range keys {
		if len(k.Properties) == 1 && k.Properties[0] == datagen.PartNumberProp {
			foundPN = true
		}
	}
	if !foundPN {
		t.Errorf("partNumber not discovered as almost-key; keys: %v", keys)
	}
}
