// Package keys discovers (almost-)key constraints in the local catalog:
// property combinations whose values uniquely identify instances within
// a class. The paper's related work uses such keys to partition the
// linking space ([Baxter et al.], [Yan et al.]) — and notes that the
// approach fails when the external schema is unknown; discovering the
// catalog-side keys makes that comparison concrete and gives the linking
// engine a principled choice of blocking attribute.
//
// Discovery is levelwise: single properties first, then pairs, with the
// standard pruning that any superset of a key is itself a key and
// therefore redundant.
package keys

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Key is one discovered (almost-)key for a class.
type Key struct {
	Class      rdf.Term
	Properties []rdf.Term
	// Coverage is the fraction of the class's instances carrying values
	// for every property of the key.
	Coverage float64
	// Distinctness is distinct value combinations / covered instances;
	// 1 means a perfect key over the covered instances.
	Distinctness float64
	// Supported is the number of covered instances.
	Supported int
}

// String renders the key for reports.
func (k Key) String() string {
	names := make([]string, len(k.Properties))
	for i, p := range k.Properties {
		names[i] = localName(p)
	}
	return fmt.Sprintf("key(%s){%s} coverage=%.2f distinctness=%.3f",
		localName(k.Class), strings.Join(names, ","), k.Coverage, k.Distinctness)
}

func localName(t rdf.Term) string {
	s := t.Value
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' || s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}

// Config tunes discovery.
type Config struct {
	// MaxArity bounds the number of properties per key; 0 means 2.
	MaxArity int
	// MinCoverage drops keys defined on too few instances; 0 means 0.8.
	MinCoverage float64
	// MinDistinctness is the "almost key" bar; 0 means 0.99.
	MinDistinctness float64
	// MinInstances skips classes with fewer instances (keys over tiny
	// classes are vacuous); 0 means 5.
	MinInstances int
}

func (c Config) withDefaults() Config {
	if c.MaxArity == 0 {
		c.MaxArity = 2
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.8
	}
	if c.MinDistinctness == 0 {
		c.MinDistinctness = 0.99
	}
	if c.MinInstances == 0 {
		c.MinInstances = 5
	}
	return c
}

// Discover finds minimal (almost-)keys per class over the literal-valued
// properties of sl. Classes lists the classes to analyze (typically the
// ontology's leaves); nil means every class with typed instances.
func Discover(sl *rdf.Graph, classes []rdf.Term, cfg Config) []Key {
	cfg = cfg.withDefaults()
	if classes == nil {
		set := map[rdf.Term]struct{}{}
		sl.Match(rdf.Term{}, rdf.TypeTerm, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O != rdf.ClassTerm {
				set[t.O] = struct{}{}
			}
			return true
		})
		for c := range set {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i].Compare(classes[j]) < 0 })
	}

	var out []Key
	for _, class := range classes {
		out = append(out, discoverForClass(sl, class, cfg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Class.Compare(out[j].Class); c != 0 {
			return c < 0
		}
		if len(out[i].Properties) != len(out[j].Properties) {
			return len(out[i].Properties) < len(out[j].Properties)
		}
		return out[i].String() < out[j].String()
	})
	return out
}

func discoverForClass(sl *rdf.Graph, class rdf.Term, cfg Config) []Key {
	instances := sl.InstancesOf(class)
	if len(instances) < cfg.MinInstances {
		return nil
	}
	// Collect literal-valued properties of the class's instances.
	propSet := map[rdf.Term]struct{}{}
	values := map[rdf.Term]map[rdf.Term][]string{} // instance -> property -> values
	for _, inst := range instances {
		values[inst] = map[rdf.Term][]string{}
		sl.Match(inst, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O.IsLiteral() {
				propSet[t.P] = struct{}{}
				values[inst][t.P] = append(values[inst][t.P], t.O.Value)
			}
			return true
		})
	}
	props := make([]rdf.Term, 0, len(propSet))
	for p := range propSet {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool { return props[i].Compare(props[j]) < 0 })

	evaluate := func(combo []rdf.Term) (Key, bool) {
		covered := 0
		combos := map[string]struct{}{}
		for _, inst := range instances {
			parts := make([]string, 0, len(combo))
			ok := true
			for _, p := range combo {
				vs := values[inst][p]
				if len(vs) == 0 {
					ok = false
					break
				}
				sort.Strings(vs)
				parts = append(parts, strings.Join(vs, "\x1e"))
			}
			if !ok {
				continue
			}
			covered++
			combos[strings.Join(parts, "\x1f")] = struct{}{}
		}
		if covered == 0 {
			return Key{}, false
		}
		k := Key{
			Class:        class,
			Properties:   append([]rdf.Term(nil), combo...),
			Coverage:     float64(covered) / float64(len(instances)),
			Distinctness: float64(len(combos)) / float64(covered),
			Supported:    covered,
		}
		pass := k.Coverage >= cfg.MinCoverage && k.Distinctness >= cfg.MinDistinctness
		return k, pass
	}

	var found []Key
	isKeyProp := map[rdf.Term]bool{}
	for _, p := range props {
		if k, ok := evaluate([]rdf.Term{p}); ok {
			found = append(found, k)
			isKeyProp[p] = true
		}
	}
	if cfg.MaxArity >= 2 {
		for i := 0; i < len(props); i++ {
			if isKeyProp[props[i]] {
				continue // supersets of keys are redundant
			}
			for j := i + 1; j < len(props); j++ {
				if isKeyProp[props[j]] {
					continue
				}
				if k, ok := evaluate([]rdf.Term{props[i], props[j]}); ok {
					found = append(found, k)
				}
			}
		}
	}
	return found
}

// BlockingKey concatenates an item's values for the key's properties,
// producing the blocking key the related-work partitioning methods need.
// It returns "" when any property is missing (no block).
func BlockingKey(g *rdf.Graph, item rdf.Term, properties []rdf.Term) string {
	parts := make([]string, 0, len(properties))
	for _, p := range properties {
		var vs []string
		for _, o := range g.Objects(item, p) {
			if o.IsLiteral() {
				vs = append(vs, o.Value)
			}
		}
		if len(vs) == 0 {
			return ""
		}
		sort.Strings(vs)
		parts = append(parts, strings.Join(vs, "\x1e"))
	}
	return strings.Join(parts, "\x1f")
}
