package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func TestCrossValidate(t *testing.T) {
	ds, err := datagen.Generate(datagen.SmallConfig(33))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	s, err := CrossValidate(ds, core.LearnerConfig{}, 5, 99)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if len(s.Folds) != 5 {
		t.Fatalf("folds = %d", len(s.Folds))
	}
	totalDecisions := 0
	for _, f := range s.Folds {
		if f.Rules == 0 {
			t.Errorf("fold %d learned no rules", f.Fold)
		}
		if f.Correct > f.Decisions {
			t.Errorf("fold %d correct %d > decisions %d", f.Fold, f.Correct, f.Decisions)
		}
		totalDecisions += f.Decisions
	}
	if totalDecisions == 0 {
		t.Fatal("no held-out decisions across folds")
	}
	// Held-out precision should be in a sane band and not wildly exceed
	// resubstitution.
	if s.MeanPrecision <= 0.3 || s.MeanPrecision > 1 {
		t.Errorf("mean precision = %v", s.MeanPrecision)
	}
	if s.TrainPrecision <= 0 {
		t.Errorf("train precision = %v", s.TrainPrecision)
	}
	if s.MeanPrecision > s.TrainPrecision+0.1 {
		t.Errorf("held-out precision %v implausibly above resubstitution %v",
			s.MeanPrecision, s.TrainPrecision)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds, err := datagen.Generate(datagen.SmallConfig(34))
	if err != nil {
		t.Fatal(err)
	}
	a, err := CrossValidate(ds, core.LearnerConfig{}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(ds, core.LearnerConfig{}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Folds {
		if a.Folds[i] != b.Folds[i] {
			t.Fatalf("fold %d differs across identical seeds", i)
		}
	}
}

func TestCrossValidateValidation(t *testing.T) {
	ds, err := datagen.Generate(datagen.SmallConfig(35))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CrossValidate(ds, core.LearnerConfig{}, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	tiny := *ds
	tiny.Training = core.TrainingSet{Links: ds.Training.Links[:2]}
	if _, err := CrossValidate(&tiny, core.LearnerConfig{}, 5, 1); err == nil {
		t.Error("more folds than links accepted")
	}
}

func TestHoldoutTable(t *testing.T) {
	s := HoldoutSummary{
		Folds: []HoldoutRow{
			{Fold: 0, Rules: 10, Decisions: 50, Correct: 40, Precision: 0.8, Recall: 0.5},
		},
		MeanPrecision:  0.8,
		MeanRecall:     0.5,
		TrainPrecision: 0.9,
		TrainRecall:    0.6,
	}
	out := HoldoutTable(s).String()
	for _, want := range []string{"fold", "mean", "train (paper protocol)", "80%", "90%"} {
		if !strings.Contains(out, want) {
			t.Errorf("holdout table missing %q:\n%s", want, out)
		}
	}
}
