package eval

import (
	"fmt"

	"repro/internal/core"
)

// Band is a confidence interval [Lo, Hi) labeling one row of Table 1.
type Band struct {
	Label string
	Lo    float64
	Hi    float64
}

// PaperBands are the four confidence groups of the paper's Table 1: the
// top band holds exactly the confidence-1 rules (Hi > 1 makes the
// interval closed at 1).
func PaperBands() []Band {
	return []Band{
		{Label: "1", Lo: 1, Hi: 2},
		{Label: "0.8", Lo: 0.8, Hi: 1},
		{Label: "0.6", Lo: 0.6, Hi: 0.8},
		{Label: "0.4", Lo: 0.4, Hi: 0.6},
	}
}

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	Band Band
	// Rules is the number of rules whose confidence falls in the band.
	Rules int
	// Decisions is the number of training items classified by at least
	// one rule of the band ("the number of decisions that can be made"
	// with this rule group; rows overlap when an item fires rules from
	// several bands, as in the paper).
	Decisions int
	// Correct is how many of those decisions place the expert class in
	// the union of the band rules' predictions — i.e. the reduced
	// linking space selected by this band contains the true match.
	Correct int
	// Precision is Correct/Decisions.
	Precision float64
	// CumulativeRecall is the fraction of the learnable population
	// correctly classified using every rule with confidence >= the
	// band's lower bound.
	CumulativeRecall float64
	// AvgLift is the mean lift of the band's rules.
	AvgLift float64
}

// Table1 reproduces the paper's Table 1 over the corpus. The paper
// groups the rules by confidence and, per group, reports how many
// training items the group can classify, how precisely, and the recall
// when every rule at or above the group's confidence is used (which is
// why the paper's recall column grows monotonically down the table).
// Each item is replayed against the retained segment index.
func Table1(c *Corpus, bands []Band) []Table1Row {
	rows := make([]Table1Row, len(bands))
	for b, band := range bands {
		rows[b].Band = band
		rules := c.Model.Rules.ConfidenceBand(band.Lo, band.Hi)
		rows[b].Rules = len(rules)
		rows[b].AvgLift = core.AverageLift(rules)
	}
	cumCorrect := make([]int, len(bands))

	for i := 0; i < c.Model.TrainingSize(); i++ {
		fired := c.Classifier.FiredRules(c.segmentsOf(i))
		if len(fired) == 0 {
			continue
		}
		tc, hasTrue := c.trueClassOf(i)
		for b := range rows {
			inBand, correctBand := false, false
			correctCum := false
			for _, r := range fired {
				conf := r.Confidence()
				if conf >= rows[b].Band.Lo && conf < rows[b].Band.Hi {
					inBand = true
					if hasTrue && r.Class == tc {
						correctBand = true
					}
				}
				if conf >= rows[b].Band.Lo && hasTrue && r.Class == tc {
					correctCum = true
				}
			}
			if inBand {
				rows[b].Decisions++
				if correctBand {
					rows[b].Correct++
				}
			}
			if correctCum {
				cumCorrect[b]++
			}
		}
	}

	pop := c.learnablePopulation(c.Model.Rules.Rules)
	for b := range rows {
		if rows[b].Decisions > 0 {
			rows[b].Precision = float64(rows[b].Correct) / float64(rows[b].Decisions)
		}
		if pop > 0 {
			rows[b].CumulativeRecall = float64(cumCorrect[b]) / float64(pop)
		}
	}
	return rows
}

// Table1Table renders rows in the paper's column layout.
func Table1Table(rows []Table1Row) *Table {
	t := &Table{
		Title:   "Table 1: Classification rule results",
		Headers: []string{"conf.", "#rules", "#dec.", "prec.", "recall", "lift"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Band.Label,
			fmt.Sprintf("%d", r.Rules),
			fmt.Sprintf("%d", r.Decisions),
			Percent(r.Precision),
			Percent(r.CumulativeRecall),
			fmt.Sprintf("%.0f", r.AvgLift),
		})
	}
	return t
}

// PaperStat compares one Section 5 corpus statistic with its paper value.
type PaperStat struct {
	Name     string
	Paper    float64
	Measured float64
}

// SectionStats lines up the learner's corpus statistics against the
// values quoted in Section 5 of the paper. The paper column is only
// meaningful when the corpus was generated at paper scale.
func SectionStats(c *Corpus) []PaperStat {
	st := c.Model.Stats
	return []PaperStat{
		{Name: "training links (|TS|)", Paper: 10265, Measured: float64(st.TSSize)},
		{Name: "distinct segments", Paper: 7842, Measured: float64(st.DistinctSegments)},
		{Name: "segment occurrences", Paper: 26077, Measured: float64(st.SegmentOccurrences)},
		{Name: "selected segment occurrences", Paper: 7058, Measured: float64(st.SelectedSegmentOccurrences)},
		{Name: "frequent classes (>20 inst.)", Paper: 68, Measured: float64(st.FrequentClasses)},
		{Name: "classification rules", Paper: 144, Measured: float64(st.RuleCount)},
		{Name: "classes with rules", Paper: 16, Measured: float64(st.ClassesWithRules)},
	}
}

// SectionStatsTable renders the stats comparison.
func SectionStatsTable(stats []PaperStat) *Table {
	t := &Table{
		Title:   "Section 5 corpus statistics (paper vs measured)",
		Headers: []string{"statistic", "paper", "measured"},
	}
	for _, s := range stats {
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.0f", s.Paper),
			fmt.Sprintf("%.0f", s.Measured),
		})
	}
	return t
}
