package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

// HoldoutRow is one fold of the cross-validation experiment (E7). The
// paper evaluates its rules on the training set itself; this experiment
// measures what a user actually gets on unseen provider items.
type HoldoutRow struct {
	Fold      int
	Rules     int
	Decisions int
	Correct   int
	Precision float64
	Recall    float64
}

// HoldoutSummary aggregates the folds and the resubstitution baseline.
type HoldoutSummary struct {
	Folds []HoldoutRow
	// MeanPrecision / MeanRecall average the per-fold held-out scores.
	MeanPrecision float64
	MeanRecall    float64
	// TrainPrecision / TrainRecall are the resubstitution scores of a
	// model trained on all links (the paper's evaluation protocol), for
	// comparison.
	TrainPrecision float64
	TrainRecall    float64
}

// CrossValidate runs k-fold cross-validation over the corpus's training
// links: each fold's links are held out, a model is learned on the rest,
// and the held-out items are classified from their provider documents.
// A decision is correct when the top predicted class equals the expert
// class. The split is deterministic in seed.
func CrossValidate(ds *datagen.Dataset, cfg core.LearnerConfig, k int, seed int64) (HoldoutSummary, error) {
	if k < 2 {
		return HoldoutSummary{}, fmt.Errorf("eval: cross-validation needs k >= 2, got %d", k)
	}
	links := append([]core.Link(nil), ds.Training.Links...)
	if len(links) < k {
		return HoldoutSummary{}, fmt.Errorf("eval: %d links cannot fill %d folds", len(links), k)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })

	if len(cfg.Properties) == 0 {
		cfg.Properties = []rdf.Term{datagen.PartNumberProp}
	}

	var summary HoldoutSummary
	for fold := 0; fold < k; fold++ {
		lo := fold * len(links) / k
		hi := (fold + 1) * len(links) / k
		test := links[lo:hi]
		train := make([]core.Link, 0, len(links)-len(test))
		train = append(train, links[:lo]...)
		train = append(train, links[hi:]...)

		m, err := core.Learn(cfg, core.TrainingSet{Links: train}, ds.External, ds.Local, ds.Ontology)
		if err != nil {
			return HoldoutSummary{}, fmt.Errorf("eval: fold %d: %w", fold, err)
		}
		cl := core.NewClassifier(&m.Rules, m.Config.Splitter)
		row := evaluateLinks(cl, &m.Rules, test, ds)
		row.Fold = fold
		row.Rules = m.Rules.Len()
		summary.Folds = append(summary.Folds, row)
		summary.MeanPrecision += row.Precision
		summary.MeanRecall += row.Recall
	}
	summary.MeanPrecision /= float64(k)
	summary.MeanRecall /= float64(k)

	// Resubstitution baseline: train and evaluate on everything.
	m, err := core.Learn(cfg, ds.Training, ds.External, ds.Local, ds.Ontology)
	if err != nil {
		return HoldoutSummary{}, fmt.Errorf("eval: resubstitution: %w", err)
	}
	cl := core.NewClassifier(&m.Rules, m.Config.Splitter)
	trainRow := evaluateLinks(cl, &m.Rules, ds.Training.Links, ds)
	summary.TrainPrecision = trainRow.Precision
	summary.TrainRecall = trainRow.Recall
	return summary, nil
}

// evaluateLinks classifies each link's external item from the provider
// graph and scores the top prediction against the expert class.
func evaluateLinks(cl *core.Classifier, rules *core.RuleSet, links []core.Link, ds *datagen.Dataset) HoldoutRow {
	ruleClasses := map[rdf.Term]struct{}{}
	for _, r := range rules.Rules {
		ruleClasses[r.Class] = struct{}{}
	}
	var row HoldoutRow
	learnable := 0
	for _, link := range links {
		truth := ds.TrueClass[link.External]
		if _, ok := ruleClasses[truth]; ok {
			learnable++
		}
		preds := cl.Classify(link.External, ds.External)
		if len(preds) == 0 {
			continue
		}
		row.Decisions++
		if preds[0].Class == truth {
			row.Correct++
		}
	}
	if row.Decisions > 0 {
		row.Precision = float64(row.Correct) / float64(row.Decisions)
	}
	if learnable > 0 {
		row.Recall = float64(row.Correct) / float64(learnable)
	}
	return row
}

// HoldoutTable renders the cross-validation summary.
func HoldoutTable(s HoldoutSummary) *Table {
	t := &Table{
		Title:   "Held-out evaluation (k-fold cross-validation vs the paper's resubstitution)",
		Headers: []string{"fold", "#rules", "#dec.", "correct", "prec.", "recall"},
	}
	for _, f := range s.Folds {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", f.Fold),
			fmt.Sprintf("%d", f.Rules),
			fmt.Sprintf("%d", f.Decisions),
			fmt.Sprintf("%d", f.Correct),
			Percent(f.Precision),
			Percent(f.Recall),
		})
	}
	t.Rows = append(t.Rows, []string{
		"mean", "", "", "", Percent(s.MeanPrecision), Percent(s.MeanRecall),
	})
	t.Rows = append(t.Rows, []string{
		"train (paper protocol)", "", "", "", Percent(s.TrainPrecision), Percent(s.TrainRecall),
	})
	return t
}
