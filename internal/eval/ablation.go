package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/segment"
)

// SweepRow is one point of the support-threshold sweep (E5a): how the
// rule count and classification quality move with th.
type SweepRow struct {
	Threshold float64
	Rules     int
	Decisions int
	Precision float64
	Recall    float64
}

// ThresholdSweep relearns the model at each threshold and evaluates its
// Table-1 aggregate (all bands pooled).
func ThresholdSweep(ds *datagen.Dataset, base core.LearnerConfig, thresholds []float64) ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(thresholds))
	for _, th := range thresholds {
		cfg := base
		cfg.SupportThreshold = th
		c, err := BuildCorpus(ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: sweep th=%v: %w", th, err)
		}
		decisions, correct := pooledDecisions(c)
		pop := c.learnablePopulation(c.Model.Rules.Rules)
		row := SweepRow{Threshold: th, Rules: c.Model.Rules.Len(), Decisions: decisions}
		if decisions > 0 {
			row.Precision = float64(correct) / float64(decisions)
		}
		if pop > 0 {
			row.Recall = float64(correct) / float64(pop)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// pooledDecisions classifies every training item and counts decisions
// and correct decisions across all confidence levels.
func pooledDecisions(c *Corpus) (decisions, correct int) {
	for i := 0; i < c.Model.TrainingSize(); i++ {
		preds := c.Classifier.ClassifySegments(c.segmentsOf(i))
		if len(preds) == 0 {
			continue
		}
		decisions++
		if tc, ok := c.trueClassOf(i); ok && tc == preds[0].Class {
			correct++
		}
	}
	return decisions, correct
}

// SweepTable renders the threshold sweep.
func SweepTable(rows []SweepRow) *Table {
	t := &Table{
		Title:   "Support threshold sweep",
		Headers: []string{"th", "#rules", "#dec.", "prec.", "recall"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.4f", r.Threshold),
			fmt.Sprintf("%d", r.Rules),
			fmt.Sprintf("%d", r.Decisions),
			Percent(r.Precision),
			Percent(r.Recall),
		})
	}
	return t
}

// SplitterRow is one line of the splitter ablation (E5b): the paper's
// separator splitting against n-gram splitting.
type SplitterRow struct {
	Splitter         string
	DistinctSegments int
	Rules            int
	Decisions        int
	Precision        float64
	Recall           float64
}

// SplitterAblation relearns the model with each splitter. Note that the
// classifier must use the same splitter as the learner; BuildCorpus
// guarantees that by propagating the config.
func SplitterAblation(ds *datagen.Dataset, base core.LearnerConfig, splitters []segment.Splitter) ([]SplitterRow, error) {
	rows := make([]SplitterRow, 0, len(splitters))
	for _, sp := range splitters {
		cfg := base
		cfg.Splitter = sp
		c, err := BuildCorpus(ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: splitter %s: %w", sp.Name(), err)
		}
		decisions, correct := pooledDecisions(c)
		pop := c.learnablePopulation(c.Model.Rules.Rules)
		row := SplitterRow{
			Splitter:         sp.Name(),
			DistinctSegments: c.Model.Stats.DistinctSegments,
			Rules:            c.Model.Rules.Len(),
			Decisions:        decisions,
		}
		if decisions > 0 {
			row.Precision = float64(correct) / float64(decisions)
		}
		if pop > 0 {
			row.Recall = float64(correct) / float64(pop)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SplitterTable renders the splitter ablation.
func SplitterTable(rows []SplitterRow) *Table {
	t := &Table{
		Title:   "Splitter ablation",
		Headers: []string{"splitter", "segments", "#rules", "#dec.", "prec.", "recall"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Splitter,
			fmt.Sprintf("%d", r.DistinctSegments),
			fmt.Sprintf("%d", r.Rules),
			fmt.Sprintf("%d", r.Decisions),
			Percent(r.Precision),
			Percent(r.Recall),
		})
	}
	return t
}

// OrderingPolicy ranks fired rules to pick an item's decision.
type OrderingPolicy struct {
	Name string
	// Better reports whether rule a should be preferred over b.
	Better func(a, b core.Rule) bool
}

// Policies returns the ordering ablation line-up: the paper's
// confidence-then-lift, lift-first, and support-first.
func Policies() []OrderingPolicy {
	return []OrderingPolicy{
		{Name: "confidence,lift (paper)", Better: func(a, b core.Rule) bool {
			if a.Confidence() != b.Confidence() {
				return a.Confidence() > b.Confidence()
			}
			return a.Lift() > b.Lift()
		}},
		{Name: "lift,confidence", Better: func(a, b core.Rule) bool {
			if a.Lift() != b.Lift() {
				return a.Lift() > b.Lift()
			}
			return a.Confidence() > b.Confidence()
		}},
		{Name: "support,confidence", Better: func(a, b core.Rule) bool {
			if a.Support() != b.Support() {
				return a.Support() > b.Support()
			}
			return a.Confidence() > b.Confidence()
		}},
	}
}

// OrderingRow is one line of the rule-ordering ablation (E5c).
type OrderingRow struct {
	Policy    string
	Decisions int
	Correct   int
	Precision float64
}

// OrderingAblation replays classification under each policy: the item's
// decision is the conclusion of the best fired rule per the policy.
func OrderingAblation(c *Corpus, policies []OrderingPolicy) []OrderingRow {
	rows := make([]OrderingRow, len(policies))
	for p := range policies {
		rows[p].Policy = policies[p].Name
	}
	for i := 0; i < c.Model.TrainingSize(); i++ {
		fired := c.Classifier.FiredRules(c.segmentsOf(i))
		if len(fired) == 0 {
			continue
		}
		tc, hasTrue := c.trueClassOf(i)
		for p, pol := range policies {
			best := fired[0]
			for _, r := range fired[1:] {
				if pol.Better(r, best) {
					best = r
				}
			}
			rows[p].Decisions++
			if hasTrue && best.Class == tc {
				rows[p].Correct++
			}
		}
	}
	for p := range rows {
		if rows[p].Decisions > 0 {
			rows[p].Precision = float64(rows[p].Correct) / float64(rows[p].Decisions)
		}
	}
	return rows
}

// OrderingTable renders the ordering ablation.
func OrderingTable(rows []OrderingRow) *Table {
	t := &Table{
		Title:   "Rule-ordering ablation",
		Headers: []string{"policy", "#dec.", "correct", "prec."},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Decisions),
			fmt.Sprintf("%d", r.Correct),
			Percent(r.Precision),
		})
	}
	return t
}
