package eval

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/linkage"
	"repro/internal/rdf"
	"repro/internal/similarity"
)

// LinkingRow is one line of the in-space linking experiment (E8): the
// downstream matcher runs inside the rule-reduced linking spaces at a
// given worker count. Quality metrics are identical across rows by the
// engine's determinism guarantee; the throughput column shows how the
// parallel engine scales.
type LinkingRow struct {
	Workers int
	// Pairs is the number of candidate pairs the reduced spaces contain.
	Pairs int
	// Matches is the number of one-to-one links declared by LinkBest.
	Matches int
	// Result scores the declared links against the training links.
	Result linkage.Result
	// Elapsed is the wall time of scoring every candidate pair.
	Elapsed time.Duration
}

// PairsPerSec is the scoring throughput of this run.
func (r LinkingRow) PairsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Pairs) / r.Elapsed.Seconds()
}

// DefaultLinkingConfig returns the matcher configuration the experiment
// uses: normalized edit distance on the part number, which is both the
// property the paper's expert selected and a length-bounded measure the
// engine can short-circuit.
func DefaultLinkingConfig() linkage.Config {
	return linkage.Config{
		Comparators: []linkage.Comparator{{
			ExternalProperty: datagen.PartNumberProp,
			LocalProperty:    datagen.PartNumberProp,
			Measure:          similarity.Levenshtein{},
			Weight:           1,
		}},
		Threshold: 0.5,
	}
}

// LinkingWorkerCounts returns the default ladder of worker counts: 1, 2,
// 4, ... up to GOMAXPROCS, deduplicated.
func LinkingWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// Linking runs the in-space linking experiment: the reduced linking
// space of every training-set external item is expanded into candidate
// pairs, the matcher scores them at each worker count, and the declared
// one-to-one links are evaluated against the training links. cfg's
// Workers field is overridden per row.
func Linking(c *Corpus, cfg linkage.Config, workerCounts []int) ([]LinkingRow, error) {
	pairs, cands := linkingCandidates(c)
	truth := c.Dataset.Training.Links
	base, err := linkage.New(cfg, c.Dataset.External, c.Dataset.Local)
	if err != nil {
		return nil, fmt.Errorf("eval: building linking engine: %w", err)
	}
	rows := make([]LinkingRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		// The value index is worker-independent; share it across rows.
		eng, err := base.WithOptions(cfg.Threshold, w)
		if err != nil {
			return nil, fmt.Errorf("eval: building linking engine: %w", err)
		}
		start := time.Now()
		eng.ScorePairs(pairs)
		elapsed := time.Since(start)
		links := eng.LinkBest(cands)
		rows = append(rows, LinkingRow{
			Workers: w,
			Pairs:   len(pairs),
			Matches: len(links),
			Result:  linkage.Evaluate(links, truth),
			Elapsed: elapsed,
		})
	}
	return rows, nil
}

// linkingCandidates expands every training-set external item's reduced
// space into the flat pair list and per-item candidate map the engine
// consumes.
func linkingCandidates(c *Corpus) ([][2]rdf.Term, map[rdf.Term][]rdf.Term) {
	var pairs [][2]rdf.Term
	cands := map[rdf.Term][]rdf.Term{}
	for _, link := range c.Dataset.Training.Links {
		if _, seen := cands[link.External]; seen {
			continue
		}
		preds := c.Classifier.Classify(link.External, c.Dataset.External)
		sr := core.Space(link.External, preds, c.Instances)
		ps := core.CandidatePairs(sr, c.Instances)
		if len(ps) == 0 {
			continue
		}
		pairs = append(pairs, ps...)
		locs := make([]rdf.Term, len(ps))
		for i, p := range ps {
			locs[i] = p[1]
		}
		cands[link.External] = locs
	}
	return pairs, cands
}

// LinkingTable renders the experiment.
func LinkingTable(rows []LinkingRow) *Table {
	t := &Table{
		Title:   "In-space linking: parallel matcher over the rule-reduced space",
		Headers: []string{"workers", "candidate pairs", "pairs/s", "links", "precision", "recall", "F1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Pairs),
			fmt.Sprintf("%.0f", r.PairsPerSec()),
			fmt.Sprintf("%d", r.Matches),
			Percent(r.Result.Precision()),
			Percent(r.Result.Recall()),
			Percent(r.Result.F1()),
		})
	}
	return t
}
