package eval

import (
	"fmt"

	"repro/internal/core"
)

// ReductionRow summarizes the linking-space reduction achieved for the
// items whose best rule falls in one confidence band — the paper's claim
// that high lift translates into a strongly reduced reconciliation space.
type ReductionRow struct {
	Band Band
	// Items is the number of classified items in the band.
	Items int
	// AvgLift is the mean lift of the band's rules.
	AvgLift float64
	// AvgReductionFactor is the mean of catalog/union over the band's
	// items (the paper: lift > 20 ⇒ the space of a conf-1 rule shrinks
	// at least 5× even for a class holding 20% of the catalog).
	AvgReductionFactor float64
	// AvgSpaceShare is the mean fraction of the catalog an item must
	// still be compared to (1/reduction).
	AvgSpaceShare float64
	// Completeness is the fraction of the band's items whose true linked
	// local item is inside the reduced space — reduction is useless if it
	// loses the real match.
	Completeness float64
}

// Reduction computes per-band space reduction over the training corpus.
func Reduction(c *Corpus, bands []Band) []ReductionRow {
	rows := make([]ReductionRow, len(bands))
	for b, band := range bands {
		rows[b].Band = band
		rows[b].AvgLift = core.AverageLift(c.Model.Rules.ConfidenceBand(band.Lo, band.Hi))
	}
	type acc struct {
		redSum, shareSum float64
		covered          int
	}
	accs := make([]acc, len(bands))

	for i := 0; i < c.Model.TrainingSize(); i++ {
		preds := c.Classifier.ClassifySegments(c.segmentsOf(i))
		if len(preds) == 0 {
			continue
		}
		conf := preds[0].Rule.Confidence()
		b := -1
		for j := range rows {
			if conf >= rows[j].Band.Lo && conf < rows[j].Band.Hi {
				b = j
				break
			}
		}
		if b < 0 {
			continue
		}
		link := c.Model.TrainingLink(i)
		sr := core.Space(link.External, preds, c.Instances)
		if sr.UnionSize == 0 || sr.CatalogSize == 0 {
			continue
		}
		rows[b].Items++
		accs[b].redSum += sr.ReductionFactor()
		accs[b].shareSum += float64(sr.UnionSize) / float64(sr.CatalogSize)
		for _, ss := range sr.Subspaces {
			if c.Instances.Contains(ss.Class, link.Local) {
				accs[b].covered++
				break
			}
		}
	}
	for b := range rows {
		if rows[b].Items > 0 {
			rows[b].AvgReductionFactor = accs[b].redSum / float64(rows[b].Items)
			rows[b].AvgSpaceShare = accs[b].shareSum / float64(rows[b].Items)
			rows[b].Completeness = float64(accs[b].covered) / float64(rows[b].Items)
		}
	}
	return rows
}

// ReductionTable renders reduction rows.
func ReductionTable(rows []ReductionRow) *Table {
	t := &Table{
		Title:   "Linking-space reduction by confidence band",
		Headers: []string{"conf.", "items", "lift", "reduction", "space share", "completeness"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Band.Label,
			fmt.Sprintf("%d", r.Items),
			fmt.Sprintf("%.0f", r.AvgLift),
			fmt.Sprintf("%.1fx", r.AvgReductionFactor),
			Percent(r.AvgSpaceShare),
			Percent(r.Completeness),
		})
	}
	return t
}
