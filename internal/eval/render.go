package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table for experiment reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render writes the table to w with columns padded to their widest cell.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	b.WriteString(line(t.Headers))
	b.WriteByte('\n')
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(line(row))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("eval: rendering table: %w", err)
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the table as CSV (header row first, no title), for
// plotting or spreadsheet import.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("eval: writing csv: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eval: writing csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: writing csv: %w", err)
	}
	return nil
}

// Percent formats a ratio as the paper prints it ("96.9%", "100%").
func Percent(x float64) string {
	p := x * 100
	if p == float64(int(p)) {
		return fmt.Sprintf("%.0f%%", p)
	}
	return fmt.Sprintf("%.1f%%", p)
}
