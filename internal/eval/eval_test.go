package eval

import (
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/segment"
)

// smallCorpus builds one shared corpus for the harness tests.
func smallCorpus(t testing.TB) *Corpus {
	t.Helper()
	ds, err := datagen.Generate(datagen.SmallConfig(21))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	c, err := BuildCorpus(ds, core.LearnerConfig{})
	if err != nil {
		t.Fatalf("BuildCorpus: %v", err)
	}
	return c
}

func TestBuildCorpusDefaults(t *testing.T) {
	c := smallCorpus(t)
	if c.Model.Rules.Len() == 0 {
		t.Fatal("no rules learned on the small corpus")
	}
	props := c.Classifier.Properties()
	if len(props) != 1 || props[0] != datagen.PartNumberProp {
		t.Errorf("classifier properties = %v, want [partNumber]", props)
	}
	if c.Instances.Total() != c.Dataset.Config.CatalogSize {
		t.Errorf("instance total = %d, want %d", c.Instances.Total(), c.Dataset.Config.CatalogSize)
	}
}

func TestTable1Shape(t *testing.T) {
	c := smallCorpus(t)
	rows := Table1(c, PaperBands())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The top band must exist, be perfectly or near-perfectly precise,
	// and recall must be monotonically non-decreasing down the table.
	if rows[0].Rules == 0 || rows[0].Decisions == 0 {
		t.Fatalf("empty top band: %+v", rows[0])
	}
	if rows[0].Precision < 0.95 {
		t.Errorf("top-band precision = %v, want >= 0.95", rows[0].Precision)
	}
	for b := 1; b < len(rows); b++ {
		if rows[b].CumulativeRecall < rows[b-1].CumulativeRecall {
			t.Errorf("recall not cumulative at band %d: %v < %v",
				b, rows[b].CumulativeRecall, rows[b-1].CumulativeRecall)
		}
	}
	// Precision should not increase as confidence drops (noise tolerance:
	// lower bands may be empty, in which case precision is 0 and skipped).
	prev := rows[0].Precision
	for b := 1; b < len(rows); b++ {
		if rows[b].Decisions == 0 {
			continue
		}
		if rows[b].Precision > prev+0.05 {
			t.Errorf("precision rose at band %d: %v after %v", b, rows[b].Precision, prev)
		}
		prev = rows[b].Precision
	}
	// Per-band decisions never exceed |TS| (rows may overlap, but one
	// item decides at most once per band).
	for _, r := range rows {
		if r.Decisions > c.Model.TrainingSize() {
			t.Errorf("band %s decisions %d exceed |TS| %d", r.Band.Label, r.Decisions, c.Model.TrainingSize())
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	c := smallCorpus(t)
	out := Table1Table(Table1(c, PaperBands())).String()
	for _, want := range []string{"conf.", "#rules", "#dec.", "prec.", "recall", "lift", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 { // title + header + rule + 4 bands
		t.Errorf("rendered table has %d lines:\n%s", len(lines), out)
	}
}

func TestSectionStats(t *testing.T) {
	c := smallCorpus(t)
	stats := SectionStats(c)
	if len(stats) < 6 {
		t.Fatalf("stats rows = %d", len(stats))
	}
	byName := map[string]PaperStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	ts := byName["training links (|TS|)"]
	if ts.Measured != float64(c.Dataset.Config.TrainingLinks) {
		t.Errorf("|TS| measured = %v", ts.Measured)
	}
	if ts.Paper != 10265 {
		t.Errorf("|TS| paper = %v", ts.Paper)
	}
	out := SectionStatsTable(stats).String()
	if !strings.Contains(out, "distinct segments") {
		t.Errorf("stats table missing rows:\n%s", out)
	}
}

func TestReduction(t *testing.T) {
	c := smallCorpus(t)
	rows := Reduction(c, PaperBands())
	sawItems := false
	for _, r := range rows {
		if r.Items == 0 {
			continue
		}
		sawItems = true
		if r.AvgReductionFactor <= 1 {
			t.Errorf("band %s: reduction factor %v <= 1", r.Band.Label, r.AvgReductionFactor)
		}
		if r.AvgSpaceShare <= 0 || r.AvgSpaceShare >= 1 {
			t.Errorf("band %s: space share %v out of (0,1)", r.Band.Label, r.AvgSpaceShare)
		}
		if r.Completeness < 0.5 {
			t.Errorf("band %s: completeness %v suspiciously low", r.Band.Label, r.Completeness)
		}
	}
	if !sawItems {
		t.Fatal("no band had items")
	}
	out := ReductionTable(rows).String()
	if !strings.Contains(out, "reduction") {
		t.Errorf("reduction table malformed:\n%s", out)
	}
}

func TestBlockingComparison(t *testing.T) {
	c := smallCorpus(t)
	rows := CompareBlocking(c, DefaultMethods(c))
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]MethodRow{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	cart := byName["cartesian"]
	if cart.ReductionRatio() != 0 || cart.PairsCompleteness() != 1 {
		t.Errorf("cartesian metrics = %+v", cart.Metrics)
	}
	if cart.Candidates != c.Dataset.Config.TrainingLinks*c.Dataset.Config.CatalogSize {
		t.Errorf("cartesian candidates = %d", cart.Candidates)
	}
	rule := byName["rule-space"]
	if rule.Candidates == 0 {
		t.Fatal("rule-space produced no candidates")
	}
	if rule.ReductionRatio() < 0.5 {
		t.Errorf("rule-space reduction ratio = %v, want > 0.5", rule.ReductionRatio())
	}
	// Confidence-filtered rule space is strictly smaller.
	ruleHi := byName["rule-space(conf>=0.8)"]
	if ruleHi.Candidates > rule.Candidates {
		t.Errorf("conf-filtered space larger: %d > %d", ruleHi.Candidates, rule.Candidates)
	}
	out := BlockingTable(rows).String()
	if !strings.Contains(out, "rule-space") || !strings.Contains(out, "cartesian") {
		t.Errorf("blocking table malformed:\n%s", out)
	}
}

func TestThresholdSweep(t *testing.T) {
	c := smallCorpus(t)
	rows, err := ThresholdSweep(c.Dataset, core.LearnerConfig{}, []float64{0.005, 0.02, 0.05})
	if err != nil {
		t.Fatalf("ThresholdSweep: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Higher thresholds admit fewer (or equal) rules.
	for i := 1; i < len(rows); i++ {
		if rows[i].Rules > rows[i-1].Rules {
			t.Errorf("rules rose with threshold: %v then %v", rows[i-1], rows[i])
		}
	}
	if rows[0].Rules == 0 {
		t.Error("lowest threshold produced no rules")
	}
	out := SweepTable(rows).String()
	if !strings.Contains(out, "0.0050") {
		t.Errorf("sweep table malformed:\n%s", out)
	}
}

func TestSplitterAblation(t *testing.T) {
	c := smallCorpus(t)
	splitters := []segment.Splitter{
		segment.NewSeparatorSplitter(segment.Options{}),
		segment.NewNGramSplitter(3, false, segment.Options{}),
	}
	rows, err := SplitterAblation(c.Dataset, core.LearnerConfig{}, splitters)
	if err != nil {
		t.Fatalf("SplitterAblation: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Splitter != "separators(non-alphanumeric)" {
		t.Errorf("row 0 splitter = %q", rows[0].Splitter)
	}
	if rows[0].Rules == 0 {
		t.Error("separator splitter produced no rules")
	}
	out := SplitterTable(rows).String()
	if !strings.Contains(out, "3-grams") {
		t.Errorf("splitter table malformed:\n%s", out)
	}
}

func TestOrderingAblation(t *testing.T) {
	c := smallCorpus(t)
	rows := OrderingAblation(c, Policies())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All policies decide on the same item set.
	for i := 1; i < len(rows); i++ {
		if rows[i].Decisions != rows[0].Decisions {
			t.Errorf("decision counts differ: %+v", rows)
		}
	}
	// The paper's policy should not lose to support-first.
	paper, support := rows[0], rows[2]
	if paper.Precision < support.Precision-0.02 {
		t.Errorf("paper policy precision %v well below support-first %v", paper.Precision, support.Precision)
	}
	out := OrderingTable(rows).String()
	if !strings.Contains(out, "confidence,lift (paper)") {
		t.Errorf("ordering table malformed:\n%s", out)
	}
}

func TestGeneralizationExperiment(t *testing.T) {
	c := smallCorpus(t)
	rows := GeneralizationExperiment(c)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, added, replaced := rows[0], rows[1], rows[2]
	if base.ParentRules != 0 {
		t.Errorf("base has %d parent rules", base.ParentRules)
	}
	if added.Rules < base.Rules {
		t.Errorf("added variant has fewer rules: %d < %d", added.Rules, base.Rules)
	}
	if replaced.ParentRules == 0 && added.ParentRules == 0 {
		t.Log("no generalizable sibling rules on this corpus (acceptable, depends on seed)")
	}
	out := GeneralizationTable(rows).String()
	if !strings.Contains(out, "base (leaf rules)") {
		t.Errorf("generalization table malformed:\n%s", out)
	}
}

func TestRuleSpaceMethodFiltersByConfidence(t *testing.T) {
	c := smallCorpus(t)
	ext, loc, _ := BlockingRecords(c)
	if len(ext) != c.Dataset.Config.TrainingLinks {
		t.Fatalf("external records = %d", len(ext))
	}
	if len(loc) != c.Dataset.Config.CatalogSize {
		t.Fatalf("local records = %d", len(loc))
	}
	all := RuleSpace{Classifier: c.Classifier, Instances: c.Instances}
	strict := RuleSpace{Classifier: c.Classifier, Instances: c.Instances, MinConfidence: 2}
	if got := len(strict.Pairs(ext, loc)); got != 0 {
		t.Errorf("impossible confidence floor still produced %d pairs", got)
	}
	if got := len(all.Pairs(ext[:50], loc)); got == 0 {
		t.Error("rule space empty on 50 externals")
	}
	if got, want := all.Name(), "rule-space"; got != want {
		t.Errorf("Name = %q", got)
	}
	if got, want := strict.Name(), "rule-space(conf>=2.0)"; got != want {
		t.Errorf("Name = %q", got)
	}
}

func TestPercentFormat(t *testing.T) {
	tests := []struct {
		x    float64
		want string
	}{
		{1, "100%"},
		{0.969, "96.9%"},
		{0.5, "50%"},
		{0, "0%"},
	}
	for _, tc := range tests {
		if got := Percent(tc.x); got != tc.want {
			t.Errorf("Percent(%v) = %q, want %q", tc.x, got, tc.want)
		}
	}
}

func TestRenderAlignsColumns(t *testing.T) {
	tbl := &Table{
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"wide-cell-value", "x"}, {"y", "z"}},
	}
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Column 2 starts at the same offset in header and data lines.
	hIdx := strings.Index(lines[0], "long-header")
	dIdx := strings.Index(lines[2], "x")
	if hIdx != dIdx {
		t.Errorf("column misaligned: header at %d, data at %d\n%s", hIdx, dIdx, out)
	}
}

var _ = blocking.Cartesian{} // keep the import explicit for the comparison test

func TestLinkingExperiment(t *testing.T) {
	c := smallCorpus(t)
	rows, err := Linking(c, DefaultLinkingConfig(), []int{1, 2, 4})
	if err != nil {
		t.Fatalf("Linking: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	base := rows[0]
	if base.Pairs == 0 || base.Matches == 0 {
		t.Fatalf("degenerate experiment: %d pairs, %d matches", base.Pairs, base.Matches)
	}
	if base.Result.Recall() == 0 {
		t.Error("zero recall linking inside correct candidate spaces")
	}
	for _, r := range rows[1:] {
		// Quality metrics must not depend on the worker count.
		if r.Pairs != base.Pairs || r.Matches != base.Matches || r.Result != base.Result {
			t.Errorf("workers=%d row diverges from serial: %+v vs %+v", r.Workers, r, base)
		}
	}
	tbl := LinkingTable(rows)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(sb.String(), "workers") {
		t.Error("table missing workers column")
	}
	if len(LinkingWorkerCounts()) == 0 {
		t.Error("empty default worker ladder")
	}
}
