package eval

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

// MethodRow is one line of the blocking-method comparison (E4): the
// paper's rule-based space reduction against the related-work baselines
// it cites.
type MethodRow struct {
	Method string
	blocking.Metrics
}

// BlockingRecords converts the corpus into the record shape the blocking
// baselines expect: part-numbers as blocking keys, IRIs as identifiers.
func BlockingRecords(c *Corpus) (external, local []blocking.Record, truth []blocking.Pair) {
	for _, link := range c.Dataset.Training.Links {
		external = append(external, blocking.Record{
			ID:  link.External.Value,
			Key: datagen.PartNumber(c.Dataset.External, link.External),
		})
		truth = append(truth, blocking.Pair{A: link.External.Value, B: link.Local.Value})
	}
	c.Dataset.Local.Match(rdf.Term{}, rdf.TypeTerm, rdf.Term{}, func(t rdf.Triple) bool {
		if t.O == rdf.ClassTerm {
			return true
		}
		local = append(local, blocking.Record{
			ID:  t.S.Value,
			Key: datagen.PartNumber(c.Dataset.Local, t.S),
		})
		return true
	})
	return external, local, truth
}

// RuleSpace adapts the paper's approach to the blocking.Method interface:
// an external record's candidates are the instances of the classes its
// part-number's rules predict.
type RuleSpace struct {
	Classifier *core.Classifier
	Instances  *core.InstanceIndex
	// MinConfidence discards predictions from rules below this
	// confidence before expanding subspaces.
	MinConfidence float64
}

// Pairs implements blocking.Method. The local record list is ignored:
// candidates come from the instance index, which was built over the same
// catalog.
func (rs RuleSpace) Pairs(external, _ []blocking.Record) []blocking.Pair {
	var out []blocking.Pair
	seen := map[blocking.Pair]struct{}{}
	for _, e := range external {
		preds := rs.Classifier.ClassifyValues(map[rdf.Term][]string{
			datagen.PartNumberProp: {e.Key},
		})
		for _, pr := range preds {
			if pr.Rule.Confidence() < rs.MinConfidence {
				continue
			}
			for _, inst := range rs.Instances.Instances(pr.Class) {
				p := blocking.Pair{A: e.ID, B: inst.Value}
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	return out
}

// Name implements blocking.Method.
func (rs RuleSpace) Name() string {
	if rs.MinConfidence > 0 {
		return fmt.Sprintf("rule-space(conf>=%.1f)", rs.MinConfidence)
	}
	return "rule-space"
}

// CompareBlocking evaluates each method over the corpus records. The
// cartesian bound is computed analytically (materializing |SE|×|SL|
// pairs at paper scale would be pointless); every other method runs for
// real.
func CompareBlocking(c *Corpus, methods []blocking.Method) []MethodRow {
	external, local, truth := BlockingRecords(c)
	rows := make([]MethodRow, 0, len(methods))
	for _, m := range methods {
		if _, isCartesian := m.(blocking.Cartesian); isCartesian {
			rows = append(rows, MethodRow{
				Method: m.Name(),
				Metrics: blocking.Metrics{
					Candidates:     len(external) * len(local),
					TotalSpace:     len(external) * len(local),
					TrueMatches:    len(truth),
					CoveredMatches: len(truth),
				},
			})
			continue
		}
		rows = append(rows, MethodRow{
			Method:  m.Name(),
			Metrics: blocking.Evaluate(m, external, local, truth),
		})
	}
	return rows
}

// DefaultMethods returns the comparison line-up: the naive bound, the
// related-work baselines, and the paper's rule-based reduction.
func DefaultMethods(c *Corpus) []blocking.Method {
	return []blocking.Method{
		blocking.Cartesian{},
		blocking.Standard{Key: blocking.PrefixKey(5), Label: "prefix5"},
		blocking.SortedNeighborhood{Window: 5},
		blocking.Bigram{Threshold: 0.8, MaxSublists: 32},
		blocking.Canopy{},
		RuleSpace{Classifier: c.Classifier, Instances: c.Instances},
		RuleSpace{Classifier: c.Classifier, Instances: c.Instances, MinConfidence: 0.8},
	}
}

// BlockingTable renders the comparison.
func BlockingTable(rows []MethodRow) *Table {
	t := &Table{
		Title:   "Candidate generation: rule-based space vs blocking baselines",
		Headers: []string{"method", "candidates", "reduction ratio", "pairs completeness", "pairs quality"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Method,
			fmt.Sprintf("%d", r.Candidates),
			fmt.Sprintf("%.4f", r.ReductionRatio()),
			Percent(r.PairsCompleteness()),
			fmt.Sprintf("%.4f", r.PairsQuality()),
		})
	}
	return t
}
