package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rdf"
)

// GeneralizationRow is one line of the subsumption-generalization
// experiment (E6, the paper's future work): what lifting leaf rules to
// superclasses does to rule count, coverage and subspace size. A decision
// counts as correct when the predicted class equals or subsumes the
// expert class.
type GeneralizationRow struct {
	Variant     string
	Rules       int
	ParentRules int
	Decisions   int
	Correct     int
	Precision   float64
	Recall      float64
	// AvgSubspaceShare is the mean fraction of the catalog a classified
	// item still faces (generalized rules select larger subspaces — the
	// price of the extra coverage).
	AvgSubspaceShare float64
}

// GeneralizationExperiment compares the base rule set with its
// generalized variants (added parents, and parents replacing children).
func GeneralizationExperiment(c *Corpus) []GeneralizationRow {
	ont := c.Dataset.Ontology
	base := c.Model.Rules
	added := c.Model.Generalize(ont, core.GeneralizeOptions{})
	replaced := c.Model.Generalize(ont, core.GeneralizeOptions{ReplaceChildren: true})

	variants := []struct {
		name  string
		rules *core.RuleSet
	}{
		{"base (leaf rules)", &base},
		{"generalized (added)", &added},
		{"generalized (replace)", &replaced},
	}
	rows := make([]GeneralizationRow, 0, len(variants))
	for _, v := range variants {
		rows = append(rows, evalRuleSet(c, v.name, v.rules))
	}
	return rows
}

func evalRuleSet(c *Corpus, name string, rules *core.RuleSet) GeneralizationRow {
	row := GeneralizationRow{Variant: name, Rules: rules.Len()}
	for _, r := range rules.Rules {
		if r.Generalized {
			row.ParentRules++
		}
	}
	cl := core.NewClassifier(rules, c.Model.Config.Splitter)
	ont := c.Dataset.Ontology
	shareSum := 0.0
	shareN := 0
	for i := 0; i < c.Model.TrainingSize(); i++ {
		preds := cl.ClassifySegments(c.segmentsOf(i))
		if len(preds) == 0 {
			continue
		}
		row.Decisions++
		if tc, ok := c.trueClassOf(i); ok {
			pred := preds[0].Class
			if pred == tc || (ont != nil && ont.Subsumes(pred, tc)) {
				row.Correct++
			}
		}
		link := c.Model.TrainingLink(i)
		sr := core.Space(link.External, preds[:1], c.Instances)
		if sr.CatalogSize > 0 {
			shareSum += float64(sr.UnionSize) / float64(sr.CatalogSize)
			shareN++
		}
	}
	if row.Decisions > 0 {
		row.Precision = float64(row.Correct) / float64(row.Decisions)
	}
	if pop := c.learnablePopulationSubsumed(rules.Rules); pop > 0 {
		row.Recall = float64(row.Correct) / float64(pop)
	}
	if shareN > 0 {
		row.AvgSubspaceShare = shareSum / float64(shareN)
	}
	return row
}

// GeneralizationTable renders the experiment.
func GeneralizationTable(rows []GeneralizationRow) *Table {
	t := &Table{
		Title:   "Rule generalization through subsumption (paper future work)",
		Headers: []string{"variant", "#rules", "#parent", "#dec.", "prec.", "recall", "space share"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Variant,
			fmt.Sprintf("%d", r.Rules),
			fmt.Sprintf("%d", r.ParentRules),
			fmt.Sprintf("%d", r.Decisions),
			Percent(r.Precision),
			Percent(r.Recall),
			Percent(r.AvgSubspaceShare),
		})
	}
	return t
}

// learnablePopulation for a rule set with non-leaf conclusions counts
// items whose true class is equal to or subsumed by a conclusion class.
func (c *Corpus) learnablePopulationSubsumed(rules []core.Rule) int {
	ont := c.Dataset.Ontology
	classes := map[rdf.Term]struct{}{}
	for _, r := range rules {
		classes[r.Class] = struct{}{}
	}
	n := 0
	for i := 0; i < c.Model.TrainingSize(); i++ {
		hit := false
		for _, tc := range c.Model.TrueClasses(i) {
			if _, ok := classes[tc]; ok {
				hit = true
				break
			}
			if ont != nil {
				for cls := range classes {
					if ont.Subsumes(cls, tc) {
						hit = true
						break
					}
				}
			}
			if hit {
				break
			}
		}
		if hit {
			n++
		}
	}
	return n
}
