// Package eval is the experiment harness: it regenerates every
// quantitative result of the paper's Section 5 (Table 1 plus the inline
// corpus statistics) and the extension experiments DESIGN.md indexes
// (space reduction, blocking baselines, ablations, rule generalization).
// Each experiment returns typed rows and can render a fixed-width text
// table whose columns mirror the paper's.
package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

// Corpus bundles a generated dataset with everything learned from it.
type Corpus struct {
	Dataset    *datagen.Dataset
	Model      *core.Model
	Classifier *core.Classifier
	Instances  *core.InstanceIndex
}

// BuildCorpus learns a model over the dataset and prepares the shared
// classifier and instance index. A zero LearnerConfig reproduces the
// paper's settings on the part-number property.
func BuildCorpus(ds *datagen.Dataset, cfg core.LearnerConfig) (*Corpus, error) {
	if len(cfg.Properties) == 0 {
		cfg.Properties = []rdf.Term{datagen.PartNumberProp}
	}
	m, err := core.Learn(cfg, ds.Training, ds.External, ds.Local, ds.Ontology)
	if err != nil {
		return nil, fmt.Errorf("eval: learning: %w", err)
	}
	c := &Corpus{
		Dataset:    ds,
		Model:      m,
		Classifier: core.NewClassifier(&m.Rules, m.Config.Splitter),
		Instances:  core.NewInstanceIndex(ds.Local, ds.Ontology),
	}
	return c, nil
}

// segmentsOf reassembles the per-property segment lists of training link
// i from the model's retained index.
func (c *Corpus) segmentsOf(i int) map[rdf.Term][]string {
	out := map[rdf.Term][]string{}
	for _, p := range c.Classifier.Properties() {
		if segs := c.Model.SegmentsOf(i, p); len(segs) > 0 {
			out[p] = segs
		}
	}
	return out
}

// trueClassOf returns the expert class of training link i (the
// most-specific class of the linked local item); false when the local
// item carries no class.
func (c *Corpus) trueClassOf(i int) (rdf.Term, bool) {
	classes := c.Model.TrueClasses(i)
	if len(classes) == 0 {
		return rdf.Term{}, false
	}
	return classes[0], true
}

// learnablePopulation counts training links whose true class is a
// conclusion class of at least one rule — the recall denominator of
// Table 1 (the items the rule set could possibly classify).
func (c *Corpus) learnablePopulation(rules []core.Rule) int {
	classes := map[rdf.Term]struct{}{}
	for _, r := range rules {
		classes[r.Class] = struct{}{}
	}
	n := 0
	for i := 0; i < c.Model.TrainingSize(); i++ {
		for _, tc := range c.Model.TrueClasses(i) {
			if _, ok := classes[tc]; ok {
				n++
				break
			}
		}
	}
	return n
}
