package similarity

import "strings"

// SoundexCode returns the American Soundex code of s (letter + three
// digits, e.g. "Robert" → "R163"). Non-ASCII-letter runes are ignored;
// an input with no letters encodes to "0000".
func SoundexCode(s string) string {
	const codes = "01230120022455012623010202" // a..z
	var first byte
	var out []byte
	var prev byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
			c -= 'a' - 'A'
		case c >= 'A' && c <= 'Z':
		default:
			// Non-letters reset nothing but also do not separate codes in
			// classic Soundex; vowels handle separation below.
			continue
		}
		code := codes[c-'A']
		if first == 0 {
			first = c
			prev = code
			continue
		}
		// 'H' and 'W' are transparent: they do not break runs of the
		// same code; vowels do.
		if c == 'H' || c == 'W' {
			continue
		}
		if code == '0' {
			prev = '0'
			continue
		}
		if code != prev {
			out = append(out, code)
			prev = code
		}
		if len(out) == 3 {
			break
		}
	}
	if first == 0 {
		return "0000"
	}
	for len(out) < 3 {
		out = append(out, '0')
	}
	return string(first) + string(out)
}

// Soundex scores 1 when both strings share a Soundex code and 0
// otherwise — the blocking-key measure of classic census record linkage.
// Multi-token strings compare token-wise: the fraction of tokens of the
// shorter string whose code appears among the other's token codes.
type Soundex struct{}

// Similarity implements Measure.
func (Soundex) Similarity(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	if len(ta) > len(tb) {
		ta, tb = tb, ta
	}
	codesB := make(map[string]struct{}, len(tb))
	for _, tok := range tb {
		codesB[SoundexCode(tok)] = struct{}{}
	}
	hits := 0
	for _, tok := range ta {
		if _, ok := codesB[SoundexCode(tok)]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(ta))
}

// Name implements Measure.
func (Soundex) Name() string { return "soundex" }

// LongestCommonSubstring is the normalized length of the longest common
// substring: LCS / max(|a|,|b|), computed over lower-cased runes. Useful
// for identifiers sharing a long series prefix or infix.
type LongestCommonSubstring struct{}

// Similarity implements Measure.
func (LongestCommonSubstring) Similarity(a, b string) float64 {
	ra := []rune(strings.ToLower(a))
	rb := []rune(strings.ToLower(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	best := 0
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return float64(best) / float64(maxInt(len(ra), len(rb)))
}

// Name implements Measure.
func (LongestCommonSubstring) Name() string { return "lcs" }
