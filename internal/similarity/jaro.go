package similarity

// Jaro is the Jaro similarity, designed for short strings such as names
// and identifiers (Jaro 1989, used in census record linkage).
type Jaro struct{}

// Similarity implements Measure.
func (Jaro) Similarity(a, b string) float64 { return jaro([]rune(a), []rune(b)) }

// Name implements Measure.
func (Jaro) Name() string { return "jaro" }

// SimilarityUpperBound implements LengthBounded: with m matches bounded
// by min(la, lb) and transpositions at least 0, the Jaro similarity is
// at most (m/la + m/lb + 1)/3 = (min/max + 2)/3. The engine uses it to
// settle value pairs whose lengths already rule out beating the current
// best without running the O(la·lb) match scan.
func (Jaro) SimilarityUpperBound(la, lb int) float64 {
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	return (float64(minInt(la, lb))/float64(maxInt(la, lb)) + 2) / 3
}

func jaro(ra, rb []rune) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between the matched subsequences.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix,
// the standard tuning for identifiers (Winkler 1990).
type JaroWinkler struct {
	// PrefixScale is the boost per shared prefix rune; 0 means the
	// conventional 0.1. Values above 0.25 are clamped to 0.25 so the
	// result stays within [0, 1].
	PrefixScale float64
	// MaxPrefix is the longest prefix considered; 0 means the
	// conventional 4.
	MaxPrefix int
}

// Similarity implements Measure.
func (jw JaroWinkler) Similarity(a, b string) float64 {
	scale := jw.PrefixScale
	if scale == 0 {
		scale = 0.1
	}
	if scale > 0.25 {
		scale = 0.25
	}
	maxPrefix := jw.MaxPrefix
	if maxPrefix == 0 {
		maxPrefix = 4
	}
	ra, rb := []rune(a), []rune(b)
	base := jaro(ra, rb)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < maxPrefix && ra[prefix] == rb[prefix] {
		prefix++
	}
	boost := float64(prefix) * scale
	if boost > 1 {
		boost = 1
	}
	return base + boost*(1-base)
}

// Name implements Measure.
func (JaroWinkler) Name() string { return "jaro-winkler" }

// SimilarityUpperBound implements LengthBounded. The Winkler score
// base + boost·(1-base) is monotone in both the Jaro base and the
// prefix boost (boost <= 1), so plugging in Jaro's length bound and the
// maximum possible shared prefix min(la, lb, maxPrefix) never
// underestimates.
func (jw JaroWinkler) SimilarityUpperBound(la, lb int) float64 {
	base := Jaro{}.SimilarityUpperBound(la, lb)
	scale := jw.PrefixScale
	if scale == 0 {
		scale = 0.1
	}
	if scale < 0 {
		// A negative boost only lowers the score, so the Jaro bound
		// alone (scale 0) stays a valid upper bound.
		scale = 0
	}
	if scale > 0.25 {
		scale = 0.25
	}
	maxPrefix := jw.MaxPrefix
	if maxPrefix == 0 {
		maxPrefix = 4
	}
	boost := float64(minInt(maxPrefix, minInt(la, lb))) * scale
	if boost > 1 {
		boost = 1
	}
	return base + boost*(1-base)
}
