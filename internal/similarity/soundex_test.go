package similarity

import "testing"

func TestSoundexCodeKnownValues(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Rubin", "R150"},
		{"Ashcraft", "A261"}, // 'h' transparent between s and c
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", "0000"},
		{"123", "0000"},
		{"a", "A000"},
		{"résumé", "R250"}, // non-ASCII runes skipped
	}
	for _, tc := range tests {
		if got := SoundexCode(tc.in); got != tc.want {
			t.Errorf("SoundexCode(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSoundexMeasure(t *testing.T) {
	m := Soundex{}
	if got := m.Similarity("Robert", "Rupert"); got != 1 {
		t.Errorf("Similarity(Robert,Rupert) = %v, want 1", got)
	}
	if got := m.Similarity("Robert", "Zebra"); got != 0 {
		t.Errorf("Similarity(Robert,Zebra) = %v, want 0", got)
	}
	// Token-wise: one of two tokens matches.
	if got := m.Similarity("Robert Smith", "Rupert Jones"); got != 0.5 {
		t.Errorf("token-wise = %v, want 0.5", got)
	}
	if got := m.Similarity("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := m.Similarity("x", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if m.Name() != "soundex" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	m := LongestCommonSubstring{}
	tests := []struct {
		a, b string
		want float64
	}{
		{"CRCW0805X", "CRCW0805Y", 8.0 / 9.0},
		{"same", "same", 1},
		{"SAME", "same", 1}, // case-folded
		{"abc", "xyz", 0},
		{"", "", 1},
		{"a", "", 0},
		{"xabcy", "zabcw", 3.0 / 5.0},
	}
	for _, tc := range tests {
		if got := m.Similarity(tc.a, tc.b); !almostEqual(got, tc.want) {
			t.Errorf("LCS(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if m.Name() != "lcs" {
		t.Errorf("Name = %q", m.Name())
	}
}
