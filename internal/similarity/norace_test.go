//go:build !race

package similarity

// raceEnabled reports whether the test binary was built with the race
// detector; see race_test.go.
const raceEnabled = false
