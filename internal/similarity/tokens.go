package similarity

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits a string into lower-cased alphanumeric tokens; the
// shared tokenizer of the token-set measures below.
func Tokenize(s string) []string {
	var out []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, lower[start:])
	}
	return out
}

func tokenSet(s string) map[string]struct{} {
	return sliceSet(Tokenize(s))
}

func sliceSet(tokens []string) map[string]struct{} {
	set := make(map[string]struct{}, len(tokens))
	for _, tok := range tokens {
		set[tok] = struct{}{}
	}
	return set
}

// Jaccard is the token-set Jaccard coefficient |A∩B| / |A∪B|.
type Jaccard struct{}

// Similarity implements Measure.
func (j Jaccard) Similarity(a, b string) float64 {
	return j.SimilarityTokens(Tokenize(a), Tokenize(b))
}

// SimilarityTokens implements Tokenized.
func (j Jaccard) SimilarityTokens(ta, tb []string) float64 {
	return j.SimilarityTokenSets(sliceSet(ta), sliceSet(tb))
}

// SimilarityTokenSets implements TokenSetScored.
func (Jaccard) SimilarityTokenSets(sa, sb map[string]struct{}) float64 {
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for tok := range sa {
		if _, ok := sb[tok]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Name implements Measure.
func (Jaccard) Name() string { return "jaccard" }

// Dice is the q-gram Sørensen-Dice coefficient 2|A∩B| / (|A|+|B|) over
// padded character q-grams.
type Dice struct {
	// Q is the gram size; 0 means 2 (bi-grams, as in the paper's related
	// work).
	Q int
}

// Similarity implements Measure.
func (d Dice) Similarity(a, b string) float64 {
	q := d.Q
	if q == 0 {
		q = 2
	}
	ga, gb := qgramSet(a, q), qgramSet(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if _, ok := gb[g]; ok {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(ga)+len(gb))
}

// Name implements Measure.
func (d Dice) Name() string {
	q := d.Q
	if q == 0 {
		q = 2
	}
	return fmt.Sprintf("dice(q=%d)", q)
}

// QGramOverlap is the q-gram overlap coefficient |A∩B| / min(|A|,|B|).
type QGramOverlap struct {
	// Q is the gram size; 0 means 2.
	Q int
}

// Similarity implements Measure.
func (o QGramOverlap) Similarity(a, b string) float64 {
	q := o.Q
	if q == 0 {
		q = 2
	}
	ga, gb := qgramSet(a, q), qgramSet(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if _, ok := gb[g]; ok {
			inter++
		}
	}
	return float64(inter) / float64(minInt(len(ga), len(gb)))
}

// Name implements Measure.
func (o QGramOverlap) Name() string {
	q := o.Q
	if q == 0 {
		q = 2
	}
	return fmt.Sprintf("qgram-overlap(q=%d)", q)
}

// qgramSet returns the set of padded lower-case q-grams of s.
func qgramSet(s string, q int) map[string]struct{} {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return nil
	}
	runes := make([]rune, 0, len(s)+2*(q-1))
	for i := 0; i < q-1; i++ {
		runes = append(runes, '#')
	}
	runes = append(runes, []rune(s)...)
	for i := 0; i < q-1; i++ {
		runes = append(runes, '#')
	}
	set := map[string]struct{}{}
	for i := 0; i+q <= len(runes); i++ {
		set[string(runes[i:i+q])] = struct{}{}
	}
	return set
}

// QGrams returns the sorted padded q-grams of s; exported for the
// bi-gram blocking baseline which indexes them.
func QGrams(s string, q int) []string {
	set := qgramSet(s, q)
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// MongeElkan is the asymmetric-made-symmetric Monge-Elkan hybrid: each
// token of one string is matched to its best-scoring token of the other
// under an inner measure, and the two directions are averaged.
type MongeElkan struct {
	// Inner scores token pairs; nil means JaroWinkler{}.
	Inner Measure
}

// Similarity implements Measure.
func (me MongeElkan) Similarity(a, b string) float64 {
	return me.SimilarityTokens(Tokenize(a), Tokenize(b))
}

// SimilarityTokens implements Tokenized.
func (me MongeElkan) SimilarityTokens(ta, tb []string) float64 {
	inner := me.Inner
	if inner == nil {
		inner = JaroWinkler{}
	}
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	dir := func(xs, ys []string) float64 {
		sum := 0.0
		for _, x := range xs {
			best := 0.0
			for _, y := range ys {
				if s := inner.Similarity(x, y); s > best {
					best = s
				}
			}
			sum += best
		}
		return sum / float64(len(xs))
	}
	return (dir(ta, tb) + dir(tb, ta)) / 2
}

// Name implements Measure.
func (me MongeElkan) Name() string {
	inner := me.Inner
	if inner == nil {
		inner = JaroWinkler{}
	}
	return "monge-elkan(" + inner.Name() + ")"
}
