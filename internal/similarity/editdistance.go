package similarity

import (
	"sync"
	"unicode/utf8"
)

// rowPool recycles the dynamic-programming scratch rows of the edit
// distances so the hot pairwise-comparison loop of the linkage engine
// allocates nothing per call.
var rowPool = sync.Pool{
	New: func() any {
		s := make([]int, 0, 64)
		return &s
	},
}

// getRow returns a pooled []int of length n.
func getRow(n int) *[]int {
	p := rowPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

func putRow(p *[]int) { rowPool.Put(p) }

// isASCII reports whether s contains only single-byte runes, in which
// case the distances can index bytes directly and skip the []rune
// conversion.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// LevenshteinDistance returns the minimum number of single-rune
// insertions, deletions and substitutions transforming a into b.
func LevenshteinDistance(a, b string) int {
	if isASCII(a) && isASCII(b) {
		return levASCII(a, b)
	}
	return levRunes([]rune(a), []rune(b))
}

// levASCII computes the distance between two pure-ASCII strings: Myers'
// bit-parallel kernel when either side fits in one machine word (the
// shorter side becomes the pattern — the distance is symmetric), the
// single-row DP otherwise.
func levASCII(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	if len(a) <= 64 {
		return myersLev(a, b)
	}
	return levASCIIDP(a, b)
}

// levASCIIDP is the single-row DP over raw bytes, the fallback for
// patterns longer than one machine word.
func levASCIIDP(a, b string) int {
	rp := getRow(len(b) + 1)
	defer putRow(rp)
	row := *rp
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0]
		row[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			row[j] = minInt(minInt(row[j]+1, row[j-1]+1), prev+cost)
			prev = cur
		}
	}
	return row[len(b)]
}

// levRunes is the single-row DP over pre-converted runes; prev is
// D[i-1][j-1] before overwrite.
func levRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	rp := getRow(len(rb) + 1)
	defer putRow(rp)
	row := *rp
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		prev := row[0]
		row[0] = i
		ca := ra[i-1]
		for j := 1; j <= len(rb); j++ {
			cur := row[j]
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			row[j] = minInt(minInt(row[j]+1, row[j-1]+1), prev+cost)
			prev = cur
		}
	}
	return row[len(rb)]
}

// Levenshtein is the edit-distance similarity 1 - d/max(|a|,|b|).
type Levenshtein struct{}

// Similarity implements Measure.
func (Levenshtein) Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	if isASCII(a) && isASCII(b) {
		// a != b rules out the both-empty case, so the denominator is
		// positive.
		return 1 - float64(levASCII(a, b))/float64(maxInt(len(a), len(b)))
	}
	ra, rb := []rune(a), []rune(b)
	return 1 - float64(levRunes(ra, rb))/float64(maxInt(len(ra), len(rb)))
}

// SimilarityUpperBound implements LengthBounded: the distance is at least
// |la-lb|, so the similarity is at most 1 - |la-lb|/max(la,lb).
func (Levenshtein) SimilarityUpperBound(la, lb int) float64 {
	den := maxInt(la, lb)
	if den == 0 {
		return 1
	}
	return 1 - float64(absInt(la-lb))/float64(den)
}

// Name implements Measure.
func (Levenshtein) Name() string { return "levenshtein" }

// DamerauDistance returns the optimal-string-alignment distance: like
// Levenshtein but also counting the transposition of two adjacent runes
// as one operation.
func DamerauDistance(a, b string) int {
	if isASCII(a) && isASCII(b) {
		return damASCII(a, b)
	}
	return damRunes([]rune(a), []rune(b))
}

// damASCII computes the optimal-string-alignment distance between two
// pure-ASCII strings, dispatching like levASCII (OSA is symmetric, so
// the shorter side can always be the bit-parallel pattern).
func damASCII(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	if len(a) <= 64 {
		return myersDam(a, b)
	}
	return damASCIIDP(a, b)
}

// damASCIIDP is the three-row OSA DP over raw bytes, the fallback for
// patterns longer than one machine word.
func damASCIIDP(a, b string) int {
	la, lb := len(a), len(b)
	p2, p1, cp := getRow(lb+1), getRow(lb+1), getRow(lb+1)
	defer putRow(p2)
	defer putRow(p1)
	defer putRow(cp)
	prev2, prev1, cur := *p2, *p1, *cp
	for j := 0; j <= lb; j++ {
		prev1[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(prev1[j]+1, cur[j-1]+1), prev1[j-1]+cost)
			if i > 1 && j > 1 && ca == b[j-2] && a[i-2] == b[j-1] {
				cur[j] = minInt(cur[j], prev2[j-2]+1)
			}
		}
		prev2, prev1, cur = prev1, cur, prev2
	}
	return prev1[lb]
}

// damRunes is the three-row OSA DP over pre-converted runes.
func damRunes(ra, rb []rune) int {
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	p2, p1, cp := getRow(lb+1), getRow(lb+1), getRow(lb+1)
	defer putRow(p2)
	defer putRow(p1)
	defer putRow(cp)
	prev2, prev1, cur := *p2, *p1, *cp
	for j := 0; j <= lb; j++ {
		prev1[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		ca := ra[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(prev1[j]+1, cur[j-1]+1), prev1[j-1]+cost)
			if i > 1 && j > 1 && ca == rb[j-2] && ra[i-2] == rb[j-1] {
				cur[j] = minInt(cur[j], prev2[j-2]+1)
			}
		}
		prev2, prev1, cur = prev1, cur, prev2
	}
	return prev1[lb]
}

// ReferenceLevenshteinDistance runs the plain rune-path DP regardless of
// input shape. It is the oracle the bit-parallel kernels are fuzzed
// against and the baseline `linkrules bench` reports kernel speedups
// relative to; production callers should use LevenshteinDistance.
func ReferenceLevenshteinDistance(a, b string) int {
	return levRunes([]rune(a), []rune(b))
}

// ReferenceDamerauDistance is ReferenceLevenshteinDistance for the
// optimal-string-alignment distance.
func ReferenceDamerauDistance(a, b string) int {
	return damRunes([]rune(a), []rune(b))
}

// Damerau is the transposition-aware edit similarity.
type Damerau struct{}

// Similarity implements Measure.
func (Damerau) Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	if isASCII(a) && isASCII(b) {
		return 1 - float64(damASCII(a, b))/float64(maxInt(len(a), len(b)))
	}
	ra, rb := []rune(a), []rune(b)
	return 1 - float64(damRunes(ra, rb))/float64(maxInt(len(ra), len(rb)))
}

// SimilarityUpperBound implements LengthBounded: the OSA distance is at
// least |la-lb|, so the similarity is at most 1 - |la-lb|/max(la,lb).
func (Damerau) SimilarityUpperBound(la, lb int) float64 {
	den := maxInt(la, lb)
	if den == 0 {
		return 1
	}
	return 1 - float64(absInt(la-lb))/float64(den)
}

// Name implements Measure.
func (Damerau) Name() string { return "damerau" }
