package similarity

// LevenshteinDistance returns the minimum number of single-rune
// insertions, deletions and substitutions transforming a into b.
func LevenshteinDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Single-row dynamic program; prev is D[i-1][j-1] before overwrite.
	row := make([]int, len(rb)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		prev := row[0]
		row[0] = i
		for j := 1; j <= len(rb); j++ {
			cur := row[j]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			row[j] = minInt(minInt(row[j]+1, row[j-1]+1), prev+cost)
			prev = cur
		}
	}
	return row[len(rb)]
}

// Levenshtein is the edit-distance similarity 1 - d/max(|a|,|b|).
type Levenshtein struct{}

// Similarity implements Measure.
func (Levenshtein) Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	den := maxInt(la, lb)
	if den == 0 {
		return 1
	}
	return 1 - float64(LevenshteinDistance(a, b))/float64(den)
}

// Name implements Measure.
func (Levenshtein) Name() string { return "levenshtein" }

// DamerauDistance returns the optimal-string-alignment distance: like
// Levenshtein but also counting the transposition of two adjacent runes
// as one operation.
func DamerauDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: two back, one back, current.
	prev2 := make([]int, lb+1)
	prev1 := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev1[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(prev1[j]+1, cur[j-1]+1), prev1[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				cur[j] = minInt(cur[j], prev2[j-2]+1)
			}
		}
		prev2, prev1, cur = prev1, cur, prev2
	}
	return prev1[lb]
}

// Damerau is the transposition-aware edit similarity.
type Damerau struct{}

// Similarity implements Measure.
func (Damerau) Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	den := maxInt(la, lb)
	if den == 0 {
		return 1
	}
	return 1 - float64(DamerauDistance(a, b))/float64(den)
}

// Name implements Measure.
func (Damerau) Name() string { return "damerau" }
