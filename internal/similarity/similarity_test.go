package similarity

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLevenshteinDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"ab", "ba", 2},
		{"résumé", "resume", 2},
	}
	for _, tc := range tests {
		if got := LevenshteinDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("LevenshteinDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDamerauDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"ab", "ba", 1}, // one transposition instead of two edits
		{"ca", "abc", 3},
		{"abcdef", "abcdfe", 1},
		{"", "x", 1},
		{"same", "same", 0},
	}
	for _, tc := range tests {
		if got := DamerauDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("DamerauDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroKnownValues(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.9444444444444445},
		{"DIXON", "DICKSONX", 0.7666666666666666},
		{"JELLYFISH", "SMELLYFISH", 0.8962962962962964},
		{"", "", 1},
		{"a", "", 0},
		{"abc", "abc", 1},
		{"abc", "xyz", 0},
	}
	for _, tc := range tests {
		if got := (Jaro{}).Similarity(tc.a, tc.b); !almostEqual(got, tc.want) {
			t.Errorf("Jaro(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.9611111111111111},
		{"DIXON", "DICKSONX", 0.8133333333333332},
		{"identical", "identical", 1},
	}
	for _, tc := range tests {
		if got := (JaroWinkler{}).Similarity(tc.a, tc.b); !almostEqual(got, tc.want) {
			t.Errorf("JaroWinkler(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	// Prefix boost must help the shared-prefix pair more.
	base := (Jaro{}).Similarity("CRCW0805", "CRCW0812")
	boosted := (JaroWinkler{}).Similarity("CRCW0805", "CRCW0812")
	if boosted <= base {
		t.Errorf("JaroWinkler %v not above Jaro %v for shared prefix", boosted, base)
	}
	// Clamping: absurd scale must not push the score above 1.
	jw := JaroWinkler{PrefixScale: 0.9, MaxPrefix: 10}
	if got := jw.Similarity("prefix-aaaa", "prefix-bbbb"); got > 1 {
		t.Errorf("clamped JaroWinkler = %v > 1", got)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Fixed-Film Resistor, 63V!")
	want := []string{"fixed", "film", "resistor", "63v"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if got := Tokenize("...---..."); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v", got)
	}
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"a b c", "b c d", 0.5},
		{"same tokens", "tokens same", 1},
		{"", "", 1},
		{"x", "", 0},
		{"abc", "xyz", 0},
	}
	for _, tc := range tests {
		if got := (Jaccard{}).Similarity(tc.a, tc.b); !almostEqual(got, tc.want) {
			t.Errorf("Jaccard(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDiceAndOverlap(t *testing.T) {
	// "night" vs "nacht" classic: padded bigram sets share #n, ht, t#.
	d := (Dice{}).Similarity("night", "nacht")
	if d <= 0 || d >= 1 {
		t.Errorf("Dice(night,nacht) = %v, want in (0,1)", d)
	}
	if got := (Dice{}).Similarity("same", "same"); !almostEqual(got, 1) {
		t.Errorf("Dice identity = %v", got)
	}
	if got := (QGramOverlap{}).Similarity("same", "same"); !almostEqual(got, 1) {
		t.Errorf("Overlap identity = %v", got)
	}
	// Overlap >= Dice always (min denominator <= average denominator).
	pairs := [][2]string{{"night", "nacht"}, {"abc", "abcdef"}, {"CRCW0805", "CRCW0812"}}
	for _, p := range pairs {
		dd := (Dice{}).Similarity(p[0], p[1])
		oo := (QGramOverlap{}).Similarity(p[0], p[1])
		if oo < dd-1e-12 {
			t.Errorf("Overlap(%q,%q)=%v < Dice=%v", p[0], p[1], oo, dd)
		}
	}
	if got := (Dice{Q: 3}).Name(); got != "dice(q=3)" {
		t.Errorf("Name = %q", got)
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams = %v, want %v", got, want)
	}
	if got := QGrams("", 2); len(got) != 0 {
		t.Errorf("QGrams empty = %v", got)
	}
	if got := QGrams("AB", 2); !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams not case-folded: %v", got)
	}
}

func TestMongeElkan(t *testing.T) {
	me := MongeElkan{}
	if got := me.Similarity("Paris France", "France Paris"); !almostEqual(got, 1) {
		t.Errorf("MongeElkan permutation = %v, want 1", got)
	}
	a := me.Similarity("Fixed Film Resistor", "Fixed-Film Resistance")
	b := me.Similarity("Fixed Film Resistor", "Tantalum Capacitor")
	if a <= b {
		t.Errorf("MongeElkan ranking wrong: related %v <= unrelated %v", a, b)
	}
	if got := me.Similarity("", ""); !almostEqual(got, 1) {
		t.Errorf("MongeElkan empty = %v", got)
	}
	if got := me.Similarity("x", ""); !almostEqual(got, 0) {
		t.Errorf("MongeElkan one-empty = %v", got)
	}
	if got := me.Name(); got != "monge-elkan(jaro-winkler)" {
		t.Errorf("Name = %q", got)
	}
}

func TestTFIDF(t *testing.T) {
	m := NewTFIDF()
	if m.Fitted() {
		t.Error("fresh TFIDF reports fitted")
	}
	corpus := []string{
		"acme resistor 10k",
		"acme resistor 22k",
		"acme capacitor 100uF",
		"acme diode signal",
	}
	m.Fit(corpus)
	if !m.Fitted() {
		t.Error("TFIDF not fitted after Fit")
	}
	// Sharing only the ubiquitous token "acme" must score lower than
	// sharing the rare token "capacitor".
	generic := m.Similarity("acme resistor 10k", "acme capacitor 100uF")
	rare := m.Similarity("acme capacitor 100uF", "big capacitor 100uF")
	if generic >= rare {
		t.Errorf("TFIDF: generic-token pair %v >= rare-token pair %v", generic, rare)
	}
	if got := m.Similarity("acme resistor 10k", "acme resistor 10k"); !almostEqual(got, 1) {
		t.Errorf("TFIDF identity = %v", got)
	}
	if got := m.Similarity("", "x"); got != 0 {
		t.Errorf("TFIDF empty vs non-empty = %v", got)
	}
	if got := m.Similarity("", ""); got != 1 {
		t.Errorf("TFIDF both empty = %v", got)
	}
}

func TestExactMeasures(t *testing.T) {
	if (Exact{}).Similarity("a", "a") != 1 || (Exact{}).Similarity("a", "A") != 0 {
		t.Error("Exact misbehaves")
	}
	if (ExactFold{}).Similarity("a", "A") != 1 || (ExactFold{}).Similarity("a", "b") != 0 {
		t.Error("ExactFold misbehaves")
	}
	f := Func{F: func(a, b string) float64 { return 0.5 }, ID: "half"}
	if f.Similarity("x", "y") != 0.5 || f.Name() != "half" {
		t.Error("Func adapter misbehaves")
	}
}

// allMeasures lists every Measure with default configuration.
func allMeasures() []Measure {
	tf := NewTFIDF()
	tf.Fit([]string{"alpha beta", "gamma delta", "alpha gamma"})
	return []Measure{
		Exact{}, ExactFold{}, Levenshtein{}, Damerau{}, Jaro{},
		JaroWinkler{}, Jaccard{}, Dice{}, QGramOverlap{}, MongeElkan{}, tf,
	}
}

// Property: every measure is symmetric, bounded to [0,1], and scores 1 on
// identical strings.
func TestMeasureProperties(t *testing.T) {
	measures := allMeasures()
	f := func(a, b string) bool {
		for _, m := range measures {
			sab := m.Similarity(a, b)
			sba := m.Similarity(b, a)
			if math.Abs(sab-sba) > 1e-9 {
				return false
			}
			if sab < 0 || sab > 1+1e-9 {
				return false
			}
			if m.Similarity(a, a) != 1 {
				// TFIDF of a string with no tokens vs itself is 1 by the
				// both-empty rule; everything else must self-score 1 too.
				if s := m.Similarity(a, a); math.Abs(s-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein distance obeys the triangle inequality and
// Damerau distance never exceeds Levenshtein.
func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b, c string) bool {
		ab := LevenshteinDistance(a, b)
		bc := LevenshteinDistance(b, c)
		ac := LevenshteinDistance(a, c)
		if ac > ab+bc {
			return false
		}
		return DamerauDistance(a, b) <= ab
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// referenceLevenshtein is the straightforward rune-matrix implementation
// the optimized byte/pooled paths are checked against.
func referenceLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	d := make([][]int, len(ra)+1)
	for i := range d {
		d[i] = make([]int, len(rb)+1)
		d[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		d[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = minInt(minInt(d[i-1][j]+1, d[i][j-1]+1), d[i-1][j-1]+cost)
		}
	}
	return d[len(ra)][len(rb)]
}

// The ASCII byte fast path and the rune path must agree with the
// reference on ASCII inputs, and the rune path must handle multi-byte
// runes by rune count, not byte count.
func TestEditDistanceASCIIFastPathParity(t *testing.T) {
	ascii := []struct{ a, b string }{
		{"", ""}, {"", "abc"}, {"abc", ""}, {"kitten", "sitting"},
		{"CRCW0805-63V-ohm", "CRCW0812/63V/ohm"}, {"abcd", "abcd"},
		{"a", "ab"}, {"flaw", "lawn"},
	}
	for _, tc := range ascii {
		want := referenceLevenshtein(tc.a, tc.b)
		if got := LevenshteinDistance(tc.a, tc.b); got != want {
			t.Errorf("LevenshteinDistance(%q, %q) = %d, want %d", tc.a, tc.b, got, want)
		}
		if got := levRunes([]rune(tc.a), []rune(tc.b)); got != want {
			t.Errorf("levRunes(%q, %q) = %d, want %d", tc.a, tc.b, got, want)
		}
	}
	// Multi-byte runes: "héllo" vs "hello" is one substitution.
	if got := LevenshteinDistance("héllo", "hello"); got != 1 {
		t.Errorf(`LevenshteinDistance("héllo", "hello") = %d, want 1`, got)
	}
	if got := DamerauDistance("héllo", "héllo"); got != 0 {
		t.Errorf("DamerauDistance(identical unicode) = %d, want 0", got)
	}
	// Transposition across the ASCII/unicode boundary.
	if got := DamerauDistance("ab", "ba"); got != 1 {
		t.Errorf(`DamerauDistance("ab", "ba") = %d, want 1`, got)
	}
	if got := DamerauDistance("αβ", "βα"); got != 1 {
		t.Errorf(`DamerauDistance("αβ", "βα") = %d, want 1`, got)
	}
}

// Property: SimilarityUpperBound never underestimates the real score.
func TestSimilarityUpperBound(t *testing.T) {
	measures := []struct {
		m Measure
		b LengthBounded
	}{
		{Levenshtein{}, Levenshtein{}},
		{Damerau{}, Damerau{}},
	}
	f := func(a, b string) bool {
		la, lb := len([]rune(a)), len([]rune(b))
		for _, mb := range measures {
			if mb.m.Similarity(a, b) > mb.b.SimilarityUpperBound(la, lb)+1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	if got := (Levenshtein{}).SimilarityUpperBound(0, 0); got != 1 {
		t.Errorf("SimilarityUpperBound(0,0) = %v, want 1", got)
	}
	if got := (Damerau{}).SimilarityUpperBound(2, 10); !almostEqual(got, 0.2) {
		t.Errorf("SimilarityUpperBound(2,10) = %v, want 0.2", got)
	}
}

// Property: SimilarityTokens on Tokenize output equals Similarity.
func TestSimilarityTokensParity(t *testing.T) {
	fitted := NewTFIDF()
	fitted.Fit([]string{"acme chip resistor", "acme capacitor", "chip resistor 100 ohm"})
	tokenized := []interface {
		Measure
		Tokenized
	}{
		Jaccard{},
		MongeElkan{},
		MongeElkan{Inner: Levenshtein{}},
		NewTFIDF(),
		fitted,
	}
	f := func(a, b string) bool {
		for _, m := range tokenized {
			if m.Similarity(a, b) != m.SimilarityTokens(Tokenize(a), Tokenize(b)) {
				return false
			}
		}
		// Jaccard additionally scores prebuilt token sets.
		j := Jaccard{}
		return j.Similarity(a, b) == j.SimilarityTokenSets(tokenSet(a), tokenSet(b))
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The pooled scratch rows must be safe under concurrent use.
func TestEditDistanceConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			alphabet := "abcdefgh"
			rs := func(n int) string {
				b := make([]byte, n)
				for i := range b {
					b[i] = alphabet[rng.Intn(len(alphabet))]
				}
				return string(b)
			}
			for i := 0; i < 200; i++ {
				a, b := rs(rng.Intn(20)), rs(rng.Intn(20))
				if got, want := LevenshteinDistance(a, b), referenceLevenshtein(a, b); got != want {
					t.Errorf("concurrent LevenshteinDistance(%q, %q) = %d, want %d", a, b, got, want)
					return
				}
				DamerauDistance(a, b)
			}
		}(int64(w))
	}
	wg.Wait()
}
