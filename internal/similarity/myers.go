package similarity

// Myers' bit-parallel edit distance (Myers 1999, in the distance
// formulation of Hyyrö 2001/2002). The dynamic-programming column is
// encoded as two bit vectors — Pv marks rows whose value increased from
// the row above, Mv rows whose value decreased — and one text character
// advances the entire column in a handful of word-wide boolean
// operations. For patterns up to 64 characters that replaces the O(m)
// inner DP loop with O(1) branch-free word arithmetic: one pair costs
// O(n) word operations instead of O(m·n) integer compares.
//
// The kernels below operate on raw bytes and therefore apply only when
// both inputs are pure ASCII (the common case for the part numbers,
// identifiers and names this system links). The rune-path DP in
// editdistance.go remains the fallback for non-ASCII input and for
// patterns longer than 64 characters, and doubles as the reference
// oracle the fuzz tests compare against.

// peqTable is the pattern-match bitmap of one ASCII pattern: bit i of
// peq[c] is set when pattern[i] == c. Building it costs O(m) after a
// 2 KiB clear; scoring reuses it for every text character, which is why
// prepared patterns (see PreparedMeasure) hold one persistently.
type peqTable [256]uint64

// buildPeq fills peq with the match bitmap of pattern a (ASCII,
// 1 <= len(a) <= 64). The table must be zeroed beforehand.
func buildPeq(peq *peqTable, a string) {
	for i := 0; i < len(a); i++ {
		peq[a[i]] |= 1 << uint(i)
	}
}

// myersLevPeq returns the Levenshtein distance between the pattern
// described by peq (length m, 1 <= m <= 64) and an ASCII text b of any
// length.
func myersLevPeq(peq *peqTable, m int, b string) int {
	pv := ^uint64(0)
	mv := uint64(0)
	score := m
	last := uint64(1) << uint(m-1)
	for i := 0; i < len(b); i++ {
		eq := peq[b[i]]
		// d0 marks rows whose value equals the previous column's value
		// above-left (match or carry chain); hp/hn are the horizontal
		// +1/-1 deltas, fed back vertically after shifting down one row.
		d0 := (((eq & pv) + pv) ^ pv) | eq | mv
		hp := mv | ^(d0 | pv)
		hn := pv & d0
		if hp&last != 0 {
			score++
		}
		if hn&last != 0 {
			score--
		}
		hp = hp<<1 | 1 // row 0 of the next column costs one more insertion
		hn <<= 1
		pv = hn | ^(d0 | hp)
		mv = hp & d0
	}
	return score
}

// myersDamPeq returns the optimal-string-alignment (Damerau) distance
// between the pattern described by peq (length m, 1 <= m <= 64) and an
// ASCII text b. Hyyrö's transposition extension: d0 additionally marks
// rows where swapping the current and previous characters of both
// strings aligns them, tracked through the previous column's d0 and eq.
func myersDamPeq(peq *peqTable, m int, b string) int {
	pv := ^uint64(0)
	mv := uint64(0)
	var prevD0, prevEq uint64
	score := m
	last := uint64(1) << uint(m-1)
	for i := 0; i < len(b); i++ {
		eq := peq[b[i]]
		d0 := (((^prevD0)&eq)<<1)&prevEq |
			(((eq & pv) + pv) ^ pv) | eq | mv
		hp := mv | ^(d0 | pv)
		hn := pv & d0
		if hp&last != 0 {
			score++
		}
		if hn&last != 0 {
			score--
		}
		hp = hp<<1 | 1
		hn <<= 1
		pv = hn | ^(d0 | hp)
		mv = hp & d0
		prevD0 = d0
		prevEq = eq
	}
	return score
}

// fitsMyers reports whether a can serve as a bit-parallel pattern: pure
// ASCII and at most one machine word of characters.
func fitsMyers(a string) bool {
	return len(a) >= 1 && len(a) <= 64 && isASCII(a)
}

// myersLev runs the single-word kernel with a stack-allocated peq table;
// the caller guarantees fitsMyers(a) and isASCII(b).
func myersLev(a, b string) int {
	var peq peqTable
	buildPeq(&peq, a)
	return myersLevPeq(&peq, len(a), b)
}

// myersDam is myersLev for the optimal-string-alignment distance.
func myersDam(a, b string) int {
	var peq peqTable
	buildPeq(&peq, a)
	return myersDamPeq(&peq, len(a), b)
}
