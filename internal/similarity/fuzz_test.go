package similarity

import (
	"math/rand"
	"strings"
	"testing"
)

// checkEditDistances asserts every production edit-distance path —
// dispatching kernels, prepared patterns — against the rune-path DP
// reference for one input pair.
func checkEditDistances(t *testing.T, a, b string) {
	t.Helper()
	wantLev := ReferenceLevenshteinDistance(a, b)
	wantDam := ReferenceDamerauDistance(a, b)
	if got := LevenshteinDistance(a, b); got != wantLev {
		t.Fatalf("LevenshteinDistance(%q, %q) = %d, reference DP = %d", a, b, got, wantLev)
	}
	if got := LevenshteinDistance(b, a); got != wantLev {
		t.Fatalf("LevenshteinDistance(%q, %q) = %d, want symmetric %d", b, a, got, wantLev)
	}
	if got := DamerauDistance(a, b); got != wantDam {
		t.Fatalf("DamerauDistance(%q, %q) = %d, reference DP = %d", a, b, got, wantDam)
	}
	if got := DamerauDistance(b, a); got != wantDam {
		t.Fatalf("DamerauDistance(%q, %q) = %d, want symmetric %d", b, a, got, wantDam)
	}
	if wantDam > wantLev {
		t.Fatalf("DamerauDistance(%q, %q) = %d exceeds Levenshtein %d", a, b, wantDam, wantLev)
	}
	// The prepared patterns must agree with the plain similarity exactly.
	if got, want := (Levenshtein{}).Prepare(a).Similarity(b), (Levenshtein{}).Similarity(a, b); got != want {
		t.Fatalf("prepared Levenshtein(%q, %q) = %v, plain = %v", a, b, got, want)
	}
	if got, want := (Damerau{}).Prepare(a).Similarity(b), (Damerau{}).Similarity(a, b); got != want {
		t.Fatalf("prepared Damerau(%q, %q) = %v, plain = %v", a, b, got, want)
	}
	pa, pb := (Levenshtein{}).Prepare(a), (Levenshtein{}).Prepare(b)
	if got, want := pa.SimilarityPrepared(pb), (Levenshtein{}).Similarity(a, b); got != want {
		t.Fatalf("prepared-pair Levenshtein(%q, %q) = %v, plain = %v", a, b, got, want)
	}
}

// FuzzEditDistance fuzzes the bit-parallel kernels against the DP
// oracle over arbitrary UTF-8 (and arbitrary byte) inputs, including
// patterns longer than one machine word and multi-byte runes — the
// boundaries where the ASCII dispatch hands off to the fallbacks.
func FuzzEditDistance(f *testing.F) {
	seeds := [][2]string{
		{"", ""},
		{"", "abc"},
		{"kitten", "sitting"},
		{"CRCW0805-63V-ohm", "CRCW0812/63V/ohm"},
		{"ab", "ba"},
		{"abcd", "acbd"},
		{"CRCW0805-63V-Ω", "CRCW0812/63V/Ω"}, // multi-byte runes
		{"résumé", "resume"},
		{strings.Repeat("a", 63) + "b", strings.Repeat("a", 64)},  // word boundary
		{strings.Repeat("xy", 50), strings.Repeat("yx", 50)},      // > 64 chars
		{strings.Repeat("a", 100), strings.Repeat("a", 70) + "b"}, // both > 64
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		checkEditDistances(t, a, b)
	})
}

// TestEditDistanceExhaustiveSmall compares every pair of strings up to
// length 4 over a 3-letter alphabet (plus transposition-rich length-5
// pairs) against the reference DP — small enough to run in every `go
// test`, dense enough to pin the kernels' carry logic.
func TestEditDistanceExhaustiveSmall(t *testing.T) {
	alphabet := []byte("abc")
	var all []string
	var gen func(prefix []byte, depth int)
	gen = func(prefix []byte, depth int) {
		all = append(all, string(prefix))
		if depth == 0 {
			return
		}
		for _, c := range alphabet {
			gen(append(prefix, c), depth-1)
		}
	}
	gen(nil, 4)
	for _, a := range all {
		for _, b := range all {
			checkEditDistances(t, a, b)
		}
	}
}

// TestEditDistanceRandomLong drives long and mixed-script pairs through
// every dispatch path: pure ASCII beyond 64 chars (DP fallback), ASCII
// around the word boundary (bit-parallel), and multi-byte runes (rune
// path).
func TestEditDistanceRandomLong(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabets := []string{
		"ab",
		"abcdefgh",
		"abcdefghijklmnopqrstuvwxyz0123456789-/",
		"abαβ", // mixed ASCII and Greek
	}
	randStr := func(alpha string, n int) string {
		runes := []rune(alpha)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(runes[rng.Intn(len(runes))])
		}
		return sb.String()
	}
	for i := 0; i < 400; i++ {
		alpha := alphabets[i%len(alphabets)]
		la, lb := rng.Intn(130), rng.Intn(130)
		checkEditDistances(t, randStr(alpha, la), randStr(alpha, lb))
	}
}

// TestEditDistanceZeroAllocASCII pins the allocation contract of the
// hot path: scoring ASCII pairs — short (bit-parallel) or long (pooled
// DP rows) — allocates nothing per call, and neither does scoring
// against a prepared pattern.
func TestEditDistanceZeroAllocASCII(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes escape analysis; allocation counts are only meaningful without it")
	}
	short1, short2 := "CRCW0805-63V-ohm", "CRCW0812/63V/ohm"
	long1 := strings.Repeat("CRCW0805-63V-ohm ", 6) // > 64 chars
	long2 := strings.Repeat("CRCW0812/63V/ohm ", 6)
	lp := (Levenshtein{}).Prepare(short1)
	dp := (Damerau{}).Prepare(short1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"lev-short", func() { LevenshteinDistance(short1, short2) }},
		{"lev-long", func() { LevenshteinDistance(long1, long2) }},
		{"dam-short", func() { DamerauDistance(short1, short2) }},
		{"dam-long", func() { DamerauDistance(long1, long2) }},
		{"lev-sim", func() { (Levenshtein{}).Similarity(short1, short2) }},
		{"dam-sim", func() { (Damerau{}).Similarity(short1, short2) }},
		{"lev-prepared", func() { lp.Similarity(short2) }},
		{"dam-prepared", func() { dp.Similarity(short2) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestJaroUpperBound property-checks the new length bounds: over random
// pairs the bound computed from the rune lengths must never fall below
// the measured similarity, for Jaro and for Winkler variants with
// non-default tunings.
func TestJaroUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	measures := []struct {
		name    string
		sim     func(a, b string) float64
		bound   func(la, lb int) float64
		measure Measure
	}{
		{"jaro", Jaro{}.Similarity, Jaro{}.SimilarityUpperBound, Jaro{}},
		{"jaro-winkler", JaroWinkler{}.Similarity, JaroWinkler{}.SimilarityUpperBound, JaroWinkler{}},
		{"jaro-winkler-tuned", JaroWinkler{PrefixScale: 0.25, MaxPrefix: 6}.Similarity,
			JaroWinkler{PrefixScale: 0.25, MaxPrefix: 6}.SimilarityUpperBound,
			JaroWinkler{PrefixScale: 0.25, MaxPrefix: 6}},
	}
	// The engine fast path requires LengthBounded; a silent interface
	// regression would disable the pruning without failing any test.
	for _, m := range measures {
		if _, ok := m.measure.(LengthBounded); !ok {
			t.Fatalf("%s does not implement LengthBounded", m.name)
		}
	}
	alpha := "abcdefgh"
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return sb.String()
	}
	for i := 0; i < 2000; i++ {
		a, b := randStr(rng.Intn(20)), randStr(rng.Intn(20))
		la, lb := len([]rune(a)), len([]rune(b))
		for _, m := range measures {
			sim, bound := m.sim(a, b), m.bound(la, lb)
			if sim > bound+1e-12 {
				t.Fatalf("%s(%q, %q) = %v exceeds bound %v", m.name, a, b, sim, bound)
			}
		}
	}
}
