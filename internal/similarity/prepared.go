package similarity

// Prepared implementations of the edit-distance family: the pattern
// bitmap of the bit-parallel kernels is a pure function of one side, so
// an indexed value's bitmap is built once and amortized over every pair
// it is compared in. Values outside the kernels' domain (non-ASCII, or
// longer than one machine word) prepare to a thin wrapper that falls
// back to the regular Similarity path, so Prepare never changes results,
// only cost.

// editPattern is the shared prepared form of Levenshtein and Damerau: a
// persistent peq table when the value fits the bit-parallel kernels,
// plus the original value for fallbacks and the rune length for the
// similarity denominator.
type editPattern struct {
	value   string
	runeLen int
	peq     *peqTable // nil when the value cannot be a Myers pattern
	dam     bool      // transposition-aware kernel and fallback
}

func newEditPattern(a string, dam bool) *editPattern {
	p := &editPattern{value: a, runeLen: runeLen(a), dam: dam}
	if fitsMyers(a) {
		p.peq = new(peqTable)
		buildPeq(p.peq, a)
	}
	return p
}

// distance returns the configured edit distance to an ASCII string b;
// callers guarantee p.peq != nil.
func (p *editPattern) distance(b string) int {
	if p.dam {
		return myersDamPeq(p.peq, len(p.value), b)
	}
	return myersLevPeq(p.peq, len(p.value), b)
}

// Similarity implements Prepared.
func (p *editPattern) Similarity(b string) float64 {
	if p.value == b {
		return 1
	}
	if p.peq != nil && isASCII(b) {
		// a != b and len(a) >= 1, so the denominator is positive.
		return 1 - float64(p.distance(b))/float64(maxInt(len(p.value), len(b)))
	}
	if p.dam {
		return Damerau{}.Similarity(p.value, b)
	}
	return Levenshtein{}.Similarity(p.value, b)
}

// SimilarityPrepared implements Prepared. Edit distances consume the
// right-hand side as a raw string, so the other side's preparation
// contributes only its already-extracted value.
func (p *editPattern) SimilarityPrepared(o Prepared) float64 {
	if op, ok := o.(*editPattern); ok {
		return p.Similarity(op.value)
	}
	return 0
}

// Prepare implements PreparedMeasure.
func (Levenshtein) Prepare(a string) Prepared { return newEditPattern(a, false) }

// Prepare implements PreparedMeasure.
func (Damerau) Prepare(a string) Prepared { return newEditPattern(a, true) }

// runeLen counts runes without allocating.
func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}
