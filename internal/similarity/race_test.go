//go:build race

package similarity

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation changes escape analysis and breaks
// allocation-count assertions.
const raceEnabled = true
