// Package similarity provides the string similarity measures the linking
// step uses to compare data item descriptions inside a linking (sub)space.
// All measures are normalized to [0, 1] where 1 means identical, and all
// are safe for concurrent use after construction.
//
// The paper does not prescribe a matcher — its contribution is reducing
// the space the matcher runs on — so this package supplies the standard
// record-linkage toolbox: edit-distance family, Jaro family, token/q-gram
// set measures, a corpus-weighted TF-IDF cosine, and the Monge-Elkan
// hybrid.
package similarity

import "strings"

// Measure scores the similarity of two strings in [0, 1].
type Measure interface {
	// Similarity returns 1 for identical inputs and approaches 0 as they
	// diverge.
	Similarity(a, b string) float64
	// Name identifies the measure, for reports and configuration.
	Name() string
}

// LengthBounded is implemented by measures whose score can be bounded
// from above using only the rune lengths of the two inputs. Callers that
// scan many value pairs for a maximum (such as the linkage engine) use
// the bound to skip pairs that cannot beat the current best without
// running the full comparison. Implementations must never underestimate:
// Similarity(a, b) <= SimilarityUpperBound(runeLen(a), runeLen(b)) for
// all a, b.
type LengthBounded interface {
	// SimilarityUpperBound returns an upper bound on Similarity for any
	// pair of inputs with the given rune lengths.
	SimilarityUpperBound(lenA, lenB int) float64
}

// Tokenized is implemented by measures whose score is a pure function of
// Tokenize(a) and Tokenize(b). Callers that compare the same values many
// times (again, the linkage engine) tokenize each value once up front and
// call SimilarityTokens, skipping the per-call lowercasing and splitting.
// Implementations must satisfy
// Similarity(a, b) == SimilarityTokens(Tokenize(a), Tokenize(b)).
type Tokenized interface {
	// SimilarityTokens scores two pre-tokenized values.
	SimilarityTokens(a, b []string) float64
}

// TokenSetScored is implemented by measures whose score is a pure
// function of the two inputs' token *sets*. Callers that compare the
// same values many times build each set once and call
// SimilarityTokenSets, eliminating the per-comparison map construction
// of SimilarityTokens. Implementations must satisfy
// SimilarityTokens(a, b) == SimilarityTokenSets(sliceSet(a), sliceSet(b)).
type TokenSetScored interface {
	// SimilarityTokenSets scores two prebuilt token sets.
	SimilarityTokenSets(a, b map[string]struct{}) float64
}

// Prepared is one side of a comparison precompiled by a PreparedMeasure:
// whatever per-value work the measure can hoist out of the pairwise loop
// (Myers pattern bitmaps, TF-IDF weight vectors) done once. A Prepared
// value is immutable and safe for concurrent use.
type Prepared interface {
	// Similarity scores the prepared left-hand value against b. Must
	// equal the owning measure's Similarity(a, b) exactly.
	Similarity(b string) float64
	// SimilarityPrepared scores against another Prepared of the same
	// measure, letting both sides' precomputation pay off. o must
	// originate from the same measure's Prepare; handing it a foreign
	// Prepared is a programming error (implementations score it 0).
	SimilarityPrepared(o Prepared) float64
}

// PreparedMeasure is implemented by measures that can precompile one
// side of a comparison. Callers that score the same values many times
// (the linkage engine's value index) prepare each distinct value once
// and reuse it across every pair it appears in. Implementations must
// satisfy Prepare(a).Similarity(b) == Similarity(a, b) for all a, b.
type PreparedMeasure interface {
	Measure
	// Prepare precompiles a as the left-hand side of future comparisons.
	Prepare(a string) Prepared
}

// Func adapts a plain function to the Measure interface.
type Func struct {
	F  func(a, b string) float64
	ID string
}

// Similarity implements Measure.
func (f Func) Similarity(a, b string) float64 { return f.F(a, b) }

// Name implements Measure.
func (f Func) Name() string { return f.ID }

// Exact scores 1 for byte-identical strings and 0 otherwise.
type Exact struct{}

// Similarity implements Measure.
func (Exact) Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// Name implements Measure.
func (Exact) Name() string { return "exact" }

// ExactFold scores 1 for case-insensitively equal strings, 0 otherwise.
type ExactFold struct{}

// Similarity implements Measure.
func (ExactFold) Similarity(a, b string) float64 {
	if strings.EqualFold(a, b) {
		return 1
	}
	return 0
}

// Name implements Measure.
func (ExactFold) Name() string { return "exact-fold" }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
