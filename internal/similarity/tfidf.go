package similarity

import (
	"math"
)

// TFIDF is a corpus-weighted cosine similarity over tokens: rare tokens
// (high inverse document frequency) dominate the score, so shared generic
// tokens ("the", a manufacturer name present everywhere) contribute
// little. Fit must be called with the document corpus before scoring;
// Similarity on an unfitted measure falls back to unweighted cosine.
type TFIDF struct {
	idf  map[string]float64
	docs int
}

// NewTFIDF returns an unfitted measure.
func NewTFIDF() *TFIDF { return &TFIDF{} }

// Fit builds the IDF table from the corpus; each string is one document.
// Fit replaces any previous fit. The measure must not be used
// concurrently with Fit.
func (m *TFIDF) Fit(corpus []string) {
	m.docs = len(corpus)
	df := map[string]int{}
	for _, doc := range corpus {
		for tok := range tokenSet(doc) {
			df[tok]++
		}
	}
	m.idf = make(map[string]float64, len(df))
	for tok, n := range df {
		// Smoothed IDF keeps weights positive even for ubiquitous tokens.
		m.idf[tok] = math.Log(1 + float64(m.docs)/float64(n))
	}
}

// Fitted reports whether Fit has been called.
func (m *TFIDF) Fitted() bool { return m.idf != nil }

// weight returns the IDF of tok; unseen tokens get the maximum possible
// weight (they are rarer than anything in the corpus).
func (m *TFIDF) weight(tok string) float64 {
	if m.idf == nil {
		return 1
	}
	if w, ok := m.idf[tok]; ok {
		return w
	}
	return math.Log(1 + float64(m.docs+1))
}

// Similarity implements Measure.
func (m *TFIDF) Similarity(a, b string) float64 {
	return m.SimilarityTokens(Tokenize(a), Tokenize(b))
}

// SimilarityTokens implements Tokenized.
func (m *TFIDF) SimilarityTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	va := m.vector(ta)
	vb := m.vector(tb)
	dot := 0.0
	for tok, wa := range va {
		if wb, ok := vb[tok]; ok {
			dot += wa * wb
		}
	}
	na, nb := norm(va), norm(vb)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

// tfidfVector is the prepared form of one document: its TF·IDF vector
// and norm, computed once. It captures the fit in effect at Prepare
// time; refitting the measure afterwards does not update it.
type tfidfVector struct {
	m    *TFIDF
	vec  map[string]float64
	norm float64
}

// Prepare implements PreparedMeasure.
func (m *TFIDF) Prepare(a string) Prepared {
	toks := Tokenize(a)
	p := &tfidfVector{m: m}
	if len(toks) > 0 {
		p.vec = m.vector(toks)
		p.norm = norm(p.vec)
	}
	return p
}

// Similarity implements Prepared.
func (p *tfidfVector) Similarity(b string) float64 {
	return p.SimilarityPrepared(p.m.Prepare(b).(*tfidfVector))
}

// SimilarityPrepared implements Prepared: a sparse dot product over the
// two precomputed vectors, iterating the smaller one.
func (p *tfidfVector) SimilarityPrepared(o Prepared) float64 {
	q, ok := o.(*tfidfVector)
	if !ok {
		return 0
	}
	// Mirror SimilarityTokens' edge cases exactly.
	if len(p.vec) == 0 && len(q.vec) == 0 {
		return 1
	}
	if len(p.vec) == 0 || len(q.vec) == 0 {
		return 0
	}
	va, vb := p.vec, q.vec
	if len(vb) < len(va) {
		va, vb = vb, va
	}
	dot := 0.0
	for tok, wa := range va {
		if wb, ok := vb[tok]; ok {
			dot += wa * wb
		}
	}
	if p.norm == 0 || q.norm == 0 {
		return 0
	}
	return dot / (p.norm * q.norm)
}

// vector builds the TF·IDF vector of a token multiset.
func (m *TFIDF) vector(tokens []string) map[string]float64 {
	tf := map[string]float64{}
	for _, tok := range tokens {
		tf[tok]++
	}
	for tok, f := range tf {
		tf[tok] = f * m.weight(tok)
	}
	return tf
}

func norm(v map[string]float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Name implements Measure.
func (m *TFIDF) Name() string { return "tfidf-cosine" }
