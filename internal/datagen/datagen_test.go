package datagen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/segment"
)

func TestConfigValidate(t *testing.T) {
	if err := NewConfig(1).Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
	if err := SmallConfig(1).Validate(); err != nil {
		t.Errorf("small config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.TotalClasses = 2 },
		func(c *Config) { c.LeafClasses = 1 },
		func(c *Config) { c.LeafClasses = c.TotalClasses },
		func(c *Config) { c.TrainingLinks = 0 },
		func(c *Config) { c.CatalogSize = 1 },
		func(c *Config) { c.TokenizedClasses = 0 },
		func(c *Config) { c.TokenizedClasses = c.LeafClasses + 1 },
		func(c *Config) { c.ZipfExponent = 0 },
		func(c *Config) { c.SerialSpace = 0 },
		func(c *Config) { c.Manufacturers = 0 },
		func(c *Config) { c.TypoRate = 1.5 },
		func(c *Config) { c.MislabelRate = -0.1 },
	}
	for i, mutate := range bad {
		c := SmallConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateTaxonomyShape(t *testing.T) {
	cfg := SmallConfig(7)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := ds.Ontology.Len(); got != cfg.TotalClasses {
		t.Errorf("ontology classes = %d, want %d", got, cfg.TotalClasses)
	}
	if got := len(ds.Ontology.Leaves()); got != cfg.LeafClasses {
		t.Errorf("leaves = %d, want %d", got, cfg.LeafClasses)
	}
	if got := len(ds.Ontology.Roots()); got != 1 {
		t.Errorf("roots = %d, want 1", got)
	}
	if err := ds.Ontology.Validate(); err != nil {
		t.Errorf("taxonomy has cycles: %v", err)
	}
	// Every generated leaf must be a leaf of the ontology.
	for _, l := range ds.Leaves {
		if !ds.Ontology.IsLeaf(l) {
			t.Errorf("%v in Leaves but not a leaf", l)
		}
	}
}

func TestGeneratePaperScaleTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	cfg := NewConfig(42)
	cfg.TrainingLinks = 500 // keep the test fast; taxonomy is the target
	cfg.CatalogSize = 1000
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := ds.Ontology.Len(); got != 566 {
		t.Errorf("classes = %d, want 566", got)
	}
	if got := len(ds.Ontology.Leaves()); got != 226 {
		t.Errorf("leaves = %d, want 226", got)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(SmallConfig(123))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallConfig(123))
	if err != nil {
		t.Fatal(err)
	}
	if a.Local.Len() != b.Local.Len() || a.External.Len() != b.External.Len() {
		t.Fatal("graph sizes differ across identical seeds")
	}
	for _, tr := range a.External.Triples() {
		if !b.External.Has(tr) {
			t.Fatalf("external triple %v missing in second run", tr)
		}
	}
	if a.Training.Len() != b.Training.Len() {
		t.Fatal("training sizes differ")
	}
	for i := range a.Training.Links {
		if a.Training.Links[i] != b.Training.Links[i] {
			t.Fatalf("link %d differs", i)
		}
	}
	c, err := Generate(SmallConfig(124))
	if err != nil {
		t.Fatal(err)
	}
	same := c.External.Len() == a.External.Len()
	if same {
		diff := false
		for _, tr := range a.External.Triples() {
			if !c.External.Has(tr) {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical externals")
		}
	}
}

func TestGenerateCorpusInvariants(t *testing.T) {
	cfg := SmallConfig(9)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if ds.Training.Len() != cfg.TrainingLinks {
		t.Errorf("|TS| = %d, want %d", ds.Training.Len(), cfg.TrainingLinks)
	}
	if err := ds.Training.Validate(); err != nil {
		t.Errorf("training set invalid: %v", err)
	}
	// Catalog instance count.
	typed := map[rdf.Term]struct{}{}
	ds.Local.Match(rdf.Term{}, rdf.TypeTerm, rdf.Term{}, func(tr rdf.Triple) bool {
		typed[tr.S] = struct{}{}
		return true
	})
	if len(typed) != cfg.CatalogSize {
		t.Errorf("catalog instances = %d, want %d", len(typed), cfg.CatalogSize)
	}
	// Every link endpoint exists with the right facts.
	for _, l := range ds.Training.Links {
		if PartNumber(ds.External, l.External) == "" {
			t.Fatalf("external %v lacks a part number", l.External)
		}
		if _, ok := ds.External.FirstObject(l.External, ManufacturerProp); !ok {
			t.Fatalf("external %v lacks a manufacturer", l.External)
		}
		types := ds.Local.TypesOf(l.Local)
		if len(types) != 1 {
			t.Fatalf("local %v types = %v", l.Local, types)
		}
		if !ds.Ontology.IsLeaf(types[0]) {
			t.Fatalf("local %v typed with non-leaf %v", l.Local, types[0])
		}
		if ds.TrueClass[l.External] != types[0] {
			t.Fatalf("TrueClass mismatch for %v", l.External)
		}
	}
	if got := len(ds.ExternalItems()); got != cfg.TrainingLinks {
		t.Errorf("ExternalItems = %d", got)
	}
}

func TestGenerateMarkersAppearInPartNumbers(t *testing.T) {
	cfg := SmallConfig(11)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// For each tokenized class, at least one training external of that
	// class should carry one of the class's marker segments — otherwise
	// no rules could ever be learned.
	sp := segment.NewSeparatorSplitter(segment.Options{})
	segsByClass := map[rdf.Term]map[string]int{}
	for _, l := range ds.Training.Links {
		c := ds.TrueClass[l.External]
		m := segsByClass[c]
		if m == nil {
			m = map[string]int{}
			segsByClass[c] = m
		}
		for _, s := range sp.Split(PartNumber(ds.External, l.External)) {
			m[s]++
		}
	}
	found := 0
	for _, c := range ds.Tokenized {
		m := segsByClass[c]
		// A marker is a segment appearing repeatedly for this class.
		for _, cnt := range m {
			if cnt >= 3 {
				found++
				break
			}
		}
	}
	if found < len(ds.Tokenized)/2 {
		t.Errorf("only %d of %d tokenized classes show repeated segments", found, len(ds.Tokenized))
	}
}

func TestGenerateClassSkew(t *testing.T) {
	cfg := SmallConfig(13)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	counts := map[rdf.Term]int{}
	for _, l := range ds.Training.Links {
		counts[ds.TrueClass[l.External]]++
	}
	// Rank 0 should be (one of) the most frequent; at minimum it must
	// beat the median class count.
	top := counts[ds.Leaves[0]]
	beaten := 0
	for _, c := range ds.Leaves {
		if counts[c] < top {
			beaten++
		}
	}
	if beaten < len(ds.Leaves)/2 {
		t.Errorf("rank-0 class (count %d) beats only %d of %d classes", top, beaten, len(ds.Leaves))
	}
}

func TestProviderVariantPreservesMostSegments(t *testing.T) {
	cfg := SmallConfig(15)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sp := segment.NewSeparatorSplitter(segment.Options{})
	preserved, total := 0, 0
	for i, l := range ds.Training.Links {
		if i >= 100 {
			break
		}
		extSegs := map[string]struct{}{}
		for _, s := range sp.Split(PartNumber(ds.External, l.External)) {
			extSegs[s] = struct{}{}
		}
		for _, s := range sp.Split(PartNumber(ds.Local, l.Local)) {
			total++
			if _, ok := extSegs[s]; ok {
				preserved++
			}
		}
	}
	if total == 0 {
		t.Fatal("no segments compared")
	}
	// Mislabels and typos lose some segments, but the bulk must survive
	// provider rendering — that is the premise of the whole approach.
	if ratio := float64(preserved) / float64(total); ratio < 0.75 {
		t.Errorf("segment preservation ratio = %.2f, want >= 0.75", ratio)
	}
}

func TestGenerateToponyms(t *testing.T) {
	ds, err := GenerateToponyms(ToponymConfig{Seed: 3, Links: 200})
	if err != nil {
		t.Fatalf("GenerateToponyms: %v", err)
	}
	if ds.Training.Len() != 200 {
		t.Errorf("|TS| = %d", ds.Training.Len())
	}
	if got := len(ds.Ontology.Leaves()); got != len(placeTypes) {
		t.Errorf("leaves = %d, want %d", got, len(placeTypes))
	}
	// Labels must embed type words for the linked class often enough.
	hits := 0
	for _, l := range ds.Training.Links {
		label, ok := ds.External.FirstObject(l.External, rdf.LabelTerm)
		if !ok {
			t.Fatalf("external %v lacks label", l.External)
		}
		cls := ds.TrueClass[l.External]
		for _, pt := range placeTypes {
			if rdf.NewIRI(OntoNS+pt.class) != cls {
				continue
			}
			for _, w := range pt.words {
				if strings.Contains(label.Value, w) {
					hits++
					break
				}
			}
		}
	}
	if hits < 150 {
		t.Errorf("only %d/200 labels embed their type word", hits)
	}
	if _, err := GenerateToponyms(ToponymConfig{Seed: 1, Links: 0}); err == nil {
		t.Error("Links=0 accepted")
	}
	if _, err := GenerateToponyms(ToponymConfig{Seed: 1, Links: 10, Catalog: 5}); err == nil {
		t.Error("Catalog < Links accepted")
	}
}

func TestPartNumberHelperMissing(t *testing.T) {
	g := rdf.NewGraph()
	if got := PartNumber(g, rdf.NewIRI("http://x/none")); got != "" {
		t.Errorf("PartNumber missing = %q", got)
	}
}

// collectSink rebuilds Dataset-shaped state from the streaming API.
type collectSink struct {
	local, external *rdf.Graph
	links           int
	fail            error
}

func (s *collectSink) Local(id, class rdf.Term, pn string) error {
	if s.fail != nil {
		return s.fail
	}
	s.local.Add(rdf.T(id, rdf.TypeTerm, class))
	s.local.Add(rdf.T(id, PartNumberProp, rdf.NewLiteral(pn)))
	return nil
}

func (s *collectSink) External(id rdf.Term, pn, manufacturer string, local, trueClass rdf.Term) error {
	s.external.Add(rdf.T(id, PartNumberProp, rdf.NewLiteral(pn)))
	s.external.Add(rdf.T(id, ManufacturerProp, rdf.NewLiteral(manufacturer)))
	s.links++
	return nil
}

// TestStreamMatchesGenerate pins the streaming contract: Stream must
// produce exactly the corpus Generate materializes for the same Config.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := SmallConfig(11)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sink := &collectSink{local: rdf.NewGraph(), external: rdf.NewGraph()}
	ont, err := Stream(cfg, sink)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if got, want := len(ont.Leaves()), len(ds.Ontology.Leaves()); got != want {
		t.Errorf("streamed ontology has %d leaves, Generate made %d", got, want)
	}
	text := func(g *rdf.Graph) string {
		var b strings.Builder
		if err := rdf.WriteNTriples(&b, g); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if text(sink.local) != text(ds.Local) {
		t.Error("streamed local graph diverged from Generate")
	}
	if text(sink.external) != text(ds.External) {
		t.Error("streamed external graph diverged from Generate")
	}
	if sink.links != len(ds.Training.Links) {
		t.Errorf("streamed %d links, Generate made %d", sink.links, len(ds.Training.Links))
	}
}

// TestStreamSinkErrorAborts: a sink error must stop generation.
func TestStreamSinkErrorAborts(t *testing.T) {
	sink := &collectSink{local: rdf.NewGraph(), external: rdf.NewGraph(), fail: errStop}
	if _, err := Stream(SmallConfig(11), sink); err != errStop {
		t.Fatalf("Stream error = %v, want errStop", err)
	}
}

var errStop = errors.New("stop")
