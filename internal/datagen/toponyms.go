package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// ToponymConfig sizes the secondary-domain corpus: geographic entities
// whose rdfs:label embeds a place-type word, the introduction's other
// motivating scenario ("Dresden Elbe Valley", "Copacabana Beach",
// "Louvre Museum"). It demonstrates the generality the paper's
// conclusion calls for.
type ToponymConfig struct {
	Seed  int64
	Links int
	// Catalog is the local place count; defaults to 4 × Links when 0.
	Catalog int
}

// toponym place types; each is a leaf class whose labels embed the type
// word, plus distractor name words shared across classes.
var placeTypes = []struct {
	class string
	words []string
}{
	{"Beach", []string{"Beach", "Playa"}},
	{"Museum", []string{"Museum", "Musee"}},
	{"Valley", []string{"Valley"}},
	{"Bridge", []string{"Bridge", "Pont"}},
	{"Cathedral", []string{"Cathedral", "Basilica"}},
	{"Castle", []string{"Castle", "Chateau"}},
	{"Lake", []string{"Lake", "Lac"}},
	{"Square", []string{"Square", "Place", "Plaza"}},
}

var toponymNames = []string{
	"Dresden", "Copacabana", "Elbe", "Concorde", "Louvre", "Alexander",
	"Victoria", "Saint", "Charles", "Royal", "Grand", "North", "Old",
	"Golden", "Crystal", "Green", "Silver", "High", "New", "Iron",
}

// GenerateToponyms builds the toponym corpus: SL holds typed places with
// labels, SE holds label-only descriptions, TS links them.
func GenerateToponyms(cfg ToponymConfig) (*Dataset, error) {
	if cfg.Links < 1 {
		return nil, fmt.Errorf("datagen: toponym Links %d < 1", cfg.Links)
	}
	if cfg.Catalog == 0 {
		cfg.Catalog = 4 * cfg.Links
	}
	if cfg.Catalog < cfg.Links {
		return nil, fmt.Errorf("datagen: toponym Catalog %d < Links %d", cfg.Catalog, cfg.Links)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ont := ontology.New()
	root := rdf.NewIRI(OntoNS + "Place")
	ont.AddClass(root)
	classes := make([]rdf.Term, len(placeTypes))
	for i, pt := range placeTypes {
		classes[i] = rdf.NewIRI(OntoNS + pt.class)
		ont.AddSubClassOf(classes[i], root)
		ont.SetLabel(classes[i], pt.class)
	}

	ds := &Dataset{
		Config:    Config{Seed: cfg.Seed},
		Ontology:  ont,
		Leaves:    classes,
		Tokenized: classes,
		Local:     rdf.NewGraph(),
		External:  rdf.NewGraph(),
		TrueClass: map[rdf.Term]rdf.Term{},
	}

	label := func(classIdx int) string {
		pt := placeTypes[classIdx]
		word := pt.words[rng.Intn(len(pt.words))]
		name := toponymNames[rng.Intn(len(toponymNames))]
		if rng.Float64() < 0.5 {
			name += " " + toponymNames[rng.Intn(len(toponymNames))]
		}
		if rng.Float64() < 0.3 {
			return word + " of " + name
		}
		return name + " " + word
	}

	seq := 0
	newLocal := func(classIdx int) rdf.Term {
		id := rdf.NewIRI(fmt.Sprintf("%sT%05d", LocalNS, seq))
		seq++
		ds.Local.Add(rdf.T(id, rdf.TypeTerm, classes[classIdx]))
		ds.Local.Add(rdf.T(id, rdf.LabelTerm, rdf.NewLiteral(label(classIdx))))
		return id
	}

	for i := 0; i < cfg.Links; i++ {
		classIdx := rng.Intn(len(classes))
		local := newLocal(classIdx)
		ext := rdf.NewIRI(fmt.Sprintf("%sG%05d", ExtNS, i))
		ds.External.Add(rdf.T(ext, rdf.LabelTerm, rdf.NewLiteral(label(classIdx))))
		ds.Training.Links = append(ds.Training.Links, core.Link{External: ext, Local: local})
		ds.TrueClass[ext] = classes[classIdx]
	}
	for seq < cfg.Catalog {
		newLocal(rng.Intn(len(classes)))
	}
	return ds, nil
}
