package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Properties of the generated provider documents and catalog entries.
var (
	// PartNumberProp is the provider identifier the paper's expert chose
	// for class prediction.
	PartNumberProp = rdf.NewIRI(PropNS + "partNumber")
	// ManufacturerProp is the provider's manufacturer name — present but
	// deliberately not class-indicative.
	ManufacturerProp = rdf.NewIRI(PropNS + "manufacturer")
)

// Dataset is a fully generated corpus: ontology, catalog (SL), provider
// documents (SE), training links (TS) and the evaluation ground truth.
type Dataset struct {
	Config   Config
	Ontology *ontology.Ontology
	// Leaves are the ontology's leaf classes in frequency-rank order
	// (rank 0 = most frequent in TS).
	Leaves []rdf.Term
	// Tokenized are the leaf classes whose part numbers carry unique
	// marker segments.
	Tokenized []rdf.Term
	// Local is SL: catalog instances with rdf:type and partNumber.
	Local *rdf.Graph
	// External is SE: provider items with partNumber and manufacturer.
	External *rdf.Graph
	// Training is TS, the expert same-as links.
	Training core.TrainingSet
	// TrueClass maps each external item to its expert class — the class
	// of the local item its training link points to.
	TrueClass map[rdf.Term]rdf.Term
}

// Generate builds the corpus for cfg. The same Config (including Seed)
// always yields the identical corpus.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CatalogSize < cfg.TrainingLinks {
		return nil, fmt.Errorf("datagen: CatalogSize %d < TrainingLinks %d", cfg.CatalogSize, cfg.TrainingLinks)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ont, leaves, err := buildTaxonomy(cfg, rng)
	if err != nil {
		return nil, err
	}
	// Frequency rank order: a seeded shuffle of the leaves; rank 0 is the
	// most frequent class in TS.
	rng.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
	tokenized := append([]rdf.Term(nil), leaves[:cfg.TokenizedClasses]...)

	g := buildGrammar(cfg, rng, ont, tokenized, leaves)
	manufacturers := manufacturerPool(cfg, rng)

	// Zipf weights over leaf ranks for the training-set class draw.
	tsCum := cumulativeZipf(len(leaves), cfg.ZipfExponent)
	// Catalog class distribution: same order, flatter skew (the catalog
	// is broader than any one provider's deliveries).
	catCum := cumulativeZipf(len(leaves), cfg.ZipfExponent*0.75)

	ds := &Dataset{
		Config:    cfg,
		Ontology:  ont,
		Leaves:    leaves,
		Tokenized: tokenized,
		Local:     rdf.NewGraph(),
		External:  rdf.NewGraph(),
		TrueClass: map[rdf.Term]rdf.Term{},
	}

	// Local catalog instances, one per training link first (each expert
	// reconciliation matches a distinct catalog product), then filler.
	localSeq := 0
	newLocal := func(c rdf.Term) (rdf.Term, string) {
		id := rdf.NewIRI(fmt.Sprintf("%sP%06d", LocalNS, localSeq))
		localSeq++
		pn := g.partNumber(rng, c)
		ds.Local.Add(rdf.T(id, rdf.TypeTerm, c))
		ds.Local.Add(rdf.T(id, PartNumberProp, rdf.NewLiteral(pn)))
		return id, pn
	}

	for i := 0; i < cfg.TrainingLinks; i++ {
		class := leaves[drawRank(rng, tsCum)]
		ext := rdf.NewIRI(fmt.Sprintf("%sD%06d", ExtNS, i))

		labelClass := class
		if rng.Float64() < cfg.MislabelRate {
			labelClass = siblingOrOther(rng, ont, leaves, class)
		}
		local, canonical := newLocal(labelClass)
		if labelClass != class {
			// The provider item's part number still follows the true
			// product's grammar; the expert linked it to a wrong catalog
			// entry, which keeps its own part number.
			canonical = g.partNumber(rng, class)
		}
		ds.External.Add(rdf.T(ext, PartNumberProp,
			rdf.NewLiteral(providerVariant(rng, canonical, cfg.TypoRate))))
		ds.External.Add(rdf.T(ext, ManufacturerProp,
			rdf.NewLiteral(manufacturers[rng.Intn(len(manufacturers))])))
		ds.Training.Links = append(ds.Training.Links, core.Link{External: ext, Local: local})
		ds.TrueClass[ext] = labelClass
	}

	for localSeq < cfg.CatalogSize {
		class := leaves[drawRank(rng, catCum)]
		newLocal(class)
	}
	return ds, nil
}

// siblingOrOther picks a wrong class for label noise: a sibling when one
// exists, otherwise any other leaf.
func siblingOrOther(rng *rand.Rand, ont *ontology.Ontology, leaves []rdf.Term, c rdf.Term) rdf.Term {
	sibs := ont.Siblings(c)
	var leafSibs []rdf.Term
	for _, s := range sibs {
		if ont.IsLeaf(s) {
			leafSibs = append(leafSibs, s)
		}
	}
	if len(leafSibs) > 0 {
		return leafSibs[rng.Intn(len(leafSibs))]
	}
	for {
		other := leaves[rng.Intn(len(leaves))]
		if other != c {
			return other
		}
	}
}

// cumulativeZipf returns the cumulative distribution of 1/(rank+1)^s.
func cumulativeZipf(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// drawRank samples a rank from a cumulative distribution.
func drawRank(rng *rand.Rand, cum []float64) int {
	x := rng.Float64()
	return sort.SearchFloat64s(cum, x)
}

// ExternalItems returns the external items in deterministic order.
func (ds *Dataset) ExternalItems() []rdf.Term {
	out := make([]rdf.Term, 0, len(ds.Training.Links))
	seen := map[rdf.Term]struct{}{}
	for _, l := range ds.Training.Links {
		if _, dup := seen[l.External]; dup {
			continue
		}
		seen[l.External] = struct{}{}
		out = append(out, l.External)
	}
	return out
}

// PartNumber returns the part-number literal of an item in g, or "".
func PartNumber(g *rdf.Graph, item rdf.Term) string {
	if v, ok := g.FirstObject(item, PartNumberProp); ok && v.IsLiteral() {
		return v.Value
	}
	return ""
}
