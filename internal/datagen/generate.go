package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Properties of the generated provider documents and catalog entries.
var (
	// PartNumberProp is the provider identifier the paper's expert chose
	// for class prediction.
	PartNumberProp = rdf.NewIRI(PropNS + "partNumber")
	// ManufacturerProp is the provider's manufacturer name — present but
	// deliberately not class-indicative.
	ManufacturerProp = rdf.NewIRI(PropNS + "manufacturer")
)

// Dataset is a fully generated corpus: ontology, catalog (SL), provider
// documents (SE), training links (TS) and the evaluation ground truth.
type Dataset struct {
	Config   Config
	Ontology *ontology.Ontology
	// Leaves are the ontology's leaf classes in frequency-rank order
	// (rank 0 = most frequent in TS).
	Leaves []rdf.Term
	// Tokenized are the leaf classes whose part numbers carry unique
	// marker segments.
	Tokenized []rdf.Term
	// Local is SL: catalog instances with rdf:type and partNumber.
	Local *rdf.Graph
	// External is SE: provider items with partNumber and manufacturer.
	External *rdf.Graph
	// Training is TS, the expert same-as links.
	Training core.TrainingSet
	// TrueClass maps each external item to its expert class — the class
	// of the local item its training link points to.
	TrueClass map[rdf.Term]rdf.Term
}

// Sink receives generated corpus entities in generation order. Local is
// called once per catalog instance; External once per provider document,
// carrying its expert link target and true class. A non-nil error aborts
// generation. Sinks see exactly the entities Generate would accumulate —
// the random draw sequence is shared, so a streamed corpus is identical
// to the materialized one for the same Config.
type Sink interface {
	Local(id, class rdf.Term, partNumber string) error
	External(id rdf.Term, partNumber, manufacturer string, local, trueClass rdf.Term) error
}

// datasetSink accumulates the generated corpus into a Dataset — the
// materializing mode behind Generate.
type datasetSink struct{ ds *Dataset }

func (s datasetSink) Local(id, class rdf.Term, pn string) error {
	s.ds.Local.Add(rdf.T(id, rdf.TypeTerm, class))
	s.ds.Local.Add(rdf.T(id, PartNumberProp, rdf.NewLiteral(pn)))
	return nil
}

func (s datasetSink) External(id rdf.Term, pn, manufacturer string, local, trueClass rdf.Term) error {
	s.ds.External.Add(rdf.T(id, PartNumberProp, rdf.NewLiteral(pn)))
	s.ds.External.Add(rdf.T(id, ManufacturerProp, rdf.NewLiteral(manufacturer)))
	s.ds.Training.Links = append(s.ds.Training.Links, core.Link{External: id, Local: local})
	s.ds.TrueClass[id] = trueClass
	return nil
}

// Generate builds the corpus for cfg. The same Config (including Seed)
// always yields the identical corpus.
func Generate(cfg Config) (*Dataset, error) {
	ds := &Dataset{
		Config:    cfg,
		Local:     rdf.NewGraph(),
		External:  rdf.NewGraph(),
		TrueClass: map[rdf.Term]rdf.Term{},
	}
	ont, leaves, tokenized, err := generate(cfg, datasetSink{ds})
	if err != nil {
		return nil, err
	}
	ds.Ontology, ds.Leaves, ds.Tokenized = ont, leaves, tokenized
	return ds, nil
}

// Stream generates the corpus for cfg directly into sink without
// materializing graphs, links or the ground truth: memory stays bounded
// by the taxonomy and grammar (O(classes)), not the corpus, so
// million-item catalogs generate in constant space. Entity order and
// content are identical to Generate's for the same Config. The returned
// ontology is the corpus taxonomy (itself O(classes)).
func Stream(cfg Config, sink Sink) (*ontology.Ontology, error) {
	ont, _, _, err := generate(cfg, sink)
	if err != nil {
		return nil, err
	}
	return ont, nil
}

// generate is the core corpus walk shared by Generate and Stream: every
// random draw happens here, in one fixed order, regardless of what the
// sink does with the entities.
func generate(cfg Config, sink Sink) (ont *ontology.Ontology, leaves, tokenized []rdf.Term, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if cfg.CatalogSize < cfg.TrainingLinks {
		return nil, nil, nil, fmt.Errorf("datagen: CatalogSize %d < TrainingLinks %d", cfg.CatalogSize, cfg.TrainingLinks)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ont, leaves, err = buildTaxonomy(cfg, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	// Frequency rank order: a seeded shuffle of the leaves; rank 0 is the
	// most frequent class in TS.
	rng.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
	tokenized = append([]rdf.Term(nil), leaves[:cfg.TokenizedClasses]...)

	g := buildGrammar(cfg, rng, ont, tokenized, leaves)
	manufacturers := manufacturerPool(cfg, rng)

	// Zipf weights over leaf ranks for the training-set class draw.
	tsCum := cumulativeZipf(len(leaves), cfg.ZipfExponent)
	// Catalog class distribution: same order, flatter skew (the catalog
	// is broader than any one provider's deliveries).
	catCum := cumulativeZipf(len(leaves), cfg.ZipfExponent*0.75)

	// Local catalog instances, one per training link first (each expert
	// reconciliation matches a distinct catalog product), then filler.
	localSeq := 0
	newLocal := func(c rdf.Term) (rdf.Term, string, error) {
		id := rdf.NewIRI(fmt.Sprintf("%sP%06d", LocalNS, localSeq))
		localSeq++
		pn := g.partNumber(rng, c)
		return id, pn, sink.Local(id, c, pn)
	}

	for i := 0; i < cfg.TrainingLinks; i++ {
		class := leaves[drawRank(rng, tsCum)]
		ext := rdf.NewIRI(fmt.Sprintf("%sD%06d", ExtNS, i))

		labelClass := class
		if rng.Float64() < cfg.MislabelRate {
			labelClass = siblingOrOther(rng, ont, leaves, class)
		}
		local, canonical, err := newLocal(labelClass)
		if err != nil {
			return nil, nil, nil, err
		}
		if labelClass != class {
			// The provider item's part number still follows the true
			// product's grammar; the expert linked it to a wrong catalog
			// entry, which keeps its own part number.
			canonical = g.partNumber(rng, class)
		}
		pn := providerVariant(rng, canonical, cfg.TypoRate)
		manufacturer := manufacturers[rng.Intn(len(manufacturers))]
		if err := sink.External(ext, pn, manufacturer, local, labelClass); err != nil {
			return nil, nil, nil, err
		}
	}

	for localSeq < cfg.CatalogSize {
		class := leaves[drawRank(rng, catCum)]
		if _, _, err := newLocal(class); err != nil {
			return nil, nil, nil, err
		}
	}
	return ont, leaves, tokenized, nil
}

// siblingOrOther picks a wrong class for label noise: a sibling when one
// exists, otherwise any other leaf.
func siblingOrOther(rng *rand.Rand, ont *ontology.Ontology, leaves []rdf.Term, c rdf.Term) rdf.Term {
	sibs := ont.Siblings(c)
	var leafSibs []rdf.Term
	for _, s := range sibs {
		if ont.IsLeaf(s) {
			leafSibs = append(leafSibs, s)
		}
	}
	if len(leafSibs) > 0 {
		return leafSibs[rng.Intn(len(leafSibs))]
	}
	for {
		other := leaves[rng.Intn(len(leaves))]
		if other != c {
			return other
		}
	}
}

// cumulativeZipf returns the cumulative distribution of 1/(rank+1)^s.
func cumulativeZipf(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// drawRank samples a rank from a cumulative distribution.
func drawRank(rng *rand.Rand, cum []float64) int {
	x := rng.Float64()
	return sort.SearchFloat64s(cum, x)
}

// ExternalItems returns the external items in deterministic order.
func (ds *Dataset) ExternalItems() []rdf.Term {
	out := make([]rdf.Term, 0, len(ds.Training.Links))
	seen := map[rdf.Term]struct{}{}
	for _, l := range ds.Training.Links {
		if _, dup := seen[l.External]; dup {
			continue
		}
		seen[l.External] = struct{}{}
		out = append(out, l.External)
	}
	return out
}

// PartNumber returns the part-number literal of an item in g, or "".
func PartNumber(g *rdf.Graph, item rdf.Term) string {
	if v, ok := g.FirstObject(item, PartNumberProp); ok && v.IsLiteral() {
		return v.Value
	}
	return ""
}
