// Package datagen synthesizes the experimental corpus of the paper's
// Section 5: an electronic-product catalog (the local source SL) described
// by a 566-class ontology with 226 leaves, provider documents (the
// external source SE) carrying alphanumeric part-numbers and a
// manufacturer name, and a training set of expert-validated same-as links.
//
// The real corpus is proprietary (Thales Corporate Services); this
// generator reproduces its *statistical* structure, which is all the rule
// learner observes:
//
//   - part-numbers are built from a per-class grammar: class-indicative
//     marker segments (series codes, unit markers — the paper's "ohm",
//     "63V", "CRCW0805", "T83"), segments shared between a few classes
//     (packaging codes → mid-confidence rules), ubiquitous segments
//     ("SMD" → low-confidence rules), and high-entropy serial chunks
//     (→ the long tail of distinct segments);
//   - class frequencies in the training set follow a Zipf-like skew so
//     that roughly the paper's number of classes clear the "more than 20
//     instances" bar;
//   - manufacturers span classes, so manufacturer is not class-indicative
//     (the paper's stated reason for choosing part-number);
//   - provider renderings add separator changes and typos.
//
// Everything is deterministic in Config.Seed.
package datagen

import "fmt"

// Config controls the generated corpus. NewConfig supplies defaults that
// reproduce the paper's scale; tests shrink the sizes.
type Config struct {
	// Seed drives all randomness; same seed, same corpus.
	Seed int64

	// TotalClasses is the ontology size (paper: 566).
	TotalClasses int
	// LeafClasses is the number of leaf classes (paper: 226).
	LeafClasses int

	// TrainingLinks is |TS| (paper: 10265).
	TrainingLinks int
	// CatalogSize is the number of local catalog instances, linked ones
	// included (the paper's catalog holds millions; the default keeps the
	// same behaviour at laptop scale).
	CatalogSize int

	// TokenizedClasses is the number of leaf classes whose part-numbers
	// carry stable marker segments (paper: interesting segments were
	// found for 16 classes).
	TokenizedClasses int
	// MarkersPerClass is the mean number of distinct unique marker
	// segments per tokenized class.
	MarkersPerClass int
	// SharedTokens is the number of segments shared by 2-4 classes,
	// producing the mid-confidence rules of Table 1.
	SharedTokens int

	// ZipfExponent skews class frequencies in TS; larger = more skew.
	ZipfExponent float64
	// SerialSpace bounds the number of distinct serial chunks; smaller
	// values increase segment collisions.
	SerialSpace int

	// Manufacturers is the size of the manufacturer pool.
	Manufacturers int

	// TypoRate is the per-external-part-number probability of a
	// character-level typo in the provider rendering.
	TypoRate float64
	// MislabelRate is the probability that an expert link points to a
	// local item of a wrong (sibling) class — label noise.
	MislabelRate float64
}

// NewConfig returns the paper-scale configuration.
func NewConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		TotalClasses:     566,
		LeafClasses:      226,
		TrainingLinks:    10265,
		CatalogSize:      30000,
		TokenizedClasses: 16,
		MarkersPerClass:  6,
		SharedTokens:     55,
		ZipfExponent:     1.12,
		SerialSpace:      9000,
		Manufacturers:    40,
		TypoRate:         0.05,
		MislabelRate:     0.01,
	}
}

// SmallConfig returns a fast configuration for tests and examples: the
// same structure at ~1/20 scale.
func SmallConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		TotalClasses:     60,
		LeafClasses:      24,
		TrainingLinks:    600,
		CatalogSize:      2000,
		TokenizedClasses: 6,
		MarkersPerClass:  5,
		SharedTokens:     8,
		ZipfExponent:     1.05,
		SerialSpace:      500,
		Manufacturers:    10,
		TypoRate:         0.05,
		MislabelRate:     0.01,
	}
}

// Validate rejects structurally impossible configurations.
func (c Config) Validate() error {
	switch {
	case c.TotalClasses < 3:
		return fmt.Errorf("datagen: TotalClasses %d too small", c.TotalClasses)
	case c.LeafClasses < 2 || c.LeafClasses >= c.TotalClasses:
		return fmt.Errorf("datagen: LeafClasses %d must be in [2, TotalClasses)", c.LeafClasses)
	case c.TrainingLinks < 1:
		return fmt.Errorf("datagen: TrainingLinks %d < 1", c.TrainingLinks)
	case c.CatalogSize < c.LeafClasses:
		return fmt.Errorf("datagen: CatalogSize %d below LeafClasses", c.CatalogSize)
	case c.TokenizedClasses < 1 || c.TokenizedClasses > c.LeafClasses:
		return fmt.Errorf("datagen: TokenizedClasses %d out of [1, LeafClasses]", c.TokenizedClasses)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("datagen: ZipfExponent %v must be positive", c.ZipfExponent)
	case c.SerialSpace < 1:
		return fmt.Errorf("datagen: SerialSpace %d < 1", c.SerialSpace)
	case c.Manufacturers < 1:
		return fmt.Errorf("datagen: Manufacturers %d < 1", c.Manufacturers)
	case c.TypoRate < 0 || c.TypoRate > 1:
		return fmt.Errorf("datagen: TypoRate %v out of [0,1]", c.TypoRate)
	case c.MislabelRate < 0 || c.MislabelRate > 1:
		return fmt.Errorf("datagen: MislabelRate %v out of [0,1]", c.MislabelRate)
	}
	return nil
}

// Namespaces of the generated corpus.
const (
	OntoNS  = "http://thales.example/onto#"
	LocalNS = "http://thales.example/catalog/"
	ExtNS   = "http://provider.example/item/"
	PropNS  = "http://provider.example/prop#"
)
