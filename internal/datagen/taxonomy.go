package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Vocabulary for class names; combinations of qualifier + family give the
// taxonomy an electronic-products flavour without affecting statistics.
var (
	families = []string{
		"Resistor", "Capacitor", "Inductor", "Diode", "Transistor",
		"Connector", "Relay", "Switch", "Fuse", "LED", "Crystal",
		"Oscillator", "Transformer", "Sensor", "Filter", "Thermistor",
		"Varistor", "Potentiometer", "Choke", "Ferrite",
	}
	qualifiers = []string{
		"Fixed", "Variable", "Ceramic", "Tantalum", "Film", "Wirewound",
		"Power", "Precision", "Chip", "Axial", "Radial", "HighVoltage",
		"LowNoise", "Schottky", "Zener", "Signal", "RF", "Automotive",
		"Military", "Miniature",
	}
)

// buildTaxonomy generates a class DAG (a tree here) with exactly
// cfg.LeafClasses leaves and cfg.TotalClasses classes in total, rooted at
// a single Product class. It works bottom-up: leaves are grouped under
// internal nodes with small branching until one root remains, then
// single-child chain nodes pad the tree to the requested total (product
// taxonomies are deep and skinny, e.g. Passive > Resistors > Fixed >
// Film), and finally everything hangs under the root.
func buildTaxonomy(cfg Config, rng *rand.Rand) (*ontology.Ontology, []rdf.Term, error) {
	o := ontology.New()
	classIRI := func(id int, name string) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%sC%03d_%s", OntoNS, id, name))
	}
	next := 0
	newClass := func(name string) rdf.Term {
		c := classIRI(next, name)
		next++
		o.AddClass(c)
		o.SetLabel(c, name)
		return c
	}
	name := func(depthHint int) string {
		f := families[rng.Intn(len(families))]
		q := qualifiers[rng.Intn(len(qualifiers))]
		if depthHint == 0 {
			return f + "s" // category level reads like a family plural
		}
		return q + f
	}

	root := newClass("Product")

	leaves := make([]rdf.Term, cfg.LeafClasses)
	for i := range leaves {
		leaves[i] = newClass(name(2))
	}

	// Group bottom-up with branching 2-4 until few enough to hang off the
	// root, or the class budget forces us to stop early.
	level := append([]rdf.Term(nil), leaves...)
	budget := cfg.TotalClasses - 1 - cfg.LeafClasses // classes left to create
	for len(level) > 4 && budget > len(level)/4 {
		var parents []rdf.Term
		for i := 0; i < len(level); {
			if budget == 0 {
				break
			}
			width := 2 + rng.Intn(3)
			if i+width > len(level) {
				width = len(level) - i
			}
			p := newClass(name(1))
			budget--
			for j := 0; j < width; j++ {
				o.AddSubClassOf(level[i+j], p)
			}
			i += width
			parents = append(parents, p)
		}
		if budget == 0 {
			// Classes of this level that were not grouped before the
			// budget ran out stay unparented; carry them upward so they
			// attach to the root below.
			var orphans []rdf.Term
			for _, c := range level {
				if len(o.Parents(c)) == 0 && c != root {
					orphans = append(orphans, c)
				}
			}
			level = append(parents, orphans...)
			break
		}
		level = parents
	}

	// Pad with single-child chain nodes to reach the exact class budget:
	// pick a non-root class and splice a chain node between it and its
	// (future) parent by re-parenting under the new node.
	for budget > 0 && len(level) > 0 {
		i := rng.Intn(len(level))
		chain := newClass(name(1))
		budget--
		o.AddSubClassOf(level[i], chain)
		level[i] = chain
	}

	for _, c := range level {
		if c != root {
			o.AddSubClassOf(c, root)
		}
	}
	if err := o.Validate(); err != nil {
		return nil, nil, fmt.Errorf("datagen: generated taxonomy invalid: %w", err)
	}
	return o, leaves, nil
}
