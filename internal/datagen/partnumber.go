package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// grammar holds the segment vocabulary driving part-number generation.
type grammar struct {
	// markers maps a tokenized leaf class to its unique marker segments
	// (series codes / unit markers that identify the class).
	markers map[rdf.Term][]markerToken
	// shared maps a shared segment to the classes using it with weights;
	// appearing on several classes makes its rule confidence < 1.
	shared []sharedToken
	// sharedByClass indexes shared tokens per class for fast draws.
	sharedByClass map[rdf.Term][]int
	// ubiquitous segments appear on any part number with low probability
	// (packaging/compliance codes).
	ubiquitous []string
	// serialSpace bounds distinct serial chunks.
	serialSpace int
}

type markerToken struct {
	text string
	prob float64 // probability of appearing on a part number of the class
}

type sharedToken struct {
	text    string
	classes []rdf.Term
	// probs is the per-class appearance probability; the dominant class
	// gets the highest, tuned so the dominant rule's confidence lands
	// near the token's target confidence.
	probs []float64
}

var separators = []string{"-", ".", " ", "/", "_"}

// unit markers that read like the paper's examples.
var unitMarkers = []string{
	"ohm", "kohm", "Mohm", "uF", "nF", "pF", "mH", "uH",
	"63V", "100V", "250V", "16V", "35V", "5W", "mA", "GHz",
}

// randSeries generates a series-code looking token such as "CRCW0805" or
// "T83": 1-4 upper-case letters followed by 2-4 digits.
func randSeries(rng *rand.Rand) string {
	var b strings.Builder
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		b.WriteByte(byte('A' + rng.Intn(26)))
	}
	d := 2 + rng.Intn(3)
	for i := 0; i < d; i++ {
		b.WriteByte(byte('0' + rng.Intn(10)))
	}
	return b.String()
}

// buildGrammar assigns the segment vocabulary to classes. tokenized is
// the subset of leaf classes that get unique markers; allLeaves is in
// training-frequency rank order. ont lets family codes be shared among
// taxonomy siblings (which is what makes the paper's subsumption
// generalization applicable).
func buildGrammar(cfg Config, rng *rand.Rand, ont *ontology.Ontology, tokenized, allLeaves []rdf.Term) *grammar {
	g := &grammar{
		markers:       map[rdf.Term][]markerToken{},
		sharedByClass: map[rdf.Term][]int{},
		ubiquitous:    []string{"SMD", "ROHS", "TR"},
		serialSpace:   cfg.SerialSpace,
	}
	used := map[string]struct{}{}
	for _, u := range unitMarkers {
		used[u] = struct{}{}
	}
	freshSeries := func() string {
		for {
			s := randSeries(rng)
			if _, dup := used[s]; !dup {
				used[s] = struct{}{}
				return s
			}
		}
	}

	// Unique markers: a mix of series codes and unit markers. Appearance
	// probabilities are low — a given part number shows only a few of its
	// class's markers — and vary so markers of rare classes can stay
	// below the support threshold, as in real data.
	unitIdx := 0
	for _, c := range tokenized {
		n := cfg.MarkersPerClass/2 + rng.Intn(cfg.MarkersPerClass+1)
		if n < 1 {
			n = 1
		}
		toks := make([]markerToken, 0, n)
		for i := 0; i < n; i++ {
			var text string
			if i%3 == 2 && unitIdx < len(unitMarkers) {
				text = unitMarkers[unitIdx]
				unitIdx++
			} else {
				text = freshSeries()
			}
			toks = append(toks, markerToken{
				text: text,
				prob: 0.05 + 0.15*rng.Float64(),
			})
		}
		g.markers[c] = toks
	}

	// Shared tokens: each lands on 2-4 classes of *similar* training
	// frequency (adjacent ranks), with per-class appearance probabilities
	// tuned so the dominant rule's confidence approximates a target drawn
	// from the paper's mid bands. allLeaves is in frequency-rank order.
	rankPool := 25
	if rankPool > len(allLeaves)/4 {
		rankPool = len(allLeaves) / 4
	}
	if rankPool < 2 {
		rankPool = len(allLeaves) - 1
	}
	rankOf := make(map[rdf.Term]int, len(allLeaves))
	for r, c := range allLeaves {
		rankOf[c] = r
	}
	for i := 0; i < cfg.SharedTokens; i++ {
		k := 2 + rng.Intn(3)
		baseProb := 0.16 + 0.16*rng.Float64()
		var classes []rdf.Term
		var probs []float64
		if i%3 == 0 && ont != nil {
			// Family code: shared uniformly by taxonomy siblings of a
			// frequent seed class (most frequent siblings first, so both
			// rules can clear the support threshold). The dominant rule's
			// confidence then follows the class-frequency split — this is
			// what makes the paper's subsumption generalization
			// applicable.
			seed := allLeaves[rng.Intn(rankPool)]
			var sibs []rdf.Term
			for _, s := range ont.Siblings(seed) {
				if ont.IsLeaf(s) {
					sibs = append(sibs, s)
				}
			}
			sort.Slice(sibs, func(a, b int) bool { return rankOf[sibs[a]] < rankOf[sibs[b]] })
			classes = append(classes, seed)
			for j := 0; j < len(sibs) && len(classes) < k; j++ {
				classes = append(classes, sibs[j])
			}
			if len(classes) >= 2 {
				probs = make([]float64, len(classes))
				for j := range probs {
					// Family codes are prominent: they appear on roughly
					// half of a family member's part numbers, so sibling
					// rules clear the support threshold together.
					probs[j] = 0.45 + 0.15*rng.Float64()
				}
			}
		}
		if len(classes) < 2 {
			// Packaging code: classes of similar training frequency, with
			// per-class probabilities tuned so the dominant rule's
			// confidence approximates a target drawn from the paper's mid
			// bands.
			classes = classes[:0]
			base := rng.Intn(rankPool)
			for j := 0; j < k && base+j < len(allLeaves); j++ {
				classes = append(classes, allLeaves[base+j])
			}
			if len(classes) < 2 {
				continue
			}
			targetConf := 0.25 + 0.5*rng.Float64()
			probs = make([]float64, len(classes))
			probs[0] = baseProb // dominant = the most frequent of the group
			rest := (1 - targetConf) / targetConf / float64(len(classes)-1)
			for j := 1; j < len(classes); j++ {
				probs[j] = baseProb * rest
				if probs[j] > 1 {
					probs[j] = 1
				}
			}
		}
		st := sharedToken{text: freshSeries(), classes: classes, probs: probs}
		g.shared = append(g.shared, st)
		for _, c := range classes {
			g.sharedByClass[c] = append(g.sharedByClass[c], len(g.shared)-1)
		}
	}
	return g
}

// serial draws a serial chunk from the bounded serial space; the modulo
// folding makes collisions follow the configured density.
func (g *grammar) serial(rng *rand.Rand) string {
	n := rng.Intn(g.serialSpace)
	return strings.ToUpper(strconv.FormatInt(int64(n)+1000, 36))
}

// PartNumber generates the canonical part number of an instance of class
// c: marker segments by their probabilities, possibly a shared segment,
// one or two serial chunks, and rarely a ubiquitous code, joined by
// random separators.
func (g *grammar) partNumber(rng *rand.Rand, c rdf.Term) string {
	var chunks []string
	for _, mt := range g.markers[c] {
		if rng.Float64() < mt.prob {
			chunks = append(chunks, mt.text)
		}
	}
	for _, i := range g.sharedByClass[c] {
		st := g.shared[i]
		for j, cl := range st.classes {
			if cl == c && rng.Float64() < st.probs[j] {
				chunks = append(chunks, st.text)
				break
			}
		}
	}
	if rng.Float64() < 0.06 {
		chunks = append(chunks, g.ubiquitous[rng.Intn(len(g.ubiquitous))])
	}
	chunks = append(chunks, g.serial(rng))
	if rng.Float64() < 0.5 {
		chunks = append(chunks, g.serial(rng))
	}
	if rng.Float64() < 0.15 {
		chunks = append(chunks, g.serial(rng))
	}
	// Shuffle so marker position is not a signal; real part numbers have
	// family-specific layouts, but the learner is position-blind anyway.
	rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
	sep := separators[rng.Intn(len(separators))]
	return strings.Join(chunks, sep)
}

// providerVariant renders a canonical part number the way a provider
// document would: possibly different separators and an occasional typo.
// Marker segments survive separator changes, which is exactly why the
// paper's approach works on provider data.
func providerVariant(rng *rand.Rand, canonical string, typoRate float64) string {
	out := canonical
	// Re-render separators with one provider-chosen separator.
	if rng.Float64() < 0.5 {
		sep := separators[rng.Intn(len(separators))]
		fields := strings.FieldsFunc(out, func(r rune) bool {
			return strings.ContainsRune("-. /_", r)
		})
		out = strings.Join(fields, sep)
	}
	if rng.Float64() < typoRate && len(out) > 3 {
		pos := rng.Intn(len(out))
		b := []byte(out)
		switch rng.Intn(3) {
		case 0: // substitute
			b[pos] = byte('A' + rng.Intn(26))
		case 1: // delete
			b = append(b[:pos], b[pos+1:]...)
		default: // duplicate
			b = append(b[:pos+1], b[pos:]...)
		}
		out = string(b)
	}
	return out
}

// manufacturerPool builds manufacturer names spanning all classes.
func manufacturerPool(cfg Config, rng *rand.Rand) []string {
	bases := []string{
		"Vish", "Korn", "Muro", "Nexa", "Omni", "Pana", "Quan", "Rexo",
		"Selta", "Tyco", "Ultra", "Wex", "Yama", "Zeta", "Alpha", "Brio",
	}
	suffixes := []string{"tronics", "comp", " Industries", " Electric", " Devices", "tec"}
	out := make([]string, 0, cfg.Manufacturers)
	seen := map[string]struct{}{}
	for len(out) < cfg.Manufacturers {
		name := bases[rng.Intn(len(bases))] + suffixes[rng.Intn(len(suffixes))]
		if len(out) >= len(bases)*len(suffixes) {
			name = fmt.Sprintf("%s %d", name, len(out))
		}
		if _, dup := seen[name]; dup {
			continue
		}
		seen[name] = struct{}{}
		out = append(out, name)
	}
	return out
}
