// Package faultfs is a deterministic fault-injecting implementation of
// the store's filesystem seam (store.FS). Every write-side operation the
// store performs — segment creation, record writes, fsyncs, closes,
// truncations, renames, removals, directory syncs — passes through one
// global operation counter, and a plan selects the Nth operation to
// fail: outright, as a short write, or as ENOSPC.
//
// The point is systematic coverage: a sweep test records the operation
// trace of a fault-free workload run, then re-runs the workload once per
// operation index (and per failure mode), asserting after each run that
// recovery preserves every acknowledged record and that unacknowledged
// records are either absent or were rejected by a fail-stopped store.
// That turns hand-built torn-tail cases into a proof over every fault
// point the workload can hit.
package faultfs

import (
	"errors"
	"fmt"
	"sync"
	"syscall"

	"repro/internal/store"
)

// ErrInjected is the failure every injected fault returns (wrapped), so
// tests can tell an injected fault from a real filesystem error.
var ErrInjected = errors.New("faultfs: injected fault")

// Mode selects how the targeted operation fails. Short and NoSpace only
// change the behavior of Write operations; every other operation kind
// fails outright regardless of mode.
type Mode int

const (
	// Err fails the operation outright without touching the underlying
	// filesystem.
	Err Mode = iota
	// Short writes half the payload through to the underlying file, then
	// fails — the shape of a torn write at a power cut.
	Short
	// NoSpace fails a write with ENOSPC, writing nothing.
	NoSpace
)

// String names the mode for test output.
func (m Mode) String() string {
	switch m {
	case Short:
		return "short"
	case NoSpace:
		return "enospc"
	default:
		return "err"
	}
}

// OpKind classifies one seam operation.
type OpKind int

// Operation kinds, in no particular order.
const (
	OpCreate OpKind = iota
	OpOpenWrite
	OpCreateTemp
	OpWrite
	OpSync
	OpClose
	OpTruncate
	OpRename
	OpRemove
	OpSyncDir
)

// String names the kind for test output.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpOpenWrite:
		return "openwrite"
	case OpCreateTemp:
		return "createtemp"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one recorded seam operation.
type Op struct {
	Kind OpKind
	Path string
}

// FS wraps an inner store.FS and injects at most one fault, at the
// operation index armed by FailAt. Safe for concurrent use; the
// operation counter is global across files, which is what makes a
// recorded trace replayable.
type FS struct {
	inner store.FS

	mu    sync.Mutex
	n     int // operations seen so far
	at    int // 1-based index of the operation to fail; 0 = never
	mode  Mode
	fired bool
	trace []Op // nil unless Record was called
}

// New wraps inner (nil means the real filesystem) with no fault armed.
func New(inner store.FS) *FS {
	if inner == nil {
		inner = store.OSFS()
	}
	return &FS{inner: inner}
}

// FailAt arms the fault: the n-th operation (1-based) fails with the
// given mode. Zero disarms.
func (f *FS) FailAt(n int, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.at, f.mode, f.fired = n, mode, false
}

// Record starts tracing operations (kept until Reset; use on a
// fault-free run to enumerate a workload's fault points).
func (f *FS) Record() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trace = []Op{}
}

// Trace returns a copy of the recorded operations.
func (f *FS) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.trace...)
}

// Ops returns how many operations have passed through so far.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Fired reports whether the armed fault has triggered.
func (f *FS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// step counts one operation and reports whether it must fail, and how.
func (f *FS) step(kind OpKind, path string) (inject bool, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	if f.trace != nil {
		f.trace = append(f.trace, Op{Kind: kind, Path: path})
	}
	if f.at != 0 && f.n == f.at {
		f.fired = true
		return true, f.mode
	}
	return false, 0
}

// injected builds the error for a plainly failed operation.
func injected(kind OpKind, path string) error {
	return fmt.Errorf("%w: %s %s", ErrInjected, kind, path)
}

// Create implements store.FS.
func (f *FS) Create(path string) (store.File, error) {
	if inject, _ := f.step(OpCreate, path); inject {
		return nil, injected(OpCreate, path)
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

// OpenWrite implements store.FS.
func (f *FS) OpenWrite(path string) (store.File, error) {
	if inject, _ := f.step(OpOpenWrite, path); inject {
		return nil, injected(OpOpenWrite, path)
	}
	file, err := f.inner.OpenWrite(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

// CreateTemp implements store.FS.
func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	if inject, _ := f.step(OpCreateTemp, dir); inject {
		return nil, injected(OpCreateTemp, dir)
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

// Rename implements store.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if inject, _ := f.step(OpRename, newpath); inject {
		return injected(OpRename, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements store.FS.
func (f *FS) Remove(path string) error {
	if inject, _ := f.step(OpRemove, path); inject {
		return injected(OpRemove, path)
	}
	return f.inner.Remove(path)
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(dir string) error {
	if inject, _ := f.step(OpSyncDir, dir); inject {
		return injected(OpSyncDir, dir)
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes file operations through the parent's counter.
type faultFile struct {
	inner store.File
	fs    *FS
}

func (f *faultFile) Write(p []byte) (int, error) {
	inject, mode := f.fs.step(OpWrite, f.inner.Name())
	if !inject {
		return f.inner.Write(p)
	}
	switch mode {
	case Short:
		// Half the payload lands — a torn write. The underlying write
		// error is still reported, so no caller can mistake it for
		// success.
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, injected(OpWrite, f.inner.Name())
	case NoSpace:
		return 0, fmt.Errorf("faultfs: %s %s: %w", OpWrite, f.inner.Name(), syscall.ENOSPC)
	default:
		return 0, injected(OpWrite, f.inner.Name())
	}
}

func (f *faultFile) Sync() error {
	if inject, _ := f.fs.step(OpSync, f.inner.Name()); inject {
		return injected(OpSync, f.inner.Name())
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if inject, _ := f.fs.step(OpClose, f.inner.Name()); inject {
		// The underlying file is still closed — an injected close
		// failure must not leak the descriptor across a long sweep.
		_ = f.inner.Close()
		return injected(OpClose, f.inner.Name())
	}
	return f.inner.Close()
}

func (f *faultFile) Truncate(size int64) error {
	if inject, _ := f.fs.step(OpTruncate, f.inner.Name()); inject {
		return injected(OpTruncate, f.inner.Name())
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Name() string { return f.inner.Name() }
