package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFailAtCountsAcrossOperations(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	fs.Record()
	fs.FailAt(3, Err) // Create(1), Write(2), Sync(3) <- fails

	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync error = %v, want injected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after fault: %v (one-shot faults must not cascade)", err)
	}
	if !fs.Fired() {
		t.Error("Fired() = false after the fault triggered")
	}
	want := []OpKind{OpCreate, OpWrite, OpSync, OpClose}
	tr := fs.Trace()
	if len(tr) != len(want) {
		t.Fatalf("trace length = %d, want %d", len(tr), len(want))
	}
	for i, op := range tr {
		if op.Kind != want[i] {
			t.Errorf("trace[%d] = %s, want %s", i, op.Kind, want[i])
		}
	}
}

func TestShortWriteLeavesPartialContent(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	fs.FailAt(2, Short)
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v, want injected", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("on-disk content = %q, want the torn half", got)
	}
}

func TestNoSpaceWritesNothing(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	fs.FailAt(2, NoSpace)
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error = %v, want ENOSPC", err)
	}
	if n != 0 {
		t.Fatalf("ENOSPC wrote %d bytes, want 0", n)
	}
	f.Close()
	if got, _ := os.ReadFile(filepath.Join(dir, "a")); len(got) != 0 {
		t.Fatalf("on-disk content = %q, want empty", got)
	}
}

func TestRenameFaultLeavesTargetAbsent(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.FailAt(1, Err)
	dst := filepath.Join(dir, "dst")
	if err := fs.Rename(src, dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename error = %v, want injected", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("rename target exists after injected failure")
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("rename source gone after injected failure: %v", err)
	}
}

func TestDisarmedPassesThrough(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if fs.Fired() {
		t.Error("Fired() = true with no fault armed")
	}
	if got := fs.Ops(); got != 5 {
		t.Errorf("Ops() = %d, want 5", got)
	}
}
