package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// serviceMetrics is the service-layer instrument set. The resilience
// middleware holds direct references to the rejection counters and the
// in-flight gauge, which makes /metrics and /v1/status's resilience
// block the same atomics read two ways — parity by construction, not by
// synchronization.
type serviceMetrics struct {
	requests  *obs.CounterVec   // path, code
	duration  *obs.HistogramVec // path
	respBytes *obs.HistogramVec // path
	inFlight  *obs.Gauge
	rejected  *obs.CounterVec // reason
	timeouts  *obs.Counter
	panics    *obs.Counter
	stages    *obs.HistogramVec // stage: engine, blocking, scoring, learn, publish
}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	m := &serviceMetrics{
		requests: reg.CounterVec("linkrules_http_requests_total",
			"HTTP requests served, by normalized path and status code.", "path", "code"),
		duration: reg.HistogramVec("linkrules_http_request_seconds",
			"HTTP request latency, by normalized path.", obs.DefBuckets(), "path"),
		respBytes: reg.HistogramVec("linkrules_http_response_bytes",
			"HTTP response body size, by normalized path.", obs.SizeBuckets(), "path"),
		inFlight: reg.Gauge("linkrules_http_in_flight",
			"Requests currently being served."),
		rejected: reg.CounterVec("linkrules_http_rejected_total",
			"Requests rejected by the overload-protection middleware, by reason.", "reason"),
		timeouts: reg.Counter("linkrules_http_timeouts_total",
			"Requests that exceeded the server deadline."),
		panics: reg.Counter("linkrules_http_panics_total",
			"Handler panics recovered into 500 responses."),
		stages: reg.HistogramVec("linkrules_stage_seconds",
			"Pipeline stage durations (engine, blocking, scoring, learn, publish).",
			obs.DefBuckets(), "stage"),
	}
	// Build identity as the conventional constant-1 info gauge, so every
	// scrape (and every loadgen report that diffs scrapes) names the
	// exact binary it measured.
	bi := obs.Build()
	reg.GaugeVec("linkrules_build_info",
		"Build identity of the serving binary; value is always 1.",
		"version", "go_version", "revision").
		With(bi.Version, bi.GoVersion, bi.Revision).Set(1)
	return m
}

// stageSink adapts the stage histogram to the obs.Trace sink signature,
// so every /v1/link records its stage breakdown whether or not the
// client asked for ?debug=timings.
func (m *serviceMetrics) stageSink() func(name string, d time.Duration) {
	return func(name string, d time.Duration) {
		m.stages.With(name).Observe(d.Seconds())
	}
}

// knownPaths is the fixed route set metrics are labeled with. Anything
// else (scans, typos) collapses into "other" so request labels cannot
// grow without bound.
var knownPaths = map[string]struct{}{
	"/healthz":           {},
	"/metrics":           {},
	"/v1/status":         {},
	"/v1/items/upsert":   {},
	"/v1/items/remove":   {},
	"/v1/items/bulk":     {},
	"/v1/learn":          {},
	"/v1/rules":          {},
	"/v1/link":           {},
	"/v1/admin/snapshot": {},
	"/debug/requests":    {},
}

func normalizePath(p string) string {
	if _, ok := knownPaths[p]; ok {
		return p
	}
	if len(p) >= len("/debug/pprof") && p[:len("/debug/pprof")] == "/debug/pprof" {
		return "/debug/pprof"
	}
	return "other"
}

// newRequestID mints a 16-hex-digit request ID. Uniqueness per log
// window is all correlation needs, so math/rand suffices.
func newRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// validRequestID accepts an inbound X-Request-ID for echoing: short and
// header-safe, so a hostile client cannot inject log or header content
// through it.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// hashKey reduces an API key to a stable non-reversible log token:
// correlatable across lines, useless to an attacker reading logs.
func hashKey(key string) string {
	if key == "" {
		return "anonymous"
	}
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:6])
}

// registerFlightMetrics exposes the flight recorder's retention
// counters as scrape-time Func collectors reading the same atomics
// /debug/requests reports. Called once, from New.
func (s *Service) registerFlightMetrics() {
	fr := s.flight
	s.reg.CounterFunc("linkrules_flight_seen_total",
		"Requests offered to the flight recorder.",
		func() float64 { return float64(fr.Stats().Seen) })
	s.reg.CounterFunc("linkrules_flight_kept_total",
		"Requests retained by the flight recorder (slow + error + sampled).",
		func() float64 {
			st := fr.Stats()
			return float64(st.KeptSlow + st.KeptError + st.KeptSampled)
		})
}

// registerStoreMetrics exposes the durability store's point-in-time
// state as Func collectors reading Stats() at scrape time — the same
// call /v1/status makes, so the two views cannot drift — plus the
// recovery outcome as constants. Called once, when Restore binds the
// store.
func (s *Service) registerStoreMetrics(rec *store.Recovery) {
	st := s.st
	reg := s.reg
	reg.GaugeFunc("linkrules_store_degraded",
		"1 when the store has fail-stopped (service is read-only until restart).",
		func() float64 {
			if st.Failed() != nil {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("linkrules_store_wal_seq",
		"Last assigned write-ahead log sequence number.",
		func() float64 { return float64(st.Stats().Seq) })
	reg.GaugeFunc("linkrules_store_wal_records",
		"WAL records not yet covered by a snapshot.",
		func() float64 { return float64(st.Stats().WALRecords) })
	reg.GaugeFunc("linkrules_store_wal_bytes",
		"On-disk size of all live WAL segments.",
		func() float64 { return float64(st.Stats().WALBytes) })
	reg.GaugeFunc("linkrules_store_snapshots",
		"Snapshot files on disk.",
		func() float64 { return float64(st.Stats().Snapshots) })
	reg.CounterFunc("linkrules_store_checkpoints_total",
		"Checkpoints completed by this process.",
		func() float64 { return float64(st.Stats().Checkpoints) })
	reg.GaugeFunc("linkrules_store_last_snapshot_seq",
		"Sequence covered by the newest durable snapshot.",
		func() float64 { return float64(st.Stats().LastSnapshotSeq) })
	reg.GaugeFunc("linkrules_store_last_snapshot_unix",
		"When the newest snapshot was written (unix seconds; 0 = never).",
		func() float64 { return float64(st.Stats().LastSnapshotUnix) })

	replayed, torn, skipped := 0, 0, rec.SkippedSnapshots
	replayed = len(rec.Tail)
	if rec.TornTail {
		torn = 1
	}
	reg.Gauge("linkrules_recovery_replayed_records",
		"WAL records replayed at the last boot.").Set(int64(replayed))
	reg.Gauge("linkrules_recovery_torn_tail",
		"1 when the last boot found (and discarded) a torn WAL tail.").Set(int64(torn))
	reg.Gauge("linkrules_recovery_skipped_snapshots",
		"Invalid snapshot files passed over at the last boot.").Set(int64(skipped))
}
