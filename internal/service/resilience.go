package service

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Overload protection: every request (except the /healthz liveness
// probe) passes through a middleware stack before reaching its handler:
//
//	panic recovery   a panicking handler becomes a 500; the server keeps
//	                 serving instead of killing the connection
//	authentication   API keys from a static set; unauthenticated clients
//	                 share one anonymous rate bucket, or get 401 in
//	                 strict mode
//	rate limiting    per-client token bucket (sustained rate + burst),
//	                 excess gets 429 + Retry-After
//	admission        a bounded in-flight semaphore; requests beyond the
//	                 cap get 429 + Retry-After instead of queueing
//	                 without bound
//	deadline         a per-request context timeout; handlers that honor
//	                 the context turn it into 503 + Retry-After
//
// Rejections are cheap (no handler work, no allocation beyond the error
// body), so the service sheds load instead of collapsing under it. All
// counters and limits are surfaced by /v1/status.

// Machine-readable rejection reasons, carried in the error envelope's
// "reason" field so clients can react without parsing prose.
const (
	reasonOverloaded   = "overloaded"         // 429: in-flight cap reached
	reasonRateLimited  = "rate_limited"       // 429: client token bucket empty
	reasonUnauthorized = "unauthorized"       // 401: missing or unknown API key
	reasonTimeout      = "deadline_exceeded"  // 503: per-request deadline hit
	reasonPanic        = "internal_error"     // 500: handler panicked
	reasonPersist      = "persist_failed"     // 503: this mutation's WAL append failed
	reasonDegraded     = "degraded_read_only" // 503: store fail-stopped earlier
	reasonBusy         = "checkpoint_busy"    // 409: snapshot already in flight
)

// ResilienceOptions configures the overload-protection middleware. The
// zero value applies no limits (panic recovery is always on).
type ResilienceOptions struct {
	// MaxInFlight bounds concurrently served requests; excess requests
	// are rejected with 429 + Retry-After. 0 means unlimited.
	MaxInFlight int
	// RequestTimeout is the per-request context deadline; handlers that
	// run past it answer 503 + Retry-After. 0 means none.
	RequestTimeout time.Duration
	// Rate is the sustained per-client request rate (requests/second),
	// enforced by a token bucket per API key. 0 means unlimited.
	Rate float64
	// Burst is the token-bucket capacity; 0 means max(1, round(Rate)).
	Burst int
	// APIKeys is the set of accepted client keys (Authorization: Bearer
	// or X-API-Key). Empty means authentication is disabled and every
	// client shares the anonymous bucket.
	APIKeys []string
	// StrictAuth rejects unauthenticated requests with 401 instead of
	// routing them to the shared anonymous bucket. Requires APIKeys.
	StrictAuth bool
	// RetryAfter is the hint sent with 429/503 rejections; 0 means 1s.
	RetryAfter time.Duration
	// Clock substitutes the rate limiter's time source in tests; nil
	// means time.Now.
	Clock func() time.Time
}

// anonKey is the bucket key unauthenticated clients share.
const anonKey = ""

// resilience is the middleware's runtime state. Its counters and the
// in-flight gauge are obs instruments: /v1/status reads their values,
// /metrics renders the very same atomics, so the two views agree by
// construction.
type resilience struct {
	opts ResilienceOptions

	sem      chan struct{} // nil when MaxInFlight == 0
	inFlight *obs.Gauge
	burst    float64
	clock    func() time.Time

	// buckets is built once at construction (configured keys + the
	// anonymous bucket) and read-only afterwards, so the hot-path lookup
	// takes no lock.
	buckets map[string]*bucket

	met *serviceMetrics
	log *slog.Logger // access log; nil disables
	// flight receives every completed request for tail-based retention;
	// nil-safe (Observe on a nil recorder is a no-op).
	flight *obs.FlightRecorder

	rejectedOverload *obs.Counter
	rejectedRate     *obs.Counter
	rejectedAuth     *obs.Counter
	timeouts         *obs.Counter
	panics           *obs.Counter
}

func newResilience(opts ResilienceOptions, met *serviceMetrics, accessLog *slog.Logger) *resilience {
	if met == nil {
		met = newServiceMetrics(obs.NewRegistry())
	}
	rz := &resilience{opts: opts, clock: opts.Clock, met: met, log: accessLog}
	rz.inFlight = met.inFlight
	rz.rejectedOverload = met.rejected.With(reasonOverloaded)
	rz.rejectedRate = met.rejected.With(reasonRateLimited)
	rz.rejectedAuth = met.rejected.With(reasonUnauthorized)
	rz.timeouts = met.timeouts
	rz.panics = met.panics
	if rz.clock == nil {
		rz.clock = time.Now
	}
	if opts.MaxInFlight > 0 {
		rz.sem = make(chan struct{}, opts.MaxInFlight)
	}
	if opts.RetryAfter <= 0 {
		rz.opts.RetryAfter = time.Second
	}
	rz.burst = float64(opts.Burst)
	if rz.burst <= 0 {
		rz.burst = math.Max(1, math.Round(opts.Rate))
	}
	rz.buckets = make(map[string]*bucket, len(opts.APIKeys)+1)
	rz.buckets[anonKey] = &bucket{}
	for _, k := range opts.APIKeys {
		if k != "" {
			rz.buckets[k] = &bucket{}
		}
	}
	return rz
}

// bucket is one client's token bucket. Tokens accrue at Rate per second
// up to burst; each admitted request costs one.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take removes one token if available, returning (true, 0) on success
// or (false, wait-until-next-token) on rejection.
func (b *bucket) take(now time.Time, rate, burst float64) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt.Seconds()*rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rate * float64(time.Second))
}

// client authenticates the request, returning the rate-bucket key. A
// presented key must be in the configured set; a missing key maps to
// the anonymous bucket unless StrictAuth is on. With no keys configured
// authentication is disabled entirely and every client is anonymous —
// presented keys are deliberately NOT used as bucket keys then, or any
// client could mint itself fresh buckets at will.
func (rz *resilience) client(r *http.Request) (key string, ok bool) {
	presented := presentedKey(r)
	if len(rz.buckets) == 1 { // no APIKeys configured
		return anonKey, true
	}
	if presented != "" {
		if _, known := rz.buckets[presented]; known {
			return presented, true
		}
		return "", false
	}
	if rz.opts.StrictAuth {
		return "", false
	}
	return anonKey, true
}

// presentedKey extracts the client's API key from the request headers
// (X-API-Key, or Authorization: Bearer), or "" when none was sent.
func presentedKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); len(auth) > 7 && strings.EqualFold(auth[:7], "Bearer ") {
		return auth[7:]
	}
	return ""
}

// allow runs the rate-limit check for one admitted client key.
func (rz *resilience) allow(key string) (bool, time.Duration) {
	if rz.opts.Rate <= 0 {
		return true, 0
	}
	b := rz.buckets[key]
	if b == nil {
		b = rz.buckets[anonKey]
	}
	return b.take(rz.clock(), rz.opts.Rate, rz.burst)
}

// acquire claims an in-flight slot without blocking; release returns
// it. Both are O(1) on the hot path.
func (rz *resilience) acquire() bool {
	if rz.sem != nil {
		select {
		case rz.sem <- struct{}{}:
		default:
			return false
		}
	}
	rz.inFlight.Add(1)
	return true
}

func (rz *resilience) release() {
	rz.inFlight.Add(-1)
	if rz.sem != nil {
		<-rz.sem
	}
}

// retryAfterHeader sets the Retry-After hint, rounding d up to whole
// seconds (the header's granularity), minimum 1.
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// wrap applies the middleware stack around the service mux.
func (rz *resilience) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every response carries a request ID — the inbound one when the
		// client sent a header-safe value, a fresh one otherwise. It is
		// set on the shared header map up front so error envelopes and
		// the access log can read it back without extra plumbing.
		reqID := r.Header.Get("X-Request-ID")
		if !validRequestID(reqID) {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w}
		// Every request carries a stage trace: pipeline spans feed the
		// stage histograms through the sink, and the completed trace
		// rides into the flight recorder with the request record.
		tr := obs.NewTrace(rz.met.stageSink())
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		// Registered before the recovery defer: LIFO runs it after
		// recoverPanic has turned a panic into the 500 it records.
		t0 := time.Now()
		defer rz.record(sw, r, reqID, t0, tr)
		defer rz.recoverPanic(sw)
		if r.URL.Path == "/healthz" {
			// The liveness probe bypasses every limit: an orchestrator
			// must be able to tell "overloaded" from "dead".
			next.ServeHTTP(sw, r)
			return
		}
		key, ok := rz.client(r)
		if !ok {
			rz.rejectedAuth.Inc()
			sw.Header().Set("WWW-Authenticate", "Bearer")
			writeErrReason(sw, http.StatusUnauthorized, reasonUnauthorized, "missing or unknown API key")
			return
		}
		if ok, wait := rz.allow(key); !ok {
			rz.rejectedRate.Inc()
			retryAfterHeader(sw, wait)
			writeErrReason(sw, http.StatusTooManyRequests, reasonRateLimited, "client rate limit exceeded")
			return
		}
		if !rz.acquire() {
			rz.rejectedOverload.Inc()
			retryAfterHeader(sw, rz.opts.RetryAfter)
			writeErrReason(sw, http.StatusTooManyRequests,
				reasonOverloaded, "server at capacity (%d requests in flight)", rz.opts.MaxInFlight)
			return
		}
		defer rz.release()
		if d := rz.opts.RequestTimeout; d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(sw, r.WithContext(ctx))
			if ctx.Err() == context.DeadlineExceeded && !sw.wrote {
				// The handler gave up on the expired context without
				// answering (handlers that classify the error themselves,
				// like /v1/link, have written 503 already and count below).
				rz.timeouts.Inc()
				retryAfterHeader(sw, rz.opts.RetryAfter)
				writeErrReason(sw, http.StatusServiceUnavailable,
					reasonTimeout, "request exceeded the %s server deadline", d)
			}
			return
		}
		next.ServeHTTP(sw, r)
	})
}

// record lands one finished request in the endpoint metrics, the flight
// recorder and, when configured, the structured access log. Runs after
// panic recovery, so recovered 500s are counted like any other
// response.
func (rz *resilience) record(sw *statusWriter, r *http.Request, reqID string, t0 time.Time, tr *obs.Trace) {
	code := sw.status
	if !sw.wrote {
		code = http.StatusOK // a handler that wrote nothing: net/http sends 200
	}
	d := time.Since(t0)
	path := normalizePath(r.URL.Path)
	rz.met.requests.With(path, strconv.Itoa(code)).Inc()
	rz.met.duration.With(path).Observe(d.Seconds())
	rz.met.respBytes.With(path).Observe(float64(sw.bytes))
	client := hashKey(presentedKey(r))
	stages := tr.Stages()
	rz.flight.Observe(obs.RequestRecord{
		ID:       reqID,
		Method:   r.Method,
		Path:     r.URL.Path,
		Status:   code,
		Reason:   sw.reason,
		Client:   client,
		Start:    t0,
		Duration: d,
		Bytes:    sw.bytes,
		Stages:   stages,
	})
	if rz.log != nil {
		level := slog.LevelInfo
		msg := "request"
		var extra []slog.Attr
		if th := rz.flight.SlowThreshold(); th > 0 && d >= th {
			// Slow requests get their own structured line — warning level,
			// with the stage breakdown inlined, so "why was this slow" is
			// answerable from the log alone.
			level, msg = slog.LevelWarn, "slow request"
			for _, st := range stages {
				extra = append(extra, slog.Duration("stage_"+st.Name, st.Duration))
			}
		}
		attrs := append([]slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", code),
			slog.Duration("duration", d),
			slog.Int64("bytes", sw.bytes),
			slog.String("client", client),
			slog.String("request_id", reqID),
		}, extra...)
		rz.log.LogAttrs(context.Background(), level, msg, attrs...)
	}
}

// recoverPanic turns a handler panic into a 500 (when nothing was
// written yet) and keeps the server alive. http.ErrAbortHandler keeps
// its contract of abruptly closing the connection.
func (rz *resilience) recoverPanic(w *statusWriter) {
	p := recover()
	if p == nil {
		return
	}
	if err, ok := p.(error); ok && err == http.ErrAbortHandler {
		panic(p)
	}
	rz.panics.Inc()
	if !w.wrote {
		// The panic value stays out of the response: it may contain
		// internal state. It is preserved for operators via the panics
		// counter in /v1/status.
		writeErrReason(w, http.StatusInternalServerError, reasonPanic, "internal error")
	}
}

// statusWriter tracks whether a response has been started (so the
// recovery and deadline layers know if they may still write an error),
// plus the status and body size the metrics and access log record.
type statusWriter struct {
	http.ResponseWriter
	wrote  bool
	status int
	bytes  int64
	// reason is the machine-readable rejection token of the error
	// envelope, captured by writeErrReason for the flight recorder.
	reason string
}

// setReason records the rejection reason; writeErrReason finds it via
// interface assertion so handlers need no direct statusWriter coupling.
func (w *statusWriter) setReason(reason string) { w.reason = reason }

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote, w.status = true, code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote, w.status = true, http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush keeps streaming handlers working through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// resilienceJSON is the /v1/status view of the middleware: active
// limits and rejection counters.
type resilienceJSON struct {
	InFlight         int64   `json:"in_flight"`
	MaxInFlight      int     `json:"max_in_flight,omitempty"`
	RequestTimeoutMS int64   `json:"request_timeout_ms,omitempty"`
	Rate             float64 `json:"rate,omitempty"`
	Burst            int     `json:"burst,omitempty"`
	StrictAuth       bool    `json:"strict_auth,omitempty"`
	APIKeys          int     `json:"api_keys,omitempty"`
	RejectedOverload uint64  `json:"rejected_overload"`
	RejectedRate     uint64  `json:"rejected_rate"`
	RejectedAuth     uint64  `json:"rejected_auth"`
	Timeouts         uint64  `json:"timeouts"`
	Panics           uint64  `json:"panics"`
}

func (rz *resilience) statusJSON() *resilienceJSON {
	j := &resilienceJSON{
		InFlight:         rz.inFlight.Value(),
		MaxInFlight:      rz.opts.MaxInFlight,
		Rate:             rz.opts.Rate,
		StrictAuth:       rz.opts.StrictAuth,
		APIKeys:          len(rz.buckets) - 1, // minus the anonymous bucket
		RejectedOverload: rz.rejectedOverload.Value(),
		RejectedRate:     rz.rejectedRate.Value(),
		RejectedAuth:     rz.rejectedAuth.Value(),
		Timeouts:         rz.timeouts.Value(),
		Panics:           rz.panics.Value(),
	}
	if rz.opts.Rate > 0 {
		j.Burst = int(rz.burst)
	}
	if rz.opts.RequestTimeout > 0 {
		j.RequestTimeoutMS = rz.opts.RequestTimeout.Milliseconds()
	}
	return j
}

// degradedState reports whether the store has fail-stopped, and why.
// Ephemeral services are never degraded.
func (s *Service) degradedState() (bool, string) {
	if s.st == nil {
		return false, ""
	}
	if err := s.st.Failed(); err != nil {
		return true, err.Error()
	}
	return false, ""
}

// checkDegradedLocked rejects a mutation up front when the store has
// already fail-stopped: the WAL cannot accept the record, so failing
// fast (before building state) keeps the read path fully responsive.
// Callers hold the write lock.
func (s *Service) checkDegradedLocked() error {
	if s.st == nil {
		return nil
	}
	if err := s.st.Failed(); err != nil {
		return fmt.Errorf("%w: %v", errDegraded, err)
	}
	return nil
}
