package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	datalink "repro"
	"repro/internal/obs"
	"repro/internal/similarity"
)

// slowLinkService builds the corpus service with a deliberately slow
// default linker (every similarity call sleeps), the flight recorder
// tuned to a low slow threshold, and /debug/requests mounted. Link
// queries become deterministically slow; everything else stays fast.
func slowLinkService(t *testing.T, rec obs.RecorderOptions) *Service {
	t.Helper()
	return corpusServiceOpts(t, func(o *Options) {
		o.Recorder = rec
		o.DebugRequests = true
		o.DefaultLinker = datalink.LinkerConfig{
			Comparators: []datalink.Comparator{{
				ExternalProperty: datalink.NewIRI(pnProp),
				LocalProperty:    datalink.NewIRI(pnProp),
				Measure: similarity.Func{ID: "sleepy", F: func(a, b string) float64 {
					time.Sleep(2 * time.Millisecond)
					return datalink.Levenshtein.Similarity(a, b)
				}},
				Weight: 1,
			}},
			Threshold: 0.5,
			Workers:   1,
		}
	})
}

// TestDebugRequestsTailRetention is the PR's acceptance scenario: one
// deliberately slow link query, then a flood of 10k fast requests with
// concurrent /debug/requests and /metrics readers (under -race), and
// the slow request's stage-level trace is still retrievable.
func TestDebugRequestsTailRetention(t *testing.T) {
	s := slowLinkService(t, obs.RecorderOptions{
		Capacity:      64,
		SlowCapacity:  128,
		SlowThreshold: 25 * time.Millisecond,
		SampleRate:    0, // only outliers retained: the starkest case
	})
	h := s.Handler()
	if rec := call(t, h, "POST", "/v1/learn", learnBody(20), nil); rec.Code != http.StatusOK {
		t.Fatalf("learn: %d %s", rec.Code, rec.Body)
	}

	// The deliberately slow request: one item against the sleepy
	// comparator is 40 local comparisons x 2ms >= 80ms, far over the
	// threshold.
	var linkResp linkResponse
	if rec := call(t, h, "POST", "/v1/link",
		linkRequest{Items: []string{"http://ex.org/e/r1"}, TopK: 1}, &linkResp); rec.Code != http.StatusOK {
		t.Fatalf("link: %d %s", rec.Code, rec.Body)
	}

	// Flood: 10k fast requests, plus concurrent /debug/requests and
	// /metrics readers racing the writers.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2500; i++ {
				call(t, h, "GET", "/healthz", nil, nil)
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				call(t, h, "GET", "/debug/requests?n=10", nil, nil)
				call(t, h, "GET", "/metrics", nil, nil)
			}
		}()
	}
	wg.Wait()

	// The slow link request must have survived the flood, with its
	// stage breakdown intact, and be addressable by every filter.
	var resp debugRequestsResponse
	if rec := call(t, h, "GET", "/debug/requests?min_ms=25&path=/v1/link", nil, &resp); rec.Code != http.StatusOK {
		t.Fatalf("debug/requests: %d %s", rec.Code, rec.Body)
	}
	if len(resp.Requests) != 1 {
		t.Fatalf("want exactly the slow link request, got %d: %+v", len(resp.Requests), resp.Requests)
	}
	slow := resp.Requests[0]
	if slow.Path != "/v1/link" || slow.Kind != "slow" || slow.Status != http.StatusOK {
		t.Fatalf("slow record mismatch: %+v", slow)
	}
	if slow.DurationMS < 25 {
		t.Fatalf("slow record under threshold: %v ms", slow.DurationMS)
	}
	if slow.ID == "" || slow.Client == "" {
		t.Fatalf("missing identity fields: %+v", slow)
	}
	stages := map[string]float64{}
	for _, st := range slow.Stages {
		stages[st.Stage] = st.Seconds
	}
	for _, want := range []string{"engine", "blocking", "scoring"} {
		if _, ok := stages[want]; !ok {
			t.Fatalf("stage %q missing from trace: %+v", want, slow.Stages)
		}
	}
	if stages["scoring"] < 0.025 {
		t.Fatalf("scoring stage should dominate the slow query: %+v", stages)
	}
	if resp.Stats.Seen < 10001 {
		t.Fatalf("recorder saw %d requests, want >= 10001", resp.Stats.Seen)
	}
	if resp.Config.SlowMS != 25 || resp.Config.SampleRate != 0 {
		t.Fatalf("config echo mismatch: %+v", resp.Config)
	}
}

// TestDebugRequestsErrorsAndFilters: rejected/errored requests are
// always kept with their rejection reason, and the status filters
// address them.
func TestDebugRequestsErrors(t *testing.T) {
	s := slowLinkService(t, obs.RecorderOptions{SlowThreshold: time.Hour})
	h := s.Handler()

	// A 400 (bad body) and a 404 (unknown route) — both error-kind.
	call(t, h, "POST", "/v1/learn", map[string]any{"bogus": true}, nil)
	call(t, h, "GET", "/nope", nil, nil)

	var resp debugRequestsResponse
	if rec := call(t, h, "GET", "/debug/requests?status=4xx", nil, &resp); rec.Code != http.StatusOK {
		t.Fatalf("debug/requests: %d %s", rec.Code, rec.Body)
	}
	if len(resp.Requests) != 2 {
		t.Fatalf("want both 4xx records, got %+v", resp.Requests)
	}
	for _, r := range resp.Requests {
		if r.Kind != "error" {
			t.Fatalf("kind = %q, want error: %+v", r.Kind, r)
		}
	}

	if rec := call(t, h, "GET", "/debug/requests?status=404", nil, &resp); rec.Code != http.StatusOK || len(resp.Requests) != 1 {
		t.Fatalf("status=404 filter: %d, %+v", rec.Code, resp.Requests)
	}
	if resp.Requests[0].Path != "/nope" {
		t.Fatalf("404 record: %+v", resp.Requests[0])
	}

	// Bad filter values are 400s (and themselves get recorded).
	if rec := call(t, h, "GET", "/debug/requests?min_ms=-1", nil, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("min_ms=-1: %d", rec.Code)
	}
	if rec := call(t, h, "GET", "/debug/requests?n=zero", nil, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("n=zero: %d", rec.Code)
	}
}

// TestDebugRequestsRejectionReason: middleware rejections carry their
// machine-readable reason into the recorder.
func TestDebugRequestsRejectionReason(t *testing.T) {
	s := corpusServiceOpts(t, func(o *Options) {
		o.DebugRequests = true
		o.Resilience = ResilienceOptions{APIKeys: []string{"secret"}, StrictAuth: true}
	})
	h := s.Handler()

	// One unauthorized request, then read the recorder with the key.
	rec := call(t, h, "GET", "/v1/status", nil, nil)
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("expected 401, got %d", rec.Code)
	}

	var resp debugRequestsResponse
	r2 := httptest.NewRequest("GET", "/debug/requests?status=error", nil)
	r2.Header.Set("X-API-Key", "secret")
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, r2)
	if w2.Code != http.StatusOK {
		t.Fatalf("debug/requests with key: %d %s", w2.Code, w2.Body)
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Requests) != 1 || resp.Requests[0].Reason != reasonUnauthorized {
		t.Fatalf("want one unauthorized record, got %+v", resp.Requests)
	}
	if resp.Requests[0].Client != "anonymous" {
		t.Fatalf("client = %q, want anonymous", resp.Requests[0].Client)
	}

	// Unauthenticated access to the recorder itself is rejected.
	if rec := call(t, h, "GET", "/debug/requests", nil, nil); rec.Code != http.StatusUnauthorized {
		t.Fatalf("debug/requests without key: %d", rec.Code)
	}
}

// TestLearnDebugTimings: /v1/learn?debug=timings returns the per-stage
// breakdown — parity with /v1/link.
func TestLearnDebugTimings(t *testing.T) {
	h := corpusService(t).Handler()
	var resp learnResponse
	if rec := call(t, h, "POST", "/v1/learn?debug=timings", learnBody(20), &resp); rec.Code != http.StatusOK {
		t.Fatalf("learn: %d %s", rec.Code, rec.Body)
	}
	stages := map[string]bool{}
	for _, st := range resp.Timings {
		stages[st.Stage] = true
		if st.Seconds < 0 {
			t.Fatalf("negative stage duration: %+v", st)
		}
	}
	for _, want := range []string{"learn", "publish"} {
		if !stages[want] {
			t.Fatalf("stage %q missing from timings: %+v", want, resp.Timings)
		}
	}

	// Without the flag, no timings.
	var plain learnResponse
	if rec := call(t, h, "POST", "/v1/learn", learnBody(20), &plain); rec.Code != http.StatusOK {
		t.Fatalf("learn: %d %s", rec.Code, rec.Body)
	}
	if plain.Timings != nil {
		t.Fatalf("timings without debug flag: %+v", plain.Timings)
	}
}

// TestDebugRequestsNotMountedByDefault: without Options.DebugRequests
// the endpoint does not exist.
func TestDebugRequestsNotMounted(t *testing.T) {
	h := corpusService(t).Handler()
	if rec := call(t, h, "GET", "/debug/requests", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("debug/requests on default service: %d", rec.Code)
	}
}

// TestBuildInfoAndRuntimeMetrics: every service scrape carries the
// build_info gauge, the go_* runtime series and the flight counters,
// lint-clean.
func TestBuildInfoAndRuntimeMetrics(t *testing.T) {
	s := corpusService(t)
	h := s.Handler()
	call(t, h, "GET", "/healthz", nil, nil)

	rec := call(t, h, "GET", "/metrics", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	text := rec.Body.String()
	if errs := obs.Lint(text); errs != nil {
		t.Fatalf("lint errors: %v", errs)
	}
	for _, want := range []string{
		"linkrules_build_info{",
		"go_goroutines ",
		"go_heap_inuse_bytes ",
		"go_gc_cycles_total ",
		"go_gc_pause_seconds_bucket{",
		"go_sched_latency_seconds_bucket{",
		"go_process_start_time_seconds ",
		"linkrules_flight_seen_total ",
		"linkrules_flight_kept_total ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in scrape", want)
		}
	}
	bi := obs.Build()
	if !strings.Contains(text, fmt.Sprintf("go_version=%q", bi.GoVersion)) {
		t.Fatalf("build_info go_version %q missing", bi.GoVersion)
	}
}
