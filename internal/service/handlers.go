package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	datalink "repro"
)

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decode parses a JSON request body strictly (unknown fields are
// rejected, catching typo'd options early) under the service's size cap.
// The body must be exactly one JSON value: trailing data after it —
// which json.Decoder would otherwise silently ignore, accepting e.g.
// two concatenated objects and applying only the first — is a 400.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeErr(w, http.StatusBadRequest, "decoding request: trailing data after JSON body")
		return false
	}
	return true
}

// parseSide maps the wire name to a Side.
func parseSide(s string) (datalink.Side, error) {
	switch s {
	case "external":
		return datalink.ExternalSide, nil
	case "local":
		return datalink.LocalSide, nil
	default:
		return 0, fmt.Errorf("side must be %q or %q, got %q", "external", "local", s)
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// statusResponse reports corpus and model state.
type statusResponse struct {
	ExternalTriples int      `json:"external_triples"`
	LocalTriples    int      `json:"local_triples"`
	ExternalVersion uint64   `json:"external_version"`
	LocalVersion    uint64   `json:"local_version"`
	TrainingLinks   int      `json:"training_links"`
	Learned         bool     `json:"learned"`
	Rules           int      `json:"rules"`
	Measures        []string `json:"measures"`
}

func (s *Service) handleStatus(w http.ResponseWriter, _ *http.Request) {
	qs := s.state.Load()
	resp := statusResponse{
		ExternalTriples: qs.se.Len(),
		LocalTriples:    qs.sl.Len(),
		ExternalVersion: qs.se.Version(),
		LocalVersion:    qs.sl.Version(),
		TrainingLinks:   qs.links,
		Learned:         qs.pipe != nil,
		Measures:        MeasureNames(),
	}
	if qs.pipe != nil {
		resp.Rules = qs.pipe.Model.Rules.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// itemSpec is the wire form of one item description: its IRI, literal
// property values, and (local side only) its ontology classes.
type itemSpec struct {
	ID         string              `json:"id"`
	Properties map[string][]string `json:"properties"`
	Classes    []string            `json:"classes,omitempty"`
}

type upsertRequest struct {
	Side  string     `json:"side"`
	Items []itemSpec `json:"items"`
}

type upsertResponse struct {
	Upserted int    `json:"upserted"`
	Version  uint64 `json:"version"`
}

func (s *Service) handleUpsert(w http.ResponseWriter, r *http.Request) {
	var req upsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, http.StatusBadRequest, "no items given")
		return
	}
	// Validate the whole batch before touching the graphs, so a 400
	// response means no data changed.
	terms := make([]datalink.Term, 0, len(req.Items))
	for i, it := range req.Items {
		if it.ID == "" {
			writeErr(w, http.StatusBadRequest, "item %d: id is required", i)
			return
		}
		term := datalink.NewIRI(it.ID)
		if err := validateItem(side, term, it.Properties, it.Classes); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		terms = append(terms, term)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, it := range req.Items {
		s.replaceItemLocked(side, terms[i], it.Properties, it.Classes)
	}
	// Push the mutation into the cached linker and the instance index
	// incrementally (per item — no rebuild of either), then publish a
	// fresh frozen view for queries.
	if s.pipe != nil {
		s.pipe.Upsert(side, terms...)
		if side == datalink.LocalSide {
			s.freezeInstancesLocked()
		}
	}
	g := s.se
	if side == datalink.LocalSide {
		g = s.sl
	}
	s.publishLocked()
	writeJSON(w, http.StatusOK, upsertResponse{Upserted: len(req.Items), Version: g.Version()})
}

type removeRequest struct {
	Side string   `json:"side"`
	IDs  []string `json:"ids"`
}

type removeResponse struct {
	Removed int    `json:"removed"`
	Version uint64 `json:"version"`
	// PurgedLinks counts training links dropped because their endpoint
	// on this side was removed — otherwise the next learn would
	// resurrect ghost items into the model.
	PurgedLinks int `json:"purged_links"`
}

func (s *Service) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !s.decode(w, r, &req) {
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, "no ids given")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.se
	if side == datalink.LocalSide {
		g = s.sl
	}
	terms := make([]datalink.Term, 0, len(req.IDs))
	gone := make(map[datalink.Term]struct{}, len(req.IDs))
	removed := 0
	for _, id := range req.IDs {
		item := datalink.NewIRI(id)
		terms = append(terms, item)
		gone[item] = struct{}{}
		trs := g.Find(item, datalink.Term{}, datalink.Term{})
		for _, tr := range trs {
			g.Remove(tr)
		}
		if len(trs) > 0 {
			removed++
		}
	}
	purged := s.purgeLinksLocked(side, gone)
	if s.pipe != nil {
		s.pipe.RemoveItems(side, terms...)
		if side == datalink.LocalSide {
			s.freezeInstancesLocked()
		}
	}
	s.publishLocked()
	writeJSON(w, http.StatusOK, removeResponse{Removed: removed, Version: g.Version(), PurgedLinks: purged})
}

// purgeLinksLocked drops accumulated training links whose endpoint on
// the given side is in gone, returning how many were dropped. Without
// this, removed items linger in the training set and the next learn
// resurrects them into the model. Callers must hold the write lock.
func (s *Service) purgeLinksLocked(side datalink.Side, gone map[datalink.Term]struct{}) int {
	kept := make([]datalink.Link, 0, len(s.links))
	for _, l := range s.links {
		end := l.External
		if side == datalink.LocalSide {
			end = l.Local
		}
		if _, dead := gone[end]; dead {
			continue
		}
		kept = append(kept, l)
	}
	purged := len(s.links) - len(kept)
	s.links = kept
	return purged
}

// linkSpec is the wire form of one labeled same-as link.
type linkSpec struct {
	External string `json:"external"`
	Local    string `json:"local"`
}

type learnRequest struct {
	Links []linkSpec `json:"links"`
	// Replace discards previously accumulated links instead of extending
	// them.
	Replace bool `json:"replace,omitempty"`
}

type learnResponse struct {
	TrainingLinks int `json:"training_links"`
	Rules         int `json:"rules"`
	Segments      int `json:"segments"`
}

func (s *Service) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req learnRequest
	if !s.decode(w, r, &req) {
		return
	}
	links := make([]datalink.Link, 0, len(req.Links))
	for i, l := range req.Links {
		if l.External == "" || l.Local == "" {
			writeErr(w, http.StatusBadRequest, "link %d: external and local are required", i)
			return
		}
		links = append(links, datalink.Link{
			External: datalink.NewIRI(l.External),
			Local:    datalink.NewIRI(l.Local),
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.links
	if req.Replace {
		s.links = links
	} else {
		s.links = append(append([]datalink.Link(nil), s.links...), links...)
	}
	if err := s.learnLocked(); err != nil {
		s.links = prev // learning failed; keep the old state queryable
		writeErr(w, http.StatusBadRequest, "learning: %v", err)
		return
	}
	s.publishLocked()
	writeJSON(w, http.StatusOK, learnResponse{
		TrainingLinks: len(s.links),
		Rules:         s.pipe.Model.Rules.Len(),
		Segments:      s.pipe.Model.Stats.DistinctSegments,
	})
}

// ruleJSON is the wire form of one learned rule.
type ruleJSON struct {
	Property   string  `json:"property"`
	Segment    string  `json:"segment"`
	Class      string  `json:"class"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
	Text       string  `json:"text"`
}

func (s *Service) handleRules(w http.ResponseWriter, _ *http.Request) {
	qs := s.state.Load()
	if qs.pipe == nil {
		writeErr(w, http.StatusConflict, "no model learned yet; POST /v1/learn first")
		return
	}
	rules := qs.pipe.Model.Rules.Rules
	out := make([]ruleJSON, 0, len(rules))
	for _, rl := range rules {
		out = append(out, ruleJSON{
			Property:   rl.Property.Value,
			Segment:    rl.Segment,
			Class:      rl.Class.Value,
			Support:    rl.Support(),
			Confidence: rl.Confidence(),
			Lift:       rl.Lift(),
			Text:       rl.String(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"rules": out})
}

type linkRequest struct {
	// Items restricts the query; empty means every external item.
	Items []string `json:"items"`
	// Threshold overrides the default linker threshold when set.
	Threshold *float64 `json:"threshold,omitempty"`
	// Workers overrides the scoring fan-out when set; 0 means all cores.
	Workers *int `json:"workers,omitempty"`
	// TopK caps the matches returned per item; 0 means all above the
	// threshold.
	TopK int `json:"top_k,omitempty"`
	// Comparators override Options.DefaultLinker's comparators.
	Comparators []comparatorSpec `json:"comparators,omitempty"`
}

type matchJSON struct {
	Local string  `json:"local"`
	Score float64 `json:"score"`
}

type linkResult struct {
	Item    string      `json:"item"`
	Matches []matchJSON `json:"matches"`
}

type linkResponse struct {
	Results []linkResult `json:"results"`
}

func (s *Service) handleLink(w http.ResponseWriter, r *http.Request) {
	var req linkRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Load the published snapshot bundle and run the whole query against
	// it — no service lock is taken, so concurrent mutations proceed
	// undelayed and this query observes one consistent corpus.
	qs := s.state.Load()
	if qs.view == nil {
		writeErr(w, http.StatusConflict, "no model learned yet; POST /v1/learn first")
		return
	}
	cfg := s.opts.DefaultLinker
	if len(req.Comparators) > 0 {
		comps, err := compileComparators(req.Comparators)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		cfg.Comparators = comps
	}
	if len(cfg.Comparators) == 0 {
		writeErr(w, http.StatusBadRequest, "no comparators: set them in the request or configure a default linker")
		return
	}
	if req.Threshold != nil {
		cfg.Threshold = *req.Threshold
	}
	if req.Workers != nil {
		cfg.Workers = *req.Workers
	}
	var items []datalink.Term
	if len(req.Items) > 0 {
		items = make([]datalink.Term, 0, len(req.Items))
		for _, id := range req.Items {
			items = append(items, datalink.NewIRI(id))
		}
	} else {
		items = qs.se.AllSubjects()
	}
	// The request context threads through the engine's worker pool: a
	// dropped connection cancels in-flight scoring.
	topk, err := qs.view.LinkTopK(r.Context(), items, cfg, req.TopK)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			writeErr(w, 499, "request cancelled: %v", err) // 499: client closed request
		case errors.Is(err, datalink.ErrLinkerConfig):
			writeErr(w, http.StatusBadRequest, "%v", err)
		default:
			// Anything else is an internal failure, not a bad request.
			writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	results := make([]linkResult, 0, len(topk))
	for item, ms := range topk {
		lr := linkResult{Item: item.Value, Matches: make([]matchJSON, 0, len(ms))}
		for _, m := range ms {
			lr.Matches = append(lr.Matches, matchJSON{Local: m.Local.Value, Score: m.Score})
		}
		results = append(results, lr)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Item < results[j].Item })
	writeJSON(w, http.StatusOK, linkResponse{Results: results})
}
