package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	datalink "repro"
	"repro/internal/obs"
	"repro/internal/store"
)

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error envelope. Reason, when set, is a
// stable machine-readable token (see resilience.go) so clients can
// react to overload, degradation and auth failures without parsing the
// human-readable message. RequestID echoes the X-Request-ID header so
// an error response alone is enough to find the matching access-log
// line.
type errorBody struct {
	Error     string `json:"error"`
	Reason    string `json:"reason,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get("X-Request-ID"),
	})
}

// writeErrReason writes the error envelope with a machine-readable
// reason token. The token is also recorded on the response writer (when
// it is the middleware's statusWriter), so the flight recorder keeps
// rejections with their reason attached.
func writeErrReason(w http.ResponseWriter, code int, reason, format string, args ...any) {
	if rw, ok := w.(interface{ setReason(string) }); ok {
		rw.setReason(reason)
	}
	writeJSON(w, code, errorBody{
		Error:     fmt.Sprintf(format, args...),
		Reason:    reason,
		RequestID: w.Header().Get("X-Request-ID"),
	})
}

// writeCommitErr classifies a failed mutation commit: a store that
// fail-stopped earlier rejects the mutation up front (degraded
// read-only mode — restart to recover), a fresh WAL append failure is
// the moment the store fail-stops. Both are 503s the client must not
// retry against this process; anything else is the mutation itself
// failing (learning can) and stays a 400.
func writeCommitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDegraded):
		writeErrReason(w, http.StatusServiceUnavailable, reasonDegraded,
			"service is degraded read-only: %v", err)
	case errors.Is(err, errPersist):
		writeErrReason(w, http.StatusServiceUnavailable, reasonPersist, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

// decode parses a JSON request body strictly (unknown fields are
// rejected, catching typo'd options early) under the service's size cap
// (Options.MaxBodyBytes, default 8 MiB): http.MaxBytesReader stops
// reading at the cap, so an oversized body is rejected with 413 instead
// of being buffered into memory. The body must be exactly one JSON
// value: trailing data after it — which json.Decoder would otherwise
// silently ignore, accepting e.g. two concatenated objects and applying
// only the first — is a 400.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeDecodeErr(w, err, "decoding request: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeDecodeErr(w, err, "decoding request: trailing data after JSON body")
		return false
	}
	return true
}

// writeDecodeErr classifies a body-decoding failure: hitting the
// MaxBytesReader cap is 413, anything else is a 400 with the given
// message.
func writeDecodeErr(w http.ResponseWriter, err error, format string, args ...any) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", tooBig.Limit)
		return
	}
	writeErr(w, http.StatusBadRequest, format, args...)
}

// parseSide maps the wire name to a Side.
func parseSide(s string) (datalink.Side, error) {
	switch s {
	case "external":
		return datalink.ExternalSide, nil
	case "local":
		return datalink.LocalSide, nil
	default:
		return 0, fmt.Errorf("side must be %q or %q, got %q", "external", "local", s)
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// statusResponse reports corpus, model and durability state.
type statusResponse struct {
	ExternalTriples int             `json:"external_triples"`
	LocalTriples    int             `json:"local_triples"`
	ExternalVersion uint64          `json:"external_version"`
	LocalVersion    uint64          `json:"local_version"`
	TrainingLinks   int             `json:"training_links"`
	Learned         bool            `json:"learned"`
	Rules           int             `json:"rules"`
	Measures        []string        `json:"measures"`
	Durability      *durabilityJSON `json:"durability,omitempty"`
	// Degraded reports that the store fail-stopped: reads keep serving
	// from the published bundle, mutations are rejected with 503 until
	// the process is restarted and recovers.
	Degraded       bool            `json:"degraded,omitempty"`
	DegradedReason string          `json:"degraded_reason,omitempty"`
	Resilience     *resilienceJSON `json:"resilience,omitempty"`
}

// durabilityJSON is the status view of the store: WAL and snapshot
// counters plus the last checkpoint failure, if any.
type durabilityJSON struct {
	store.Stats
	Dir                 string `json:"dir"`
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
}

func (s *Service) handleStatus(w http.ResponseWriter, _ *http.Request) {
	qs := s.state.Load()
	resp := statusResponse{
		ExternalTriples: qs.se.Len(),
		LocalTriples:    qs.sl.Len(),
		ExternalVersion: qs.se.Version(),
		LocalVersion:    qs.sl.Version(),
		TrainingLinks:   qs.links,
		Learned:         qs.pipe != nil,
		Measures:        MeasureNames(),
	}
	if qs.pipe != nil {
		resp.Rules = qs.pipe.Model.Rules.Len()
	}
	if s.st != nil {
		resp.Durability = &durabilityJSON{
			Stats:               s.st.Stats(),
			Dir:                 s.st.Dir(),
			LastCheckpointError: s.lastCheckpointError(),
		}
		resp.Degraded, resp.DegradedReason = s.degradedState()
	}
	resp.Resilience = s.res.statusJSON()
	writeJSON(w, http.StatusOK, resp)
}

// itemSpec is the wire form of one item description: its IRI, literal
// property values, and (local side only) its ontology classes.
type itemSpec struct {
	ID         string              `json:"id"`
	Properties map[string][]string `json:"properties"`
	Classes    []string            `json:"classes,omitempty"`
}

type upsertRequest struct {
	Side  string     `json:"side"`
	Items []itemSpec `json:"items"`
}

type upsertResponse struct {
	Upserted int    `json:"upserted"`
	Version  uint64 `json:"version"`
}

func (s *Service) handleUpsert(w http.ResponseWriter, r *http.Request) {
	var req upsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, http.StatusBadRequest, "no items given")
		return
	}
	// Validate the whole batch before building the mutation record, so a
	// 400 response means nothing was logged or changed.
	items := make([]store.Item, 0, len(req.Items))
	for i, it := range req.Items {
		if it.ID == "" {
			writeErr(w, http.StatusBadRequest, "item %d: id is required", i)
			return
		}
		if err := validateItem(side, datalink.NewIRI(it.ID), it.Properties, it.Classes); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		items = append(items, store.Item{ID: it.ID, Props: it.Properties, Classes: it.Classes})
	}
	res, err := s.commit(r.Context(), &store.Record{
		Op:     store.OpUpsert,
		Upsert: &store.UpsertOp{Side: sideToStore(side), Items: items},
	})
	if err != nil {
		writeCommitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, upsertResponse{Upserted: res.upserted, Version: res.version})
}

type removeRequest struct {
	Side string   `json:"side"`
	IDs  []string `json:"ids"`
}

type removeResponse struct {
	Removed int    `json:"removed"`
	Version uint64 `json:"version"`
	// PurgedLinks counts training links dropped because their endpoint
	// on this side was removed — otherwise the next learn would
	// resurrect ghost items into the model.
	PurgedLinks int `json:"purged_links"`
}

func (s *Service) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !s.decode(w, r, &req) {
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, "no ids given")
		return
	}
	res, err := s.commit(r.Context(), &store.Record{
		Op:     store.OpRemove,
		Remove: &store.RemoveOp{Side: sideToStore(side), IDs: req.IDs},
	})
	if err != nil {
		writeCommitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, removeResponse{Removed: res.removed, Version: res.version, PurgedLinks: res.purged})
}

// purgeLinksLocked drops accumulated training links whose endpoint on
// the given side is in gone, returning how many were dropped. Without
// this, removed items linger in the training set and the next learn
// resurrects them into the model. Callers must hold the write lock.
func (s *Service) purgeLinksLocked(side datalink.Side, gone map[datalink.Term]struct{}) int {
	kept := make([]datalink.Link, 0, len(s.links))
	for _, l := range s.links {
		end := l.External
		if side == datalink.LocalSide {
			end = l.Local
		}
		if _, dead := gone[end]; dead {
			continue
		}
		kept = append(kept, l)
	}
	purged := len(s.links) - len(kept)
	s.links = kept
	return purged
}

// linkSpec is the wire form of one labeled same-as link.
type linkSpec struct {
	External string `json:"external"`
	Local    string `json:"local"`
}

type learnRequest struct {
	Links []linkSpec `json:"links"`
	// Replace discards previously accumulated links instead of extending
	// them.
	Replace bool `json:"replace,omitempty"`
}

type learnResponse struct {
	TrainingLinks int `json:"training_links"`
	Rules         int `json:"rules"`
	Segments      int `json:"segments"`
	// Timings is the per-stage breakdown of this learn (learn, publish),
	// present only when the client asked for ?debug=timings — parity
	// with /v1/link.
	Timings []stageJSON `json:"timings,omitempty"`
}

func (s *Service) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req learnRequest
	if !s.decode(w, r, &req) {
		return
	}
	refs := make([]store.LinkRef, 0, len(req.Links))
	for i, l := range req.Links {
		if l.External == "" || l.Local == "" {
			writeErr(w, http.StatusBadRequest, "link %d: external and local are required", i)
			return
		}
		refs = append(refs, refFromLink(datalink.Link{
			External: datalink.NewIRI(l.External),
			Local:    datalink.NewIRI(l.Local),
		}))
	}
	// The middleware attached a trace to the request context, so the
	// learn and publish stages inside commit land in it (and in the
	// flight recorder); reuse it for the opt-in client breakdown.
	ctx := r.Context()
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		tr = obs.NewTrace(s.met.stageSink())
		ctx = obs.WithTrace(ctx, tr)
	}
	res, err := s.commit(ctx, &store.Record{
		Op:    store.OpLearn,
		Learn: &store.LearnOp{Replace: req.Replace, Links: refs},
	})
	if err != nil {
		writeCommitErr(w, err)
		return
	}
	resp := learnResponse{
		TrainingLinks: res.links,
		Rules:         res.rules,
		Segments:      res.segments,
	}
	if r.URL.Query().Get("debug") == "timings" {
		for _, st := range tr.Stages() {
			resp.Timings = append(resp.Timings, stageJSON{Stage: st.Name, Seconds: st.Duration.Seconds()})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ruleJSON is the wire form of one learned rule.
type ruleJSON struct {
	Property   string  `json:"property"`
	Segment    string  `json:"segment"`
	Class      string  `json:"class"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
	Text       string  `json:"text"`
}

func (s *Service) handleRules(w http.ResponseWriter, _ *http.Request) {
	qs := s.state.Load()
	if qs.pipe == nil {
		writeErr(w, http.StatusConflict, "no model learned yet; POST /v1/learn first")
		return
	}
	rules := qs.pipe.Model.Rules.Rules
	out := make([]ruleJSON, 0, len(rules))
	for _, rl := range rules {
		out = append(out, ruleJSON{
			Property:   rl.Property.Value,
			Segment:    rl.Segment,
			Class:      rl.Class.Value,
			Support:    rl.Support(),
			Confidence: rl.Confidence(),
			Lift:       rl.Lift(),
			Text:       rl.String(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"rules": out})
}

type linkRequest struct {
	// Items restricts the query; empty means every external item.
	Items []string `json:"items"`
	// Threshold overrides the default linker threshold when set.
	Threshold *float64 `json:"threshold,omitempty"`
	// Workers overrides the scoring fan-out when set; 0 means all cores.
	Workers *int `json:"workers,omitempty"`
	// TopK caps the matches returned per item; 0 means all above the
	// threshold.
	TopK int `json:"top_k,omitempty"`
	// Comparators override Options.DefaultLinker's comparators.
	Comparators []comparatorSpec `json:"comparators,omitempty"`
}

type matchJSON struct {
	Local string  `json:"local"`
	Score float64 `json:"score"`
}

type linkResult struct {
	Item    string      `json:"item"`
	Matches []matchJSON `json:"matches"`
}

// stageJSON is one entry of the ?debug=timings breakdown.
type stageJSON struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

type linkResponse struct {
	Results []linkResult `json:"results"`
	// Timings is the per-stage breakdown of this query, present only
	// when the client asked for ?debug=timings.
	Timings []stageJSON `json:"timings,omitempty"`
}

func (s *Service) handleLink(w http.ResponseWriter, r *http.Request) {
	var req linkRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Load the published snapshot bundle and run the whole query against
	// it — no service lock is taken, so concurrent mutations proceed
	// undelayed and this query observes one consistent corpus.
	qs := s.state.Load()
	if qs.view == nil {
		writeErr(w, http.StatusConflict, "no model learned yet; POST /v1/learn first")
		return
	}
	cfg := s.opts.DefaultLinker
	if len(req.Comparators) > 0 {
		comps, err := compileComparators(req.Comparators)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		cfg.Comparators = comps
	}
	if len(cfg.Comparators) == 0 {
		writeErr(w, http.StatusBadRequest, "no comparators: set them in the request or configure a default linker")
		return
	}
	if req.Threshold != nil {
		cfg.Threshold = *req.Threshold
	}
	if req.Workers != nil {
		cfg.Workers = *req.Workers
	}
	var items []datalink.Term
	if len(req.Items) > 0 {
		items = make([]datalink.Term, 0, len(req.Items))
		for _, id := range req.Items {
			items = append(items, datalink.NewIRI(id))
		}
	} else {
		items = qs.se.AllSubjects()
	}
	// Every link query carries a stage trace: its spans always feed the
	// stage histograms, and with ?debug=timings the breakdown is also
	// returned to the client. The middleware attaches the trace; the
	// fallback covers handlers driven without the resilience wrap.
	ctx := r.Context()
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		tr = obs.NewTrace(s.met.stageSink())
		ctx = obs.WithTrace(ctx, tr)
	}
	// The request context threads through the engine's worker pool: a
	// dropped connection cancels in-flight scoring.
	topk, err := qs.view.LinkTopK(ctx, items, cfg, req.TopK)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The server-imposed request deadline expired mid-scoring:
			// overload shedding, not a client problem, so tell the client
			// when to come back.
			s.res.timeouts.Inc()
			retryAfterHeader(w, s.res.opts.RetryAfter)
			writeErrReason(w, http.StatusServiceUnavailable, reasonTimeout,
				"scoring exceeded the request deadline: %v", err)
		case errors.Is(err, context.Canceled):
			writeErr(w, 499, "request cancelled: %v", err) // 499: client closed request
		case errors.Is(err, datalink.ErrLinkerConfig):
			writeErr(w, http.StatusBadRequest, "%v", err)
		default:
			// Anything else is an internal failure, not a bad request.
			writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	results := make([]linkResult, 0, len(topk))
	for item, ms := range topk {
		lr := linkResult{Item: item.Value, Matches: make([]matchJSON, 0, len(ms))}
		for _, m := range ms {
			lr.Matches = append(lr.Matches, matchJSON{Local: m.Local.Value, Score: m.Score})
		}
		results = append(results, lr)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Item < results[j].Item })
	resp := linkResponse{Results: results}
	if r.URL.Query().Get("debug") == "timings" {
		for _, st := range tr.Stages() {
			resp.Timings = append(resp.Timings, stageJSON{Stage: st.Name, Seconds: st.Duration.Seconds()})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// snapshotResponse reports a forced checkpoint.
type snapshotResponse struct {
	SnapshotSeq uint64      `json:"snapshot_seq"`
	Stats       store.Stats `json:"stats"`
}

// handleAdminSnapshot forces a durability checkpoint: rotate the WAL,
// snapshot the published state, prune superseded files. 409 when the
// service is ephemeral or a checkpoint is already running (the latter
// with a Retry-After hint — the in-flight one will finish), 503 when
// the store has fail-stopped.
func (s *Service) handleAdminSnapshot(w http.ResponseWriter, _ *http.Request) {
	stats, err := s.Checkpoint()
	switch {
	case errors.Is(err, ErrCheckpointBusy):
		retryAfterHeader(w, s.res.opts.RetryAfter)
		writeErrReason(w, http.StatusConflict, reasonBusy, "%v", err)
		return
	case errors.Is(err, ErrNotDurable):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		if s.st != nil && s.st.Failed() != nil {
			writeErrReason(w, http.StatusServiceUnavailable, reasonDegraded,
				"checkpoint: %v (service is degraded read-only)", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{SnapshotSeq: stats.LastSnapshotSeq, Stats: stats})
}
