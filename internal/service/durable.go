package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"

	datalink "repro"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Durable mode: a Service bound to a store.Store logs every mutation to
// a write-ahead log before applying it and periodically checkpoints the
// published state into a binary snapshot. All mutations flow through one
// choke point — commit — whether they arrive over HTTP, programmatically
// (LearnLinks) or from recovery replay, so the state a restarted process
// rebuilds is the state the dead one acknowledged.

// ErrNotDurable reports a durability operation on a service without a
// store.
var ErrNotDurable = errors.New("service: not running in durable mode")

// ErrCheckpointBusy reports a forced checkpoint while one is already in
// flight.
var ErrCheckpointBusy = errors.New("service: checkpoint already in progress")

// errPersist wraps WAL append failures so handlers can classify them as
// server-side (503) rather than client errors.
var errPersist = errors.New("service: persisting mutation")

// errDegraded marks mutations rejected because the store fail-stopped
// earlier: the service is in degraded read-only mode, still answering
// queries from the published bundle, and only a restart (which recovers
// from snapshot + WAL) leaves it. Distinct from errPersist — a degraded
// rejection is guaranteed to have left no trace in the WAL, while the
// append failure that *caused* degradation is ambiguous (the record may
// or may not have reached disk).
var errDegraded = errors.New("service: store is fail-stopped")

// Seed is the initial corpus for a durable service whose store holds no
// prior state. Nil graphs start empty; Training is learned at boot and
// captured by the baseline snapshot.
type Seed struct {
	External *datalink.Graph
	Local    *datalink.Graph
	Ontology *datalink.Ontology
	Training []datalink.Link
}

// Restore builds a durable service from a store's recovered state: load
// the newest snapshot, relearn its model (learning is deterministic, so
// the recovered rules match the persisted ones), replay the WAL tail
// through the same mutation path live requests use, and checkpoint. A
// store with no state boots from seed instead and writes the baseline
// snapshot that recovery of the *next* process starts from — WAL records
// only make sense relative to a base image, so the baseline must be
// durable before the first mutation is acknowledged.
func Restore(st *store.Store, rec *store.Recovery, seed *Seed, opts Options) (*Service, error) {
	if rec.Empty() {
		if seed == nil {
			seed = &Seed{}
		}
		s := New(seed.External, seed.Local, seed.Ontology, opts)
		s.st = st
		s.registerStoreMetrics(rec)
		if len(seed.Training) > 0 {
			s.mu.Lock()
			s.links = append([]datalink.Link(nil), seed.Training...)
			err := s.learnLocked(context.Background())
			if err == nil {
				s.publishLocked(context.Background())
			}
			s.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("service: learning seed model: %w", err)
			}
		}
		if _, err := s.Checkpoint(); err != nil {
			return nil, fmt.Errorf("service: writing baseline snapshot: %w", err)
		}
		return s, nil
	}

	snap := rec.Snapshot
	if snap == nil {
		return nil, errors.New("service: store has WAL records but no base snapshot")
	}
	ol, err := datalink.OntologyFromGraph(snap.Ontology)
	if err != nil {
		return nil, fmt.Errorf("service: recovering ontology: %w", err)
	}
	if zeroLearner(opts.Learner) && snap.Meta.Learner != nil {
		// No learner configured by the caller: adopt the persisted one,
		// so the boot relearn (and every tail-replayed learn record)
		// reproduces the dead process's model instead of silently
		// relearning with this process's defaults. Workers is a pure
		// wall-time knob — excluded from the persisted identity and from
		// zeroLearner — so the caller's setting survives adoption.
		workers := opts.Learner.Workers
		opts.Learner = learnerFromMeta(snap.Meta.Learner)
		opts.Learner.Workers = workers
	}
	if len(opts.DefaultLinker.Comparators) == 0 && snap.Meta.Linker != nil {
		// No linker configured by the caller: adopt the one persisted with
		// the snapshot, so recovered deployments keep answering default
		// link queries identically. A config that no longer resolves (a
		// measure renamed or removed) would silently change query behavior,
		// so it fails recovery instead.
		cfg, err := linkerFromMeta(snap.Meta.Linker)
		if err != nil {
			return nil, fmt.Errorf("service: recovering persisted linker config: %w", err)
		}
		opts.DefaultLinker = cfg
	}
	s := New(snap.External, snap.Local, ol, opts)
	s.st = st
	s.registerStoreMetrics(rec)
	s.mu.Lock()
	s.links = linksFromRefs(snap.Links)
	if snap.Meta.Learned {
		// Relearn over the snapshot's learn-time basis, not its current
		// state: mutations after the last learn changed the graphs (and
		// may have purged links) without touching the model, and the
		// recovered model must match the one the dead process served.
		// Everything in the basis is frozen — the decoded learn graphs
		// via their own snapshot (mutating one would corrupt every later
		// checkpoint), the current graphs via the usual COW views.
		b := &learnBasis{se: s.se.Snapshot(), sl: s.sl.Snapshot(), links: s.links}
		if snap.LearnExternal != nil {
			b.se = snap.LearnExternal.Snapshot()
		}
		if snap.LearnLocal != nil {
			b.sl = snap.LearnLocal.Snapshot()
		}
		if snap.LearnLinks != nil {
			b.links = linksFromRefs(snap.LearnLinks)
		}
		if err := s.learnBasisLocked(context.Background(), b); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("service: relearning recovered model: %w", err)
		}
	}
	for _, r := range rec.Tail {
		// Replay through the live apply path. A failing learn record
		// failed identically before the crash (learning is deterministic
		// in the corpus and links), so the error is part of the history,
		// not a recovery problem.
		if _, err := s.applyLocked(context.Background(), r); err != nil && r.Op != store.OpLearn {
			s.mu.Unlock()
			return nil, fmt.Errorf("service: replaying WAL record %d: %w", r.Seq, err)
		}
	}
	s.publishLocked(context.Background())
	s.mu.Unlock()
	if len(rec.Tail) > 0 || rec.TornTail {
		// Fold the replayed tail into a fresh snapshot so the next boot
		// starts clean (and the rotated segments get pruned).
		if _, err := s.Checkpoint(); err != nil {
			return nil, fmt.Errorf("service: post-recovery checkpoint: %w", err)
		}
	}
	return s, nil
}

// Store returns the service's durability store, or nil in ephemeral
// mode.
func (s *Service) Store() *store.Store { return s.st }

// Close waits for any in-flight background checkpoint, then flushes and
// syncs the WAL and releases the store. Safe on an ephemeral service and
// idempotent. Mutations racing Close may still commit (they fail once
// the store is closed), but no new background checkpoint can start
// after Close begins waiting — the closing flag and the WaitGroup Add
// are both guarded by the writer mutex.
func (s *Service) Close() error {
	if s.st == nil {
		return nil
	}
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.ckptWG.Wait()
	return s.st.Close()
}

// applyResult carries the side effects handlers report back to clients.
type applyResult struct {
	version  uint64 // mutated graph's version afterwards
	upserted int
	removed  int
	purged   int
	links    int
	rules    int
	segments int
}

// commit is the single logged-mutation choke point: append the record
// to the WAL (durable mode), apply it to the live state, publish a new
// immutable query view, and trigger an automatic checkpoint when one is
// due. A WAL append failure aborts the mutation before any state
// changes; an apply failure (only learning can fail) leaves the previous
// state published, which replay reproduces exactly.
func (s *Service) commit(ctx context.Context, rec *store.Record) (applyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkDegradedLocked(); err != nil {
		// The store fail-stopped earlier: reject before touching the WAL
		// or building any state, so degraded-mode mutations are cheap,
		// guaranteed-absent failures while reads keep serving.
		return applyResult{}, err
	}
	if s.st != nil {
		if _, err := s.st.Append(rec); err != nil {
			return applyResult{}, fmt.Errorf("%w: %v", errPersist, err)
		}
	}
	res, err := s.applyLocked(ctx, rec)
	if err != nil {
		return res, err
	}
	s.publishLocked(ctx)
	s.maybeCheckpointLocked()
	return res, nil
}

// applyLocked dispatches one mutation record to its applier. It is the
// shared path of live commits and recovery replay; callers hold the
// write lock. Item mutations — plain upserts, plain removes, and
// batches of many — all flow through the same op-slice applier, so a
// replayed batch takes exactly the code path of a live one.
func (s *Service) applyLocked(ctx context.Context, rec *store.Record) (applyResult, error) {
	switch rec.Op {
	case store.OpUpsert, store.OpRemove, store.OpBatch:
		return s.applyEntriesLocked(rec.Entries()), nil
	case store.OpLearn:
		return s.applyLearnLocked(ctx, rec.Learn)
	default:
		return applyResult{}, fmt.Errorf("service: unknown mutation op %d", rec.Op)
	}
}

// applyEntriesLocked applies an ordered slice of upsert/remove sub-ops:
// graph mutations and training-link purges happen per entry in order,
// then the value index and instance index are patched for ALL entries
// under one pipeline lock acquisition, the instance snapshot is frozen
// once, and the caller publishes the COW bundle once. That collapsing
// is what makes a 10k-item batch cost one index lock round trip and one
// publish instead of 10k — and it is order-safe because index upserts
// re-read the (final) graph state and the last patch for an item always
// agrees with the graphs.
func (s *Service) applyEntriesLocked(entries []store.BatchEntry) applyResult {
	var res applyResult
	patches := make([]datalink.Patch, 0, len(entries))
	localTouched := false
	for _, e := range entries {
		switch {
		case e.Upsert != nil:
			op := e.Upsert
			side := sideFromStore(op.Side)
			terms := make([]datalink.Term, len(op.Items))
			for i, it := range op.Items {
				terms[i] = datalink.NewIRI(it.ID)
				s.replaceItemLocked(side, terms[i], it.Props, it.Classes)
			}
			patches = append(patches, datalink.Patch{Side: side, Items: terms})
			localTouched = localTouched || side == datalink.LocalSide
			res.upserted += len(op.Items)
			res.version = s.graphLocked(side).Version()
		case e.Remove != nil:
			op := e.Remove
			side := sideFromStore(op.Side)
			g := s.graphLocked(side)
			terms := make([]datalink.Term, 0, len(op.IDs))
			gone := make(map[datalink.Term]struct{}, len(op.IDs))
			for _, id := range op.IDs {
				item := datalink.NewIRI(id)
				terms = append(terms, item)
				gone[item] = struct{}{}
				trs := g.Find(item, datalink.Term{}, datalink.Term{})
				for _, tr := range trs {
					g.Remove(tr)
				}
				if len(trs) > 0 {
					res.removed++
				}
			}
			res.purged += s.purgeLinksLocked(side, gone)
			patches = append(patches, datalink.Patch{Side: side, Remove: true, Items: terms})
			localTouched = localTouched || side == datalink.LocalSide
			res.version = g.Version()
		}
	}
	if s.pipe != nil && len(patches) > 0 {
		s.pipe.ApplyPatches(patches)
		if localTouched {
			s.freezeInstancesLocked()
		}
	}
	return res
}

// applyLearnLocked extends (or replaces) the training links and
// relearns. On failure the previous links and model stay in place — the
// same record replayed after a crash fails the same way, so live and
// recovered state agree either way.
func (s *Service) applyLearnLocked(ctx context.Context, op *store.LearnOp) (applyResult, error) {
	links := linksFromRefs(op.Links)
	prev := s.links
	if op.Replace {
		s.links = links
	} else {
		s.links = append(append([]datalink.Link(nil), s.links...), links...)
	}
	if err := s.learnLocked(ctx); err != nil {
		s.links = prev
		return applyResult{}, err
	}
	return applyResult{
		links:    len(s.links),
		rules:    s.pipe.Model.Rules.Len(),
		segments: s.pipe.Model.Stats.DistinctSegments,
	}, nil
}

// graphLocked returns the live graph of one side; callers hold the
// write lock.
func (s *Service) graphLocked(side datalink.Side) *datalink.Graph {
	if side == datalink.LocalSide {
		return s.sl
	}
	return s.se
}

// Checkpoint forces a snapshot of the current state: rotate the WAL at
// the current sequence, capture the published bundle (O(1) frozen graph
// views), and write the snapshot file without holding the writer lock.
// Returns the durability stats after the checkpoint completes.
func (s *Service) Checkpoint() (store.Stats, error) {
	if s.st == nil {
		return store.Stats{}, ErrNotDurable
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return store.Stats{}, ErrCheckpointBusy
	}
	defer s.ckptBusy.Store(false)
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return store.Stats{}, fmt.Errorf("service: closing")
	}
	// Track the synchronous write like a background one, so Close cannot
	// release the store while this checkpoint is mid-write.
	s.ckptWG.Add(1)
	defer s.ckptWG.Done()
	snap, err := s.checkpointDataLocked()
	s.mu.Unlock()
	if err != nil {
		// Arm the store's failed-checkpoint holdoff on the capture path
		// too (WriteCheckpoint failures arm it internally), so a forced
		// checkpoint that dies early backs off exactly like an automatic
		// one instead of making SnapshotDue retry every record.
		s.st.Holdoff()
		s.ckptErr.Store(err.Error())
		return store.Stats{}, err
	}
	if err := s.st.WriteCheckpoint(snap); err != nil {
		s.ckptErr.Store(err.Error())
		return store.Stats{}, err
	}
	s.ckptErr.Store("")
	return s.st.Stats(), nil
}

// maybeCheckpointLocked starts a background checkpoint when enough WAL
// records accumulated. The boundary rotation and state capture happen
// here, under the writer lock the caller already holds (both are cheap);
// the expensive encode+write runs in a goroutine so writers are never
// blocked on disk. At most one checkpoint runs at a time.
func (s *Service) maybeCheckpointLocked() {
	if s.st == nil || s.closing || !s.st.SnapshotDue() || !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	snap, err := s.checkpointDataLocked()
	if err != nil {
		// Same holdoff as the forced path: without it a failing rotation
		// would be retried on the very next record, over and over.
		s.st.Holdoff()
		s.ckptErr.Store(err.Error())
		s.ckptBusy.Store(false)
		return
	}
	s.ckptWG.Add(1)
	go func() {
		defer s.ckptWG.Done()
		defer s.ckptBusy.Store(false)
		if err := s.st.WriteCheckpoint(snap); err != nil {
			s.ckptErr.Store(err.Error())
			return
		}
		s.ckptErr.Store("")
	}()
}

// checkpointDataLocked rotates the WAL and captures everything the
// snapshot needs from the live state: copy-on-write graph views (O(1)),
// the ontology re-serialized to triples, the ordered training links and
// the model metadata. Callers hold the write lock, so the rotation
// boundary and the captured state agree exactly.
func (s *Service) checkpointDataLocked() (*store.Snapshot, error) {
	boundary, err := s.st.Rotate()
	if err != nil {
		return nil, err
	}
	snap := &store.Snapshot{
		Seq:      boundary,
		External: s.se.Snapshot(),
		Local:    s.sl.Snapshot(),
		Ontology: s.ol.ToGraph(),
		Links:    refsFromLinks(s.links),
		Meta: store.Meta{
			Learned: s.pipe != nil,
			Linker:  linkerToMeta(s.opts.DefaultLinker),
			Learner: learnerToMeta(s.opts.Learner),
		},
	}
	if s.basis != nil {
		// Preserve the learn-time basis so recovery relearns the exact
		// live model. Snapshots of an unchanged graph are cached, so
		// pointer equality means the basis view IS the checkpoint view
		// and the section is elided.
		if s.basis.se != snap.External {
			snap.LearnExternal = s.basis.se
		}
		if s.basis.sl != snap.Local {
			snap.LearnLocal = s.basis.sl
		}
		if !sameLinks(s.basis.links, s.links) {
			snap.LearnLinks = refsFromLinks(s.basis.links)
		}
	}
	if s.pipe != nil {
		var b bytes.Buffer
		if err := s.pipe.Model.Rules.Write(&b); err != nil {
			return nil, fmt.Errorf("serializing rules: %w", err)
		}
		snap.Meta.RulesText = b.String()
	}
	return snap, nil
}

// lastCheckpointError returns the most recent checkpoint failure, or ""
// when the last one succeeded (or none ran).
func (s *Service) lastCheckpointError() string {
	if v, ok := s.ckptErr.Load().(string); ok {
		return v
	}
	return ""
}

// sideFromStore maps the on-disk side byte to the linkage side.
func sideFromStore(side store.Side) datalink.Side {
	if side == store.Local {
		return datalink.LocalSide
	}
	return datalink.ExternalSide
}

// sideToStore maps a linkage side to its on-disk byte.
func sideToStore(side datalink.Side) store.Side {
	if side == datalink.LocalSide {
		return store.Local
	}
	return store.External
}

// linksFromRefs decodes persisted link endpoints (IRI or blank node).
func linksFromRefs(refs []store.LinkRef) []datalink.Link {
	out := make([]datalink.Link, 0, len(refs))
	for _, r := range refs {
		out = append(out, datalink.Link{
			External: termFromRef(r.ExternalKind, r.External),
			Local:    termFromRef(r.LocalKind, r.Local),
		})
	}
	return out
}

// refsFromLinks encodes training links for the snapshot, preserving
// order and duplicates so relearning reproduces the model exactly.
func refsFromLinks(links []datalink.Link) []store.LinkRef {
	out := make([]store.LinkRef, 0, len(links))
	for _, l := range links {
		out = append(out, refFromLink(l))
	}
	return out
}

func termFromRef(kind uint8, value string) datalink.Term {
	if rdf.TermKind(kind) == rdf.BlankKind {
		return datalink.NewBlank(value)
	}
	return datalink.NewIRI(value)
}

// refFromLink encodes one labeled link for a learn record.
func refFromLink(l datalink.Link) store.LinkRef {
	return store.LinkRef{
		ExternalKind: uint8(l.External.Kind),
		External:     l.External.Value,
		LocalKind:    uint8(l.Local.Kind),
		Local:        l.Local.Value,
	}
}

// linkerToMeta captures the default linker config by measure name, or
// nil when a comparator uses a measure outside the named registry (a
// custom Func measure cannot be persisted).
func linkerToMeta(cfg datalink.LinkerConfig) *store.LinkerMeta {
	if len(cfg.Comparators) == 0 {
		return nil
	}
	m := &store.LinkerMeta{Threshold: cfg.Threshold, Workers: cfg.Workers}
	for _, c := range cfg.Comparators {
		name, ok := measureName(c.Measure)
		if !ok {
			return nil
		}
		m.Comparators = append(m.Comparators, store.ComparatorMeta{
			ExternalProperty: c.ExternalProperty.Value,
			LocalProperty:    c.LocalProperty.Value,
			Measure:          name,
			Weight:           c.Weight,
		})
	}
	return m
}

// linkerFromMeta rebuilds a linker config from persisted metadata.
func linkerFromMeta(m *store.LinkerMeta) (datalink.LinkerConfig, error) {
	cfg := datalink.LinkerConfig{Threshold: m.Threshold, Workers: m.Workers}
	for i, c := range m.Comparators {
		ms, err := measureByName(c.Measure)
		if err != nil {
			return cfg, fmt.Errorf("comparator %d: %w", i, err)
		}
		cfg.Comparators = append(cfg.Comparators, datalink.Comparator{
			ExternalProperty: datalink.NewIRI(c.ExternalProperty),
			LocalProperty:    datalink.NewIRI(c.LocalProperty),
			Measure:          ms,
			Weight:           c.Weight,
		})
	}
	return cfg, nil
}

// sameLinks reports whether two link slices are the same slice. Every
// mutation path replaces s.links wholesale, so identity means no learn
// or purge happened since the basis was captured — and the basis links
// can be elided from a checkpoint in favor of its Links section.
func sameLinks(a, b []datalink.Link) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// zeroLearner reports whether the caller left the learner config at its
// zero value (which means "adopt the persisted one" on recovery).
// Workers is deliberately ignored: it only changes wall time, never the
// learned model, so setting it alone must not block adoption.
func zeroLearner(cfg datalink.LearnerConfig) bool {
	return len(cfg.Properties) == 0 && cfg.Splitter == nil && cfg.SupportThreshold == 0
}

// learnerToMeta captures the learner config in wire form, or nil when a
// custom splitter function makes it inexpressible (like a custom Func
// measure does for the linker).
func learnerToMeta(cfg datalink.LearnerConfig) *store.LearnerMeta {
	if cfg.Splitter != nil {
		return nil
	}
	m := &store.LearnerMeta{SupportThreshold: cfg.SupportThreshold}
	for _, p := range cfg.Properties {
		m.Properties = append(m.Properties, p.Value)
	}
	return m
}

// learnerFromMeta rebuilds a learner config from persisted metadata.
func learnerFromMeta(m *store.LearnerMeta) datalink.LearnerConfig {
	cfg := datalink.LearnerConfig{SupportThreshold: m.SupportThreshold}
	for _, p := range m.Properties {
		cfg.Properties = append(cfg.Properties, datalink.NewIRI(p))
	}
	return cfg
}

// measureName reverse-resolves a measure value to its wire name.
func measureName(m datalink.Measure) (string, bool) {
	for name, v := range measures {
		if reflect.DeepEqual(m, v) {
			return name, true
		}
	}
	return "", false
}
