package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	datalink "repro"
	"repro/internal/store"
)

// rawCall sends a request with a verbatim body and Content-Type —
// unlike call, which JSON-marshals — for the streaming bulk endpoint.
func rawCall(t *testing.T, h http.Handler, path, contentType, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec
}

func triplesOf(s *Service, side datalink.Side, id string) int {
	qs := s.state.Load()
	g := qs.se
	if side == datalink.LocalSide {
		g = qs.sl
	}
	return len(g.Find(datalink.NewIRI(id), datalink.Term{}, datalink.Term{}))
}

func TestBulkNDJSONIngest(t *testing.T) {
	s := corpusService(t)
	h := s.Handler()
	body := strings.Join([]string{
		`{"id":"http://ex.org/e/n1","properties":{"` + pnProp + `":["NEW-0001-A"]}}`,
		``, // blank lines are skipped silently
		`{"id":"http://ex.org/e/n2","properties":{"` + pnProp + `":["NEW-0002-A"]}}`,
		`{broken json`,
		`{"properties":{"` + pnProp + `":["NO-ID"]}}`,
		`{"id":"http://ex.org/e/n3","unknown_field":1}`,
		`{"id":"http://ex.org/e/n2","remove":true,"properties":{"` + pnProp + `":["X"]}}`,
		`{"id":"http://ex.org/e/r0","remove":true}`,
		`{"id":"http://ex.org/e/never-existed","remove":true}`,
	}, "\n")
	var rep BulkReport
	if rec := rawCall(t, h, "/v1/items/bulk?side=external", "application/x-ndjson", body, &rep); rec.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
	}
	// n1, n2 upserted; r0 removed (never-existed counts as a no-op remove).
	if rep.Upserted != 2 || rep.Removed != 1 || rep.Batches != 1 {
		t.Errorf("report counts: %+v", rep)
	}
	if rep.Errors != 4 || len(rep.ErrorReport) != 4 {
		t.Fatalf("errors: %+v", rep)
	}
	wantLines := []int{4, 5, 6, 7}
	for i, e := range rep.ErrorReport {
		if e.Line != wantLines[i] {
			t.Errorf("error %d on line %d, want %d (%s)", i, e.Line, wantLines[i], e.Error)
		}
	}
	if rep.Version == 0 {
		t.Error("report missing graph version")
	}
	if n := triplesOf(s, datalink.ExternalSide, "http://ex.org/e/n1"); n != 1 {
		t.Errorf("n1 has %d triples, want 1", n)
	}
	if n := triplesOf(s, datalink.ExternalSide, "http://ex.org/e/r0"); n != 0 {
		t.Errorf("removed r0 still has %d triples", n)
	}
}

func TestBulkChunking(t *testing.T) {
	lines := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, `{"id":"http://ex.org/e/chunk%d","properties":{"%s":["CHK-%04d-A"]}}`+"\n", i, pnProp, i)
		}
		return b.String()
	}
	// ?batch= overrides: 10 items in chunks of 3 -> 4 batch commits.
	s := corpusService(t)
	var rep BulkReport
	if rec := rawCall(t, s.Handler(), "/v1/items/bulk?side=external&batch=3", "", lines(10), &rep); rec.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
	}
	if rep.Upserted != 10 || rep.Batches != 4 {
		t.Errorf("batch=3: %+v", rep)
	}

	// Options.BulkBatch is the default chunk size when ?batch= is absent.
	s2 := corpusServiceOpts(t, func(o *Options) { o.BulkBatch = 5 })
	var rep2 BulkReport
	if rec := rawCall(t, s2.Handler(), "/v1/items/bulk?side=external", "", lines(10), &rep2); rec.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
	}
	if rep2.Upserted != 10 || rep2.Batches != 2 {
		t.Errorf("BulkBatch=5: %+v", rep2)
	}
}

func TestBulkNTriplesIngest(t *testing.T) {
	s := corpusService(t)
	h := s.Handler()
	body := strings.Join([]string{
		`<http://ex.org/l/nt1> <` + pnProp + `> "RES-9001-X" .`,
		`<http://ex.org/l/nt1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <` + clsRes + `> .`,
		`<http://ex.org/l/nt2> <` + pnProp + `> "CAP-9002-Y" .`,
		`this is not a triple`,
		`<http://ex.org/l/nt2> <http://ex.org/ref> <http://ex.org/other> .`, // IRI object, not rdf:type
		`<http://ex.org/l/nt3> <` + pnProp + `> "RES-9003-X" .`,
	}, "\n")
	var rep BulkReport
	if rec := rawCall(t, h, "/v1/items/bulk?side=local", "application/n-triples", body, &rep); rec.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
	}
	if rep.Upserted != 3 || rep.Errors != 2 {
		t.Fatalf("report: %+v", rep)
	}
	// nt1 keeps both its property and its class triple.
	if n := triplesOf(s, datalink.LocalSide, "http://ex.org/l/nt1"); n != 2 {
		t.Errorf("nt1 has %d triples, want 2", n)
	}
	if n := triplesOf(s, datalink.LocalSide, "http://ex.org/l/nt3"); n != 1 {
		t.Errorf("nt3 has %d triples, want 1", n)
	}

	// rdf:type statements make classes, and classes are local-only: the
	// whole item is rejected as a line error on the external side.
	extBody := `<http://ex.org/e/nt9> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <` + clsRes + `> .` + "\n"
	var rep2 BulkReport
	if rec := rawCall(t, h, "/v1/items/bulk?side=external", "application/n-triples", extBody, &rep2); rec.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
	}
	if rep2.Upserted != 0 || rep2.Errors != 1 {
		t.Errorf("external classes accepted: %+v", rep2)
	}
}

// TestBulkMixedOrderPreserved checks that upserts and removes of the
// same item inside one chunk apply in stream order: the last statement
// about an item wins, exactly as if each line were its own request.
func TestBulkMixedOrderPreserved(t *testing.T) {
	s := corpusService(t)
	h := s.Handler()
	body := strings.Join([]string{
		`{"id":"http://ex.org/e/flip","properties":{"` + pnProp + `":["OLD-0001-A"]}}`,
		`{"id":"http://ex.org/e/flip","remove":true}`,
		`{"id":"http://ex.org/e/flip","properties":{"` + pnProp + `":["NEW-0001-A"]}}`,
		`{"id":"http://ex.org/e/gone","properties":{"` + pnProp + `":["TMP-0001-A"]}}`,
		`{"id":"http://ex.org/e/gone","remove":true}`,
	}, "\n")
	var rep BulkReport
	if rec := rawCall(t, h, "/v1/items/bulk?side=external", "", body, &rep); rec.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
	}
	if rep.Batches != 1 {
		t.Fatalf("expected one batch, got %+v", rep)
	}
	qs := s.state.Load()
	got := qs.se.Find(datalink.NewIRI("http://ex.org/e/flip"), datalink.Term{}, datalink.Term{})
	if len(got) != 1 || got[0].O.Value != "NEW-0001-A" {
		t.Errorf("flip: %+v", got)
	}
	if n := triplesOf(s, datalink.ExternalSide, "http://ex.org/e/gone"); n != 0 {
		t.Errorf("gone still present with %d triples", n)
	}
}

// TestBulkEquivalentToPerItem is the semantic contract of the batched
// path: a bulk ingest must leave the service in exactly the state the
// per-item endpoints would, down to rules and link results.
func TestBulkEquivalentToPerItem(t *testing.T) {
	type item struct{ id, pn, class string }
	var ups []item
	for i := 0; i < 37; i++ {
		ups = append(ups, item{
			id:    fmt.Sprintf("http://ex.org/l/bulk%d", i),
			pn:    fmt.Sprintf("RES-%04d-X", 100+i),
			class: clsRes,
		})
	}
	removes := []string{"http://ex.org/l/r3", "http://ex.org/l/bulk5"}

	bulk := corpusService(t)
	var lines strings.Builder
	for _, it := range ups {
		fmt.Fprintf(&lines, `{"id":%q,"properties":{"%s":[%q]},"classes":[%q]}`+"\n", it.id, pnProp, it.pn, it.class)
	}
	for _, id := range removes {
		fmt.Fprintf(&lines, `{"id":%q,"remove":true}`+"\n", id)
	}
	var rep BulkReport
	if rec := rawCall(t, bulk.Handler(), "/v1/items/bulk?side=local&batch=10", "", lines.String(), &rep); rec.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
	}
	if rep.Upserted != len(ups) || rep.Removed != len(removes) || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}

	perItem := corpusService(t)
	ph := perItem.Handler()
	for _, it := range ups {
		rc := call(t, ph, http.MethodPost, "/v1/items/upsert", map[string]any{
			"side": "local",
			"items": []map[string]any{{
				"id":         it.id,
				"properties": map[string][]string{pnProp: {it.pn}},
				"classes":    []string{it.class},
			}},
		}, nil)
		if rc.Code != http.StatusOK {
			t.Fatalf("per-item upsert: %d %s", rc.Code, rc.Body)
		}
	}
	for _, id := range removes {
		rc := call(t, ph, http.MethodPost, "/v1/items/remove", map[string]any{
			"side": "local", "ids": []string{id},
		}, nil)
		if rc.Code != http.StatusOK {
			t.Fatalf("per-item remove: %d %s", rc.Code, rc.Body)
		}
	}

	// Learn on both so the fingerprint covers rules and link scoring over
	// the (identical) mutated corpora — this exercises the value index
	// patched by ApplyPatches, not just the graphs.
	for _, svc := range []*Service{bulk, perItem} {
		if rc := call(t, svc.Handler(), http.MethodPost, "/v1/learn", learnBody(10), nil); rc.Code != http.StatusOK {
			t.Fatalf("learn: %d %s", rc.Code, rc.Body)
		}
	}
	be, bl, br, bk := serviceFingerprint(t, bulk)
	pe, pl, pr, pk := serviceFingerprint(t, perItem)
	if be != pe || bl != pl {
		t.Error("graphs diverged between bulk and per-item ingest")
	}
	if br != pr {
		t.Errorf("rules diverged:\nbulk:     %s\nper-item: %s", br, pr)
	}
	if bk != pk {
		t.Errorf("link results diverged:\nbulk:     %s\nper-item: %s", bk, pk)
	}
}

// TestBulkDurableRecovery: batch records written by bulk ingest replay
// through crash recovery to the same state a live mirror reaches.
func TestBulkDurableRecovery(t *testing.T) {
	seed := corpusSeed(t)
	mirrorSeed := corpusSeed(t)
	mirror := New(mirrorSeed.External, mirrorSeed.Local, mirrorSeed.Ontology, durableOpts())

	dir := t.TempDir()
	sopts := store.Options{Fsync: store.FsyncAlways, SnapshotEvery: 1 << 30}
	durable := restoreService(t, dir, seed, sopts)

	var lines strings.Builder
	for i := 0; i < 25; i++ {
		fmt.Fprintf(&lines, `{"id":"http://ex.org/e/dur%d","properties":{"%s":["DUR-%04d-A"]}}`+"\n", i, pnProp, i)
	}
	fmt.Fprintf(&lines, `{"id":"http://ex.org/e/dur3","remove":true}`+"\n")
	fmt.Fprintf(&lines, `{"id":"http://ex.org/e/r1","remove":true}`+"\n")
	body := lines.String()
	for _, svc := range []*Service{mirror, durable} {
		var rep BulkReport
		if rec := rawCall(t, svc.Handler(), "/v1/items/bulk?side=external&batch=8", "", body, &rep); rec.Code != http.StatusOK {
			t.Fatalf("bulk: %d %s", rec.Code, rec.Body)
		}
		if rep.Upserted != 25 || rep.Removed != 2 || rep.Batches != 4 {
			t.Fatalf("report: %+v", rep)
		}
	}

	crash(durable)
	durable = restoreService(t, dir, nil, sopts)
	defer durable.Close()

	me, ml, _, _ := serviceFingerprint(t, mirror)
	de, dl, _, _ := serviceFingerprint(t, durable)
	if me != de {
		t.Error("external graphs diverged after batch-record replay")
	}
	if ml != dl {
		t.Error("local graphs diverged after batch-record replay")
	}
}

func TestBulkHandlerRejectsBadParams(t *testing.T) {
	h := corpusService(t).Handler()
	for _, path := range []string{
		"/v1/items/bulk",              // missing side
		"/v1/items/bulk?side=upwards", // unknown side
		"/v1/items/bulk?side=external&batch=0",
		"/v1/items/bulk?side=external&batch=-3",
		"/v1/items/bulk?side=external&batch=many",
	} {
		if rec := rawCall(t, h, path, "", `{"id":"http://ex.org/e/x"}`, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", path, rec.Code)
		}
	}
}
