package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	datalink "repro"
	"repro/internal/similarity"
)

// slowExact is an exact-match measure with a deliberate per-call delay,
// for building link queries that are slow enough to overlap mutations.
type slowExact struct{ delay time.Duration }

func (m slowExact) Similarity(a, b string) float64 {
	time.Sleep(m.delay)
	if a == b {
		return 1
	}
	return 0
}

func (slowExact) Name() string { return "slow-exact" }

// twoPropService builds a service whose items carry two properties (part
// number and label), so a torn engine update would be observable as a
// half-old half-new score.
func twoPropService(t *testing.T, measure datalink.Measure) *Service {
	t.Helper()
	og := datalink.NewGraph()
	for _, c := range []string{clsRes, clsCap} {
		og.Add(datalink.T(datalink.NewIRI(c), datalink.RDFType, datalink.NewIRI("http://www.w3.org/2002/07/owl#Class")))
	}
	ol, err := datalink.OntologyFromGraph(og)
	if err != nil {
		t.Fatal(err)
	}
	se, sl := datalink.NewGraph(), datalink.NewGraph()
	add := func(g *datalink.Graph, id, pn, label string) datalink.Term {
		item := datalink.NewIRI(id)
		g.Add(datalink.T(item, datalink.NewIRI(pnProp), datalink.NewLiteral(pn)))
		g.Add(datalink.T(item, datalink.NewIRI(labelProp), datalink.NewLiteral(label)))
		return item
	}
	for i := 0; i < 20; i++ {
		loc := add(sl, fmt.Sprintf("http://ex.org/l/r%d", i), fmt.Sprintf("RES-%04d-X", i), fmt.Sprintf("L-%04d", i))
		sl.Add(datalink.T(loc, datalink.RDFType, datalink.NewIRI(clsRes)))
		add(se, fmt.Sprintf("http://ex.org/e/r%d", i), fmt.Sprintf("RES-%04d-X", i), fmt.Sprintf("L-%04d", i))
	}
	comp := func(prop string) datalink.Comparator {
		return datalink.Comparator{
			ExternalProperty: datalink.NewIRI(prop),
			LocalProperty:    datalink.NewIRI(prop),
			Measure:          measure,
			Weight:           1,
		}
	}
	return New(se, sl, ol, Options{
		Learner: datalink.LearnerConfig{SupportThreshold: 0.01},
		DefaultLinker: datalink.LinkerConfig{
			Comparators: []datalink.Comparator{comp(pnProp), comp(labelProp)},
			Threshold:   0,
		},
	})
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	h := corpusService(t).Handler()
	cases := []string{
		`{"side":"external"}{"anything":1}`,
		`{"links":[]} [1,2]`,
		`{"links":[]} garbage`,
	}
	paths := []string{"/v1/items/remove", "/v1/learn", "/v1/learn"}
	for i, body := range cases {
		req := httptest.NewRequest("POST", paths[i], strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: %d, want 400", body, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "trailing") {
			t.Errorf("body %q: error %q does not mention trailing data", body, rec.Body.String())
		}
	}
	// Trailing whitespace is still fine.
	body, err := json.Marshal(learnBody(20))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/learn", strings.NewReader(string(body)+"  \n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("trailing whitespace: %d %s, want 200", rec.Code, rec.Body)
	}
}

// TestRemovePurgesTrainingLinks is the remove-then-learn satellite: a
// removed item's training links must not resurrect it into the model.
func TestRemovePurgesTrainingLinks(t *testing.T) {
	h := corpusService(t).Handler()
	call(t, h, "POST", "/v1/learn", learnBody(20), nil) // 40 links

	var rm removeResponse
	req := removeRequest{Side: "local", IDs: []string{"http://ex.org/l/r7"}}
	if rec := call(t, h, "POST", "/v1/items/remove", req, &rm); rec.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", rec.Code, rec.Body)
	}
	if rm.Removed != 1 || rm.PurgedLinks != 1 {
		t.Fatalf("remove response %+v, want removed=1 purged_links=1", rm)
	}

	// Relearning from the accumulated links must not see the ghost.
	var lr learnResponse
	if rec := call(t, h, "POST", "/v1/learn", learnRequest{}, &lr); rec.Code != http.StatusOK {
		t.Fatalf("relearn: %d %s", rec.Code, rec.Body)
	}
	if lr.TrainingLinks != 39 {
		t.Fatalf("relearn kept %d links, want 39 (ghost purged)", lr.TrainingLinks)
	}

	// External-side removal purges on the external endpoint.
	req = removeRequest{Side: "external", IDs: []string{"http://ex.org/e/c3", "http://ex.org/e/absent"}}
	if rec := call(t, h, "POST", "/v1/items/remove", req, &rm); rec.Code != http.StatusOK {
		t.Fatalf("remove external: %d %+v", rec.Code, rm)
	}
	if rm.Removed != 1 || rm.PurgedLinks != 1 {
		t.Fatalf("external remove response %+v, want removed=1 purged_links=1", rm)
	}
	var st statusResponse
	call(t, h, "GET", "/v1/status", nil, &st)
	if st.TrainingLinks != 38 {
		t.Fatalf("status reports %d links, want 38", st.TrainingLinks)
	}
}

// TestLinkErrorClassification: configuration mistakes are 400s, not
// blanket client errors for every engine failure.
func TestLinkErrorClassification(t *testing.T) {
	h := corpusService(t).Handler()
	call(t, h, "POST", "/v1/learn", learnBody(20), nil)

	badThreshold := 2.0
	if rec := call(t, h, "POST", "/v1/link", linkRequest{Threshold: &badThreshold}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("threshold 2.0: %d, want 400", rec.Code)
	}
	badWorkers := -3
	if rec := call(t, h, "POST", "/v1/link", linkRequest{Workers: &badWorkers}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("workers -3: %d, want 400", rec.Code)
	}
}

// TestSlowQueryDoesNotBlockUpsert is the tentpole's acceptance test: a
// deliberately slow link query must not delay a concurrent upsert,
// because queries hold no service lock while scoring.
func TestSlowQueryDoesNotBlockUpsert(t *testing.T) {
	svc := twoPropService(t, slowExact{delay: 2 * time.Millisecond})
	h := svc.Handler()
	var links learnRequest
	for i := 0; i < 20; i++ {
		links.Links = append(links.Links, linkSpec{
			External: fmt.Sprintf("http://ex.org/e/r%d", i),
			Local:    fmt.Sprintf("http://ex.org/l/r%d", i),
		})
	}
	call(t, h, "POST", "/v1/learn", links, nil)

	// The slow query: 10 items x ~20 candidates x 2 comparators x 2ms
	// of deliberate measure latency, serialized on one worker.
	items := make([]string, 10)
	for i := range items {
		items[i] = fmt.Sprintf("http://ex.org/e/r%d", i)
	}
	one := 1
	qb, _ := json.Marshal(linkRequest{Items: items, TopK: 1, Workers: &one})

	var queryDone atomic.Bool
	queryErr := make(chan string, 1)
	go func() {
		req := httptest.NewRequest("POST", "/v1/link", bytes.NewReader(qb))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		queryDone.Store(true)
		if rec.Code != http.StatusOK {
			queryErr <- fmt.Sprintf("slow link: %d %s", rec.Code, rec.Body.String())
		}
		close(queryErr)
	}()

	time.Sleep(50 * time.Millisecond) // let the query get in flight
	up := upsertRequest{Side: "local", Items: []itemSpec{{
		ID:         "http://ex.org/l/rNew",
		Properties: map[string][]string{pnProp: {"RES-0099-X"}, labelProp: {"L-0099"}},
		Classes:    []string{clsRes},
	}}}
	ub, _ := json.Marshal(up)
	start := time.Now()
	req := httptest.NewRequest("POST", "/v1/items/upsert", bytes.NewReader(ub))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("upsert during slow query: %d %s", rec.Code, rec.Body)
	}
	if queryDone.Load() {
		t.Fatal("slow query finished before the upsert; the overlap was not exercised")
	}
	// The upsert may wait on the engine's internal lock for at most one
	// in-flight scoring item (~80ms here), never for the whole query
	// (~800ms). 400ms leaves slack for loaded CI machines.
	if elapsed > 400*time.Millisecond {
		t.Fatalf("upsert took %v while a slow query ran; the write path is blocked on queries", elapsed)
	}
	if msg, ok := <-queryErr; ok {
		t.Fatal(msg)
	}
}

// TestQueryNeverTornUnderUpserts flips one local item between two
// complete descriptions while link queries hammer the service. Every
// observed score must be exactly the pre- or post-mutation value — a
// half-updated item (one property old, one new) would score 0.5.
func TestQueryNeverTornUnderUpserts(t *testing.T) {
	svc := twoPropService(t, similarity.Exact{})
	h := svc.Handler()
	var links learnRequest
	for i := 0; i < 20; i++ {
		links.Links = append(links.Links, linkSpec{
			External: fmt.Sprintf("http://ex.org/e/r%d", i),
			Local:    fmt.Sprintf("http://ex.org/l/r%d", i),
		})
	}
	call(t, h, "POST", "/v1/learn", links, nil)

	// The probe pair: e/r0 is (RES-0000-X, L-0000); l/r0 flips between
	// exactly that description (score 1) and a fully different one
	// (score 0).
	descA := map[string][]string{pnProp: {"RES-0000-X"}, labelProp: {"L-0000"}}
	descB := map[string][]string{pnProp: {"RES-9999-Y"}, labelProp: {"L-9999"}}

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			desc := descA
			if i%2 == 1 {
				desc = descB
			}
			up := upsertRequest{Side: "local", Items: []itemSpec{{
				ID: "http://ex.org/l/r0", Properties: desc, Classes: []string{clsRes},
			}}}
			b, _ := json.Marshal(up)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/items/upsert", bytes.NewReader(b)))
			if rec.Code != http.StatusOK {
				t.Errorf("flip upsert: %d %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	qb, _ := json.Marshal(linkRequest{Items: []string{"http://ex.org/e/r0"}})
	for q := 0; q < 60; q++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/link", bytes.NewReader(qb)))
		if rec.Code != http.StatusOK {
			t.Fatalf("link: %d %s", rec.Code, rec.Body)
		}
		var resp linkResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		for _, res := range resp.Results {
			for _, m := range res.Matches {
				if m.Local != "http://ex.org/l/r0" {
					continue
				}
				if m.Score != 0 && m.Score != 1 {
					t.Fatalf("torn read: l/r0 scored %v, want exactly 0 (old) or 1 (new)", m.Score)
				}
			}
		}
	}
	close(stop)
	<-writerDone
}
