package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// scrapeMetrics fetches /metrics through the full handler stack and
// lints the exposition format.
func scrapeMetrics(t *testing.T, h http.Handler, key string) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain exposition", ct)
	}
	text := rec.Body.String()
	for _, err := range obs.Lint(text) {
		t.Error(err)
	}
	return text
}

// metricValue extracts one sample's value from exposition text; the
// series must appear exactly once.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	var found []float64
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			found = append(found, v)
		}
	}
	if len(found) != 1 {
		t.Fatalf("series %s: found %d samples, want 1", series, len(found))
	}
	return found[0]
}

// TestStatusMetricsParity runs a scripted workload producing successes
// and every reachable rejection kind, then asserts the /v1/status
// resilience block and /metrics report identical values — the ISSUE's
// "must never disagree" contract.
func TestStatusMetricsParity(t *testing.T) {
	now := time.Unix(1000, 0)
	s := corpusService(t)
	res := ResilienceOptions{
		Rate:       1,
		Burst:      4,
		APIKeys:    []string{"k"},
		StrictAuth: true,
		Clock:      func() time.Time { return now },
	}
	s.opts.Resilience = res
	s.res = newResilience(res, s.met, nil)
	h := s.Handler()

	send := func(method, path, key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, nil)
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	// Burst of 4 with a frozen clock: four authenticated requests pass,
	// the fifth is rate-limited.
	for i := 0; i < 4; i++ {
		if rec := send("GET", "/v1/status", "k"); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if rec := send("GET", "/v1/status", "k"); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over burst: %d, want 429", rec.Code)
	}
	// Strict auth: a missing and an unknown key are both rejected.
	if rec := send("GET", "/v1/status", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("missing key: %d, want 401", rec.Code)
	}
	if rec := send("GET", "/v1/status", "wrong"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("unknown key: %d, want 401", rec.Code)
	}

	// Refill and take both views back to back. The counters compared do
	// not move between the two reads.
	now = now.Add(time.Hour)
	req := httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set("X-API-Key", "k")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status after refill: %d %s", rec.Code, rec.Body)
	}
	var status statusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	r := status.Resilience
	if r == nil {
		t.Fatal("status has no resilience block")
	}
	if r.RejectedRate != 1 || r.RejectedAuth != 2 {
		t.Fatalf("workload produced unexpected rejections: %+v", r)
	}

	text := scrapeMetrics(t, h, "k")
	pairs := []struct {
		series string
		status uint64
	}{
		{`linkrules_http_rejected_total{reason="rate_limited"}`, r.RejectedRate},
		{`linkrules_http_rejected_total{reason="unauthorized"}`, r.RejectedAuth},
		{`linkrules_http_rejected_total{reason="overloaded"}`, r.RejectedOverload},
		{`linkrules_http_timeouts_total`, r.Timeouts},
		{`linkrules_http_panics_total`, r.Panics},
		{`linkrules_http_in_flight`, uint64(r.InFlight)},
	}
	for _, p := range pairs {
		if got := metricValue(t, text, p.series); uint64(got) != p.status {
			t.Errorf("%s = %v but /v1/status reports %d", p.series, got, p.status)
		}
	}
}

// syncBuffer is a goroutine-safe buffer for capturing log output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// TestMetricsCoverAllLayers drives the service end to end and asserts
// /metrics carries service-, store- and pipeline-level families in
// valid exposition format.
func TestMetricsCoverAllLayers(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, rec, err := store.Open(dir, store.Options{Metrics: store.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	opts := durableOpts()
	opts.Metrics = reg
	svc, err := Restore(st, rec, corpusSeed(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()

	var lr linkResponse
	if rec := call(t, h, "POST", "/v1/link", linkRequest{TopK: 1}, &lr); rec.Code != http.StatusOK {
		t.Fatalf("link: %d %s", rec.Code, rec.Body)
	}
	if rec := call(t, h, "POST", "/v1/admin/snapshot", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", rec.Code, rec.Body)
	}

	text := scrapeMetrics(t, h, "")
	for _, want := range []string{
		// service layer
		`linkrules_http_requests_total{path="/v1/link",code="200"} 1`,
		"linkrules_http_request_seconds_bucket",
		"linkrules_http_in_flight 1", // the scrape itself
		// pipeline layer (stage histograms observed by the link query)
		`linkrules_stage_seconds_count{stage="scoring"} 1`,
		`linkrules_stage_seconds_count{stage="blocking"} 1`,
		`linkrules_stage_seconds_count{stage="engine"} 1`,
		`linkrules_stage_seconds_count{stage="learn"}`,
		`linkrules_stage_seconds_count{stage="publish"}`,
		// store layer
		"linkrules_wal_appends_total",
		"linkrules_wal_fsync_seconds_count",
		"linkrules_checkpoint_seconds_count",
		"linkrules_store_degraded 0",
		"linkrules_recovery_replayed_records 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
	// The store Func gauges must mirror Stats() — same source, no drift.
	stats := svc.Store().Stats()
	if got := metricValue(t, text, "linkrules_store_last_snapshot_seq"); uint64(got) != stats.LastSnapshotSeq {
		t.Errorf("last_snapshot_seq metric = %v, stats = %d", got, stats.LastSnapshotSeq)
	}
	if got := metricValue(t, text, "linkrules_store_checkpoints_total"); uint64(got) != stats.Checkpoints {
		t.Errorf("checkpoints metric = %v, stats = %d", got, stats.Checkpoints)
	}
}

// TestLinkDebugTimings asserts ?debug=timings returns the stage
// breakdown and that the plain response omits it.
func TestLinkDebugTimings(t *testing.T) {
	h := corpusService(t).Handler()
	if rec := call(t, h, "POST", "/v1/learn", learnBody(10), nil); rec.Code != http.StatusOK {
		t.Fatalf("learn: %d %s", rec.Code, rec.Body)
	}
	var plain linkResponse
	if rec := call(t, h, "POST", "/v1/link", linkRequest{TopK: 1}, &plain); rec.Code != http.StatusOK {
		t.Fatalf("link: %d %s", rec.Code, rec.Body)
	}
	if len(plain.Timings) != 0 {
		t.Errorf("undebugged link response carries timings: %+v", plain.Timings)
	}
	var dbg linkResponse
	if rec := call(t, h, "POST", "/v1/link?debug=timings", linkRequest{TopK: 1}, &dbg); rec.Code != http.StatusOK {
		t.Fatalf("link?debug=timings: %d %s", rec.Code, rec.Body)
	}
	got := map[string]bool{}
	for _, st := range dbg.Timings {
		got[st.Stage] = true
		if st.Seconds < 0 {
			t.Errorf("stage %s has negative duration", st.Stage)
		}
	}
	for _, stage := range []string{"engine", "blocking", "scoring"} {
		if !got[stage] {
			t.Errorf("timings missing stage %q (got %+v)", stage, dbg.Timings)
		}
	}
}

// TestPprofGatedByAuth asserts /debug/pprof is only mounted with
// EnablePprof and sits behind the same strict-auth wall as the API.
func TestPprofGatedByAuth(t *testing.T) {
	s := corpusService(t)
	s.opts.EnablePprof = true
	res := ResilienceOptions{APIKeys: []string{"secret"}, StrictAuth: true}
	s.opts.Resilience = res
	s.res = newResilience(res, s.met, nil)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated pprof: %d, want 401", rec.Code)
	}
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	req.Header.Set("X-API-Key", "secret")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("authenticated pprof index: %d %s", rec.Code, rec.Body)
	}

	// Without the flag the profiler is not mounted at all.
	off := corpusService(t).Handler()
	rec = httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof: %d, want 404", rec.Code)
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestRequestIDs pins the correlation contract: every response carries
// X-Request-ID (generated, or the inbound one when header-safe), and
// error envelopes echo it.
func TestRequestIDs(t *testing.T) {
	h := corpusService(t).Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/status", nil))
	if id := rec.Header().Get("X-Request-ID"); !hexID.MatchString(id) {
		t.Errorf("generated request ID = %q, want 16 hex digits", id)
	}

	req := httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set("X-Request-ID", "trace-abc.123")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); id != "trace-abc.123" {
		t.Errorf("inbound request ID not honored: got %q", id)
	}

	req = httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set("X-Request-ID", "bad id\x01"+strings.Repeat("x", 100))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); !hexID.MatchString(id) {
		t.Errorf("hostile inbound ID was echoed: %q", id)
	}

	// Error envelopes carry the ID for log correlation.
	req = httptest.NewRequest("GET", "/v1/rules", nil) // 409: nothing learned
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("rules before learn: %d, want 409", rec.Code)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID == "" || body.RequestID != rec.Header().Get("X-Request-ID") {
		t.Errorf("error envelope request_id = %q, header = %q",
			body.RequestID, rec.Header().Get("X-Request-ID"))
	}
}

// TestConcurrentScrapeUnderLoad hammers queries, mutations and scrapes
// concurrently; run under -race this pins the lock-free observe path
// against the locked exposition path.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	h := corpusService(t).Handler()
	if rec := call(t, h, "POST", "/v1/learn", learnBody(10), nil); rec.Code != http.StatusOK {
		t.Fatalf("learn: %d %s", rec.Code, rec.Body)
	}
	const workers, rounds = 6, 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch w % 3 {
				case 0:
					rec := call(t, h, "POST", "/v1/link",
						linkRequest{Items: []string{fmt.Sprintf("http://ex.org/e/r%d", i%10)}, TopK: 1}, nil)
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("link: %d", rec.Code)
					}
				case 1:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("metrics: %d", rec.Code)
					}
				default:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/status", nil))
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("status: %d", rec.Code)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// A final scrape must still be valid exposition format.
	scrapeMetrics(t, h, "")
}

// TestAccessLog asserts the structured log line carries the documented
// fields with the client key hashed, never verbatim.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	s := corpusService(t)
	s.res = newResilience(ResilienceOptions{}, s.met, newJSONLogger(&buf))
	h := s.Handler()

	req := httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set("X-API-Key", "super-secret-key")
	req.Header.Set("X-Request-ID", "req-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d", rec.Code)
	}
	line := buf.String()
	for _, want := range []string{
		`"method":"GET"`, `"path":"/v1/status"`, `"status":200`, `"request_id":"req-42"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %s: %s", want, line)
		}
	}
	if strings.Contains(line, "super-secret-key") {
		t.Errorf("access log leaks the raw API key: %s", line)
	}
	if !strings.Contains(line, `"client":"`+hashKey("super-secret-key")+`"`) {
		t.Errorf("access log missing hashed client key: %s", line)
	}
}
