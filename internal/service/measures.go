package service

import (
	"fmt"
	"sort"
	"strings"

	datalink "repro"
	"repro/internal/similarity"
)

// measures maps wire names to similarity measures. All listed measures
// are stateless values, so sharing one instance across requests is safe.
var measures = map[string]similarity.Measure{
	"exact":       similarity.Exact{},
	"exactfold":   similarity.ExactFold{},
	"levenshtein": similarity.Levenshtein{},
	"damerau":     similarity.Damerau{},
	"jaro":        similarity.Jaro{},
	"jarowinkler": similarity.JaroWinkler{},
	"jaccard":     similarity.Jaccard{},
	"mongeelkan":  similarity.MongeElkan{},
	"soundex":     similarity.Soundex{},
	"lcs":         similarity.LongestCommonSubstring{},
}

// MeasureNames lists the wire names link requests may use, sorted.
func MeasureNames() []string {
	out := make([]string, 0, len(measures))
	for name := range measures {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// measureByName resolves a wire name case-insensitively.
func measureByName(name string) (similarity.Measure, error) {
	m, ok := measures[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("unknown measure %q (available: %s)", name, strings.Join(MeasureNames(), ", "))
	}
	return m, nil
}

// comparatorSpec is the wire form of one comparator.
type comparatorSpec struct {
	ExternalProperty string  `json:"external_property"`
	LocalProperty    string  `json:"local_property"`
	Measure          string  `json:"measure"`
	Weight           float64 `json:"weight"`
}

// compileComparators turns wire specs into a linker comparator slice. A
// missing local property defaults to the external one (same-schema
// linking), and a zero weight defaults to 1.
func compileComparators(specs []comparatorSpec) ([]datalink.Comparator, error) {
	out := make([]datalink.Comparator, 0, len(specs))
	for i, sp := range specs {
		if sp.ExternalProperty == "" {
			return nil, fmt.Errorf("comparator %d: external_property is required", i)
		}
		local := sp.LocalProperty
		if local == "" {
			local = sp.ExternalProperty
		}
		m, err := measureByName(sp.Measure)
		if err != nil {
			return nil, fmt.Errorf("comparator %d: %w", i, err)
		}
		w := sp.Weight
		if w == 0 {
			w = 1
		}
		out = append(out, datalink.Comparator{
			ExternalProperty: datalink.NewIRI(sp.ExternalProperty),
			LocalProperty:    datalink.NewIRI(local),
			Measure:          m,
			Weight:           w,
		})
	}
	return out, nil
}
