package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/store"
)

// Service-level fault sweep: drive a fixed HTTP mutation workload (with
// forced checkpoints) against a durable service whose store writes
// through an injected filesystem fault, crash, recover on the real
// filesystem, and assert end-to-end equivalence: the recovered service
// answers /v1/link and /v1/rules byte-identically to an ephemeral
// mirror that applied exactly the acknowledged mutations (plus, at
// most, the single ambiguous one whose append failed). Along the way it
// pins the degradation contract — after the store fail-stops, reads
// keep serving from the published bundle while every mutation is
// rejected up front.

// svcSweepStoreOpts is the deterministic store configuration: every
// append syncs inline and checkpoints only happen when forced, so the
// filesystem operation sequence is a pure function of the workload.
func svcSweepStoreOpts(fs store.FS) store.Options {
	return store.Options{Fsync: store.FsyncAlways, SnapshotEvery: -1, FS: fs}
}

// sweepStep is one scripted workload step: an HTTP mutation, or a
// forced checkpoint when mut is nil.
type sweepStep struct {
	mut *mutation
}

// serviceSweepSteps is the fixed workload: upserts on both sides,
// removals (one purging a training link), relearns, and two forced
// checkpoints so faults land in WAL appends, rotations and snapshot
// writes alike.
func serviceSweepSteps() []sweepStep {
	m := func(path string, body map[string]any) sweepStep {
		return sweepStep{mut: &mutation{path: path, body: body}}
	}
	up := func(side, id, pn string, classes ...string) sweepStep {
		item := map[string]any{"id": id, "properties": map[string][]string{pnProp: {pn}}}
		if len(classes) > 0 {
			item["classes"] = classes
		}
		return m("/v1/items/upsert", map[string]any{"side": side, "items": []map[string]any{item}})
	}
	learn := func(ext, loc string) sweepStep {
		return m("/v1/learn", map[string]any{"links": []map[string]any{{"external": ext, "local": loc}}})
	}
	// bulk sends an NDJSON stream through the streaming endpoint. The
	// chunk size exceeds the line count, so the whole request is ONE
	// batch record — a fault anywhere in its write path must leave the
	// batch wholly applied or wholly absent, which is exactly what the
	// prefix-fingerprint verification asserts (a half-applied batch
	// would match no mirror prefix).
	bulk := func(side string, lines ...string) sweepStep {
		return sweepStep{mut: &mutation{
			path:        "/v1/items/bulk?side=" + side + "&batch=64",
			raw:         strings.Join(lines, "\n") + "\n",
			contentType: "application/x-ndjson",
		}}
	}
	return []sweepStep{
		up("external", "http://ex.org/e/r20", "RES-0020-Q"),
		up("local", "http://ex.org/l/r20", "RES-0020-Q", clsRes),
		learn("http://ex.org/e/r20", "http://ex.org/l/r20"),
		{}, // forced checkpoint
		up("external", "http://ex.org/e/c21", "CAP-0021-Q"),
		m("/v1/items/remove", map[string]any{"side": "local", "ids": []string{"http://ex.org/l/r3"}}),
		bulk("external",
			`{"id":"http://ex.org/e/b1","properties":{"`+pnProp+`":["RES-0031-B"]}}`,
			`{"id":"http://ex.org/e/b2","properties":{"`+pnProp+`":["CAP-0032-B"]}}`,
			`{"id":"http://ex.org/e/c7","remove":true}`, // purges c7's training link
			`{"id":"http://ex.org/e/b1","properties":{"`+pnProp+`":["RES-0033-B"]}}`),
		learn("http://ex.org/e/c5", "http://ex.org/l/c5"),
		{}, // forced checkpoint
		up("external", "http://ex.org/e/r2", "RES-0002-A"),
		bulk("local",
			`{"id":"http://ex.org/l/b3","properties":{"`+pnProp+`":["RES-0034-B"]},"classes":["`+clsRes+`"]}`,
			`{"id":"http://ex.org/l/c2","remove":true}`),
		learn("http://ex.org/e/r15", "http://ex.org/l/r15"),
	}
}

// fullFingerprint folds the four fingerprint components into one
// comparable string.
func fullFingerprint(t *testing.T, s *Service) string {
	t.Helper()
	ext, loc, rules, links := serviceFingerprint(t, s)
	return ext + "\x00" + loc + "\x00" + rules + "\x00" + links
}

// mirrorPrefixFingerprints applies the workload's mutation steps one at
// a time to an ephemeral mirror service, capturing the fingerprint
// after each prefix. fps[n] is the state after the first n mutation
// steps; codes[n] is the status the n-th step answered. Checkpoint
// steps don't mutate state, so a faulted run that acknowledged n
// mutations must recover to exactly fps[n] (or fps[n+1] if its n+1-th
// append was ambiguous).
func mirrorPrefixFingerprints(t *testing.T, steps []sweepStep) (fps []string, codes []int) {
	t.Helper()
	seed := corpusSeed(t)
	mirror := New(seed.External, seed.Local, seed.Ontology, durableOpts())
	if err := mirror.LearnLinks(seed.Training); err != nil {
		t.Fatalf("mirror seed learn: %v", err)
	}
	h := mirror.Handler()
	fps = append(fps, fullFingerprint(t, mirror))
	for _, step := range steps {
		if step.mut == nil {
			continue
		}
		codes = append(codes, applyMutation(t, h, *step.mut))
		fps = append(fps, fullFingerprint(t, mirror))
	}
	return fps, codes
}

// serviceSweepResult is what one faulted workload run produced.
type serviceSweepResult struct {
	bootErr   bool
	applied   int  // mutation steps acknowledged (200/400) before the first 503
	ambiguous bool // the first 503 was its own append failing (frame may be on disk)
}

// errEnvelope decodes the error body of a non-200 response.
func errEnvelope(t *testing.T, body []byte) errorBody {
	t.Helper()
	var e errorBody
	if len(body) > 0 {
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("decoding error envelope %q: %v", body, err)
		}
	}
	return e
}

// runServiceWorkload boots a durable service over dir/fs, applies the
// workload, verifies the degradation contract if the store fail-stops,
// then crashes the service. mirrorCodes carries the fault-free status
// of each mutation step for cross-checking acknowledged steps.
func runServiceWorkload(t *testing.T, dir string, fs store.FS, steps []sweepStep, mirrorCodes []int) serviceSweepResult {
	t.Helper()
	st, rec, err := store.Open(dir, svcSweepStoreOpts(fs))
	if err != nil {
		return serviceSweepResult{bootErr: true}
	}
	svc, err := Restore(st, rec, corpusSeed(t), durableOpts())
	if err != nil {
		_ = st.Close()
		return serviceSweepResult{bootErr: true}
	}
	h := svc.Handler()
	res := serviceSweepResult{}
	failed := false
	mi := -1
	for _, step := range steps {
		if step.mut == nil {
			_, _ = svc.Checkpoint() // a checkpoint failure must not stop the service
			continue
		}
		mi++
		var rr *httptest.ResponseRecorder
		if step.mut.raw != "" {
			rr = rawCall(t, h, step.mut.path, step.mut.contentType, step.mut.raw, nil)
		} else {
			rr = call(t, h, http.MethodPost, step.mut.path, step.mut.body, nil)
		}
		switch {
		case rr.Code == http.StatusServiceUnavailable:
			reason := errEnvelope(t, rr.Body.Bytes()).Reason
			if !failed {
				failed = true
				res.applied = mi
				switch reason {
				case reasonPersist:
					// This append itself failed: ambiguous, may be on disk.
					res.ambiguous = true
				case reasonDegraded:
					// The store fail-stopped earlier (checkpoint-path fault):
					// this mutation never touched the log.
				default:
					t.Fatalf("step %d: first 503 carries reason %q, want %q or %q",
						mi, reason, reasonPersist, reasonDegraded)
				}
			} else if reason != reasonDegraded {
				t.Fatalf("step %d: post-fail-stop 503 carries reason %q, want %q (guaranteed-absent rejection)",
					mi, reason, reasonDegraded)
			}
		case failed:
			t.Fatalf("step %d: status %d after the store fail-stopped, want 503", mi, rr.Code)
		case rr.Code != mirrorCodes[mi]:
			t.Fatalf("step %d: status %d, mirror answered %d", mi, rr.Code, mirrorCodes[mi])
		}
	}
	if !failed {
		res.applied = mi + 1
	} else {
		// Degraded read-only mode: reads keep serving from the published
		// bundle, status reports the degradation, admin checkpoints are
		// refused as degraded.
		var status statusResponse
		if rr := call(t, h, http.MethodGet, "/v1/status", nil, &status); rr.Code != http.StatusOK {
			t.Fatalf("degraded /v1/status: code %d, want 200", rr.Code)
		}
		if !status.Degraded || status.DegradedReason == "" {
			t.Fatalf("degraded status = %v %q, want degraded with a reason", status.Degraded, status.DegradedReason)
		}
		if rr := call(t, h, http.MethodGet, "/v1/rules", nil, nil); rr.Code != http.StatusOK {
			t.Fatalf("degraded /v1/rules: code %d, want 200", rr.Code)
		}
		if rr := call(t, h, http.MethodPost, "/v1/link", map[string]any{"items": []string{"http://ex.org/e/r1"}, "top_k": 1}, nil); rr.Code != http.StatusOK {
			t.Fatalf("degraded /v1/link: code %d, want 200", rr.Code)
		}
		rr := call(t, h, http.MethodPost, "/v1/admin/snapshot", nil, nil)
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("degraded /v1/admin/snapshot: code %d, want 503", rr.Code)
		}
		if reason := errEnvelope(t, rr.Body.Bytes()).Reason; reason != reasonDegraded {
			t.Fatalf("degraded snapshot reason = %q, want %q", reason, reasonDegraded)
		}
	}
	crash(svc)
	_ = svc.Close()
	return res
}

// verifyServiceRecovery reopens dir on the real filesystem and checks
// the recovered service's fingerprint against the mirror prefixes.
func verifyServiceRecovery(t *testing.T, dir string, res serviceSweepResult, fps []string) {
	t.Helper()
	svc := restoreService(t, dir, corpusSeed(t), svcSweepStoreOpts(nil))
	defer svc.Close()
	got := fullFingerprint(t, svc)
	want := res.applied
	if res.bootErr {
		want = 0
	}
	switch {
	case got == fps[want]:
	case res.ambiguous && got == fps[want+1]:
		// The failed append's frame reached disk after all; the client saw
		// an error, so either outcome honors the contract.
	default:
		t.Errorf("recovered state matches neither the %d-mutation prefix nor (ambiguous=%v) the next one",
			want, res.ambiguous)
	}
}

func TestFaultSweepService(t *testing.T) {
	steps := serviceSweepSteps()
	fps, mirrorCodes := mirrorPrefixFingerprints(t, steps)
	for i, c := range mirrorCodes {
		if c != http.StatusOK {
			t.Fatalf("mirror mutation %d answered %d; the scripted workload should be all-200", i, c)
		}
	}

	// Fault-free trace run enumerates the workload's fault points and
	// must land exactly on the full-prefix fingerprint.
	traceFS := faultfs.New(nil)
	traceFS.Record()
	cleanDir := t.TempDir()
	clean := runServiceWorkload(t, cleanDir, traceFS, steps, mirrorCodes)
	if clean.bootErr || clean.applied != len(mirrorCodes) {
		t.Fatalf("fault-free run: %+v, want %d applied", clean, len(mirrorCodes))
	}
	verifyServiceRecovery(t, cleanDir, clean, fps)
	trace := traceFS.Trace()

	runs := 0
	for i, op := range trace {
		modes := []faultfs.Mode{faultfs.Err}
		if op.Kind == faultfs.OpWrite {
			modes = append(modes, faultfs.Short, faultfs.NoSpace)
		}
		for _, mode := range modes {
			runs++
			t.Run(fmt.Sprintf("op%03d-%s-%s", i+1, op.Kind, mode), func(t *testing.T) {
				dir := t.TempDir()
				ffs := faultfs.New(nil)
				ffs.FailAt(i+1, mode)
				res := runServiceWorkload(t, dir, ffs, steps, mirrorCodes)
				if !ffs.Fired() {
					t.Fatalf("fault %d never triggered; trace drifted from the recording", i+1)
				}
				verifyServiceRecovery(t, dir, res, fps)
			})
		}
	}
	t.Logf("swept %d fault points over %d operations", runs, len(trace))
}
