package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	datalink "repro"
)

const (
	pnProp    = "http://ex.org/pn"
	labelProp = "http://www.w3.org/2000/01/rdf-schema#label"
	clsRes    = "http://ex.org/onto#Resistor"
	clsCap    = "http://ex.org/onto#Capacitor"
)

// corpusService builds a service over a small hand-written corpus: local
// catalog items typed Resistor/Capacitor with structured part numbers,
// matching external items, and an ontology with the two classes.
func corpusService(t *testing.T) *Service {
	t.Helper()
	return corpusServiceOpts(t, nil)
}

// corpusServiceOpts is corpusService with an options hook, for tests
// that need the same corpus behind different service configuration.
func corpusServiceOpts(t *testing.T, mod func(*Options)) *Service {
	t.Helper()
	og := datalink.NewGraph()
	for _, c := range []string{clsRes, clsCap} {
		og.Add(datalink.T(datalink.NewIRI(c), datalink.RDFType, datalink.NewIRI("http://www.w3.org/2002/07/owl#Class")))
	}
	ol, err := datalink.OntologyFromGraph(og)
	if err != nil {
		t.Fatal(err)
	}
	se, sl := datalink.NewGraph(), datalink.NewGraph()
	addLocal := func(id, pn, class string) {
		item := datalink.NewIRI(id)
		sl.Add(datalink.T(item, datalink.NewIRI(pnProp), datalink.NewLiteral(pn)))
		sl.Add(datalink.T(item, datalink.RDFType, datalink.NewIRI(class)))
	}
	addExt := func(id, pn string) {
		item := datalink.NewIRI(id)
		se.Add(datalink.T(item, datalink.NewIRI(pnProp), datalink.NewLiteral(pn)))
	}
	for i := 0; i < 20; i++ {
		addLocal(fmt.Sprintf("http://ex.org/l/r%d", i), fmt.Sprintf("RES-%04d-X", i), clsRes)
		addLocal(fmt.Sprintf("http://ex.org/l/c%d", i), fmt.Sprintf("CAP-%04d-Y", i), clsCap)
		addExt(fmt.Sprintf("http://ex.org/e/r%d", i), fmt.Sprintf("RES-%04d-Z", i))
		addExt(fmt.Sprintf("http://ex.org/e/c%d", i), fmt.Sprintf("CAP-%04d-W", i))
	}
	opts := Options{
		Learner: datalink.LearnerConfig{SupportThreshold: 0.01},
		DefaultLinker: datalink.LinkerConfig{
			Comparators: []datalink.Comparator{{
				ExternalProperty: datalink.NewIRI(pnProp),
				LocalProperty:    datalink.NewIRI(pnProp),
				Measure:          datalink.Levenshtein,
				Weight:           1,
			}},
			Threshold: 0.5,
		},
	}
	if mod != nil {
		mod(&opts)
	}
	return New(se, sl, ol, opts)
}

// call sends a JSON request to the handler and decodes the response.
func call(t *testing.T, h http.Handler, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

// learnBody labels every external r-item with its local counterpart.
func learnBody(n int) learnRequest {
	var req learnRequest
	for i := 0; i < n; i++ {
		req.Links = append(req.Links,
			linkSpec{External: fmt.Sprintf("http://ex.org/e/r%d", i), Local: fmt.Sprintf("http://ex.org/l/r%d", i)},
			linkSpec{External: fmt.Sprintf("http://ex.org/e/c%d", i), Local: fmt.Sprintf("http://ex.org/l/c%d", i)})
	}
	return req
}

func TestHealthz(t *testing.T) {
	h := corpusService(t).Handler()
	var resp map[string]bool
	if rec := call(t, h, "GET", "/healthz", nil, &resp); rec.Code != http.StatusOK || !resp["ok"] {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
}

func TestStatus(t *testing.T) {
	h := corpusService(t).Handler()
	var resp statusResponse
	if rec := call(t, h, "GET", "/v1/status", nil, &resp); rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body)
	}
	if resp.ExternalTriples == 0 || resp.LocalTriples == 0 {
		t.Fatalf("status reports empty corpus: %+v", resp)
	}
	if resp.Learned || resp.Rules != 0 {
		t.Fatalf("fresh service claims a model: %+v", resp)
	}
	if len(resp.Measures) == 0 || resp.Measures[0] > resp.Measures[len(resp.Measures)-1] {
		t.Fatalf("measures not reported sorted: %v", resp.Measures)
	}
}

func TestLearnAndRules(t *testing.T) {
	h := corpusService(t).Handler()
	var resp learnResponse
	if rec := call(t, h, "POST", "/v1/learn", learnBody(20), &resp); rec.Code != http.StatusOK {
		t.Fatalf("learn: %d %s", rec.Code, rec.Body)
	}
	if resp.Rules == 0 || resp.TrainingLinks != 40 {
		t.Fatalf("learn response: %+v", resp)
	}
	var rules struct {
		Rules []ruleJSON `json:"rules"`
	}
	if rec := call(t, h, "GET", "/v1/rules", nil, &rules); rec.Code != http.StatusOK {
		t.Fatalf("rules: %d %s", rec.Code, rec.Body)
	}
	if len(rules.Rules) != resp.Rules {
		t.Fatalf("rules endpoint returned %d rules, learn reported %d", len(rules.Rules), resp.Rules)
	}
	r0 := rules.Rules[0]
	if r0.Segment == "" || r0.Class == "" || r0.Confidence <= 0 || !strings.Contains(r0.Text, r0.Segment) {
		t.Fatalf("malformed rule: %+v", r0)
	}
}

func TestRulesBeforeLearnConflicts(t *testing.T) {
	h := corpusService(t).Handler()
	if rec := call(t, h, "GET", "/v1/rules", nil, nil); rec.Code != http.StatusConflict {
		t.Fatalf("rules before learn: %d, want 409", rec.Code)
	}
	if rec := call(t, h, "POST", "/v1/link", linkRequest{}, nil); rec.Code != http.StatusConflict {
		t.Fatalf("link before learn: %d, want 409", rec.Code)
	}
}

func TestLink(t *testing.T) {
	h := corpusService(t).Handler()
	call(t, h, "POST", "/v1/learn", learnBody(20), nil)
	var resp linkResponse
	req := linkRequest{Items: []string{"http://ex.org/e/r3"}, TopK: 2}
	if rec := call(t, h, "POST", "/v1/link", req, &resp); rec.Code != http.StatusOK {
		t.Fatalf("link: %d %s", rec.Code, rec.Body)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results: %+v", resp.Results)
	}
	got := resp.Results[0]
	if got.Item != "http://ex.org/e/r3" || len(got.Matches) == 0 || len(got.Matches) > 2 {
		t.Fatalf("result: %+v", got)
	}
	if got.Matches[0].Local != "http://ex.org/l/r3" {
		t.Fatalf("best match %+v, want l/r3", got.Matches[0])
	}
	// The reduced space keeps capacitors out of a resistor's candidates.
	for _, m := range got.Matches {
		if strings.Contains(m.Local, "/c") {
			t.Fatalf("capacitor %s leaked into resistor candidates", m.Local)
		}
	}

	// All items, inline comparators, custom threshold.
	th := 0.9
	all := linkRequest{
		Threshold:   &th,
		TopK:        1,
		Comparators: []comparatorSpec{{ExternalProperty: pnProp, Measure: "jarowinkler"}},
	}
	var allResp linkResponse
	if rec := call(t, h, "POST", "/v1/link", all, &allResp); rec.Code != http.StatusOK {
		t.Fatalf("link all: %d %s", rec.Code, rec.Body)
	}
	if len(allResp.Results) != 40 {
		t.Fatalf("expected 40 items, got %d", len(allResp.Results))
	}

	// Unknown measure is a 400.
	bad := linkRequest{Comparators: []comparatorSpec{{ExternalProperty: pnProp, Measure: "nope"}}}
	if rec := call(t, h, "POST", "/v1/link", bad, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad measure: %d, want 400", rec.Code)
	}
}

func TestLinkCancellation(t *testing.T) {
	svc := corpusService(t)
	h := svc.Handler()
	call(t, h, "POST", "/v1/learn", learnBody(20), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := json.Marshal(linkRequest{})
	req := httptest.NewRequest("POST", "/v1/link", bytes.NewReader(b)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("cancelled link: %d %s, want 499", rec.Code, rec.Body)
	}
}

func TestUpsertThenLinkSeesNewItem(t *testing.T) {
	h := corpusService(t).Handler()
	call(t, h, "POST", "/v1/learn", learnBody(20), nil)

	// Prime the linker cache so the upsert exercises the incremental path.
	call(t, h, "POST", "/v1/link", linkRequest{Items: []string{"http://ex.org/e/r0"}}, nil)

	// A new local resistor that matches e/r9's part number better.
	up := upsertRequest{Side: "local", Items: []itemSpec{{
		ID:         "http://ex.org/l/rNew",
		Properties: map[string][]string{pnProp: {"RES-0009-Z"}},
		Classes:    []string{clsRes},
	}}}
	var upResp upsertResponse
	if rec := call(t, h, "POST", "/v1/items/upsert", up, &upResp); rec.Code != http.StatusOK {
		t.Fatalf("upsert: %d %s", rec.Code, rec.Body)
	}
	if upResp.Upserted != 1 || upResp.Version == 0 {
		t.Fatalf("upsert response: %+v", upResp)
	}

	var resp linkResponse
	req := linkRequest{Items: []string{"http://ex.org/e/r9"}, TopK: 1}
	if rec := call(t, h, "POST", "/v1/link", req, &resp); rec.Code != http.StatusOK {
		t.Fatalf("link: %d %s", rec.Code, rec.Body)
	}
	if got := resp.Results[0].Matches; len(got) != 1 || got[0].Local != "http://ex.org/l/rNew" || got[0].Score != 1 {
		t.Fatalf("upserted item must win with score 1, got %+v", got)
	}

	// Upserting an external item re-routes its candidates too.
	upExt := upsertRequest{Side: "external", Items: []itemSpec{{
		ID:         "http://ex.org/e/r9",
		Properties: map[string][]string{pnProp: {"CAP-0005-Y"}},
	}}}
	if rec := call(t, h, "POST", "/v1/items/upsert", upExt, nil); rec.Code != http.StatusOK {
		t.Fatalf("upsert external: %d %s", rec.Code, rec.Body)
	}
	if rec := call(t, h, "POST", "/v1/link", req, &resp); rec.Code != http.StatusOK {
		t.Fatalf("link after external upsert: %d %s", rec.Code, rec.Body)
	}
	if got := resp.Results[0].Matches; len(got) != 1 || got[0].Local != "http://ex.org/l/c5" {
		t.Fatalf("re-described item must match l/c5, got %+v", got)
	}

	// Classes on the external side are rejected.
	badUp := upsertRequest{Side: "external", Items: []itemSpec{{ID: "http://ex.org/e/x", Classes: []string{clsRes}}}}
	if rec := call(t, h, "POST", "/v1/items/upsert", badUp, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("classes on external side: %d, want 400", rec.Code)
	}
}

func TestRemove(t *testing.T) {
	h := corpusService(t).Handler()
	call(t, h, "POST", "/v1/learn", learnBody(20), nil)
	call(t, h, "POST", "/v1/link", linkRequest{Items: []string{"http://ex.org/e/r0"}}, nil)

	var rm removeResponse
	req := removeRequest{Side: "local", IDs: []string{"http://ex.org/l/r7", "http://ex.org/l/absent"}}
	if rec := call(t, h, "POST", "/v1/items/remove", req, &rm); rec.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", rec.Code, rec.Body)
	}
	if rm.Removed != 1 {
		t.Fatalf("removed %d items, want 1", rm.Removed)
	}

	var resp linkResponse
	if rec := call(t, h, "POST", "/v1/link", linkRequest{Items: []string{"http://ex.org/e/r7"}, TopK: 1}, &resp); rec.Code != http.StatusOK {
		t.Fatalf("link: %d %s", rec.Code, rec.Body)
	}
	for _, m := range resp.Results[0].Matches {
		if m.Local == "http://ex.org/l/r7" {
			t.Fatal("removed item still appears in matches")
		}
	}
}

func TestBadRequests(t *testing.T) {
	h := corpusService(t).Handler()
	cases := []struct {
		method, path string
		body         string
		want         int
	}{
		{"POST", "/v1/items/upsert", `{"side":"sideways","items":[{"id":"x"}]}`, http.StatusBadRequest},
		{"POST", "/v1/items/upsert", `{"side":"external","items":[]}`, http.StatusBadRequest},
		{"POST", "/v1/items/upsert", `{"side":"external","items":[{"id":""}]}`, http.StatusBadRequest},
		{"POST", "/v1/items/remove", `{"side":"external","ids":[]}`, http.StatusBadRequest},
		{"POST", "/v1/learn", `{"links":[{"external":"","local":"x"}]}`, http.StatusBadRequest},
		{"POST", "/v1/learn", `{"nope":1}`, http.StatusBadRequest},
		{"GET", "/v1/status/extra", ``, http.StatusNotFound},
		{"DELETE", "/v1/learn", ``, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("%s %s %s: %d, want %d", c.method, c.path, c.body, rec.Code, c.want)
		}
	}
}

// TestConcurrentTraffic hammers the service with interleaved upserts and
// link queries; under -race this validates the full lock stack (service
// RWMutex, pipeline cache mutex, engine RWMutex).
func TestConcurrentTraffic(t *testing.T) {
	h := corpusService(t).Handler()
	call(t, h, "POST", "/v1/learn", learnBody(20), nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if g%2 == 0 {
					up := upsertRequest{Side: "local", Items: []itemSpec{{
						ID:         fmt.Sprintf("http://ex.org/l/live-%d-%d", g, i),
						Properties: map[string][]string{pnProp: {fmt.Sprintf("RES-%02d%02d-L", g, i)}},
						Classes:    []string{clsRes},
					}}}
					b, _ := json.Marshal(up)
					req := httptest.NewRequest("POST", "/v1/items/upsert", bytes.NewReader(b))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("upsert: %d %s", rec.Code, rec.Body.String())
						return
					}
				} else {
					b, _ := json.Marshal(linkRequest{Items: []string{fmt.Sprintf("http://ex.org/e/r%d", i)}, TopK: 3})
					req := httptest.NewRequest("POST", "/v1/link", bytes.NewReader(b))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("link: %d %s", rec.Code, rec.Body.String())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
