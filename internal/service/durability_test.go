package service

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	datalink "repro"
	"repro/internal/store"
)

// durableOpts mirrors corpusService's configuration.
func durableOpts() Options {
	return Options{
		Learner: datalink.LearnerConfig{SupportThreshold: 0.01},
		DefaultLinker: datalink.LinkerConfig{
			Comparators: []datalink.Comparator{{
				ExternalProperty: datalink.NewIRI(pnProp),
				LocalProperty:    datalink.NewIRI(pnProp),
				Measure:          datalink.Levenshtein,
				Weight:           1,
			}},
			Threshold: 0.5,
		},
	}
}

// corpusSeed builds the hand-written test corpus as a Seed.
func corpusSeed(t *testing.T) *Seed {
	t.Helper()
	og := datalink.NewGraph()
	for _, c := range []string{clsRes, clsCap} {
		og.Add(datalink.T(datalink.NewIRI(c), datalink.RDFType, datalink.NewIRI("http://www.w3.org/2002/07/owl#Class")))
	}
	ol, err := datalink.OntologyFromGraph(og)
	if err != nil {
		t.Fatal(err)
	}
	se, sl := datalink.NewGraph(), datalink.NewGraph()
	var links []datalink.Link
	for i := 0; i < 20; i++ {
		for _, kind := range []struct {
			class, prefix, suffix string
		}{{clsRes, "r", "RES"}, {clsCap, "c", "CAP"}} {
			loc := datalink.NewIRI(fmt.Sprintf("http://ex.org/l/%s%d", kind.prefix, i))
			ext := datalink.NewIRI(fmt.Sprintf("http://ex.org/e/%s%d", kind.prefix, i))
			sl.Add(datalink.T(loc, datalink.NewIRI(pnProp), datalink.NewLiteral(fmt.Sprintf("%s-%04d-X", kind.suffix, i))))
			sl.Add(datalink.T(loc, datalink.RDFType, datalink.NewIRI(kind.class)))
			se.Add(datalink.T(ext, datalink.NewIRI(pnProp), datalink.NewLiteral(fmt.Sprintf("%s-%04d-Z", kind.suffix, i))))
			if i < 10 {
				links = append(links, datalink.Link{External: ext, Local: loc})
			}
		}
	}
	return &Seed{External: se, Local: sl, Ontology: ol, Training: links}
}

// crash simulates a SIGKILL of svc: nothing is closed, flushed or
// synced, but background checkpoint goroutines are stopped — a real
// kill terminates those too, and leaving them running would let the
// dead process prune WAL segments under the recovered one's feet
// (which two *processes* cannot do to each other).
func crash(svc *Service) {
	svc.mu.Lock()
	svc.closing = true
	svc.mu.Unlock()
	svc.ckptWG.Wait()
}

// restoreService opens the store directory and restores a service over
// it, failing the test on any error.
func restoreService(t *testing.T, dir string, seed *Seed, sopts store.Options) *Service {
	t.Helper()
	st, rec, err := store.Open(dir, sopts)
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	svc, err := Restore(st, rec, seed, durableOpts())
	if err != nil {
		t.Fatalf("restoring service: %v", err)
	}
	return svc
}

// graphText renders a published graph deterministically for comparison.
func graphText(t *testing.T, g *datalink.Graph) string {
	t.Helper()
	var b strings.Builder
	if err := datalink.WriteNTriples(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// serviceFingerprint captures everything the equivalence tests compare:
// both graphs, the rule set response, and the top-k link response over
// the full corpus.
func serviceFingerprint(t *testing.T, s *Service) (ext, loc, rules, links string) {
	t.Helper()
	qs := s.state.Load()
	ext = graphText(t, qs.se)
	loc = graphText(t, qs.sl)
	h := s.Handler()
	rr := call(t, h, http.MethodGet, "/v1/rules", nil, nil)
	rules = rr.Body.String()
	lr := call(t, h, http.MethodPost, "/v1/link", map[string]any{"top_k": 3}, nil)
	links = lr.Body.String()
	return
}

// mutation is one scripted service mutation, applied over HTTP so both
// the live and the durable service take the exact handler path.
type mutation struct {
	path string
	body map[string]any
	// raw, when non-empty, is sent verbatim with contentType instead of
	// JSON-marshaling body — for the streaming bulk endpoint.
	raw         string
	contentType string
}

// randomMutations scripts n random upserts, removals and learns over the
// corpus's item space.
func randomMutations(rng *rand.Rand, n int) []mutation {
	var muts []mutation
	id := func(side, kind string, i int) string {
		return fmt.Sprintf("http://ex.org/%s/%s%d", side, kind, i)
	}
	kinds := []struct {
		prefix, suffix, class string
	}{{"r", "RES", clsRes}, {"c", "CAP", clsCap}}
	for len(muts) < n {
		k := kinds[rng.Intn(2)]
		i := rng.Intn(26) // hits existing items and creates new ones
		switch rng.Intn(5) {
		case 0, 1: // upsert external
			muts = append(muts, mutation{path: "/v1/items/upsert", body: map[string]any{
				"side": "external",
				"items": []map[string]any{{
					"id":         id("e", k.prefix, i),
					"properties": map[string][]string{pnProp: {fmt.Sprintf("%s-%04d-%c", k.suffix, i, 'A'+rng.Intn(26))}},
				}},
			}})
		case 2: // upsert local (with class)
			muts = append(muts, mutation{path: "/v1/items/upsert", body: map[string]any{
				"side": "local",
				"items": []map[string]any{{
					"id":         id("l", k.prefix, i),
					"properties": map[string][]string{pnProp: {fmt.Sprintf("%s-%04d-%c", k.suffix, i, 'A'+rng.Intn(26))}},
					"classes":    []string{k.class},
				}},
			}})
		case 3: // remove (either side)
			side, sid := "external", "e"
			if rng.Intn(2) == 0 {
				side, sid = "local", "l"
			}
			muts = append(muts, mutation{path: "/v1/items/remove", body: map[string]any{
				"side": side,
				"ids":  []string{id(sid, k.prefix, rng.Intn(26))},
			}})
		case 4: // learn a few more links
			var ls []map[string]any
			for j := 0; j < 1+rng.Intn(3); j++ {
				x := rng.Intn(20)
				ls = append(ls, map[string]any{
					"external": id("e", k.prefix, x),
					"local":    id("l", k.prefix, x),
				})
			}
			muts = append(muts, mutation{path: "/v1/learn", body: map[string]any{"links": ls}})
		}
	}
	return muts
}

// applyMutation sends m to the handler; mutations may legitimately fail
// (e.g. learning over links whose endpoints were removed), but both
// services must fail identically, so the status code is returned.
func applyMutation(t *testing.T, h http.Handler, m mutation) int {
	t.Helper()
	if m.raw != "" {
		return rawCall(t, h, m.path, m.contentType, m.raw, nil).Code
	}
	rr := call(t, h, http.MethodPost, m.path, m.body, nil)
	return rr.Code
}

// TestCrashRecoveryEquivalence is the core durability property: a random
// interleaving of upserts, removals and learns applied to (a) a live
// ephemeral service and (b) a durable service that is "killed" (store
// abandoned without close, as SIGKILL would) and recovered from
// snapshot+WAL at a random cut point must leave both with identical
// graphs, rules and top-k link results.
func TestCrashRecoveryEquivalence(t *testing.T) {
	for round := 0; round < 4; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + round)))
			seed := corpusSeed(t)

			// Mirror: plain ephemeral service over an identical corpus.
			mirrorSeed := corpusSeed(t)
			mirror := New(mirrorSeed.External, mirrorSeed.Local, mirrorSeed.Ontology, durableOpts())
			if err := mirror.LearnLinks(mirrorSeed.Training); err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			// FsyncAlways: every acknowledged mutation is durable, so the
			// simulated SIGKILL (abandoning the store un-closed, buffers
			// and all) must lose nothing.
			sopts := store.Options{Fsync: store.FsyncAlways, SnapshotEvery: 7}
			durable := restoreService(t, dir, seed, sopts)

			muts := randomMutations(rng, 25)
			cut := rng.Intn(len(muts) + 1)
			for i, m := range muts {
				if i == cut {
					// Crash: no Close, no flush. Recover from disk alone.
					crash(durable)
					durable = restoreService(t, dir, nil, sopts)
				}
				mc := applyMutation(t, mirror.Handler(), m)
				dc := applyMutation(t, durable.Handler(), m)
				if mc != dc {
					t.Fatalf("mutation %d (%s): mirror=%d durable=%d", i, m.path, mc, dc)
				}
			}
			// One more recovery after the full script, covering a crash at
			// the very end (cut == len(muts) covers pre-traffic recovery).
			crash(durable)
			durable = restoreService(t, dir, nil, sopts)

			me, ml, mr, mk := serviceFingerprint(t, mirror)
			de, dl, dr, dk := serviceFingerprint(t, durable)
			if me != de {
				t.Errorf("external graphs diverged after recovery (round %d)", round)
			}
			if ml != dl {
				t.Errorf("local graphs diverged after recovery (round %d)", round)
			}
			if mr != dr {
				t.Errorf("rules diverged after recovery (round %d):\nmirror:  %s\ndurable: %s", round, mr, dr)
			}
			if mk != dk {
				t.Errorf("link results diverged after recovery (round %d):\nmirror:  %s\ndurable: %s", round, mk, dk)
			}
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRestoreFromSeedAndReopen is the plain happy path: boot from seed,
// mutate, close cleanly, reopen without a seed, answer identically.
func TestRestoreFromSeedAndReopen(t *testing.T) {
	dir := t.TempDir()
	sopts := store.Options{Fsync: store.FsyncNever}
	svc := restoreService(t, dir, corpusSeed(t), sopts)

	if code := applyMutation(t, svc.Handler(), mutation{path: "/v1/items/upsert", body: map[string]any{
		"side": "external",
		"items": []map[string]any{{
			"id":         "http://ex.org/e/new1",
			"properties": map[string][]string{pnProp: {"RES-0003-Q"}},
		}},
	}}); code != http.StatusOK {
		t.Fatalf("upsert: %d", code)
	}
	e1, l1, r1, k1 := serviceFingerprint(t, svc)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := restoreService(t, dir, nil, sopts)
	defer svc2.Close()
	e2, l2, r2, k2 := serviceFingerprint(t, svc2)
	if e1 != e2 || l1 != l2 || r1 != r2 || k1 != k2 {
		t.Error("state diverged across clean close + reopen")
	}

	// The persisted rules text must match what the recovered model
	// relearns — the snapshot's copy is the ground truth for audits.
	st := svc2.Store()
	stats := st.Stats()
	if stats.LastSnapshotSeq == 0 && stats.Seq > 0 {
		t.Errorf("no snapshot written: %+v", stats)
	}
}

// TestRecoveryPreservesModelAcrossPostLearnMutations pins the learn-
// basis invariant: item mutations after the last learn change the
// graphs (and purge training links) without relearning, so a recovery
// whose snapshot was taken after those mutations must NOT relearn over
// the checkpoint state — it must reproduce the model as of the learn.
func TestRecoveryPreservesModelAcrossPostLearnMutations(t *testing.T) {
	mirror := New(corpusSeed(t).External, corpusSeed(t).Local, corpusSeed(t).Ontology, durableOpts())
	if err := mirror.LearnLinks(corpusSeed(t).Training); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	svc := restoreService(t, dir, corpusSeed(t), store.Options{Fsync: store.FsyncAlways, SnapshotEvery: -1})

	// Post-learn mutations on both: remove a linked local item (purges a
	// training link) and add a fresh external item. Neither relearns.
	muts := []mutation{
		{path: "/v1/items/remove", body: map[string]any{"side": "local", "ids": []string{"http://ex.org/l/r1"}}},
		{path: "/v1/items/upsert", body: map[string]any{"side": "external", "items": []map[string]any{{
			"id": "http://ex.org/e/extra", "properties": map[string][]string{pnProp: {"CAP-0099-Z"}},
		}}}},
	}
	for _, m := range muts {
		if mc, dc := applyMutation(t, mirror.Handler(), m), applyMutation(t, svc.Handler(), m); mc != dc || mc != http.StatusOK {
			t.Fatalf("%s: mirror=%d durable=%d", m.path, mc, dc)
		}
	}
	// Checkpoint AFTER the post-learn mutations, then crash: recovery
	// sees only this snapshot (no WAL tail with the learn in it).
	if _, err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(svc)

	recovered := restoreService(t, dir, nil, store.Options{Fsync: store.FsyncAlways, SnapshotEvery: -1})
	defer recovered.Close()
	me, ml, mr, mk := serviceFingerprint(t, mirror)
	de, dl, dr, dk := serviceFingerprint(t, recovered)
	if me != de || ml != dl {
		t.Error("graphs diverged after recovery")
	}
	if mr != dr {
		t.Errorf("rules diverged: recovery relearned over post-learn state\nmirror:  %s\ndurable: %s", mr, dr)
	}
	if mk != dk {
		t.Errorf("link results diverged:\nmirror:  %s\ndurable: %s", mk, dk)
	}
}

// TestRestoreAdoptsPersistedLinker proves a recovered deployment keeps
// its comparator config when the caller supplies none.
func TestRestoreAdoptsPersistedLinker(t *testing.T) {
	dir := t.TempDir()
	sopts := store.Options{Fsync: store.FsyncNever}
	svc := restoreService(t, dir, corpusSeed(t), sopts)
	want := call(t, svc.Handler(), http.MethodPost, "/v1/link", map[string]any{"top_k": 2}, nil).Body.String()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	st, rec, err := store.Open(dir, sopts)
	if err != nil {
		t.Fatal(err)
	}
	// No DefaultLinker in the options: it must come from the snapshot.
	svc2, err := Restore(st, rec, nil, Options{Learner: datalink.LearnerConfig{SupportThreshold: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	got := call(t, svc2.Handler(), http.MethodPost, "/v1/link", map[string]any{"top_k": 2}, nil)
	if got.Code != http.StatusOK {
		t.Fatalf("link after restore without linker config: %d %s", got.Code, got.Body.String())
	}
	if got.Body.String() != want {
		t.Errorf("adopted linker answers differently:\nwant %s\ngot  %s", want, got.Body.String())
	}
}

// TestRestoreAdoptsPersistedLearner proves a restart with default flags
// relearns with the learner config the model was built with, not this
// process's defaults — otherwise the recovered rules silently differ.
func TestRestoreAdoptsPersistedLearner(t *testing.T) {
	dir := t.TempDir()
	sopts := store.Options{Fsync: store.FsyncNever}
	svc := restoreService(t, dir, corpusSeed(t), sopts) // th = 0.01 via durableOpts
	wantRules := call(t, svc.Handler(), http.MethodGet, "/v1/rules", nil, nil).Body.String()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	st, rec, err := store.Open(dir, sopts)
	if err != nil {
		t.Fatal(err)
	}
	// Completely empty options: learner AND linker must come from the
	// snapshot.
	svc2, err := Restore(st, rec, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	gotRules := call(t, svc2.Handler(), http.MethodGet, "/v1/rules", nil, nil).Body.String()
	if gotRules != wantRules {
		t.Errorf("recovered rules differ under default learner config:\nwant %s\ngot  %s", wantRules, gotRules)
	}
}

// TestAdminSnapshotEndpoint forces checkpoints over HTTP and reads the
// durability stats back from /v1/status.
func TestAdminSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	svc := restoreService(t, dir, corpusSeed(t), store.Options{Fsync: store.FsyncNever, SnapshotEvery: -1})
	defer svc.Close()
	h := svc.Handler()

	applyMutation(t, h, mutation{path: "/v1/items/remove", body: map[string]any{
		"side": "external", "ids": []string{"http://ex.org/e/r0"},
	}})

	var snapResp snapshotResponse
	rr := call(t, h, http.MethodPost, "/v1/admin/snapshot", nil, &snapResp)
	if rr.Code != http.StatusOK {
		t.Fatalf("admin snapshot: %d %s", rr.Code, rr.Body.String())
	}
	if snapResp.SnapshotSeq == 0 {
		t.Errorf("snapshot covered seq 0 after a mutation: %+v", snapResp)
	}

	var status statusResponse
	call(t, h, http.MethodGet, "/v1/status", nil, &status)
	if status.Durability == nil {
		t.Fatal("durable service reports no durability stats")
	}
	if status.Durability.WALRecords != 0 {
		t.Errorf("wal_records = %d right after checkpoint", status.Durability.WALRecords)
	}
	if status.Durability.LastSnapshotSeq != snapResp.SnapshotSeq {
		t.Errorf("status snapshot seq %d != admin response %d",
			status.Durability.LastSnapshotSeq, snapResp.SnapshotSeq)
	}
	if status.Durability.Dir != dir {
		t.Errorf("durability dir %q, want %q", status.Durability.Dir, dir)
	}
}

// TestAdminSnapshotEphemeral409 pins the conflict answer for services
// without a store.
func TestAdminSnapshotEphemeral409(t *testing.T) {
	svc := corpusService(t)
	rr := call(t, svc.Handler(), http.MethodPost, "/v1/admin/snapshot", nil, nil)
	if rr.Code != http.StatusConflict {
		t.Fatalf("admin snapshot on ephemeral service: %d, want 409", rr.Code)
	}
	var status statusResponse
	call(t, svc.Handler(), http.MethodGet, "/v1/status", nil, &status)
	if status.Durability != nil {
		t.Error("ephemeral service reports durability stats")
	}
}

// TestOversizedBodyRejected413 pins the MaxBytesReader behavior: a body
// over the configured cap answers 413 without reading it all.
func TestOversizedBodyRejected413(t *testing.T) {
	seed := corpusSeed(t)
	opts := durableOpts()
	opts.MaxBodyBytes = 1024
	svc := New(seed.External, seed.Local, seed.Ontology, opts)

	big := strings.Repeat("x", 4096)
	rr := call(t, svc.Handler(), http.MethodPost, "/v1/items/upsert", map[string]any{
		"side": "external",
		"items": []map[string]any{{
			"id":         "http://ex.org/e/huge",
			"properties": map[string][]string{pnProp: {big}},
		}},
	}, nil)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413 (%s)", rr.Code, rr.Body.String())
	}
	// Nothing may have been applied.
	var status statusResponse
	call(t, svc.Handler(), http.MethodGet, "/v1/status", nil, &status)
	if status.ExternalVersion != seed.External.Version() {
		t.Error("oversized request mutated the graph")
	}
}

// TestAutomaticCheckpoint proves SnapshotEvery triggers checkpoints from
// the mutation path without any admin call.
func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	svc := restoreService(t, dir, corpusSeed(t), store.Options{Fsync: store.FsyncNever, SnapshotEvery: 3})
	defer svc.Close()
	h := svc.Handler()
	for i := 0; i < 12; i++ {
		code := applyMutation(t, h, mutation{path: "/v1/items/upsert", body: map[string]any{
			"side": "external",
			"items": []map[string]any{{
				"id":         fmt.Sprintf("http://ex.org/e/auto%d", i),
				"properties": map[string][]string{pnProp: {fmt.Sprintf("RES-%04d-A", i)}},
			}},
		}})
		if code != http.StatusOK {
			t.Fatalf("upsert %d: %d", i, code)
		}
	}
	// Checkpoints run in the background; Close waits for the in-flight
	// one, which is exactly the synchronization a shutdown needs too.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	stats := svc.Store().Stats()
	if stats.Checkpoints < 2 {
		t.Errorf("expected automatic checkpoints, got stats %+v", stats)
	}
	if got := svc.lastCheckpointError(); got != "" {
		t.Errorf("checkpoint error: %s", got)
	}
}
