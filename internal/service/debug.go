package service

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// GET /debug/requests: the flight recorder's query endpoint. Returns
// the retained request records (newest first) with their stage-level
// trace breakdowns, plus the recorder's configuration and retention
// counters. Mounted only with Options.DebugRequests, inside the
// resilience wrap — auth, rate limiting and admission control gate it
// exactly like pprof.
//
// Filters (query parameters):
//
//	min_ms=N   keep records that took at least N milliseconds
//	status=S   exact code ("404"), class ("4xx", "5xx"), or "error"
//	path=P     exact request path
//	n=N        cap the result count (default 100)

// debugRequestJSON is the wire form of one retained request record.
type debugRequestJSON struct {
	ID         string      `json:"id"`
	Method     string      `json:"method"`
	Path       string      `json:"path"`
	Status     int         `json:"status"`
	Reason     string      `json:"reason,omitempty"`
	Client     string      `json:"client"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Bytes      int64       `json:"bytes"`
	Kind       string      `json:"kind"`
	Stages     []stageJSON `json:"stages,omitempty"`
}

// debugConfigJSON reports the recorder's effective configuration.
type debugConfigJSON struct {
	Capacity     int     `json:"capacity"`
	SlowCapacity int     `json:"slow_capacity"`
	SlowMS       float64 `json:"slow_ms"`
	SampleRate   float64 `json:"sample_rate"`
}

type debugRequestsResponse struct {
	Config   debugConfigJSON    `json:"config"`
	Stats    obs.RecorderStats  `json:"stats"`
	Requests []debugRequestJSON `json:"requests"`
}

func (s *Service) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f obs.RecordFilter
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, "min_ms must be a non-negative number, got %q", v)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "n must be a positive integer, got %q", v)
			return
		}
		f.N = n
	}
	f.Status = q.Get("status")
	f.Path = q.Get("path")

	opts := s.flight.Options()
	resp := debugRequestsResponse{
		Config: debugConfigJSON{
			Capacity:     opts.Capacity,
			SlowCapacity: opts.SlowCapacity,
			SlowMS:       float64(opts.SlowThreshold) / float64(time.Millisecond),
			SampleRate:   opts.SampleRate,
		},
		Stats:    s.flight.Stats(),
		Requests: []debugRequestJSON{},
	}
	for _, rec := range s.flight.Snapshot(f) {
		out := debugRequestJSON{
			ID:         rec.ID,
			Method:     rec.Method,
			Path:       rec.Path,
			Status:     rec.Status,
			Reason:     rec.Reason,
			Client:     rec.Client,
			Start:      rec.Start,
			DurationMS: float64(rec.Duration) / float64(time.Millisecond),
			Bytes:      rec.Bytes,
			Kind:       string(rec.Kind),
		}
		for _, st := range rec.Stages {
			out.Stages = append(out.Stages, stageJSON{Stage: st.Name, Seconds: st.Duration.Seconds()})
		}
		resp.Requests = append(resp.Requests, out)
	}
	writeJSON(w, http.StatusOK, resp)
}
