package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	datalink "repro"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Streaming bulk ingest: POST /v1/items/bulk reads an arbitrarily large
// NDJSON or N-Triples body in bounded memory, chunks it into batches of
// Options.BulkBatch items, and commits each chunk as ONE batched WAL
// record — one CRC frame, one fsync, one index-lock round trip and one
// published COW bundle per chunk instead of per item. Malformed lines
// are skipped and reported per line (capped), so one bad record in a
// million-line load does not abort the other 999999.

// defaultBulkBatch is the chunk size when Options.BulkBatch is unset.
const defaultBulkBatch = 1000

// maxBulkErrorReport caps the per-line error report; errors beyond the
// cap are still counted in Errors.
const maxBulkErrorReport = 100

// Bulk body formats.
const (
	// BulkNDJSON is newline-delimited JSON: one itemSpec per line, plus
	// an optional "remove": true marker to delete the item instead.
	BulkNDJSON = "ndjson"
	// BulkNTriples is streaming N-Triples: consecutive statements with
	// the same subject form one item (literal objects become property
	// values; rdf:type IRIs become classes, local side only).
	BulkNTriples = "ntriples"
)

// BulkLineError locates one skipped input line.
type BulkLineError struct {
	Line  int    `json:"line"`
	Error string `json:"error"`
}

// BulkReport summarizes a bulk ingest: progress (also on failure, since
// earlier chunks are already committed), the per-line error report, and
// the mutated graph's version after the last committed chunk.
type BulkReport struct {
	Upserted    int             `json:"upserted"`
	Removed     int             `json:"removed"`
	Batches     int             `json:"batches"`
	Errors      int             `json:"errors"`
	ErrorReport []BulkLineError `json:"error_report,omitempty"`
	Version     uint64          `json:"version"`
	PurgedLinks int             `json:"purged_links,omitempty"`
}

func (rep *BulkReport) addError(line int, msg string) {
	rep.Errors++
	if len(rep.ErrorReport) < maxBulkErrorReport {
		rep.ErrorReport = append(rep.ErrorReport, BulkLineError{Line: line, Error: msg})
	}
}

// bulkLine is the NDJSON wire form: an itemSpec plus the remove marker.
type bulkLine struct {
	ID         string              `json:"id"`
	Properties map[string][]string `json:"properties,omitempty"`
	Classes    []string            `json:"classes,omitempty"`
	// Remove deletes the item (and its training links) instead of
	// upserting it, so one stream can carry a mixed batch.
	Remove bool `json:"remove,omitempty"`
}

// bulkChunker accumulates validated sub-ops and commits them as batch
// records of at most `batch` items each. Consecutive same-kind items
// coalesce into one sub-op, preserving stream order across kind flips.
type bulkChunker struct {
	s       *Service
	ctx     context.Context
	side    store.Side
	batch   int
	entries []store.BatchEntry
	count   int
	rep     *BulkReport
}

func (c *bulkChunker) addUpsert(it store.Item) error {
	if n := len(c.entries); n > 0 && c.entries[n-1].Upsert != nil {
		c.entries[n-1].Upsert.Items = append(c.entries[n-1].Upsert.Items, it)
	} else {
		c.entries = append(c.entries, store.BatchEntry{
			Upsert: &store.UpsertOp{Side: c.side, Items: []store.Item{it}},
		})
	}
	return c.added()
}

func (c *bulkChunker) addRemove(id string) error {
	if n := len(c.entries); n > 0 && c.entries[n-1].Remove != nil {
		c.entries[n-1].Remove.IDs = append(c.entries[n-1].Remove.IDs, id)
	} else {
		c.entries = append(c.entries, store.BatchEntry{
			Remove: &store.RemoveOp{Side: c.side, IDs: []string{id}},
		})
	}
	return c.added()
}

func (c *bulkChunker) added() error {
	c.count++
	if c.count >= c.batch {
		return c.flush()
	}
	return nil
}

// flush commits the accumulated chunk as one batch record. The deadline
// is checked per chunk — a request that runs out of time fails between
// batches, never inside one, so progress is always a whole number of
// atomic batches.
func (c *bulkChunker) flush() error {
	if len(c.entries) == 0 {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	res, err := c.s.commit(c.ctx, &store.Record{
		Op:    store.OpBatch,
		Batch: &store.BatchOp{Ops: c.entries},
	})
	if err != nil {
		return err
	}
	c.rep.Upserted += res.upserted
	c.rep.Removed += res.removed
	c.rep.PurgedLinks += res.purged
	c.rep.Version = res.version
	c.rep.Batches++
	c.entries = nil
	c.count = 0
	return nil
}

// BulkIngest streams items from body into the corpus in batched
// commits. format is BulkNDJSON or BulkNTriples; batch <= 0 uses
// Options.BulkBatch (default 1000). The returned report is meaningful
// even when err != nil: chunks committed before the failure stay
// applied (each one atomically), and the report says how far the load
// got. Malformed lines are skipped, recorded per line, and do not abort
// the stream; I/O errors, commit failures and context expiry do.
func (s *Service) BulkIngest(ctx context.Context, body io.Reader, side datalink.Side, format string, batch int) (BulkReport, error) {
	if batch <= 0 {
		batch = s.opts.BulkBatch
	}
	if batch <= 0 {
		batch = defaultBulkBatch
	}
	var rep BulkReport
	c := &bulkChunker{s: s, ctx: ctx, side: sideToStore(side), batch: batch, rep: &rep}
	var err error
	switch format {
	case BulkNTriples:
		err = s.bulkNTriples(c, body, side)
	default:
		err = s.bulkNDJSON(c, body, side)
	}
	if err != nil {
		return rep, err
	}
	return rep, c.flush()
}

// bulkNDJSON reads one JSON item description per line.
func (s *Service) bulkNDJSON(c *bulkChunker, body io.Reader, side datalink.Side) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var spec bulkLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			c.rep.addError(line, fmt.Sprintf("decoding line: %v", err))
			continue
		}
		if dec.More() {
			c.rep.addError(line, "trailing data after JSON object")
			continue
		}
		if spec.ID == "" {
			c.rep.addError(line, "id is required")
			continue
		}
		if spec.Remove {
			if len(spec.Properties) > 0 || len(spec.Classes) > 0 {
				c.rep.addError(line, "remove lines must not carry properties or classes")
				continue
			}
			if err := c.addRemove(spec.ID); err != nil {
				return err
			}
			continue
		}
		if err := validateItem(side, datalink.NewIRI(spec.ID), spec.Properties, spec.Classes); err != nil {
			c.rep.addError(line, err.Error())
			continue
		}
		if err := c.addUpsert(store.Item{ID: spec.ID, Props: spec.Properties, Classes: spec.Classes}); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	return nil
}

// bulkNTriples reads streaming N-Triples, grouping consecutive
// statements by subject into items. Statements for one item must be
// contiguous (sorted N-Triples, as datagen and WriteNTriples emit, are)
// — a subject reappearing later in the stream re-upserts the item,
// REPLACING its earlier description. Literal objects become property
// values (language tags and datatypes are dropped: items store plain
// literals); rdf:type with an IRI object becomes a class. Anything else
// is a per-line error.
func (s *Service) bulkNTriples(c *bulkChunker, body io.Reader, side datalink.Side) error {
	nr := rdf.NewNTriplesReader(body)
	var cur *store.Item
	curLine := 0
	finish := func() error {
		if cur == nil {
			return nil
		}
		it := *cur
		cur = nil
		if err := validateItem(side, datalink.NewIRI(it.ID), it.Props, it.Classes); err != nil {
			c.rep.addError(curLine, err.Error())
			return nil
		}
		return c.addUpsert(it)
	}
	for {
		t, err := nr.Next()
		if err == io.EOF {
			break
		}
		var perr *rdf.ParseError
		if errors.As(err, &perr) {
			c.rep.addError(perr.Line, perr.Msg)
			continue
		}
		if err != nil {
			return fmt.Errorf("reading body: %w", err)
		}
		if t.S.Kind != rdf.IRIKind {
			c.rep.addError(nr.Line(), "subject must be an IRI")
			continue
		}
		if cur == nil || cur.ID != t.S.Value {
			if err := finish(); err != nil {
				return err
			}
			cur = &store.Item{ID: t.S.Value}
			curLine = nr.Line()
		}
		switch {
		case t.P.Value == rdf.RDFType && t.O.Kind == rdf.IRIKind:
			cur.Classes = append(cur.Classes, t.O.Value)
		case t.O.Kind == rdf.LiteralKind:
			if cur.Props == nil {
				cur.Props = make(map[string][]string, 4)
			}
			cur.Props[t.P.Value] = append(cur.Props[t.P.Value], t.O.Value)
		default:
			c.rep.addError(nr.Line(), "object must be a literal (or an IRI for rdf:type)")
		}
	}
	return finish()
}

// bulkFormat maps a Content-Type header to a bulk body format. NDJSON
// is the default; N-Triples bodies declare application/n-triples.
func bulkFormat(contentType string) string {
	mt, _, _ := strings.Cut(contentType, ";")
	if strings.TrimSpace(strings.ToLower(mt)) == "application/n-triples" {
		return BulkNTriples
	}
	return BulkNDJSON
}

// bulkErrorResponse is the failure envelope of a bulk ingest: the usual
// error fields plus the progress report, because chunks committed
// before the failure stay applied.
type bulkErrorResponse struct {
	errorBody
	BulkReport
}

// handleBulk is the streaming endpoint. Unlike the JSON handlers it
// reads the request body directly — no MaxBytesReader, no buffering —
// so admission control, authentication and the request deadline apply
// once per request while the body itself may be gigabytes.
func (s *Service) handleBulk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	side, err := parseSide(q.Get("side"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := 0
	if v := q.Get("batch"); v != "" {
		batch, err = strconv.Atoi(v)
		if err != nil || batch <= 0 {
			writeErr(w, http.StatusBadRequest, "batch must be a positive integer, got %q", v)
			return
		}
	}
	rep, err := s.BulkIngest(r.Context(), r.Body, side, bulkFormat(r.Header.Get("Content-Type")), batch)
	if err != nil {
		code, reason := http.StatusBadRequest, ""
		switch {
		case errors.Is(err, errDegraded):
			code, reason = http.StatusServiceUnavailable, reasonDegraded
		case errors.Is(err, errPersist):
			code, reason = http.StatusServiceUnavailable, reasonPersist
		case errors.Is(err, context.DeadlineExceeded):
			code, reason = http.StatusServiceUnavailable, reasonTimeout
			s.res.timeouts.Inc()
			retryAfterHeader(w, s.res.opts.RetryAfter)
		case errors.Is(err, context.Canceled):
			code = 499 // client closed request
		}
		if reason != "" {
			if rw, ok := w.(interface{ setReason(string) }); ok {
				rw.setReason(reason)
			}
		}
		writeJSON(w, code, bulkErrorResponse{
			errorBody: errorBody{
				Error:     err.Error(),
				Reason:    reason,
				RequestID: w.Header().Get("X-Request-ID"),
			},
			BulkReport: rep,
		})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
