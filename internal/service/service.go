// Package service exposes the linking pipeline as a long-lived HTTP/JSON
// service: load and mutate item descriptions, learn classification rules
// from labeled links, and query top-k links inside the rule-reduced
// space — without ever rebuilding the matcher's value index from scratch
// between requests.
//
// # Snapshot-isolated queries
//
// The service owns the external graph (SE), the local catalog (SL) and
// the ontology, but queries never touch them. Every mutation (item
// upsert/remove, learn) briefly takes the service's write mutex, applies
// the change, pushes it into the cached linkage engine and the instance
// index incrementally (per item — no full re-scan of either), and then
// publishes an immutable query state: copy-on-write snapshots of both
// graphs plus a frozen instance index, swapped in through one atomic
// pointer. Link, status and rules requests load that pointer and run
// entirely against the frozen state, so no service-level lock is held
// while scoring runs — a slow link query can never delay a concurrent
// upsert. Writes stay bounded-latency under any query load: they wait on
// the engine's internal lock for at most one in-flight scoring batch.
//
// The isolation contract: classification, candidate expansion and every
// graph read observe the pre-mutation snapshot end to end. Scoring
// prefers the shared live value index (kept current incrementally), so a
// mutation landing mid-query may be reflected in scores computed after
// it — but each pair's score is atomic under the engine's lock: it never
// mixes an item's old and new property values, which is what the
// race-mode torn-read test pins down.
//
// Link queries run under the request's context, so a dropped connection
// cancels in-flight scoring.
//
// # Durable mode
//
// A service built with Restore is bound to an internal/store durability
// directory: every mutation is appended to a CRC-framed write-ahead log
// before it is applied (one choke point, commit, shared by HTTP
// handlers, LearnLinks and recovery replay), and checkpoints serialize
// the published copy-on-write bundle into binary snapshots without
// blocking writers. A restarted process replays snapshot + WAL tail and
// answers queries exactly as the old one did; see durable.go and
// internal/store.
//
// # Endpoints
//
//	GET  /healthz            liveness probe
//	GET  /v1/status          corpus sizes, versions, model and durability state
//	POST /v1/items/upsert    replace item descriptions on one side
//	POST /v1/items/remove    remove items (and their training links) on one side
//	POST /v1/items/bulk      streaming bulk ingest (NDJSON or N-Triples body,
//	                         chunked into batched WAL records; see bulk.go)
//	POST /v1/learn           learn rules from labeled same-as links
//	GET  /v1/rules           the learned rule set
//	POST /v1/link            top-k links for items, in their reduced space
//	POST /v1/admin/snapshot  force a durability checkpoint
//
// See examples/service for a runnable walkthrough.
package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	datalink "repro"
	"repro/internal/obs"
	"repro/internal/store"
)

// Options configures a Service.
type Options struct {
	// Learner parameterizes rule learning; the zero value is the paper's
	// defaults.
	Learner datalink.LearnerConfig
	// DefaultLinker is used by link requests that do not carry their own
	// comparators. Leaving it zero makes comparators mandatory per
	// request.
	DefaultLinker datalink.LinkerConfig
	// MaxBodyBytes caps request bodies; 0 means 8 MiB. The streaming
	// bulk endpoint is exempt — it never buffers the body.
	MaxBodyBytes int64
	// BulkBatch is how many items POST /v1/items/bulk commits per
	// batched WAL record; 0 means 1000. A request's ?batch= parameter
	// overrides it.
	BulkBatch int
	// Resilience configures the overload-protection middleware (panic
	// recovery, admission control, rate limiting, request deadlines); the
	// zero value applies no limits. See resilience.go.
	Resilience ResilienceOptions
	// Metrics is the registry the service registers its instruments on
	// and serves at GET /metrics; nil means a fresh private registry.
	// Share one registry between the service and its store
	// (store.NewMetrics) for a single scrape endpoint — but never
	// between two services, which would collide on metric names.
	Metrics *obs.Registry
	// AccessLog, when set, receives one structured line per request
	// (method, path, status, duration, hashed client key, request ID).
	AccessLog *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/, inside the
	// resilience wrap — so auth, rate limiting and admission control
	// gate the profiler exactly like any API endpoint.
	EnablePprof bool
	// Recorder configures the flight recorder every completed request is
	// offered to (see obs.RecorderOptions); the zero value keeps slow and
	// error records with default ring sizes and samples no fast traffic.
	Recorder obs.RecorderOptions
	// DebugRequests mounts GET /debug/requests — the flight recorder's
	// query endpoint — inside the resilience wrap, gated like pprof.
	DebugRequests bool
}

// Service is the shared state behind the HTTP API. Mutations (items,
// learn) serialize on mu, apply their change to the live graphs and
// pipeline, and publish a new immutable queryState. Queries load the
// current queryState from the atomic pointer and never take mu, so
// scoring runs with no service-level lock held.
type Service struct {
	opts Options

	// mu serializes writers only. The live graphs and pipeline may only
	// be touched under it.
	mu    sync.Mutex
	se    *datalink.Graph
	sl    *datalink.Graph
	ol    *datalink.Ontology
	links []datalink.Link
	pipe  *datalink.Pipeline
	// basis captures exactly what the current model was learned from
	// (O(1) frozen graph views + the links of that learn). Item
	// mutations after a learn change the graphs and can purge links
	// without relearning, so the basis — not the current state — is what
	// durable recovery must relearn over to reproduce the model.
	basis *learnBasis

	// state is the published immutable view every query runs against.
	// Writers replace it wholesale after each mutation.
	state atomic.Pointer[queryState]

	// st is the durability store; nil means ephemeral mode. When set,
	// every mutation is WAL-logged through commit before it is applied
	// (see durable.go), and checkpoints snapshot the published state.
	st       *store.Store
	ckptBusy atomic.Bool
	ckptWG   sync.WaitGroup
	ckptErr  atomic.Value // string: last checkpoint failure, "" = ok
	// closing stops new background checkpoints from being spawned (set
	// under mu by Close before it waits on ckptWG, so the wait cannot
	// race a concurrent Add).
	closing bool

	// res is the overload-protection middleware state (see
	// resilience.go); always non-nil.
	res *resilience

	// reg/met are the metrics registry and the service instrument set
	// (see metrics.go); always non-nil.
	reg *obs.Registry
	met *serviceMetrics

	// flight retains recent request records with tail-based retention
	// (slow and error requests always survive); always non-nil.
	flight *obs.FlightRecorder
}

// queryState is one published point-in-time view: frozen copy-on-write
// graph snapshots, the pipeline (for its immutable model) and a frozen
// QueryView, all safe for unsynchronized concurrent reads. pipe and view
// are nil until a model has been learned.
type queryState struct {
	se, sl *datalink.Graph
	pipe   *datalink.Pipeline
	view   *datalink.QueryView
	links  int
}

// New builds a service over the given graphs and ontology; nil arguments
// start empty. The graphs must not be mutated behind the service's back
// afterwards.
func New(se, sl *datalink.Graph, ol *datalink.Ontology, opts Options) *Service {
	if se == nil {
		se = datalink.NewGraph()
	}
	if sl == nil {
		sl = datalink.NewGraph()
	}
	if ol == nil {
		ol = datalink.NewOntology()
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	s := &Service{opts: opts, se: se, sl: sl, ol: ol}
	s.reg = opts.Metrics
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.met = newServiceMetrics(s.reg)
	s.flight = obs.NewFlightRecorder(opts.Recorder)
	s.registerFlightMetrics()
	obs.RegisterRuntime(s.reg)
	s.res = newResilience(opts.Resilience, s.met, opts.AccessLog)
	s.res.flight = s.flight
	s.publishLocked(context.Background())
	return s
}

// Flight returns the service's flight recorder, for embedding callers
// that want to query retained requests programmatically.
func (s *Service) Flight() *obs.FlightRecorder { return s.flight }

// Metrics returns the registry behind GET /metrics, for embedding
// callers that scrape or extend it programmatically.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// timeStage times one write-path stage. With a trace in the context the
// stage becomes a span — landing in the request's trace, the flight
// recorder AND (via the trace sink) the stage histogram; without one it
// observes the histogram directly. Exactly one histogram observation
// either way.
func (s *Service) timeStage(ctx context.Context, name string) func() {
	if obs.TraceFrom(ctx) != nil {
		sp := obs.StartSpan(ctx, name)
		return sp.End
	}
	t0 := time.Now()
	return func() { s.met.stages.With(name).ObserveSince(t0) }
}

// publishLocked snapshots the live state into a fresh queryState and
// swaps it in for queries. O(1): graph and instance-index snapshots are
// copy-on-write, and unchanged graphs reuse their cached snapshot.
// Callers must hold the write lock (or be the constructor).
func (s *Service) publishLocked(ctx context.Context) {
	done := s.timeStage(ctx, "publish")
	qs := &queryState{
		se:    s.se.Snapshot(),
		sl:    s.sl.Snapshot(),
		links: len(s.links),
	}
	if s.pipe != nil {
		qs.pipe = s.pipe
		qs.view = s.pipe.Snapshot()
	}
	s.state.Store(qs)
	done()
}

// LearnLinks appends labeled links and relearns the model — the
// programmatic equivalent of POST /v1/learn, for seeding a service with
// an existing training set at startup. Like every mutation it flows
// through the logged choke point, so in durable mode the links survive a
// restart.
func (s *Service) LearnLinks(links []datalink.Link) error {
	refs := make([]store.LinkRef, 0, len(links))
	for _, l := range links {
		refs = append(refs, refFromLink(l))
	}
	_, err := s.commit(context.Background(), &store.Record{Op: store.OpLearn, Learn: &store.LearnOp{Links: refs}})
	return err
}

// learnBasis is the frozen input of one successful learn: copy-on-write
// graph views and the training links at that moment. Slice elements are
// values and every mutation path replaces s.links wholesale, so holding
// the slice is safe.
type learnBasis struct {
	se, sl *datalink.Graph
	links  []datalink.Link
}

// Learn (re)learns the model from the accumulated links, swaps in a
// fresh pipeline, and warms its caches so queries against the next
// published state never read live data. Callers must hold the write
// lock and publish afterwards.
func (s *Service) learnLocked(ctx context.Context) error {
	return s.learnBasisLocked(ctx, &learnBasis{se: s.se.Snapshot(), sl: s.sl.Snapshot(), links: s.links})
}

// learnBasisLocked learns the model from an explicit basis — the live
// state for ordinary learns, a snapshot's persisted basis for durable
// recovery — and installs a pipeline over the live graphs. Learning is
// deterministic in the basis, so equal bases yield equal models. On
// failure the previous model and basis stay in place. Callers must hold
// the write lock.
func (s *Service) learnBasisLocked(ctx context.Context, b *learnBasis) error {
	done := s.timeStage(ctx, "learn")
	ts := datalink.TrainingSet{Links: append([]datalink.Link(nil), b.links...)}
	m, err := datalink.LearnCtx(ctx, s.opts.Learner, ts, b.se, b.sl, s.ol)
	if err != nil {
		return err
	}
	done()
	s.pipe = datalink.NewPipelineWithModel(m, s.se, s.sl, s.ol)
	s.basis = b
	s.freezeInstancesLocked()
	// Warm the engine cache for the default comparators on the write
	// path, so default-config queries hit CachedLinker instead of
	// compiling a value index per request. An invalid default config is
	// surfaced on the first query that relies on it, not here.
	if len(s.opts.DefaultLinker.Comparators) > 0 {
		_ = s.pipe.EnsureLinker(s.opts.DefaultLinker)
	}
	return nil
}

// freezeInstancesLocked warms the instance index memo for every rule
// class, so the frozen snapshots published to queries answer from the
// memo instead of recomputing instance unions per request. Incremental
// upserts invalidate only the entries they affect, so re-warming after a
// mutation touches just those.
func (s *Service) freezeInstancesLocked() {
	if s.pipe == nil {
		return
	}
	classes := make([]datalink.Term, 0, s.pipe.Model.Rules.Len())
	for _, r := range s.pipe.Model.Rules.Rules {
		classes = append(classes, r.Class)
	}
	s.pipe.Instances.Freeze(classes)
}

// validateItem rejects malformed item descriptions. Run before any graph
// mutation, so a 400 response guarantees nothing was changed.
func validateItem(side datalink.Side, item datalink.Term, props map[string][]string, classes []string) error {
	for prop := range props {
		if prop == "" {
			return fmt.Errorf("item %s: empty property IRI", item.Value)
		}
	}
	if side != datalink.LocalSide && len(classes) > 0 {
		return fmt.Errorf("item %s: classes are only accepted on the local side", item.Value)
	}
	for _, c := range classes {
		if c == "" {
			return fmt.Errorf("item %s: empty class IRI", item.Value)
		}
	}
	return nil
}

// replaceItemLocked swaps an item's triples for the given (already
// validated) description on one side of the corpus. It is only ever
// reached from applyLocked — the logged-mutation choke point — so every
// path that calls it (HTTP upsert, recovery replay) hits the same code.
// Callers must hold the write lock.
func (s *Service) replaceItemLocked(side datalink.Side, item datalink.Term, props map[string][]string, classes []string) {
	g := s.graphLocked(side)
	for _, tr := range g.Find(item, datalink.Term{}, datalink.Term{}) {
		g.Remove(tr)
	}
	for prop, vals := range props {
		p := datalink.NewIRI(prop)
		for _, v := range vals {
			g.Add(datalink.T(item, p, datalink.NewLiteral(v)))
		}
	}
	if side == datalink.LocalSide {
		for _, c := range classes {
			g.Add(datalink.T(item, datalink.RDFType, datalink.NewIRI(c)))
		}
	}
}

// Handler returns the service's HTTP API, wrapped in the
// overload-protection middleware (panic recovery, authentication, rate
// limiting, admission control, per-request deadlines — resilience.go).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/items/upsert", s.handleUpsert)
	mux.HandleFunc("POST /v1/items/remove", s.handleRemove)
	mux.HandleFunc("POST /v1/items/bulk", s.handleBulk)
	mux.HandleFunc("POST /v1/learn", s.handleLearn)
	mux.HandleFunc("GET /v1/rules", s.handleRules)
	mux.HandleFunc("POST /v1/link", s.handleLink)
	mux.HandleFunc("POST /v1/admin/snapshot", s.handleAdminSnapshot)
	mux.Handle("GET /metrics", s.reg)
	if s.opts.DebugRequests {
		// Like pprof: inside the resilience wrap, so auth and the other
		// limits gate the flight recorder's query endpoint.
		mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	}
	if s.opts.EnablePprof {
		// Registered inside the mux, so the resilience wrap outside it
		// (auth, rate limiting, admission) gates the profiler; only
		// /healthz bypasses those checks.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.res.wrap(mux)
}
