// Package service exposes the linking pipeline as a long-lived HTTP/JSON
// service: load and mutate item descriptions, learn classification rules
// from labeled links, and query top-k links inside the rule-reduced
// space — without ever rebuilding the matcher's value index from scratch
// between requests.
//
// The service owns the external graph (SE), the local catalog (SL) and
// the ontology. Item mutations go through the graphs and are pushed into
// the cached linkage engine incrementally (Pipeline.Upsert/RemoveItems),
// so the matcher's value index is never rebuilt between requests:
// external-side updates cost O(item); local-side updates additionally
// refresh the instance index (one pass over the catalog's rdf:type
// triples — cheap next to the value index, but not yet per-item). Link
// queries run under the request's context, so a dropped connection
// cancels in-flight scoring.
//
// # Endpoints
//
//	GET  /healthz           liveness probe
//	GET  /v1/status         corpus sizes, versions, model state
//	POST /v1/items/upsert   replace item descriptions on one side
//	POST /v1/items/remove   remove items from one side
//	POST /v1/learn          learn rules from labeled same-as links
//	GET  /v1/rules          the learned rule set
//	POST /v1/link           top-k links for items, in their reduced space
//
// See examples/service for a runnable walkthrough.
package service

import (
	"fmt"
	"net/http"
	"sync"

	datalink "repro"
)

// Options configures a Service.
type Options struct {
	// Learner parameterizes rule learning; the zero value is the paper's
	// defaults.
	Learner datalink.LearnerConfig
	// DefaultLinker is used by link requests that do not carry their own
	// comparators. Leaving it zero makes comparators mandatory per
	// request.
	DefaultLinker datalink.LinkerConfig
	// MaxBodyBytes caps request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
}

// Service is the shared state behind the HTTP API. All handler access is
// guarded by mu: mutations (items, learn) take the write lock, queries
// (status, rules, link) the read lock. The linkage engine underneath has
// its own finer-grained locking, but the service-level lock is what
// keeps graph mutation — which rdf.Graph does not support concurrently —
// serialized against readers.
type Service struct {
	opts Options

	mu    sync.RWMutex
	se    *datalink.Graph
	sl    *datalink.Graph
	ol    *datalink.Ontology
	links []datalink.Link
	pipe  *datalink.Pipeline
}

// New builds a service over the given graphs and ontology; nil arguments
// start empty. The graphs must not be mutated behind the service's back
// afterwards.
func New(se, sl *datalink.Graph, ol *datalink.Ontology, opts Options) *Service {
	if se == nil {
		se = datalink.NewGraph()
	}
	if sl == nil {
		sl = datalink.NewGraph()
	}
	if ol == nil {
		ol = datalink.NewOntology()
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	return &Service{opts: opts, se: se, sl: sl, ol: ol}
}

// LearnLinks appends labeled links and relearns the model — the
// programmatic equivalent of POST /v1/learn, for seeding a service with
// an existing training set at startup.
func (s *Service) LearnLinks(links []datalink.Link) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.links = append(s.links, links...)
	return s.learnLocked()
}

// Learn (re)learns the model from the accumulated links and swaps in a
// fresh pipeline. Callers must hold the write lock.
func (s *Service) learnLocked() error {
	ts := datalink.TrainingSet{Links: append([]datalink.Link(nil), s.links...)}
	p, err := datalink.NewPipeline(s.opts.Learner, ts, s.se, s.sl, s.ol)
	if err != nil {
		return err
	}
	s.pipe = p
	s.freezeInstancesLocked()
	return nil
}

// freezeInstancesLocked warms the instance index for every rule class,
// so concurrent link queries only read the memo — the index memoizes
// lazily and is not safe for concurrent first-touch otherwise.
func (s *Service) freezeInstancesLocked() {
	if s.pipe == nil {
		return
	}
	classes := make([]datalink.Term, 0, s.pipe.Model.Rules.Len())
	for _, r := range s.pipe.Model.Rules.Rules {
		classes = append(classes, r.Class)
	}
	s.pipe.Instances.Freeze(classes)
}

// validateItem rejects malformed item descriptions. Run before any graph
// mutation, so a 400 response guarantees nothing was changed.
func validateItem(side datalink.Side, item datalink.Term, props map[string][]string, classes []string) error {
	for prop := range props {
		if prop == "" {
			return fmt.Errorf("item %s: empty property IRI", item.Value)
		}
	}
	if side != datalink.LocalSide && len(classes) > 0 {
		return fmt.Errorf("item %s: classes are only accepted on the local side", item.Value)
	}
	for _, c := range classes {
		if c == "" {
			return fmt.Errorf("item %s: empty class IRI", item.Value)
		}
	}
	return nil
}

// replaceItem swaps an item's triples for the given (already validated)
// description on one side of the corpus. Callers must hold the write
// lock.
func (s *Service) replaceItemLocked(side datalink.Side, item datalink.Term, props map[string][]string, classes []string) {
	g := s.se
	if side == datalink.LocalSide {
		g = s.sl
	}
	for _, tr := range g.Find(item, datalink.Term{}, datalink.Term{}) {
		g.Remove(tr)
	}
	for prop, vals := range props {
		p := datalink.NewIRI(prop)
		for _, v := range vals {
			g.Add(datalink.T(item, p, datalink.NewLiteral(v)))
		}
	}
	if side == datalink.LocalSide {
		for _, c := range classes {
			g.Add(datalink.T(item, datalink.RDFType, datalink.NewIRI(c)))
		}
	}
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/items/upsert", s.handleUpsert)
	mux.HandleFunc("POST /v1/items/remove", s.handleRemove)
	mux.HandleFunc("POST /v1/learn", s.handleLearn)
	mux.HandleFunc("GET /v1/rules", s.handleRules)
	mux.HandleFunc("POST /v1/link", s.handleLink)
	return mux
}
