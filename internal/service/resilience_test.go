package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	datalink "repro"
	"repro/internal/similarity"
)

// sendKeyed issues one request through the wrapped handler with an
// optional API key, returning the recorder.
func sendKeyed(h http.Handler, method, path, key string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, nil)
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// reasonOf extracts the machine-readable reason from an error envelope.
func reasonOf(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding error envelope %q: %v", rec.Body.String(), err)
	}
	return body.Reason
}

func TestAdmissionControlRejectsExcess(t *testing.T) {
	const cap = 2
	rz := newResilience(ResilienceOptions{MaxInFlight: cap}, nil, nil)
	entered := make(chan struct{}, cap)
	release := make(chan struct{})
	h := rz.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" { // the probe path bypasses admission
			w.WriteHeader(http.StatusOK)
			return
		}
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	var wg sync.WaitGroup
	codes := make([]int, cap)
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = sendKeyed(h, "GET", "/v1/status", "").Code
		}(i)
	}
	for i := 0; i < cap; i++ {
		<-entered // both requests are inside the handler, slots are full
	}
	rec := sendKeyed(h, "GET", "/v1/status", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request over capacity: code = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 is missing the Retry-After header")
	}
	if got := reasonOf(t, rec); got != reasonOverloaded {
		t.Errorf("reason = %q, want %q", got, reasonOverloaded)
	}
	// The liveness probe must keep answering while the service is full:
	// an orchestrator has to tell "overloaded" from "dead".
	if rec := sendKeyed(h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("/healthz during saturation: code = %d, want 200", rec.Code)
	}
	close(release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted request %d: code = %d, want 200", i, c)
		}
	}
	if got := rz.rejectedOverload.Value(); got != 1 {
		t.Errorf("rejectedOverload = %d, want 1", got)
	}
	if got := rz.inFlight.Value(); got != 0 {
		t.Errorf("inFlight after drain = %d, want 0", got)
	}
}

func TestRateLimitPerKey(t *testing.T) {
	now := time.Unix(1000, 0)
	rz := newResilience(ResilienceOptions{
		Rate:    1,
		Burst:   2,
		APIKeys: []string{"alice", "bob"},
		Clock:   func() time.Time { return now },
	}, nil, nil)
	h := rz.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	for i := 0; i < 2; i++ {
		if rec := sendKeyed(h, "GET", "/v1/status", "alice"); rec.Code != http.StatusOK {
			t.Fatalf("alice request %d within burst: code = %d, want 200", i, rec.Code)
		}
	}
	rec := sendKeyed(h, "GET", "/v1/status", "alice")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: code = %d, want 429", rec.Code)
	}
	if got := reasonOf(t, rec); got != reasonRateLimited {
		t.Errorf("reason = %q, want %q", got, reasonRateLimited)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q (1 token at 1/s)", ra, "1")
	}
	// Buckets are per key: alice's exhaustion must not throttle bob.
	if rec := sendKeyed(h, "GET", "/v1/status", "bob"); rec.Code != http.StatusOK {
		t.Errorf("bob while alice is limited: code = %d, want 200", rec.Code)
	}
	// One second later one token has accrued.
	now = now.Add(time.Second)
	if rec := sendKeyed(h, "GET", "/v1/status", "alice"); rec.Code != http.StatusOK {
		t.Errorf("alice after refill: code = %d, want 200", rec.Code)
	}
	if got := rz.rejectedRate.Value(); got != 1 {
		t.Errorf("rejectedRate = %d, want 1", got)
	}
}

func TestRateLimitAnonymousSharedBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	rz := newResilience(ResilienceOptions{
		Rate:  1,
		Burst: 1,
		Clock: func() time.Time { return now },
	}, nil, nil)
	h := rz.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	// With no keys configured every client is anonymous — a presented
	// key must NOT mint a fresh bucket, or rate limiting would be
	// trivially evaded by rotating keys.
	if rec := sendKeyed(h, "GET", "/v1/status", "minted-1"); rec.Code != http.StatusOK {
		t.Fatalf("first anonymous request: code = %d, want 200", rec.Code)
	}
	if rec := sendKeyed(h, "GET", "/v1/status", "minted-2"); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second anonymous request: code = %d, want 429 (shared bucket)", rec.Code)
	}
}

func TestStrictAuth(t *testing.T) {
	rz := newResilience(ResilienceOptions{APIKeys: []string{"k1"}, StrictAuth: true}, nil, nil)
	h := rz.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	rec := sendKeyed(h, "GET", "/v1/status", "")
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated in strict mode: code = %d, want 401", rec.Code)
	}
	if rec.Header().Get("WWW-Authenticate") == "" {
		t.Error("401 is missing the WWW-Authenticate header")
	}
	if got := reasonOf(t, rec); got != reasonUnauthorized {
		t.Errorf("reason = %q, want %q", got, reasonUnauthorized)
	}
	if rec := sendKeyed(h, "GET", "/v1/status", "wrong"); rec.Code != http.StatusUnauthorized {
		t.Errorf("unknown key: code = %d, want 401", rec.Code)
	}
	if rec := sendKeyed(h, "GET", "/v1/status", "k1"); rec.Code != http.StatusOK {
		t.Errorf("valid X-API-Key: code = %d, want 200", rec.Code)
	}
	req := httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set("Authorization", "Bearer k1")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Errorf("valid bearer token: code = %d, want 200", rr.Code)
	}
	if rec := sendKeyed(h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("/healthz without key in strict mode: code = %d, want 200", rec.Code)
	}
	if got := rz.rejectedAuth.Value(); got != 2 {
		t.Errorf("rejectedAuth = %d, want 2", got)
	}
}

func TestPanicRecoveryKeepsServing(t *testing.T) {
	rz := newResilience(ResilienceOptions{}, nil, nil)
	h := rz.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("handler bug")
		}
		w.WriteHeader(http.StatusOK)
	}))

	rec := sendKeyed(h, "GET", "/boom", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: code = %d, want 500", rec.Code)
	}
	if got := reasonOf(t, rec); got != reasonPanic {
		t.Errorf("reason = %q, want %q", got, reasonPanic)
	}
	// The server must keep serving after a handler panic.
	if rec := sendKeyed(h, "GET", "/v1/status", ""); rec.Code != http.StatusOK {
		t.Errorf("request after panic: code = %d, want 200", rec.Code)
	}
	if got := rz.panics.Value(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
}

func TestPanicRecoveryPreservesAbortHandler(t *testing.T) {
	rz := newResilience(ResilienceOptions{}, nil, nil)
	h := rz.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler to propagate", p)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/status", nil))
	t.Fatal("ErrAbortHandler was swallowed")
}

func TestDeadlineAnswersUnwrittenRequests(t *testing.T) {
	rz := newResilience(ResilienceOptions{RequestTimeout: 20 * time.Millisecond}, nil, nil)
	h := rz.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A handler that honors the context but forgets to answer.
		<-r.Context().Done()
	}))
	rec := sendKeyed(h, "GET", "/v1/status", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline-expired request: code = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 is missing the Retry-After header")
	}
	if got := reasonOf(t, rec); got != reasonTimeout {
		t.Errorf("reason = %q, want %q", got, reasonTimeout)
	}
	if got := rz.timeouts.Value(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

// slowCorpusService builds a learned service whose default comparator
// sleeps per scored pair, so link requests overlap realistically under
// concurrent load.
func slowCorpusService(t *testing.T, delay time.Duration, res ResilienceOptions) *Service {
	t.Helper()
	og := datalink.NewGraph()
	for _, c := range []string{clsRes, clsCap} {
		og.Add(datalink.T(datalink.NewIRI(c), datalink.RDFType, datalink.NewIRI("http://www.w3.org/2002/07/owl#Class")))
	}
	ol, err := datalink.OntologyFromGraph(og)
	if err != nil {
		t.Fatal(err)
	}
	se, sl := datalink.NewGraph(), datalink.NewGraph()
	var links []datalink.Link
	for i := 0; i < 8; i++ {
		ext := datalink.NewIRI(fmt.Sprintf("http://ex.org/e/r%d", i))
		loc := datalink.NewIRI(fmt.Sprintf("http://ex.org/l/r%d", i))
		se.Add(datalink.T(ext, datalink.NewIRI(pnProp), datalink.NewLiteral(fmt.Sprintf("RES-%04d-Z", i))))
		sl.Add(datalink.T(loc, datalink.NewIRI(pnProp), datalink.NewLiteral(fmt.Sprintf("RES-%04d-X", i))))
		sl.Add(datalink.T(loc, datalink.RDFType, datalink.NewIRI(clsRes)))
		links = append(links, datalink.Link{External: ext, Local: loc})
	}
	slow := similarity.Func{ID: "slow-levenshtein", F: func(a, b string) float64 {
		time.Sleep(delay)
		return similarity.Levenshtein{}.Similarity(a, b)
	}}
	svc := New(se, sl, ol, Options{
		Learner: datalink.LearnerConfig{SupportThreshold: 0.01},
		DefaultLinker: datalink.LinkerConfig{
			Comparators: []datalink.Comparator{{
				ExternalProperty: datalink.NewIRI(pnProp),
				LocalProperty:    datalink.NewIRI(pnProp),
				Measure:          slow,
				Weight:           1,
			}},
			Threshold: 0.1,
			Workers:   1,
		},
		Resilience: res,
	})
	if err := svc.LearnLinks(links); err != nil {
		t.Fatalf("learning: %v", err)
	}
	return svc
}

// TestSaturationShedsLoad drives the full service handler with more
// concurrent link queries than the in-flight cap admits: the admitted
// ones must succeed, the excess must be shed with 429, and the service
// must drain back to zero in-flight.
func TestSaturationShedsLoad(t *testing.T) {
	svc := slowCorpusService(t, 2*time.Millisecond, ResilienceOptions{MaxInFlight: 2})
	h := svc.Handler()
	body := `{"items":["http://ex.org/e/r0"],"top_k":1}`

	var saw200, saw429 bool
	for round := 0; round < 20 && !(saw200 && saw429); round++ {
		const n = 16
		codes := make([]int, n)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				req := httptest.NewRequest("POST", "/v1/link", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				codes[i] = rec.Code
			}(i)
		}
		close(start)
		wg.Wait()
		for i, c := range codes {
			switch c {
			case http.StatusOK:
				saw200 = true
			case http.StatusTooManyRequests:
				saw429 = true
			default:
				t.Fatalf("request %d: code = %d, want 200 or 429", i, c)
			}
		}
	}
	if !saw200 || !saw429 {
		t.Fatalf("saturation never produced both outcomes: 200=%v 429=%v", saw200, saw429)
	}
	var status statusResponse
	if rec := call(t, h, "GET", "/v1/status", nil, &status); rec.Code != http.StatusOK {
		t.Fatalf("status after saturation: %d %s", rec.Code, rec.Body)
	}
	if status.Resilience == nil {
		t.Fatal("status has no resilience block")
	}
	if status.Resilience.RejectedOverload == 0 {
		t.Error("status reports zero overload rejections after saturation")
	}
	// The status request itself holds one slot while it reports.
	if status.Resilience.InFlight != 1 {
		t.Errorf("in_flight after drain = %d, want 1 (the status request)", status.Resilience.InFlight)
	}
	if status.Resilience.MaxInFlight != 2 {
		t.Errorf("max_in_flight = %d, want 2", status.Resilience.MaxInFlight)
	}
}

func TestStatusReportsResilienceConfig(t *testing.T) {
	svc := corpusServiceWith(t, ResilienceOptions{
		MaxInFlight:    7,
		RequestTimeout: 1500 * time.Millisecond,
		Rate:           2.5,
		Burst:          9,
		APIKeys:        []string{"k1", "k2"},
	})
	var status statusResponse
	if rec := call(t, svc.Handler(), "GET", "/v1/status", nil, &status); rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body)
	}
	r := status.Resilience
	if r == nil {
		t.Fatal("status has no resilience block")
	}
	if r.MaxInFlight != 7 || r.RequestTimeoutMS != 1500 || r.Rate != 2.5 || r.Burst != 9 || r.APIKeys != 2 {
		t.Errorf("resilience status = %+v, want the configured limits echoed", r)
	}
}

// corpusServiceWith is corpusService with resilience options applied.
func corpusServiceWith(t *testing.T, res ResilienceOptions) *Service {
	t.Helper()
	s := corpusService(t)
	s.opts.Resilience = res
	s.res = newResilience(res, s.met, nil)
	return s
}

// BenchmarkResilienceHotPath measures the per-request overhead of the
// admission and rate-limit checks on the admitted path — the cost every
// successful request pays. It must stay well under a microsecond.
func BenchmarkResilienceHotPath(b *testing.B) {
	rz := newResilience(ResilienceOptions{
		MaxInFlight: 64,
		Rate:        1e9, // never empties at benchmark speed
		Burst:       1 << 20,
		APIKeys:     []string{"bench-key"},
	}, nil, nil)
	req := httptest.NewRequest("POST", "/v1/link", nil)
	req.Header.Set("X-API-Key", "bench-key")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, ok := rz.client(req)
		if !ok {
			b.Fatal("auth rejected")
		}
		if ok, _ := rz.allow(key); !ok {
			b.Fatal("rate limited")
		}
		if !rz.acquire() {
			b.Fatal("admission rejected")
		}
		rz.release()
	}
}
