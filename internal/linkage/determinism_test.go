package linkage

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/similarity"
)

// seededGraphs builds a randomized external/local graph pair plus the
// candidate structures the engine consumes, deterministically in seed.
// Values mix ASCII part numbers, multi-byte runes and multi-valued
// properties so every engine code path (byte fast path, rune path,
// token index, length bound, missing values) is exercised.
func seededGraphs(seed int64, nExt, nLoc int) (*rdf.Graph, *rdf.Graph, [][2]rdf.Term, map[rdf.Term][]rdf.Term) {
	rng := rand.New(rand.NewSource(seed))
	se, sl := rdf.NewGraph(), rdf.NewGraph()
	alphabet := "ABCDEFGHIJ0123456789-Ωµ"
	runes := []rune(alphabet)
	randVal := func() string {
		n := 3 + rng.Intn(12)
		out := make([]rune, n)
		for i := range out {
			out[i] = runes[rng.Intn(len(runes))]
		}
		return string(out)
	}
	ext := make([]rdf.Term, nExt)
	loc := make([]rdf.Term, nLoc)
	for i := range ext {
		ext[i] = rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i))
		se.Add(rdf.T(ext[i], pn, rdf.NewLiteral(randVal())))
		if rng.Intn(3) == 0 { // multi-valued part number
			se.Add(rdf.T(ext[i], pn, rdf.NewLiteral(randVal())))
		}
		if rng.Intn(4) != 0 { // label sometimes missing
			se.Add(rdf.T(ext[i], label, rdf.NewLiteral(randVal()+" "+randVal())))
		}
	}
	for i := range loc {
		loc[i] = rdf.NewIRI(fmt.Sprintf("http://ex.org/l/%d", i))
		sl.Add(rdf.T(loc[i], pn, rdf.NewLiteral(randVal())))
		if rng.Intn(4) != 0 {
			sl.Add(rdf.T(loc[i], label, rdf.NewLiteral(randVal()+" "+randVal())))
		}
	}
	var pairs [][2]rdf.Term
	cands := map[rdf.Term][]rdf.Term{}
	for _, e := range ext {
		for k := 0; k < 8; k++ {
			l := loc[rng.Intn(len(loc))]
			pairs = append(pairs, [2]rdf.Term{e, l})
			cands[e] = append(cands[e], l)
		}
	}
	return se, sl, pairs, cands
}

// TestParallelDeterminism asserts that ScorePairs and LinkBest return
// results identical to the serial path for every worker count, on a
// seeded corpus large enough to engage the chunked fan-out. Run under
// -race this also checks the workers share no state.
func TestParallelDeterminism(t *testing.T) {
	se, sl, pairs, cands := seededGraphs(41, 120, 80)
	cfg := Config{
		Comparators: []Comparator{
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Levenshtein{}, Weight: 2},
			{ExternalProperty: label, LocalProperty: label, Measure: similarity.Jaccard{}, Weight: 1},
		},
		Threshold: 0.2,
		Workers:   1,
	}
	serial, err := New(cfg, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := serial.ScorePairs(pairs)
	wantBest := serial.LinkBest(cands)
	if len(wantPairs) == 0 || len(wantBest) == 0 {
		t.Fatalf("degenerate fixture: %d pair matches, %d best links", len(wantPairs), len(wantBest))
	}
	for _, workers := range []int{0, 2, 3, 7, 16} {
		cfg.Workers = workers
		par, err := New(cfg, se, sl)
		if err != nil {
			t.Fatal(err)
		}
		if got := par.ScorePairs(pairs); !reflect.DeepEqual(got, wantPairs) {
			t.Errorf("ScorePairs(workers=%d) differs from serial output", workers)
		}
		if got := par.LinkBest(cands); !reflect.DeepEqual(got, wantBest) {
			t.Errorf("LinkBest(workers=%d) differs from serial output", workers)
		}
		// A re-optioned engine shares the index and must agree too.
		reopt, err := serial.WithOptions(cfg.Threshold, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := reopt.ScorePairs(pairs); !reflect.DeepEqual(got, wantPairs) {
			t.Errorf("WithOptions(workers=%d).ScorePairs differs from serial output", workers)
		}
	}
	if _, err := serial.WithOptions(1.5, 0); err == nil {
		t.Error("WithOptions accepted out-of-range threshold")
	}
	if _, err := serial.WithOptions(0.2, -1); err == nil {
		t.Error("WithOptions accepted negative workers")
	}
}

// TestIndexedScoreMatchesGraphWalk pins the value-indexed Score to the
// pre-index semantics: walking the graphs per pair must give the same
// score as the snapshot index, including multi-valued properties,
// missing properties and non-literal objects.
func TestIndexedScoreMatchesGraphWalk(t *testing.T) {
	se, sl, pairs, _ := seededGraphs(43, 40, 30)
	// A non-literal object must be ignored exactly like before.
	se.Add(rdf.T(rdf.NewIRI("http://ex.org/e/0"), pn, rdf.NewIRI("http://ex.org/not-a-literal")))
	cfg := Config{
		Comparators: []Comparator{
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Damerau{}, Weight: 1.5},
			{ExternalProperty: label, LocalProperty: label, Measure: similarity.MongeElkan{}, Weight: 1},
		},
		Threshold: 0,
	}
	e, err := New(cfg, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	graphScore := func(ext, loc rdf.Term) float64 {
		num, den := 0.0, 0.0
		for _, cmp := range cfg.Comparators {
			den += cmp.Weight
			var evs, lvs []string
			for _, o := range se.Objects(ext, cmp.ExternalProperty) {
				if o.IsLiteral() {
					evs = append(evs, o.Value)
				}
			}
			for _, o := range sl.Objects(loc, cmp.LocalProperty) {
				if o.IsLiteral() {
					lvs = append(lvs, o.Value)
				}
			}
			best := 0.0
			for _, ev := range evs {
				for _, lv := range lvs {
					if s := cmp.Measure.Similarity(ev, lv); s > best {
						best = s
					}
				}
			}
			num += cmp.Weight * best
		}
		return num / den
	}
	for _, p := range pairs {
		if got, want := e.Score(p[0], p[1]), graphScore(p[0], p[1]); got != want {
			t.Fatalf("Score(%v, %v) = %v, graph walk gives %v", p[0], p[1], got, want)
		}
	}
}
