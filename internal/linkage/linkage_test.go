package linkage

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/similarity"
)

var (
	pn    = rdf.NewIRI("http://ex.org/pn")
	label = rdf.NewIRI("http://ex.org/label")
)

func item(ns, id string) rdf.Term { return rdf.NewIRI("http://ex.org/" + ns + "/" + id) }

func testGraphs(t testing.TB) (*rdf.Graph, *rdf.Graph) {
	t.Helper()
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	se.Add(rdf.T(item("e", "1"), pn, rdf.NewLiteral("CRCW0805-100")))
	se.Add(rdf.T(item("e", "1"), label, rdf.NewLiteral("chip resistor")))
	se.Add(rdf.T(item("e", "2"), pn, rdf.NewLiteral("T83-330")))
	se.Add(rdf.T(item("e", "3"), pn, rdf.NewLiteral("ZZZ")))

	sl.Add(rdf.T(item("l", "1"), pn, rdf.NewLiteral("CRCW0805.100")))
	sl.Add(rdf.T(item("l", "1"), label, rdf.NewLiteral("Chip Resistor 100 ohm")))
	sl.Add(rdf.T(item("l", "2"), pn, rdf.NewLiteral("T83/330")))
	sl.Add(rdf.T(item("l", "3"), pn, rdf.NewLiteral("AAAA-999")))
	return se, sl
}

func defaultConfig() Config {
	return Config{
		Comparators: []Comparator{
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.JaroWinkler{}, Weight: 2},
			{ExternalProperty: label, LocalProperty: label, Measure: similarity.MongeElkan{}, Weight: 1},
		},
		Threshold: 0.85,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := defaultConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Comparators: []Comparator{{ExternalProperty: pn, LocalProperty: pn, Weight: 1}}},
		{Comparators: []Comparator{{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Exact{}, Weight: 0}}},
		{Comparators: []Comparator{{Measure: similarity.Exact{}, Weight: 1}}},
		{Comparators: []Comparator{{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Exact{}, Weight: 1}}, Threshold: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}, nil, nil); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestScore(t *testing.T) {
	se, sl := testGraphs(t)
	e, err := New(defaultConfig(), se, sl)
	if err != nil {
		t.Fatal(err)
	}
	same := e.Score(item("e", "1"), item("l", "1"))
	diff := e.Score(item("e", "1"), item("l", "3"))
	if same <= diff {
		t.Errorf("Score(same product)=%v <= Score(different)=%v", same, diff)
	}
	if same < 0.8 {
		t.Errorf("Score(same product)=%v unexpectedly low", same)
	}
	// Missing label on e2 keeps the label weight in the denominator.
	s2 := e.Score(item("e", "2"), item("l", "2"))
	if s2 >= 1 {
		t.Errorf("missing property should cap score below 1, got %v", s2)
	}
	if got := e.Score(item("e", "404"), item("l", "404")); got != 0 {
		t.Errorf("Score(absent items) = %v", got)
	}
}

func TestScorePairs(t *testing.T) {
	se, sl := testGraphs(t)
	e, _ := New(defaultConfig(), se, sl)
	pairs := [][2]rdf.Term{
		{item("e", "1"), item("l", "1")},
		{item("e", "1"), item("l", "3")},
		{item("e", "2"), item("l", "2")},
	}
	// Low threshold keeps all, sorted by descending score.
	e.cfg.Threshold = 0
	ms := e.ScorePairs(pairs)
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score > ms[i-1].Score {
			t.Errorf("not sorted desc at %d", i)
		}
	}
	// Tight threshold keeps only real matches.
	e.cfg.Threshold = 0.6
	ms = e.ScorePairs(pairs)
	for _, m := range ms {
		if m.External == item("e", "1") && m.Local == item("l", "3") {
			t.Errorf("false pair above threshold: %+v", m)
		}
	}
}

func TestLinkBest(t *testing.T) {
	se, sl := testGraphs(t)
	cfg := defaultConfig()
	cfg.Threshold = 0.5
	e, _ := New(cfg, se, sl)
	cands := map[rdf.Term][]rdf.Term{
		item("e", "1"): {item("l", "1"), item("l", "2"), item("l", "3")},
		item("e", "2"): {item("l", "2"), item("l", "3")},
		item("e", "3"): {item("l", "3")}, // nothing similar
	}
	ms := e.LinkBest(cands)
	got := map[rdf.Term]rdf.Term{}
	for _, m := range ms {
		got[m.External] = m.Local
	}
	if got[item("e", "1")] != item("l", "1") {
		t.Errorf("e1 linked to %v", got[item("e", "1")])
	}
	if got[item("e", "2")] != item("l", "2") {
		t.Errorf("e2 linked to %v", got[item("e", "2")])
	}
	if _, linked := got[item("e", "3")]; linked {
		t.Error("e3 linked despite no similar candidate")
	}
}

func TestEvaluate(t *testing.T) {
	truth := []core.Link{
		{External: item("e", "1"), Local: item("l", "1")},
		{External: item("e", "2"), Local: item("l", "2")},
		{External: item("e", "4"), Local: item("l", "4")},
	}
	found := []Match{
		{External: item("e", "1"), Local: item("l", "1"), Score: 0.9}, // TP
		{External: item("e", "2"), Local: item("l", "9"), Score: 0.8}, // FP
		{External: item("e", "1"), Local: item("l", "1"), Score: 0.9}, // dup, ignored
	}
	r := Evaluate(found, truth)
	if r.TruePositives != 1 || r.FalsePositives != 1 || r.FalseNegatives != 2 {
		t.Fatalf("result = %+v", r)
	}
	if r.Precision() != 0.5 {
		t.Errorf("Precision = %v", r.Precision())
	}
	if math.Abs(r.Recall()-1.0/3.0) > 1e-12 {
		t.Errorf("Recall = %v", r.Recall())
	}
	wantF1 := 2 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0/3.0)
	if math.Abs(r.F1()-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", r.F1(), wantF1)
	}
	var zero Result
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero Result divides by zero")
	}
}

func TestEndToEndReducedSpaceLinking(t *testing.T) {
	// Full pipeline smoke test on the scenario fixture: learn rules,
	// classify, build subspaces, link within them, evaluate.
	se, sl := testGraphs(t)
	cfg := defaultConfig()
	// e2/l2 lack labels on both sides; the missing-value penalty caps
	// their score near 2/3, so the threshold sits below that.
	cfg.Threshold = 0.6
	e, _ := New(cfg, se, sl)
	truth := []core.Link{
		{External: item("e", "1"), Local: item("l", "1")},
		{External: item("e", "2"), Local: item("l", "2")},
	}
	cands := map[rdf.Term][]rdf.Term{
		item("e", "1"): {item("l", "1"), item("l", "3")},
		item("e", "2"): {item("l", "2")},
		item("e", "3"): {item("l", "3")},
	}
	res := Evaluate(e.LinkBest(cands), truth)
	if res.Recall() != 1 {
		t.Errorf("recall = %v, want 1 within correct candidate sets", res.Recall())
	}
	if res.Precision() != 1 {
		t.Errorf("precision = %v, want 1", res.Precision())
	}
}
