package linkage

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/blocking"
	"repro/internal/rdf"
	"repro/internal/similarity"
)

// streamFixture builds a corpus with enough candidate pairs to span
// several stream batches, so batching boundaries are actually exercised.
func streamFixture(t *testing.T) (*Engine, [][2]rdf.Term, map[rdf.Term][]rdf.Term) {
	t.Helper()
	se, sl, pairs, cands := seededGraphs(61, 700, 90)
	if len(pairs) <= streamBatch {
		t.Fatalf("fixture has %d pairs, need > %d to cross a batch boundary", len(pairs), streamBatch)
	}
	cfg := Config{
		Comparators: []Comparator{
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Levenshtein{}, Weight: 2},
			{ExternalProperty: label, LocalProperty: label, Measure: similarity.Jaccard{}, Weight: 1},
		},
		Threshold: 0.2,
		Workers:   1,
	}
	eng, err := New(cfg, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	return eng, pairs, cands
}

// TestStreamPairsMatchesScorePairs checks that streaming emits exactly
// the matches ScorePairs keeps — in source order rather than score order
// — identically at every worker count.
func TestStreamPairsMatchesScorePairs(t *testing.T) {
	eng, pairs, _ := streamFixture(t)

	// Expected: the serial input-order walk of the threshold filter.
	var want []Match
	for _, p := range pairs {
		if s := eng.Score(p[0], p[1]); s >= eng.cfg.Threshold {
			want = append(want, Match{External: p[0], Local: p[1], Score: s})
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate fixture: no matches")
	}

	for _, workers := range []int{0, 1, 2, 3, 7} {
		w, err := eng.WithOptions(eng.cfg.Threshold, workers)
		if err != nil {
			t.Fatal(err)
		}
		var got []Match
		if err := w.StreamPairs(context.Background(), MaterializedPairs(pairs), func(m Match) bool {
			got = append(got, m)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("StreamPairs(workers=%d) differs from serial input-order filter", workers)
		}
	}

	// Sorted, the stream equals ScorePairs exactly.
	sorted := append([]Match(nil), want...)
	sortMatches(sorted)
	if got := eng.ScorePairs(pairs); !reflect.DeepEqual(got, sorted) {
		t.Error("sorted stream output differs from ScorePairs")
	}
}

// TestStreamPairsEarlyStop checks that emit returning false stops the
// stream without error and without draining the source.
func TestStreamPairsEarlyStop(t *testing.T) {
	eng, pairs, _ := streamFixture(t)
	yielded := 0
	src := func(yield func([2]rdf.Term) bool) {
		for _, p := range pairs {
			yielded++
			if !yield(p) {
				return
			}
		}
	}
	var got []Match
	err := eng.StreamPairs(context.Background(), src, func(m Match) bool {
		got = append(got, m)
		return len(got) < 3
	})
	if err != nil {
		t.Fatalf("early stop must not error: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d matches, want 3", len(got))
	}
	if yielded >= len(pairs) {
		t.Fatalf("source fully drained (%d pairs) despite early stop", yielded)
	}
}

// TestStreamPairsCancellation checks both up-front and mid-stream
// context cancellation.
func TestStreamPairsCancellation(t *testing.T) {
	eng, pairs, _ := streamFixture(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.StreamPairs(ctx, MaterializedPairs(pairs), func(Match) bool { return true }); err != context.Canceled {
		t.Fatalf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	emitted := 0
	err := eng.StreamPairs(ctx2, MaterializedPairs(pairs), func(Match) bool {
		emitted++
		cancel2() // cancel after the first batch started emitting
		return true
	})
	if err != context.Canceled {
		t.Fatalf("mid-stream cancel: err = %v, want context.Canceled", err)
	}
	if emitted == 0 {
		t.Fatal("expected at least one emission before cancellation took effect")
	}
}

// TestLinkBestStreamByteIdentical is the acceptance check of the
// streaming tentpole: LinkBestStream over yielded groups must be
// byte-identical to materialized LinkBest at every worker count. Run
// under -race this also exercises the engine's snapshot locking.
func TestLinkBestStreamByteIdentical(t *testing.T) {
	eng, _, cands := streamFixture(t)
	want := eng.LinkBest(cands)
	if len(want) == 0 {
		t.Fatal("degenerate fixture: no links")
	}

	// Yield groups in a fixed but arbitrary order (sorted by item) to
	// show order-independence of the final result.
	exts := make([]rdf.Term, 0, len(cands))
	for ext := range cands {
		exts = append(exts, ext)
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].Compare(exts[j]) < 0 })
	src := func(yield func(CandidateGroup) bool) {
		for _, ext := range exts {
			if !yield(CandidateGroup{External: ext, Locals: cands[ext]}) {
				return
			}
		}
	}

	for _, workers := range []int{0, 1, 2, 3, 7} {
		w, err := eng.WithOptions(eng.cfg.Threshold, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.LinkBestStream(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("LinkBestStream(workers=%d) differs from materialized LinkBest", workers)
		}
	}

	// Cancellation propagates.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.LinkBestStream(ctx, src); err != context.Canceled {
		t.Errorf("cancelled LinkBestStream: err = %v, want context.Canceled", err)
	}
}

// TestStreamFromBlocking composes a blocking.Streamer with the engine
// via IDPairSource: candidates flow from standard blocking straight into
// StreamPairs, and the matches equal scoring the materialized candidate
// set of the same method.
func TestStreamFromBlocking(t *testing.T) {
	se, sl := rdf.NewGraph(), rdf.NewGraph()
	var extRecs, locRecs []blocking.Record
	terms := map[string]rdf.Term{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("CRCW%03d-%d", i%20, i%7)
		eid := fmt.Sprintf("http://ex.org/e/%d", i)
		lid := fmt.Sprintf("http://ex.org/l/%d", i)
		et, lt := rdf.NewIRI(eid), rdf.NewIRI(lid)
		se.Add(rdf.T(et, pn, rdf.NewLiteral(key+"E")))
		sl.Add(rdf.T(lt, pn, rdf.NewLiteral(key+"L")))
		// The blocking key is the shared part number; the scored literal
		// keeps its per-source suffix.
		extRecs = append(extRecs, blocking.Record{ID: eid, Key: key})
		locRecs = append(locRecs, blocking.Record{ID: lid, Key: key})
		terms[eid], terms[lid] = et, lt
	}
	eng, err := New(Config{
		Comparators: []Comparator{{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Levenshtein{}, Weight: 1}},
		Threshold:   0.5,
	}, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	// Every blocking baseline that implements Streamer must compose with
	// the engine the same way.
	methods := []blocking.Streamer{
		blocking.Standard{Key: blocking.PrefixKey(7)},
		blocking.SortedNeighborhood{Window: 4},
		blocking.Bigram{Threshold: 0.8, MaxSublists: 16},
		blocking.Canopy{},
	}
	for _, method := range methods {
		src := IDPairSource(func(yield func(a, b string) bool) {
			method.Stream(extRecs, locRecs, func(p blocking.Pair) bool { return yield(p.A, p.B) })
		}, func(id string) rdf.Term { return terms[id] })

		var streamed []Match
		if err := eng.StreamPairs(context.Background(), src, func(m Match) bool {
			streamed = append(streamed, m)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(streamed) == 0 {
			t.Fatalf("%s: blocking stream produced no matches", method.Name())
		}

		// Reference: materialize the same method's pairs and score them.
		var pairs [][2]rdf.Term
		for _, p := range method.Pairs(extRecs, locRecs) {
			pairs = append(pairs, [2]rdf.Term{terms[p.A], terms[p.B]})
		}
		want := eng.ScorePairs(pairs)
		sortMatches(streamed)
		if !reflect.DeepEqual(streamed, want) {
			t.Fatalf("%s: streamed %d matches differ from materialized %d", method.Name(), len(streamed), len(want))
		}
	}

	// Unresolvable IDs are skipped, not scored.
	sparse := IDPairSource(func(yield func(a, b string) bool) {
		yield("http://ex.org/e/0", "missing")
	}, func(id string) rdf.Term { return terms[id] })
	if err := eng.StreamPairs(context.Background(), sparse, func(Match) bool {
		t.Fatal("pair with unresolvable side must not be scored")
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEmitReentrancy checks that emit may call back into the same
// engine — including taking the write lock via Upsert — because the
// stream holds the read lock only per scoring batch.
func TestStreamEmitReentrancy(t *testing.T) {
	eng, pairs, _ := streamFixture(t)
	se := eng.st.se
	n := 0
	err := eng.StreamPairs(context.Background(), MaterializedPairs(pairs), func(m Match) bool {
		if n == 0 {
			// Both a read (Score) and a write (Upsert) from inside emit
			// must not deadlock.
			eng.Score(m.External, m.Local)
			se.Add(rdf.T(m.External, pn, rdf.NewLiteral("REENTRANT")))
			eng.Upsert(ExternalSide, m.External)
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no matches emitted")
	}
}

// TestTopK pins ordering, threshold filtering and the k cut.
func TestTopK(t *testing.T) {
	se, sl := rdf.NewGraph(), rdf.NewGraph()
	ext := rdf.NewIRI("http://ex.org/e/x")
	se.Add(rdf.T(ext, pn, rdf.NewLiteral("ABCDEF")))
	locs := []rdf.Term{}
	for i, v := range []string{"ABCDEF", "ABCDEX", "ABCXYZ", "QQQQQQ"} {
		l := rdf.NewIRI("http://ex.org/l/" + string(rune('a'+i)))
		sl.Add(rdf.T(l, pn, rdf.NewLiteral(v)))
		locs = append(locs, l)
	}
	eng, err := New(Config{
		Comparators: []Comparator{{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Levenshtein{}, Weight: 1}},
		Threshold:   0.4,
	}, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	all := eng.TopK(ext, locs, 0)
	if len(all) != 3 { // QQQQQQ is below threshold
		t.Fatalf("TopK(0) kept %d, want 3: %v", len(all), all)
	}
	if all[0].Score != 1 || all[0].Local != locs[0] {
		t.Fatalf("best match wrong: %v", all[0])
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Score > all[j].Score }) {
		t.Fatal("TopK not sorted by descending score")
	}
	if two := eng.TopK(ext, locs, 2); len(two) != 2 || !reflect.DeepEqual(two, all[:2]) {
		t.Fatalf("TopK(2) = %v", two)
	}
}
