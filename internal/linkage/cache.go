package linkage

import (
	"unicode/utf8"

	"repro/internal/similarity"
)

// valueCache is the engine's shared per-value derivation cache: one
// Tokenize, one token set and one prepared pattern per distinct value
// string, shared across every comparator column and both sides of the
// engine. Before it existed each comparator column re-derived its own
// tokens and token sets in buildValueIndex, so a value appearing under
// three comparators (or on both sides) paid for its derivations three
// times; now the first reference pays and the rest share.
//
// Entries are reference-counted by the indexedValues that point at
// them, so the incremental paths (Upsert, Remove, ApplyPatches) keep
// the cache exactly as large as the live index: a value's entry is
// dropped when its last referencing item leaves the index. All access
// happens under the engine's state lock — construction and writers hold
// it exclusively, and the read paths never mutate the cache (prepared
// patterns are built eagerly at acquire time, not lazily under read
// locks).
type valueCache struct {
	// tokenize and sets record whether any comparator's measure consumes
	// token lists / token sets; derivations are built once per value for
	// the union of needs rather than per column.
	tokenize bool
	sets     bool
	// prep holds, per comparator slot, the measure to precompile values
	// with (nil for slots whose measure is not a PreparedMeasure).
	// Prepared patterns are per-slot because a measure's preparation may
	// depend on instance state (a fitted TF-IDF), so two comparators
	// never share one pattern even when their measures look alike.
	prep    []similarity.PreparedMeasure
	entries map[string]*cacheEntry
}

// cacheEntry is everything derived from one distinct value string.
type cacheEntry struct {
	refs     int
	runeLen  int
	tokens   []string
	tokenSet map[string]struct{}
	// prepared is indexed by comparator slot; allocated on first use and
	// filled per slot as values are acquired for that comparator.
	prepared []similarity.Prepared
}

// newValueCache derives the union of derivation needs from the compiled
// comparators.
func newValueCache(comps []compiledComparator) *valueCache {
	vc := &valueCache{
		prep:    make([]similarity.PreparedMeasure, len(comps)),
		entries: map[string]*cacheEntry{},
	}
	for i := range comps {
		if comps[i].tokens != nil {
			vc.tokenize = true
		}
		if comps[i].tokenSets != nil {
			vc.sets = true
		}
		vc.prep[i] = comps[i].prepared
	}
	return vc
}

// acquire returns the entry for value, creating it (and any derivations
// the cache's comparators need) on first reference, and takes one
// reference. slot identifies the comparator column the value is being
// indexed under, so measure-specific preparation lands in that slot.
func (vc *valueCache) acquire(value string, slot int) *cacheEntry {
	e := vc.entries[value]
	if e == nil {
		e = &cacheEntry{runeLen: utf8.RuneCountInString(value)}
		if vc.tokenize {
			e.tokens = similarity.Tokenize(value)
			if vc.sets {
				e.tokenSet = make(map[string]struct{}, len(e.tokens))
				for _, tok := range e.tokens {
					e.tokenSet[tok] = struct{}{}
				}
			}
		}
		vc.entries[value] = e
	}
	if pm := vc.prep[slot]; pm != nil {
		if e.prepared == nil {
			e.prepared = make([]similarity.Prepared, len(vc.prep))
		}
		if e.prepared[slot] == nil {
			e.prepared[slot] = pm.Prepare(value)
		}
	}
	e.refs++
	return e
}

// release drops one reference to each value, deleting entries whose
// last reference left. The inverse of the acquires that produced vals.
func (vc *valueCache) release(vals []indexedValue) {
	for i := range vals {
		v := &vals[i]
		if v.entry == nil {
			continue
		}
		v.entry.refs--
		if v.entry.refs <= 0 {
			delete(vc.entries, v.value)
		}
	}
}

// Size returns the number of distinct cached values, for tests and
// diagnostics.
func (vc *valueCache) Size() int { return len(vc.entries) }
