package linkage

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/similarity"
)

// cacheOf digs out an engine's value cache for white-box assertions.
func cacheOf(e *Engine) *valueCache { return e.st.cache }

// refTotal sums the live reference counts, for leak checks.
func refTotal(vc *valueCache) int {
	n := 0
	for _, e := range vc.entries {
		n += e.refs
	}
	return n
}

// TestValueCacheSharesAcrossComparators pins the cache's reason to
// exist: two comparators over the same property (different measures)
// and the same value on both sides produce ONE cache entry per distinct
// value string, not one per (comparator, side, item) as before.
func TestValueCacheSharesAcrossComparators(t *testing.T) {
	se, sl := rdf.NewGraph(), rdf.NewGraph()
	// Three external and three local items all carrying the same two
	// values under pn, also referenced by the label comparator.
	for i := 0; i < 3; i++ {
		e := rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i))
		l := rdf.NewIRI(fmt.Sprintf("http://ex.org/l/%d", i))
		se.Add(rdf.T(e, pn, rdf.NewLiteral("SHARED-VALUE")))
		sl.Add(rdf.T(l, pn, rdf.NewLiteral("SHARED-VALUE")))
		se.Add(rdf.T(e, label, rdf.NewLiteral("common label")))
		sl.Add(rdf.T(l, label, rdf.NewLiteral("common label")))
	}
	cfg := Config{
		Comparators: []Comparator{
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Levenshtein{}, Weight: 1},
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Jaccard{}, Weight: 1},
			{ExternalProperty: label, LocalProperty: label, Measure: similarity.Damerau{}, Weight: 1},
		},
		Threshold: 0.1,
	}
	eng, err := New(cfg, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	vc := cacheOf(eng)
	if got, want := vc.Size(), 2; got != want {
		t.Fatalf("cache holds %d entries, want %d (one per distinct value)", got, want)
	}
	// pn is indexed by two comparators over 6 items, label by one over 6
	// items: 12 + 6 references.
	if got, want := refTotal(vc), 18; got != want {
		t.Fatalf("cache holds %d references, want %d", got, want)
	}
	// The shared entry carries every derivation any comparator needs:
	// tokens and sets (Jaccard) plus prepared patterns in the slots of
	// the two edit-distance comparators.
	e := vc.entries["SHARED-VALUE"]
	if e == nil || e.tokenSet == nil || e.tokens == nil {
		t.Fatalf("shared entry missing token derivations: %+v", e)
	}
	if e.prepared == nil || e.prepared[0] == nil || e.prepared[1] != nil {
		t.Fatalf("prepared slots wrong: want slot 0 set (levenshtein), slot 1 empty (jaccard)")
	}
}

// TestValueCacheRefcountChurn drives add/change/remove churn through
// Upsert, Remove and ApplyPatches and asserts the cache never leaks:
// after every step the entry count equals the number of distinct live
// values, and references match the indexed values exactly; after
// removing everything the cache is empty.
func TestValueCacheRefcountChurn(t *testing.T) {
	se, sl, pairs, _ := seededGraphs(97, 40, 30)
	eng, err := New(incrementalConfig(), se, sl)
	if err != nil {
		t.Fatal(err)
	}
	vc := cacheOf(eng)

	verify := func(step string) {
		t.Helper()
		// Distinct live values and total references, recounted from the
		// index itself.
		want := map[string]int{}
		refs := 0
		for ci := range eng.st.comps {
			c := &eng.st.comps[ci]
			for _, m := range []map[rdf.Term][]indexedValue{c.ext, c.loc} {
				for _, vals := range m {
					for _, v := range vals {
						want[v.value]++
						refs++
					}
				}
			}
		}
		if got := vc.Size(); got != len(want) {
			t.Fatalf("%s: cache holds %d entries, index references %d distinct values", step, got, len(want))
		}
		if got := refTotal(vc); got != refs {
			t.Fatalf("%s: cache holds %d refs, index holds %d values", step, got, refs)
		}
		rebuildEqual(t, eng, se, sl, pairs)
	}
	verify("fresh")

	// Change values in place.
	for i := 0; i < 10; i++ {
		item := rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i))
		for _, o := range se.Objects(item, pn) {
			se.Remove(rdf.T(item, pn, o))
		}
		se.Add(rdf.T(item, pn, rdf.NewLiteral(fmt.Sprintf("CHURN-%d", i%3))))
		eng.Upsert(ExternalSide, item)
	}
	verify("after upsert churn")

	// Batched mixed mutation.
	var patchItems []rdf.Term
	for i := 10; i < 20; i++ {
		item := rdf.NewIRI(fmt.Sprintf("http://ex.org/l/%d", i))
		for _, o := range sl.Objects(item, pn) {
			sl.Remove(rdf.T(item, pn, o))
		}
		sl.Add(rdf.T(item, pn, rdf.NewLiteral("BATCHED")))
		patchItems = append(patchItems, item)
	}
	eng.ApplyPatches([]IndexPatch{
		{Side: LocalSide, Items: patchItems},
		{Side: LocalSide, Remove: true, Items: patchItems[:3]},
	})
	verify("after patches")

	// Remove every item from both sides: the cache must drain to zero.
	var ext, loc []rdf.Term
	for i := 0; i < 40; i++ {
		ext = append(ext, rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", i)))
	}
	for i := 0; i < 30; i++ {
		loc = append(loc, rdf.NewIRI(fmt.Sprintf("http://ex.org/l/%d", i)))
	}
	eng.Remove(ExternalSide, ext...)
	eng.Remove(LocalSide, loc...)
	if got := vc.Size(); got != 0 {
		t.Fatalf("cache holds %d entries after removing every item, want 0", got)
	}
	if got := refTotal(vc); got != 0 {
		t.Fatalf("cache holds %d refs after removing every item, want 0", got)
	}
}

// TestPreparedPathMatchesPlainMeasures asserts the engine's prepared
// fast path is observationally identical to scoring with the plain
// measures through a Func wrapper (which can never be prepared).
func TestPreparedPathMatchesPlainMeasures(t *testing.T) {
	se, sl, pairs, _ := seededGraphs(13, 50, 35)
	fast := Config{
		Comparators: []Comparator{
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Levenshtein{}, Weight: 2},
			{ExternalProperty: label, LocalProperty: label, Measure: similarity.Damerau{}, Weight: 1},
		},
		Threshold: 0.1,
	}
	slow := fast
	slow.Comparators = []Comparator{
		{ExternalProperty: pn, LocalProperty: pn,
			Measure: similarity.Func{F: similarity.Levenshtein{}.Similarity, ID: "lev"}, Weight: 2},
		{ExternalProperty: label, LocalProperty: label,
			Measure: similarity.Func{F: similarity.Damerau{}.Similarity, ID: "dam"}, Weight: 1},
	}
	fe, err := New(fast, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	se2, sl2 := se.Snapshot(), sl.Snapshot()
	we, err := New(slow, se2, sl2)
	if err != nil {
		t.Fatal(err)
	}
	fm, wm := fe.ScorePairs(pairs), we.ScorePairs(pairs)
	if len(fm) != len(wm) {
		t.Fatalf("prepared path found %d matches, plain %d", len(fm), len(wm))
	}
	for i := range fm {
		if fm[i] != wm[i] {
			t.Fatalf("match %d differs: prepared %+v, plain %+v", i, fm[i], wm[i])
		}
	}
}
