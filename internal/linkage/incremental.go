package linkage

import "repro/internal/rdf"

// Side selects which of an engine's two sources an item belongs to.
type Side int

const (
	// ExternalSide addresses items of the external graph (SE).
	ExternalSide Side = iota
	// LocalSide addresses items of the local catalog graph (SL).
	LocalSide
)

// String returns the side name, for diagnostics and wire formats.
func (s Side) String() string {
	if s == ExternalSide {
		return "external"
	}
	return "local"
}

// Upsert re-reads each item's comparator property values from the
// engine's graph on the given side and updates the value index in place,
// so a live graph never forces a full New rebuild. Call it after adding,
// changing or deleting an item's triples; an item with no remaining
// comparator values is dropped from the index (making Upsert subsume
// Remove for deleted items).
//
// The index's recorded graph version advances to the graph's current
// Version, so the caller's contract is: mutate the graph, then Upsert
// every item touched since the last Upsert. Safe to call concurrently
// with queries — readers block for the duration of the update and then
// observe all of it.
func (e *Engine) Upsert(side Side, items ...rdf.Term) {
	st := e.st
	st.mu.Lock()
	defer st.mu.Unlock()
	g := st.graph(side)
	for ci := range st.comps {
		c := &st.comps[ci]
		m, prop := c.sideIndex(side)
		for _, item := range items {
			// Acquire the new values before releasing the old ones, so a
			// value present in both keeps its cache entry warm instead of
			// being dropped and rebuilt.
			vals := itemValues(g, item, prop, st.cache, c.slot)
			old := m[item]
			if len(vals) == 0 {
				delete(m, item)
			} else {
				m[item] = vals
			}
			st.cache.release(old)
		}
	}
	st.syncVersion(side)
}

// Remove drops the items from the value index on the given side without
// consulting the graph. Equivalent to Upsert after the items' triples
// were removed, but never re-reads, so it also works when the graph still
// holds the triples (soft-deleting an item from linking only). A soft
// delete lives only as long as this index: anything that rebuilds the
// engine from the graphs (linkage.New, e.g. via a Pipeline cache miss on
// a comparator change) re-indexes the item. To delete durably, remove
// the triples from the graph before calling Remove or Upsert.
func (e *Engine) Remove(side Side, items ...rdf.Term) {
	st := e.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for ci := range st.comps {
		c := &st.comps[ci]
		m, _ := c.sideIndex(side)
		for _, item := range items {
			st.cache.release(m[item])
			delete(m, item)
		}
	}
	st.syncVersion(side)
}

// IndexPatch is one batched value-index mutation: re-index (or with
// Remove, drop) Items on Side. A slice of patches expresses an ordered
// mixed upsert/remove batch for ApplyPatches.
type IndexPatch struct {
	Side   Side
	Remove bool
	Items  []rdf.Term
}

// ApplyPatches applies an ordered sequence of upsert/remove patches
// under ONE acquisition of the index lock, so a 10k-item bulk load
// blocks readers once instead of once per sub-op. Semantics per patch
// match Upsert (Remove=false: re-read from the graph, dropping items
// with no remaining values) and Remove (Remove=true: drop without
// consulting the graph); each touched side's recorded graph version
// advances once at the end.
func (e *Engine) ApplyPatches(patches []IndexPatch) {
	st := e.st
	st.mu.Lock()
	defer st.mu.Unlock()
	var touched [2]bool
	for _, p := range patches {
		g := st.graph(p.Side)
		for ci := range st.comps {
			c := &st.comps[ci]
			m, prop := c.sideIndex(p.Side)
			for _, item := range p.Items {
				if p.Remove {
					st.cache.release(m[item])
					delete(m, item)
					continue
				}
				vals := itemValues(g, item, prop, st.cache, c.slot)
				old := m[item]
				if len(vals) == 0 {
					delete(m, item)
				} else {
					m[item] = vals
				}
				st.cache.release(old)
			}
		}
		touched[p.Side] = true
	}
	if touched[ExternalSide] {
		st.syncVersion(ExternalSide)
	}
	if touched[LocalSide] {
		st.syncVersion(LocalSide)
	}
}

// Versions returns the external and local graph versions the value index
// currently reflects: the Version() observed at New, advanced by each
// Upsert/Remove on the respective side.
func (e *Engine) Versions() (ext, loc uint64) {
	e.st.mu.RLock()
	defer e.st.mu.RUnlock()
	return e.st.extVer, e.st.locVer
}

// Fresh reports whether the index reflects the current versions of both
// underlying graphs, i.e. no graph mutation since the last Upsert/Remove
// (or New) is still unindexed.
func (e *Engine) Fresh() bool {
	e.st.mu.RLock()
	defer e.st.mu.RUnlock()
	return e.st.extVer == graphVersion(e.st.se) && e.st.locVer == graphVersion(e.st.sl)
}

func (st *engineState) graph(side Side) *rdf.Graph {
	if side == ExternalSide {
		return st.se
	}
	return st.sl
}

func (st *engineState) syncVersion(side Side) {
	if side == ExternalSide {
		st.extVer = graphVersion(st.se)
	} else {
		st.locVer = graphVersion(st.sl)
	}
}
