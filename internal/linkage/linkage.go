// Package linkage implements the downstream linking step that runs inside
// the reduced linking space: pairwise comparison of external and local
// item descriptions with configurable per-property similarity measures,
// match decisions, and evaluation against ground-truth links.
//
// The paper deliberately leaves the linking method open — its
// contribution is the reduction of the space the method runs on — so this
// engine is a standard weighted-average record matcher over the
// similarity toolbox of internal/similarity.
package linkage

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/similarity"
)

// Comparator compares one external property against one local property
// under a similarity measure.
type Comparator struct {
	ExternalProperty rdf.Term
	LocalProperty    rdf.Term
	Measure          similarity.Measure
	// Weight scales this comparator's contribution; non-positive weights
	// are rejected by Validate.
	Weight float64
}

// Config configures the matching engine.
type Config struct {
	Comparators []Comparator
	// Threshold is the minimum weighted score for a pair to be declared
	// a match, in [0, 1].
	Threshold float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Comparators) == 0 {
		return fmt.Errorf("linkage: no comparators configured")
	}
	for i, cmp := range c.Comparators {
		if cmp.Measure == nil {
			return fmt.Errorf("linkage: comparator %d has nil measure", i)
		}
		if cmp.Weight <= 0 {
			return fmt.Errorf("linkage: comparator %d has non-positive weight %v", i, cmp.Weight)
		}
		if cmp.ExternalProperty.IsZero() || cmp.LocalProperty.IsZero() {
			return fmt.Errorf("linkage: comparator %d has zero property", i)
		}
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("linkage: threshold %v out of [0,1]", c.Threshold)
	}
	return nil
}

// Engine scores and links pairs between two graphs. Safe for concurrent
// use after construction.
type Engine struct {
	cfg Config
	se  *rdf.Graph
	sl  *rdf.Graph
}

// New builds an engine over the external and local graphs.
func New(cfg Config, se, sl *rdf.Graph) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, se: se, sl: sl}, nil
}

// Score computes the weighted similarity of one pair in [0, 1]. For a
// multi-valued property the best-scoring value pair counts. Comparators
// whose properties are absent on either side score 0 but keep their
// weight in the denominator, penalizing missing information.
func (e *Engine) Score(ext, loc rdf.Term) float64 {
	num, den := 0.0, 0.0
	for _, cmp := range e.cfg.Comparators {
		den += cmp.Weight
		evs := literalValues(e.se, ext, cmp.ExternalProperty)
		lvs := literalValues(e.sl, loc, cmp.LocalProperty)
		best := 0.0
		for _, ev := range evs {
			for _, lv := range lvs {
				if s := cmp.Measure.Similarity(ev, lv); s > best {
					best = s
				}
			}
		}
		num += cmp.Weight * best
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func literalValues(g *rdf.Graph, item, prop rdf.Term) []string {
	var out []string
	for _, o := range g.Objects(item, prop) {
		if o.IsLiteral() {
			out = append(out, o.Value)
		}
	}
	return out
}

// Match is a declared same-as link with its score.
type Match struct {
	External rdf.Term
	Local    rdf.Term
	Score    float64
}

// ScorePairs scores candidate pairs and returns those at or above the
// threshold, sorted by descending score (ties broken deterministically).
func (e *Engine) ScorePairs(pairs [][2]rdf.Term) []Match {
	var out []Match
	for _, p := range pairs {
		if s := e.Score(p[0], p[1]); s >= e.cfg.Threshold {
			out = append(out, Match{External: p[0], Local: p[1], Score: s})
		}
	}
	sortMatches(out)
	return out
}

// LinkBest performs one-to-one greedy linking: every external item is
// linked to its best-scoring candidate at or above the threshold. The
// candidates map gives each external item's reduced linking space.
func (e *Engine) LinkBest(candidates map[rdf.Term][]rdf.Term) []Match {
	var out []Match
	for ext, locs := range candidates {
		best := Match{Score: -1}
		for _, loc := range locs {
			s := e.Score(ext, loc)
			if s > best.Score || (s == best.Score && loc.Compare(best.Local) < 0) {
				best = Match{External: ext, Local: loc, Score: s}
			}
		}
		if best.Score >= e.cfg.Threshold {
			out = append(out, best)
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		if c := ms[i].External.Compare(ms[j].External); c != 0 {
			return c < 0
		}
		return ms[i].Local.Compare(ms[j].Local) < 0
	})
}

// Result is a confusion summary of declared links against ground truth.
type Result struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision is TP / (TP + FP).
func (r Result) Precision() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// Recall is TP / (TP + FN).
func (r Result) Recall() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// F1 is the harmonic mean of precision and recall.
func (r Result) F1() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// Evaluate scores declared matches against the truth links.
func Evaluate(found []Match, truth []core.Link) Result {
	truthSet := make(map[core.Link]struct{}, len(truth))
	for _, l := range truth {
		truthSet[l] = struct{}{}
	}
	var res Result
	seen := map[core.Link]struct{}{}
	for _, m := range found {
		l := core.Link{External: m.External, Local: m.Local}
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		if _, ok := truthSet[l]; ok {
			res.TruePositives++
		} else {
			res.FalsePositives++
		}
	}
	res.FalseNegatives = len(truth) - res.TruePositives
	return res
}
