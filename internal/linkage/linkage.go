// Package linkage implements the downstream linking step that runs inside
// the reduced linking space: pairwise comparison of external and local
// item descriptions with configurable per-property similarity measures,
// match decisions, and evaluation against ground-truth links.
//
// The paper deliberately leaves the linking method open — its
// contribution is the reduction of the space the method runs on — so this
// engine is a standard weighted-average record matcher over the
// similarity toolbox of internal/similarity.
//
// # Architecture: value index and worker model
//
// Pair comparison is the dominant cost of linking, so the engine is built
// around two ideas:
//
//   - Value index. New snapshots each comparator's property values out of
//     the RDF graphs into flat per-item slices (internal/linkage/index.go).
//     Per-value derivations — rune lengths, token lists and token sets for
//     token-based measures, precompiled patterns for PreparedMeasures
//     (Myers bitmaps for the edit distances, TF-IDF weight vectors) — live
//     in a shared per-engine cache (internal/linkage/cache.go) keyed by the
//     distinct value string, so a value appearing under several comparators
//     or on both sides is derived once. Score therefore never touches
//     rdf.Graph: a pair costs two map lookups plus the measure calls,
//     length-bounded measures (the edit distances and the Jaro family) skip
//     value pairs whose length difference already rules out beating the
//     current best, and prepared measures score precompiled pattern against
//     precompiled pattern. The index is a snapshot: graph mutations after
//     New are not observed, and the incremental paths keep the cache
//     reference-counted so it stays exactly as large as the live index.
//
//   - Parallel scoring. ScorePairs and LinkBest fan work out across
//     Config.Workers goroutines (default: all cores) using the chunked
//     work-stealing scaffold of internal/par — an atomic cursor hands
//     fixed-size chunks to idle workers, each worker writes its chunk's
//     matches into a dedicated result slot, and the chunks are
//     concatenated in order and sorted under the same total order as the
//     serial path. Output is byte-identical to Workers=1 on the same
//     input. The Ctx variants additionally observe context cancellation
//     between chunks, so a dropped service request stops in-flight
//     scoring.
//
// # Live engines
//
// The value index is mutable after construction: Upsert and Remove
// (internal/linkage/incremental.go) re-index single items in place,
// guarded by an RWMutex so concurrent ScorePairs/LinkBest readers always
// observe a consistent snapshot — each read operation holds the read
// lock end-to-end (the streaming variants per scoring batch), and
// writers are excluded for its duration. The index
// records the rdf.Graph.Version counters it reflects, letting callers
// that cache engines (Pipeline) detect staleness without rebuilding.
// StreamPairs and LinkBestStream (internal/linkage/stream.go) score
// candidate pairs produced by an iterator in bounded memory, so huge
// candidate spaces never materialize [][2]Term.
package linkage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rdf"
	"repro/internal/similarity"
)

// Comparator compares one external property against one local property
// under a similarity measure.
type Comparator struct {
	ExternalProperty rdf.Term
	LocalProperty    rdf.Term
	Measure          similarity.Measure
	// Weight scales this comparator's contribution; non-positive weights
	// are rejected by Validate.
	Weight float64
}

// Config configures the matching engine.
type Config struct {
	Comparators []Comparator
	// Threshold is the minimum weighted score for a pair to be declared
	// a match, in [0, 1].
	Threshold float64
	// Workers is the number of goroutines ScorePairs and LinkBest fan
	// out across. 0 means runtime.GOMAXPROCS(0); 1 forces the serial
	// path. Output is identical for every worker count.
	Workers int
}

// ErrConfig marks an invalid Config: every Validate failure wraps it, so
// callers (e.g. an HTTP handler) can classify configuration mistakes as
// client errors via errors.Is without string matching.
var ErrConfig = errors.New("linkage: invalid config")

// Validate checks the configuration. All errors wrap ErrConfig.
func (c Config) Validate() error {
	if len(c.Comparators) == 0 {
		return fmt.Errorf("%w: no comparators configured", ErrConfig)
	}
	for i, cmp := range c.Comparators {
		if cmp.Measure == nil {
			return fmt.Errorf("%w: comparator %d has nil measure", ErrConfig, i)
		}
		if cmp.Weight <= 0 {
			return fmt.Errorf("%w: comparator %d has non-positive weight %v", ErrConfig, i, cmp.Weight)
		}
		if cmp.ExternalProperty.IsZero() || cmp.LocalProperty.IsZero() {
			return fmt.Errorf("%w: comparator %d has zero property", ErrConfig, i)
		}
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("%w: threshold %v out of [0,1]", ErrConfig, c.Threshold)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: negative worker count %d", ErrConfig, c.Workers)
	}
	return nil
}

// Engine scores and links pairs between two graphs. Construction
// snapshots every comparator property's values into the engine's value
// index; the graphs are consulted again only by Upsert, which re-indexes
// individual items from them. Safe for concurrent use, including queries
// running concurrently with Upsert/Remove.
type Engine struct {
	cfg Config
	// st is the mutable value index, shared with every engine derived via
	// WithOptions so incremental updates reach all of them.
	st *engineState
}

// engineState is the shared, mutable half of an engine: the compiled
// value index, the live graph references Upsert re-reads from, and the
// graph versions the index currently reflects. mu serializes writers
// (Upsert, Remove) against the read paths, each of which holds the read
// lock for the duration of one query so it sees a consistent snapshot.
type engineState struct {
	mu    sync.RWMutex
	comps []compiledComparator
	// cache is the shared per-value derivation cache the comparator
	// indexes point into; writers keep it reference-counted through the
	// same lock that guards the indexes.
	cache *valueCache
	// totalWeight is the constant score denominator: every comparator
	// keeps its weight whether or not values are present.
	totalWeight float64
	se, sl      *rdf.Graph
	extVer      uint64
	locVer      uint64
}

// New builds an engine over the external and local graphs, materializing
// the value index (see the package comment). Mutations to the graphs
// after New are not observed by the engine until the mutated items are
// passed to Upsert or Remove.
func New(cfg Config, se, sl *rdf.Graph) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	comps, cache := compileComparators(cfg, se, sl)
	st := &engineState{
		comps:  comps,
		cache:  cache,
		se:     se,
		sl:     sl,
		extVer: graphVersion(se),
		locVer: graphVersion(sl),
	}
	for _, c := range st.comps {
		st.totalWeight += c.weight
	}
	return &Engine{cfg: cfg, st: st}, nil
}

func graphVersion(g *rdf.Graph) uint64 {
	if g == nil {
		return 0
	}
	return g.Version()
}

// WithOptions returns an engine sharing this engine's value index under
// a different threshold and worker count, skipping the index rebuild.
// The comparators are unchanged, and incremental updates through either
// engine are visible to both.
func (e *Engine) WithOptions(threshold float64, workers int) (*Engine, error) {
	cfg := e.cfg
	cfg.Threshold = threshold
	cfg.Workers = workers
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, st: e.st}, nil
}

// workers resolves Config.Workers: 0 means all cores.
func (e *Engine) workers() int { return par.Workers(e.cfg.Workers) }

// chunkSize is the number of items a worker claims at a time.
const chunkSize = par.DefaultChunk

// Score computes the weighted similarity of one pair in [0, 1]. For a
// multi-valued property the best-scoring value pair counts. Comparators
// whose properties are absent on either side score 0 but keep their
// weight in the denominator, penalizing missing information.
func (e *Engine) Score(ext, loc rdf.Term) float64 {
	e.st.mu.RLock()
	defer e.st.mu.RUnlock()
	return e.st.score(ext, loc)
}

// score is the hot path; callers must hold st.mu (read or write).
func (st *engineState) score(ext, loc rdf.Term) float64 {
	if st.totalWeight == 0 {
		return 0
	}
	num := 0.0
	for i := range st.comps {
		c := &st.comps[i]
		evs, lvs := c.ext[ext], c.loc[loc]
		if len(evs) == 0 || len(lvs) == 0 {
			continue
		}
		best := 0.0
		for vi := range evs {
			ev := evs[vi].entry
			for vj := range lvs {
				lv := lvs[vj].entry
				// A value pair whose length bound cannot beat the current
				// best is settled without running the measure.
				if c.bounded != nil && c.bounded.SimilarityUpperBound(ev.runeLen, lv.runeLen) <= best {
					continue
				}
				var s float64
				switch {
				case c.prepared != nil:
					// Every value indexed under this comparator was acquired
					// with its slot, so both sides' patterns exist.
					s = ev.prepared[c.slot].SimilarityPrepared(lv.prepared[c.slot])
				case c.tokenSets != nil:
					s = c.tokenSets.SimilarityTokenSets(ev.tokenSet, lv.tokenSet)
				case c.tokens != nil:
					s = c.tokens.SimilarityTokens(ev.tokens, lv.tokens)
				default:
					s = c.measure.Similarity(evs[vi].value, lvs[vj].value)
				}
				if s > best {
					best = s
				}
			}
		}
		num += c.weight * best
	}
	return num / st.totalWeight
}

// Match is a declared same-as link with its score.
type Match struct {
	External rdf.Term
	Local    rdf.Term
	Score    float64
}

// ScorePairs scores candidate pairs and returns those at or above the
// threshold, sorted by descending score (ties broken deterministically).
// The work is spread across Config.Workers goroutines; output is
// identical for every worker count.
func (e *Engine) ScorePairs(pairs [][2]rdf.Term) []Match {
	out, _ := e.ScorePairsCtx(context.Background(), pairs)
	return out
}

// ScorePairsCtx is ScorePairs with cooperative cancellation: when ctx is
// cancelled mid-run, in-flight chunks finish, the rest are skipped, and
// ctx.Err() is returned with a nil slice.
func (e *Engine) ScorePairsCtx(ctx context.Context, pairs [][2]rdf.Term) ([]Match, error) {
	st := e.st
	st.mu.RLock()
	defer st.mu.RUnlock()
	out, err := par.MapChunks(ctx, e.workers(), chunkSize, pairs, func(p [2]rdf.Term) (Match, bool) {
		s := st.score(p[0], p[1])
		return Match{External: p[0], Local: p[1], Score: s}, s >= e.cfg.Threshold
	})
	if err != nil {
		return nil, err
	}
	sortMatches(out)
	return out, nil
}

// LinkBest performs one-to-one greedy linking: every external item is
// linked to its best-scoring candidate at or above the threshold. The
// candidates map gives each external item's reduced linking space. The
// per-item searches are spread across Config.Workers goroutines; output
// is identical for every worker count.
func (e *Engine) LinkBest(candidates map[rdf.Term][]rdf.Term) []Match {
	out, _ := e.LinkBestCtx(context.Background(), candidates)
	return out
}

// LinkBestCtx is LinkBest with cooperative cancellation, following the
// contract of ScorePairsCtx.
func (e *Engine) LinkBestCtx(ctx context.Context, candidates map[rdf.Term][]rdf.Term) ([]Match, error) {
	exts := make([]rdf.Term, 0, len(candidates))
	for ext := range candidates {
		exts = append(exts, ext)
	}
	st := e.st
	st.mu.RLock()
	defer st.mu.RUnlock()
	out, err := par.MapChunks(ctx, e.workers(), chunkSize, exts, func(ext rdf.Term) (Match, bool) {
		return st.bestFor(ext, candidates[ext], e.cfg.Threshold)
	})
	if err != nil {
		return nil, err
	}
	sortMatches(out)
	return out, nil
}

// bestFor returns ext's best-scoring candidate among locs and whether it
// clears the threshold; callers must hold st.mu.
func (st *engineState) bestFor(ext rdf.Term, locs []rdf.Term, threshold float64) (Match, bool) {
	best := Match{Score: -1}
	for _, loc := range locs {
		s := st.score(ext, loc)
		if s > best.Score || (s == best.Score && loc.Compare(best.Local) < 0) {
			best = Match{External: ext, Local: loc, Score: s}
		}
	}
	return best, best.Score >= threshold
}

// TopK scores ext against every candidate in locs and returns up to k
// matches at or above the threshold, best first under the same total
// order ScorePairs sorts by. k <= 0 means no limit.
func (e *Engine) TopK(ext rdf.Term, locs []rdf.Term, k int) []Match {
	st := e.st
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Match
	for _, loc := range locs {
		if s := st.score(ext, loc); s >= e.cfg.Threshold {
			out = append(out, Match{External: ext, Local: loc, Score: s})
		}
	}
	sortMatches(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		if c := ms[i].External.Compare(ms[j].External); c != 0 {
			return c < 0
		}
		return ms[i].Local.Compare(ms[j].Local) < 0
	})
}

// Result is a confusion summary of declared links against ground truth.
type Result struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision is TP / (TP + FP).
func (r Result) Precision() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// Recall is TP / (TP + FN).
func (r Result) Recall() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// F1 is the harmonic mean of precision and recall.
func (r Result) F1() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// Evaluate scores declared matches against the truth links.
func Evaluate(found []Match, truth []core.Link) Result {
	truthSet := make(map[core.Link]struct{}, len(truth))
	for _, l := range truth {
		truthSet[l] = struct{}{}
	}
	var res Result
	seen := map[core.Link]struct{}{}
	for _, m := range found {
		l := core.Link{External: m.External, Local: m.Local}
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		if _, ok := truthSet[l]; ok {
			res.TruePositives++
		} else {
			res.FalsePositives++
		}
	}
	res.FalseNegatives = len(truth) - res.TruePositives
	return res
}
