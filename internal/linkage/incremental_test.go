package linkage

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/similarity"
)

func incrementalConfig() Config {
	return Config{
		Comparators: []Comparator{
			{ExternalProperty: pn, LocalProperty: pn, Measure: similarity.Levenshtein{}, Weight: 2},
			{ExternalProperty: label, LocalProperty: label, Measure: similarity.Jaccard{}, Weight: 1},
		},
		Threshold: 0.2,
		Workers:   2,
	}
}

// rebuildEqual asserts that the incrementally maintained engine scores
// every pair exactly like a fresh engine built from the current graphs.
func rebuildEqual(t *testing.T, live *Engine, se, sl *rdf.Graph, pairs [][2]rdf.Term) {
	t.Helper()
	fresh, err := New(live.cfg, se, sl)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := live.ScorePairs(pairs), fresh.ScorePairs(pairs); !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental engine diverges from full rebuild: %d vs %d matches", len(got), len(want))
	}
}

// TestUpsertMatchesRebuild pins the core incremental-maintenance
// guarantee: after any graph mutation followed by Upsert of the touched
// items, the engine is indistinguishable from a full linkage.New rebuild
// — for added items, changed values, multi-valued properties and
// deletions on both sides.
func TestUpsertMatchesRebuild(t *testing.T) {
	se, sl, pairs, _ := seededGraphs(51, 60, 40)
	eng, err := New(incrementalConfig(), se, sl)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Fresh() {
		t.Fatal("new engine must be fresh")
	}

	// Change an existing external item's part number (remove + add).
	e0 := rdf.NewIRI("http://ex.org/e/0")
	for _, o := range se.Objects(e0, pn) {
		se.Remove(rdf.T(e0, pn, o))
	}
	se.Add(rdf.T(e0, pn, rdf.NewLiteral("CHANGED-0815")))
	if eng.Fresh() {
		t.Fatal("engine must report stale after graph mutation")
	}
	eng.Upsert(ExternalSide, e0)
	if !eng.Fresh() {
		t.Fatal("engine must report fresh after Upsert")
	}
	rebuildEqual(t, eng, se, sl, pairs)

	// Add a brand-new local item with both properties, multi-valued.
	lNew := rdf.NewIRI("http://ex.org/l/new")
	sl.Add(rdf.T(lNew, pn, rdf.NewLiteral("CHANGED-0815")))
	sl.Add(rdf.T(lNew, pn, rdf.NewLiteral("CHANGED-0816")))
	sl.Add(rdf.T(lNew, label, rdf.NewLiteral("changed item label")))
	eng.Upsert(LocalSide, lNew)
	augmented := append(append([][2]rdf.Term{}, pairs...), [2]rdf.Term{e0, lNew})
	rebuildEqual(t, eng, se, sl, augmented)
	// pn matches exactly (weight 2), labels differ (weight 1): score 2/3.
	if m := eng.TopK(e0, []rdf.Term{lNew}, 1); len(m) != 1 || m[0].Score < 0.6 {
		t.Fatalf("upserted pair must score high, got %v", m)
	}

	// Delete a local item's triples entirely; Upsert must drop it.
	l0 := rdf.NewIRI("http://ex.org/l/0")
	for _, tr := range sl.Find(l0, rdf.Term{}, rdf.Term{}) {
		sl.Remove(tr)
	}
	eng.Upsert(LocalSide, l0)
	rebuildEqual(t, eng, se, sl, augmented)

	// Non-literal objects must be ignored exactly like at construction.
	se.Add(rdf.T(e0, pn, rdf.NewIRI("http://ex.org/not-a-literal")))
	eng.Upsert(ExternalSide, e0)
	rebuildEqual(t, eng, se, sl, augmented)
}

// TestRemoveDropsItems checks Remove on both sides, without graph
// mutation (soft delete) and its equivalence to scoring absent items.
func TestRemoveDropsItems(t *testing.T) {
	se, sl, pairs, _ := seededGraphs(52, 30, 20)
	eng, err := New(incrementalConfig(), se, sl)
	if err != nil {
		t.Fatal(err)
	}
	e0 := rdf.NewIRI("http://ex.org/e/0")
	l0 := rdf.NewIRI("http://ex.org/l/0")
	eng.Remove(ExternalSide, e0)
	eng.Remove(LocalSide, l0)
	if got := eng.Score(e0, l0); got != 0 {
		t.Fatalf("score of removed items = %v, want 0", got)
	}
	for _, p := range pairs {
		if p[0] == e0 || p[1] == l0 {
			continue
		}
		// Untouched pairs must be unaffected.
		fresh, _ := New(eng.cfg, se, sl)
		if got, want := eng.Score(p[0], p[1]), fresh.Score(p[0], p[1]); got != want {
			t.Fatalf("Remove disturbed unrelated pair %v: %v != %v", p, got, want)
		}
		break
	}
	// Re-adding via Upsert restores the items from the intact graphs.
	eng.Upsert(ExternalSide, e0)
	eng.Upsert(LocalSide, l0)
	fresh, _ := New(eng.cfg, se, sl)
	if got, want := eng.Score(e0, l0), fresh.Score(e0, l0); got != want {
		t.Fatalf("Upsert after Remove: %v != %v", got, want)
	}
}

// TestUpsertSharedWithOptions checks that engines derived via WithOptions
// share the live index: an update through one is visible to the other.
func TestUpsertSharedWithOptions(t *testing.T) {
	se, sl, _, _ := seededGraphs(53, 10, 10)
	eng, err := New(incrementalConfig(), se, sl)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := eng.WithOptions(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	e0 := rdf.NewIRI("http://ex.org/e/0")
	l0 := rdf.NewIRI("http://ex.org/l/0")
	for _, o := range se.Objects(e0, pn) {
		se.Remove(rdf.T(e0, pn, o))
	}
	for _, o := range sl.Objects(l0, pn) {
		sl.Remove(rdf.T(l0, pn, o))
	}
	se.Add(rdf.T(e0, pn, rdf.NewLiteral("SHARED-1")))
	sl.Add(rdf.T(l0, pn, rdf.NewLiteral("SHARED-1")))
	eng.Upsert(ExternalSide, e0)
	eng.Upsert(LocalSide, l0)
	if s := derived.Score(e0, l0); s < 0.6 {
		t.Fatalf("derived engine does not see upsert: score %v", s)
	}
	extV, locV := derived.Versions()
	if extV != se.Version() || locV != sl.Version() {
		t.Fatalf("Versions() = (%d, %d), graphs at (%d, %d)", extV, locV, se.Version(), sl.Version())
	}
}

// TestConcurrentQueryUnderUpdate interleaves Upsert/Remove with LinkBest,
// ScorePairsCtx and StreamPairs from several goroutines. Run under -race
// this is the engine's core liveness/consistency test: queries must never
// observe a torn index, and every returned score must be a valid score
// under some prefix of the update sequence (here simply: no panics, no
// races, scores within [0, 1]).
func TestConcurrentQueryUnderUpdate(t *testing.T) {
	se, sl, pairs, cands := seededGraphs(54, 80, 60)
	eng, err := New(incrementalConfig(), se, sl)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 40
	var wg sync.WaitGroup

	// Writer: keeps rewriting a rotating set of external items. Graph
	// mutation itself is confined to this goroutine (rdf.Graph is not
	// safe for concurrent mutation); the engine's lock makes the index
	// updates safe against the readers below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for r := 0; r < rounds; r++ {
			item := rdf.NewIRI(fmt.Sprintf("http://ex.org/e/%d", rng.Intn(80)))
			for _, o := range se.Objects(item, pn) {
				se.Remove(rdf.T(item, pn, o))
			}
			se.Add(rdf.T(item, pn, rdf.NewLiteral(fmt.Sprintf("LIVE-%d", r))))
			eng.Upsert(ExternalSide, item)
			if r%5 == 0 {
				eng.Remove(ExternalSide, item)
				eng.Upsert(ExternalSide, item)
			}
		}
	}()

	check := func(ms []Match) {
		for _, m := range ms {
			if m.Score < 0 || m.Score > 1 {
				t.Errorf("score out of range: %v", m.Score)
				return
			}
		}
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch r % 3 {
				case 0:
					check(eng.LinkBest(cands))
				case 1:
					ms, err := eng.ScorePairsCtx(context.Background(), pairs)
					if err != nil {
						t.Error(err)
						return
					}
					check(ms)
				default:
					var ms []Match
					if err := eng.StreamPairs(context.Background(), MaterializedPairs(pairs), func(m Match) bool {
						ms = append(ms, m)
						return true
					}); err != nil {
						t.Error(err)
						return
					}
					check(ms)
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles the index must equal a full rebuild.
	rebuildEqual(t, eng, se, sl, pairs)
}
