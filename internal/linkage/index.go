package linkage

import (
	"sort"
	"unicode/utf8"

	"repro/internal/rdf"
	"repro/internal/similarity"
)

// indexedValue is one literal value of an item under a comparator
// property, with everything the hot comparison loop needs precomputed:
// the lexical form, its rune length (for length-bound early exits) and,
// when the comparator's measure is token-based, the token list.
type indexedValue struct {
	value   string
	runeLen int
	tokens  []string
	// tokenSet is additionally prebuilt for set-based measures (Jaccard),
	// which would otherwise construct two maps per pair comparison.
	tokenSet map[string]struct{}
}

// compiledComparator is one configured comparator with its measure
// capabilities resolved and both sides' values materialized, so scoring a
// pair is pure in-memory slice work — no graph access, no re-tokenizing.
// The property terms are retained so Upsert can re-read a single item's
// values from a live graph.
type compiledComparator struct {
	weight  float64
	measure similarity.Measure
	// extProp and locProp are the configured property terms, kept for
	// incremental re-indexing.
	extProp rdf.Term
	locProp rdf.Term
	// bounded is non-nil when the measure can bound its score from value
	// lengths alone; the engine then skips value pairs whose bound cannot
	// beat the current best.
	bounded similarity.LengthBounded
	// tokens is non-nil when the measure scores pre-tokenized values; the
	// engine then tokenizes each value once at build time.
	tokens similarity.Tokenized
	// tokenSets is non-nil when the measure scores prebuilt token sets;
	// preferred over tokens in the hot loop.
	tokenSets similarity.TokenSetScored
	ext       map[rdf.Term][]indexedValue
	loc       map[rdf.Term][]indexedValue
}

// sideIndex returns the comparator's value map and property for one side.
func (cc *compiledComparator) sideIndex(side Side) (map[rdf.Term][]indexedValue, rdf.Term) {
	if side == ExternalSide {
		return cc.ext, cc.extProp
	}
	return cc.loc, cc.locProp
}

// compileComparators materializes the value index for every comparator.
func compileComparators(cfg Config, se, sl *rdf.Graph) []compiledComparator {
	comps := make([]compiledComparator, len(cfg.Comparators))
	for i, cmp := range cfg.Comparators {
		cc := compiledComparator{
			weight:  cmp.Weight,
			measure: cmp.Measure,
			extProp: cmp.ExternalProperty,
			locProp: cmp.LocalProperty,
		}
		cc.bounded, _ = cmp.Measure.(similarity.LengthBounded)
		cc.tokens, _ = cmp.Measure.(similarity.Tokenized)
		if cc.tokens != nil {
			// Token sets are derived from the token lists, so a measure
			// must be Tokenized for the set path to have data.
			cc.tokenSets, _ = cmp.Measure.(similarity.TokenSetScored)
		}
		cc.ext = buildValueIndex(se, cmp.ExternalProperty, cc.tokens != nil, cc.tokenSets != nil)
		cc.loc = buildValueIndex(sl, cmp.LocalProperty, cc.tokens != nil, cc.tokenSets != nil)
		comps[i] = cc
	}
	return comps
}

// buildValueIndex collects every item's literal values under prop in one
// pass over the graph's predicate index. Values are ordered by
// rdf.Term.Compare, matching what Graph.Objects used to return, so the
// indexed engine is observationally identical to the graph-walking one.
func buildValueIndex(g *rdf.Graph, prop rdf.Term, tokenize, buildSets bool) map[rdf.Term][]indexedValue {
	byItem := map[rdf.Term][]rdf.Term{}
	if g != nil {
		g.Match(rdf.Term{}, prop, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O.IsLiteral() {
				byItem[t.S] = append(byItem[t.S], t.O)
			}
			return true
		})
	}
	out := make(map[rdf.Term][]indexedValue, len(byItem))
	for item, objs := range byItem {
		out[item] = compileValues(objs, tokenize, buildSets)
	}
	return out
}

// itemValues re-reads one item's literal values under prop, producing the
// same indexed representation buildValueIndex would — the unit of work of
// an incremental Upsert.
func itemValues(g *rdf.Graph, item, prop rdf.Term, tokenize, buildSets bool) []indexedValue {
	var objs []rdf.Term
	if g != nil {
		g.Match(item, prop, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O.IsLiteral() {
				objs = append(objs, t.O)
			}
			return true
		})
	}
	if len(objs) == 0 {
		return nil
	}
	return compileValues(objs, tokenize, buildSets)
}

// compileValues sorts the raw value terms and precomputes rune lengths,
// token lists and token sets as the comparator's measure requires.
func compileValues(objs []rdf.Term, tokenize, buildSets bool) []indexedValue {
	sort.Slice(objs, func(i, j int) bool { return objs[i].Compare(objs[j]) < 0 })
	vals := make([]indexedValue, len(objs))
	for i, o := range objs {
		vals[i] = indexedValue{value: o.Value, runeLen: utf8.RuneCountInString(o.Value)}
		if tokenize {
			vals[i].tokens = similarity.Tokenize(o.Value)
			if buildSets {
				vals[i].tokenSet = make(map[string]struct{}, len(vals[i].tokens))
				for _, tok := range vals[i].tokens {
					vals[i].tokenSet[tok] = struct{}{}
				}
			}
		}
	}
	return vals
}
