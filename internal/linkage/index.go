package linkage

import (
	"sort"

	"repro/internal/rdf"
	"repro/internal/similarity"
)

// indexedValue is one literal value of an item under a comparator
// property: the lexical form plus a pointer into the engine's shared
// value cache, where everything the hot comparison loop needs (rune
// length, token list, token set, prepared pattern) is derived once per
// distinct value string and shared across comparators and sides.
type indexedValue struct {
	value string
	entry *cacheEntry
}

// compiledComparator is one configured comparator with its measure
// capabilities resolved and both sides' values materialized, so scoring a
// pair is pure in-memory slice work — no graph access, no re-tokenizing.
// The property terms are retained so Upsert can re-read a single item's
// values from a live graph.
type compiledComparator struct {
	weight  float64
	measure similarity.Measure
	// slot is this comparator's index in the engine's comparator list,
	// addressing its prepared patterns in the shared value cache.
	slot int
	// extProp and locProp are the configured property terms, kept for
	// incremental re-indexing.
	extProp rdf.Term
	locProp rdf.Term
	// bounded is non-nil when the measure can bound its score from value
	// lengths alone; the engine then skips value pairs whose bound cannot
	// beat the current best.
	bounded similarity.LengthBounded
	// tokens is non-nil when the measure scores pre-tokenized values; the
	// engine then tokenizes each value once at build time.
	tokens similarity.Tokenized
	// tokenSets is non-nil when the measure scores prebuilt token sets;
	// preferred over tokens in the hot loop.
	tokenSets similarity.TokenSetScored
	// prepared is non-nil when the measure can precompile one side of a
	// comparison (Myers pattern bitmaps, TF-IDF vectors); the engine then
	// prepares each distinct value once and the hot loop scores prepared
	// against prepared — the fastest path of all.
	prepared similarity.PreparedMeasure
	ext      map[rdf.Term][]indexedValue
	loc      map[rdf.Term][]indexedValue
}

// sideIndex returns the comparator's value map and property for one side.
func (cc *compiledComparator) sideIndex(side Side) (map[rdf.Term][]indexedValue, rdf.Term) {
	if side == ExternalSide {
		return cc.ext, cc.extProp
	}
	return cc.loc, cc.locProp
}

// compileComparators resolves every comparator's measure capabilities,
// builds the shared value cache from their union, and materializes the
// per-comparator value indexes through it.
func compileComparators(cfg Config, se, sl *rdf.Graph) ([]compiledComparator, *valueCache) {
	comps := make([]compiledComparator, len(cfg.Comparators))
	for i, cmp := range cfg.Comparators {
		cc := compiledComparator{
			weight:  cmp.Weight,
			measure: cmp.Measure,
			slot:    i,
			extProp: cmp.ExternalProperty,
			locProp: cmp.LocalProperty,
		}
		cc.bounded, _ = cmp.Measure.(similarity.LengthBounded)
		cc.tokens, _ = cmp.Measure.(similarity.Tokenized)
		if cc.tokens != nil {
			// Token sets are derived from the token lists, so a measure
			// must be Tokenized for the set path to have data.
			cc.tokenSets, _ = cmp.Measure.(similarity.TokenSetScored)
		}
		cc.prepared, _ = cmp.Measure.(similarity.PreparedMeasure)
		comps[i] = cc
	}
	cache := newValueCache(comps)
	for i := range comps {
		comps[i].ext = buildValueIndex(se, comps[i].extProp, cache, i)
		comps[i].loc = buildValueIndex(sl, comps[i].locProp, cache, i)
	}
	return comps, cache
}

// buildValueIndex collects every item's literal values under prop in one
// pass over the graph's predicate index. Values are ordered by
// rdf.Term.Compare, matching what Graph.Objects used to return, so the
// indexed engine is observationally identical to the graph-walking one.
func buildValueIndex(g *rdf.Graph, prop rdf.Term, cache *valueCache, slot int) map[rdf.Term][]indexedValue {
	byItem := map[rdf.Term][]rdf.Term{}
	if g != nil {
		g.Match(rdf.Term{}, prop, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O.IsLiteral() {
				byItem[t.S] = append(byItem[t.S], t.O)
			}
			return true
		})
	}
	out := make(map[rdf.Term][]indexedValue, len(byItem))
	for item, objs := range byItem {
		out[item] = compileValues(objs, cache, slot)
	}
	return out
}

// itemValues re-reads one item's literal values under prop, producing the
// same indexed representation buildValueIndex would — the unit of work of
// an incremental Upsert.
func itemValues(g *rdf.Graph, item, prop rdf.Term, cache *valueCache, slot int) []indexedValue {
	var objs []rdf.Term
	if g != nil {
		g.Match(item, prop, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O.IsLiteral() {
				objs = append(objs, t.O)
			}
			return true
		})
	}
	if len(objs) == 0 {
		return nil
	}
	return compileValues(objs, cache, slot)
}

// compileValues sorts the raw value terms and resolves each against the
// shared cache, taking one reference per indexed value.
func compileValues(objs []rdf.Term, cache *valueCache, slot int) []indexedValue {
	sort.Slice(objs, func(i, j int) bool { return objs[i].Compare(objs[j]) < 0 })
	vals := make([]indexedValue, len(objs))
	for i, o := range objs {
		vals[i] = indexedValue{value: o.Value, entry: cache.acquire(o.Value, slot)}
	}
	return vals
}
