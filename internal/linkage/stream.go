package linkage

import (
	"context"

	"repro/internal/par"
	"repro/internal/rdf"
)

// PairSource produces candidate pairs one at a time: implementations call
// yield for each pair and stop when yield returns false. A source lets
// huge candidate spaces (blocking output, cross products) flow through
// the engine without ever materializing a [][2]Term.
type PairSource func(yield func([2]rdf.Term) bool)

// MaterializedPairs adapts an in-memory pair slice to a PairSource.
func MaterializedPairs(pairs [][2]rdf.Term) PairSource {
	return func(yield func([2]rdf.Term) bool) {
		for _, p := range pairs {
			if !yield(p) {
				return
			}
		}
	}
}

// IDPairSource adapts a stream of string-identified record pairs — the
// shape blocking methods emit (blocking.Streamer) — to a PairSource.
// resolve maps a record ID to its graph term; pairs where either side
// resolves to a zero Term are skipped. Example:
//
//	src := linkage.IDPairSource(func(yield func(a, b string) bool) {
//		method.Stream(ext, loc, func(p blocking.Pair) bool { return yield(p.A, p.B) })
//	}, resolve)
func IDPairSource(stream func(yield func(a, b string) bool), resolve func(id string) rdf.Term) PairSource {
	return func(yield func([2]rdf.Term) bool) {
		stream(func(a, b string) bool {
			ta, tb := resolve(a), resolve(b)
			if ta.IsZero() || tb.IsZero() {
				return true
			}
			return yield([2]rdf.Term{ta, tb})
		})
	}
}

// CandidateGroup is one external item's candidate list — one entry of the
// map LinkBest consumes, in streamable form.
type CandidateGroup struct {
	External rdf.Term
	Locals   []rdf.Term
}

// GroupSource produces per-item candidate groups, following the contract
// of PairSource. Each external item must be yielded at most once.
type GroupSource func(yield func(CandidateGroup) bool)

// streamBatch is the number of source items buffered before a batch is
// fanned out across the worker pool. Large enough to amortize the
// fan-out, small enough that memory stays bounded regardless of the
// source's size.
const streamBatch = 64 * chunkSize

// StreamPairs scores every pair produced by src across the engine's
// workers and calls emit for each match at or above the threshold.
// Matches are emitted in source order — not the score-sorted order of
// ScorePairs — because sorting would require materializing every match.
// Memory is bounded by the internal batch size, not by the source.
//
// emit returning false stops the stream early (StreamPairs returns nil);
// a cancelled ctx stops it with ctx.Err(). Emission happens on the
// calling goroutine, so emit needs no locking. Output is identical for
// every worker count.
//
// The engine's read lock is held per scoring batch, not across the whole
// stream: src and emit run unlocked (so they may call back into this
// engine, including Upsert/Remove), concurrent updates are not starved
// by a long stream, and an update landing mid-stream is visible to
// every batch scored after it.
func (e *Engine) StreamPairs(ctx context.Context, src PairSource, emit func(Match) bool) error {
	st := e.st
	score := func(p [2]rdf.Term) (Match, bool) {
		s := st.score(p[0], p[1])
		return Match{External: p[0], Local: p[1], Score: s}, s >= e.cfg.Threshold
	}
	buf := make([][2]rdf.Term, 0, streamBatch)
	var streamErr error
	flush := func() bool {
		st.mu.RLock()
		ms, err := par.MapChunks(ctx, e.workers(), chunkSize, buf, score)
		st.mu.RUnlock()
		if err != nil {
			streamErr = err
			return false
		}
		for _, m := range ms {
			if !emit(m) {
				return false
			}
		}
		buf = buf[:0]
		return true
	}
	done := false
	src(func(p [2]rdf.Term) bool {
		buf = append(buf, p)
		if len(buf) == streamBatch {
			if !flush() {
				done = true
				return false
			}
		}
		return true
	})
	if !done && streamErr == nil {
		flush()
	}
	return streamErr
}

// LinkBestStream is LinkBest over a group source: each yielded item is
// linked to its best-scoring candidate at or above the threshold, with
// the per-item searches batched across the worker pool, and the declared
// links returned sorted. The output is exactly LinkBest's on the map
// {g.External: g.Locals} — only the peak memory differs: candidate
// groups are consumed in bounded batches instead of being held at once.
// Locking follows StreamPairs: the read lock is held per batch, so src
// may call back into the engine and updates interleave between batches.
func (e *Engine) LinkBestStream(ctx context.Context, src GroupSource) ([]Match, error) {
	st := e.st
	best := func(g CandidateGroup) (Match, bool) {
		return st.bestFor(g.External, g.Locals, e.cfg.Threshold)
	}
	var out []Match
	var streamErr error
	// The buffer must hold enough chunks to feed every worker, or the
	// fan-out inside a flush is capped below Config.Workers.
	groupBatch := e.workers() * chunkSize * 4
	if groupBatch > streamBatch {
		groupBatch = streamBatch
	}
	buf := make([]CandidateGroup, 0, groupBatch)
	flush := func() bool {
		st.mu.RLock()
		ms, err := par.MapChunks(ctx, e.workers(), chunkSize, buf, best)
		st.mu.RUnlock()
		if err != nil {
			streamErr = err
			return false
		}
		out = append(out, ms...)
		buf = buf[:0]
		return true
	}
	src(func(g CandidateGroup) bool {
		buf = append(buf, g)
		if len(buf) == cap(buf) {
			return flush()
		}
		return true
	})
	if streamErr == nil {
		flush()
	}
	if streamErr != nil {
		return nil, streamErr
	}
	sortMatches(out)
	return out, nil
}
