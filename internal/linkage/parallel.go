package linkage

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkSize is the number of items a worker claims at a time. Small
// enough that uneven pair costs still balance across workers, large
// enough that the atomic cursor is not contended.
const chunkSize = 64

// workers resolves Config.Workers: 0 means all cores.
func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// mapChunks applies fn to every item, keeping results where fn reports
// true, preserving input order in the output. With workers > 1 and
// enough items it fans out via chunked work-stealing: an atomic cursor
// hands chunk indices to idle goroutines, each chunk's kept results land
// in a dedicated slot, and the slots are concatenated in chunk order —
// so the output is exactly what the serial loop would produce.
func mapChunks[T any](workers int, items []T, fn func(T) (Match, bool)) []Match {
	if workers <= 1 || len(items) <= chunkSize {
		var out []Match
		for _, it := range items {
			if m, ok := fn(it); ok {
				out = append(out, m)
			}
		}
		return out
	}
	nChunks := (len(items) + chunkSize - 1) / chunkSize
	if workers > nChunks {
		workers = nChunks
	}
	results := make([][]Match, nChunks)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunkSize
				hi := lo + chunkSize
				if hi > len(items) {
					hi = len(items)
				}
				var ms []Match
				for _, it := range items[lo:hi] {
					if m, ok := fn(it); ok {
						ms = append(ms, m)
					}
				}
				results[c] = ms
			}
		}()
	}
	wg.Wait()
	var out []Match
	for _, ms := range results {
		out = append(out, ms...)
	}
	return out
}
