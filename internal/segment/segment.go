// Package segment implements the value-splitting step of the paper: the
// way a property value Y is decomposed into the segments `a` appearing in
// subsegment(Y, a) atoms. The paper leaves the splitting policy to a
// domain expert — separator characters or n-grams — so the package exposes
// a Splitter interface with both implementations plus the normalization
// knobs an expert would want (case folding, minimum length, numeric
// filtering).
package segment

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Splitter decomposes a property value into segments. Implementations
// must be deterministic and safe for concurrent use. Split returns
// segments in order of occurrence, including duplicates; callers that
// need the distinct set deduplicate (see Distinct).
type Splitter interface {
	// Split returns the segments of value, possibly empty.
	Split(value string) []string
	// Name identifies the splitter configuration, for reports.
	Name() string
}

// Distinct returns the set of distinct segments of values in first-seen
// order.
func Distinct(segs []string) []string {
	seen := make(map[string]struct{}, len(segs))
	out := segs[:0:0]
	for _, s := range segs {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// Options configures normalization shared by the splitters.
type Options struct {
	// Lowercase folds segments to lower case, so "OHM" and "ohm" merge.
	Lowercase bool
	// MinLength drops segments shorter than this many runes. Zero means 1.
	MinLength int
	// DropNumeric drops segments consisting only of digits; the paper's
	// part-numbers contain long serial digit runs that carry no class
	// signal.
	DropNumeric bool
}

// suffix renders the options for splitter names, e.g. "+lower+min3".
func (o Options) suffix() string {
	var b strings.Builder
	if o.Lowercase {
		b.WriteString("+lower")
	}
	if o.MinLength > 1 {
		fmt.Fprintf(&b, "+min%d", o.MinLength)
	}
	if o.DropNumeric {
		b.WriteString("+nonum")
	}
	return b.String()
}

func (o Options) normalize(seg string) (string, bool) {
	if o.Lowercase {
		seg = strings.ToLower(seg)
	}
	min := o.MinLength
	if min <= 0 {
		min = 1
	}
	n := 0
	allDigits := true
	for _, r := range seg {
		n++
		if !unicode.IsDigit(r) {
			allDigits = false
		}
	}
	if n < min {
		return "", false
	}
	if o.DropNumeric && allDigits {
		return "", false
	}
	return seg, true
}

// SeparatorSplitter splits values on a set of separator runes. The zero
// value (via NewSeparatorSplitter with no runes) reproduces the paper's
// policy: every rune that is neither a letter nor a digit separates.
type SeparatorSplitter struct {
	seps map[rune]struct{} // nil => any non-alphanumeric rune
	opts Options
}

// NewSeparatorSplitter returns a splitter cutting on the given runes; with
// no runes it cuts on every non-alphanumeric rune, the paper's default
// ("space, '-', '.', ...").
func NewSeparatorSplitter(opts Options, seps ...rune) *SeparatorSplitter {
	s := &SeparatorSplitter{opts: opts}
	if len(seps) > 0 {
		s.seps = make(map[rune]struct{}, len(seps))
		for _, r := range seps {
			s.seps[r] = struct{}{}
		}
	}
	return s
}

// isSep reports whether r separates segments.
func (s *SeparatorSplitter) isSep(r rune) bool {
	if s.seps == nil {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	}
	_, ok := s.seps[r]
	return ok
}

// Split implements Splitter.
func (s *SeparatorSplitter) Split(value string) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		if seg, ok := s.opts.normalize(value[start:end]); ok {
			out = append(out, seg)
		}
		start = -1
	}
	for i, r := range value {
		if s.isSep(r) {
			flush(i)
			continue
		}
		if start < 0 {
			start = i
		}
	}
	flush(len(value))
	return out
}

// Name implements Splitter.
func (s *SeparatorSplitter) Name() string {
	if s.seps == nil {
		return "separators(non-alphanumeric)" + s.opts.suffix()
	}
	runes := make([]string, 0, len(s.seps))
	for r := range s.seps {
		runes = append(runes, string(r))
	}
	// Deterministic name regardless of map order.
	sort.Strings(runes)
	return "separators(" + strings.Join(runes, "") + ")" + s.opts.suffix()
}
