package segment

import (
	"fmt"
	"strings"
	"unicode"
)

// NGramSplitter produces the overlapping rune n-grams of a value, the
// paper's alternative to separator splitting (its related work also uses
// bi-grams for indexing). Non-alphanumeric runes are first collapsed to a
// single space and the value trimmed, so "CRCW-0805" and "CRCW 0805"
// yield the same grams.
type NGramSplitter struct {
	n    int
	pad  bool
	opts Options
}

// NewNGramSplitter returns an n-gram splitter; n must be >= 1. With pad
// set, the value is padded with n-1 leading and trailing '#' runes so
// prefixes and suffixes form their own grams (the convention of q-gram
// blocking literature).
func NewNGramSplitter(n int, pad bool, opts Options) *NGramSplitter {
	if n < 1 {
		n = 1
	}
	return &NGramSplitter{n: n, pad: pad, opts: opts}
}

// N returns the gram size.
func (s *NGramSplitter) N() int { return s.n }

// Split implements Splitter.
func (s *NGramSplitter) Split(value string) []string {
	cleaned := collapseSeparators(value)
	if cleaned == "" {
		return nil
	}
	runes := []rune(cleaned)
	if s.pad {
		padRunes := make([]rune, 0, len(runes)+2*(s.n-1))
		for i := 0; i < s.n-1; i++ {
			padRunes = append(padRunes, '#')
		}
		padRunes = append(padRunes, runes...)
		for i := 0; i < s.n-1; i++ {
			padRunes = append(padRunes, '#')
		}
		runes = padRunes
	}
	if len(runes) < s.n {
		if seg, ok := s.opts.normalize(string(runes)); ok {
			return []string{seg}
		}
		return nil
	}
	out := make([]string, 0, len(runes)-s.n+1)
	for i := 0; i+s.n <= len(runes); i++ {
		if seg, ok := s.opts.normalize(string(runes[i : i+s.n])); ok {
			out = append(out, seg)
		}
	}
	return out
}

// Name implements Splitter.
func (s *NGramSplitter) Name() string {
	if s.pad {
		return fmt.Sprintf("%d-grams(padded)", s.n) + s.opts.suffix()
	}
	return fmt.Sprintf("%d-grams", s.n) + s.opts.suffix()
}

// collapseSeparators maps runs of non-alphanumeric runes to one space and
// trims the ends.
func collapseSeparators(v string) string {
	var b strings.Builder
	lastSep := true // suppress leading space
	for _, r := range v {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			lastSep = false
			continue
		}
		if !lastSep {
			b.WriteByte(' ')
			lastSep = true
		}
	}
	return strings.TrimRight(b.String(), " ")
}
