package segment

import "sort"

// Stats accumulates segment frequency statistics over a corpus of values,
// producing the counts Section 5 of the paper reports (distinct segments,
// total occurrences, occurrences covered by frequent segments).
type Stats struct {
	counts map[string]int
	total  int
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{counts: map[string]int{}}
}

// Observe records every segment of one value split by sp.
func (st *Stats) Observe(sp Splitter, value string) {
	for _, seg := range sp.Split(value) {
		st.counts[seg]++
		st.total++
	}
}

// ObserveSegments records pre-split segments.
func (st *Stats) ObserveSegments(segs []string) {
	for _, seg := range segs {
		st.counts[seg]++
		st.total++
	}
}

// Distinct returns the number of distinct segments observed.
func (st *Stats) Distinct() int { return len(st.counts) }

// Occurrences returns the total number of segment occurrences observed.
func (st *Stats) Occurrences() int { return st.total }

// Count returns the number of occurrences of one segment.
func (st *Stats) Count(seg string) int { return st.counts[seg] }

// FrequentOccurrences returns the number of occurrences covered by
// segments appearing at least minCount times — the paper's "7058
// occurrences of segments are selected" figure.
func (st *Stats) FrequentOccurrences(minCount int) int {
	sum := 0
	for _, c := range st.counts {
		if c >= minCount {
			sum += c
		}
	}
	return sum
}

// FrequentSegments returns the distinct segments appearing at least
// minCount times, sorted by descending count then lexicographically.
func (st *Stats) FrequentSegments(minCount int) []string {
	var out []string
	for seg, c := range st.counts {
		if c >= minCount {
			out = append(out, seg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if st.counts[out[i]] != st.counts[out[j]] {
			return st.counts[out[i]] > st.counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Top returns up to k segments by descending count (ties lexicographic).
func (st *Stats) Top(k int) []string {
	all := st.FrequentSegments(1)
	if len(all) > k {
		all = all[:k]
	}
	return all
}
