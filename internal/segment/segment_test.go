package segment

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestSeparatorSplitterPaperDefault(t *testing.T) {
	sp := NewSeparatorSplitter(Options{})
	tests := []struct {
		value string
		want  []string
	}{
		{"CRCW0805-63V ohm", []string{"CRCW0805", "63V", "ohm"}},
		{"T83.220;uF", []string{"T83", "220", "uF"}},
		{"  spaced   out ", []string{"spaced", "out"}},
		{"", nil},
		{"---", nil},
		{"single", []string{"single"}},
		{"a-b-a", []string{"a", "b", "a"}}, // duplicates preserved in order
		{"Père-Lachaise", []string{"Père", "Lachaise"}},
		{"Ω-10k", []string{"Ω", "10k"}}, // Ω is a letter
	}
	for _, tc := range tests {
		if got := sp.Split(tc.value); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Split(%q) = %v, want %v", tc.value, got, tc.want)
		}
	}
}

func TestSeparatorSplitterCustomSeps(t *testing.T) {
	sp := NewSeparatorSplitter(Options{}, '-', ':')
	got := sp.Split("a-b:c.d e")
	want := []string{"a", "b", "c.d e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Split = %v, want %v", got, want)
	}
}

func TestSeparatorSplitterOptions(t *testing.T) {
	t.Run("lowercase", func(t *testing.T) {
		sp := NewSeparatorSplitter(Options{Lowercase: true})
		if got := sp.Split("OHM Ohm ohm"); !reflect.DeepEqual(got, []string{"ohm", "ohm", "ohm"}) {
			t.Errorf("Split = %v", got)
		}
	})
	t.Run("min length", func(t *testing.T) {
		sp := NewSeparatorSplitter(Options{MinLength: 3})
		if got := sp.Split("ab abc a abcd"); !reflect.DeepEqual(got, []string{"abc", "abcd"}) {
			t.Errorf("Split = %v", got)
		}
	})
	t.Run("drop numeric", func(t *testing.T) {
		sp := NewSeparatorSplitter(Options{DropNumeric: true})
		if got := sp.Split("123 63V 4567 ohm"); !reflect.DeepEqual(got, []string{"63V", "ohm"}) {
			t.Errorf("Split = %v", got)
		}
	})
	t.Run("min length counts runes not bytes", func(t *testing.T) {
		sp := NewSeparatorSplitter(Options{MinLength: 2})
		if got := sp.Split("éé è"); !reflect.DeepEqual(got, []string{"éé"}) {
			t.Errorf("Split = %v", got)
		}
	})
}

func TestSeparatorSplitterName(t *testing.T) {
	if got := NewSeparatorSplitter(Options{}).Name(); got != "separators(non-alphanumeric)" {
		t.Errorf("Name = %q", got)
	}
	n1 := NewSeparatorSplitter(Options{}, ':', '-').Name()
	n2 := NewSeparatorSplitter(Options{}, '-', ':').Name()
	if n1 != n2 || n1 != "separators(-:)" {
		t.Errorf("custom Name unstable: %q vs %q", n1, n2)
	}
}

func TestNGramSplitter(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		pad   bool
		value string
		want  []string
	}{
		{"bigrams", 2, false, "abc", []string{"ab", "bc"}},
		{"trigram exact", 3, false, "abc", []string{"abc"}},
		{"short value unpadded", 3, false, "ab", []string{"ab"}},
		{"padded bigrams", 2, true, "ab", []string{"#a", "ab", "b#"}},
		{"separator collapsing", 2, false, "a-b", []string{"a ", " b"}},
		{"empty", 2, false, "", nil},
		{"only separators", 2, false, "--", nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sp := NewNGramSplitter(tc.n, tc.pad, Options{})
			if got := sp.Split(tc.value); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Split(%q) = %v, want %v", tc.value, got, tc.want)
			}
		})
	}
}

func TestNGramSplitterNames(t *testing.T) {
	if got := NewNGramSplitter(3, false, Options{}).Name(); got != "3-grams" {
		t.Errorf("Name = %q", got)
	}
	if got := NewNGramSplitter(2, true, Options{}).Name(); got != "2-grams(padded)" {
		t.Errorf("Name = %q", got)
	}
	if NewNGramSplitter(0, false, Options{}).N() != 1 {
		t.Error("n < 1 not clamped")
	}
}

func TestDistinct(t *testing.T) {
	got := Distinct([]string{"b", "a", "b", "c", "a"})
	if !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Errorf("Distinct = %v", got)
	}
	if got := Distinct(nil); len(got) != 0 {
		t.Errorf("Distinct(nil) = %v", got)
	}
}

func TestStats(t *testing.T) {
	sp := NewSeparatorSplitter(Options{})
	st := NewStats()
	st.Observe(sp, "ohm 63V ohm")
	st.Observe(sp, "ohm T83")
	if st.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", st.Distinct())
	}
	if st.Occurrences() != 5 {
		t.Errorf("Occurrences = %d, want 5", st.Occurrences())
	}
	if st.Count("ohm") != 3 {
		t.Errorf("Count(ohm) = %d, want 3", st.Count("ohm"))
	}
	if got := st.FrequentOccurrences(2); got != 3 {
		t.Errorf("FrequentOccurrences(2) = %d, want 3", got)
	}
	if got := st.FrequentSegments(2); !reflect.DeepEqual(got, []string{"ohm"}) {
		t.Errorf("FrequentSegments(2) = %v", got)
	}
	if got := st.Top(2); !reflect.DeepEqual(got, []string{"ohm", "63V"}) {
		t.Errorf("Top(2) = %v", got)
	}
	st.ObserveSegments([]string{"x", "x"})
	if st.Count("x") != 2 {
		t.Errorf("Count(x) = %d after ObserveSegments", st.Count("x"))
	}
}

// Property: separator splitting never yields a segment containing a
// separator rune, concatenation order is preserved, and re-splitting a
// segment is the identity.
func TestSeparatorSplitterProperty(t *testing.T) {
	sp := NewSeparatorSplitter(Options{})
	f := func(value string) bool {
		segs := sp.Split(value)
		for _, seg := range segs {
			if seg == "" {
				return false
			}
			for _, r := range seg {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
			}
			again := sp.Split(seg)
			if len(again) != 1 || again[0] != seg {
				return false
			}
		}
		// Segments appear in value in order.
		idx := 0
		for _, seg := range segs {
			pos := strings.Index(value[idx:], seg)
			if pos < 0 {
				return false
			}
			idx += pos + len(seg)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: unpadded n-gram count of a separator-free ASCII value is
// max(1, len-n+1) and each gram has length n (or the whole value when
// shorter).
func TestNGramCountProperty(t *testing.T) {
	f := func(raw string, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		var b strings.Builder
		for _, r := range raw {
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				b.WriteRune(r)
			}
		}
		value := b.String()
		runes := []rune(value)
		sp := NewNGramSplitter(n, false, Options{})
		grams := sp.Split(value)
		if len(runes) == 0 {
			return len(grams) == 0
		}
		if len(runes) < n {
			return len(grams) == 1 && grams[0] == value
		}
		if len(grams) != len(runes)-n+1 {
			return false
		}
		for _, g := range grams {
			if len([]rune(g)) != n {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
