package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Var is a query variable, identified by name. Variables embed into
// Pattern positions through VarTerm.
type Var string

// varKind is a private TermKind value marking variable terms inside
// patterns; it never appears in stored triples.
const varKind TermKind = 255

// VarTerm returns a pattern term standing for the variable v.
func VarTerm(v Var) Term { return Term{Kind: varKind, Value: string(v)} }

// IsVar reports whether t is a pattern variable and returns its name.
func IsVar(t Term) (Var, bool) {
	if t.Kind == varKind {
		return Var(t.Value), true
	}
	return "", false
}

// Pattern is one triple pattern: any position may be a constant term or
// a variable (VarTerm). The zero Term is not allowed in patterns — use a
// variable for "don't care" positions so bindings stay explicit.
type Pattern struct {
	S, P, O Term
}

// String renders the pattern for diagnostics.
func (p Pattern) String() string {
	f := func(t Term) string {
		if v, ok := IsVar(t); ok {
			return "?" + string(v)
		}
		return t.String()
	}
	return fmt.Sprintf("%s %s %s .", f(p.S), f(p.P), f(p.O))
}

// Binding maps variables to terms; one solution of a query.
type Binding map[Var]Term

// clone copies the binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Query is a conjunction of triple patterns (a basic graph pattern).
// The paper's classification rule premise and conclusion are exactly
// such conjunctions, e.g.:
//
//	?x  <partNumber>  ?y .
//	?x  rdf:type      <FixedFilmResistor> .
type Query struct {
	Patterns []Pattern
	// Limit stops the solver after this many solutions; 0 = unlimited.
	Limit int
}

// Validate rejects queries with zero terms in pattern positions or no
// patterns at all.
func (q Query) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("rdf: query has no patterns")
	}
	for i, p := range q.Patterns {
		if p.S.IsZero() || p.P.IsZero() || p.O.IsZero() {
			return fmt.Errorf("rdf: query pattern %d has a zero term (use a variable)", i)
		}
		if _, isVar := IsVar(p.P); !isVar && p.P.Kind != IRIKind {
			return fmt.Errorf("rdf: query pattern %d predicate must be IRI or variable", i)
		}
	}
	return nil
}

// Solve enumerates all bindings satisfying the conjunction over g, in
// deterministic order. Patterns are greedily reordered by estimated
// selectivity (bound positions count), a standard BGP heuristic.
func (g *Graph) Solve(q Query) ([]Binding, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	patterns := append([]Pattern(nil), q.Patterns...)

	var results []Binding
	var recurse func(remaining []Pattern, current Binding) bool

	// pick selects the most selective remaining pattern under the
	// current binding: more bound positions first, with P+O bound worth
	// more than S bound (POS index selectivity).
	pick := func(remaining []Pattern, current Binding) int {
		bestIdx, bestScore := 0, -1
		for i, p := range remaining {
			score := 0
			for _, t := range []Term{p.S, p.P, p.O} {
				if v, ok := IsVar(t); ok {
					if _, bound := current[v]; bound {
						score += 2
					}
				} else {
					score += 2
				}
			}
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		return bestIdx
	}

	resolve := func(t Term, current Binding) (Term, bool) {
		v, ok := IsVar(t)
		if !ok {
			return t, true
		}
		bound, ok := current[v]
		return bound, ok
	}

	recurse = func(remaining []Pattern, current Binding) bool {
		if len(remaining) == 0 {
			results = append(results, current.clone())
			return q.Limit == 0 || len(results) < q.Limit
		}
		idx := pick(remaining, current)
		p := remaining[idx]
		rest := make([]Pattern, 0, len(remaining)-1)
		rest = append(rest, remaining[:idx]...)
		rest = append(rest, remaining[idx+1:]...)

		s, sOK := resolve(p.S, current)
		pr, pOK := resolve(p.P, current)
		o, oOK := resolve(p.O, current)
		ms, mp, mo := Term{}, Term{}, Term{}
		if sOK {
			ms = s
		}
		if pOK {
			mp = pr
		}
		if oOK {
			mo = o
		}

		cont := true
		// Deterministic iteration: collect matches then sort.
		var matches []Triple
		g.Match(ms, mp, mo, func(t Triple) bool {
			matches = append(matches, t)
			return true
		})
		sort.Slice(matches, func(i, j int) bool { return matches[i].Compare(matches[j]) < 0 })
		for _, t := range matches {
			next := current
			dirty := false
			bind := func(pos Term, val Term) bool {
				v, ok := IsVar(pos)
				if !ok {
					return true
				}
				if bound, ok := next[v]; ok {
					return bound == val
				}
				if !dirty {
					next = next.clone()
					dirty = true
				}
				next[v] = val
				return true
			}
			if !bind(p.S, t.S) || !bind(p.P, t.P) || !bind(p.O, t.O) {
				continue
			}
			if !recurse(rest, next) {
				cont = false
				break
			}
		}
		return cont
	}

	recurse(patterns, Binding{})
	sortBindings(results)
	return results, nil
}

// Count returns the number of solutions without retaining them.
func (g *Graph) Count(q Query) (int, error) {
	sols, err := g.Solve(q)
	if err != nil {
		return 0, err
	}
	return len(sols), nil
}

// sortBindings orders solutions deterministically by their variable
// values (variables in name order).
func sortBindings(bs []Binding) {
	key := func(b Binding) string {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, string(v))
		}
		sort.Strings(vars)
		var sb strings.Builder
		for _, v := range vars {
			sb.WriteString(v)
			sb.WriteByte('=')
			sb.WriteString(b[Var(v)].String())
			sb.WriteByte(';')
		}
		return sb.String()
	}
	sort.Slice(bs, func(i, j int) bool { return key(bs[i]) < key(bs[j]) })
}
