package rdf

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("http://ex.org/a"), IRIKind, "<http://ex.org/a>"},
		{"plain literal", NewLiteral("hello"), LiteralKind, `"hello"`},
		{"typed literal", NewTypedLiteral("42", XSDInteger), LiteralKind, `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"lang literal", NewLangLiteral("chat", "fr"), LiteralKind, `"chat"@fr`},
		{"blank", NewBlank("b1"), BlankKind, "_:b1"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
			if tc.term.IsZero() {
				t.Error("constructed term reports IsZero")
			}
		})
	}
}

func TestTypedLiteralXSDStringNormalized(t *testing.T) {
	a := NewTypedLiteral("x", XSDString)
	b := NewLiteral("x")
	if a != b {
		t.Errorf("xsd:string typed literal %v should equal plain literal %v", a, b)
	}
}

func TestTermDatatypeIRI(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{NewLiteral("a"), XSDString},
		{NewTypedLiteral("1", XSDInteger), XSDInteger},
		{NewLangLiteral("a", "en"), "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"},
		{NewIRI("http://ex.org"), ""},
		{NewBlank("b"), ""},
	}
	for _, tc := range tests {
		if got := tc.term.DatatypeIRI(); got != tc.want {
			t.Errorf("DatatypeIRI(%v) = %q, want %q", tc.term, got, tc.want)
		}
	}
}

func TestTermStringEscaping(t *testing.T) {
	lit := NewLiteral("line1\nline2\t\"quoted\"\\slash")
	want := `"line1\nline2\t\"quoted\"\\slash"`
	if got := lit.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTermCompareTotalOrder(t *testing.T) {
	terms := []Term{
		NewIRI("http://b"), NewIRI("http://a"),
		NewLiteral("z"), NewLiteral("a"),
		NewTypedLiteral("a", XSDInteger),
		NewLangLiteral("a", "en"), NewLangLiteral("a", "de"),
		NewBlank("x"), NewBlank("a"),
	}
	sorted := append([]Term(nil), terms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	// IRIs first, then literals, then blanks.
	if !sorted[0].IsIRI() || !sorted[1].IsIRI() {
		t.Fatalf("IRIs must sort first: %v", sorted)
	}
	if !sorted[len(sorted)-1].IsBlank() {
		t.Fatalf("blanks must sort last: %v", sorted)
	}
	for i := range sorted {
		if sorted[i].Compare(sorted[i]) != 0 {
			t.Errorf("Compare(self) != 0 for %v", sorted[i])
		}
	}
}

func TestTermCompareAntisymmetry(t *testing.T) {
	f := func(a, b randomTerm) bool {
		x, y := a.term(), b.term()
		return x.Compare(y) == -y.Compare(x)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestTripleValidate(t *testing.T) {
	iri := NewIRI("http://ex.org/s")
	lit := NewLiteral("v")
	blank := NewBlank("b")
	tests := []struct {
		name    string
		triple  Triple
		wantErr bool
	}{
		{"valid iri subject", T(iri, iri, lit), false},
		{"valid blank subject", T(blank, iri, iri), false},
		{"literal subject", T(lit, iri, lit), true},
		{"blank predicate", T(iri, blank, lit), true},
		{"literal predicate", T(iri, lit, lit), true},
		{"zero object", Triple{S: iri, P: iri}, true},
		{"zero subject", Triple{P: iri, O: lit}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.triple.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestTripleString(t *testing.T) {
	tr := T(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	want := `<http://s> <http://p> "o" .`
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// randomTerm generates arbitrary valid terms for quick checks.
type randomTerm struct {
	Kind  uint8
	Value string
	Extra string
}

func (r randomTerm) term() Term {
	v := sanitize(r.Value)
	switch r.Kind % 4 {
	case 0:
		return NewIRI("http://ex.org/" + v)
	case 1:
		return NewLiteral(r.Value)
	case 2:
		lang := "en"
		if len(r.Extra)%2 == 0 {
			lang = "fr"
		}
		return NewLangLiteral(r.Value, lang)
	default:
		return NewBlank("b" + v)
	}
}

// sanitize maps arbitrary strings onto IRI/blank-safe alphanumerics.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(42)),
	}
}
