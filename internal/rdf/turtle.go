package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ReadTurtle parses a practical subset of Turtle from r into a new graph.
//
// Supported: @prefix / PREFIX directives, @base / BASE (absolute IRIs
// only), prefixed names, the 'a' keyword, predicate lists (';'), object
// lists (','), blank node labels, anonymous blank nodes '[]' and property
// lists '[ p o ]', string literals with language tags and datatypes,
// integers, decimals, doubles and booleans as abbreviated literals, and
// comments. RDF collections "( ... )" are not supported.
//
// This subset is what the repository's fixtures and examples need; full
// interchange uses N-Triples.
func ReadTurtle(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rdf: reading turtle: %w", err)
	}
	p := &turtleParser{
		input:    string(data),
		line:     1,
		col:      1,
		graph:    NewGraph(),
		prefixes: map[string]string{},
	}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.graph, nil
}

type turtleParser struct {
	input    string
	pos      int
	line     int
	col      int
	graph    *Graph
	prefixes map[string]string
	base     string
	blankSeq int
}

func (p *turtleParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *turtleParser) eof() bool { return p.pos >= len(p.input) }

func (p *turtleParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *turtleParser) advance() byte {
	c := p.input[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

// skipWS consumes whitespace and comments.
func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.advance()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
		default:
			return
		}
	}
}

func (p *turtleParser) expect(c byte) error {
	if p.peek() != c {
		return p.errf("expected %q, found %q", c, p.peek())
	}
	p.advance()
	return nil
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if err := p.statement(); err != nil {
			return err
		}
	}
}

func (p *turtleParser) statement() error {
	if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
		return p.prefixDirective()
	}
	if p.hasKeyword("@base") || p.hasKeyword("BASE") {
		return p.baseDirective()
	}
	return p.triples()
}

// hasKeyword reports whether the input at the cursor starts with kw
// followed by whitespace; it performs case-sensitive matching for '@'
// directives and case-insensitive for SPARQL-style ones.
func (p *turtleParser) hasKeyword(kw string) bool {
	if len(p.input)-p.pos < len(kw) {
		return false
	}
	chunk := p.input[p.pos : p.pos+len(kw)]
	if kw[0] == '@' {
		if chunk != kw {
			return false
		}
	} else if !strings.EqualFold(chunk, kw) {
		return false
	}
	rest := p.input[p.pos+len(kw):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == '\n' || rest[0] == '\r' || rest[0] == '<'
}

func (p *turtleParser) consumeKeyword(kw string) {
	for range kw {
		p.advance()
	}
}

func (p *turtleParser) prefixDirective() error {
	sparql := p.hasKeyword("PREFIX")
	if sparql {
		p.consumeKeyword("PREFIX")
	} else {
		p.consumeKeyword("@prefix")
	}
	p.skipWS()
	name, err := p.prefixName()
	if err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	if !sparql {
		p.skipWS()
		if err := p.expect('.'); err != nil {
			return err
		}
	}
	return nil
}

func (p *turtleParser) baseDirective() error {
	sparql := p.hasKeyword("BASE")
	if sparql {
		p.consumeKeyword("BASE")
	} else {
		p.consumeKeyword("@base")
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	if !sparql {
		p.skipWS()
		if err := p.expect('.'); err != nil {
			return err
		}
	}
	return nil
}

// prefixName parses "name:" returning name (possibly empty).
func (p *turtleParser) prefixName() (string, error) {
	start := p.pos
	for !p.eof() && p.peek() != ':' && !unicode.IsSpace(rune(p.peek())) {
		p.advance()
	}
	name := p.input[start:p.pos]
	if err := p.expect(':'); err != nil {
		return "", err
	}
	return name, nil
}

func (p *turtleParser) triples() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	p.skipWS()
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	return p.expect('.')
}

func (p *turtleParser) predicateObjectList(subj Term) error {
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			t := Triple{S: subj, P: pred, O: obj}
			if err := t.Validate(); err != nil {
				return p.errf("%v", err)
			}
			p.graph.Add(t)
			p.skipWS()
			if p.peek() == ',' {
				p.advance()
				continue
			}
			break
		}
		if p.peek() == ';' {
			p.advance()
			p.skipWS()
			// Allow trailing ';' before '.' or ']'.
			if p.peek() == '.' || p.peek() == ']' {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) subject() (Term, error) {
	p.skipWS()
	switch {
	case p.peek() == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case strings.HasPrefix(p.input[p.pos:], "_:"):
		return p.blankLabel()
	case p.peek() == '[':
		return p.blankPropertyList()
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) predicate() (Term, error) {
	if p.peek() == 'a' {
		// 'a' keyword only when followed by whitespace or a term opener.
		if p.pos+1 >= len(p.input) || isTurtleTermBoundary(p.input[p.pos+1]) {
			p.advance()
			return TypeTerm, nil
		}
	}
	if p.peek() == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	}
	return p.prefixedName()
}

func isTurtleTermBoundary(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<' || c == '"' || c == '[' || c == '_'
}

func (p *turtleParser) object() (Term, error) {
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '"':
		return p.stringLiteral()
	case strings.HasPrefix(p.input[p.pos:], "_:"):
		return p.blankLabel()
	case c == '[':
		return p.blankPropertyList()
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return p.numericLiteral()
	case p.hasBareword("true"):
		p.consumeKeyword("true")
		return NewTypedLiteral("true", XSDBoolean), nil
	case p.hasBareword("false"):
		p.consumeKeyword("false")
		return NewTypedLiteral("false", XSDBoolean), nil
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) hasBareword(w string) bool {
	if !strings.HasPrefix(p.input[p.pos:], w) {
		return false
	}
	rest := p.input[p.pos+len(w):]
	if rest == "" {
		return true
	}
	c := rest[0]
	return !(c == ':' || c == '_' || c == '-' ||
		(c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z'))
}

func (p *turtleParser) iriRef() (string, error) {
	if err := p.expect('<'); err != nil {
		return "", err
	}
	start := p.pos
	for !p.eof() && p.peek() != '>' {
		p.advance()
	}
	if p.eof() {
		return "", p.errf("unterminated IRI")
	}
	raw := p.input[start:p.pos]
	p.advance() // '>'
	iri, err := unescapeUCHAR(raw)
	if err != nil {
		return "", p.errf("bad IRI escape: %v", err)
	}
	if p.base != "" && !strings.Contains(iri, ":") {
		iri = p.base + iri
	}
	return iri, nil
}

func (p *turtleParser) blankLabel() (Term, error) {
	p.advance() // '_'
	p.advance() // ':'
	start := p.pos
	for !p.eof() && isBlankLabelChar(p.peek()) {
		p.advance()
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.input[start:p.pos]), nil
}

// blankPropertyList parses "[]" or "[ p o ; ... ]" returning the fresh
// blank node.
func (p *turtleParser) blankPropertyList() (Term, error) {
	p.advance() // '['
	p.blankSeq++
	node := NewBlank(fmt.Sprintf("gen%d", p.blankSeq))
	p.skipWS()
	if p.peek() == ']' {
		p.advance()
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return Term{}, err
	}
	p.skipWS()
	if err := p.expect(']'); err != nil {
		return Term{}, err
	}
	return node, nil
}

func (p *turtleParser) stringLiteral() (Term, error) {
	// Long quoted form """...""" or short "...".
	long := strings.HasPrefix(p.input[p.pos:], `"""`)
	var lexical string
	if long {
		p.advance()
		p.advance()
		p.advance()
		start := p.pos
		idx := strings.Index(p.input[p.pos:], `"""`)
		if idx < 0 {
			return Term{}, p.errf("unterminated long literal")
		}
		for p.pos < start+idx {
			p.advance()
		}
		raw := p.input[start:p.pos]
		p.advance()
		p.advance()
		p.advance()
		var err error
		lexical, err = unescapeUCHAR(raw)
		if err != nil {
			return Term{}, p.errf("bad escape in literal: %v", err)
		}
	} else {
		p.advance() // opening quote
		var b strings.Builder
		for {
			if p.eof() {
				return Term{}, p.errf("unterminated literal")
			}
			c := p.peek()
			if c == '"' {
				p.advance()
				break
			}
			if c == '\\' {
				r, n, err := decodeEscape(p.input[p.pos:])
				if err != nil {
					return Term{}, p.errf("bad escape: %v", err)
				}
				b.WriteRune(r)
				for i := 0; i < n; i++ {
					p.advance()
				}
				continue
			}
			b.WriteByte(c)
			p.advance()
		}
		lexical = b.String()
	}
	switch {
	case p.peek() == '@':
		p.advance()
		start := p.pos
		for !p.eof() && isLangTagChar(p.peek()) {
			p.advance()
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lexical, p.input[start:p.pos]), nil
	case strings.HasPrefix(p.input[p.pos:], "^^"):
		p.advance()
		p.advance()
		var dt string
		if p.peek() == '<' {
			var err error
			dt, err = p.iriRef()
			if err != nil {
				return Term{}, err
			}
		} else {
			t, err := p.prefixedName()
			if err != nil {
				return Term{}, err
			}
			dt = t.Value
		}
		return NewTypedLiteral(lexical, dt), nil
	default:
		return NewLiteral(lexical), nil
	}
}

func (p *turtleParser) numericLiteral() (Term, error) {
	start := p.pos
	if p.peek() == '+' || p.peek() == '-' {
		p.advance()
	}
	digits := 0
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		p.advance()
		digits++
	}
	isDecimal := false
	if p.peek() == '.' && p.pos+1 < len(p.input) && p.input[p.pos+1] >= '0' && p.input[p.pos+1] <= '9' {
		isDecimal = true
		p.advance()
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.advance()
			digits++
		}
	}
	isDouble := false
	if p.peek() == 'e' || p.peek() == 'E' {
		isDouble = true
		p.advance()
		if p.peek() == '+' || p.peek() == '-' {
			p.advance()
		}
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.advance()
		}
	}
	if digits == 0 {
		return Term{}, p.errf("malformed numeric literal")
	}
	lex := p.input[start:p.pos]
	switch {
	case isDouble:
		return NewTypedLiteral(lex, XSDDouble), nil
	case isDecimal:
		return NewTypedLiteral(lex, XSDDecimal), nil
	default:
		return NewTypedLiteral(lex, XSDInteger), nil
	}
}

// prefixedName parses "prefix:local" resolving against declared prefixes.
func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	for !p.eof() && isPNChar(p.peek()) {
		p.advance()
	}
	if p.peek() != ':' {
		return Term{}, p.errf("expected prefixed name")
	}
	prefix := p.input[start:p.pos]
	p.advance() // ':'
	localStart := p.pos
	for !p.eof() && isPNChar(p.peek()) {
		p.advance()
	}
	local := p.input[localStart:p.pos]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	return NewIRI(ns + local), nil
}

func isPNChar(c byte) bool {
	return c == '-' || c == '_' || c == '.' || c == '%' ||
		(c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}
