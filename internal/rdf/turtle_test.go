package rdf

import (
	"strings"
	"testing"
)

func TestReadTurtleBasic(t *testing.T) {
	input := `
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:alice a ex:Person ;
    rdfs:label "Alice" ;
    ex:knows ex:bob, ex:carol .

ex:bob ex:age 42 .
ex:carol ex:height 1.70 ;
    ex:active true .
`
	g, err := ReadTurtle(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	exn := func(l string) Term { return NewIRI("http://example.org/" + l) }
	checks := []Triple{
		T(exn("alice"), TypeTerm, exn("Person")),
		T(exn("alice"), LabelTerm, NewLiteral("Alice")),
		T(exn("alice"), exn("knows"), exn("bob")),
		T(exn("alice"), exn("knows"), exn("carol")),
		T(exn("bob"), exn("age"), NewTypedLiteral("42", XSDInteger)),
		T(exn("carol"), exn("height"), NewTypedLiteral("1.70", XSDDecimal)),
		T(exn("carol"), exn("active"), NewTypedLiteral("true", XSDBoolean)),
	}
	for _, tr := range checks {
		if !g.Has(tr) {
			t.Errorf("missing triple %v", tr)
		}
	}
	if g.Len() != len(checks) {
		t.Errorf("Len = %d, want %d", g.Len(), len(checks))
	}
}

func TestReadTurtleSPARQLStyleDirectives(t *testing.T) {
	input := `
PREFIX ex: <http://example.org/>
BASE <http://base.org/>
ex:a ex:p <rel> .
`
	g, err := ReadTurtle(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if !g.Has(T(NewIRI("http://example.org/a"), NewIRI("http://example.org/p"), NewIRI("http://base.org/rel"))) {
		t.Errorf("base resolution failed; triples: %v", g.Triples())
	}
}

func TestReadTurtleLiteralForms(t *testing.T) {
	input := `
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:plain "v" ;
  ex:lang "valeur"@fr ;
  ex:typed "12"^^xsd:integer ;
  ex:typedIRI "x"^^<http://ex.org/dt> ;
  ex:long """line1
line2""" ;
  ex:neg -5 ;
  ex:dbl 1.5e3 .
`
	g, err := ReadTurtle(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	s := NewIRI("http://ex.org/s")
	tests := []struct {
		p    string
		want Term
	}{
		{"plain", NewLiteral("v")},
		{"lang", NewLangLiteral("valeur", "fr")},
		{"typed", NewTypedLiteral("12", XSDInteger)},
		{"typedIRI", NewTypedLiteral("x", "http://ex.org/dt")},
		{"long", NewLiteral("line1\nline2")},
		{"neg", NewTypedLiteral("-5", XSDInteger)},
		{"dbl", NewTypedLiteral("1.5e3", XSDDouble)},
	}
	for _, tc := range tests {
		objs := g.Objects(s, NewIRI("http://ex.org/"+tc.p))
		if len(objs) != 1 || objs[0] != tc.want {
			t.Errorf("property %s: got %v, want %v", tc.p, objs, tc.want)
		}
	}
}

func TestReadTurtleBlankNodes(t *testing.T) {
	input := `
@prefix ex: <http://ex.org/> .
_:a ex:p _:b .
ex:s ex:addr [ ex:city "Paris" ; ex:zip "75005" ] .
ex:t ex:empty [] .
`
	g, err := ReadTurtle(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if !g.Has(T(NewBlank("a"), NewIRI("http://ex.org/p"), NewBlank("b"))) {
		t.Error("labeled blank node triple missing")
	}
	// The anonymous node must carry both city and zip.
	addrs := g.Objects(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/addr"))
	if len(addrs) != 1 || !addrs[0].IsBlank() {
		t.Fatalf("addr objects = %v", addrs)
	}
	city := g.Objects(addrs[0], NewIRI("http://ex.org/city"))
	if len(city) != 1 || city[0].Value != "Paris" {
		t.Errorf("city = %v", city)
	}
	empties := g.Objects(NewIRI("http://ex.org/t"), NewIRI("http://ex.org/empty"))
	if len(empties) != 1 || !empties[0].IsBlank() {
		t.Errorf("empty bnode objects = %v", empties)
	}
}

func TestReadTurtleComments(t *testing.T) {
	input := `
@prefix ex: <http://ex.org/> . # trailing comment
# full line comment
ex:s ex:p ex:o . # another
`
	g, err := ReadTurtle(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestReadTurtleErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"undeclared prefix", `ex:s ex:p ex:o .`},
		{"missing dot", `@prefix ex: <http://ex.org/> . ex:s ex:p ex:o`},
		{"unterminated literal", `@prefix ex: <http://e/> . ex:s ex:p "x .`},
		{"unterminated iri", `<http://s ex:p ex:o .`},
		{"bad directive", `@prefix ex <http://ex.org/> .`},
		{"unterminated bnode list", `@prefix ex: <http://e/> . ex:s ex:p [ ex:q "v" .`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTurtle(strings.NewReader(tc.input)); err == nil {
				t.Errorf("ReadTurtle(%q) succeeded, want error", tc.input)
			}
		})
	}
}

func TestReadTurtleErrorPosition(t *testing.T) {
	input := "@prefix ex: <http://e/> .\nex:s ex:p \"x .\n"
	_, err := ReadTurtle(strings.NewReader(input))
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error %T, want *ParseError", err)
	}
	if pe.Line < 2 {
		t.Errorf("error line = %d, want >= 2", pe.Line)
	}
}
