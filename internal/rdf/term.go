// Package rdf implements the RDF substrate the linking pipeline runs on: a
// term model (IRIs, literals, blank nodes), triples, an in-memory indexed
// triple store, and readers/writers for N-Triples and a Turtle subset.
//
// The package is deliberately self-contained and stdlib-only. Terms are
// small comparable value types so they can be used directly as map keys,
// which the store's indexes rely on.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRIKind identifies an IRI reference term.
	IRIKind TermKind = iota + 1
	// LiteralKind identifies a literal term (plain, typed or language-tagged).
	LiteralKind
	// BlankKind identifies a blank node term.
	BlankKind
)

// String returns the kind name, for diagnostics.
func (k TermKind) String() string {
	switch k {
	case IRIKind:
		return "IRI"
	case LiteralKind:
		return "Literal"
	case BlankKind:
		return "BlankNode"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// XSDString is the datatype IRI implied by plain literals.
const XSDString = "http://www.w3.org/2001/XMLSchema#string"

// Term is an RDF term. It is a comparable value type: two Terms are equal
// exactly when they denote the same RDF term, so Term can key maps.
//
// Field use by kind:
//
//	IRIKind:     Value = IRI string
//	LiteralKind: Value = lexical form, Datatype = datatype IRI ("" means
//	             xsd:string), Lang = language tag (implies rdf:langString)
//	BlankKind:   Value = blank node label (without the "_:" prefix)
//
// The zero Term is invalid and reports IsZero() == true.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRIKind, Value: iri} }

// NewLiteral returns a plain literal with datatype xsd:string.
func NewLiteral(lexical string) Term {
	return Term{Kind: LiteralKind, Value: lexical}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: LiteralKind, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: LiteralKind, Value: lexical, Lang: lang}
}

// NewBlank returns a blank node with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: BlankKind, Value: label} }

// IsZero reports whether t is the invalid zero Term.
func (t Term) IsZero() bool { return t.Kind == 0 }

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRIKind }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == LiteralKind }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == BlankKind }

// DatatypeIRI returns the effective datatype of a literal: the explicit
// datatype, rdf:langString for language-tagged literals, or xsd:string.
// It returns "" for non-literals.
func (t Term) DatatypeIRI() string {
	if t.Kind != LiteralKind {
		return ""
	}
	if t.Lang != "" {
		return "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"
	}
	if t.Datatype == "" {
		return XSDString
	}
	return t.Datatype
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRIKind:
		return "<" + t.Value + ">"
	case BlankKind:
		return "_:" + t.Value
	case LiteralKind:
		var b strings.Builder
		b.WriteByte('"')
		escapeLiteral(&b, t.Value)
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return "<<invalid term>>"
	}
}

// escapeLiteral writes s with N-Triples string escapes applied.
func escapeLiteral(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// Compare orders terms deterministically: by kind (IRI < literal < blank),
// then by value, datatype and language. It returns -1, 0 or +1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}
