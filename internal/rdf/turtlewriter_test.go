package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteTurtleRoundTrip(t *testing.T) {
	g := NewGraph()
	alice := NewIRI("http://example.org/alice")
	g.Add(T(alice, TypeTerm, NewIRI("http://example.org/Person")))
	g.Add(T(alice, LabelTerm, NewLiteral("Alice")))
	g.Add(T(alice, LabelTerm, NewLangLiteral("Alicia", "es")))
	g.Add(T(alice, NewIRI("http://example.org/age"), NewTypedLiteral("30", XSDInteger)))
	g.Add(T(alice, NewIRI("http://example.org/knows"), NewBlank("b1")))
	g.Add(T(NewBlank("b1"), LabelTerm, NewLiteral("Bob \"the\" builder\njunior")))

	var buf bytes.Buffer
	opts := TurtleWriterOptions{Prefixes: map[string]string{
		"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
		"ex":   "http://example.org/",
	}}
	if err := WriteTurtle(&buf, g, opts); err != nil {
		t.Fatalf("WriteTurtle: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"@prefix ex:", "ex:alice", " a ex:Person", "rdfs:label", `"Alicia"@es`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	g2, err := ReadTurtle(&buf)
	if err != nil {
		t.Fatalf("ReadTurtle(own output): %v\n%s", err, out)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round-trip Len = %d, want %d\n%s", g2.Len(), g.Len(), out)
	}
	for _, tr := range g.Triples() {
		if !g2.Has(tr) {
			t.Errorf("round-trip lost %v\n%s", tr, out)
		}
	}
}

func TestWriteTurtleDefaultPrefixes(t *testing.T) {
	g := NewGraph()
	g.Add(T(NewIRI("http://x.org/c"), TypeTerm, ClassTerm))
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, g, TurtleWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "owl:Class") {
		t.Errorf("owl prefix not applied:\n%s", buf.String())
	}
}

func TestWriteTurtleTypedLiteralCompaction(t *testing.T) {
	g := NewGraph()
	g.Add(T(NewIRI("http://x.org/i"), NewIRI("http://x.org/age"), NewTypedLiteral("5", XSDInteger)))
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, g, TurtleWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"5"^^xsd:integer`) {
		t.Errorf("xsd datatype not compacted:\n%s", buf.String())
	}
	g2, err := ReadTurtle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !g2.Has(T(NewIRI("http://x.org/i"), NewIRI("http://x.org/age"), NewTypedLiteral("5", XSDInteger))) {
		t.Error("typed literal lost in round trip")
	}
}

func TestWriteTurtleNoCompactionForUnsafeLocal(t *testing.T) {
	g := NewGraph()
	// Local name ending in '.' must stay a full IRI.
	g.Add(T(NewIRI("http://example.org/v1."), NewIRI("http://example.org/p"), NewLiteral("x")))
	var buf bytes.Buffer
	opts := TurtleWriterOptions{Prefixes: map[string]string{"ex": "http://example.org/"}}
	if err := WriteTurtle(&buf, g, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<http://example.org/v1.>") {
		t.Errorf("unsafe local name was compacted:\n%s", buf.String())
	}
	if _, err := ReadTurtle(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("own output unparseable: %v\n%s", err, buf.String())
	}
}

// Property: Turtle write → read is the identity on graphs of generated
// terms.
func TestWriteTurtleRoundTripProperty(t *testing.T) {
	f := func(items []randomTerm, seed uint8) bool {
		g := NewGraph()
		for i, it := range items {
			if i >= 20 {
				break
			}
			s := NewIRI(fmt.Sprintf("http://ex.org/s%s", sanitize(it.Value)))
			p := NewIRI(fmt.Sprintf("http://ex.org/p%d", int(seed)%5))
			g.Add(T(s, p, it.term()))
		}
		var buf bytes.Buffer
		if err := WriteTurtle(&buf, g, TurtleWriterOptions{}); err != nil {
			return false
		}
		g2, err := ReadTurtle(&buf)
		if err != nil {
			return false
		}
		if g2.Len() != g.Len() {
			return false
		}
		for _, tr := range g.Triples() {
			if !g2.Has(tr) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// errWriter fails after n bytes, for failure-injection tests.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, fmt.Errorf("injected write failure")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteTurtleWriterFailure(t *testing.T) {
	g := sampleGraph(t)
	if err := WriteTurtle(&errWriter{n: 10}, g, TurtleWriterOptions{}); err == nil {
		t.Error("write failure not propagated")
	}
}

func TestWriteNTriplesWriterFailure(t *testing.T) {
	g := sampleGraph(t)
	if err := WriteNTriples(&errWriter{n: 10}, g); err == nil {
		t.Error("write failure not propagated")
	}
}
