package rdf

import (
	"sort"
)

// Graph is an in-memory RDF triple store with three full indexes
// (SPO, POS, OSP) so that every triple-pattern lookup touches only the
// matching slice of the data. Graph is not safe for concurrent mutation;
// concurrent readers are safe once loading is complete, which matches the
// pipeline's load-then-query usage.
type Graph struct {
	spo index
	pos index
	osp index
	n   int
	// ver counts successful mutations, letting callers that snapshot
	// derived state (e.g. the linkage value index) detect staleness
	// cheaply via Version.
	ver uint64
}

// index is a three-level nested map: first key -> second key -> set of
// third keys. The empty struct value keeps the leaf sets allocation-light.
type index map[Term]map[Term]map[Term]struct{}

func (ix index) add(a, b, c Term) bool {
	m2, ok := ix[a]
	if !ok {
		m2 = make(map[Term]map[Term]struct{})
		ix[a] = m2
	}
	m3, ok := m2[b]
	if !ok {
		m3 = make(map[Term]struct{})
		m2[b] = m3
	}
	if _, dup := m3[c]; dup {
		return false
	}
	m3[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c Term) bool {
	m2, ok := ix[a]
	if !ok {
		return false
	}
	m3, ok := m2[b]
	if !ok {
		return false
	}
	if _, ok := m3[c]; !ok {
		return false
	}
	delete(m3, c)
	if len(m3) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(index),
		pos: make(index),
		osp: make(index),
	}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Version returns a counter that increases on every successful Add or
// Remove. Two equal Version values bracket a span with no mutations, so
// state derived from the graph in between is still current.
func (g *Graph) Version() uint64 { return g.ver }

// Add inserts t, reporting whether it was not already present.
// Invalid triples (per Triple.Validate) are rejected and not inserted.
func (g *Graph) Add(t Triple) bool {
	if t.Validate() != nil {
		return false
	}
	if !g.spo.add(t.S, t.P, t.O) {
		return false
	}
	g.pos.add(t.P, t.O, t.S)
	g.osp.add(t.O, t.S, t.P)
	g.n++
	g.ver++
	return true
}

// AddAll inserts every triple of ts and returns how many were new.
func (g *Graph) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if g.Add(t) {
			added++
		}
	}
	return added
}

// Remove deletes t, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if !g.spo.remove(t.S, t.P, t.O) {
		return false
	}
	g.pos.remove(t.P, t.O, t.S)
	g.osp.remove(t.O, t.S, t.P)
	g.n--
	g.ver++
	return true
}

// Has reports whether t is in the graph.
func (g *Graph) Has(t Triple) bool {
	m2, ok := g.spo[t.S]
	if !ok {
		return false
	}
	m3, ok := m2[t.P]
	if !ok {
		return false
	}
	_, ok = m3[t.O]
	return ok
}

// Match calls fn for every triple matching the pattern; a zero Term in a
// position is a wildcard. Iteration stops early if fn returns false.
// The most selective index available for the bound positions is used.
func (g *Graph) Match(s, p, o Term, fn func(Triple) bool) {
	switch {
	case !s.IsZero() && !p.IsZero() && !o.IsZero():
		if g.Has(Triple{s, p, o}) {
			fn(Triple{s, p, o})
		}
	case !s.IsZero() && !p.IsZero():
		for obj := range g.spo[s][p] {
			if !fn(Triple{s, p, obj}) {
				return
			}
		}
	case !s.IsZero() && !o.IsZero():
		for pred := range g.osp[o][s] {
			if !fn(Triple{s, pred, o}) {
				return
			}
		}
	case !p.IsZero() && !o.IsZero():
		for subj := range g.pos[p][o] {
			if !fn(Triple{subj, p, o}) {
				return
			}
		}
	case !s.IsZero():
		for pred, objs := range g.spo[s] {
			for obj := range objs {
				if !fn(Triple{s, pred, obj}) {
					return
				}
			}
		}
	case !p.IsZero():
		for obj, subjs := range g.pos[p] {
			for subj := range subjs {
				if !fn(Triple{subj, p, obj}) {
					return
				}
			}
		}
	case !o.IsZero():
		for subj, preds := range g.osp[o] {
			for pred := range preds {
				if !fn(Triple{subj, pred, o}) {
					return
				}
			}
		}
	default:
		for subj, m2 := range g.spo {
			for pred, objs := range m2 {
				for obj := range objs {
					if !fn(Triple{subj, pred, obj}) {
						return
					}
				}
			}
		}
	}
}

// Find returns all triples matching the pattern (zero Term = wildcard),
// sorted deterministically.
func (g *Graph) Find(s, p, o Term) []Triple {
	var out []Triple
	g.Match(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Objects returns the distinct objects of triples (s, p, ?o), sorted.
func (g *Graph) Objects(s, p Term) []Term {
	objs := g.spo[s][p]
	out := make([]Term, 0, len(objs))
	for o := range objs {
		out = append(out, o)
	}
	sortTerms(out)
	return out
}

// FirstObject returns one object of (s, p, ?o) and whether any exists.
// When several objects exist the smallest in Term.Compare order is
// returned, so the choice is deterministic.
func (g *Graph) FirstObject(s, p Term) (Term, bool) {
	objs := g.spo[s][p]
	if len(objs) == 0 {
		return Term{}, false
	}
	var best Term
	first := true
	for o := range objs {
		if first || o.Compare(best) < 0 {
			best, first = o, false
		}
	}
	return best, true
}

// Subjects returns the distinct subjects of triples (?s, p, o), sorted.
func (g *Graph) Subjects(p, o Term) []Term {
	subjs := g.pos[p][o]
	out := make([]Term, 0, len(subjs))
	for s := range subjs {
		out = append(out, s)
	}
	sortTerms(out)
	return out
}

// SubjectCount returns the number of distinct subjects of (?s, p, o)
// without materializing them.
func (g *Graph) SubjectCount(p, o Term) int { return len(g.pos[p][o]) }

// Predicates returns the distinct predicates used in the graph, sorted.
func (g *Graph) Predicates() []Term {
	out := make([]Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	sortTerms(out)
	return out
}

// AllSubjects returns the distinct subjects appearing in the graph, sorted.
func (g *Graph) AllSubjects() []Term {
	out := make([]Term, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, s)
	}
	sortTerms(out)
	return out
}

// Triples returns every triple, sorted deterministically.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.n)
	g.Match(Term{}, Term{}, Term{}, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Merge adds every triple of other into g and returns how many were new.
func (g *Graph) Merge(other *Graph) int {
	added := 0
	other.Match(Term{}, Term{}, Term{}, func(t Triple) bool {
		if g.Add(t) {
			added++
		}
		return true
	})
	return added
}

// Clone returns an independent deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.Merge(g)
	return c
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
