package rdf

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Graph is an in-memory RDF triple store with three full indexes
// (SPO, POS, OSP) so that every triple-pattern lookup touches only the
// matching slice of the data.
//
// Graph is not safe for concurrent mutation, but it supports cheap
// copy-on-write snapshots: Snapshot returns a frozen view that remains
// valid — and identical to the graph at snapshot time — while the live
// graph keeps mutating. Concurrent readers of a snapshot never race
// with the live graph's writers, which is what lets slow queries run
// entirely outside a service's write lock.
type Graph struct {
	spo cowIndex
	pos cowIndex
	osp cowIndex
	n   int
	// lazyPOS/lazyOSP are non-nil on bulk-loaded graphs (DecodeSnapshot)
	// whose secondary indexes have not materialized yet: the SPO index
	// is always built eagerly, while POS and OSP derive on first use
	// from the retained packed keys. Loading nil is the fast path on
	// every secondary-index read; the release store in materialize
	// orders the index write before the pointer clear, so concurrent
	// readers of a frozen bulk-loaded snapshot are safe. Mutations
	// materialize both first (writeToken), so live graphs never update
	// a deferred index.
	lazyPOS atomic.Pointer[bulkState]
	lazyOSP atomic.Pointer[bulkState]
	// ver counts successful mutations, letting callers that snapshot
	// derived state (e.g. the linkage value index) detect staleness
	// cheaply via Version.
	ver uint64
	// mut is the graph's current mutation token: a bucket may be written
	// in place only if it is owned by this token. Snapshot refreshes the
	// token, disowning every bucket at once, so the next mutation copies
	// what it touches instead of tearing the snapshot. A nil token marks
	// a frozen snapshot; mutating one panics.
	mut *mutToken
	// snap caches the last snapshot with the version it was taken at, so
	// repeated Snapshot calls on an unchanged graph return the same view
	// without disowning buckets again.
	snap    *Graph
	snapVer uint64
}

// mutToken is an ownership marker compared by pointer identity. It must
// not be zero-sized: the runtime may give all zero-size allocations the
// same address, which would alias distinct tokens.
type mutToken struct{ _ byte }

// fewMax is the inline-leaf capacity: leaf sets at or below it live in a
// linear-scanned slice instead of a map. Most leaves are tiny (an
// object per (subject, predicate), a predicate per (object, subject)),
// and a small slice costs one allocation and no hashing where a map
// costs two allocations plus hashing — the difference dominates bulk
// loads and GC pressure on large graphs.
const fewMax = 8

// bucket3 is a leaf set of third-position terms. Exactly one
// representation is active: few for small sets, set once it outgrows
// fewMax (it never demotes back). A nil *bucket3 behaves as empty for
// reads.
type bucket3 struct {
	owner *mutToken
	few   []Term
	set   map[Term]struct{}
}

// size returns the number of terms in the leaf.
func (b3 *bucket3) size() int {
	if b3 == nil {
		return 0
	}
	if b3.set != nil {
		return len(b3.set)
	}
	return len(b3.few)
}

// has reports membership.
func (b3 *bucket3) has(t Term) bool {
	if b3 == nil {
		return false
	}
	if b3.set != nil {
		_, ok := b3.set[t]
		return ok
	}
	for _, u := range b3.few {
		if u == t {
			return true
		}
	}
	return false
}

// each calls fn for every term until fn returns false; reports whether
// the iteration ran to completion.
func (b3 *bucket3) each(fn func(Term) bool) bool {
	if b3 == nil {
		return true
	}
	if b3.set != nil {
		for t := range b3.set {
			if !fn(t) {
				return false
			}
		}
		return true
	}
	for _, t := range b3.few {
		if !fn(t) {
			return false
		}
	}
	return true
}

// insert adds t to an owned leaf, reporting whether it was absent.
func (b3 *bucket3) insert(t Term) bool {
	if b3.set == nil {
		for _, u := range b3.few {
			if u == t {
				return false
			}
		}
		if len(b3.few) < fewMax {
			b3.few = append(b3.few, t)
			return true
		}
		set := make(map[Term]struct{}, len(b3.few)+1)
		for _, u := range b3.few {
			set[u] = struct{}{}
		}
		b3.set, b3.few = set, nil
	}
	if _, dup := b3.set[t]; dup {
		return false
	}
	b3.set[t] = struct{}{}
	return true
}

// remove deletes t from an owned leaf, reporting whether it was present.
func (b3 *bucket3) remove(t Term) bool {
	if b3.set != nil {
		if _, ok := b3.set[t]; !ok {
			return false
		}
		delete(b3.set, t)
		return true
	}
	for i, u := range b3.few {
		if u == t {
			last := len(b3.few) - 1
			b3.few[i] = b3.few[last]
			b3.few[last] = Term{} // release the strings
			b3.few = b3.few[:last]
			return true
		}
	}
	return false
}

// b2ShardThreshold is the second-level size past which a bucket splits
// into shards at its next copy-on-write. Small buckets (a subject's few
// predicates) stay one flat map; skewed buckets (a predicate's thousands
// of objects in the POS index) shard so the copy a mutation pays stays
// O(n/shardCount).
const b2ShardThreshold = 256

// b2shard is one slice of a sharded second level.
type b2shard struct {
	owner *mutToken
	m     map[Term]*bucket3
}

// b2FewMax is the inline capacity of a second-level bucket: up to this
// many (second key, leaf) entries live in a linear-scanned slice, the
// same trade as bucket3's few (a subject holds a handful of predicates;
// an object is held by a handful of subjects).
const b2FewMax = 4

// b2entry is one inline second-level entry.
type b2entry struct {
	k Term
	v *bucket3
}

// bucket2 is a second-level map: second key -> leaf bucket. At most one
// of few/flat/shards is in use (all nil means an empty few bucket); n
// counts the distinct second keys. Buckets grow monotonically through
// the representations: few -> flat (past b2FewMax) -> shards (past
// b2ShardThreshold, at the next copy-on-write).
type bucket2 struct {
	owner  *mutToken
	n      int
	few    []b2entry
	flat   map[Term]*bucket3
	shards *[shardCount]b2shard
}

// get returns the leaf bucket for second-key b, or nil.
func (b2 *bucket2) get(b Term) *bucket3 {
	switch {
	case b2.shards != nil:
		return b2.shards[shardOf(b)].m[b]
	case b2.flat != nil:
		return b2.flat[b]
	default:
		for i := range b2.few {
			if b2.few[i].k == b {
				return b2.few[i].v
			}
		}
		return nil
	}
}

// each calls fn for every (second key, leaf) entry until fn returns
// false; reports whether the iteration ran to completion.
func (b2 *bucket2) each(fn func(Term, *bucket3) bool) bool {
	switch {
	case b2.shards != nil:
		for i := range b2.shards {
			for k, v := range b2.shards[i].m {
				if !fn(k, v) {
					return false
				}
			}
		}
		return true
	case b2.flat != nil:
		for k, v := range b2.flat {
			if !fn(k, v) {
				return false
			}
		}
		return true
	default:
		for i := range b2.few {
			if !fn(b2.few[i].k, b2.few[i].v) {
				return false
			}
		}
		return true
	}
}

// copyFor returns b2 if tok already owns it, else a writable copy owned
// by tok: few and flat buckets copy (flat splits into shards past the
// threshold, a one-time O(n) after which copies are per-shard), sharded
// buckets copy only the 64-entry shard header — individual shard maps
// stay shared until slot touches them.
func (b2 *bucket2) copyFor(tok *mutToken) *bucket2 {
	if b2.owner == tok {
		return b2
	}
	c := &bucket2{owner: tok, n: b2.n}
	switch {
	case b2.shards != nil:
		shards := *b2.shards
		c.shards = &shards
	case b2.flat == nil:
		// Fresh backing array: the snapshot must never see in-place
		// leaf swaps or appends through a shared slice.
		c.few = append(make([]b2entry, 0, len(b2.few)+1), b2.few...)
	case b2.n >= b2ShardThreshold:
		shards := new([shardCount]b2shard)
		for k, v := range b2.flat {
			s := &shards[shardOf(k)]
			if s.m == nil {
				s.m = make(map[Term]*bucket3)
				s.owner = tok
			}
			s.m[k] = v
		}
		c.shards = shards
	default:
		m := make(map[Term]*bucket3, len(b2.flat)+1)
		for k, v := range b2.flat {
			m[k] = v
		}
		c.flat = m
	}
	return c
}

// slot returns the writable map holding second-key b for the flat and
// sharded representations. b2 must already be owned by tok (see
// copyFor) and must not be in few form (see mutableLeaf).
func (b2 *bucket2) slot(tok *mutToken, b Term) map[Term]*bucket3 {
	if b2.shards == nil {
		return b2.flat
	}
	s := &b2.shards[shardOf(b)]
	if s.owner != tok {
		m := make(map[Term]*bucket3, len(s.m)+1)
		for k, v := range s.m {
			m[k] = v
		}
		s.m, s.owner = m, tok
	}
	return s.m
}

// mutableLeaf returns the writable leaf for second-key b of an owned
// bucket, creating or path-copying it as needed; created reports a new
// entry. A few bucket promotes to flat when it outgrows b2FewMax.
func (b2 *bucket2) mutableLeaf(tok *mutToken, b Term, create bool) (b3 *bucket3, created bool) {
	if b2.flat == nil && b2.shards == nil {
		for i := range b2.few {
			if b2.few[i].k == b {
				b3 := b2.few[i].v
				if b3.owner != tok {
					b3 = copyB3(tok, b3)
					b2.few[i].v = b3
				}
				return b3, false
			}
		}
		if !create {
			return nil, false
		}
		if len(b2.few) < b2FewMax {
			b3 := &bucket3{owner: tok}
			b2.few = append(b2.few, b2entry{k: b, v: b3})
			return b3, true
		}
		m := make(map[Term]*bucket3, len(b2.few)+1)
		for _, e := range b2.few {
			m[e.k] = e.v
		}
		b2.flat, b2.few = m, nil
	}
	return mutableB3(tok, b2.slot(tok, b), b, create)
}

// deleteLeaf drops second-key b from an owned bucket. The caller
// adjusts n.
func (b2 *bucket2) deleteLeaf(tok *mutToken, b Term) {
	switch {
	case b2.shards != nil:
		delete(b2.slot(tok, b), b)
	case b2.flat != nil:
		delete(b2.flat, b)
	default:
		for i := range b2.few {
			if b2.few[i].k == b {
				last := len(b2.few) - 1
				b2.few[i] = b2.few[last]
				b2.few[last] = b2entry{} // release the strings and leaf
				b2.few = b2.few[:last]
				return
			}
		}
	}
}

// copyB3 returns a writable copy of a leaf owned by tok.
func copyB3(tok *mutToken, b3 *bucket3) *bucket3 {
	c := &bucket3{owner: tok}
	if b3.set != nil {
		c.set = make(map[Term]struct{}, len(b3.set)+1)
		for k := range b3.set {
			c.set[k] = struct{}{}
		}
	} else {
		// Fresh backing array: the snapshot's copy must never see
		// appends or in-place removals through a shared slice.
		c.few = append(make([]Term, 0, len(b3.few)+1), b3.few...)
	}
	return c
}

// mutableB3 returns the writable leaf for second-key b inside slot m,
// creating or path-copying it as needed; created reports a new entry.
func mutableB3(tok *mutToken, m map[Term]*bucket3, b Term, create bool) (b3 *bucket3, created bool) {
	b3 = m[b]
	switch {
	case b3 == nil:
		if !create {
			return nil, false
		}
		b3 = &bucket3{owner: tok}
		m[b] = b3
		return b3, true
	case b3.owner != tok:
		b3 = copyB3(tok, b3)
		m[b] = b3
	}
	return b3, false
}

// shardCount splits each index's top level so the copy a mutation pays
// after a snapshot is O(n/shardCount), not O(n). Must be a power of two.
const shardCount = 64

// cowShard is one slice of an index's top level: first key -> second
// bucket, owned by a mutation token like every deeper level.
type cowShard struct {
	owner *mutToken
	m     map[Term]*bucket2
}

// cowIndex is a three-level nested index (first key -> second key -> set
// of third keys) in which every level carries the mutation token that
// owns it. Writes go through add/remove, which path-copy any level not
// owned by the current token before touching it; levels reachable from a
// snapshot are therefore never written in place. The top level is
// sharded by first-key hash, so the one unavoidable map copy per
// mutate-after-snapshot touches a 1/shardCount slice of the keys.
type cowIndex struct {
	shards [shardCount]cowShard
}

// shardOf hashes a term to its top-level shard (FNV-1a over the value).
func shardOf(t Term) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(t.Value); i++ {
		h ^= uint32(t.Value[i])
		h *= 16777619
	}
	h ^= uint32(t.Kind)
	h *= 16777619
	return h & (shardCount - 1)
}

// top returns the shard map holding first-key a, for reads (may be nil).
func (ix *cowIndex) top(a Term) map[Term]*bucket2 {
	return ix.shards[shardOf(a)].m
}

// mutable returns first-key a's shard with its map writable, copying it
// first (shallow: keys and bucket pointers) if a snapshot still shares
// it.
func (ix *cowIndex) mutable(tok *mutToken, a Term) *cowShard {
	s := &ix.shards[shardOf(a)]
	if s.owner != tok {
		m := make(map[Term]*bucket2, len(s.m)+1)
		for k, v := range s.m {
			m[k] = v
		}
		s.m, s.owner = m, tok
	}
	return s
}

// mutableB2 returns the writable bucket for first-key a, creating or
// copy-on-writing it as needed. s must be a's writable shard.
func (s *cowShard) mutableB2(tok *mutToken, a Term) *bucket2 {
	b2 := s.m[a]
	if b2 == nil {
		b2 = &bucket2{owner: tok}
		s.m[a] = b2
		return b2
	}
	if c := b2.copyFor(tok); c != b2 {
		s.m[a] = c
		b2 = c
	}
	return b2
}

func (ix *cowIndex) add(tok *mutToken, a, b, c Term) bool {
	s := ix.mutable(tok, a)
	b2 := s.mutableB2(tok, a)
	b3, created := b2.mutableLeaf(tok, b, true)
	if created {
		b2.n++
	}
	return b3.insert(c)
}

func (ix *cowIndex) remove(tok *mutToken, a, b, c Term) bool {
	if !ix.has(a, b, c) {
		return false
	}
	s := ix.mutable(tok, a)
	b2 := s.mutableB2(tok, a)
	b3, _ := b2.mutableLeaf(tok, b, false)
	b3.remove(c)
	if b3.size() == 0 {
		b2.deleteLeaf(tok, b)
		b2.n--
		if b2.n == 0 {
			delete(s.m, a)
		}
	}
	return true
}

func (ix *cowIndex) has(a, b, c Term) bool {
	b2 := ix.top(a)[a]
	if b2 == nil {
		return false
	}
	return b2.get(b).has(c)
}

// leaf returns the leaf under (a, b); a nil *bucket3 reads as empty.
func (ix *cowIndex) leaf(a, b Term) *bucket3 {
	b2 := ix.top(a)[a]
	if b2 == nil {
		return nil
	}
	return b2.get(b)
}

// firstLen returns the number of distinct first keys.
func (ix *cowIndex) firstLen() int {
	n := 0
	for i := range ix.shards {
		n += len(ix.shards[i].m)
	}
	return n
}

// NewGraph returns an empty graph. Shard maps materialize lazily on
// first write.
func NewGraph() *Graph {
	return &Graph{mut: &mutToken{}}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Version returns a counter that increases on every successful Add or
// Remove. Two equal Version values bracket a span with no mutations, so
// state derived from the graph in between is still current. A snapshot
// keeps the version it was taken at forever.
func (g *Graph) Version() uint64 { return g.ver }

// Frozen reports whether g is an immutable snapshot (see Snapshot).
func (g *Graph) Frozen() bool { return g.mut == nil }

// Snapshot returns a frozen copy-on-write view of the graph: an O(1)
// operation that shares the graph's indexes and freezes them by
// refreshing the live graph's mutation token. Reads on the snapshot are
// safe concurrently with any later mutation of the live graph — a
// mutation path-copies the first/second-level buckets it touches instead
// of writing shared state — and always observe exactly the triples
// present at snapshot time. The first mutation through a given top-level
// shard after a snapshot additionally re-copies that shard's map
// (pointer-shallow, O(distinct first keys / 64)); subsequent mutations
// pay only for the buckets they touch, until the next Snapshot.
//
// Snapshot must be serialized with mutations (call it from the writing
// goroutine, or under the caller's write lock). Snapshots of an
// unchanged graph are cached, so taking one per published query-state is
// free when nothing mutated in between. The snapshot of a snapshot is
// the snapshot itself. Mutating a snapshot panics.
func (g *Graph) Snapshot() *Graph {
	if g.mut == nil {
		return g
	}
	if g.snap != nil && g.snapVer == g.ver {
		return g.snap
	}
	snap := &Graph{spo: g.spo, n: g.n, ver: g.ver}
	// A still-deferred secondary index transfers to the snapshot: the
	// retained keys match the frozen SPO state exactly as long as no
	// mutation happened, and the first mutation materializes the live
	// graph's indexes before touching anything. A concurrent READER may
	// be materializing an index right now (ensurePOS/ensureOSP fill the
	// shards under the bulk state's mutex before clearing the pointer),
	// so each index copy and its pending-state load must happen under
	// that same mutex — an unsynchronized copy could capture half-filled
	// shards after the pointer already reads nil, leaving the snapshot's
	// index permanently torn.
	if bs := g.lazyPOS.Load(); bs != nil {
		bs.mu.Lock()
		snap.pos = g.pos
		snap.lazyPOS.Store(g.lazyPOS.Load())
		bs.mu.Unlock()
	} else {
		snap.pos = g.pos
	}
	if bs := g.lazyOSP.Load(); bs != nil {
		bs.mu.Lock()
		snap.osp = g.osp
		snap.lazyOSP.Store(g.lazyOSP.Load())
		bs.mu.Unlock()
	} else {
		snap.osp = g.osp
	}
	// Disown every bucket: the next mutation on the live graph copies
	// before writing, so snap's view never changes.
	g.mut = &mutToken{}
	g.snap, g.snapVer = snap, g.ver
	return snap
}

// bulkState is the deferred-construction state a bulk-loaded graph
// carries until both secondary indexes materialize: the interned term
// table and the sorted packed (s, p, o) keys. Both materializations
// share one state and one mutex.
type bulkState struct {
	mu    sync.Mutex
	table []Term
	keys  []uint64
}

// ensurePOS materializes the POS index of a bulk-loaded graph. The nil
// fast path makes this free on eagerly-built graphs; the slow path is
// safe for concurrent readers of a frozen snapshot.
func (g *Graph) ensurePOS() {
	bs := g.lazyPOS.Load()
	if bs == nil {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if g.lazyPOS.Load() == nil { // built while we waited for the lock
		return
	}
	fillIndexLazy(&g.pos, g.mut, bs, termBits, 0, 2*termBits) // p, o, s
	g.lazyPOS.Store(nil)
}

// ensureOSP materializes the OSP index, like ensurePOS.
func (g *Graph) ensureOSP() {
	bs := g.lazyOSP.Load()
	if bs == nil {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if g.lazyOSP.Load() == nil {
		return
	}
	fillIndexLazy(&g.osp, g.mut, bs, 0, 2*termBits, termBits) // o, s, p
	g.lazyOSP.Store(nil)
}

// writeToken returns the token mutations must own, panicking on frozen
// snapshots — silently dropping writes would corrupt derived state.
// Deferred secondary indexes materialize here first: a mutation must
// update all three indexes, so none may still be pending.
func (g *Graph) writeToken() *mutToken {
	if g.mut == nil {
		panic("rdf: mutating a frozen graph snapshot")
	}
	g.ensurePOS()
	g.ensureOSP()
	return g.mut
}

// Add inserts t, reporting whether it was not already present.
// Invalid triples (per Triple.Validate) are rejected and not inserted.
// Panics if g is a frozen snapshot.
func (g *Graph) Add(t Triple) bool {
	if t.Validate() != nil {
		return false
	}
	tok := g.writeToken()
	if !g.spo.add(tok, t.S, t.P, t.O) {
		return false
	}
	g.pos.add(tok, t.P, t.O, t.S)
	g.osp.add(tok, t.O, t.S, t.P)
	g.n++
	g.ver++
	return true
}

// AddAll inserts every triple of ts and returns how many were new.
func (g *Graph) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if g.Add(t) {
			added++
		}
	}
	return added
}

// Remove deletes t, reporting whether it was present. Panics if g is a
// frozen snapshot.
func (g *Graph) Remove(t Triple) bool {
	tok := g.writeToken()
	if !g.spo.remove(tok, t.S, t.P, t.O) {
		return false
	}
	g.pos.remove(tok, t.P, t.O, t.S)
	g.osp.remove(tok, t.O, t.S, t.P)
	g.n--
	g.ver++
	return true
}

// Has reports whether t is in the graph.
func (g *Graph) Has(t Triple) bool {
	return g.spo.has(t.S, t.P, t.O)
}

// Match calls fn for every triple matching the pattern; a zero Term in a
// position is a wildcard. Iteration stops early if fn returns false.
// The most selective index available for the bound positions is used.
func (g *Graph) Match(s, p, o Term, fn func(Triple) bool) {
	switch {
	case !s.IsZero() && !p.IsZero() && !o.IsZero():
		if g.Has(Triple{s, p, o}) {
			fn(Triple{s, p, o})
		}
	case !s.IsZero() && !p.IsZero():
		g.spo.leaf(s, p).each(func(obj Term) bool {
			return fn(Triple{s, p, obj})
		})
	case !s.IsZero() && !o.IsZero():
		g.ensureOSP()
		g.osp.leaf(o, s).each(func(pred Term) bool {
			return fn(Triple{s, pred, o})
		})
	case !p.IsZero() && !o.IsZero():
		g.ensurePOS()
		g.pos.leaf(p, o).each(func(subj Term) bool {
			return fn(Triple{subj, p, o})
		})
	case !s.IsZero():
		if b2 := g.spo.top(s)[s]; b2 != nil {
			b2.each(func(pred Term, objs *bucket3) bool {
				return objs.each(func(obj Term) bool {
					return fn(Triple{s, pred, obj})
				})
			})
		}
	case !p.IsZero():
		g.ensurePOS()
		if b2 := g.pos.top(p)[p]; b2 != nil {
			b2.each(func(obj Term, subjs *bucket3) bool {
				return subjs.each(func(subj Term) bool {
					return fn(Triple{subj, p, obj})
				})
			})
		}
	case !o.IsZero():
		g.ensureOSP()
		if b2 := g.osp.top(o)[o]; b2 != nil {
			b2.each(func(subj Term, preds *bucket3) bool {
				return preds.each(func(pred Term) bool {
					return fn(Triple{subj, pred, o})
				})
			})
		}
	default:
		for i := range g.spo.shards {
			for subj, b2 := range g.spo.shards[i].m {
				if !b2.each(func(pred Term, objs *bucket3) bool {
					return objs.each(func(obj Term) bool {
						return fn(Triple{subj, pred, obj})
					})
				}) {
					return
				}
			}
		}
	}
}

// Find returns all triples matching the pattern (zero Term = wildcard),
// sorted deterministically.
func (g *Graph) Find(s, p, o Term) []Triple {
	var out []Triple
	g.Match(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Objects returns the distinct objects of triples (s, p, ?o), sorted.
func (g *Graph) Objects(s, p Term) []Term {
	objs := g.spo.leaf(s, p)
	out := make([]Term, 0, objs.size())
	objs.each(func(o Term) bool {
		out = append(out, o)
		return true
	})
	sortTerms(out)
	return out
}

// FirstObject returns one object of (s, p, ?o) and whether any exists.
// When several objects exist the smallest in Term.Compare order is
// returned, so the choice is deterministic.
func (g *Graph) FirstObject(s, p Term) (Term, bool) {
	var best Term
	first := true
	g.spo.leaf(s, p).each(func(o Term) bool {
		if first || o.Compare(best) < 0 {
			best, first = o, false
		}
		return true
	})
	return best, !first
}

// Subjects returns the distinct subjects of triples (?s, p, o), sorted.
func (g *Graph) Subjects(p, o Term) []Term {
	g.ensurePOS()
	subjs := g.pos.leaf(p, o)
	out := make([]Term, 0, subjs.size())
	subjs.each(func(s Term) bool {
		out = append(out, s)
		return true
	})
	sortTerms(out)
	return out
}

// SubjectCount returns the number of distinct subjects of (?s, p, o)
// without materializing them.
func (g *Graph) SubjectCount(p, o Term) int {
	g.ensurePOS()
	return g.pos.leaf(p, o).size()
}

// Predicates returns the distinct predicates used in the graph, sorted.
func (g *Graph) Predicates() []Term {
	g.ensurePOS()
	out := make([]Term, 0, g.pos.firstLen())
	for i := range g.pos.shards {
		for p := range g.pos.shards[i].m {
			out = append(out, p)
		}
	}
	sortTerms(out)
	return out
}

// AllSubjects returns the distinct subjects appearing in the graph, sorted.
func (g *Graph) AllSubjects() []Term {
	out := make([]Term, 0, g.spo.firstLen())
	for i := range g.spo.shards {
		for s := range g.spo.shards[i].m {
			out = append(out, s)
		}
	}
	sortTerms(out)
	return out
}

// Triples returns every triple, sorted deterministically.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.n)
	g.Match(Term{}, Term{}, Term{}, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Merge adds every triple of other into g and returns how many were new.
func (g *Graph) Merge(other *Graph) int {
	added := 0
	other.Match(Term{}, Term{}, Term{}, func(t Triple) bool {
		if g.Add(t) {
			added++
		}
		return true
	})
	return added
}

// Clone returns an independent deep copy of the graph. Unlike Snapshot
// the copy is mutable and shares nothing; prefer Snapshot for read-only
// point-in-time views.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.Merge(g)
	return c
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
