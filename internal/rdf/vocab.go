package rdf

// Well-known vocabulary IRIs used across the pipeline. Keeping them here
// avoids scattering string constants through the higher layers.
const (
	// RDF namespace.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

	// RDFS namespace.
	RDFSLabel      = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSComment    = "http://www.w3.org/2000/01/rdf-schema#comment"

	// OWL namespace.
	OWLClass        = "http://www.w3.org/2002/07/owl#Class"
	OWLSameAs       = "http://www.w3.org/2002/07/owl#sameAs"
	OWLDisjointWith = "http://www.w3.org/2002/07/owl#disjointWith"
	OWLThing        = "http://www.w3.org/2002/07/owl#Thing"

	// XSD datatypes beyond xsd:string (declared in term.go).
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// Convenience terms for the vocabulary above.
var (
	TypeTerm         = NewIRI(RDFType)
	LabelTerm        = NewIRI(RDFSLabel)
	SubClassOfTerm   = NewIRI(RDFSSubClassOf)
	ClassTerm        = NewIRI(OWLClass)
	SameAsTerm       = NewIRI(OWLSameAs)
	DisjointWithTerm = NewIRI(OWLDisjointWith)
	ThingTerm        = NewIRI(OWLThing)
)

// TypesOf returns the classes asserted for subject s via rdf:type, sorted.
func (g *Graph) TypesOf(s Term) []Term { return g.Objects(s, TypeTerm) }

// InstancesOf returns the subjects asserted to have class c, sorted.
func (g *Graph) InstancesOf(c Term) []Term { return g.Subjects(TypeTerm, c) }
