package rdf

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadNTriplesBasic(t *testing.T) {
	input := `
# a comment
<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .
<http://ex.org/s> <http://ex.org/name> "Alice" .

<http://ex.org/s> <http://ex.org/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/s> <http://ex.org/label> "chaise"@fr .
_:b0 <http://ex.org/p> _:b1 .
`
	g, err := ReadNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	if !g.Has(T(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/name"), NewLiteral("Alice"))) {
		t.Error("missing plain literal triple")
	}
	if !g.Has(T(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/age"), NewTypedLiteral("30", XSDInteger))) {
		t.Error("missing typed literal triple")
	}
	if !g.Has(T(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/label"), NewLangLiteral("chaise", "fr"))) {
		t.Error("missing lang literal triple")
	}
	if !g.Has(T(NewBlank("b0"), NewIRI("http://ex.org/p"), NewBlank("b1"))) {
		t.Error("missing blank node triple")
	}
}

func TestReadNTriplesEscapes(t *testing.T) {
	input := `<http://ex.org/s> <http://ex.org/p> "tab\there\nand \"quotes\" and é and \U0001F600" .` + "\n"
	g, err := ReadNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	want := "tab\there\nand \"quotes\" and é and \U0001F600"
	objs := g.Objects(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"))
	if len(objs) != 1 || objs[0].Value != want {
		t.Errorf("object = %q, want %q", objs, want)
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"missing dot", `<http://s> <http://p> <http://o>`},
		{"unterminated iri", `<http://s <http://p> <http://o> .`},
		{"unterminated literal", `<http://s> <http://p> "abc .`},
		{"literal subject", `"s" <http://p> <http://o> .`},
		{"blank predicate", `<http://s> _:p <http://o> .`},
		{"trailing garbage", `<http://s> <http://p> <http://o> . extra`},
		{"bad unicode escape", `<http://s> <http://p> "\uZZZZ" .`},
		{"empty iri", `<> <http://p> <http://o> .`},
		{"bare word", `hello world .`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadNTriples(strings.NewReader(tc.input))
			if err == nil {
				t.Errorf("ReadNTriples(%q) succeeded, want error", tc.input)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error %v is not a *ParseError", err)
			}
		})
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(T(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral("multi\nline \"v\"")))
	g.Add(T(NewBlank("x"), NewIRI("http://ex.org/p"), NewTypedLiteral("3.14", XSDDecimal)))
	g.Add(T(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/q"), NewLangLiteral("hé", "fr")))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	g2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("ReadNTriples(serialized): %v\n%s", err, buf.String())
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round-trip Len = %d, want %d", g2.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !g2.Has(tr) {
			t.Errorf("round-trip lost %v", tr)
		}
	}
}

// Property: any graph built from generated terms survives a write/read
// round trip exactly.
func TestNTriplesRoundTripProperty(t *testing.T) {
	f := func(items []randomTerm) bool {
		g := NewGraph()
		for i, it := range items {
			s := NewIRI("http://ex.org/s" + sanitize(it.Value))
			p := NewIRI("http://ex.org/p")
			o := it.term()
			if i%2 == 0 {
				o = NewLiteral(it.Value) // exercise arbitrary literal content
			}
			g.Add(T(s, p, o))
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		g2, err := ReadNTriples(&buf)
		if err != nil {
			return false
		}
		if g2.Len() != g.Len() {
			return false
		}
		for _, tr := range g.Triples() {
			if !g2.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestWriteNTriplesDeterministic(t *testing.T) {
	g := sampleGraph(t)
	var a, b bytes.Buffer
	if err := WriteNTriples(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteNTriples(&b, g); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two serializations of the same graph differ")
	}
}
