package rdf

import (
	"errors"
	"fmt"
)

// Triple is an RDF triple. Like Term it is comparable, so it can key maps
// and be deduplicated by the store without auxiliary hashing.
type Triple struct {
	S, P, O Term
}

// T is shorthand for constructing a triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// ErrInvalidTriple reports a triple violating RDF's positional constraints.
var ErrInvalidTriple = errors.New("rdf: invalid triple")

// Validate checks the RDF positional constraints: the subject must be an
// IRI or blank node, the predicate an IRI, and the object any non-zero term.
func (t Triple) Validate() error {
	switch {
	case t.S.Kind != IRIKind && t.S.Kind != BlankKind:
		return fmt.Errorf("%w: subject must be IRI or blank node, got %s", ErrInvalidTriple, t.S.Kind)
	case t.P.Kind != IRIKind:
		return fmt.Errorf("%w: predicate must be IRI, got %s", ErrInvalidTriple, t.P.Kind)
	case t.O.IsZero():
		return fmt.Errorf("%w: object is the zero term", ErrInvalidTriple)
	}
	return nil
}

// String renders the triple as an N-Triples statement (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Compare orders triples by subject, then predicate, then object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}
