package rdf

import (
	"encoding/binary"
	"fmt"
	"io"
	"slices"
)

// Binary snapshot codec: a compact length-prefixed serialization of a
// graph, built for durability checkpoints where the N-Triples text path
// is too slow. Three things make it fast rather than merely smaller:
//
//   - an interned term table, written sorted, so every term's strings are
//     encoded once and triples are three varint indexes;
//   - triples sorted as packed integer keys (21 bits per term index),
//     avoiding any Term comparison on the hot path;
//   - a bulk graph loader on decode that builds the store's three
//     copy-on-write indexes directly from sorted runs with exact-sized
//     maps — no per-triple Add, no duplicate probing, no map growth — and
//     backs every term string by one shared buffer.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "RDFBIN1\n" (8 bytes)
//	#terms  term table length
//	terms   kind byte, value string; literals add datatype and lang
//	        strings (a string is a varint length followed by raw bytes),
//	        in Term.Compare order
//	#triples
//	triples three term-table indexes (s, p, o) each, in sorted order
//
// Encoding is deterministic: equal graphs encode to equal bytes. Framing,
// checksums and versioning beyond the magic are the caller's concern
// (internal/store wraps snapshot sections with CRCs).

// binaryMagic guards the snapshot format; bump the digit on breaking
// layout changes.
const binaryMagic = "RDFBIN1\n"

// maxBinaryString caps a single encoded string, mirroring the N-Triples
// reader's line cap, so a corrupt length prefix cannot ask the decoder
// to allocate gigabytes.
const maxBinaryString = 16 * 1024 * 1024

// termBits is the index width inside a packed triple key. Graphs with
// more than 2^21 (~2M) distinct terms take the unpacked fallback path.
const termBits = 21

const termMask = 1<<termBits - 1

// EncodeSnapshot writes g's triples in the binary snapshot format. The
// graph is read-only during the call, so encoding a frozen Snapshot is
// safe concurrently with mutations of the live graph it came from.
func EncodeSnapshot(w io.Writer, g *Graph) error {
	// One pass over the graph: intern terms in first-use order and record
	// every triple as an id triplet. The SPO index is walked directly —
	// subjects intern once per subject and predicates once per (s, p)
	// run, and no Triple values are materialized. Interning goes through
	// a purpose-built open-addressing table: the runtime map's generic
	// machinery was the single hottest piece of the encoder.
	it := newInternTable(g.n + 8)
	type idTriple struct{ s, p, o uint32 }
	tris := make([]idTriple, 0, g.n)
	for si := range g.spo.shards {
		for s, b2 := range g.spo.shards[si].m {
			sid := it.intern(s)
			b2.each(func(p Term, objs *bucket3) bool {
				pid := it.intern(p)
				objs.each(func(o Term) bool {
					tris = append(tris, idTriple{sid, pid, it.intern(o)})
					return true
				})
				return true
			})
		}
	}
	table, termBytes := it.terms, it.bytes

	// Sort the table and derive old-id → sorted-id, so triple ordering
	// below never compares Terms again.
	order := make([]uint32, len(table))
	for i := range order {
		order[i] = uint32(i)
	}
	slices.SortFunc(order, func(a, b uint32) int { return table[a].Compare(table[b]) })
	remap := make([]uint32, len(table))
	sorted := make([]Term, len(table))
	for rank, old := range order {
		remap[old] = uint32(rank)
		sorted[rank] = table[old]
	}

	// termBytes over-reserves per term (16 covers kind byte + three
	// length varints), 10 covers any triple delta varint: one allocation.
	buf := make([]byte, 0, len(binaryMagic)+termBytes+10*len(tris)+20)
	buf = append(buf, binaryMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	for _, t := range sorted {
		buf = append(buf, byte(t.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(t.Value)))
		buf = append(buf, t.Value...)
		if t.Kind == LiteralKind {
			buf = binary.AppendUvarint(buf, uint64(len(t.Datatype)))
			buf = append(buf, t.Datatype...)
			buf = binary.AppendUvarint(buf, uint64(len(t.Lang)))
			buf = append(buf, t.Lang...)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(tris)))

	if len(sorted) <= 1<<termBits {
		// Pack every triple into one integer and sort — term ids are in
		// Compare order, so integer order is triple order. Sorted keys
		// are written as deltas: one small varint per triple instead of
		// three (the decoder mirrors the table-size condition, so no
		// format flag is needed).
		keys := make([]uint64, len(tris))
		for i, t := range tris {
			keys[i] = uint64(remap[t.s])<<(2*termBits) | uint64(remap[t.p])<<termBits | uint64(remap[t.o])
		}
		slices.Sort(keys)
		prev := uint64(0)
		for _, k := range keys {
			buf = binary.AppendUvarint(buf, k-prev)
			prev = k
		}
	} else {
		// Fallback for gigantic term tables: sort the id triplets with
		// explicit three-way comparison.
		slices.SortFunc(tris, func(a, b idTriple) int {
			if c := int(remap[a.s]) - int(remap[b.s]); c != 0 {
				return c
			}
			if c := int(remap[a.p]) - int(remap[b.p]); c != 0 {
				return c
			}
			return int(remap[a.o]) - int(remap[b.o])
		})
		for _, t := range tris {
			buf = binary.AppendUvarint(buf, uint64(remap[t.s]))
			buf = binary.AppendUvarint(buf, uint64(remap[t.p]))
			buf = binary.AppendUvarint(buf, uint64(remap[t.o]))
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("rdf: encoding snapshot: %w", err)
	}
	return nil
}

// internTable is a linear-probing Term -> id table for the encoder:
// FNV hashing over the term fields and an int32 slot array beat the
// generic runtime map on this workload by avoiding its per-operation
// overhead.
type internTable struct {
	slots []int32 // term index + 1; 0 = empty
	terms []Term
	bytes int // serialized size of all interned terms (over-estimate)
}

// newInternTable sizes the table for roughly n distinct terms.
func newInternTable(n int) *internTable {
	capacity := 16
	for capacity < 2*n {
		capacity <<= 1
	}
	return &internTable{slots: make([]int32, capacity), terms: make([]Term, 0, n)}
}

// hashTerm is FNV-1a over every field of the term.
func hashTerm(t Term) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(t.Value); i++ {
		h = (h ^ uint32(t.Value[i])) * 16777619
	}
	h = (h ^ uint32(t.Kind)) * 16777619
	for i := 0; i < len(t.Lang); i++ {
		h = (h ^ uint32(t.Lang[i])) * 16777619
	}
	for i := 0; i < len(t.Datatype); i++ {
		h = (h ^ uint32(t.Datatype[i])) * 16777619
	}
	return h
}

// intern returns t's id, assigning the next one on first sight.
func (it *internTable) intern(t Term) uint32 {
	mask := uint32(len(it.slots) - 1)
	i := hashTerm(t) & mask
	for {
		s := it.slots[i]
		if s == 0 {
			break
		}
		if it.terms[s-1] == t {
			return uint32(s - 1)
		}
		i = (i + 1) & mask
	}
	id := uint32(len(it.terms))
	it.terms = append(it.terms, t)
	it.bytes += 16 + len(t.Value) + len(t.Datatype) + len(t.Lang)
	it.slots[i] = int32(id + 1)
	if len(it.terms)*4 > len(it.slots)*3 { // load factor 3/4
		it.grow()
	}
	return id
}

// grow doubles the slot array and reinserts every term.
func (it *internTable) grow() {
	slots := make([]int32, 2*len(it.slots))
	mask := uint32(len(slots) - 1)
	for idx, t := range it.terms {
		i := hashTerm(t) & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(idx + 1)
	}
	it.slots = slots
}

// binReader is a cursor over the raw snapshot bytes. blob is the same
// bytes as one string, so term strings can share its backing array
// instead of allocating per field.
type binReader struct {
	b    []byte
	blob string
	pos  int
}

func (r *binReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("rdf: decoding snapshot: reading %s: truncated varint", what)
	}
	r.pos += n
	return v, nil
}

func (r *binReader) string(what string) (string, error) {
	// Note: the error paths must not build strings eagerly — this runs
	// once per term field.
	n, err := r.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > maxBinaryString {
		return "", fmt.Errorf("rdf: decoding snapshot: %s length %d exceeds cap", what, n)
	}
	if uint64(len(r.b)-r.pos) < n {
		return "", fmt.Errorf("rdf: decoding snapshot: %s truncated", what)
	}
	s := r.blob[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return s, nil
}

func (r *binReader) byte(what string) (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("rdf: decoding snapshot: reading %s: truncated", what)
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}

// DecodeSnapshot reads a graph written by EncodeSnapshot. Corrupt input
// (bad magic, dangling term indexes, truncated data, invalid triples,
// trailing bytes) returns an error; the decoder never trusts a length
// prefix with an allocation larger than the bytes actually present.
func DecodeSnapshot(rd io.Reader) (*Graph, error) {
	var raw []byte
	var err error
	if sized, ok := rd.(interface{ Len() int }); ok {
		// bytes.Reader and friends: read in one exact allocation instead
		// of io.ReadAll's doubling chain.
		raw = make([]byte, sized.Len())
		_, err = io.ReadFull(rd, raw)
	} else {
		raw, err = io.ReadAll(rd)
	}
	if err != nil {
		return nil, fmt.Errorf("rdf: decoding snapshot: %w", err)
	}
	if len(raw) < len(binaryMagic) || string(raw[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("rdf: decoding snapshot: bad magic")
	}
	r := &binReader{b: raw, blob: string(raw), pos: len(binaryMagic)}

	nTerms, err := r.uvarint("term count")
	if err != nil {
		return nil, err
	}
	if nTerms > uint64(len(raw)-r.pos)/2 { // every term takes >= 2 bytes
		return nil, fmt.Errorf("rdf: decoding snapshot: implausible term count %d", nTerms)
	}
	table := make([]Term, 0, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		kind, err := r.byte("term kind")
		if err != nil {
			return nil, err
		}
		t := Term{Kind: TermKind(kind)}
		switch t.Kind {
		case IRIKind, BlankKind:
			if t.Value, err = r.string("term value"); err != nil {
				return nil, err
			}
		case LiteralKind:
			if t.Value, err = r.string("term value"); err != nil {
				return nil, err
			}
			if t.Datatype, err = r.string("term datatype"); err != nil {
				return nil, err
			}
			if t.Lang, err = r.string("term lang"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("rdf: decoding snapshot: term %d: invalid kind %d", i, kind)
		}
		table = append(table, t)
	}

	nTriples, err := r.uvarint("triple count")
	if err != nil {
		return nil, err
	}
	if nTriples > uint64(len(raw)-r.pos) { // every triple takes >= 1 byte
		return nil, fmt.Errorf("rdf: decoding snapshot: implausible triple count %d", nTriples)
	}
	if len(table) > 1<<termBits {
		return decodeUnpacked(r, table, nTriples)
	}
	keys := make([]uint64, 0, nTriples)
	prev := uint64(0)
	for i := uint64(0); i < nTriples; i++ {
		delta, err := r.uvarint("triple delta")
		if err != nil {
			return nil, err
		}
		k := prev + delta
		if k < prev || k >= 1<<(3*termBits) {
			return nil, fmt.Errorf("rdf: decoding snapshot: triple %d: key out of range", i)
		}
		prev = k
		s, p, o := k>>(2*termBits), k>>termBits&termMask, k&termMask
		if s >= uint64(len(table)) || p >= uint64(len(table)) || o >= uint64(len(table)) {
			return nil, fmt.Errorf("rdf: decoding snapshot: triple %d: term index out of range (%d terms)", i, len(table))
		}
		// Positional validation, once per triple here instead of per Add.
		if k := table[s].Kind; k != IRIKind && k != BlankKind {
			return nil, fmt.Errorf("rdf: decoding snapshot: triple %d: subject is %s", i, k)
		}
		if k := table[p].Kind; k != IRIKind {
			return nil, fmt.Errorf("rdf: decoding snapshot: triple %d: predicate is %s", i, k)
		}
		keys = append(keys, k)
	}
	if r.pos != len(r.b) {
		return nil, fmt.Errorf("rdf: decoding snapshot: %d trailing bytes", len(r.b)-r.pos)
	}
	return buildGraphBulk(table, keys), nil
}

// readTripleIDs reads and range-checks one triple's term indexes.
func readTripleIDs(r *binReader, nTerms int) (s, p, o uint64, err error) {
	if s, err = r.uvarint("subject index"); err != nil {
		return
	}
	if p, err = r.uvarint("predicate index"); err != nil {
		return
	}
	if o, err = r.uvarint("object index"); err != nil {
		return
	}
	if s >= uint64(nTerms) || p >= uint64(nTerms) || o >= uint64(nTerms) {
		err = fmt.Errorf("rdf: decoding snapshot: term index out of range (%d terms)", nTerms)
	}
	return
}

// decodeUnpacked is the fallback for term tables too large to pack:
// plain per-triple Add.
func decodeUnpacked(r *binReader, table []Term, nTriples uint64) (*Graph, error) {
	g := NewGraph()
	for i := uint64(0); i < nTriples; i++ {
		s, p, o, err := readTripleIDs(r, len(table))
		if err != nil {
			return nil, err
		}
		t := Triple{S: table[s], P: table[p], O: table[o]}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("rdf: decoding snapshot: triple %d: %w", i, err)
		}
		g.Add(t)
	}
	if r.pos != len(r.b) {
		return nil, fmt.Errorf("rdf: decoding snapshot: %d trailing bytes", len(r.b)-r.pos)
	}
	return g, nil
}

// buildGraphBulk constructs a graph from packed (s,p,o) keys without
// going through Add: the SPO index is filled from one integer sort with
// every bucket allocated once at its exact final size, and the two
// secondary indexes are deferred — the sorted keys are retained and POS
// and OSP materialize on their first read (fillIndexLazy), or before
// the first mutation. Recovery therefore pays for exactly the indexes
// it touches.
func buildGraphBulk(table []Term, spo []uint64) *Graph {
	g := NewGraph()
	slices.Sort(spo)
	n := fillIndexBulk(&g.spo, g.mut, table, spo)
	g.n = n
	g.ver = uint64(n)
	if len(spo) > 0 {
		bs := &bulkState{table: table, keys: spo}
		g.lazyPOS.Store(bs)
		g.lazyOSP.Store(bs)
	}
	return g
}

// fillIndexLazy materializes one deferred secondary index from the
// retained bulk keys: repack each key's (first, second, third) positions
// by the given shifts, sort, bulk-fill. Called with bs.mu held.
func fillIndexLazy(ix *cowIndex, tok *mutToken, bs *bulkState, a, b, c uint) {
	keys := make([]uint64, len(bs.keys))
	for i, k := range bs.keys {
		keys[i] = k>>a&termMask<<(2*termBits) | k>>b&termMask<<termBits | k>>c&termMask
	}
	slices.Sort(keys)
	fillIndexBulk(ix, tok, bs.table, keys)
}

// fillIndexBulk fills one three-level index from sorted packed keys,
// returning the number of distinct keys. Duplicates are adjacent after
// sorting and collapse in the leaf sets. Bucket structs come out of two
// slab allocations — one per level — instead of one allocation each.
func fillIndexBulk(ix *cowIndex, tok *mutToken, table []Term, keys []uint64) int {
	// Count distinct first keys (for shard sizing and the bucket2 slab)
	// and distinct (first, second) pairs (for the bucket3 slab).
	var counts [shardCount]int
	distinctA, distinctAB := 0, 0
	for i := 0; i < len(keys); {
		a := keys[i] >> (2 * termBits)
		j := i
		for j < len(keys) && keys[j]>>(2*termBits) == a {
			j++
		}
		counts[shardOf(table[a])]++
		distinctA++
		for k := i; k < j; {
			b := keys[k] >> termBits & termMask
			for k < j && keys[k]>>termBits&termMask == b {
				k++
			}
			distinctAB++
		}
		i = j
	}
	for s := range ix.shards {
		if counts[s] > 0 {
			ix.shards[s] = cowShard{owner: tok, m: make(map[Term]*bucket2, counts[s])}
		}
	}
	b2slab := make([]bucket2, distinctA)
	b3slab := make([]bucket3, distinctAB)
	// Arenas back the inline slices of small buckets: len(keys) bounds
	// the total leaf entries, distinctAB the second-level entries.
	arena := make([]Term, len(keys))
	entryArena := make([]b2entry, distinctAB)

	n := 0
	for i := 0; i < len(keys); {
		aID := keys[i] >> (2 * termBits)
		j := i
		for j < len(keys) && keys[j]>>(2*termBits) == aID {
			j++
		}
		run := keys[i:j]
		distinctB := 0
		for k := 0; k < len(run); {
			b := run[k] >> termBits & termMask
			for k < len(run) && run[k]>>termBits&termMask == b {
				k++
			}
			distinctB++
		}
		b2 := &b2slab[0]
		b2slab = b2slab[1:]
		*b2 = bucket2{owner: tok, n: distinctB}
		if distinctB <= b2FewMax {
			b2.few = entryArena[:0:distinctB]
			entryArena = entryArena[distinctB:]
		} else {
			b2.flat = make(map[Term]*bucket3, distinctB)
		}
		for k := 0; k < len(run); {
			bID := run[k] >> termBits & termMask
			l := k
			for l < len(run) && run[l]>>termBits&termMask == bID {
				l++
			}
			b3 := &b3slab[0]
			b3slab = b3slab[1:]
			*b3 = bucket3{owner: tok}
			// Distinct third keys; duplicates are adjacent.
			distinctC := 1
			for m := k + 1; m < l; m++ {
				if run[m] != run[m-1] {
					distinctC++
				}
			}
			if distinctC <= fewMax {
				few := arena[:0:distinctC]
				arena = arena[distinctC:]
				prev := ^uint64(0)
				for m := k; m < l; m++ {
					if run[m] == prev {
						continue
					}
					prev = run[m]
					few = append(few, table[run[m]&termMask])
				}
				b3.few = few
			} else {
				set := make(map[Term]struct{}, distinctC)
				prev := ^uint64(0)
				for m := k; m < l; m++ {
					if run[m] == prev {
						continue
					}
					prev = run[m]
					set[table[run[m]&termMask]] = struct{}{}
				}
				b3.set = set
			}
			n += distinctC
			if b2.flat != nil {
				b2.flat[table[bID]] = b3
			} else {
				b2.few = append(b2.few, b2entry{k: table[bID], v: b3})
			}
			k = l
		}
		aTerm := table[aID]
		ix.shards[shardOf(aTerm)].m[aTerm] = b2
		i = j
	}
	return n
}
