package rdf

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func tripleN(s, p, o int) Triple {
	return T(
		NewIRI(fmt.Sprintf("http://ex.org/s%d", s)),
		NewIRI(fmt.Sprintf("http://ex.org/p%d", p)),
		NewLiteral(fmt.Sprintf("v%d", o)),
	)
}

func seededGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.Add(tripleN(i%7, i%3, i))
	}
	return g
}

func TestSnapshotFrozenAtVersion(t *testing.T) {
	g := seededGraph(20)
	wantVer := g.Version()
	wantLen := g.Len()
	wantTriples := g.Triples()

	snap := g.Snapshot()
	if !snap.Frozen() {
		t.Fatal("snapshot not frozen")
	}
	if g.Frozen() {
		t.Fatal("live graph must stay mutable")
	}

	// Mutate the live graph heavily: new triples, removals of shared
	// triples, re-adds.
	for i := 0; i < 50; i++ {
		g.Add(tripleN(i, i%5, 1000+i))
	}
	for _, tr := range wantTriples[:10] {
		if !g.Remove(tr) {
			t.Fatalf("remove %v failed", tr)
		}
	}

	if snap.Version() != wantVer || snap.Len() != wantLen {
		t.Fatalf("snapshot drifted: ver=%d len=%d, want ver=%d len=%d",
			snap.Version(), snap.Len(), wantVer, wantLen)
	}
	if got := snap.Triples(); !reflect.DeepEqual(got, wantTriples) {
		t.Fatalf("snapshot triples changed under live mutation:\n got %v\nwant %v", got, wantTriples)
	}
	// The removed triples are still visible in the snapshot.
	for _, tr := range wantTriples[:10] {
		if !snap.Has(tr) {
			t.Fatalf("snapshot lost %v after live removal", tr)
		}
	}
}

func TestSnapshotOfSnapshot(t *testing.T) {
	g := seededGraph(10)
	s1 := g.Snapshot()
	s2 := s1.Snapshot()
	if s2 != s1 {
		t.Fatal("snapshot of a snapshot should be the snapshot itself")
	}
	if !reflect.DeepEqual(s2.Triples(), g.Triples()) {
		t.Fatal("nested snapshot differs from source")
	}
}

func TestSnapshotCachedWhileUnchanged(t *testing.T) {
	g := seededGraph(10)
	s1 := g.Snapshot()
	if s2 := g.Snapshot(); s2 != s1 {
		t.Fatal("snapshot of an unchanged graph should be cached")
	}
	g.Add(tripleN(99, 0, 99))
	if s3 := g.Snapshot(); s3 == s1 {
		t.Fatal("snapshot after mutation must be fresh")
	}
}

func TestSnapshotMutationPanics(t *testing.T) {
	snap := seededGraph(5).Snapshot()
	for name, fn := range map[string]func(){
		"Add":    func() { snap.Add(tripleN(50, 0, 50)) },
		"Remove": func() { snap.Remove(tripleN(0, 0, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a snapshot did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshotChain(t *testing.T) {
	// A chain of snapshots at different versions must each stay frozen at
	// their own version while the live graph keeps moving.
	g := NewGraph()
	var snaps []*Graph
	var wants [][]Triple
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 8; round++ {
		for i := 0; i < 15; i++ {
			g.Add(tripleN(rng.Intn(10), rng.Intn(4), rng.Intn(200)))
		}
		for _, tr := range g.Triples() {
			if rng.Intn(4) == 0 {
				g.Remove(tr)
			}
		}
		snaps = append(snaps, g.Snapshot())
		wants = append(wants, g.Triples())
	}
	for i, s := range snaps {
		if got := s.Triples(); !reflect.DeepEqual(got, wants[i]) {
			t.Fatalf("snapshot %d drifted", i)
		}
	}
}

// TestSnapshotPropertyImmutable is the satellite's property test: for
// random graphs and random mutation scripts, a snapshot's Triples() and
// Match output is byte-identical before and after arbitrary live-graph
// mutation.
func TestSnapshotPropertyImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		g := NewGraph()
		for i, n := 0, rng.Intn(80); i < n; i++ {
			g.Add(tripleN(rng.Intn(12), rng.Intn(5), rng.Intn(40)))
		}
		snap := g.Snapshot()

		// Record every observation mode before mutating.
		s := NewIRI(fmt.Sprintf("http://ex.org/s%d", rng.Intn(12)))
		p := NewIRI(fmt.Sprintf("http://ex.org/p%d", rng.Intn(5)))
		before := struct {
			triples  []Triple
			bySubj   []Triple
			byPred   []Triple
			objects  []Term
			subjects []Term
		}{
			snap.Triples(),
			snap.Find(s, Term{}, Term{}),
			snap.Find(Term{}, p, Term{}),
			snap.Objects(s, p),
			snap.AllSubjects(),
		}

		// Arbitrary mutation script: interleaved adds and removes,
		// including full clears of some subjects.
		for op, nOps := 0, 30+rng.Intn(120); op < nOps; op++ {
			if rng.Intn(2) == 0 {
				g.Add(tripleN(rng.Intn(12), rng.Intn(5), rng.Intn(40)))
			} else {
				trs := g.Triples()
				if len(trs) > 0 {
					g.Remove(trs[rng.Intn(len(trs))])
				}
			}
		}

		if got := snap.Triples(); !reflect.DeepEqual(got, before.triples) {
			t.Fatalf("trial %d: Triples() drifted", trial)
		}
		if got := snap.Find(s, Term{}, Term{}); !reflect.DeepEqual(got, before.bySubj) {
			t.Fatalf("trial %d: Find(s,*,*) drifted", trial)
		}
		if got := snap.Find(Term{}, p, Term{}); !reflect.DeepEqual(got, before.byPred) {
			t.Fatalf("trial %d: Find(*,p,*) drifted", trial)
		}
		if got := snap.Objects(s, p); !reflect.DeepEqual(got, before.objects) {
			t.Fatalf("trial %d: Objects drifted", trial)
		}
		if got := snap.AllSubjects(); !reflect.DeepEqual(got, before.subjects) {
			t.Fatalf("trial %d: AllSubjects drifted", trial)
		}
	}
}

// TestSnapshotConcurrentReaders drives snapshot readers concurrently
// with live-graph mutations; under -race this proves mutations never
// write memory a snapshot can read.
func TestSnapshotConcurrentReaders(t *testing.T) {
	g := seededGraph(100)
	snap := g.Snapshot()
	want := snap.Triples()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := snap.Triples(); len(got) != len(want) {
					t.Errorf("snapshot read tore: %d triples, want %d", len(got), len(want))
					return
				}
				snap.Match(Term{}, Term{}, Term{}, func(Triple) bool { return true })
			}
		}()
	}
	for i := 0; i < 3000; i++ {
		g.Add(tripleN(i%20, i%5, 500+i))
		if i%3 == 0 {
			trs := g.Find(NewIRI(fmt.Sprintf("http://ex.org/s%d", i%7)), Term{}, Term{})
			if len(trs) > 0 {
				g.Remove(trs[0])
			}
		}
	}
	close(stop)
	wg.Wait()
	if got := snap.Triples(); !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot drifted during concurrent mutation")
	}
}
