package rdf

import (
	"fmt"
	"testing"
)

// queryGraph builds a toy product graph:
//
//	p1 type Resistor,  p1 pn "R-100", p1 madeBy acme
//	p2 type Resistor,  p2 pn "R-200", p2 madeBy bolt
//	p3 type Capacitor, p3 pn "C-300", p3 madeBy acme
func queryGraph(t testing.TB) *Graph {
	t.Helper()
	g := NewGraph()
	pn := ex("pn")
	madeBy := ex("madeBy")
	add := func(id, class, pnv, mf string) {
		g.Add(T(ex(id), TypeTerm, ex(class)))
		g.Add(T(ex(id), pn, NewLiteral(pnv)))
		g.Add(T(ex(id), madeBy, ex(mf)))
	}
	add("p1", "Resistor", "R-100", "acme")
	add("p2", "Resistor", "R-200", "bolt")
	add("p3", "Capacitor", "C-300", "acme")
	return g
}

func TestSolveSinglePattern(t *testing.T) {
	g := queryGraph(t)
	q := Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: TypeTerm, O: ex("Resistor")},
	}}
	sols, err := g.Solve(q)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sols) != 2 {
		t.Fatalf("solutions = %v", sols)
	}
	if sols[0]["x"] != ex("p1") || sols[1]["x"] != ex("p2") {
		t.Errorf("solutions = %v, want p1 then p2", sols)
	}
}

func TestSolveJoin(t *testing.T) {
	g := queryGraph(t)
	// Resistors made by acme: only p1.
	q := Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: TypeTerm, O: ex("Resistor")},
		{S: VarTerm("x"), P: ex("madeBy"), O: ex("acme")},
	}}
	sols, err := g.Solve(q)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sols) != 1 || sols[0]["x"] != ex("p1") {
		t.Errorf("solutions = %v, want [p1]", sols)
	}
}

func TestSolveMultiVariable(t *testing.T) {
	g := queryGraph(t)
	// Pairs (product, manufacturer) of the same class as p3.
	q := Query{Patterns: []Pattern{
		{S: ex("p3"), P: TypeTerm, O: VarTerm("c")},
		{S: VarTerm("y"), P: TypeTerm, O: VarTerm("c")},
		{S: VarTerm("y"), P: ex("madeBy"), O: VarTerm("m")},
	}}
	sols, err := g.Solve(q)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %v", sols)
	}
	if sols[0]["y"] != ex("p3") || sols[0]["m"] != ex("acme") || sols[0]["c"] != ex("Capacitor") {
		t.Errorf("solution = %v", sols[0])
	}
}

func TestSolveSharedVariableAcrossPositions(t *testing.T) {
	g := NewGraph()
	g.Add(T(ex("a"), ex("knows"), ex("a"))) // self loop
	g.Add(T(ex("a"), ex("knows"), ex("b")))
	q := Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: ex("knows"), O: VarTerm("x")},
	}}
	sols, err := g.Solve(q)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sols) != 1 || sols[0]["x"] != ex("a") {
		t.Errorf("self-loop solutions = %v", sols)
	}
}

func TestSolveNoSolutions(t *testing.T) {
	g := queryGraph(t)
	q := Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: TypeTerm, O: ex("Transistor")},
	}}
	sols, err := g.Solve(q)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sols) != 0 {
		t.Errorf("solutions = %v, want none", sols)
	}
}

func TestSolveLimit(t *testing.T) {
	g := queryGraph(t)
	q := Query{
		Patterns: []Pattern{{S: VarTerm("x"), P: VarTerm("p"), O: VarTerm("o")}},
		Limit:    4,
	}
	sols, err := g.Solve(q)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sols) != 4 {
		t.Errorf("solutions = %d, want limit 4", len(sols))
	}
}

func TestSolveValidation(t *testing.T) {
	g := queryGraph(t)
	if _, err := g.Solve(Query{}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := g.Solve(Query{Patterns: []Pattern{{S: VarTerm("x"), P: TypeTerm}}}); err == nil {
		t.Error("zero-term pattern accepted")
	}
	if _, err := g.Solve(Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: NewLiteral("p"), O: VarTerm("o")},
	}}); err == nil {
		t.Error("literal predicate accepted")
	}
}

func TestSolvePaperRuleShape(t *testing.T) {
	// The paper's conjunction premise ∧ conclusion as a query:
	// ?x pn ?y ∧ ?x type FixedFilm — counting its solutions is the
	// rule's joint count (modulo subsegment, which is not a graph atom).
	g := NewGraph()
	pn := ex("pn")
	for i := 0; i < 5; i++ {
		item := ex(fmt.Sprintf("i%d", i))
		g.Add(T(item, pn, NewLiteral(fmt.Sprintf("ohm-%d", i))))
		class := "FixedFilm"
		if i >= 3 {
			class = "Tantalum"
		}
		g.Add(T(item, TypeTerm, ex(class)))
	}
	n, err := g.Count(Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: pn, O: VarTerm("y")},
		{S: VarTerm("x"), P: TypeTerm, O: ex("FixedFilm")},
	}})
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if n != 3 {
		t.Errorf("Count = %d, want 3", n)
	}
}

func TestSolveDeterministicOrder(t *testing.T) {
	g := queryGraph(t)
	q := Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: ex("madeBy"), O: VarTerm("m")},
	}}
	a, err := g.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := g.Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatal("varying solution counts")
		}
		for j := range a {
			if a[j]["x"] != b[j]["x"] || a[j]["m"] != b[j]["m"] {
				t.Fatalf("non-deterministic order at %d", j)
			}
		}
	}
}

func TestSolveCartesianProductOfDisjointPatterns(t *testing.T) {
	g := queryGraph(t)
	// Two unconnected variables: 3 products x 2 manufacturers = 6 rows
	// for (x type ?, m used as manufacturer of anything).
	q := Query{Patterns: []Pattern{
		{S: VarTerm("x"), P: TypeTerm, O: VarTerm("c")},
		{S: VarTerm("y"), P: ex("madeBy"), O: ex("acme")},
	}}
	sols, err := g.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	// 3 typed products × 2 acme-made products = 6 combinations.
	if len(sols) != 6 {
		t.Errorf("solutions = %d, want 6", len(sols))
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{S: VarTerm("x"), P: TypeTerm, O: ex("C")}
	want := "?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/C> ."
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestVarTermRoundTrip(t *testing.T) {
	v, ok := IsVar(VarTerm("abc"))
	if !ok || v != "abc" {
		t.Errorf("IsVar(VarTerm) = %v,%v", v, ok)
	}
	if _, ok := IsVar(NewIRI("http://x")); ok {
		t.Error("IRI recognized as variable")
	}
}
