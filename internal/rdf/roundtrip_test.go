package rdf

import (
	"bytes"
	"math/rand"
	"testing"
)

// Property tests for the text codecs: random graphs whose terms exercise
// lang tags, datatypes, multi-byte runes, string escapes and blank nodes
// must survive WriteNTriples→ReadNTriples and WriteTurtle→ReadTurtle
// unchanged. The binary codec's equivalence test builds on the same
// generators, so these ground both serialization paths.

func TestNTriplesRoundTripRichTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for round := 0; round < 50; round++ {
		g := genGraph(rng, 1+rng.Intn(80))
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("round %d: write: %v", round, err)
		}
		text := buf.String()
		got, err := ReadNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round %d: read: %v\n%s", round, err, text)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("round %d: round trip changed the graph\nwrote:\n%s\nwant %v\ngot  %v",
				round, text, g.Triples(), got.Triples())
		}
	}
}

func TestTurtleRoundTripRichTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for round := 0; round < 50; round++ {
		g := genGraph(rng, 1+rng.Intn(80))
		var buf bytes.Buffer
		if err := WriteTurtle(&buf, g, TurtleWriterOptions{}); err != nil {
			t.Fatalf("round %d: write: %v", round, err)
		}
		text := buf.String()
		got, err := ReadTurtle(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round %d: parse: %v\n%s", round, err, text)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("round %d: round trip changed the graph\nwrote:\n%s\nwant %v\ngot  %v",
				round, text, g.Triples(), got.Triples())
		}
	}
}

// TestTextCodecsEdgeTerms pins the specific term shapes the fuzzier
// property tests sample from, so a regression names the failing shape.
func TestTextCodecsEdgeTerms(t *testing.T) {
	p := NewIRI("http://ex.org/p")
	cases := []struct {
		name string
		o    Term
	}{
		{"plain", NewLiteral("simple")},
		{"quotes", NewLiteral(`she said "hi" \ done`)},
		{"newlines", NewLiteral("a\nb\rc\td")},
		{"multibyte", NewLiteral("héllo 日本語 🙂")},
		{"lang", NewLangLiteral("bonjour", "fr")},
		{"lang subtag", NewLangLiteral("servus", "de-AT")},
		{"typed", NewTypedLiteral("2024-01-01", "http://www.w3.org/2001/XMLSchema#date")},
		{"xsd string folds", NewTypedLiteral("x", XSDString)},
		{"blank object", NewBlank("b0")},
		{"empty literal", NewLiteral("")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGraph()
			g.Add(T(NewIRI("http://ex.org/s"), p, tc.o))
			g.Add(T(NewBlank("subj"), p, NewLiteral("blank subject")))

			var nt bytes.Buffer
			if err := WriteNTriples(&nt, g); err != nil {
				t.Fatalf("nt write: %v", err)
			}
			fromNT, err := ReadNTriples(bytes.NewReader(nt.Bytes()))
			if err != nil {
				t.Fatalf("nt read: %v\n%s", err, nt.String())
			}
			if !graphsEqual(g, fromNT) {
				t.Errorf("n-triples round trip changed the graph:\n%s", nt.String())
			}

			var ttl bytes.Buffer
			if err := WriteTurtle(&ttl, g, TurtleWriterOptions{}); err != nil {
				t.Fatalf("turtle write: %v", err)
			}
			fromTTL, err := ReadTurtle(bytes.NewReader(ttl.Bytes()))
			if err != nil {
				t.Fatalf("turtle parse: %v\n%s", err, ttl.String())
			}
			if !graphsEqual(g, fromTTL) {
				t.Errorf("turtle round trip changed the graph:\n%s", ttl.String())
			}
		})
	}
}
