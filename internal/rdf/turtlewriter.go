package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TurtleWriterOptions configures WriteTurtle.
type TurtleWriterOptions struct {
	// Prefixes maps prefix names to namespace IRIs; matching IRIs are
	// compacted to prefixed names. Nil uses DefaultPrefixes.
	Prefixes map[string]string
}

// DefaultPrefixes returns the common namespaces used by this repository.
func DefaultPrefixes() map[string]string {
	return map[string]string{
		"rdf":  "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
		"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
		"owl":  "http://www.w3.org/2002/07/owl#",
		"xsd":  "http://www.w3.org/2001/XMLSchema#",
	}
}

// WriteTurtle serializes the graph as Turtle: prefix directives, one
// block per subject with ';'-separated predicates and ','-separated
// objects, in deterministic order. The output parses back with
// ReadTurtle.
func WriteTurtle(w io.Writer, g *Graph, opts TurtleWriterOptions) error {
	prefixes := opts.Prefixes
	if prefixes == nil {
		prefixes = DefaultPrefixes()
	}
	// Longest-namespace-first matching so nested namespaces compact to
	// the most specific prefix.
	type ns struct{ name, iri string }
	nss := make([]ns, 0, len(prefixes))
	for name, iri := range prefixes {
		nss = append(nss, ns{name, iri})
	}
	sort.Slice(nss, func(i, j int) bool {
		if len(nss[i].iri) != len(nss[j].iri) {
			return len(nss[i].iri) > len(nss[j].iri)
		}
		return nss[i].name < nss[j].name
	})

	compact := func(t Term) string {
		switch t.Kind {
		case IRIKind:
			for _, n := range nss {
				if local, ok := strings.CutPrefix(t.Value, n.iri); ok && isTurtleLocalName(local) {
					return n.name + ":" + local
				}
			}
			return t.String()
		case LiteralKind:
			if t.Datatype != "" {
				for _, n := range nss {
					if local, ok := strings.CutPrefix(t.Datatype, n.iri); ok && isTurtleLocalName(local) {
						var b strings.Builder
						b.WriteByte('"')
						escapeLiteral(&b, t.Value)
						b.WriteString(`"^^`)
						b.WriteString(n.name + ":" + local)
						return b.String()
					}
				}
			}
			return t.String()
		default:
			return t.String()
		}
	}

	// "a" is only legal in predicate position.
	compactPred := func(t Term) string {
		if t.Value == RDFType {
			return "a"
		}
		return compact(t)
	}

	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(prefixes))
	for name := range prefixes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(bw, "@prefix %s: <%s> .\n", name, prefixes[name]); err != nil {
			return fmt.Errorf("rdf: writing turtle: %w", err)
		}
	}

	subjects := g.AllSubjects()
	for _, s := range subjects {
		if _, err := fmt.Fprintf(bw, "\n%s", compact(s)); err != nil {
			return fmt.Errorf("rdf: writing turtle: %w", err)
		}
		preds := make([]Term, 0, 4)
		seen := map[Term]struct{}{}
		g.Match(s, Term{}, Term{}, func(t Triple) bool {
			if _, dup := seen[t.P]; !dup {
				seen[t.P] = struct{}{}
				preds = append(preds, t.P)
			}
			return true
		})
		sortTerms(preds)
		// rdf:type first, by Turtle convention.
		for i, p := range preds {
			if p == TypeTerm && i != 0 {
				copy(preds[1:i+1], preds[:i])
				preds[0] = TypeTerm
				break
			}
		}
		for pi, p := range preds {
			sep := " ;"
			if pi == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(bw, "%s\n    %s ", sep, compactPred(p)); err != nil {
				return fmt.Errorf("rdf: writing turtle: %w", err)
			}
			objs := g.Objects(s, p)
			for oi, o := range objs {
				if oi > 0 {
					if _, err := bw.WriteString(", "); err != nil {
						return fmt.Errorf("rdf: writing turtle: %w", err)
					}
				}
				if _, err := bw.WriteString(compact(o)); err != nil {
					return fmt.Errorf("rdf: writing turtle: %w", err)
				}
			}
		}
		if _, err := bw.WriteString(" .\n"); err != nil {
			return fmt.Errorf("rdf: writing turtle: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("rdf: writing turtle: %w", err)
	}
	return nil
}

// isTurtleLocalName reports whether local can follow a prefix without
// escaping under this package's reader (conservative PN_LOCAL subset).
func isTurtleLocalName(local string) bool {
	if local == "" {
		return false
	}
	for i := 0; i < len(local); i++ {
		if !isPNChar(local[i]) {
			return false
		}
	}
	// The reader treats '.' as a statement terminator risk at the end.
	return local[len(local)-1] != '.'
}
