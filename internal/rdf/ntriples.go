package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError reports a syntax error with its source position.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// NTriplesReader is a streaming N-Triples parser: it reads one
// statement at a time from an io.Reader in bounded memory (one line
// buffered at most), so arbitrarily large files never materialize as a
// graph. Comment lines (starting with '#') and blank lines are skipped.
type NTriplesReader struct {
	sc     *bufio.Scanner
	lineNo int
	err    error
}

// NewNTriplesReader returns a streaming reader over r. Lines up to 16MB
// are accepted (matching ReadNTriples).
func NewNTriplesReader(r io.Reader) *NTriplesReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &NTriplesReader{sc: sc}
}

// Line returns the 1-based line number of the statement (or error) the
// last Next call produced.
func (nr *NTriplesReader) Line() int { return nr.lineNo }

// Next returns the next statement. At the end of the input it returns
// io.EOF; a malformed line returns a *ParseError carrying the line and
// column, with the line consumed — the caller may keep calling Next to
// skip past bad lines, which is exactly what the bulk-ingest per-line
// error report does. I/O errors from the underlying reader are
// terminal.
func (nr *NTriplesReader) Next() (Triple, error) {
	if nr.err != nil {
		return Triple{}, nr.err
	}
	for nr.sc.Scan() {
		nr.lineNo++
		line := strings.TrimSpace(nr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return parseNTriplesLine(line, nr.lineNo)
	}
	if err := nr.sc.Err(); err != nil {
		nr.err = fmt.Errorf("rdf: reading n-triples: %w", err)
	} else {
		nr.err = io.EOF
	}
	return Triple{}, nr.err
}

// ReadNTriples parses N-Triples from r into a new graph. Comment lines
// (starting with '#') and blank lines are skipped. Parsing stops at the
// first syntax error. It is the strict, materializing wrapper over
// NTriplesReader.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	nr := NewNTriplesReader(r)
	for {
		t, err := nr.Next()
		if err == io.EOF {
			return g, nil
		}
		if err != nil {
			return nil, err
		}
		g.Add(t)
	}
}

// parseNTriplesLine parses a single "<s> <p> <o> ." statement.
func parseNTriplesLine(line string, lineNo int) (Triple, error) {
	p := &ntParser{input: line, line: lineNo}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipSpace()
	if !p.consume('.') {
		return Triple{}, p.errf("expected '.' terminator")
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return Triple{}, p.errf("trailing content after '.'")
	}
	t := Triple{S: s, P: pr, O: o}
	if err := t.Validate(); err != nil {
		return Triple{}, &ParseError{Line: lineNo, Col: 1, Msg: err.Error()}
	}
	return t, nil
}

// ntParser is a cursor over one N-Triples line.
type ntParser struct {
	input string
	pos   int
	line  int
}

func (p *ntParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *ntParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) peek() byte {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *ntParser) consume(c byte) bool {
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

// term parses one IRI, blank node or literal.
func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	case 0:
		return Term{}, p.errf("unexpected end of line, expected term")
	default:
		return Term{}, p.errf("unexpected character %q, expected term", p.peek())
	}
}

func (p *ntParser) iri() (Term, error) {
	p.pos++ // consume '<'
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != '>' {
		p.pos++
	}
	if p.pos >= len(p.input) {
		return Term{}, p.errf("unterminated IRI")
	}
	raw := p.input[start:p.pos]
	p.pos++ // consume '>'
	iri, err := unescapeUCHAR(raw)
	if err != nil {
		return Term{}, p.errf("bad IRI escape: %v", err)
	}
	if iri == "" {
		return Term{}, p.errf("empty IRI")
	}
	return NewIRI(iri), nil
}

func (p *ntParser) blank() (Term, error) {
	if !strings.HasPrefix(p.input[p.pos:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.input) && isBlankLabelChar(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.input[start:p.pos]), nil
}

func isBlankLabelChar(c byte) bool {
	return c == '-' || c == '_' || c == '.' ||
		(c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}

func (p *ntParser) literal() (Term, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	for {
		if p.pos >= len(p.input) {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.input[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			r, n, err := decodeEscape(p.input[p.pos:])
			if err != nil {
				return Term{}, p.errf("bad escape: %v", err)
			}
			b.WriteRune(r)
			p.pos += n
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lexical := b.String()
	switch {
	case p.consume('@'):
		start := p.pos
		for p.pos < len(p.input) && isLangTagChar(p.input[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lexical, p.input[start:p.pos]), nil
	case strings.HasPrefix(p.input[p.pos:], "^^"):
		p.pos += 2
		if p.peek() != '<' {
			return Term{}, p.errf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lexical, dt.Value), nil
	default:
		return NewLiteral(lexical), nil
	}
}

func isLangTagChar(c byte) bool {
	return c == '-' || (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}

// decodeEscape decodes a backslash escape at the start of s, returning the
// rune and the number of input bytes consumed.
func decodeEscape(s string) (rune, int, error) {
	if len(s) < 2 {
		return 0, 0, fmt.Errorf("dangling backslash")
	}
	switch s[1] {
	case 't':
		return '\t', 2, nil
	case 'b':
		return '\b', 2, nil
	case 'n':
		return '\n', 2, nil
	case 'r':
		return '\r', 2, nil
	case 'f':
		return '\f', 2, nil
	case '"':
		return '"', 2, nil
	case '\'':
		return '\'', 2, nil
	case '\\':
		return '\\', 2, nil
	case 'u':
		if len(s) < 6 {
			return 0, 0, fmt.Errorf("truncated \\u escape")
		}
		v, err := strconv.ParseUint(s[2:6], 16, 32)
		if err != nil {
			return 0, 0, fmt.Errorf("bad \\u escape %q", s[:6])
		}
		return rune(v), 6, nil
	case 'U':
		if len(s) < 10 {
			return 0, 0, fmt.Errorf("truncated \\U escape")
		}
		v, err := strconv.ParseUint(s[2:10], 16, 32)
		if err != nil || v > utf8.MaxRune {
			return 0, 0, fmt.Errorf("bad \\U escape %q", s[:10])
		}
		return rune(v), 10, nil
	default:
		return 0, 0, fmt.Errorf("unknown escape \\%c", s[1])
	}
}

// unescapeUCHAR resolves \uXXXX and \UXXXXXXXX escapes inside IRIs.
func unescapeUCHAR(s string) (string, error) {
	if !strings.Contains(s, "\\") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' {
			r, n, err := decodeEscape(s[i:])
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			i += n
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String(), nil
}

// WriteNTriples serializes the graph to w in deterministic (sorted) order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	ts := g.Triples()
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	for _, t := range ts {
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("rdf: writing n-triples: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("rdf: writing n-triples: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("rdf: writing n-triples: %w", err)
	}
	return nil
}
