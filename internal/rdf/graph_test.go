package rdf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func ex(local string) Term { return NewIRI("http://example.org/" + local) }

func sampleGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	triples := []Triple{
		T(ex("alice"), ex("knows"), ex("bob")),
		T(ex("alice"), ex("knows"), ex("carol")),
		T(ex("alice"), ex("name"), NewLiteral("Alice")),
		T(ex("bob"), ex("name"), NewLiteral("Bob")),
		T(ex("bob"), TypeTerm, ex("Person")),
		T(ex("alice"), TypeTerm, ex("Person")),
		T(ex("carol"), TypeTerm, ex("Robot")),
	}
	for _, tr := range triples {
		if !g.Add(tr) {
			t.Fatalf("Add(%v) returned false for fresh triple", tr)
		}
	}
	return g
}

func TestGraphAddDuplicate(t *testing.T) {
	g := NewGraph()
	tr := T(ex("s"), ex("p"), NewLiteral("o"))
	if !g.Add(tr) {
		t.Fatal("first Add returned false")
	}
	if g.Add(tr) {
		t.Fatal("duplicate Add returned true")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestGraphAddRejectsInvalid(t *testing.T) {
	g := NewGraph()
	if g.Add(T(NewLiteral("bad"), ex("p"), ex("o"))) {
		t.Error("Add accepted literal subject")
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d after rejected Add, want 0", g.Len())
	}
}

func TestGraphRemove(t *testing.T) {
	g := sampleGraph(t)
	tr := T(ex("alice"), ex("knows"), ex("bob"))
	n := g.Len()
	if !g.Remove(tr) {
		t.Fatal("Remove returned false for present triple")
	}
	if g.Has(tr) {
		t.Error("triple still present after Remove")
	}
	if g.Len() != n-1 {
		t.Errorf("Len = %d, want %d", g.Len(), n-1)
	}
	if g.Remove(tr) {
		t.Error("second Remove returned true")
	}
	// Index consistency: bob must still be reachable via other triples.
	if got := len(g.Find(ex("bob"), Term{}, Term{})); got != 2 {
		t.Errorf("bob triple count = %d, want 2", got)
	}
}

func TestGraphMatchPatterns(t *testing.T) {
	g := sampleGraph(t)
	tests := []struct {
		name    string
		s, p, o Term
		want    int
	}{
		{"fully bound hit", ex("alice"), ex("knows"), ex("bob"), 1},
		{"fully bound miss", ex("alice"), ex("knows"), ex("dave"), 0},
		{"s+p", ex("alice"), ex("knows"), Term{}, 2},
		{"s+o", ex("alice"), Term{}, ex("bob"), 1},
		{"p+o", Term{}, TypeTerm, ex("Person"), 2},
		{"p bound", Term{}, TypeTerm, Term{}, 3},
		{"o bound", Term{}, Term{}, ex("Person"), 2},
		{"s bound", ex("alice"), Term{}, Term{}, 4},
		{"all wildcards", Term{}, Term{}, Term{}, 7},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(g.Find(tc.s, tc.p, tc.o)); got != tc.want {
				t.Errorf("Find(%v,%v,%v) = %d results, want %d", tc.s, tc.p, tc.o, got, tc.want)
			}
		})
	}
}

func TestGraphMatchEarlyStop(t *testing.T) {
	g := sampleGraph(t)
	calls := 0
	g.Match(Term{}, Term{}, Term{}, func(Triple) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("fn called %d times, want 3 (early stop)", calls)
	}
}

func TestGraphObjectsSubjects(t *testing.T) {
	g := sampleGraph(t)
	objs := g.Objects(ex("alice"), ex("knows"))
	if len(objs) != 2 || objs[0] != ex("bob") || objs[1] != ex("carol") {
		t.Errorf("Objects = %v, want [bob carol]", objs)
	}
	subjs := g.Subjects(TypeTerm, ex("Person"))
	if len(subjs) != 2 || subjs[0] != ex("alice") || subjs[1] != ex("bob") {
		t.Errorf("Subjects = %v, want [alice bob]", subjs)
	}
	if got := g.SubjectCount(TypeTerm, ex("Person")); got != 2 {
		t.Errorf("SubjectCount = %d, want 2", got)
	}
}

func TestGraphFirstObjectDeterministic(t *testing.T) {
	g := sampleGraph(t)
	for i := 0; i < 10; i++ {
		o, ok := g.FirstObject(ex("alice"), ex("knows"))
		if !ok || o != ex("bob") {
			t.Fatalf("FirstObject = %v,%v want bob,true", o, ok)
		}
	}
	if _, ok := g.FirstObject(ex("alice"), ex("none")); ok {
		t.Error("FirstObject reported ok for absent property")
	}
}

func TestGraphPredicatesAllSubjects(t *testing.T) {
	g := sampleGraph(t)
	if got := len(g.Predicates()); got != 3 {
		t.Errorf("Predicates count = %d, want 3", got)
	}
	if got := len(g.AllSubjects()); got != 3 {
		t.Errorf("AllSubjects count = %d, want 3", got)
	}
}

func TestGraphMergeClone(t *testing.T) {
	g := sampleGraph(t)
	h := NewGraph()
	h.Add(T(ex("dave"), TypeTerm, ex("Person")))
	h.Add(T(ex("alice"), TypeTerm, ex("Person"))) // duplicate with g
	added := g.Merge(h)
	if added != 1 {
		t.Errorf("Merge added = %d, want 1", added)
	}
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}
	c.Add(T(ex("eve"), TypeTerm, ex("Person")))
	if g.Has(T(ex("eve"), TypeTerm, ex("Person"))) {
		t.Error("mutation of clone leaked into original")
	}
}

func TestGraphTypesInstances(t *testing.T) {
	g := sampleGraph(t)
	if types := g.TypesOf(ex("alice")); len(types) != 1 || types[0] != ex("Person") {
		t.Errorf("TypesOf(alice) = %v", types)
	}
	if insts := g.InstancesOf(ex("Robot")); len(insts) != 1 || insts[0] != ex("carol") {
		t.Errorf("InstancesOf(Robot) = %v", insts)
	}
}

// Property: for any sequence of adds, Len equals the number of distinct
// valid triples, and every added triple is found by Has and full Match.
func TestGraphAddInvariants(t *testing.T) {
	f := func(ids []uint8) bool {
		g := NewGraph()
		seen := map[Triple]struct{}{}
		for _, id := range ids {
			tr := T(
				ex(fmt.Sprintf("s%d", id%7)),
				ex(fmt.Sprintf("p%d", (id/7)%5)),
				NewLiteral(fmt.Sprintf("o%d", id%11)),
			)
			g.Add(tr)
			seen[tr] = struct{}{}
		}
		if g.Len() != len(seen) {
			return false
		}
		for tr := range seen {
			if !g.Has(tr) {
				return false
			}
		}
		return len(g.Triples()) == len(seen)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: removing everything that was added leaves an empty graph with
// empty indexes (no dangling index entries observable through queries).
func TestGraphRemoveInvariants(t *testing.T) {
	f := func(ids []uint8) bool {
		g := NewGraph()
		var triples []Triple
		for _, id := range ids {
			tr := T(
				ex(fmt.Sprintf("s%d", id%5)),
				ex(fmt.Sprintf("p%d", id%3)),
				NewLiteral(fmt.Sprintf("o%d", id%4)),
			)
			g.Add(tr)
			triples = append(triples, tr)
		}
		for _, tr := range triples {
			g.Remove(tr)
		}
		if g.Len() != 0 {
			return false
		}
		count := 0
		g.Match(Term{}, Term{}, Term{}, func(Triple) bool { count++; return true })
		return count == 0 && len(g.Predicates()) == 0 && len(g.AllSubjects()) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestGraphVersion(t *testing.T) {
	g := NewGraph()
	if g.Version() != 0 {
		t.Fatalf("fresh graph version = %d", g.Version())
	}
	tr := T(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral("v"))
	g.Add(tr)
	v1 := g.Version()
	if v1 == 0 {
		t.Error("Add did not bump version")
	}
	if g.Add(tr); g.Version() != v1 {
		t.Error("duplicate Add bumped version")
	}
	if g.Remove(T(NewIRI("http://ex.org/x"), NewIRI("http://ex.org/p"), NewLiteral("v"))); g.Version() != v1 {
		t.Error("no-op Remove bumped version")
	}
	if g.Remove(tr); g.Version() == v1 {
		t.Error("Remove did not bump version")
	}
}
