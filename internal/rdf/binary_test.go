package rdf

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// graphsEqual reports whether two graphs hold the same triple set.
func graphsEqual(a, b *Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	eq := true
	a.Match(Term{}, Term{}, Term{}, func(t Triple) bool {
		if !b.Has(t) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

func TestBinarySnapshotRoundTrip(t *testing.T) {
	g := NewGraph()
	s := NewIRI("http://ex.org/s")
	g.Add(T(s, NewIRI("http://ex.org/p"), NewLiteral("plain")))
	g.Add(T(s, NewIRI("http://ex.org/p"), NewLangLiteral("bonjour", "fr")))
	g.Add(T(s, NewIRI("http://ex.org/q"), NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")))
	g.Add(T(NewBlank("b1"), NewIRI("http://ex.org/p"), NewLiteral("from a blank node")))
	g.Add(T(s, NewIRI("http://ex.org/r"), NewLiteral("esc \"quotes\"\n\ttabs \\ and 日本語")))
	g.Add(T(s, NewIRI("http://ex.org/r"), NewBlank("b2")))

	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !graphsEqual(g, got) {
		t.Fatalf("round trip changed the graph:\nwant %v\ngot  %v", g.Triples(), got.Triples())
	}
}

func TestBinarySnapshotEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, NewGraph()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded %d triples from an empty graph", got.Len())
	}
}

func TestBinarySnapshotDeterministic(t *testing.T) {
	// Insert the same triples in two different orders; the encodings must
	// be byte-identical (graphs are sets, the codec sorts).
	mk := func(perm []int) *Graph {
		ts := []Triple{
			T(NewIRI("http://ex.org/a"), NewIRI("http://ex.org/p"), NewLiteral("1")),
			T(NewIRI("http://ex.org/b"), NewIRI("http://ex.org/p"), NewLiteral("2")),
			T(NewIRI("http://ex.org/c"), NewIRI("http://ex.org/q"), NewLangLiteral("x", "en")),
		}
		g := NewGraph()
		for _, i := range perm {
			g.Add(ts[i])
		}
		return g
	}
	var a, b bytes.Buffer
	if err := EncodeSnapshot(&a, mk([]int{0, 1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSnapshot(&b, mk([]int{2, 0, 1})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding depends on insertion order")
	}
}

// TestBinarySnapshotMatchesNTriples grounds the binary codec against the
// text path: decoding the binary form and parsing the N-Triples form of
// the same random graph must agree triple for triple.
func TestBinarySnapshotMatchesNTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		g := genGraph(rng, 1+rng.Intn(60))

		var bin bytes.Buffer
		if err := EncodeSnapshot(&bin, g); err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		fromBin, err := DecodeSnapshot(&bin)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}

		var nt bytes.Buffer
		if err := WriteNTriples(&nt, g); err != nil {
			t.Fatalf("round %d: write nt: %v", round, err)
		}
		fromNT, err := ReadNTriples(&nt)
		if err != nil {
			t.Fatalf("round %d: read nt: %v", round, err)
		}

		if !graphsEqual(fromBin, fromNT) {
			t.Fatalf("round %d: binary and text round trips disagree", round)
		}
		if !graphsEqual(fromBin, g) {
			t.Fatalf("round %d: binary round trip changed the graph", round)
		}
	}
}

func TestDecodeSnapshotRejectsCorruptInput(t *testing.T) {
	g := NewGraph()
	s := NewIRI("http://ex.org/s")
	for i := 0; i < 10; i++ {
		g.Add(T(s, NewIRI("http://ex.org/p"), NewLiteral(strings.Repeat("v", i+1))))
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), enc...)
		b[0] ^= 0xff
		if _, err := DecodeSnapshot(bytes.NewReader(b)); err == nil {
			t.Fatal("decoded despite corrupt magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(enc); cut += 7 {
			if _, err := DecodeSnapshot(bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("decoded a %d/%d-byte prefix", cut, len(enc))
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		// Any single-bit corruption must either fail or still yield a
		// graph of valid triples — never panic or hang.
		for i := len(binaryMagic); i < len(enc); i++ {
			b := append([]byte(nil), enc...)
			b[i] ^= 0x40
			g, err := DecodeSnapshot(bytes.NewReader(b))
			if err == nil && g.Len() > 1000 {
				t.Fatalf("flip at %d produced an implausible graph", i)
			}
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := DecodeSnapshot(bytes.NewReader(nil)); err == nil {
			t.Fatal("decoded empty input")
		}
	})
}

// randomTerm builds a random term exercising every kind and the escaping
// edge cases (quotes, control characters, multi-byte runes, lang tags,
// datatypes).
func genTerm(rng *rand.Rand, allowLiteral bool) Term {
	alphabets := []string{
		"abcdefXYZ0189",
		"\"\\\n\r\t ._-",
		"héllo日本語🙂",
	}
	randString := func(maxLen int) string {
		n := 1 + rng.Intn(maxLen)
		var b strings.Builder
		for i := 0; i < n; i++ {
			al := alphabets[rng.Intn(len(alphabets))]
			rs := []rune(al)
			b.WriteRune(rs[rng.Intn(len(rs))])
		}
		return b.String()
	}
	kinds := 2
	if allowLiteral {
		kinds = 3
	}
	switch rng.Intn(kinds) {
	case 0:
		return NewIRI("http://ex.org/" + randIdent(rng))
	case 1:
		return NewBlank(randIdent(rng))
	default:
		switch rng.Intn(3) {
		case 0:
			return NewLiteral(randString(12))
		case 1:
			lang := []string{"en", "fr", "de-AT", "zh-Hans"}[rng.Intn(4)]
			return NewLangLiteral(randString(12), lang)
		default:
			dt := []string{
				"http://www.w3.org/2001/XMLSchema#integer",
				"http://www.w3.org/2001/XMLSchema#date",
				"http://ex.org/dt#custom",
			}[rng.Intn(3)]
			return NewTypedLiteral(randString(12), dt)
		}
	}
}

// randIdent is a safe identifier for IRI tails and blank labels.
func randIdent(rng *rand.Rand) string {
	const al = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := 1 + rng.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = al[rng.Intn(len(al))]
	}
	return string(b)
}

// randomGraph builds a graph of n random valid triples.
func genGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		s := genTerm(rng, false)
		p := NewIRI("http://ex.org/p/" + randIdent(rng))
		o := genTerm(rng, true)
		g.Add(T(s, p, o))
	}
	return g
}

// TestDecodedGraphSecondaryIndexes exercises the lazily materialized
// POS and OSP indexes of a bulk-loaded graph against an eagerly built
// twin: every query path that touches a secondary index must agree.
func TestDecodedGraphSecondaryIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	eager := genGraph(rng, 120)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, eager); err != nil {
		t.Fatal(err)
	}
	lazy, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	termsEq := func(a, b []Term) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !termsEq(eager.Predicates(), lazy.Predicates()) {
		t.Error("Predicates disagree (POS)")
	}
	for _, p := range eager.Predicates() {
		eager.Match(Term{}, p, Term{}, func(tr Triple) bool {
			if !termsEq(eager.Subjects(tr.P, tr.O), lazy.Subjects(tr.P, tr.O)) {
				t.Errorf("Subjects(%v, %v) disagree (POS)", tr.P, tr.O)
			}
			if eager.SubjectCount(tr.P, tr.O) != lazy.SubjectCount(tr.P, tr.O) {
				t.Errorf("SubjectCount(%v, %v) disagrees (POS)", tr.P, tr.O)
			}
			if !termsEq(predsOf(eager.Find(tr.S, Term{}, tr.O)), predsOf(lazy.Find(tr.S, Term{}, tr.O))) {
				t.Errorf("Find(s, ?, o) disagrees (OSP) for %v", tr)
			}
			got := lazy.Find(Term{}, Term{}, tr.O)
			want := eager.Find(Term{}, Term{}, tr.O)
			if len(got) != len(want) {
				t.Errorf("Find(?, ?, o) disagrees (OSP) for %v", tr.O)
			}
			return true
		})
	}
}

// predsOf projects triples onto predicates for compact comparison.
func predsOf(ts []Triple) []Term {
	out := make([]Term, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.P)
	}
	return out
}

// TestDecodedGraphLazyRace hammers a frozen bulk-loaded snapshot with
// concurrent readers whose first accesses race to materialize POS and
// OSP; run under -race this pins the double-checked publication.
func TestDecodedGraphLazyRace(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := genGraph(rng, 200)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := dec.Snapshot()
	preds := g.Predicates()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := preds[(w+i)%len(preds)]
				if got, want := len(snap.Subjects(p, Term{})), 0; got != want {
					_ = got // wildcard object: leaf lookup is empty, the point is the POS touch
				}
				snap.Match(Term{}, p, Term{}, func(tr Triple) bool {
					if !snap.Has(tr) {
						t.Errorf("worker %d: POS emitted %v not in SPO", w, tr)
						return false
					}
					snap.Match(Term{}, Term{}, tr.O, func(u Triple) bool { return true })
					return true
				})
			}
		}()
	}
	wg.Wait()
	if !graphsEqual(snap, g) {
		t.Error("snapshot diverged after lazy materialization")
	}
}

// TestDecodedGraphMutateAfterDecode proves the first mutation on a
// bulk-loaded graph materializes the deferred indexes before applying,
// keeping all three consistent.
func TestDecodedGraphMutateAfterDecode(t *testing.T) {
	g := NewGraph()
	s, p := NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p")
	g.Add(T(s, p, NewLiteral("old")))
	g.Add(T(s, p, NewLiteral("keep")))
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Remove(T(s, p, NewLiteral("old"))) {
		t.Fatal("remove failed")
	}
	dec.Add(T(s, p, NewLiteral("new")))
	if subj := dec.Subjects(p, NewLiteral("old")); len(subj) != 0 {
		t.Errorf("POS still lists removed triple: %v", subj)
	}
	if subj := dec.Subjects(p, NewLiteral("new")); len(subj) != 1 {
		t.Errorf("POS misses added triple: %v", subj)
	}
	if got := dec.Find(Term{}, Term{}, NewLiteral("keep")); len(got) != 1 {
		t.Errorf("OSP lookup after mutation: %v", got)
	}
}
