// Package ontology models the OWL class hierarchy OL that the local data
// source conforms to. The rule learner needs exactly the operations
// provided here: most-specific classes of an instance, leaf detection,
// subsumption tests, and (for the generalization extension) parent/sibling
// navigation.
//
// The hierarchy is a DAG of named classes under an implicit owl:Thing
// root. Cycles are rejected by Validate. Query methods memoize transitive
// closures; mutation invalidates the memo, so the intended usage is
// build-then-query (which matches the pipeline).
package ontology

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Class identifies an ontology class by IRI term.
type Class = rdf.Term

// Ontology is a mutable class hierarchy with memoized closure queries.
// It is not safe for concurrent mutation; concurrent reads are safe once
// building is finished and Finalize (or any query) has been called.
type Ontology struct {
	nodes map[Class]*node

	// memoized transitive closures, built lazily
	closureValid bool
	ancestors    map[Class]map[Class]struct{}
	descendants  map[Class]map[Class]struct{}
	depths       map[Class]int

	disjoint map[Class]map[Class]struct{}
}

type node struct {
	parents  map[Class]struct{}
	children map[Class]struct{}
	label    string
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		nodes:    map[Class]*node{},
		disjoint: map[Class]map[Class]struct{}{},
	}
}

// ErrCycle reports that the subClassOf graph is not a DAG.
var ErrCycle = errors.New("ontology: subClassOf cycle")

// ErrUnknownClass reports a query about a class never declared.
var ErrUnknownClass = errors.New("ontology: unknown class")

// AddClass declares a class; it is a no-op if already declared.
func (o *Ontology) AddClass(c Class) {
	if _, ok := o.nodes[c]; ok {
		return
	}
	o.nodes[c] = &node{parents: map[Class]struct{}{}, children: map[Class]struct{}{}}
	o.closureValid = false
}

// SetLabel attaches a human-readable label to a declared class.
func (o *Ontology) SetLabel(c Class, label string) {
	o.AddClass(c)
	o.nodes[c].label = label
}

// Label returns the class label, or the IRI local name if none was set.
func (o *Ontology) Label(c Class) string {
	if n, ok := o.nodes[c]; ok && n.label != "" {
		return n.label
	}
	return LocalName(c)
}

// LocalName extracts the fragment or last path segment of a class IRI.
func LocalName(c Class) string {
	s := c.Value
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' || s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}

// AddSubClassOf declares sub ⊑ super, declaring both classes as needed.
func (o *Ontology) AddSubClassOf(sub, super Class) {
	if sub == super {
		return
	}
	o.AddClass(sub)
	o.AddClass(super)
	o.nodes[sub].parents[super] = struct{}{}
	o.nodes[super].children[sub] = struct{}{}
	o.closureValid = false
}

// AddDisjoint declares a ⊥ b (symmetric).
func (o *Ontology) AddDisjoint(a, b Class) {
	o.AddClass(a)
	o.AddClass(b)
	if o.disjoint[a] == nil {
		o.disjoint[a] = map[Class]struct{}{}
	}
	if o.disjoint[b] == nil {
		o.disjoint[b] = map[Class]struct{}{}
	}
	o.disjoint[a][b] = struct{}{}
	o.disjoint[b][a] = struct{}{}
}

// FromGraph builds an ontology from the owl:Class, rdfs:subClassOf,
// rdfs:label and owl:disjointWith triples of g.
func FromGraph(g *rdf.Graph) (*Ontology, error) {
	o := New()
	for _, s := range g.Subjects(rdf.TypeTerm, rdf.ClassTerm) {
		if s.IsIRI() {
			o.AddClass(s)
		}
	}
	g.Match(rdf.Term{}, rdf.SubClassOfTerm, rdf.Term{}, func(t rdf.Triple) bool {
		if t.S.IsIRI() && t.O.IsIRI() {
			o.AddSubClassOf(t.S, t.O)
		}
		return true
	})
	g.Match(rdf.Term{}, rdf.DisjointWithTerm, rdf.Term{}, func(t rdf.Triple) bool {
		if t.S.IsIRI() && t.O.IsIRI() {
			o.AddDisjoint(t.S, t.O)
		}
		return true
	})
	g.Match(rdf.Term{}, rdf.LabelTerm, rdf.Term{}, func(t rdf.Triple) bool {
		if _, ok := o.nodes[t.S]; ok && t.O.IsLiteral() {
			o.SetLabel(t.S, t.O.Value)
		}
		return true
	})
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// ToGraph serializes the ontology back to RDF triples.
func (o *Ontology) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for c, n := range o.nodes {
		g.Add(rdf.T(c, rdf.TypeTerm, rdf.ClassTerm))
		if n.label != "" {
			g.Add(rdf.T(c, rdf.LabelTerm, rdf.NewLiteral(n.label)))
		}
		for p := range n.parents {
			g.Add(rdf.T(c, rdf.SubClassOfTerm, p))
		}
	}
	for a, bs := range o.disjoint {
		for b := range bs {
			g.Add(rdf.T(a, rdf.DisjointWithTerm, b))
		}
	}
	return g
}

// Len returns the number of declared classes.
func (o *Ontology) Len() int { return len(o.nodes) }

// Has reports whether c is declared.
func (o *Ontology) Has(c Class) bool {
	_, ok := o.nodes[c]
	return ok
}

// Classes returns all declared classes, sorted.
func (o *Ontology) Classes() []Class {
	out := make([]Class, 0, len(o.nodes))
	for c := range o.nodes {
		out = append(out, c)
	}
	sortClasses(out)
	return out
}

// Parents returns the direct superclasses of c, sorted.
func (o *Ontology) Parents(c Class) []Class {
	n, ok := o.nodes[c]
	if !ok {
		return nil
	}
	return setToSorted(n.parents)
}

// Children returns the direct subclasses of c, sorted.
func (o *Ontology) Children(c Class) []Class {
	n, ok := o.nodes[c]
	if !ok {
		return nil
	}
	return setToSorted(n.children)
}

// Roots returns the classes with no declared superclass, sorted.
func (o *Ontology) Roots() []Class {
	var out []Class
	for c, n := range o.nodes {
		if len(n.parents) == 0 {
			out = append(out, c)
		}
	}
	sortClasses(out)
	return out
}

// Leaves returns the classes with no subclasses, sorted. These are the
// "most specific classes of the ontology" Algorithm 1 counts over.
func (o *Ontology) Leaves() []Class {
	var out []Class
	for c, n := range o.nodes {
		if len(n.children) == 0 {
			out = append(out, c)
		}
	}
	sortClasses(out)
	return out
}

// IsLeaf reports whether c has no subclasses. Unknown classes are not
// leaves.
func (o *Ontology) IsLeaf(c Class) bool {
	n, ok := o.nodes[c]
	return ok && len(n.children) == 0
}

// Validate checks that the subClassOf graph is acyclic.
func (o *Ontology) Validate() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Class]int, len(o.nodes))
	var visit func(c Class) error
	visit = func(c Class) error {
		switch color[c] {
		case gray:
			return fmt.Errorf("%w involving %s", ErrCycle, c.Value)
		case black:
			return nil
		}
		color[c] = gray
		for p := range o.nodes[c].parents {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[c] = black
		return nil
	}
	for c := range o.nodes {
		if err := visit(c); err != nil {
			return err
		}
	}
	return nil
}

// buildClosure computes ancestor/descendant sets and depths for all
// classes in one pass each.
func (o *Ontology) buildClosure() {
	if o.closureValid {
		return
	}
	o.ancestors = make(map[Class]map[Class]struct{}, len(o.nodes))
	o.descendants = make(map[Class]map[Class]struct{}, len(o.nodes))
	o.depths = make(map[Class]int, len(o.nodes))

	var upward func(c Class) map[Class]struct{}
	upward = func(c Class) map[Class]struct{} {
		if got, ok := o.ancestors[c]; ok {
			return got
		}
		acc := map[Class]struct{}{}
		o.ancestors[c] = acc // pre-register: Validate guarantees no cycles
		for p := range o.nodes[c].parents {
			acc[p] = struct{}{}
			for a := range upward(p) {
				acc[a] = struct{}{}
			}
		}
		return acc
	}
	var downward func(c Class) map[Class]struct{}
	downward = func(c Class) map[Class]struct{} {
		if got, ok := o.descendants[c]; ok {
			return got
		}
		acc := map[Class]struct{}{}
		o.descendants[c] = acc
		for ch := range o.nodes[c].children {
			acc[ch] = struct{}{}
			for d := range downward(ch) {
				acc[d] = struct{}{}
			}
		}
		return acc
	}
	var depth func(c Class) int
	depth = func(c Class) int {
		if d, ok := o.depths[c]; ok {
			return d
		}
		best := 0
		for p := range o.nodes[c].parents {
			if d := depth(p) + 1; d > best {
				best = d
			}
		}
		o.depths[c] = best
		return best
	}
	for c := range o.nodes {
		upward(c)
		downward(c)
		depth(c)
	}
	o.closureValid = true
}

// Finalize precomputes all closures; optional, queries trigger it lazily.
func (o *Ontology) Finalize() { o.buildClosure() }

// Ancestors returns every strict superclass of c (transitively), sorted.
func (o *Ontology) Ancestors(c Class) []Class {
	if _, ok := o.nodes[c]; !ok {
		return nil
	}
	o.buildClosure()
	return setToSorted(o.ancestors[c])
}

// Descendants returns every strict subclass of c (transitively), sorted.
func (o *Ontology) Descendants(c Class) []Class {
	if _, ok := o.nodes[c]; !ok {
		return nil
	}
	o.buildClosure()
	return setToSorted(o.descendants[c])
}

// Subsumes reports whether sub ⊑ super (reflexive: c subsumes c).
func (o *Ontology) Subsumes(super, sub Class) bool {
	if super == sub {
		return o.Has(super)
	}
	if _, ok := o.nodes[sub]; !ok {
		return false
	}
	o.buildClosure()
	_, ok := o.ancestors[sub][super]
	return ok
}

// Depth returns the length of the longest path from a root to c, and
// false when c is unknown.
func (o *Ontology) Depth(c Class) (int, bool) {
	if _, ok := o.nodes[c]; !ok {
		return 0, false
	}
	o.buildClosure()
	return o.depths[c], true
}

// MostSpecific filters cs down to the classes that are not strict
// ancestors of any other class in cs. Duplicates and unknown classes are
// dropped. The result is sorted.
func (o *Ontology) MostSpecific(cs []Class) []Class {
	o.buildClosure()
	in := map[Class]struct{}{}
	for _, c := range cs {
		if o.Has(c) {
			in[c] = struct{}{}
		}
	}
	var out []Class
	for c := range in {
		dominated := false
		for other := range in {
			if other == c {
				continue
			}
			if _, isAnc := o.ancestors[other][c]; isAnc {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sortClasses(out)
	return out
}

// LCA returns the deepest common ancestor of a and b (either argument
// itself qualifies when one subsumes the other), and false when the two
// classes share no ancestor.
func (o *Ontology) LCA(a, b Class) (Class, bool) {
	if !o.Has(a) || !o.Has(b) {
		return Class{}, false
	}
	o.buildClosure()
	candidates := map[Class]struct{}{a: {}}
	for x := range o.ancestors[a] {
		candidates[x] = struct{}{}
	}
	var best Class
	bestDepth := -1
	consider := func(c Class) {
		if _, ok := candidates[c]; !ok {
			return
		}
		if d := o.depths[c]; d > bestDepth || (d == bestDepth && c.Compare(best) < 0) {
			best, bestDepth = c, d
		}
	}
	consider(b)
	for x := range o.ancestors[b] {
		consider(x)
	}
	if bestDepth < 0 {
		return Class{}, false
	}
	return best, true
}

// Disjoint reports whether a and b are declared (or inherited) disjoint:
// a pair is disjoint when any ancestor-or-self of a is declared disjoint
// with any ancestor-or-self of b.
func (o *Ontology) Disjoint(a, b Class) bool {
	if !o.Has(a) || !o.Has(b) {
		return false
	}
	o.buildClosure()
	as := map[Class]struct{}{a: {}}
	for x := range o.ancestors[a] {
		as[x] = struct{}{}
	}
	for x := range as {
		for y := range o.disjoint[x] {
			if y == b {
				return true
			}
			if _, ok := o.ancestors[b][y]; ok {
				return true
			}
		}
	}
	return false
}

// Siblings returns the classes sharing at least one direct parent with c,
// excluding c, sorted. Used by the rule-generalization extension.
func (o *Ontology) Siblings(c Class) []Class {
	n, ok := o.nodes[c]
	if !ok {
		return nil
	}
	set := map[Class]struct{}{}
	for p := range n.parents {
		for ch := range o.nodes[p].children {
			if ch != c {
				set[ch] = struct{}{}
			}
		}
	}
	return setToSorted(set)
}

func setToSorted(set map[Class]struct{}) []Class {
	out := make([]Class, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sortClasses(out)
	return out
}

func sortClasses(cs []Class) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Compare(cs[j]) < 0 })
}
