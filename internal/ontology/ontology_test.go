package ontology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func cls(name string) Class { return rdf.NewIRI("http://onto.example/" + name) }

// buildElectronics creates a small product hierarchy:
//
//	Product
//	├── Passive
//	│   ├── Resistor
//	│   │   ├── FixedFilmResistor
//	│   │   └── WirewoundResistor
//	│   └── Capacitor
//	│       ├── TantalumCapacitor
//	│       └── CeramicCapacitor
//	└── Active
//	    └── Diode
func buildElectronics(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	rel := [][2]string{
		{"Passive", "Product"},
		{"Active", "Product"},
		{"Resistor", "Passive"},
		{"Capacitor", "Passive"},
		{"FixedFilmResistor", "Resistor"},
		{"WirewoundResistor", "Resistor"},
		{"TantalumCapacitor", "Capacitor"},
		{"CeramicCapacitor", "Capacitor"},
		{"Diode", "Active"},
	}
	for _, r := range rel {
		o.AddSubClassOf(cls(r[0]), cls(r[1]))
	}
	o.AddDisjoint(cls("Passive"), cls("Active"))
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return o
}

func TestAddClassIdempotent(t *testing.T) {
	o := New()
	o.AddClass(cls("A"))
	o.AddClass(cls("A"))
	if o.Len() != 1 {
		t.Errorf("Len = %d, want 1", o.Len())
	}
}

func TestParentsChildren(t *testing.T) {
	o := buildElectronics(t)
	p := o.Parents(cls("Resistor"))
	if len(p) != 1 || p[0] != cls("Passive") {
		t.Errorf("Parents(Resistor) = %v", p)
	}
	ch := o.Children(cls("Resistor"))
	if len(ch) != 2 {
		t.Errorf("Children(Resistor) = %v", ch)
	}
	if got := o.Parents(cls("Nope")); got != nil {
		t.Errorf("Parents(unknown) = %v, want nil", got)
	}
}

func TestRootsLeaves(t *testing.T) {
	o := buildElectronics(t)
	roots := o.Roots()
	if len(roots) != 1 || roots[0] != cls("Product") {
		t.Errorf("Roots = %v", roots)
	}
	leaves := o.Leaves()
	if len(leaves) != 5 {
		t.Errorf("Leaves = %v, want 5 leaves", leaves)
	}
	if !o.IsLeaf(cls("Diode")) {
		t.Error("Diode should be a leaf")
	}
	if o.IsLeaf(cls("Resistor")) {
		t.Error("Resistor should not be a leaf")
	}
	if o.IsLeaf(cls("Unknown")) {
		t.Error("unknown class should not be a leaf")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	o := buildElectronics(t)
	anc := o.Ancestors(cls("TantalumCapacitor"))
	want := []Class{cls("Capacitor"), cls("Passive"), cls("Product")}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", anc, want)
	}
	for _, w := range want {
		if !o.Subsumes(w, cls("TantalumCapacitor")) {
			t.Errorf("%v should subsume TantalumCapacitor", w)
		}
	}
	desc := o.Descendants(cls("Passive"))
	if len(desc) != 6 {
		t.Errorf("Descendants(Passive) = %v, want 6", desc)
	}
}

func TestSubsumesReflexiveAndNegative(t *testing.T) {
	o := buildElectronics(t)
	if !o.Subsumes(cls("Diode"), cls("Diode")) {
		t.Error("Subsumes must be reflexive")
	}
	if o.Subsumes(cls("Resistor"), cls("Diode")) {
		t.Error("Resistor must not subsume Diode")
	}
	if o.Subsumes(cls("Diode"), cls("Product")) {
		t.Error("subclass must not subsume superclass")
	}
	if o.Subsumes(cls("Ghost"), cls("Ghost")) {
		t.Error("unknown class must not subsume itself")
	}
}

func TestDepth(t *testing.T) {
	o := buildElectronics(t)
	tests := []struct {
		c    string
		want int
	}{
		{"Product", 0},
		{"Passive", 1},
		{"Resistor", 2},
		{"FixedFilmResistor", 3},
	}
	for _, tc := range tests {
		d, ok := o.Depth(cls(tc.c))
		if !ok || d != tc.want {
			t.Errorf("Depth(%s) = %d,%v want %d,true", tc.c, d, ok, tc.want)
		}
	}
	if _, ok := o.Depth(cls("Ghost")); ok {
		t.Error("Depth(unknown) reported ok")
	}
}

func TestMostSpecific(t *testing.T) {
	o := buildElectronics(t)
	got := o.MostSpecific([]Class{cls("Product"), cls("Resistor"), cls("FixedFilmResistor")})
	if len(got) != 1 || got[0] != cls("FixedFilmResistor") {
		t.Errorf("MostSpecific = %v, want [FixedFilmResistor]", got)
	}
	// Incomparable classes are both kept.
	got = o.MostSpecific([]Class{cls("Resistor"), cls("Capacitor")})
	if len(got) != 2 {
		t.Errorf("MostSpecific incomparable = %v, want 2", got)
	}
	// Unknown classes are dropped.
	got = o.MostSpecific([]Class{cls("Ghost"), cls("Diode")})
	if len(got) != 1 || got[0] != cls("Diode") {
		t.Errorf("MostSpecific with unknown = %v", got)
	}
	if got := o.MostSpecific(nil); len(got) != 0 {
		t.Errorf("MostSpecific(nil) = %v", got)
	}
}

func TestLCA(t *testing.T) {
	o := buildElectronics(t)
	tests := []struct {
		a, b, want string
	}{
		{"FixedFilmResistor", "WirewoundResistor", "Resistor"},
		{"FixedFilmResistor", "TantalumCapacitor", "Passive"},
		{"FixedFilmResistor", "Diode", "Product"},
		{"Resistor", "FixedFilmResistor", "Resistor"},
		{"Diode", "Diode", "Diode"},
	}
	for _, tc := range tests {
		got, ok := o.LCA(cls(tc.a), cls(tc.b))
		if !ok || got != cls(tc.want) {
			t.Errorf("LCA(%s,%s) = %v,%v want %s", tc.a, tc.b, got, ok, tc.want)
		}
	}
	o2 := New()
	o2.AddClass(cls("X"))
	o2.AddClass(cls("Y"))
	if _, ok := o2.LCA(cls("X"), cls("Y")); ok {
		t.Error("LCA of unrelated roots reported ok")
	}
}

func TestDisjointInheritance(t *testing.T) {
	o := buildElectronics(t)
	if !o.Disjoint(cls("Passive"), cls("Active")) {
		t.Error("declared disjointness lost")
	}
	if !o.Disjoint(cls("FixedFilmResistor"), cls("Diode")) {
		t.Error("disjointness must be inherited by subclasses")
	}
	if o.Disjoint(cls("Resistor"), cls("Capacitor")) {
		t.Error("sibling classes are not disjoint unless declared")
	}
	if o.Disjoint(cls("Ghost"), cls("Diode")) {
		t.Error("unknown class cannot be disjoint")
	}
}

func TestSiblings(t *testing.T) {
	o := buildElectronics(t)
	sib := o.Siblings(cls("FixedFilmResistor"))
	if len(sib) != 1 || sib[0] != cls("WirewoundResistor") {
		t.Errorf("Siblings = %v", sib)
	}
	if got := o.Siblings(cls("Product")); len(got) != 0 {
		t.Errorf("Siblings(root) = %v, want none", got)
	}
}

func TestValidateCycle(t *testing.T) {
	o := New()
	o.AddSubClassOf(cls("A"), cls("B"))
	o.AddSubClassOf(cls("B"), cls("C"))
	o.AddSubClassOf(cls("C"), cls("A"))
	err := o.Validate()
	if err == nil {
		t.Fatal("Validate accepted a cycle")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %v does not mention cycle", err)
	}
}

func TestSelfSubClassIgnored(t *testing.T) {
	o := New()
	o.AddSubClassOf(cls("A"), cls("A"))
	if o.Len() != 0 {
		t.Errorf("self subclass created %d classes, want 0", o.Len())
	}
}

func TestMutationInvalidatesClosure(t *testing.T) {
	o := buildElectronics(t)
	if !o.Subsumes(cls("Product"), cls("Diode")) {
		t.Fatal("precondition failed")
	}
	o.AddSubClassOf(cls("Varactor"), cls("Diode"))
	if !o.Subsumes(cls("Product"), cls("Varactor")) {
		t.Error("closure not refreshed after mutation")
	}
	if o.IsLeaf(cls("Diode")) {
		t.Error("Diode still a leaf after gaining a child")
	}
}

func TestGraphRoundTrip(t *testing.T) {
	o := buildElectronics(t)
	o.SetLabel(cls("Diode"), "Diode (active component)")
	g := o.ToGraph()
	o2, err := FromGraph(g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if o2.Len() != o.Len() {
		t.Fatalf("round-trip Len = %d, want %d", o2.Len(), o.Len())
	}
	for _, c := range o.Classes() {
		if !o2.Has(c) {
			t.Errorf("round-trip lost class %v", c)
		}
	}
	if !o2.Subsumes(cls("Product"), cls("TantalumCapacitor")) {
		t.Error("round-trip lost subsumption")
	}
	if !o2.Disjoint(cls("Passive"), cls("Active")) {
		t.Error("round-trip lost disjointness")
	}
	if o2.Label(cls("Diode")) != "Diode (active component)" {
		t.Errorf("round-trip label = %q", o2.Label(cls("Diode")))
	}
}

func TestFromGraphRejectsCycle(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.T(cls("A"), rdf.SubClassOfTerm, cls("B")))
	g.Add(rdf.T(cls("B"), rdf.SubClassOfTerm, cls("A")))
	if _, err := FromGraph(g); err == nil {
		t.Error("FromGraph accepted cyclic hierarchy")
	}
}

func TestLocalNameAndLabel(t *testing.T) {
	if got := LocalName(rdf.NewIRI("http://x.org/path#Frag")); got != "Frag" {
		t.Errorf("LocalName hash = %q", got)
	}
	if got := LocalName(rdf.NewIRI("http://x.org/a/b/Leaf")); got != "Leaf" {
		t.Errorf("LocalName slash = %q", got)
	}
	o := New()
	o.AddClass(cls("Widget"))
	if got := o.Label(cls("Widget")); got != "Widget" {
		t.Errorf("default Label = %q", got)
	}
}

// Property: for a random forest (parent[i] < i), every class's ancestor
// set equals the chain walked through the parent array, and MostSpecific
// of {c} ∪ ancestors(c) is exactly {c}.
func TestClosureMatchesChainWalk(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		parent := make([]int, n)
		o := New()
		names := make([]Class, n)
		for i := 0; i < n; i++ {
			names[i] = cls(string(rune('A'+i%26)) + string(rune('0'+i/26)))
		}
		o.AddClass(names[0])
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			o.AddSubClassOf(names[i], names[parent[i]])
		}
		for i := 1; i < n; i++ {
			wantAnc := map[Class]struct{}{}
			for j := i; j != 0; j = parent[j] {
				wantAnc[names[parent[j]]] = struct{}{}
			}
			got := o.Ancestors(names[i])
			if len(got) != len(wantAnc) {
				return false
			}
			for _, a := range got {
				if _, ok := wantAnc[a]; !ok {
					return false
				}
			}
			ms := o.MostSpecific(append(got, names[i]))
			if len(ms) != 1 || ms[0] != names[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
