// Package obs is a zero-dependency metrics subsystem: counters, gauges
// and fixed-bucket histograms behind a Registry that serves the
// Prometheus text exposition format (version 0.0.4).
//
// It is built for hot paths. Every observation — Counter.Inc,
// Gauge.Add, Histogram.Observe — is a handful of atomic operations with
// no locks, no allocation and no time lookup, so instrumentation can sit
// on the WAL append path or inside a scoring loop without moving the
// numbers it measures (BenchmarkObserve pins the cost). Label lookup
// (Vec.With) reads a sync.Map and is lock-free after first use, but
// hot-path callers should still resolve their children once, up front,
// and hold the returned instrument.
//
// All instruments are nil-safe: every method on a nil *Counter, *Gauge
// or *Histogram is a no-op, so optional instrumentation wires through
// without conditionals at the call sites.
//
// Registration is strict: invalid metric or label names, duplicate
// names, and malformed bucket layouts panic at registration time, which
// is construction time — never on the observe path.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use; nil receivers are no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; nil receivers are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one linear scan over the (small, fixed) bound slice, two atomic adds
// and one CAS-loop float add. The zero value is NOT usable — histograms
// come from a Registry, which sets the buckets.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveSince records the seconds elapsed since t0 — the idiom for
// latency histograms.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// atomicFloat is a float64 with a CAS add — uncontended it costs one
// load and one compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 {
	return math.Float64frombits(f.bits.Load())
}

// DefBuckets is the default latency layout in seconds: 100µs to 10s,
// roughly logarithmic. Suits request and stage durations.
func DefBuckets() []float64 {
	return []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// FastBuckets is a latency layout for sub-millisecond operations (WAL
// appends, fsyncs): 10µs to 1s.
func FastBuckets() []float64 {
	return []float64{.00001, .000025, .00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, 1}
}

// SizeBuckets is a byte-size layout: 256B to 16MiB, powers of four.
func SizeBuckets() []float64 {
	return []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
}

// ExponentialBuckets returns count bucket bounds starting at start,
// multiplying by factor. Panics on a non-positive start, a factor <= 1
// or count < 1 — registration-time errors, like the Registry's own.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("obs: invalid exponential buckets (start %g, factor %g, count %d)", start, factor, count))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// metricType is the TYPE line value.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// child is one labeled instrument of a family. Exactly one of c/g/h is
// set, matching the family's type.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with its children (one per label-value
// combination; a single unlabeled child for scalar metrics).
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64

	// children maps joined label values to *child. Reads (the Vec.With
	// fast path) are lock-free; mu serializes creation only.
	children sync.Map
	mu       sync.Mutex

	// fn, when set, makes this a function-sourced scalar read at scrape
	// time (CounterFunc/GaugeFunc) — for values owned by existing state
	// that must never disagree with it.
	fn func() float64
	// hfn, when set, makes this a function-sourced histogram read at
	// scrape time (HistogramFunc) — for pre-bucketed distributions like
	// runtime/metrics GC pause histograms.
	hfn func() HistogramSnapshot
}

// get returns the child for the given label values, creating it on
// first use.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	if v, ok := f.children.Load(key); ok {
		return v.(*child)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.children.Load(key); ok {
		return v.(*child)
	}
	ch := &child{values: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		ch.c = &Counter{}
	case typeGauge:
		ch.g = &Gauge{}
	case typeHistogram:
		ch.h = &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.children.Store(key, ch)
	return ch
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Hot paths should call With once and hold the counter.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration methods panic on invalid or
// duplicate names — misregistration is a programming error caught at
// construction time. A Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and installs a new family.
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %s has no buckets", name))
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing at %d", name, i))
			}
		}
		for _, l := range labels {
			if l == "le" {
				panic(fmt.Sprintf("obs: histogram %s reserves the %q label", name, "le"))
			}
		}
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %s registered twice", name))
	}
	r.families[name] = f
	return f
}

// Counter registers a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil).get(nil).c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// Gauge registers a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil).get(nil).g
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// Histogram registers a scalar histogram over the given bucket bounds
// (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, buckets).get(nil).h
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, buckets)}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. Use it for values owned by existing state (store stats, live
// config) so the metric and its JSON twin can never disagree.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil, nil).fn = fn
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonic — the Registry trusts it.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, nil, nil).fn = fn
}

// HistogramBucket is one cumulative bucket of a HistogramSnapshot:
// Count observations at or below Upper.
type HistogramBucket struct {
	Upper float64
	Count uint64
}

// HistogramSnapshot is a point-in-time cumulative histogram, as
// returned by a HistogramFunc source. Buckets must be sorted by Upper
// with non-decreasing counts; Count is the total observation count and
// Sum the (possibly estimated) sum of observed values.
type HistogramSnapshot struct {
	Buckets []HistogramBucket
	Sum     float64
	Count   uint64
}

// HistogramFunc registers a histogram whose full bucket layout and
// counts are read from fn at scrape time. Use it for distributions
// maintained elsewhere with their own bucketing — e.g. runtime/metrics
// GC pause and scheduler latency histograms — where re-observing into a
// push histogram would lose or distort the source's resolution.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot) {
	// The placeholder bucket satisfies registration validation; rendering
	// uses the snapshot's own bounds.
	r.register(name, help, typeHistogram, nil, []float64{math.Inf(1)}).hfn = fn
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and children by label values, so output is
// deterministic for a quiesced registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP makes the Registry a scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// write renders one family.
func (f *family) write(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.typ))
	b.WriteByte('\n')

	if f.fn != nil {
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(f.fn()))
		b.WriteByte('\n')
		return
	}
	if f.hfn != nil {
		snap := f.hfn()
		last := math.Inf(-1)
		infSeen := false
		for _, bk := range snap.Buckets {
			if bk.Upper <= last {
				continue // defend against out-of-order source buckets
			}
			last = bk.Upper
			if math.IsInf(bk.Upper, 1) {
				infSeen = true
				// +Inf must equal _count for a well-formed histogram.
				writeSample(b, f.name+"_bucket", nil, nil, "le", "+Inf", strconv.FormatUint(snap.Count, 10))
				break
			}
			writeSample(b, f.name+"_bucket", nil, nil, "le", formatFloat(bk.Upper), strconv.FormatUint(bk.Count, 10))
		}
		if !infSeen {
			writeSample(b, f.name+"_bucket", nil, nil, "le", "+Inf", strconv.FormatUint(snap.Count, 10))
		}
		writeSample(b, f.name+"_sum", nil, nil, "", "", formatFloat(snap.Sum))
		writeSample(b, f.name+"_count", nil, nil, "", "", strconv.FormatUint(snap.Count, 10))
		return
	}

	var children []*child
	f.children.Range(func(_, v any) bool {
		children = append(children, v.(*child))
		return true
	})
	sort.Slice(children, func(i, j int) bool {
		a, c := children[i].values, children[j].values
		for k := range a {
			if a[k] != c[k] {
				return a[k] < c[k]
			}
		}
		return false
	})
	for _, ch := range children {
		switch f.typ {
		case typeCounter:
			writeSample(b, f.name, f.labels, ch.values, "", "", strconv.FormatUint(ch.c.Value(), 10))
		case typeGauge:
			writeSample(b, f.name, f.labels, ch.values, "", "", strconv.FormatInt(ch.g.Value(), 10))
		case typeHistogram:
			// Cumulative buckets: each le bound counts everything at or
			// below it; +Inf equals _count.
			cum := uint64(0)
			for i, bound := range ch.h.upper {
				cum += ch.h.counts[i].Load()
				writeSample(b, f.name+"_bucket", f.labels, ch.values, "le", formatFloat(bound), strconv.FormatUint(cum, 10))
			}
			cum += ch.h.counts[len(ch.h.upper)].Load()
			writeSample(b, f.name+"_bucket", f.labels, ch.values, "le", "+Inf", strconv.FormatUint(cum, 10))
			writeSample(b, f.name+"_sum", f.labels, ch.values, "", "", formatFloat(ch.h.Sum()))
			writeSample(b, f.name+"_count", f.labels, ch.values, "", "", strconv.FormatUint(ch.h.Count(), 10))
		}
	}
}

// writeSample renders one sample line, appending an optional extra
// label (the histogram "le").
func writeSample(b *strings.Builder, name string, labels, values []string, extraName, extraValue, sample string) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(sample)
	b.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// validMetricName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// validLabelName checks [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
