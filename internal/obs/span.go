package obs

import (
	"context"
	"sync"
	"time"
)

// Stage-level tracing without a tracing dependency: a Trace rides in the
// request context, pipeline stages open Spans against it, and each
// closed Span lands both in the Trace (for an opt-in per-request
// breakdown, e.g. /v1/link?debug=timings) and in whatever sink the
// Trace owner wired (typically a stage-labeled latency histogram).
// Code that never sees a Trace in its context pays one context lookup
// per span and nothing else — no clock reads, no allocation.

// Stage is one timed pipeline stage of a request.
type Stage struct {
	Name     string
	Duration time.Duration
}

// Trace collects the timed stages of one request. Safe for concurrent
// use (parallel stages may end on different goroutines).
type Trace struct {
	mu     sync.Mutex
	stages []Stage
	sink   func(name string, d time.Duration)
}

// NewTrace returns an empty trace. sink, when non-nil, additionally
// receives every closed span — the hook that feeds per-stage histograms
// on every request, not just traced ones.
func NewTrace(sink func(name string, d time.Duration)) *Trace {
	return &Trace{sink: sink}
}

// Observe records one finished stage.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Duration: d})
	t.mu.Unlock()
	if t.sink != nil {
		t.sink(name, d)
	}
}

// Stages returns a copy of the recorded stages in completion order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

type traceKey struct{}

// WithTrace attaches a trace to the context for StartSpan to find.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Span is one in-flight stage timing. The zero Span (no trace in the
// context) is a no-op, so instrumented code needs no conditionals.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a stage span against the context's trace. Without a
// trace it returns the no-op zero Span and does not read the clock.
func StartSpan(ctx context.Context, name string) Span {
	t := TraceFrom(ctx)
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End closes the span, recording its duration in the trace (and its
// sink).
func (s Span) End() {
	if s.t != nil {
		s.t.Observe(s.name, time.Since(s.start))
	}
}
