package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a fixed-size in-memory record of recently completed
// requests, built to answer "why was *this* query slow?" when aggregate
// histograms can't. Retention is tail-based — the interesting outliers
// (slow, errored or rejected requests) are always kept in their own
// ring, so a burst of fast traffic can never evict them, while ordinary
// fast requests are probabilistically sampled into a second ring for
// baseline context.
//
// The observe path is lock-light: classification (slow? error? sample?)
// is pure arithmetic on the finished record, the sampling decision is
// one atomic counter increment plus a hash (deterministic in the seed,
// so tests can pin exactly which requests are kept), and only records
// that are actually retained take a ring mutex — for a copy into a
// pre-allocated slot. At a 1% sample rate, 99% of fast traffic leaves
// the recorder having touched one atomic add.

// RecordKind classifies why a record was retained.
type RecordKind string

const (
	// KindSlow marks a request at or over the slow threshold.
	KindSlow RecordKind = "slow"
	// KindError marks a non-2xx/3xx response or a middleware rejection.
	KindError RecordKind = "error"
	// KindSampled marks an ordinary fast request kept by the sampler.
	KindSampled RecordKind = "sampled"
)

// RequestRecord is one completed request as the flight recorder keeps
// it: identity, outcome, and the full stage breakdown of its trace.
type RequestRecord struct {
	// ID is the request's X-Request-ID.
	ID string
	// Method and Path identify the call; Path is the raw request path.
	Method string
	Path   string
	// Status is the HTTP status written; Reason the machine-readable
	// rejection token, when the middleware or a handler set one.
	Status int
	Reason string
	// Client is the hashed API key ("anonymous" when none).
	Client string
	// Start is when the request began; Duration how long it took.
	Start    time.Time
	Duration time.Duration
	// Bytes is the response body size.
	Bytes int64
	// Stages is the request's stage-span breakdown (engine, blocking,
	// scoring, learn, publish, ...) in completion order.
	Stages []Stage
	// Kind is set by the recorder: why this record was retained.
	Kind RecordKind
	// seq orders records globally (ring position alone can't, across two
	// rings).
	seq uint64
}

// RecorderOptions configures a FlightRecorder. The zero value is usable:
// modest ring capacities, a 250ms slow threshold, and no fast-request
// sampling (slow and error records are still always kept).
type RecorderOptions struct {
	// Capacity bounds the sampled ring (fast requests kept by the
	// sampler); 0 means 512.
	Capacity int
	// SlowCapacity bounds the always-kept slow/error ring; 0 means 128.
	SlowCapacity int
	// SlowThreshold is the duration at or above which a request is
	// retained unconditionally; 0 means 250ms.
	SlowThreshold time.Duration
	// SampleRate is the probability in [0, 1] that a fast, successful
	// request is kept in the sampled ring. 0 keeps none.
	SampleRate float64
	// Seed parameterizes the deterministic sampler; 0 means 1. Two
	// recorders with the same seed and the same observation sequence
	// keep exactly the same records.
	Seed uint64
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.Capacity <= 0 {
		o.Capacity = 512
	}
	if o.SlowCapacity <= 0 {
		o.SlowCapacity = 128
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RecorderStats counts what the recorder has seen and kept.
type RecorderStats struct {
	Seen        uint64 `json:"seen"`
	KeptSlow    uint64 `json:"kept_slow"`
	KeptError   uint64 `json:"kept_error"`
	KeptSampled uint64 `json:"kept_sampled"`
}

// FlightRecorder retains completed request records with tail-based
// retention. Safe for concurrent use; a nil recorder is a no-op.
type FlightRecorder struct {
	opts RecorderOptions
	// cut is the precomputed 53-bit sampling threshold: keep when the
	// top 53 bits of the hash fall below it.
	cut uint64

	seen        atomic.Uint64
	keptSlow    atomic.Uint64
	keptError   atomic.Uint64
	keptSampled atomic.Uint64
	ctr         atomic.Uint64 // sampling sequence
	seq         atomic.Uint64 // global record order

	sampled ring
	slow    ring
}

// ring is one fixed-capacity record buffer. next wraps; recs grows to
// capacity once and is overwritten in place afterwards.
type ring struct {
	mu   sync.Mutex
	recs []RequestRecord
	next int
	cap  int
}

func (r *ring) put(rec RequestRecord) {
	r.mu.Lock()
	if len(r.recs) < r.cap {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.next] = rec
	}
	r.next = (r.next + 1) % r.cap
	r.mu.Unlock()
}

func (r *ring) snapshot() []RequestRecord {
	r.mu.Lock()
	out := append([]RequestRecord(nil), r.recs...)
	r.mu.Unlock()
	return out
}

// NewFlightRecorder builds a recorder; zero options get defaults.
func NewFlightRecorder(opts RecorderOptions) *FlightRecorder {
	opts = opts.withDefaults()
	fr := &FlightRecorder{opts: opts}
	fr.sampled.cap = opts.Capacity
	fr.slow.cap = opts.SlowCapacity
	if opts.SampleRate > 0 {
		rate := opts.SampleRate
		if rate > 1 {
			rate = 1
		}
		fr.cut = uint64(rate * (1 << 53))
	}
	return fr
}

// SlowThreshold returns the effective slow-retention threshold.
func (fr *FlightRecorder) SlowThreshold() time.Duration {
	if fr == nil {
		return 0
	}
	return fr.opts.SlowThreshold
}

// Options returns the effective (defaulted) configuration.
func (fr *FlightRecorder) Options() RecorderOptions {
	if fr == nil {
		return RecorderOptions{}
	}
	return fr.opts
}

// Observe classifies and possibly retains one completed request. Slow
// and error records always land in the slow/error ring; fast successes
// pass the deterministic sampler or are dropped without taking a lock.
func (fr *FlightRecorder) Observe(rec RequestRecord) {
	if fr == nil {
		return
	}
	fr.seen.Add(1)
	switch {
	case rec.Status >= 400 || rec.Reason != "":
		rec.Kind = KindError
		rec.seq = fr.seq.Add(1)
		fr.keptError.Add(1)
		fr.slow.put(rec)
	case rec.Duration >= fr.opts.SlowThreshold:
		rec.Kind = KindSlow
		rec.seq = fr.seq.Add(1)
		fr.keptSlow.Add(1)
		fr.slow.put(rec)
	default:
		if !fr.sample() {
			return
		}
		rec.Kind = KindSampled
		rec.seq = fr.seq.Add(1)
		fr.keptSampled.Add(1)
		fr.sampled.put(rec)
	}
}

// sample decides whether to keep an ordinary fast request: a splitmix64
// hash of an atomic sequence number against the precomputed threshold.
// Deterministic in (seed, observation order) and lock-free.
func (fr *FlightRecorder) sample() bool {
	if fr.cut == 0 {
		return false
	}
	h := splitmix64(fr.ctr.Add(1) + fr.opts.Seed*0x9e3779b97f4a7c15)
	return h>>11 < fr.cut
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-distributed
// 64-bit mix used as a counter-based hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stats returns the retention counters.
func (fr *FlightRecorder) Stats() RecorderStats {
	if fr == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Seen:        fr.seen.Load(),
		KeptSlow:    fr.keptSlow.Load(),
		KeptError:   fr.keptError.Load(),
		KeptSampled: fr.keptSampled.Load(),
	}
}

// RecordFilter narrows a Snapshot. Zero fields match everything.
type RecordFilter struct {
	// MinDuration keeps records at or above the given duration.
	MinDuration time.Duration
	// Status keeps an exact status code ("404"), a status class ("4xx",
	// "5xx"), or "error" (any retained error/rejection). Empty keeps all.
	Status string
	// Path keeps an exact request path.
	Path string
	// N caps the result count (newest first); 0 means 100.
	N int
}

// matchStatus applies the Status filter term to one record.
func (f RecordFilter) matchStatus(rec RequestRecord) bool {
	switch f.Status {
	case "":
		return true
	case "error":
		return rec.Kind == KindError
	}
	if len(f.Status) == 3 && strings.HasSuffix(f.Status, "xx") {
		return rec.Status/100 == int(f.Status[0]-'0')
	}
	code, err := strconv.Atoi(f.Status)
	return err == nil && rec.Status == code
}

// Snapshot returns the retained records matching the filter, newest
// first, capped at f.N. The returned records are copies; Stages slices
// are shared but never mutated after retention.
func (fr *FlightRecorder) Snapshot(f RecordFilter) []RequestRecord {
	if fr == nil {
		return nil
	}
	if f.N <= 0 {
		f.N = 100
	}
	all := append(fr.slow.snapshot(), fr.sampled.snapshot()...)
	out := all[:0]
	for _, rec := range all {
		if rec.Duration < f.MinDuration {
			continue
		}
		if f.Path != "" && rec.Path != f.Path {
			continue
		}
		if !f.matchStatus(rec) {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	if len(out) > f.N {
		out = out[:f.N]
	}
	return out
}
