package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_in_flight", "in flight")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read zero")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	text := scrape(t, r)
	// Cumulative: le=0.1 holds 0.05 and 0.1 (bounds are inclusive).
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 2`,
		`test_lat_seconds_bucket{le="1"} 3`,
		`test_lat_seconds_bucket{le="10"} 4`,
		`test_lat_seconds_bucket{le="+Inf"} 5`,
		`test_lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestVecChildrenAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "requests", "path", "code")
	v.With("/v1/link", "200").Add(3)
	v.With("/v1/link", "400").Inc()
	v.With("weird\"\\\n", "200").Inc()
	if v.With("/v1/link", "200") != v.With("/v1/link", "200") {
		t.Error("With must return the same child for the same values")
	}
	text := scrape(t, r)
	for _, want := range []string{
		`test_req_total{path="/v1/link",code="200"} 3`,
		`test_req_total{path="/v1/link",code="400"} 1`,
		`test_req_total{path="weird\"\\\n",code="200"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("test_live", "live value", func() float64 { n++; return n })
	r.CounterFunc("test_done_total", "done", func() float64 { return 7 })
	text := scrape(t, r)
	if !strings.Contains(text, "test_live 42") {
		t.Errorf("func gauge not scraped:\n%s", text)
	}
	if !strings.Contains(text, "test_done_total 7") {
		t.Errorf("func counter not scraped:\n%s", text)
	}
}

func TestRegistrationPanics(t *testing.T) {
	for name, fn := range map[string]func(r *Registry){
		"duplicate":     func(r *Registry) { r.Counter("a_total", "x"); r.Counter("a_total", "x") },
		"bad name":      func(r *Registry) { r.Counter("9bad", "x") },
		"bad label":     func(r *Registry) { r.CounterVec("a_total", "x", "9bad") },
		"le label":      func(r *Registry) { r.HistogramVec("h", "x", DefBuckets(), "le") },
		"no buckets":    func(r *Registry) { r.Histogram("h", "x", nil) },
		"unsorted":      func(r *Registry) { r.Histogram("h", "x", []float64{1, 1}) },
		"label arity":   func(r *Registry) { v := r.CounterVec("a_total", "x", "l"); v.With("a", "b") },
		"empty buckets": func(r *Registry) { _ = ExponentialBuckets(0, 2, 3) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn(NewRegistry())
		})
	}
}

func TestExpositionValidity(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("test_requests_total", "requests", "path")
	h := r.HistogramVec("test_latency_seconds", "latency", DefBuckets(), "path")
	g := r.Gauge("test_in_flight", "in flight")
	c.With("/a").Inc()
	h.With("/a").Observe(0.01)
	g.Set(3)
	r.GaugeFunc("test_f", "f", func() float64 { return 1.5 })
	ValidateExposition(t, scrape(t, r))
}

// ValidateExposition asserts the text is well-formed exposition format
// per Lint: every sample parses, names and labels are legal, every
// sample has HELP and TYPE metadata, histogram buckets are cumulative
// and consistent with _count.
func ValidateExposition(t *testing.T, text string) {
	t.Helper()
	for _, err := range Lint(text) {
		t.Error(err)
	}
}

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("test_ops_total", "ops", "kind")
	h := r.HistogramVec("test_lat_seconds", "lat", DefBuckets(), "kind")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			kind := fmt.Sprintf("k%d", w%3)
			for i := 0; i < perWorker; i++ {
				c.With(kind).Inc()
				h.With(kind).Observe(float64(i) / perWorker)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	total := uint64(0)
	for _, k := range []string{"k0", "k1", "k2"} {
		total += c.With(k).Value()
	}
	if total != workers*perWorker {
		t.Errorf("lost increments: %d != %d", total, workers*perWorker)
	}
	ValidateExposition(t, scrape(t, r))
}

func TestTraceAndSpans(t *testing.T) {
	var sunk []Stage
	tr := NewTrace(func(name string, d time.Duration) { sunk = append(sunk, Stage{name, d}) })
	ctx := WithTrace(context.Background(), tr)
	sp := StartSpan(ctx, "blocking")
	time.Sleep(time.Millisecond)
	sp.End()
	StartSpan(ctx, "scoring").End()
	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Name != "blocking" || stages[1].Name != "scoring" {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0].Duration <= 0 {
		t.Error("blocking span has no duration")
	}
	if len(sunk) != 2 {
		t.Errorf("sink saw %d stages, want 2", len(sunk))
	}
	// No trace in context: spans are inert.
	StartSpan(context.Background(), "x").End()
	if got := TraceFrom(context.Background()); got != nil {
		t.Errorf("TraceFrom(empty ctx) = %v", got)
	}
}

// BenchmarkObserve pins the hot-path observation cost: the acceptance
// bound is <= 100ns/op for counter and histogram observes.
func BenchmarkObserve(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "ops")
	h := r.Histogram("bench_lat_seconds", "lat", DefBuckets())
	g := r.Gauge("bench_gauge", "g")
	b.Run("Counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("Histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.0042)
		}
	})
	b.Run("Gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Add(1)
		}
	})
}

// BenchmarkVecWith measures the labeled fast path (sync.Map hit).
func BenchmarkVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_req_total", "req", "path", "code")
	v.With("/v1/link", "200").Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("/v1/link", "200").Inc()
	}
}
