package obs

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

func TestHistogramFuncRendersAndLints(t *testing.T) {
	reg := NewRegistry()
	reg.HistogramFunc("test_pause_seconds", "Test histogram.", func() HistogramSnapshot {
		return HistogramSnapshot{
			Buckets: []HistogramBucket{
				{Upper: 0.001, Count: 3},
				{Upper: 0.01, Count: 7},
				{Upper: math.Inf(1), Count: 9},
			},
			Sum:   0.042,
			Count: 9,
		}
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if errs := Lint(text); errs != nil {
		t.Fatalf("lint errors: %v\n%s", errs, text)
	}
	for _, want := range []string{
		`test_pause_seconds_bucket{le="0.001"} 3`,
		`test_pause_seconds_bucket{le="0.01"} 7`,
		`test_pause_seconds_bucket{le="+Inf"} 9`,
		`test_pause_seconds_sum 0.042`,
		`test_pause_seconds_count 9`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestHistogramFuncNoInfBucket(t *testing.T) {
	reg := NewRegistry()
	reg.HistogramFunc("test_h_seconds", "No +Inf in source.", func() HistogramSnapshot {
		return HistogramSnapshot{
			Buckets: []HistogramBucket{{Upper: 1, Count: 2}},
			Sum:     1.5,
			Count:   2,
		}
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if errs := Lint(text); errs != nil {
		t.Fatalf("lint errors: %v\n%s", errs, text)
	}
	if !strings.Contains(text, `test_h_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing synthesized +Inf bucket:\n%s", text)
	}
}

// TestRegisterRuntime proves the go_* series render lint-clean from the
// live runtime, with plausible values.
func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	// Force at least one GC cycle so the pause histogram is non-empty.
	runtime.GC()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if errs := Lint(text); errs != nil {
		t.Fatalf("lint errors: %v", errs)
	}

	samples, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if byKey["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", byKey["go_goroutines"])
	}
	if byKey["go_heap_inuse_bytes"] <= 0 {
		t.Fatalf("go_heap_inuse_bytes = %v", byKey["go_heap_inuse_bytes"])
	}
	if byKey["go_gc_cycles_total"] < 1 {
		t.Fatalf("go_gc_cycles_total = %v", byKey["go_gc_cycles_total"])
	}
	if byKey["go_process_start_time_seconds"] <= 0 {
		t.Fatalf("go_process_start_time_seconds = %v", byKey["go_process_start_time_seconds"])
	}
	if byKey["go_gc_pause_seconds_count"] < 1 {
		t.Fatalf("go_gc_pause_seconds_count = %v (GC ran, pauses expected)", byKey["go_gc_pause_seconds_count"])
	}
	if byKey["go_sched_latency_seconds_count"] < 1 {
		t.Fatalf("go_sched_latency_seconds_count = %v", byKey["go_sched_latency_seconds_count"])
	}
}

func TestHistOfConversion(t *testing.T) {
	// Simulated runtime/metrics shape: Buckets has one more entry than
	// Counts; first boundary may be -Inf, last +Inf.
	snap := HistogramSnapshot{}
	{
		// Hand-build via the same math histOf uses, with a fake value. We
		// can't construct a metrics.Value directly, so test the invariants
		// on a real runtime histogram instead.
		reg := NewRegistry()
		RegisterRuntime(reg)
		runtime.GC()
		s := histOf(readRuntime()["/sched/pauses/total/gc:seconds"])
		snap = s
	}
	if snap.Count == 0 {
		t.Skip("runtime exposes no GC pause samples")
	}
	var prev uint64
	for i, b := range snap.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket %d not cumulative: %d < %d", i, b.Count, prev)
		}
		prev = b.Count
	}
	if last := snap.Buckets[len(snap.Buckets)-1]; last.Count != snap.Count {
		t.Fatalf("last bucket %d != count %d", last.Count, snap.Count)
	}
	if snap.Sum < 0 {
		t.Fatalf("negative sum %v", snap.Sum)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_total", "c").Add(42)
	reg.GaugeVec("rt_gauge", "g", "path", "weird").With(`/v1/link`, "a\"b\\c\nd").Set(7)
	reg.Histogram("rt_lat_seconds", "h", []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(b.String())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if byKey["rt_total"] != 42 {
		t.Fatalf("rt_total = %v", byKey["rt_total"])
	}
	wantKey := `rt_gauge{path="/v1/link",weird="a\"b\\c\nd"}`
	if byKey[wantKey] != 7 {
		t.Fatalf("escaped label round trip failed; keys: %v", byKey)
	}
	if byKey[`rt_lat_seconds_bucket{le="1"}`] != 1 {
		t.Fatalf("bucket parse failed: %v", byKey)
	}
	if byKey["rt_lat_seconds_count"] != 1 || byKey["rt_lat_seconds_sum"] != 0.5 {
		t.Fatalf("sum/count parse failed: %v", byKey)
	}
}

func TestParseTextErrors(t *testing.T) {
	if _, err := ParseText("not a sample line at all {"); err == nil {
		t.Fatal("want error for malformed sample")
	}
	if _, err := ParseText("ok_metric notafloat"); err == nil {
		t.Fatal("want error for bad value")
	}
}

func TestBuildInfo(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if bi.Version == "" || bi.Revision == "" {
		t.Fatalf("empty fields: %+v", bi)
	}
}
