package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"time"
)

// Runtime telemetry: Go process health exported through the registry's
// Func collectors, sourced from runtime/metrics at scrape time only —
// zero cost between scrapes. Scalar series use GaugeFunc/CounterFunc;
// the pre-bucketed runtime histograms (GC pauses, scheduler latency)
// go through HistogramFunc so their native resolution survives instead
// of being squashed into a fixed layout.

// runtimeSamples is the fixed sample set read on every scrape-time
// callback. Reading all of them in one metrics.Read call is cheap
// (runtime/metrics is designed for it) and keeps related series
// consistent within a single callback.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/unused:bytes",
	"/memory/classes/heap/released:bytes",
	"/memory/classes/total:bytes",
	"/sched/pauses/total/gc:seconds",
	"/sched/latencies:seconds",
}

// readRuntime samples every runtime series fresh and returns them by
// name. Unsupported names come back as KindBad and read as zero.
func readRuntime() map[string]metrics.Value {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	out := make(map[string]metrics.Value, len(samples))
	for _, s := range samples {
		out[s.Name] = s.Value
	}
	return out
}

// uint64Of extracts a KindUint64 value, zero for anything else.
func uint64Of(v metrics.Value) float64 {
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(v.Uint64())
}

// histOf converts a runtime/metrics Float64Histogram into a cumulative
// HistogramSnapshot. Counts[i] covers (Buckets[i], Buckets[i+1]]; the
// exported upper bounds are Buckets[1:], so a leading -Inf boundary
// folds into the first finite bucket. The sum is estimated from bucket
// midpoints (infinite bounds clamp to their finite neighbor) — good
// enough for rate(sum)/rate(count) dashboards, exact for quantiles.
func histOf(v metrics.Value) HistogramSnapshot {
	if v.Kind() != metrics.KindFloat64Histogram {
		return HistogramSnapshot{}
	}
	h := v.Float64Histogram()
	if h == nil || len(h.Buckets) < 2 {
		return HistogramSnapshot{}
	}
	var snap HistogramSnapshot
	snap.Buckets = make([]HistogramBucket, 0, len(h.Counts))
	cum := uint64(0)
	for i, c := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		cum += c
		snap.Count += c
		if c > 0 {
			mid := (lo + hi) / 2
			switch {
			case math.IsInf(lo, -1) && math.IsInf(hi, 1):
				mid = 0
			case math.IsInf(lo, -1):
				mid = hi
			case math.IsInf(hi, 1):
				mid = lo
			}
			snap.Sum += mid * float64(c)
		}
		snap.Buckets = append(snap.Buckets, HistogramBucket{Upper: hi, Count: cum})
	}
	return snap
}

// RegisterRuntime installs the Go process health series on reg, all
// prefixed go_. The process start time is captured at registration —
// for a service that registers during construction this matches process
// start to within milliseconds, without reaching into /proc.
func RegisterRuntime(reg *Registry) {
	start := float64(time.Now().UnixNano()) / 1e9
	reg.GaugeFunc("go_process_start_time_seconds",
		"Unix time the process (strictly: its metrics registry) started.",
		func() float64 { return start })
	reg.GaugeFunc("go_gomaxprocs",
		"Value of GOMAXPROCS: OS threads executing Go code simultaneously.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.GaugeFunc("go_goroutines",
		"Current number of live goroutines.",
		func() float64 { return uint64Of(readRuntime()["/sched/goroutines:goroutines"]) })
	reg.GaugeFunc("go_heap_inuse_bytes",
		"Heap memory occupied by live objects plus unused spans.",
		func() float64 {
			v := readRuntime()
			return uint64Of(v["/memory/classes/heap/objects:bytes"]) + uint64Of(v["/memory/classes/heap/unused:bytes"])
		})
	reg.GaugeFunc("go_heap_released_bytes",
		"Heap memory returned to the operating system.",
		func() float64 { return uint64Of(readRuntime()["/memory/classes/heap/released:bytes"]) })
	reg.GaugeFunc("go_memory_total_bytes",
		"Total memory mapped by the Go runtime.",
		func() float64 { return uint64Of(readRuntime()["/memory/classes/total:bytes"]) })
	reg.CounterFunc("go_gc_cycles_total",
		"Completed garbage collection cycles.",
		func() float64 { return uint64Of(readRuntime()["/gc/cycles/total:gc-cycles"]) })
	reg.HistogramFunc("go_gc_pause_seconds",
		"Distribution of individual GC-related stop-the-world pause latencies.",
		func() HistogramSnapshot { return histOf(readRuntime()["/sched/pauses/total/gc:seconds"]) })
	reg.HistogramFunc("go_sched_latency_seconds",
		"Distribution of goroutine scheduling latency: time from runnable to running.",
		func() HistogramSnapshot { return histOf(readRuntime()["/sched/latencies:seconds"]) })
}
