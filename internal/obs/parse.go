package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SampleValue is one parsed exposition sample: a fully-qualified series
// name (including _bucket/_sum/_count suffixes), its label set, and the
// value.
type SampleValue struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity as name{k="v",...} with labels
// sorted — a stable map key for delta computation across two scrapes.
func (s SampleValue) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(s.Labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses a Prometheus 0.0.4 text exposition into samples,
// skipping comment lines. It is the read half of WritePrometheus —
// used by the loadgen harness to diff two scrapes of a live service.
// The first malformed sample line aborts with an error.
func ParseText(text string) ([]SampleValue, error) {
	var out []SampleValue
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parseSampleLine(line)
		if !ok {
			return nil, fmt.Errorf("obs: line %d: unparseable sample %q", ln+1, line)
		}
		v, err := parseValue(value)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", ln+1, err)
		}
		sv := SampleValue{Name: name, Value: v}
		if labels != "" {
			sv.Labels = make(map[string]string)
			for _, pair := range splitLabelPairs(labels) {
				k, val, found := strings.Cut(pair, "=")
				if !found || len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
					return nil, fmt.Errorf("obs: line %d: bad label pair %q", ln+1, pair)
				}
				sv.Labels[k] = unescapeLabel(val[1 : len(val)-1])
			}
		}
		out = append(out, sv)
	}
	return out, nil
}

// parseValue handles the exposition's special float spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// unescapeLabel reverses escapeLabel.
func unescapeLabel(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
