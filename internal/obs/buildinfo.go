package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: module version, Go toolchain
// and VCS revision, as far as the build embedded them.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit (short), suffixed "+dirty" when the
	// working tree was modified; "unknown" when not embedded.
	Revision string `json:"revision"`
}

// Build reads the binary's embedded build information. Never fails:
// missing fields come back as "unknown".
func Build() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		bi.Revision = rev
	}
	return bi
}
