package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func fastRec(i int) RequestRecord {
	return RequestRecord{
		ID:       fmt.Sprintf("fast-%d", i),
		Method:   "GET",
		Path:     "/healthz",
		Status:   200,
		Duration: time.Millisecond,
	}
}

// TestRecorderTailRetention is the core property: slow and error records
// survive a flood of fast requests far exceeding the sampled ring's
// capacity, and neither ring exceeds its bound.
func TestRecorderTailRetention(t *testing.T) {
	fr := NewFlightRecorder(RecorderOptions{
		Capacity:      64,
		SlowCapacity:  16,
		SlowThreshold: 50 * time.Millisecond,
		SampleRate:    1, // keep every fast request, to stress eviction
	})

	slow := RequestRecord{
		ID:       "slow-1",
		Method:   "POST",
		Path:     "/v1/link",
		Status:   200,
		Duration: 120 * time.Millisecond,
		Stages: []Stage{
			{Name: "engine", Duration: 100 * time.Millisecond},
			{Name: "blocking", Duration: 40 * time.Millisecond},
		},
	}
	errRec := RequestRecord{
		ID:     "err-1",
		Method: "POST",
		Path:   "/v1/learn",
		Status: 429,
		Reason: "overloaded",
	}
	fr.Observe(slow)
	fr.Observe(errRec)

	for i := 0; i < 10000; i++ {
		fr.Observe(fastRec(i))
	}

	got := fr.Snapshot(RecordFilter{MinDuration: 50 * time.Millisecond, N: 1000})
	if len(got) != 1 || got[0].ID != "slow-1" {
		t.Fatalf("slow record did not survive flood: %+v", got)
	}
	if got[0].Kind != KindSlow {
		t.Fatalf("Kind = %q, want slow", got[0].Kind)
	}
	if len(got[0].Stages) != 2 || got[0].Stages[0].Name != "engine" {
		t.Fatalf("stage breakdown lost: %+v", got[0].Stages)
	}

	errs := fr.Snapshot(RecordFilter{Status: "error", N: 1000})
	if len(errs) != 1 || errs[0].ID != "err-1" || errs[0].Reason != "overloaded" {
		t.Fatalf("error record did not survive flood: %+v", errs)
	}

	all := fr.Snapshot(RecordFilter{N: 100000})
	if len(all) > 64+16 {
		t.Fatalf("rings exceed bounds: %d records retained", len(all))
	}

	st := fr.Stats()
	if st.Seen != 10002 || st.KeptSlow != 1 || st.KeptError != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.KeptSampled != 10000 {
		t.Fatalf("sample rate 1 should keep all fast: %+v", st)
	}
}

// TestRecorderSamplingDeterminism: same seed + same observation order
// means the exact same records are kept; a different seed picks a
// different subset; the empirical rate lands near the configured one.
func TestRecorderSamplingDeterminism(t *testing.T) {
	const n = 20000
	run := func(seed uint64) []string {
		fr := NewFlightRecorder(RecorderOptions{
			Capacity:   n,
			SampleRate: 0.1,
			Seed:       seed,
		})
		for i := 0; i < n; i++ {
			fr.Observe(fastRec(i))
		}
		recs := fr.Snapshot(RecordFilter{N: n})
		ids := make([]string, len(recs))
		for i, r := range recs {
			ids[i] = r.ID
		}
		return ids
	}

	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed kept different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}

	if got := float64(len(a)) / n; got < 0.05 || got > 0.2 {
		t.Fatalf("empirical sample rate %.3f far from 0.1", got)
	}

	c := run(8)
	same := 0
	min := len(a)
	if len(c) < min {
		min = len(c)
	}
	for i := 0; i < min; i++ {
		if a[i] == c[i] {
			same++
		}
	}
	if min > 0 && same == min {
		t.Fatalf("different seeds kept identical subsets (%d records)", min)
	}
}

func TestRecorderZeroSampleRateKeepsOutliersOnly(t *testing.T) {
	fr := NewFlightRecorder(RecorderOptions{SlowThreshold: 10 * time.Millisecond})
	for i := 0; i < 1000; i++ {
		fr.Observe(fastRec(i))
	}
	fr.Observe(RequestRecord{ID: "s", Path: "/v1/link", Status: 200, Duration: 20 * time.Millisecond})
	if got := fr.Snapshot(RecordFilter{}); len(got) != 1 || got[0].ID != "s" {
		t.Fatalf("want only the slow record, got %+v", got)
	}
	if st := fr.Stats(); st.KeptSampled != 0 || st.Seen != 1001 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecorderFilters(t *testing.T) {
	fr := NewFlightRecorder(RecorderOptions{SlowThreshold: time.Millisecond})
	fr.Observe(RequestRecord{ID: "a", Path: "/v1/link", Status: 200, Duration: 5 * time.Millisecond})
	fr.Observe(RequestRecord{ID: "b", Path: "/v1/link", Status: 404, Duration: 2 * time.Millisecond})
	fr.Observe(RequestRecord{ID: "c", Path: "/v1/learn", Status: 503, Duration: 8 * time.Millisecond})

	cases := []struct {
		f    RecordFilter
		want []string // newest first
	}{
		{RecordFilter{}, []string{"c", "b", "a"}},
		{RecordFilter{Path: "/v1/link"}, []string{"b", "a"}},
		{RecordFilter{Status: "404"}, []string{"b"}},
		{RecordFilter{Status: "4xx"}, []string{"b"}},
		{RecordFilter{Status: "5xx"}, []string{"c"}},
		{RecordFilter{Status: "error"}, []string{"c", "b"}},
		{RecordFilter{MinDuration: 4 * time.Millisecond}, []string{"c", "a"}},
		{RecordFilter{N: 2}, []string{"c", "b"}},
	}
	for _, tc := range cases {
		got := fr.Snapshot(tc.f)
		if len(got) != len(tc.want) {
			t.Fatalf("filter %+v: got %d records, want %v", tc.f, len(got), tc.want)
		}
		for i, w := range tc.want {
			if got[i].ID != w {
				t.Fatalf("filter %+v: [%d] = %q, want %q", tc.f, i, got[i].ID, w)
			}
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Observe(fastRec(0))
	if got := fr.Snapshot(RecordFilter{}); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	if st := fr.Stats(); st.Seen != 0 {
		t.Fatalf("nil recorder stats = %+v", st)
	}
	if fr.SlowThreshold() != 0 {
		t.Fatal("nil recorder threshold")
	}
}

// TestRecorderConcurrent exercises concurrent observers and snapshot
// readers under -race.
func TestRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(RecorderOptions{
		Capacity:      32,
		SlowCapacity:  8,
		SlowThreshold: 10 * time.Millisecond,
		SampleRate:    0.5,
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rec := fastRec(w*10000 + i)
				if i%100 == 0 {
					rec.Duration = 20 * time.Millisecond
				}
				if i%250 == 0 {
					rec.Status = 500
				}
				fr.Observe(rec)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr.Snapshot(RecordFilter{N: 50})
				fr.Stats()
			}
		}()
	}
	wg.Wait()
	if st := fr.Stats(); st.Seen != 8000 {
		t.Fatalf("seen = %d, want 8000", st.Seen)
	}
	if got := fr.Snapshot(RecordFilter{N: 100000}); len(got) > 40 {
		t.Fatalf("rings exceed bounds: %d", len(got))
	}
}

func BenchmarkRecorderObserveFast(b *testing.B) {
	fr := NewFlightRecorder(RecorderOptions{SampleRate: 0.01})
	rec := fastRec(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Observe(rec)
	}
}
