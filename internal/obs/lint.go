package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lint checks text against the Prometheus text exposition format and
// returns every problem found (nil means clean): unparseable samples,
// illegal metric or label names, samples without HELP/TYPE metadata,
// negative counters, and histogram buckets that are non-cumulative or
// disagree with their _count. Tests use it to pin /metrics output;
// it is intentionally dependency-free like the rest of the package.
func Lint(text string) []error {
	var errs []error
	typed := map[string]string{} // family -> type
	helped := map[string]bool{}
	bucketCum := map[string]uint64{} // series key (name+labels sans le) -> last cumulative
	lastBucket := map[string]uint64{}
	counts := map[string]uint64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !validMetricName(name) {
				errs = append(errs, fmt.Errorf("line %d: bad HELP line %q", ln+1, line))
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || !validMetricName(name) {
				errs = append(errs, fmt.Errorf("line %d: bad TYPE line %q", ln+1, line))
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				errs = append(errs, fmt.Errorf("line %d: unknown type %q", ln+1, typ))
			}
			if !helped[name] {
				errs = append(errs, fmt.Errorf("line %d: TYPE before HELP for %s", ln+1, name))
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			errs = append(errs, fmt.Errorf("line %d: unknown comment %q", ln+1, line))
			continue
		}
		name, labels, value, ok := parseSampleLine(line)
		if !ok {
			errs = append(errs, fmt.Errorf("line %d: unparseable sample %q", ln+1, line))
			continue
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, found := strings.CutSuffix(name, suffix); found && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, known := typed[fam]; !known {
			errs = append(errs, fmt.Errorf("line %d: sample %s has no TYPE line", ln+1, name))
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			errs = append(errs, fmt.Errorf("line %d: bad value %q", ln+1, value))
		}
		if typed[fam] == "counter" && fam == name && v < 0 {
			errs = append(errs, fmt.Errorf("line %d: negative counter %s", ln+1, name))
		}
		if typed[fam] == "histogram" {
			key := fam + "{" + labelsWithoutLE(labels) + "}"
			switch {
			case strings.HasSuffix(name, "_bucket"):
				u := uint64(v)
				if prev, seen := bucketCum[key]; seen && u < prev {
					errs = append(errs, fmt.Errorf("line %d: non-cumulative bucket for %s", ln+1, key))
				}
				bucketCum[key] = u
				lastBucket[key] = u
			case strings.HasSuffix(name, "_count"):
				counts[key] = uint64(v)
			}
		}
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if lastBucket[key] != counts[key] {
			errs = append(errs, fmt.Errorf("%s: +Inf bucket %d != count %d", key, lastBucket[key], counts[key]))
		}
	}
	return errs
}

// parseSampleLine splits `name{labels} value` (labels optional),
// validating the metric name and label pair syntax.
func parseSampleLine(line string) (name, labels, value string, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", "", false
	}
	series, value := line[:sp], line[sp+1:]
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", "", "", false
		}
		name, labels = series[:i], series[i+1:len(series)-1]
		rest := labels
		for rest != "" {
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 || !validLabelName(rest[:eq]) {
				return "", "", "", false
			}
			rest = rest[eq+1:]
			if len(rest) < 2 || rest[0] != '"' {
				return "", "", "", false
			}
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return "", "", "", false
			}
			rest = rest[end+1:]
			if rest != "" {
				if rest[0] != ',' {
					return "", "", "", false
				}
				rest = rest[1:]
			}
		}
	} else {
		name = series
	}
	return name, labels, value, validMetricName(name)
}

// labelsWithoutLE strips the le pair so bucket series group by child.
func labelsWithoutLE(labels string) string {
	var kept []string
	for _, part := range splitLabelPairs(labels) {
		if !strings.HasPrefix(part, `le="`) {
			kept = append(kept, part)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, ",")
}

// splitLabelPairs splits `a="1",b="2"` into pairs, respecting escaped
// quotes inside values.
func splitLabelPairs(labels string) []string {
	var out []string
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			out = append(out, rest)
			break
		}
		end := eq + 2
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			out = append(out, rest)
			break
		}
		out = append(out, rest[:end+1])
		rest = rest[end+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return out
}
