package blocking

import (
	"fmt"
	"testing"
)

func TestCanopyGroupsSimilarKeys(t *testing.T) {
	ext := []Record{
		{ID: "e0", Key: "CRCW0805-100"},
		{ID: "e1", Key: "TANT-T83-330"},
	}
	loc := []Record{
		{ID: "l0", Key: "CRCW0805.100"},
		{ID: "l1", Key: "TANT/T83/330"},
		{ID: "l2", Key: "ZZZZZZZZZ"},
	}
	pairs := Canopy{Loose: 0.4, Tight: 0.8}.Pairs(ext, loc)
	if !pairsContain(pairs, "e0", "l0") {
		t.Errorf("similar CRCW keys not canopied: %v", pairs)
	}
	if !pairsContain(pairs, "e1", "l1") {
		t.Errorf("similar TANT keys not canopied: %v", pairs)
	}
	if pairsContain(pairs, "e0", "l2") || pairsContain(pairs, "e1", "l2") {
		t.Errorf("dissimilar key canopied: %v", pairs)
	}
}

func TestCanopyDeterministic(t *testing.T) {
	var ext, loc []Record
	for i := 0; i < 30; i++ {
		ext = append(ext, Record{ID: fmt.Sprintf("e%02d", i), Key: fmt.Sprintf("KEY%03d-ABC", i%7)})
		loc = append(loc, Record{ID: fmt.Sprintf("l%02d", i), Key: fmt.Sprintf("KEY%03d.ABC", i%7)})
	}
	a := Canopy{}.Pairs(ext, loc)
	b := Canopy{}.Pairs(ext, loc)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic pair counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic pair order at %d", i)
		}
	}
}

func TestCanopyLooseThresholdWidens(t *testing.T) {
	var ext, loc []Record
	for i := 0; i < 20; i++ {
		ext = append(ext, Record{ID: fmt.Sprintf("e%02d", i), Key: fmt.Sprintf("PART%04d", i*37)})
		loc = append(loc, Record{ID: fmt.Sprintf("l%02d", i), Key: fmt.Sprintf("PART%04d", i*37+1)})
	}
	strict := Canopy{Loose: 0.9, Tight: 0.95}.Pairs(ext, loc)
	lenient := Canopy{Loose: 0.3, Tight: 0.95}.Pairs(ext, loc)
	if len(lenient) <= len(strict) {
		t.Errorf("loose threshold did not widen: strict=%d lenient=%d", len(strict), len(lenient))
	}
}

func TestCanopyEmptyKeysProduceNothing(t *testing.T) {
	ext := []Record{{ID: "e0", Key: ""}}
	loc := []Record{{ID: "l0", Key: ""}}
	if pairs := (Canopy{}).Pairs(ext, loc); len(pairs) != 0 {
		t.Errorf("empty keys paired: %v", pairs)
	}
}

func TestCanopyName(t *testing.T) {
	if got := (Canopy{}).Name(); got != "canopy(q=2,loose=0.40,tight=0.70)" {
		t.Errorf("Name = %q", got)
	}
}

func TestDiceOverlapEdgeCases(t *testing.T) {
	if got := diceOverlap(nil, nil); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	a := map[string]struct{}{"ab": {}}
	if got := diceOverlap(a, nil); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := diceOverlap(a, a); got != 1 {
		t.Errorf("identical = %v", got)
	}
}
