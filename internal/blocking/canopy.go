package blocking

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/similarity"
)

// Canopy implements canopy clustering (McCallum, Nigam & Ungar 2000) as
// a candidate-generation method: records are grouped into overlapping
// canopies using a cheap q-gram similarity; records inside the loose
// threshold of a canopy center join the canopy, and records inside the
// tight threshold stop being centers themselves. Cross-source pairs
// inside each canopy become candidates.
//
// The classic algorithm picks random centers; this implementation scans
// records in deterministic ID order so runs are reproducible.
type Canopy struct {
	// Loose is the canopy-membership threshold; 0 means 0.4.
	Loose float64
	// Tight is the center-removal threshold (must be >= Loose to have
	// effect); 0 means 0.7.
	Tight float64
	// Q is the gram size of the cheap similarity; 0 means 2.
	Q int
	// Workers fans the per-record gram-set computation out across
	// goroutines; 0 means all cores, 1 forces serial. The canopy scan
	// itself stays sequential (it is stateful in the set of active
	// centers), so results are identical for every worker count.
	Workers int
}

func (c Canopy) params() (loose, tight float64, q int) {
	loose, tight, q = c.Loose, c.Tight, c.Q
	if loose == 0 {
		loose = 0.4
	}
	if tight == 0 {
		tight = 0.7
	}
	if q == 0 {
		q = 2
	}
	return loose, tight, q
}

// canopyEntry is a record with its gram set, tagged by source.
type canopyEntry struct {
	id       string
	external bool
	grams    map[string]struct{}
}

// scan runs the canopy algorithm and calls yield for every cross-source
// pair, globally deduplicated (overlapping canopies revisit pairs), in a
// deterministic order. It is the shared engine behind PairsCtx and
// Stream. A cancelled ctx stops between centers with ctx.Err(); yield
// returning false stops cleanly.
func (c Canopy) scan(ctx context.Context, external, local []Record, yield func(Pair) bool) error {
	loose, tight, q := c.params()

	entryFor := func(ext bool) func(Record) (canopyEntry, bool) {
		return func(r Record) (canopyEntry, bool) {
			return canopyEntry{id: r.ID, external: ext, grams: gramSet(r.Key, q)}, true
		}
	}
	extEntries, err := par.MapChunks(ctx, c.Workers, 0, external, entryFor(true))
	if err != nil {
		return err
	}
	locEntries, err := par.MapChunks(ctx, c.Workers, 0, local, entryFor(false))
	if err != nil {
		return err
	}
	entries := make([]canopyEntry, 0, len(external)+len(local))
	entries = append(entries, extEntries...)
	entries = append(entries, locEntries...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].external != entries[j].external {
			return entries[i].external
		}
		return entries[i].id < entries[j].id
	})

	// Inverted index gram -> entry indexes, so each center only scores
	// entries sharing at least one gram.
	index := map[string][]int{}
	for i, e := range entries {
		for g := range e.grams {
			index[g] = append(index[g], i)
		}
	}

	active := make([]bool, len(entries))
	for i := range active {
		active[i] = true
	}
	emitted := pairSet{}
	for i, center := range entries {
		if !active[i] || len(center.grams) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Collect candidates sharing grams with the center.
		seen := map[int]struct{}{}
		var canopy []int
		for g := range center.grams {
			for _, j := range index[g] {
				if _, dup := seen[j]; dup {
					continue
				}
				seen[j] = struct{}{}
				s := diceOverlap(center.grams, entries[j].grams)
				if s >= loose {
					canopy = append(canopy, j)
					if s >= tight && j != i {
						active[j] = false // close enough; never a center
					}
				}
			}
		}
		active[i] = false
		// Emit cross-source pairs within the canopy (center included).
		for _, a := range canopy {
			for _, b := range canopy {
				ea, eb := entries[a], entries[b]
				if !ea.external || eb.external {
					continue
				}
				p := Pair{A: ea.id, B: eb.id}
				if _, dup := emitted[p]; dup {
					continue
				}
				emitted[p] = struct{}{}
				if !yield(p) {
					return nil
				}
			}
		}
	}
	return nil
}

// PairsCtx is Pairs with cooperative cancellation: a cancelled ctx stops
// the gram-set fan-out and the center scan, returning ctx.Err() with no
// pairs.
func (c Canopy) PairsCtx(ctx context.Context, external, local []Record) ([]Pair, error) {
	ps := pairSet{}
	if err := c.scan(ctx, external, local, func(p Pair) bool {
		ps[p] = struct{}{}
		return true
	}); err != nil {
		return nil, err
	}
	return ps.slice(), nil
}

// Pairs implements Method.
func (c Canopy) Pairs(external, local []Record) []Pair {
	out, _ := c.PairsCtx(context.Background(), external, local)
	return out
}

// Stream implements Streamer: pairs flow through yield as canopies form.
// Canopies overlap, so a dedup set of emitted pairs is retained — the
// sorted pair slice is what Stream avoids materializing, not the set.
func (c Canopy) Stream(external, local []Record, yield func(Pair) bool) {
	_ = c.scan(context.Background(), external, local, yield)
}

// Name implements Method.
func (c Canopy) Name() string {
	loose, tight, q := c.params()
	return fmt.Sprintf("canopy(q=%d,loose=%.2f,tight=%.2f)", q, loose, tight)
}

func gramSet(key string, q int) map[string]struct{} {
	grams := similarity.QGrams(key, q)
	set := make(map[string]struct{}, len(grams))
	for _, g := range grams {
		set[g] = struct{}{}
	}
	return set
}

// diceOverlap is the Dice coefficient of two gram sets.
func diceOverlap(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for g := range a {
		if _, ok := b[g]; ok {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

var _ Streamer = Canopy{}
