package blocking

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func recs(prefix string, keys ...string) []Record {
	out := make([]Record, len(keys))
	for i, k := range keys {
		out[i] = Record{ID: fmt.Sprintf("%s%d", prefix, i), Key: k}
	}
	return out
}

func pairsContain(pairs []Pair, a, b string) bool {
	for _, p := range pairs {
		if p.A == a && p.B == b {
			return true
		}
	}
	return false
}

func TestCartesian(t *testing.T) {
	ext := recs("e", "x", "y")
	loc := recs("l", "p", "q", "r")
	pairs := Cartesian{}.Pairs(ext, loc)
	if len(pairs) != 6 {
		t.Fatalf("cartesian pairs = %d, want 6", len(pairs))
	}
	if !pairsContain(pairs, "e1", "l2") {
		t.Error("missing pair e1/l2")
	}
}

func TestStandardBlocking(t *testing.T) {
	ext := recs("e", "smith john", "smyth jane", "jones bob")
	loc := recs("l", "smith j", "jones robert", "wilson x")
	pairs := Standard{Key: PrefixKey(5)}.Pairs(ext, loc)
	if !pairsContain(pairs, "e0", "l0") {
		t.Error("smith/smith pair missing")
	}
	if !pairsContain(pairs, "e2", "l1") {
		t.Error("jones/jones pair missing")
	}
	if pairsContain(pairs, "e1", "l0") {
		t.Error("smyth/smith should be in different prefix5 blocks")
	}
	if len(pairs) != 2 {
		t.Errorf("pairs = %v, want exactly 2", pairs)
	}
}

func TestStandardBlockingEmptyKeyGeneratesNothing(t *testing.T) {
	ext := recs("e", "", "  ")
	loc := recs("l", "", "abc")
	pairs := Standard{}.Pairs(ext, loc)
	if len(pairs) != 0 {
		t.Errorf("pairs = %v, want none for empty keys", pairs)
	}
}

func TestPrefixKey(t *testing.T) {
	k := PrefixKey(3)
	if got := k("ABCDEF"); got != "abc" {
		t.Errorf("PrefixKey = %q, want abc", got)
	}
	if got := k("ab"); got != "ab" {
		t.Errorf("PrefixKey short = %q", got)
	}
	if got := k(" héllo "); got != "hél" {
		t.Errorf("PrefixKey unicode = %q", got)
	}
}

func TestSortedNeighborhood(t *testing.T) {
	// Keys sort as: a1(e0) a2(l0) a3(e1) z9(l1)
	ext := []Record{{ID: "e0", Key: "a1"}, {ID: "e1", Key: "a3"}}
	loc := []Record{{ID: "l0", Key: "a2"}, {ID: "l1", Key: "z9"}}
	pairs := SortedNeighborhood{Window: 2}.Pairs(ext, loc)
	if !pairsContain(pairs, "e0", "l0") || !pairsContain(pairs, "e1", "l0") {
		t.Errorf("window-2 pairs = %v", pairs)
	}
	if pairsContain(pairs, "e0", "l1") {
		t.Error("window-2 paired distant records")
	}
	// Window 4 covers everything.
	pairs4 := SortedNeighborhood{Window: 4}.Pairs(ext, loc)
	if len(pairs4) != 4 {
		t.Errorf("window-4 pairs = %v, want all 4 cross pairs", pairs4)
	}
}

func TestSortedNeighborhoodWindowClamp(t *testing.T) {
	ext := []Record{{ID: "e0", Key: "a"}}
	loc := []Record{{ID: "l0", Key: "a"}}
	pairs := SortedNeighborhood{Window: 0}.Pairs(ext, loc)
	if len(pairs) != 1 {
		t.Errorf("clamped window produced %v", pairs)
	}
	if got := (SortedNeighborhood{}).Name(); got != "sorted-neighborhood(w=2)" {
		t.Errorf("Name = %q", got)
	}
}

func TestSortedNeighborhoodNoSameSourcePairs(t *testing.T) {
	ext := recs("e", "k1", "k2", "k3")
	pairs := SortedNeighborhood{Window: 3}.Pairs(ext, nil)
	if len(pairs) != 0 {
		t.Errorf("same-source pairs generated: %v", pairs)
	}
}

func TestAdaptiveSortedNeighborhood(t *testing.T) {
	// Two clusters of similar keys far apart.
	ext := []Record{{ID: "e0", Key: "crcw0805"}, {ID: "e1", Key: "tant83"}}
	loc := []Record{{ID: "l0", Key: "crcw0812"}, {ID: "l1", Key: "tant99"}}
	pairs := AdaptiveSortedNeighborhood{Threshold: 0.85}.Pairs(ext, loc)
	if !pairsContain(pairs, "e0", "l0") {
		t.Errorf("crcw cluster not paired: %v", pairs)
	}
	if !pairsContain(pairs, "e1", "l1") {
		t.Errorf("tant cluster not paired: %v", pairs)
	}
	if pairsContain(pairs, "e0", "l1") || pairsContain(pairs, "e1", "l0") {
		t.Errorf("cross-cluster pair generated: %v", pairs)
	}
}

func TestAdaptiveMaxBlockCap(t *testing.T) {
	// All-identical keys would grow one unbounded block; the cap splits it.
	var ext, loc []Record
	for i := 0; i < 50; i++ {
		ext = append(ext, Record{ID: fmt.Sprintf("e%02d", i), Key: "same"})
		loc = append(loc, Record{ID: fmt.Sprintf("l%02d", i), Key: "same"})
	}
	capped := AdaptiveSortedNeighborhood{MaxBlock: 10}.Pairs(ext, loc)
	uncapped := AdaptiveSortedNeighborhood{MaxBlock: 1000}.Pairs(ext, loc)
	if len(capped) >= len(uncapped) {
		t.Errorf("cap did not reduce pairs: %d vs %d", len(capped), len(uncapped))
	}
	if len(uncapped) != 2500 {
		t.Errorf("uncapped identical-key pairs = %d, want 2500", len(uncapped))
	}
}

func TestBigramIndexKeys(t *testing.T) {
	bg := Bigram{Threshold: 1.0}
	keys := bg.indexKeys("ab")
	// threshold 1.0 => single sub-list = full sorted gram list.
	if len(keys) != 1 {
		t.Fatalf("threshold-1 keys = %v, want 1", keys)
	}
	lower := bg.indexKeys("AB")
	if keys[0] != lower[0] {
		t.Error("bigram keys are case-sensitive")
	}
	if got := bg.indexKeys(""); got != nil {
		t.Errorf("indexKeys(\"\") = %v", got)
	}
	// Lower threshold produces more keys (deletion variants).
	loose := Bigram{Threshold: 0.6}.indexKeys("abcdef")
	strict := Bigram{Threshold: 1.0}.indexKeys("abcdef")
	if len(loose) <= len(strict) {
		t.Errorf("loose threshold keys %d <= strict %d", len(loose), len(strict))
	}
}

func TestBigramPairsTolerateTypos(t *testing.T) {
	ext := []Record{{ID: "e0", Key: "CRCW0805"}}
	loc := []Record{{ID: "l0", Key: "CRCW0805"}, {ID: "l1", Key: "CRCW08O5"}, {ID: "l2", Key: "ZZZZZZ"}}
	pairs := Bigram{Threshold: 0.7}.Pairs(ext, loc)
	if !pairsContain(pairs, "e0", "l0") {
		t.Errorf("exact key not paired: %v", pairs)
	}
	if !pairsContain(pairs, "e0", "l1") {
		t.Errorf("near key not paired at t=0.7: %v", pairs)
	}
	if pairsContain(pairs, "e0", "l2") {
		t.Errorf("unrelated key paired: %v", pairs)
	}
}

func TestBigramSublistCap(t *testing.T) {
	bg := Bigram{Threshold: 0.3, MaxSublists: 5}
	keys := bg.indexKeys("abcdefghijklmnop")
	if len(keys) > 5 {
		t.Errorf("cap exceeded: %d keys", len(keys))
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{Candidates: 100, TotalSpace: 1000, TrueMatches: 50, CoveredMatches: 40}
	if got := m.ReductionRatio(); got != 0.9 {
		t.Errorf("ReductionRatio = %v", got)
	}
	if got := m.PairsCompleteness(); got != 0.8 {
		t.Errorf("PairsCompleteness = %v", got)
	}
	if got := m.PairsQuality(); got != 0.4 {
		t.Errorf("PairsQuality = %v", got)
	}
	var zero Metrics
	if zero.ReductionRatio() != 0 || zero.PairsCompleteness() != 0 || zero.PairsQuality() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
	if !strings.Contains(m.String(), "candidates=100") {
		t.Errorf("String = %q", m.String())
	}
}

func TestEvaluate(t *testing.T) {
	ext := recs("e", "alpha", "beta")
	loc := recs("l", "alpha", "gamma")
	truth := []Pair{{A: "e0", B: "l0"}, {A: "e1", B: "l1"}}
	m := Evaluate(Standard{Key: PrefixKey(5)}, ext, loc, truth)
	if m.TotalSpace != 4 {
		t.Errorf("TotalSpace = %d", m.TotalSpace)
	}
	if m.CoveredMatches != 1 {
		t.Errorf("CoveredMatches = %d, want 1 (only alpha/alpha in same block)", m.CoveredMatches)
	}
	if m.TrueMatches != 2 {
		t.Errorf("TrueMatches = %d", m.TrueMatches)
	}
}

// Property: every method returns only cross-source pairs that exist in
// the input id sets, without duplicates, and never more than the
// cartesian bound.
func TestMethodsWellFormedProperty(t *testing.T) {
	methods := []Method{
		Cartesian{},
		Standard{},
		SortedNeighborhood{Window: 3},
		AdaptiveSortedNeighborhood{},
		Bigram{Threshold: 0.8, MaxSublists: 16},
	}
	f := func(extKeys, locKeys []string) bool {
		if len(extKeys) > 12 {
			extKeys = extKeys[:12]
		}
		if len(locKeys) > 12 {
			locKeys = locKeys[:12]
		}
		ext := recs("e", extKeys...)
		loc := recs("l", locKeys...)
		extIDs := map[string]struct{}{}
		for _, r := range ext {
			extIDs[r.ID] = struct{}{}
		}
		locIDs := map[string]struct{}{}
		for _, r := range loc {
			locIDs[r.ID] = struct{}{}
		}
		for _, m := range methods {
			pairs := m.Pairs(ext, loc)
			if len(pairs) > len(ext)*len(loc) {
				return false
			}
			seen := map[Pair]struct{}{}
			for _, p := range pairs {
				if _, ok := extIDs[p.A]; !ok {
					return false
				}
				if _, ok := locIDs[p.B]; !ok {
					return false
				}
				if _, dup := seen[p]; dup {
					return false
				}
				seen[p] = struct{}{}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: standard blocking with identical keys always covers the
// diagonal truth, so pairs completeness is 1.
func TestStandardCompletenessOnCleanKeys(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%20) + 1
		var ext, loc []Record
		var truth []Pair
		for i := 0; i < size; i++ {
			key := fmt.Sprintf("key%04d", i)
			ext = append(ext, Record{ID: fmt.Sprintf("e%d", i), Key: key})
			loc = append(loc, Record{ID: fmt.Sprintf("l%d", i), Key: key})
			truth = append(truth, Pair{A: fmt.Sprintf("e%d", i), B: fmt.Sprintf("l%d", i)})
		}
		m := Evaluate(Standard{Key: PrefixKey(7)}, ext, loc, truth)
		return m.PairsCompleteness() == 1
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
