package blocking

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/similarity"
)

// SortedNeighborhood implements the sorted-neighbourhood method: all
// records (both sources) are sorted by a sorting key and a fixed-size
// window slides over the sorted list; cross-source records co-resident in
// a window become candidates.
type SortedNeighborhood struct {
	// Window is the sliding window size (number of records); values < 2
	// are treated as 2 (a window of 1 can never pair anything).
	Window int
	// Key derives the sorting key; nil uses the record key lower-cased.
	Key KeyFunc
}

// sortedEntry tags each record with its source for the merged sort.
type sortedEntry struct {
	id       string
	key      string
	external bool
}

func mergedSorted(external, local []Record, key KeyFunc) []sortedEntry {
	if key == nil {
		key = func(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
	}
	entries := make([]sortedEntry, 0, len(external)+len(local))
	for _, r := range external {
		entries = append(entries, sortedEntry{id: r.ID, key: key(r.Key), external: true})
	}
	for _, r := range local {
		entries = append(entries, sortedEntry{id: r.ID, key: key(r.Key), external: false})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		// Stable tie-break: externals before locals, then by id.
		if entries[i].external != entries[j].external {
			return entries[i].external
		}
		return entries[i].id < entries[j].id
	})
	return entries
}

// Pairs implements Method.
func (sn SortedNeighborhood) Pairs(external, local []Record) []Pair {
	w := sn.Window
	if w < 2 {
		w = 2
	}
	entries := mergedSorted(external, local, sn.Key)
	ps := pairSet{}
	for i := range entries {
		hi := i + w
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			a, b := entries[i], entries[j]
			switch {
			case a.external && !b.external:
				ps.add(a.id, b.id)
			case !a.external && b.external:
				ps.add(b.id, a.id)
			}
		}
	}
	return ps.slice()
}

// Name implements Method.
func (sn SortedNeighborhood) Name() string {
	w := sn.Window
	if w < 2 {
		w = 2
	}
	return fmt.Sprintf("sorted-neighborhood(w=%d)", w)
}

// AdaptiveSortedNeighborhood grows blocks instead of sliding a fixed
// window (Yan et al. 2007): consecutive sorted records stay in the same
// block while their keys remain similar; a similarity drop below the
// threshold starts a new block. Candidates are cross-source pairs within
// each block.
type AdaptiveSortedNeighborhood struct {
	// Threshold is the key-similarity boundary in [0,1]; 0 means 0.8.
	Threshold float64
	// MaxBlock caps block size as a safety net against degenerate key
	// distributions; 0 means 64.
	MaxBlock int
	// Key derives the sorting key; nil uses the record key lower-cased.
	Key KeyFunc
	// Sim scores adjacent keys; nil means Jaro-Winkler.
	Sim similarity.Measure
}

// Pairs implements Method.
func (asn AdaptiveSortedNeighborhood) Pairs(external, local []Record) []Pair {
	threshold := asn.Threshold
	if threshold == 0 {
		threshold = 0.8
	}
	maxBlock := asn.MaxBlock
	if maxBlock == 0 {
		maxBlock = 64
	}
	sim := asn.Sim
	if sim == nil {
		sim = similarity.JaroWinkler{}
	}
	entries := mergedSorted(external, local, asn.Key)
	ps := pairSet{}
	emit := func(block []sortedEntry) {
		for i := range block {
			for j := i + 1; j < len(block); j++ {
				a, b := block[i], block[j]
				switch {
				case a.external && !b.external:
					ps.add(a.id, b.id)
				case !a.external && b.external:
					ps.add(b.id, a.id)
				}
			}
		}
	}
	var block []sortedEntry
	for i, e := range entries {
		if len(block) == 0 {
			block = append(block, e)
			continue
		}
		if len(block) >= maxBlock || sim.Similarity(entries[i-1].key, e.key) < threshold {
			emit(block)
			block = block[:0]
		}
		block = append(block, e)
	}
	emit(block)
	return ps.slice()
}

// Name implements Method.
func (asn AdaptiveSortedNeighborhood) Name() string {
	threshold := asn.Threshold
	if threshold == 0 {
		threshold = 0.8
	}
	return fmt.Sprintf("adaptive-sn(t=%.2f)", threshold)
}

var (
	_ Method = SortedNeighborhood{}
	_ Method = AdaptiveSortedNeighborhood{}
)
