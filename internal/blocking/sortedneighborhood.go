package blocking

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/par"
	"repro/internal/similarity"
)

// SortedNeighborhood implements the sorted-neighbourhood method: all
// records (both sources) are sorted by a sorting key and a fixed-size
// window slides over the sorted list; cross-source records co-resident in
// a window become candidates.
type SortedNeighborhood struct {
	// Window is the sliding window size (number of records); values < 2
	// are treated as 2 (a window of 1 can never pair anything).
	Window int
	// Key derives the sorting key; nil uses the record key lower-cased.
	Key KeyFunc
	// Workers fans the per-record key derivation out across goroutines;
	// 0 means all cores, 1 forces serial. The candidate set is identical
	// for every worker count (the merged sort stays sequential).
	Workers int
}

// sortedEntry tags each record with its source for the merged sort.
type sortedEntry struct {
	id       string
	key      string
	external bool
}

func mergedSorted(external, local []Record, key KeyFunc, workers int) []sortedEntry {
	if key == nil {
		key = func(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
	}
	entryFor := func(ext bool) func(Record) (sortedEntry, bool) {
		return func(r Record) (sortedEntry, bool) {
			return sortedEntry{id: r.ID, key: key(r.Key), external: ext}, true
		}
	}
	ctx := context.Background()
	extEntries, _ := par.MapChunks(ctx, workers, 0, external, entryFor(true))
	locEntries, _ := par.MapChunks(ctx, workers, 0, local, entryFor(false))
	entries := make([]sortedEntry, 0, len(external)+len(local))
	entries = append(entries, extEntries...)
	entries = append(entries, locEntries...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		// Stable tie-break: externals before locals, then by id.
		if entries[i].external != entries[j].external {
			return entries[i].external
		}
		return entries[i].id < entries[j].id
	})
	return entries
}

// crossPair orients two window-mates as an (external, local) pair,
// reporting false for same-source mates.
func crossPair(a, b sortedEntry) (Pair, bool) {
	switch {
	case a.external && !b.external:
		return Pair{A: a.id, B: b.id}, true
	case !a.external && b.external:
		return Pair{A: b.id, B: a.id}, true
	default:
		return Pair{}, false
	}
}

// Pairs implements Method, by draining Stream into the deduplicated
// sorted pair set — one implementation, two consumption modes, matching
// Standard.
func (sn SortedNeighborhood) Pairs(external, local []Record) []Pair {
	ps := pairSet{}
	sn.Stream(external, local, func(p Pair) bool {
		ps[p] = struct{}{}
		return true
	})
	return ps.slice()
}

// Stream implements Streamer: the window slides over the merged sorted
// list and cross-source pairs flow through yield without the pair set
// materializing. Each unordered entry pair co-resides in exactly one
// window start, so every pair is emitted exactly once (records with
// distinct IDs), in sorted-list order.
func (sn SortedNeighborhood) Stream(external, local []Record, yield func(Pair) bool) {
	w := sn.Window
	if w < 2 {
		w = 2
	}
	entries := mergedSorted(external, local, sn.Key, sn.Workers)
	for i := range entries {
		hi := i + w
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			if p, ok := crossPair(entries[i], entries[j]); ok {
				if !yield(p) {
					return
				}
			}
		}
	}
}

// Name implements Method.
func (sn SortedNeighborhood) Name() string {
	w := sn.Window
	if w < 2 {
		w = 2
	}
	return fmt.Sprintf("sorted-neighborhood(w=%d)", w)
}

// AdaptiveSortedNeighborhood grows blocks instead of sliding a fixed
// window (Yan et al. 2007): consecutive sorted records stay in the same
// block while their keys remain similar; a similarity drop below the
// threshold starts a new block. Candidates are cross-source pairs within
// each block.
type AdaptiveSortedNeighborhood struct {
	// Threshold is the key-similarity boundary in [0,1]; 0 means 0.8.
	Threshold float64
	// MaxBlock caps block size as a safety net against degenerate key
	// distributions; 0 means 64.
	MaxBlock int
	// Key derives the sorting key; nil uses the record key lower-cased.
	Key KeyFunc
	// Sim scores adjacent keys; nil means Jaro-Winkler.
	Sim similarity.Measure
	// Workers fans the per-record key derivation out across goroutines;
	// 0 means all cores, 1 forces serial.
	Workers int
}

// Pairs implements Method, by draining Stream like SortedNeighborhood.
func (asn AdaptiveSortedNeighborhood) Pairs(external, local []Record) []Pair {
	ps := pairSet{}
	asn.Stream(external, local, func(p Pair) bool {
		ps[p] = struct{}{}
		return true
	})
	return ps.slice()
}

// Stream implements Streamer: blocks are disjoint spans of the sorted
// list, so each cross-source pair flows through yield exactly once.
func (asn AdaptiveSortedNeighborhood) Stream(external, local []Record, yield func(Pair) bool) {
	threshold := asn.Threshold
	if threshold == 0 {
		threshold = 0.8
	}
	maxBlock := asn.MaxBlock
	if maxBlock == 0 {
		maxBlock = 64
	}
	sim := asn.Sim
	if sim == nil {
		sim = similarity.JaroWinkler{}
	}
	entries := mergedSorted(external, local, asn.Key, asn.Workers)
	emit := func(block []sortedEntry) bool {
		for i := range block {
			for j := i + 1; j < len(block); j++ {
				if p, ok := crossPair(block[i], block[j]); ok {
					if !yield(p) {
						return false
					}
				}
			}
		}
		return true
	}
	var block []sortedEntry
	for i, e := range entries {
		if len(block) == 0 {
			block = append(block, e)
			continue
		}
		if len(block) >= maxBlock || sim.Similarity(entries[i-1].key, e.key) < threshold {
			if !emit(block) {
				return
			}
			block = block[:0]
		}
		block = append(block, e)
	}
	emit(block)
}

// Name implements Method.
func (asn AdaptiveSortedNeighborhood) Name() string {
	threshold := asn.Threshold
	if threshold == 0 {
		threshold = 0.8
	}
	return fmt.Sprintf("adaptive-sn(t=%.2f)", threshold)
}

var (
	_ Streamer = SortedNeighborhood{}
	_ Streamer = AdaptiveSortedNeighborhood{}
)
