package blocking

import (
	"fmt"
	"reflect"
	"testing"
)

func parallelFixture(nExt, nLoc int) (ext, loc []Record) {
	for i := 0; i < nExt; i++ {
		ext = append(ext, Record{ID: fmt.Sprintf("e%d", i), Key: fmt.Sprintf("CRCW%04d-%dV", i%97, i%13)})
	}
	for i := 0; i < nLoc; i++ {
		loc = append(loc, Record{ID: fmt.Sprintf("l%d", i), Key: fmt.Sprintf("CRCW%04d-%dV", i%89, i%13)})
	}
	return ext, loc
}

// TestBigramParallelDeterminism asserts the fanned-out sub-list
// computation yields the exact candidate set of the serial method at
// every worker count.
func TestBigramParallelDeterminism(t *testing.T) {
	ext, loc := parallelFixture(300, 400)
	want := Bigram{Threshold: 0.8, MaxSublists: 16, Workers: 1}.Pairs(ext, loc)
	if len(want) == 0 {
		t.Fatal("degenerate fixture")
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got := Bigram{Threshold: 0.8, MaxSublists: 16, Workers: workers}.Pairs(ext, loc)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Bigram workers=%d: %d pairs, serial %d", workers, len(got), len(want))
		}
	}
}

// TestCanopyParallelDeterminism does the same for the canopy method's
// parallel gram-set phase.
func TestCanopyParallelDeterminism(t *testing.T) {
	ext, loc := parallelFixture(250, 350)
	want := Canopy{Workers: 1}.Pairs(ext, loc)
	if len(want) == 0 {
		t.Fatal("degenerate fixture")
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got := Canopy{Workers: workers}.Pairs(ext, loc)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Canopy workers=%d: %d pairs, serial %d", workers, len(got), len(want))
		}
	}
}

// TestStreamMatchesPairs checks that the streaming sources emit exactly
// the pair set of the materialized method, each pair once.
func TestStreamMatchesPairs(t *testing.T) {
	ext, loc := parallelFixture(40, 60)
	for _, m := range []Streamer{Cartesian{}, Standard{Key: PrefixKey(6)}} {
		want := m.Pairs(ext, loc)
		var got []Pair
		seen := map[Pair]struct{}{}
		m.Stream(ext, loc, func(p Pair) bool {
			if _, dup := seen[p]; dup {
				t.Fatalf("%s: pair %v emitted twice", m.Name(), p)
			}
			seen[p] = struct{}{}
			got = append(got, p)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d pairs, materialized %d", m.Name(), len(got), len(want))
		}
		wantSet := make(map[Pair]struct{}, len(want))
		for _, p := range want {
			wantSet[p] = struct{}{}
		}
		for _, p := range got {
			if _, ok := wantSet[p]; !ok {
				t.Fatalf("%s: streamed pair %v not in materialized set", m.Name(), p)
			}
		}
	}
}

// TestStreamEarlyStop checks yield=false stops the sources immediately.
func TestStreamEarlyStop(t *testing.T) {
	ext, loc := parallelFixture(40, 60)
	for _, m := range []Streamer{Cartesian{}, Standard{Key: PrefixKey(6)}} {
		n := 0
		m.Stream(ext, loc, func(Pair) bool {
			n++
			return n < 5
		})
		if n != 5 {
			t.Errorf("%s: yielded %d pairs after stop at 5", m.Name(), n)
		}
	}
}
