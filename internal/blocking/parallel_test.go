package blocking

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

func parallelFixture(nExt, nLoc int) (ext, loc []Record) {
	for i := 0; i < nExt; i++ {
		ext = append(ext, Record{ID: fmt.Sprintf("e%d", i), Key: fmt.Sprintf("CRCW%04d-%dV", i%97, i%13)})
	}
	for i := 0; i < nLoc; i++ {
		loc = append(loc, Record{ID: fmt.Sprintf("l%d", i), Key: fmt.Sprintf("CRCW%04d-%dV", i%89, i%13)})
	}
	return ext, loc
}

// TestBigramParallelDeterminism asserts the fanned-out sub-list
// computation yields the exact candidate set of the serial method at
// every worker count.
func TestBigramParallelDeterminism(t *testing.T) {
	ext, loc := parallelFixture(300, 400)
	want := Bigram{Threshold: 0.8, MaxSublists: 16, Workers: 1}.Pairs(ext, loc)
	if len(want) == 0 {
		t.Fatal("degenerate fixture")
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got := Bigram{Threshold: 0.8, MaxSublists: 16, Workers: workers}.Pairs(ext, loc)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Bigram workers=%d: %d pairs, serial %d", workers, len(got), len(want))
		}
	}
}

// TestCanopyParallelDeterminism does the same for the canopy method's
// parallel gram-set phase.
func TestCanopyParallelDeterminism(t *testing.T) {
	ext, loc := parallelFixture(250, 350)
	want := Canopy{Workers: 1}.Pairs(ext, loc)
	if len(want) == 0 {
		t.Fatal("degenerate fixture")
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got := Canopy{Workers: workers}.Pairs(ext, loc)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Canopy workers=%d: %d pairs, serial %d", workers, len(got), len(want))
		}
	}
}

// allStreamers is every blocking method that can feed a streaming
// matcher (linkage.IDPairSource).
func allStreamers() []Streamer {
	return []Streamer{
		Cartesian{},
		Standard{Key: PrefixKey(6)},
		SortedNeighborhood{Window: 5},
		AdaptiveSortedNeighborhood{Threshold: 0.85},
		Bigram{Threshold: 0.8, MaxSublists: 16},
		Canopy{},
	}
}

// TestSortedNeighborhoodParallelDeterminism asserts the fanned-out key
// derivation yields the exact candidate set of the serial method at
// every worker count.
func TestSortedNeighborhoodParallelDeterminism(t *testing.T) {
	ext, loc := parallelFixture(300, 400)
	want := SortedNeighborhood{Window: 5, Workers: 1}.Pairs(ext, loc)
	if len(want) == 0 {
		t.Fatal("degenerate fixture")
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got := SortedNeighborhood{Window: 5, Workers: workers}.Pairs(ext, loc)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("SortedNeighborhood workers=%d: %d pairs, serial %d", workers, len(got), len(want))
		}
	}
}

// TestPairsCtxCancellation asserts the cancellable variants observe a
// dead context instead of discarding it the way Pairs must.
func TestPairsCtxCancellation(t *testing.T) {
	ext, loc := parallelFixture(200, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Bigram{Threshold: 0.8, MaxSublists: 16}).PairsCtx(ctx, ext, loc); err != context.Canceled {
		t.Errorf("Bigram.PairsCtx(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := (Canopy{}).PairsCtx(ctx, ext, loc); err != context.Canceled {
		t.Errorf("Canopy.PairsCtx(cancelled) err = %v, want context.Canceled", err)
	}
	// A live context returns the full pair set.
	got, err := (Bigram{Threshold: 0.8, MaxSublists: 16}).PairsCtx(context.Background(), ext, loc)
	if err != nil {
		t.Fatal(err)
	}
	want := Bigram{Threshold: 0.8, MaxSublists: 16}.Pairs(ext, loc)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PairsCtx(live) returned %d pairs, Pairs %d", len(got), len(want))
	}
}

// TestStreamMatchesPairs checks that the streaming sources emit exactly
// the pair set of the materialized method, each pair once.
func TestStreamMatchesPairs(t *testing.T) {
	ext, loc := parallelFixture(40, 60)
	for _, m := range allStreamers() {
		want := m.Pairs(ext, loc)
		var got []Pair
		seen := map[Pair]struct{}{}
		m.Stream(ext, loc, func(p Pair) bool {
			if _, dup := seen[p]; dup {
				t.Fatalf("%s: pair %v emitted twice", m.Name(), p)
			}
			seen[p] = struct{}{}
			got = append(got, p)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d pairs, materialized %d", m.Name(), len(got), len(want))
		}
		wantSet := make(map[Pair]struct{}, len(want))
		for _, p := range want {
			wantSet[p] = struct{}{}
		}
		for _, p := range got {
			if _, ok := wantSet[p]; !ok {
				t.Fatalf("%s: streamed pair %v not in materialized set", m.Name(), p)
			}
		}
	}
}

// TestStreamEarlyStop checks yield=false stops the sources immediately.
func TestStreamEarlyStop(t *testing.T) {
	ext, loc := parallelFixture(40, 60)
	for _, m := range allStreamers() {
		if len(m.Pairs(ext, loc)) < 5 {
			continue // not enough pairs on this fixture to exercise the stop
		}
		n := 0
		m.Stream(ext, loc, func(Pair) bool {
			n++
			return n < 5
		})
		if n != 5 {
			t.Errorf("%s: yielded %d pairs after stop at 5", m.Name(), n)
		}
	}
}
