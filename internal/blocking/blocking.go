// Package blocking implements the classical comparison-reduction baselines
// the paper's related-work section cites: standard key blocking (Jaro),
// sorted neighbourhood (Hernández/Stolfo, adaptive per Yan et al.) and
// bi-gram indexing (Baxter/Christen/Churches), plus the naive cartesian
// bound and the quality metrics used to compare them (reduction ratio,
// pairs completeness, pairs quality).
//
// All methods operate on two record sets — external (left) and local
// (right) — and emit cross-source candidate pairs only, matching the
// paper's setting of integrating an external source into a catalog.
package blocking

import "sort"

// Record is one data item presented to a blocking method: an opaque
// identifier plus the value of the blocking key attribute.
type Record struct {
	ID  string
	Key string
}

// Pair is a candidate comparison between an external record (A) and a
// local record (B).
type Pair struct {
	A string
	B string
}

// Method generates candidate pairs between two record sets.
type Method interface {
	// Pairs returns the cross-source candidate pairs, deduplicated. Order
	// is unspecified.
	Pairs(external, local []Record) []Pair
	// Name identifies the method configuration, for reports.
	Name() string
}

// Streamer is implemented by methods that can emit their candidate pairs
// one at a time, without materializing the full set — the input side of a
// streaming matcher (linkage.Engine.StreamPairs). Implementations must
// emit each pair exactly once and stop when yield returns false; the pair
// set is the same as Pairs would return, in an implementation-defined but
// deterministic order.
type Streamer interface {
	Method
	Stream(external, local []Record, yield func(Pair) bool)
}

// Cartesian pairs every external record with every local record: the
// |SE| × |SL| upper bound the paper starts from.
type Cartesian struct{}

// Pairs implements Method.
func (Cartesian) Pairs(external, local []Record) []Pair {
	out := make([]Pair, 0, len(external)*len(local))
	for _, e := range external {
		for _, l := range local {
			out = append(out, Pair{A: e.ID, B: l.ID})
		}
	}
	return out
}

// Stream implements Streamer: the full cross product flows through yield
// in row-major order with O(1) memory — the canonical huge space a
// streaming matcher must not materialize.
func (Cartesian) Stream(external, local []Record, yield func(Pair) bool) {
	for _, e := range external {
		for _, l := range local {
			if !yield(Pair{A: e.ID, B: l.ID}) {
				return
			}
		}
	}
}

// Name implements Method.
func (Cartesian) Name() string { return "cartesian" }

// pairSet accumulates deduplicated pairs.
type pairSet map[Pair]struct{}

func (ps pairSet) add(a, b string) { ps[Pair{A: a, B: b}] = struct{}{} }

func (ps pairSet) slice() []Pair {
	out := make([]Pair, 0, len(ps))
	for p := range ps {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Metrics summarizes the quality of a candidate set against the true
// match set, per the record-linkage blocking literature.
type Metrics struct {
	// Candidates is the number of generated candidate pairs.
	Candidates int
	// TotalSpace is the cartesian bound |external| × |local|.
	TotalSpace int
	// TrueMatches is the number of ground-truth matched pairs.
	TrueMatches int
	// CoveredMatches is the number of true matches present in the
	// candidate set.
	CoveredMatches int
}

// ReductionRatio is 1 - candidates/totalSpace: the fraction of the naive
// space the method avoided. Higher is better.
func (m Metrics) ReductionRatio() float64 {
	if m.TotalSpace == 0 {
		return 0
	}
	return 1 - float64(m.Candidates)/float64(m.TotalSpace)
}

// PairsCompleteness is coveredMatches/trueMatches: the fraction of real
// matches the candidate set retains. Higher is better.
func (m Metrics) PairsCompleteness() float64 {
	if m.TrueMatches == 0 {
		return 0
	}
	return float64(m.CoveredMatches) / float64(m.TrueMatches)
}

// PairsQuality is coveredMatches/candidates: the density of real matches
// among candidates. Higher is better.
func (m Metrics) PairsQuality() float64 {
	if m.Candidates == 0 {
		return 0
	}
	return float64(m.CoveredMatches) / float64(m.Candidates)
}

// Evaluate runs the method and scores its candidate set against truth,
// the set of real (external, local) matches.
func Evaluate(m Method, external, local []Record, truth []Pair) Metrics {
	cands := m.Pairs(external, local)
	inCands := make(map[Pair]struct{}, len(cands))
	for _, p := range cands {
		inCands[p] = struct{}{}
	}
	covered := 0
	for _, tp := range truth {
		if _, ok := inCands[tp]; ok {
			covered++
		}
	}
	return Metrics{
		Candidates:     len(inCands),
		TotalSpace:     len(external) * len(local),
		TrueMatches:    len(truth),
		CoveredMatches: covered,
	}
}
