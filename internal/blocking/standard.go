package blocking

import (
	"fmt"
	"strings"
)

// KeyFunc derives a blocking key from a record key value. An empty
// derived key places the record in no block (it generates no candidates),
// matching the usual treatment of missing values.
type KeyFunc func(string) string

// PrefixKey returns a KeyFunc taking the first n runes, lower-cased —
// the paper's related-work example ("persons that share the same first
// five characters of their last name belong to the same block").
func PrefixKey(n int) KeyFunc {
	return func(s string) string {
		s = strings.ToLower(strings.TrimSpace(s))
		runes := []rune(s)
		if len(runes) > n {
			runes = runes[:n]
		}
		return string(runes)
	}
}

// Standard is classical blocking: records sharing the same derived key
// form a block, and candidates are the cross-source pairs within each
// block.
type Standard struct {
	// Key derives the block key; nil means PrefixKey(5).
	Key KeyFunc
	// Label qualifies Name(), e.g. "prefix5".
	Label string
}

// Pairs implements Method, by draining Stream into the deduplicated
// sorted pair set — one blocking implementation, two consumption modes.
func (s Standard) Pairs(external, local []Record) []Pair {
	ps := pairSet{}
	s.Stream(external, local, func(p Pair) bool {
		ps[p] = struct{}{}
		return true
	})
	return ps.slice()
}

// Stream implements Streamer: the local side is indexed into blocks
// (O(|local|) memory), then each external record's block flows through
// yield without the pair set ever materializing. Every pair is emitted
// exactly once because an external record probes exactly one block and
// each local record appears once per block.
func (s Standard) Stream(external, local []Record, yield func(Pair) bool) {
	key := s.Key
	if key == nil {
		key = PrefixKey(5)
	}
	blocks := map[string][]string{}
	for _, r := range local {
		k := key(r.Key)
		if k == "" {
			continue
		}
		blocks[k] = append(blocks[k], r.ID)
	}
	for _, e := range external {
		k := key(e.Key)
		if k == "" {
			continue
		}
		for _, lid := range blocks[k] {
			if !yield(Pair{A: e.ID, B: lid}) {
				return
			}
		}
	}
}

// Name implements Method.
func (s Standard) Name() string {
	if s.Label != "" {
		return "standard(" + s.Label + ")"
	}
	return "standard(prefix5)"
}

// ensure interface satisfaction
var (
	_ Streamer = Cartesian{}
	_ Streamer = Standard{}
)

// String renders metrics compactly for logs.
func (m Metrics) String() string {
	return fmt.Sprintf("candidates=%d rr=%.4f pc=%.4f pq=%.4f",
		m.Candidates, m.ReductionRatio(), m.PairsCompleteness(), m.PairsQuality())
}
