// Package store is the durability subsystem of the live linking service:
// an append-only write-ahead log of service mutations plus periodic full
// snapshots of the published state, giving a restarted process back the
// exact corpus, training set and model it had before it died.
//
// # Design
//
//	dir/
//	  snap-<seq>.snap   full snapshots (binary graph sections, CRC-sealed)
//	  wal-<seq>.log     WAL segments; <seq> is the first record's sequence
//
// Every mutation (item upsert, item removal, learn, or a batch of many
// upserts/removes) is assigned a dense sequence number and appended to
// the current WAL segment as one CRC-framed record *before* it is
// applied to the in-memory state — a batch of 10k items costs one frame
// and one fsync, not 10k. A
// checkpoint rotates the WAL (so the snapshot boundary is exact), writes
// a snapshot of everything up to the rotation point from the service's
// immutable published bundle — writers keep appending to the new segment
// meanwhile — and then prunes the segments and snapshots the new
// checkpoint supersedes.
//
// Recovery is Open: load the newest snapshot that validates, replay the
// WAL records after its sequence number, and rotate to a fresh segment.
// A torn or corrupt record at the tail of the newest segment (the
// expected shape of a crash mid-append) is detected by its CRC or frame
// length and cleanly ignored; corruption in the middle of the log is an
// error, because records after it would silently vanish.
//
// The package depends only on internal/rdf: sides, items and links are
// wire-level values here, converted by the service layer.
package store

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Side selects the external or local graph of the corpus.
type Side uint8

// Side values. The numbering is part of the on-disk format.
const (
	// External addresses the external source graph (SE).
	External Side = 0
	// Local addresses the local catalog graph (SL).
	Local Side = 1
)

// Op discriminates mutation records. The numbering is part of the
// on-disk format.
type Op uint8

const (
	// OpUpsert replaces item descriptions on one side.
	OpUpsert Op = 1
	// OpRemove removes items (and their training links) on one side.
	OpRemove Op = 2
	// OpLearn extends or replaces the training links and relearns.
	OpLearn Op = 3
	// OpBatch groups many upsert/remove sub-ops into one atomic record:
	// one CRC frame, one fsync, one sequence slot. A torn frame drops the
	// whole batch, so recovery sees it wholly applied or wholly absent.
	OpBatch Op = 4
)

// Record is one logged service mutation. Exactly one of Upsert, Remove,
// Learn and Batch is set, matching Op.
type Record struct {
	// Seq is the record's sequence number, assigned by Store.Append.
	Seq uint64
	Op  Op

	Upsert *UpsertOp
	Remove *RemoveOp
	Learn  *LearnOp
	Batch  *BatchOp
}

// UpsertOp replaces the full description of each item on one side.
type UpsertOp struct {
	Side  Side
	Items []Item
}

// Item is one item description: property IRI -> literal values, plus
// (local side) ontology class IRIs.
type Item struct {
	ID      string
	Props   map[string][]string
	Classes []string
}

// RemoveOp removes the items with the given IRIs from one side.
type RemoveOp struct {
	Side Side
	IDs  []string
}

// LearnOp extends (or with Replace, supersedes) the accumulated training
// links and relearns the model.
type LearnOp struct {
	Replace bool
	Links   []LinkRef
}

// BatchOp is an ordered sequence of upsert/remove sub-ops committed as
// one record. Sub-ops are addressed as (Record.Seq, entry index); the
// record occupies a single sequence slot regardless of how many items
// it carries.
type BatchOp struct {
	Ops []BatchEntry
}

// BatchEntry is one sub-op of a batch. Exactly one field is set.
type BatchEntry struct {
	Upsert *UpsertOp
	Remove *RemoveOp
}

// Entries views the record's item mutations as a uniform op slice: a
// plain upsert or remove yields one entry, a batch yields its entries in
// order, and a learn (or unset) record yields nil. Replay and live
// commit both iterate this view, so batches take the exact code path of
// single-op records.
func (r *Record) Entries() []BatchEntry {
	switch r.Op {
	case OpUpsert:
		return []BatchEntry{{Upsert: r.Upsert}}
	case OpRemove:
		return []BatchEntry{{Remove: r.Remove}}
	case OpBatch:
		return r.Batch.Ops
	}
	return nil
}

// LinkRef is one training link endpoint pair. Kinds are rdf.TermKind
// bytes (IRI or blank node), kept as raw bytes so this package does not
// depend on the term model.
type LinkRef struct {
	ExternalKind uint8
	External     string
	LocalKind    uint8
	Local        string
}

// appendLinkRef and readLinkRef are the single wire form of a LinkRef,
// shared by the WAL learn record and the snapshot links section.
func appendLinkRef(b []byte, ln LinkRef) []byte {
	b = append(b, ln.ExternalKind)
	b = appendString(b, ln.External)
	b = append(b, ln.LocalKind)
	b = appendString(b, ln.Local)
	return b
}

func readLinkRef(br *byteReader) (LinkRef, error) {
	var ln LinkRef
	var err error
	if ln.ExternalKind, err = br.byte("external kind"); err != nil {
		return ln, err
	}
	if ln.External, err = br.string("external endpoint"); err != nil {
		return ln, err
	}
	if ln.LocalKind, err = br.byte("local kind"); err != nil {
		return ln, err
	}
	ln.Local, err = br.string("local endpoint")
	return ln, err
}

// appendUvarint appends v as an unsigned varint.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// byteReader is a cursor over an encoded record body.
type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("store: decoding %s: truncated varint", what)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) string(what string) (string, error) {
	n, err := r.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if uint64(len(r.b)-r.pos) < n {
		return "", fmt.Errorf("store: decoding %s: %d bytes wanted, %d left", what, n, len(r.b)-r.pos)
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *byteReader) byte(what string) (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("store: decoding %s: truncated", what)
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}

func (r *byteReader) done() error {
	if r.pos != len(r.b) {
		return fmt.Errorf("store: decoding record: %d trailing bytes", len(r.b)-r.pos)
	}
	return nil
}

// appendUpsertOp and readUpsertOp are the single wire form of an
// UpsertOp payload, shared by the plain upsert record and batch entries.
// Map keys are emitted sorted so equal ops encode to equal bytes.
func appendUpsertOp(b []byte, u *UpsertOp) []byte {
	b = append(b, byte(u.Side))
	b = appendUvarint(b, uint64(len(u.Items)))
	for _, it := range u.Items {
		b = appendString(b, it.ID)
		props := make([]string, 0, len(it.Props))
		for p := range it.Props {
			props = append(props, p)
		}
		sort.Strings(props)
		b = appendUvarint(b, uint64(len(props)))
		for _, p := range props {
			b = appendString(b, p)
			vals := it.Props[p]
			b = appendUvarint(b, uint64(len(vals)))
			for _, v := range vals {
				b = appendString(b, v)
			}
		}
		b = appendUvarint(b, uint64(len(it.Classes)))
		for _, c := range it.Classes {
			b = appendString(b, c)
		}
	}
	return b
}

func readUpsertOp(br *byteReader) (*UpsertOp, error) {
	side, err := br.byte("side")
	if err != nil {
		return nil, err
	}
	if side > 1 {
		return nil, fmt.Errorf("store: decoding record: invalid side %d", side)
	}
	u := &UpsertOp{Side: Side(side)}
	n, err := br.uvarint("item count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var it Item
		if it.ID, err = br.string("item id"); err != nil {
			return nil, err
		}
		np, err := br.uvarint("property count")
		if err != nil {
			return nil, err
		}
		if np > 0 {
			it.Props = make(map[string][]string, np)
		}
		for j := uint64(0); j < np; j++ {
			p, err := br.string("property IRI")
			if err != nil {
				return nil, err
			}
			nv, err := br.uvarint("value count")
			if err != nil {
				return nil, err
			}
			vals := make([]string, 0, min(nv, 1024))
			for k := uint64(0); k < nv; k++ {
				v, err := br.string("property value")
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			it.Props[p] = vals
		}
		nc, err := br.uvarint("class count")
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nc; j++ {
			c, err := br.string("class IRI")
			if err != nil {
				return nil, err
			}
			it.Classes = append(it.Classes, c)
		}
		u.Items = append(u.Items, it)
	}
	return u, nil
}

// appendRemoveOp and readRemoveOp are the single wire form of a
// RemoveOp payload, shared by the plain remove record and batch entries.
func appendRemoveOp(b []byte, rm *RemoveOp) []byte {
	b = append(b, byte(rm.Side))
	b = appendUvarint(b, uint64(len(rm.IDs)))
	for _, id := range rm.IDs {
		b = appendString(b, id)
	}
	return b
}

func readRemoveOp(br *byteReader) (*RemoveOp, error) {
	side, err := br.byte("side")
	if err != nil {
		return nil, err
	}
	if side > 1 {
		return nil, fmt.Errorf("store: decoding record: invalid side %d", side)
	}
	rm := &RemoveOp{Side: Side(side)}
	n, err := br.uvarint("id count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		id, err := br.string("item id")
		if err != nil {
			return nil, err
		}
		rm.IDs = append(rm.IDs, id)
	}
	return rm, nil
}

// encodeBody serializes the record's operation payload (everything but
// the sequence number and frame). Map keys are emitted sorted so equal
// records encode to equal bytes.
func (r *Record) encodeBody() ([]byte, error) {
	b := make([]byte, 0, 256)
	b = append(b, byte(r.Op))
	switch r.Op {
	case OpUpsert:
		b = appendUpsertOp(b, r.Upsert)
	case OpRemove:
		b = appendRemoveOp(b, r.Remove)
	case OpBatch:
		bt := r.Batch
		b = appendUvarint(b, uint64(len(bt.Ops)))
		for _, e := range bt.Ops {
			switch {
			case e.Upsert != nil && e.Remove == nil:
				b = append(b, byte(OpUpsert))
				b = appendUpsertOp(b, e.Upsert)
			case e.Remove != nil && e.Upsert == nil:
				b = append(b, byte(OpRemove))
				b = appendRemoveOp(b, e.Remove)
			default:
				return nil, fmt.Errorf("store: encoding batch: entry must set exactly one of upsert/remove")
			}
		}
	case OpLearn:
		l := r.Learn
		rep := byte(0)
		if l.Replace {
			rep = 1
		}
		b = append(b, rep)
		b = appendUvarint(b, uint64(len(l.Links)))
		for _, ln := range l.Links {
			b = appendLinkRef(b, ln)
		}
	default:
		return nil, fmt.Errorf("store: encoding record: unknown op %d", r.Op)
	}
	return b, nil
}

// decodeBody parses an operation payload produced by encodeBody into r
// (which carries Seq already).
func (r *Record) decodeBody(body []byte) error {
	br := &byteReader{b: body}
	op, err := br.byte("op")
	if err != nil {
		return err
	}
	r.Op = Op(op)
	switch r.Op {
	case OpUpsert:
		if r.Upsert, err = readUpsertOp(br); err != nil {
			return err
		}
	case OpRemove:
		if r.Remove, err = readRemoveOp(br); err != nil {
			return err
		}
	case OpBatch:
		n, err := br.uvarint("batch entry count")
		if err != nil {
			return err
		}
		bt := &BatchOp{Ops: make([]BatchEntry, 0, min(n, 1024))}
		for i := uint64(0); i < n; i++ {
			sub, err := br.byte("batch entry op")
			if err != nil {
				return err
			}
			var e BatchEntry
			switch Op(sub) {
			case OpUpsert:
				if e.Upsert, err = readUpsertOp(br); err != nil {
					return err
				}
			case OpRemove:
				if e.Remove, err = readRemoveOp(br); err != nil {
					return err
				}
			default:
				return fmt.Errorf("store: decoding batch: invalid entry op %d", sub)
			}
			bt.Ops = append(bt.Ops, e)
		}
		r.Batch = bt
	case OpLearn:
		rep, err := br.byte("replace flag")
		if err != nil {
			return err
		}
		l := &LearnOp{Replace: rep == 1}
		n, err := br.uvarint("link count")
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			ln, err := readLinkRef(br)
			if err != nil {
				return err
			}
			l.Links = append(l.Links, ln)
		}
		r.Learn = l
	default:
		return fmt.Errorf("store: decoding record: unknown op %d", op)
	}
	return br.done()
}
