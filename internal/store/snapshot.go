package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/rdf"
)

// snapMagic heads every snapshot file.
const snapMagic = "LNKSNAP1"

// Snapshot section types. Part of the on-disk format.
const (
	secExternal      byte = 1 // external graph, rdf binary codec
	secLocal         byte = 2 // local graph, rdf binary codec
	secOntology      byte = 3 // ontology as a graph, rdf binary codec
	secLinks         byte = 4 // ordered training links
	secMeta          byte = 5 // JSON metadata
	secLearnExternal byte = 6 // learn-time external graph, when != secExternal
	secLearnLocal    byte = 7 // learn-time local graph, when != secLocal
	secLearnLinks    byte = 8 // learn-time training links
)

// Snapshot is one full checkpoint of the service state: everything a
// restarted process needs to answer queries exactly as before, up to and
// including WAL sequence number Seq.
type Snapshot struct {
	// Seq is the last WAL sequence number the snapshot covers; records
	// with larger numbers must be replayed on top.
	Seq uint64

	External *rdf.Graph
	Local    *rdf.Graph
	// Ontology is the class hierarchy serialized back to triples
	// (ontology.Ontology.ToGraph / FromGraph round-trips it).
	Ontology *rdf.Graph
	// Links is the accumulated training set in exact order — order and
	// duplicates are preserved so relearning reproduces the model
	// byte-for-byte.
	Links []LinkRef
	Meta  Meta

	// LearnExternal/LearnLocal/LearnLinks preserve the exact state the
	// persisted model was learned from, where it differs from the
	// checkpoint state: item mutations after the last learn change the
	// graphs (and removals purge links) without relearning, and recovery
	// must relearn over the learn-time state to reproduce the live
	// model. Nil means "same as External/Local/Links".
	LearnExternal *rdf.Graph
	LearnLocal    *rdf.Graph
	LearnLinks    []LinkRef
}

// Meta is the snapshot's JSON section: model state and the comparator
// configuration active when the snapshot was taken.
type Meta struct {
	// Learned records whether a model existed; recovery relearns from
	// the learn-time basis (LearnExternal/LearnLocal/LearnLinks —
	// learning is deterministic), it does not parse RulesText.
	Learned bool `json:"learned"`
	// RulesText is the learned rule set in the RuleSet.Write text format,
	// kept for inspection and for recovery-equivalence checks.
	RulesText string `json:"rules_text,omitempty"`
	// Linker echoes the default comparator configuration, when it is
	// expressible by measure name.
	Linker *LinkerMeta `json:"linker,omitempty"`
	// Learner echoes the learner configuration the model was built
	// with, when it is expressible in wire form (nil when a custom
	// splitter function is set). Without it a restart with different
	// defaults would silently relearn a different model.
	Learner *LearnerMeta `json:"learner,omitempty"`
}

// LearnerMeta mirrors the service's learner config in wire form.
type LearnerMeta struct {
	// SupportThreshold is th; 0 means the paper default.
	SupportThreshold float64 `json:"support_threshold"`
	// Properties is the expert property selection (IRIs); empty means
	// all external data properties.
	Properties []string `json:"properties,omitempty"`
}

// LinkerMeta mirrors the service's default linker config in wire form.
type LinkerMeta struct {
	Threshold   float64          `json:"threshold"`
	Workers     int              `json:"workers"`
	Comparators []ComparatorMeta `json:"comparators"`
}

// ComparatorMeta is one comparator with its measure referenced by name.
type ComparatorMeta struct {
	ExternalProperty string  `json:"external_property"`
	LocalProperty    string  `json:"local_property"`
	Measure          string  `json:"measure"`
	Weight           float64 `json:"weight"`
}

// encodeLinks serializes the ordered link list.
func encodeLinks(links []LinkRef) []byte {
	b := make([]byte, 0, 32*len(links)+8)
	b = appendUvarint(b, uint64(len(links)))
	for _, ln := range links {
		b = appendLinkRef(b, ln)
	}
	return b
}

// decodeLinks parses encodeLinks output.
func decodeLinks(body []byte) ([]LinkRef, error) {
	br := &byteReader{b: body}
	n, err := br.uvarint("link count")
	if err != nil {
		return nil, err
	}
	links := make([]LinkRef, 0, min(n, 1<<20))
	for i := uint64(0); i < n; i++ {
		ln, err := readLinkRef(br)
		if err != nil {
			return nil, err
		}
		links = append(links, ln)
	}
	if err := br.done(); err != nil {
		return nil, err
	}
	return links, nil
}

// snapshotPath names the snapshot file covering seq.
func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// writeSnapshotFile writes s atomically: encode to a temp file in the
// same directory, seal with a trailing CRC over everything before it,
// fsync, rename into place, fsync the directory. A crash mid-write
// leaves at most a stray .tmp file that Open ignores, and a failure at
// any step before the rename never publishes a partial snapshot.
func writeSnapshotFile(fs FS, dir string, s *Snapshot) (path string, size int64, err error) {
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	var seq [8]byte
	binary.LittleEndian.PutUint64(seq[:], s.Seq)
	buf.Write(seq[:])

	writeSection := func(typ byte, body []byte) {
		var hdr [5]byte
		hdr[0] = typ
		binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(body)))
		buf.Write(hdr[:])
		buf.Write(body)
	}
	encodeGraph := func(g *rdf.Graph) ([]byte, error) {
		if g == nil {
			g = rdf.NewGraph()
		}
		var gb bytes.Buffer
		if err := rdf.EncodeSnapshot(&gb, g); err != nil {
			return nil, err
		}
		return gb.Bytes(), nil
	}
	for _, sec := range []struct {
		typ byte
		g   *rdf.Graph
	}{{secExternal, s.External}, {secLocal, s.Local}, {secOntology, s.Ontology},
		{secLearnExternal, s.LearnExternal}, {secLearnLocal, s.LearnLocal}} {
		if sec.g == nil && (sec.typ == secLearnExternal || sec.typ == secLearnLocal) {
			continue // learn-time graph identical to the checkpoint graph
		}
		body, err := encodeGraph(sec.g)
		if err != nil {
			return "", 0, fmt.Errorf("store: encoding snapshot section %d: %w", sec.typ, err)
		}
		writeSection(sec.typ, body)
	}
	writeSection(secLinks, encodeLinks(s.Links))
	if s.LearnLinks != nil {
		writeSection(secLearnLinks, encodeLinks(s.LearnLinks))
	}
	meta, err := json.Marshal(s.Meta)
	if err != nil {
		return "", 0, fmt.Errorf("store: encoding snapshot meta: %w", err)
	}
	writeSection(secMeta, meta)

	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf.Bytes(), castagnoli))
	buf.Write(crc[:])

	path = snapshotPath(dir, s.Seq)
	tmp, err := fs.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", 0, fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	defer fs.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return "", 0, fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", 0, fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", 0, fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := fs.Rename(tmp.Name(), path); err != nil {
		return "", 0, fmt.Errorf("store: publishing snapshot: %w", err)
	}
	_ = fs.SyncDir(dir)
	return path, int64(buf.Len()), nil
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	if len(raw) < len(snapMagic)+8+4 {
		return nil, fmt.Errorf("store: snapshot %s: too short (%d bytes)", path, len(raw))
	}
	if string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: snapshot %s: bad magic", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("store: snapshot %s: crc mismatch (%08x != %08x)", path, got, want)
	}
	s := &Snapshot{Seq: binary.LittleEndian.Uint64(body[len(snapMagic) : len(snapMagic)+8])}
	rest := body[len(snapMagic)+8:]
	for len(rest) > 0 {
		if len(rest) < 5 {
			return nil, fmt.Errorf("store: snapshot %s: truncated section header", path)
		}
		typ := rest[0]
		n := binary.LittleEndian.Uint32(rest[1:5])
		rest = rest[5:]
		if uint64(len(rest)) < uint64(n) {
			return nil, fmt.Errorf("store: snapshot %s: section %d truncated", path, typ)
		}
		sec := rest[:n]
		rest = rest[n:]
		switch typ {
		case secExternal, secLocal, secOntology, secLearnExternal, secLearnLocal:
			g, err := rdf.DecodeSnapshot(bytes.NewReader(sec))
			if err != nil {
				return nil, fmt.Errorf("store: snapshot %s: section %d: %w", path, typ, err)
			}
			switch typ {
			case secExternal:
				s.External = g
			case secLocal:
				s.Local = g
			case secOntology:
				s.Ontology = g
			case secLearnExternal:
				s.LearnExternal = g
			case secLearnLocal:
				s.LearnLocal = g
			}
		case secLinks:
			if s.Links, err = decodeLinks(sec); err != nil {
				return nil, fmt.Errorf("store: snapshot %s: links: %w", path, err)
			}
		case secLearnLinks:
			if s.LearnLinks, err = decodeLinks(sec); err != nil {
				return nil, fmt.Errorf("store: snapshot %s: learn links: %w", path, err)
			}
		case secMeta:
			if err := json.Unmarshal(sec, &s.Meta); err != nil {
				return nil, fmt.Errorf("store: snapshot %s: meta: %w", path, err)
			}
		default:
			// Unknown sections are skipped for forward compatibility.
		}
	}
	if s.External == nil || s.Local == nil || s.Ontology == nil {
		return nil, fmt.Errorf("store: snapshot %s: missing graph section", path)
	}
	return s, nil
}
