package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// walMagic heads every WAL segment file.
const walMagic = "LNKWAL1\n"

// maxWALRecord caps a single record frame so a corrupt length prefix
// cannot ask the replayer to allocate gigabytes. Generous: a record is
// one HTTP mutation, itself capped by the service's request body limit.
const maxWALRecord = 64 << 20

// castagnoli is the CRC polynomial used for all framing in this package
// (hardware-accelerated on common platforms).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walWriter appends CRC-framed records to one segment file. Writes are
// buffered; flush pushes them to the OS, sync additionally fsyncs.
// Not safe for concurrent use — the Store serializes access.
type walWriter struct {
	f       File
	bw      *bufio.Writer
	path    string
	bytes   int64 // bytes written including header
	records int
}

// createWALSegment creates path exclusively and writes the header. A
// pre-existing file is an error: segment names embed the start sequence,
// so a collision means the store directory is corrupt or shared.
func createWALSegment(fs FS, path string) (*walWriter, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: creating wal segment: %w", err)
	}
	w := &walWriter{f: f, bw: bufio.NewWriterSize(f, 64<<10), path: path}
	if _, err := w.bw.WriteString(walMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: writing wal header: %w", err)
	}
	// The header (and the new directory entry) go to disk immediately: a
	// crash must never leave an empty segment file that a later Open
	// would refuse to read past, nor lose the segment entirely.
	if err := w.sync(); err != nil {
		f.Close()
		return nil, err
	}
	_ = fs.SyncDir(filepath.Dir(path))
	w.bytes = int64(len(walMagic))
	return w, nil
}

// append frames and writes one record payload: [len u32][crc u32][payload].
func (w *walWriter) append(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: appending wal record: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("store: appending wal record: %w", err)
	}
	w.bytes += int64(8 + len(payload))
	w.records++
	return nil
}

// flush pushes buffered records to the OS.
func (w *walWriter) flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: flushing wal: %w", err)
	}
	return nil
}

// sync flushes and fsyncs the segment.
func (w *walWriter) sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing wal: %w", err)
	}
	return nil
}

// close syncs and closes the segment file.
func (w *walWriter) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing wal: %w", err)
	}
	return nil
}

// errCorruptTail marks a frame that cannot be trusted: torn write,
// truncated header, CRC mismatch or an implausible length.
var errCorruptTail = errors.New("store: corrupt wal record")

// replayWALSegment streams the records of one segment file to fn in
// order. It returns clean=false when the segment ends in a corrupt or
// torn record (everything before it was still delivered); good is the
// byte offset of the end of the last intact frame, so a tolerated torn
// tail can be truncated away. Any other failure — unreadable file, bad
// header, fn error — is returned as err.
func replayWALSegment(path string, fn func(rec *Record) error) (clean bool, good int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, fmt.Errorf("store: opening wal segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// A truncated (or empty) header is a torn write, the same
			// class as a torn trailing record: tolerable in the newest
			// segment, fatal in the middle of the log (the caller
			// decides which this is).
			return false, 0, nil
		}
		return false, 0, fmt.Errorf("store: reading wal header of %s: %w", path, err)
	}
	if string(magic[:]) != walMagic {
		return false, 0, fmt.Errorf("store: %s: bad wal magic %q", path, magic[:])
	}
	good = int64(len(walMagic))
	for {
		rec, frame, err := readWALRecord(br)
		if err == io.EOF {
			return true, good, nil
		}
		if errors.Is(err, errCorruptTail) {
			return false, good, nil
		}
		if err != nil {
			return false, good, err
		}
		if err := fn(rec); err != nil {
			return false, good, err
		}
		good += frame
	}
}

// truncateWALSegment cuts a tolerated torn tail off a segment at the
// last intact frame boundary, so a later Open that still sees this file
// (the process died again before a checkpoint pruned it) replays it as
// a clean mid-log segment instead of refusing to start.
func truncateWALSegment(fs FS, path string, size int64) error {
	f, err := fs.OpenWrite(path)
	if err != nil {
		return fmt.Errorf("store: truncating torn wal tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("store: truncating torn wal tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: truncating torn wal tail: %w", err)
	}
	return nil
}

// readWALRecord reads one frame, returning the record and the frame's
// on-disk size. io.EOF means a clean end exactly at a frame boundary;
// errCorruptTail wraps every way a trailing frame can be broken.
func readWALRecord(br *bufio.Reader) (*Record, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		// A partial header is a torn write.
		return nil, 0, fmt.Errorf("%w: truncated frame header", errCorruptTail)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxWALRecord {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds cap", errCorruptTail, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated frame payload", errCorruptTail)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch (%08x != %08x)", errCorruptTail, got, want)
	}
	seq, sn := binary.Uvarint(payload)
	if sn <= 0 {
		return nil, 0, fmt.Errorf("%w: bad sequence varint", errCorruptTail)
	}
	rec := &Record{Seq: seq}
	if err := rec.decodeBody(payload[sn:]); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errCorruptTail, err)
	}
	return rec, int64(8 + n), nil
}
