package store

import (
	"io"
	"os"
)

// File is the write-side file handle the WAL and snapshot writers go
// through. It is the seam fault-injection tests use to prove that every
// disk failure either recovers cleanly or fail-stops before a write is
// acknowledged (see internal/faultfs).
type File interface {
	io.Writer
	// Sync fsyncs the file.
	Sync() error
	// Close closes the file (without an implicit sync).
	Close() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem interface behind every write the store performs.
// The read/replay side intentionally stays on the real filesystem:
// recovery always runs against whatever actually landed on disk, which
// is exactly what fault injection wants to exercise. The zero
// configuration (Options.FS == nil) uses OSFS.
type FS interface {
	// Create creates path exclusively (O_CREATE|O_EXCL) for writing. A
	// pre-existing file is an error.
	Create(path string) (File, error)
	// OpenWrite opens an existing file write-only (used to truncate a
	// tolerated torn WAL tail).
	OpenWrite(path string) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// naming semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// SyncDir fsyncs a directory so entry creation and renames survive
	// power loss. Implementations may ignore unsupported filesystems.
	SyncDir(dir string) error
}

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
}

func (osFS) OpenWrite(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY, 0)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
