package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rdf"
)

// upsertRec builds a small upsert record for test traffic.
func upsertRec(i int) *Record {
	return &Record{
		Op: OpUpsert,
		Upsert: &UpsertOp{
			Side: Local,
			Items: []Item{{
				ID:      fmt.Sprintf("http://ex.org/item/%d", i),
				Props:   map[string][]string{"http://ex.org/pn": {fmt.Sprintf("PN-%04d", i)}},
				Classes: []string{"http://ex.org/onto#Thing"},
			}},
		},
	}
}

func learnRec(n int) *Record {
	l := &LearnOp{Replace: n%2 == 0}
	for i := 0; i < n; i++ {
		l.Links = append(l.Links, LinkRef{
			ExternalKind: 1, External: fmt.Sprintf("http://ex.org/e/%d", i),
			LocalKind: 1, Local: fmt.Sprintf("http://ex.org/l/%d", i),
		})
	}
	return &Record{Op: OpLearn, Learn: l}
}

func removeRec(ids ...string) *Record {
	return &Record{Op: OpRemove, Remove: &RemoveOp{Side: External, IDs: ids}}
}

// batchRec builds a mixed batch record: n upserts followed by a remove
// of the first upserted item, both sub-ops in one frame.
func batchRec(n int) *Record {
	up := &UpsertOp{Side: External}
	for i := 0; i < n; i++ {
		up.Items = append(up.Items, Item{
			ID:    fmt.Sprintf("http://ex.org/batch/%d", i),
			Props: map[string][]string{"http://ex.org/pn": {fmt.Sprintf("BN-%04d", i)}},
		})
	}
	return &Record{Op: OpBatch, Batch: &BatchOp{Ops: []BatchEntry{
		{Upsert: up},
		{Remove: &RemoveOp{Side: External, IDs: []string{"http://ex.org/batch/0"}}},
	}}}
}

func openStore(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st, rec
}

func TestRecordBodyRoundTrip(t *testing.T) {
	recs := []*Record{
		upsertRec(7),
		removeRec("http://ex.org/a", "http://ex.org/b"),
		learnRec(3),
		{Op: OpUpsert, Upsert: &UpsertOp{Side: External, Items: []Item{{ID: "x"}}}},
		{Op: OpLearn, Learn: &LearnOp{Replace: true}},
		batchRec(3),
		{Op: OpBatch, Batch: &BatchOp{Ops: []BatchEntry{}}},
	}
	for i, r := range recs {
		body, err := r.encodeBody()
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got := &Record{}
		if err := got.decodeBody(body); err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		r2 := *r
		r2.Seq = 0
		if !reflect.DeepEqual(&r2, got) {
			t.Errorf("record %d: round trip mismatch:\nwant %+v\ngot  %+v", i, r, got)
		}
	}
}

func TestRecordDecodeRejectsCorruptBody(t *testing.T) {
	body, err := upsertRec(1).encodeBody()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(Record).decodeBody(nil); err == nil {
		t.Error("decoded empty body")
	}
	if err := new(Record).decodeBody(body[:len(body)/2]); err == nil {
		t.Error("decoded truncated body")
	}
	if err := new(Record).decodeBody(append(append([]byte(nil), body...), 0)); err == nil {
		t.Error("decoded body with trailing byte")
	}
	bad := append([]byte(nil), body...)
	bad[0] = 99 // unknown op
	if err := new(Record).decodeBody(bad); err == nil {
		t.Error("decoded unknown op")
	}

	bb, err := batchRec(2).encodeBody()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(Record).decodeBody(bb[:len(bb)/2]); err == nil {
		t.Error("decoded truncated batch body")
	}
	badSub := append([]byte(nil), bb...)
	badSub[2] = byte(OpLearn) // first entry's op byte: learn is not a valid sub-op
	if err := new(Record).decodeBody(badSub); err == nil {
		t.Error("decoded batch with learn sub-op")
	}
	if _, err := (&Record{Op: OpBatch, Batch: &BatchOp{Ops: []BatchEntry{{}}}}).encodeBody(); err == nil {
		t.Error("encoded batch entry with no op set")
	}
	if _, err := (&Record{Op: OpBatch, Batch: &BatchOp{Ops: []BatchEntry{
		{Upsert: &UpsertOp{}, Remove: &RemoveOp{}},
	}}}).encodeBody(); err == nil {
		t.Error("encoded batch entry with both ops set")
	}
}

func TestRecordEntries(t *testing.T) {
	if got := upsertRec(1).Entries(); len(got) != 1 || got[0].Upsert == nil {
		t.Errorf("upsert entries: %+v", got)
	}
	if got := removeRec("x").Entries(); len(got) != 1 || got[0].Remove == nil {
		t.Errorf("remove entries: %+v", got)
	}
	if got := learnRec(2).Entries(); got != nil {
		t.Errorf("learn entries: %+v", got)
	}
	b := batchRec(4)
	got := b.Entries()
	if len(got) != 2 || got[0].Upsert == nil || got[1].Remove == nil {
		t.Fatalf("batch entries: %+v", got)
	}
	if len(got[0].Upsert.Items) != 4 {
		t.Errorf("batch upsert entry has %d items, want 4", len(got[0].Upsert.Items))
	}
}

func TestStoreAppendReplay(t *testing.T) {
	dir := t.TempDir()
	st, rec := openStore(t, dir, Options{Fsync: FsyncNever})
	if !rec.Empty() {
		t.Fatalf("fresh store not empty: %+v", rec)
	}
	var want []*Record
	for i := 0; i < 10; i++ {
		r := upsertRec(i)
		seq, err := st.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
		want = append(want, r)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := openStore(t, dir, Options{Fsync: FsyncNever})
	if rec2.Snapshot != nil {
		t.Fatal("unexpected snapshot")
	}
	if len(rec2.Tail) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec2.Tail), len(want))
	}
	for i, r := range rec2.Tail {
		if !reflect.DeepEqual(r, want[i]) {
			t.Errorf("record %d mismatch:\nwant %+v\ngot  %+v", i, want[i], r)
		}
	}
	if rec2.TornTail {
		t.Error("clean log reported torn")
	}
}

func TestStoreCorruptTailIgnored(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string) error
		keep    int
		torn    bool
	}{
		{"torn frame", func(p string) error {
			fi, err := os.Stat(p)
			if err != nil {
				return err
			}
			return os.Truncate(p, fi.Size()-3)
		}, 4, true},
		{"crc flip", func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			b[len(b)-1] ^= 0xff
			return os.WriteFile(p, b, 0o644)
		}, 4, true},
		{"partial header", func(p string) error {
			f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return err
			}
			if _, err := f.Write([]byte{1, 2, 3}); err != nil {
				return err
			}
			return f.Close()
		}, 5, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openStore(t, dir, Options{Fsync: FsyncNever})
			for i := 0; i < 5; i++ {
				if _, err := st.Append(upsertRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if err != nil || len(segs) != 1 {
				t.Fatalf("want one segment, got %v (%v)", segs, err)
			}
			if err := tc.corrupt(segs[0]); err != nil {
				t.Fatal(err)
			}
			_, rec := openStore(t, dir, Options{Fsync: FsyncNever})
			if len(rec.Tail) != tc.keep {
				t.Fatalf("kept %d records, want %d", len(rec.Tail), tc.keep)
			}
			if rec.TornTail != tc.torn {
				t.Errorf("TornTail = %v, want %v (%d/5 records)", rec.TornTail, tc.torn, tc.keep)
			}
		})
	}
}

// TestStoreAppendRejectsOversizedRecord: a frame the replayer would
// reject as corrupt must never be acknowledged — the cap violation is a
// clean error that leaves the store usable.
func TestStoreAppendRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever})
	big := &Record{Op: OpUpsert, Upsert: &UpsertOp{Side: Local, Items: []Item{{
		ID:    "http://ex.org/huge",
		Props: map[string][]string{"http://ex.org/p": {strings.Repeat("x", maxWALRecord+1)}},
	}}}}
	if _, err := st.Append(big); err == nil {
		t.Fatal("append acknowledged a record over the wal frame cap")
	}
	if _, err := st.Append(upsertRec(1)); err != nil {
		t.Fatalf("store unusable after oversized-record rejection: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openStore(t, dir, Options{Fsync: FsyncNever})
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 1 {
		t.Fatalf("recovery after rejection: %+v", rec)
	}
}

// TestStoreRotateFailureFailsStop: when rotation closes the old segment
// but cannot create the next one, the store must fail-stop — the next
// Append would otherwise buffer into the closed file, consume a
// sequence slot and poison the store with a misleading error.
func TestStoreRotateFailureFailsStop(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever})
	for i := 0; i < 3; i++ {
		if _, err := st.Append(upsertRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Collide with the next segment name: createWALSegment uses O_EXCL.
	if err := os.WriteFile(filepath.Join(dir, walName(4)), []byte("squatter"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Rotate(); err == nil {
		t.Fatal("rotate succeeded despite segment collision")
	}
	if _, err := st.Append(upsertRec(3)); err == nil {
		t.Fatal("append acknowledged after failed rotation left no open segment")
	}
	if err := os.Remove(filepath.Join(dir, walName(4))); err != nil {
		t.Fatal(err)
	}
	// Restart recovers everything acknowledged before the failure.
	_, rec := openStore(t, dir, Options{Fsync: FsyncNever})
	if len(rec.Tail) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Tail))
	}
}

// TestStoreTornTailSurvivesSecondCrash: tolerating a torn tail must
// also truncate it, because the process may die again before a
// checkpoint prunes the sealed segment — the next Open then replays it
// as a mid-log segment, where corruption is (rightly) fatal.
func TestStoreTornTailSurvivesSecondCrash(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever})
	for i := 0; i < 3; i++ {
		if _, err := st.Append(upsertRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	// Crash 1: a torn trailing frame.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := openStore(t, dir, Options{Fsync: FsyncNever})
	if !rec.TornTail || len(rec.Tail) != 3 {
		t.Fatalf("first recovery: torn=%v tail=%d, want torn with 3 records", rec.TornTail, len(rec.Tail))
	}
	// Crash 2: one more acknowledged record, then die with no checkpoint
	// ever pruning the sealed torn segment.
	if _, err := st2.Append(upsertRec(3)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2 := openStore(t, dir, Options{Fsync: FsyncNever})
	if rec2.TornTail {
		t.Error("second recovery still reports a torn tail")
	}
	if len(rec2.Tail) != 4 {
		t.Fatalf("second recovery kept %d records, want 4", len(rec2.Tail))
	}
	for i, r := range rec2.Tail {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
	}
}

func TestStoreCheckpointAndPrune(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever, KeepSnapshots: 2})
	for i := 0; i < 6; i++ {
		if _, err := st.Append(upsertRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	boundary, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if boundary != 6 {
		t.Fatalf("rotate boundary %d, want 6", boundary)
	}
	// Appends continue into the new segment while the checkpoint writes.
	if _, err := st.Append(upsertRec(6)); err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.NewIRI("http://ex.org/s"), rdf.NewIRI("http://ex.org/p"), rdf.NewLiteral("v")))
	snap := &Snapshot{
		Seq: boundary, External: g, Local: rdf.NewGraph(), Ontology: rdf.NewGraph(),
		Links: []LinkRef{{ExternalKind: 1, External: "e", LocalKind: 1, Local: "l"}},
		Meta:  Meta{Learned: true, RulesText: "rules here"},
	}
	if err := st.WriteCheckpoint(snap); err != nil {
		t.Fatal(err)
	}

	stats := st.Stats()
	if stats.LastSnapshotSeq != 6 || stats.Seq != 7 || stats.WALRecords != 1 {
		t.Fatalf("stats after checkpoint: %+v", stats)
	}
	// The pre-rotation segment must be gone: its records are all covered.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 || !strings.HasSuffix(segs[0], walName(7)) {
		t.Fatalf("segments after prune: %v", segs)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: snapshot + the one tail record after it.
	_, rec := openStore(t, dir, Options{Fsync: FsyncNever})
	if rec.Snapshot == nil || rec.Snapshot.Seq != 6 {
		t.Fatalf("recovered snapshot: %+v", rec.Snapshot)
	}
	if rec.Snapshot.External.Len() != 1 || !rec.Snapshot.Meta.Learned ||
		rec.Snapshot.Meta.RulesText != "rules here" || len(rec.Snapshot.Links) != 1 {
		t.Fatalf("snapshot content lost: %+v", rec.Snapshot)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 7 {
		t.Fatalf("tail after checkpoint: %+v", rec.Tail)
	}
}

func TestStoreSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever, KeepSnapshots: 2})
	for ck := 0; ck < 4; ck++ {
		if _, err := st.Append(upsertRec(ck)); err != nil {
			t.Fatal(err)
		}
		boundary, err := st.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		snap := &Snapshot{Seq: boundary, External: rdf.NewGraph(), Local: rdf.NewGraph(), Ontology: rdf.NewGraph()}
		if err := st.WriteCheckpoint(snap); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want 2: %v", len(snaps), snaps)
	}
	if st.Stats().Checkpoints != 4 {
		t.Fatalf("stats: %+v", st.Stats())
	}
}

func TestStoreCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever, KeepSnapshots: 3})
	writeCkpt := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := st.Append(upsertRec(i)); err != nil {
				t.Fatal(err)
			}
		}
		boundary, err := st.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		g := rdf.NewGraph()
		for i := 0; i < n; i++ {
			g.Add(rdf.T(rdf.NewIRI(fmt.Sprintf("http://ex.org/%d", i)), rdf.NewIRI("http://ex.org/p"), rdf.NewLiteral("v")))
		}
		if err := st.WriteCheckpoint(&Snapshot{Seq: boundary, External: g, Local: rdf.NewGraph(), Ontology: rdf.NewGraph()}); err != nil {
			t.Fatal(err)
		}
	}
	writeCkpt(1) // snapshot at seq 1
	writeCkpt(2) // snapshot at seq 3
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot; recovery must fall back to the older
	// one and replay the WAL after it. But the WAL between the two was
	// pruned — recovery must detect the gap rather than silently lose
	// the records.
	b, err := os.ReadFile(snapshotPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(snapshotPath(dir, 3), b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{Fsync: FsyncNever})
	if err == nil {
		t.Fatal("open succeeded despite unrecoverable gap (newest snapshot corrupt, WAL pruned)")
	}
}

func TestStoreCorruptSnapshotWithIntactWAL(t *testing.T) {
	// When the newest snapshot is corrupt but the WAL still holds every
	// record since the older snapshot, recovery falls back cleanly.
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever, KeepSnapshots: 3})
	boundary, err := st.Rotate() // 0: baseline, empty
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(&Snapshot{Seq: boundary, External: rdf.NewGraph(), Local: rdf.NewGraph(), Ontology: rdf.NewGraph()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append(upsertRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Write a snapshot at seq 3 WITHOUT rotating: the WAL keeps all
	// records, so corrupting this snapshot loses nothing.
	if err := st.WriteCheckpoint(&Snapshot{Seq: 3, External: rdf.NewGraph(), Local: rdf.NewGraph(), Ontology: rdf.NewGraph()}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(snapshotPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(snapshotPath(dir, 3), b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openStore(t, dir, Options{Fsync: FsyncNever})
	if rec.SkippedSnapshots != 1 {
		t.Errorf("SkippedSnapshots = %d, want 1", rec.SkippedSnapshots)
	}
	if rec.Snapshot == nil || rec.Snapshot.Seq != 0 {
		t.Fatalf("fallback snapshot: %+v", rec.Snapshot)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("tail: %d records, want 3", len(rec.Tail))
	}
}

func TestStoreRestartWithoutMutations(t *testing.T) {
	// Repeated restarts with no traffic must not collide on segment
	// names or accumulate files.
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		st, rec, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if !rec.Empty() {
			t.Fatalf("open %d: state appeared from nowhere", i)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments after restarts: %v", segs)
	}
}

func TestStoreMidLogCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever})
	for i := 0; i < 3; i++ {
		if _, err := st.Append(upsertRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		if _, err := st.Append(upsertRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 2 {
		t.Fatalf("want two segments: %v", segs)
	}
	// Corrupt the FIRST (non-final) segment: that is acknowledged data
	// with records after it, so recovery must fail loudly.
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Fsync: FsyncNever}); err == nil {
		t.Fatal("open succeeded despite mid-log corruption")
	}
}

func TestSnapshotFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.NewIRI("http://ex.org/s"), rdf.NewIRI("http://ex.org/p"), rdf.NewLiteral("v")))
	lg := rdf.NewGraph()
	lg.Add(rdf.T(rdf.NewIRI("http://ex.org/s"), rdf.NewIRI("http://ex.org/p"), rdf.NewLiteral("at learn time")))
	lg.Add(rdf.T(rdf.NewIRI("http://ex.org/s2"), rdf.NewIRI("http://ex.org/p"), rdf.NewLiteral("gone since")))
	snap := &Snapshot{
		Seq: 42, External: g, Local: rdf.NewGraph(), Ontology: rdf.NewGraph(),
		Links: []LinkRef{{ExternalKind: 1, External: "http://ex.org/e", LocalKind: 1, Local: "http://ex.org/l"}},
		Meta:  Meta{Learned: true},
		// Learn-time basis differing from the checkpoint state: the
		// external graph as of the learn, and one extra purged link.
		LearnExternal: lg,
		LearnLinks: []LinkRef{
			{ExternalKind: 1, External: "http://ex.org/e", LocalKind: 1, Local: "http://ex.org/l"},
			{ExternalKind: 1, External: "http://ex.org/e2", LocalKind: 1, Local: "http://ex.org/l2"},
		},
	}
	path, _, err := writeSnapshotFile(OSFS(), dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || got.External.Len() != 1 || !got.Meta.Learned {
		t.Fatalf("round trip: %+v", got)
	}
	if got.LearnExternal == nil || got.LearnExternal.Len() != 2 {
		t.Fatalf("learn-time external graph did not round-trip: %+v", got.LearnExternal)
	}
	if got.LearnLocal != nil {
		t.Fatal("absent learn-time local graph decoded as non-nil")
	}
	if !reflect.DeepEqual(got.LearnLinks, snap.LearnLinks) || !reflect.DeepEqual(got.Links, snap.Links) {
		t.Fatalf("link sections did not round-trip:\nlinks      %+v\nlearnLinks %+v", got.Links, got.LearnLinks)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[cut] ^= 0x20
		badPath := filepath.Join(dir, "bad.snap")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readSnapshotFile(badPath); err == nil {
			t.Errorf("read corrupt snapshot (flip at %d) without error", cut)
		}
	}
	if _, err := readSnapshotFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Error("read missing snapshot without error")
	}
}

func TestParseFsyncMode(t *testing.T) {
	for in, want := range map[string]FsyncMode{
		"never": FsyncNever, "interval": FsyncInterval, "always": FsyncAlways,
		"ALWAYS": FsyncAlways, " never ": FsyncNever, "": FsyncInterval,
	} {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncMode("bogus"); err == nil {
		t.Error("ParseFsyncMode accepted bogus mode")
	}
}

func TestStoreFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncNever, FsyncInterval, FsyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openStore(t, dir, Options{Fsync: mode, FsyncInterval: 5 * 1e6 /* 5ms */})
			for i := 0; i < 20; i++ {
				if _, err := st.Append(upsertRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec := openStore(t, dir, Options{Fsync: mode})
			if len(rec.Tail) != 20 {
				t.Fatalf("mode %v: recovered %d/20 records", mode, len(rec.Tail))
			}
		})
	}
}

// TestStoreAbandonedUnflushedRecovers pins two crash shapes the review
// caught: (1) with fsync=never every acknowledged record must still
// reach the OS before Append returns, so abandoning the store without
// Close (as SIGKILL would) loses nothing while the machine stays up;
// (2) a zero-byte trailing segment file (header torn away) is ignored
// like any torn tail instead of bricking Open.
func TestStoreAbandonedUnflushedRecovers(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append(upsertRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close, no Sync: simulate SIGKILL by abandoning the writer.
	_, rec := openStore(t, dir, Options{Fsync: FsyncNever})
	if len(rec.Tail) != 3 {
		t.Fatalf("recovered %d/3 records appended with fsync=never", len(rec.Tail))
	}

	// Truncate the newest segment to zero bytes (torn header) and add an
	// empty stray segment: recovery must shrug both off.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err := os.Truncate(segs[len(segs)-1], 0); err != nil {
		t.Fatal(err)
	}
	_, rec2 := openStore(t, dir, Options{Fsync: FsyncNever})
	if len(rec2.Tail) != 3 {
		t.Fatalf("zero-byte trailing segment broke recovery: %d records", len(rec2.Tail))
	}
	if !rec2.TornTail {
		t.Error("zero-byte trailing segment not reported as torn")
	}
}

// TestStoreZeroByteMidLogFails: an empty segment in the MIDDLE of the
// log hides acknowledged records behind it, so Open must refuse.
func TestStoreZeroByteMidLogFails(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever})
	if _, err := st.Append(upsertRec(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(upsertRec(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 2 {
		t.Fatalf("want 2 segments: %v", segs)
	}
	if err := os.Truncate(segs[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Fsync: FsyncNever}); err == nil {
		t.Fatal("open succeeded with a zero-byte mid-log segment")
	}
}

// TestStoreAllSnapshotsCorruptRefuses: snapshot files exist but none
// validates and the WAL is empty — treating that as a fresh store would
// silently reseed over acknowledged data, so Open must refuse.
func TestStoreAllSnapshotsCorruptRefuses(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{Fsync: FsyncNever})
	if _, err := st.Append(upsertRec(0)); err != nil {
		t.Fatal(err)
	}
	boundary, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(&Snapshot{Seq: boundary, External: rdf.NewGraph(), Local: rdf.NewGraph(), Ontology: rdf.NewGraph()}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	for _, p := range snaps {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the (empty) current WAL segment too, so the directory looks
	// maximally like a fresh store apart from the corrupt snapshots.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, p := range segs {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Open(dir, Options{Fsync: FsyncNever}); err == nil {
		t.Fatal("open treated a store with only corrupt snapshots as empty")
	}
}
