// Store-level fault sweep: run a fixed append/checkpoint workload once
// per possible filesystem fault point (and per failure mode for
// writes), then recover with the real filesystem and assert the WAL
// contract — every acknowledged record survives byte-for-byte; an
// unacknowledged record is either absent or is the single ambiguous
// record whose append failed; a fail-stopped store rejects everything
// after its first failure.
//
// The test lives in package store_test because faultfs imports store.
package store_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/store"
)

// sweepOptions is the deterministic configuration every sweep run uses:
// synchronous fsync (no background goroutine) and no automatic
// checkpoints, so the filesystem operation sequence is a pure function
// of the workload.
func sweepOptions(fs store.FS) store.Options {
	return store.Options{Fsync: store.FsyncAlways, SnapshotEvery: -1, FS: fs}
}

// sweepRecord builds the i-th workload record; its content encodes i so
// recovery can verify byte-level survival by sequence number. Every
// third record is a batch (two upserts and a remove in one frame), so
// the sweep proves the batch contract too: a fault anywhere in the
// write path leaves the batch wholly on disk or wholly absent, never
// a prefix of its entries.
func sweepRecord(i uint64) *store.Record {
	if i%3 == 0 {
		return &store.Record{Op: store.OpBatch, Batch: &store.BatchOp{Ops: []store.BatchEntry{
			{Upsert: &store.UpsertOp{Side: store.External, Items: []store.Item{
				{ID: sweepID(i) + "-a", Props: map[string][]string{"http://ex.org/p": {fmt.Sprintf("value-%02d-a", i)}}},
				{ID: sweepID(i) + "-b", Props: map[string][]string{"http://ex.org/p": {fmt.Sprintf("value-%02d-b", i)}}},
			}}},
			{Remove: &store.RemoveOp{Side: store.External, IDs: []string{sweepID(i) + "-a"}}},
		}}}
	}
	return &store.Record{Op: store.OpUpsert, Upsert: &store.UpsertOp{
		Side:  store.External,
		Items: []store.Item{{ID: sweepID(i), Props: map[string][]string{"http://ex.org/p": {fmt.Sprintf("value-%02d", i)}}}},
	}}
}

func sweepID(i uint64) string { return fmt.Sprintf("http://ex.org/item-%02d", i) }

// sweepOutcome is what one workload run acknowledged.
type sweepOutcome struct {
	openErr   error
	acked     []uint64
	ambiguous uint64 // seq of the append whose write/sync failed; 0 = none
}

// runSweepWorkload appends 12 records with a forced checkpoint after
// records 4 and 8, tracking acknowledgements. A record is ambiguous
// only when its own append failed against a previously healthy store —
// every later mutation is rejected by the fail-stopped store before
// touching the log and is guaranteed absent.
func runSweepWorkload(t *testing.T, dir string, fs store.FS) sweepOutcome {
	t.Helper()
	st, _, err := store.Open(dir, sweepOptions(fs))
	if err != nil {
		return sweepOutcome{openErr: err}
	}
	defer st.Close()
	var out sweepOutcome
	for i := uint64(1); i <= 12; i++ {
		healthy := st.Failed() == nil
		seq, err := st.Append(sweepRecord(i))
		switch {
		case err == nil:
			if len(out.acked) > 0 && seq != out.acked[len(out.acked)-1]+1 {
				t.Fatalf("acked sequence jumped: %d after %d", seq, out.acked[len(out.acked)-1])
			}
			out.acked = append(out.acked, seq)
		case healthy && st.Failed() != nil && out.ambiguous == 0:
			// This append's own write or sync failed: the frame may or may
			// not be on disk.
			out.ambiguous = uint64(len(out.acked)) + 1
		case healthy && st.Failed() == nil:
			t.Fatalf("append %d failed without fail-stopping the store: %v", i, err)
		}
		if i == 4 || i == 8 {
			if boundary, err := st.Rotate(); err == nil {
				// A checkpoint failure must not affect append durability;
				// the store keeps running on the fresh segment.
				_ = st.WriteCheckpoint(&store.Snapshot{Seq: boundary})
			}
		}
	}
	return out
}

// verifySweepRecovery reopens dir with the real filesystem and checks
// the recovered state against what the faulted run acknowledged.
func verifySweepRecovery(t *testing.T, dir string, out sweepOutcome) {
	t.Helper()
	st, rec, err := store.Open(dir, sweepOptions(nil))
	if err != nil {
		t.Fatalf("recovery open failed: %v (no injected fault may make a directory unopenable)", err)
	}
	defer st.Close()

	var snapSeq uint64
	if rec.Snapshot != nil {
		snapSeq = rec.Snapshot.Seq
	}
	covered := snapSeq
	for i, r := range rec.Tail {
		if want := snapSeq + uint64(i) + 1; r.Seq != want {
			t.Fatalf("recovered tail seq %d at position %d, want %d (gap or duplicate)", r.Seq, i, want)
		}
		// Acknowledged (and ambiguous) records must survive intact, not
		// merely exist: content is a pure function of the sequence number,
		// so a deep compare catches any corruption — including a batch
		// that lost or reordered entries.
		want := sweepRecord(r.Seq)
		want.Seq = r.Seq
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("recovered record %d diverged:\nwant %+v\ngot  %+v", r.Seq, want, r)
		}
		covered = r.Seq
	}
	ackedMax := uint64(len(out.acked))
	switch {
	case covered == ackedMax:
	case out.ambiguous != 0 && covered == out.ambiguous:
		// The failed append's frame reached disk after all — allowed: the
		// client got an error, not a lost acknowledgement.
	default:
		t.Fatalf("recovered through seq %d, want %d acked (or ambiguous %d)",
			covered, ackedMax, out.ambiguous)
	}
	if snapSeq > covered {
		t.Fatalf("snapshot seq %d exceeds recovered coverage %d", snapSeq, covered)
	}

	// The recovered store must be fully writable again.
	seq, err := st.Append(sweepRecord(covered + 1))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if seq != covered+1 {
		t.Fatalf("append after recovery got seq %d, want %d", seq, covered+1)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}

func TestFaultSweepStore(t *testing.T) {
	// Fault-free trace run: enumerate every filesystem operation the
	// workload performs.
	traceFS := faultfs.New(nil)
	traceFS.Record()
	clean := runSweepWorkload(t, t.TempDir(), traceFS)
	if clean.openErr != nil || len(clean.acked) != 12 || clean.ambiguous != 0 {
		t.Fatalf("fault-free run: %+v, want 12 acked", clean)
	}
	trace := traceFS.Trace()
	if len(trace) == 0 {
		t.Fatal("empty operation trace")
	}

	runs := 0
	for i, op := range trace {
		modes := []faultfs.Mode{faultfs.Err}
		if op.Kind == faultfs.OpWrite {
			// Writes additionally fail torn (half the payload lands) and
			// with ENOSPC (nothing lands).
			modes = append(modes, faultfs.Short, faultfs.NoSpace)
		}
		for _, mode := range modes {
			runs++
			t.Run(fmt.Sprintf("op%03d-%s-%s", i+1, op.Kind, mode), func(t *testing.T) {
				dir := t.TempDir()
				ffs := faultfs.New(nil)
				ffs.FailAt(i+1, mode)
				out := runSweepWorkload(t, dir, ffs)
				if !ffs.Fired() {
					t.Fatalf("fault %d never triggered; trace drifted from the recording", i+1)
				}
				if out.openErr != nil {
					// The fault hit during Open of the empty directory; the
					// directory must still recover to an empty, writable store.
					out = sweepOutcome{}
				}
				verifySweepRecovery(t, dir, out)
			})
		}
	}
	t.Logf("swept %d fault points over %d operations", runs, len(trace))
}

// TestCheckpointHoldoff pins the failed-checkpoint backoff contract: a
// failed snapshot write arms a holdoff that suppresses SnapshotDue for
// the next SnapshotEvery records (one retry per window, not one per
// mutation), appends keep working throughout, and the next successful
// checkpoint clears the holdoff entirely.
func TestCheckpointHoldoff(t *testing.T) {
	ffs := faultfs.New(nil)
	st, _, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways, SnapshotEvery: 3, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	appendN := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := st.Append(sweepRecord(0)); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
	appendN(3)
	if !st.SnapshotDue() {
		t.Fatal("SnapshotDue = false after SnapshotEvery records")
	}
	boundary, err := st.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	// Fail the snapshot temp-file creation: the checkpoint dies, the
	// store must not.
	ffs.FailAt(ffs.Ops()+1, faultfs.Err)
	if err := st.WriteCheckpoint(&store.Snapshot{Seq: boundary}); err == nil {
		t.Fatal("WriteCheckpoint succeeded with an injected fault")
	}
	if err := st.Failed(); err != nil {
		t.Fatalf("checkpoint failure poisoned the store: %v", err)
	}
	if st.SnapshotDue() {
		t.Fatal("SnapshotDue = true immediately after a failed checkpoint (holdoff not armed)")
	}
	appendN(2)
	if st.SnapshotDue() {
		t.Fatal("SnapshotDue = true inside the holdoff window")
	}
	appendN(1)
	if !st.SnapshotDue() {
		t.Fatal("SnapshotDue = false a full SnapshotEvery past the failed boundary")
	}
	boundary, err = st.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := st.WriteCheckpoint(&store.Snapshot{Seq: boundary}); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	if st.SnapshotDue() {
		t.Fatal("SnapshotDue = true right after a successful checkpoint")
	}
	// Holdoff() is the service's hook for capture-stage failures (before
	// WriteCheckpoint is even reached): it must arm the same backoff.
	appendN(3)
	if !st.SnapshotDue() {
		t.Fatal("SnapshotDue = false after the next window")
	}
	st.Holdoff()
	if st.SnapshotDue() {
		t.Fatal("SnapshotDue = true after an explicit Holdoff")
	}
	appendN(3)
	if !st.SnapshotDue() {
		t.Fatal("SnapshotDue = false a full window past the explicit holdoff")
	}
}
