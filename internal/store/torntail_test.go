package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// tornRecord builds the i-th record for the torn-tail sweep.
func tornRecord(i uint64) *Record {
	return &Record{Op: OpUpsert, Upsert: &UpsertOp{
		Side:  External,
		Items: []Item{{ID: fmt.Sprintf("http://ex.org/t%d", i), Props: map[string][]string{"http://ex.org/p": {fmt.Sprintf("v%d", i)}}}},
	}}
}

// walFrameOffsets parses a segment file's frame layout: the byte offset
// where each frame starts, after the magic header.
func walFrameOffsets(t *testing.T, raw []byte) []int64 {
	t.Helper()
	if string(raw[:len(walMagic)]) != walMagic {
		t.Fatalf("segment does not start with the WAL magic")
	}
	var offs []int64
	off := int64(len(walMagic))
	for off < int64(len(raw)) {
		offs = append(offs, off)
		if int64(len(raw)) < off+8 {
			t.Fatalf("trailing garbage at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(raw[off : off+4])
		off += 8 + int64(n)
	}
	if off != int64(len(raw)) {
		t.Fatalf("frames end at %d, file is %d bytes", off, len(raw))
	}
	return offs
}

// copyDirFiles copies every regular file of src into dst.
func copyDirFiles(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornTailEveryByteOffset sweeps a crash-truncated WAL tail across
// every byte offset of the final frame: wherever the cut lands — inside
// the length header, the CRC, or the payload — recovery must keep every
// record before the torn frame, report the tail torn (except at the
// exact frame boundary, which is a clean shutdown shape), and accept
// new appends afterwards.
func TestTornTailEveryByteOffset(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "src")
	st, _, err := Open(src, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const records = 5
	for i := uint64(1); i <= records; i++ {
		if _, err := st.Append(tornRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(src, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	offs := walFrameOffsets(t, raw)
	if len(offs) != records {
		t.Fatalf("parsed %d frames, want %d", len(offs), records)
	}
	lastStart, size := offs[records-1], int64(len(raw))
	t.Logf("sweeping %d truncation offsets across the final frame", size-lastStart)

	for cut := lastStart; cut < size; cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut-%05d", cut))
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		copyDirFiles(t, src, dir)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(segs[0])), cut); err != nil {
			t.Fatal(err)
		}

		st, rec, err := Open(dir, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: recovery refused: %v", cut, err)
		}
		if len(rec.Tail) != records-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Tail), records-1)
		}
		for i, r := range rec.Tail {
			want := tornRecord(uint64(i + 1))
			if r.Seq != uint64(i+1) || r.Upsert.Items[0].ID != want.Upsert.Items[0].ID {
				t.Fatalf("cut %d: record %d = seq %d id %q, want intact record %d",
					cut, i, r.Seq, r.Upsert.Items[0].ID, i+1)
			}
		}
		// A cut exactly at the frame boundary is indistinguishable from a
		// clean shutdown after 4 records; anywhere inside the frame is a
		// torn tail.
		if wantTorn := cut != lastStart; rec.TornTail != wantTorn {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, rec.TornTail, wantTorn)
		}
		// The truncated store must keep accepting appends, and a second
		// recovery must see the new record on top of the survivors.
		seq, err := st.Append(tornRecord(records))
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if seq != records {
			t.Fatalf("cut %d: append after recovery got seq %d, want %d", cut, seq, records)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		st2, rec2, err := Open(dir, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: second recovery: %v", cut, err)
		}
		if len(rec2.Tail) != records || rec2.TornTail {
			t.Fatalf("cut %d: second recovery has %d records (torn=%v), want %d clean",
				cut, len(rec2.Tail), rec2.TornTail, records)
		}
		st2.Close()
	}
}
