package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FsyncMode selects when WAL appends reach stable storage.
type FsyncMode int

const (
	// FsyncInterval flushes on every append and fsyncs on a background
	// timer (default 100ms): bounded data loss at near-"never" append
	// latency. The default.
	FsyncInterval FsyncMode = iota
	// FsyncNever leaves syncing to the OS page cache (and to rotation,
	// checkpoint and close, which always sync). Fastest; a power loss can
	// drop the unsynced tail — which recovery then cleanly ignores.
	FsyncNever
	// FsyncAlways fsyncs every append before it is acknowledged. Zero
	// loss window; pays one disk round trip per mutation.
	FsyncAlways
)

// String returns the flag spelling of the mode.
func (m FsyncMode) String() string {
	switch m {
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	default:
		return "interval"
	}
}

// ParseFsyncMode parses the -fsync flag values.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "never":
		return FsyncNever, nil
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync mode %q (want never, interval or always)", s)
	}
}

// Options configures a Store.
type Options struct {
	// Fsync is the WAL durability policy.
	Fsync FsyncMode
	// FsyncInterval is the timer period for FsyncInterval; 0 means 100ms.
	FsyncInterval time.Duration
	// SnapshotEvery is how many WAL records may accumulate before
	// SnapshotDue reports true; 0 means 1024, negative disables automatic
	// checkpoints (explicit ones still work).
	SnapshotEvery int
	// KeepSnapshots is how many snapshot files to retain; 0 means 2.
	KeepSnapshots int
	// FS is the filesystem behind every write the store performs; nil
	// means the real one (OSFS). Fault-injection tests substitute
	// internal/faultfs here.
	FS FS
	// Metrics receives hot-path observations (appends, fsyncs,
	// checkpoints); nil disables them at zero cost.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = OSFS()
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	if o.Metrics == nil {
		o.Metrics = &Metrics{} // all-nil instruments: observations no-op
	}
	return o
}

// segment is one WAL file and the sequence range it holds.
type segment struct {
	path  string
	start uint64 // first sequence number in the file
	end   uint64 // last sequence number (inclusive); only for retained segments
	bytes int64
}

// Store owns one durability directory: the current WAL segment, the
// retained (pre-checkpoint) segments, and the snapshot files. All
// methods are safe for concurrent use; Append calls are additionally
// expected to already be serialized by the service's writer mutex, which
// is what makes the sequence order on disk match the apply order.
type Store struct {
	dir  string
	opts Options
	fs   FS

	mu          sync.Mutex
	wal         *walWriter
	walStart    uint64    // first seq the current segment can hold
	seq         uint64    // last assigned sequence number
	retained    []segment // closed segments awaiting checkpoint pruning
	snapSeq     uint64    // newest durable snapshot's sequence
	snapHoldoff uint64    // boundary of the last FAILED checkpoint write
	snapTime    time.Time // when it was written
	snapCount   int       // snapshot files on disk
	checkpoints uint64    // checkpoints completed this process
	closed      bool
	dirty       bool  // appends since last fsync (interval mode)
	failed      error // sticky WAL write/sync failure; store is read-only

	stopFsync chan struct{}
	fsyncDone chan struct{}
}

// Recovery is the state Open reconstructed from disk.
type Recovery struct {
	// Snapshot is the newest valid snapshot, or nil for a fresh store.
	Snapshot *Snapshot
	// Tail holds the WAL records after Snapshot.Seq, in order. The
	// service replays them on top of the snapshot.
	Tail []*Record
	// TornTail reports that the newest segment ended in a corrupt or
	// torn record, which was ignored (the expected shape of a crash
	// mid-append).
	TornTail bool
	// SkippedSnapshots counts snapshot files that failed validation and
	// were passed over in favor of an older one.
	SkippedSnapshots int
}

// Empty reports whether the store held no usable state at all.
func (r *Recovery) Empty() bool {
	return r.Snapshot == nil && len(r.Tail) == 0
}

// Open opens (or initializes) a durability directory and recovers its
// state: newest valid snapshot, then the WAL tail after it. The WAL is
// then rotated — recovery never appends to a segment written by an
// earlier process — and old files are pruned at the next checkpoint.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating directory: %w", err)
	}
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovery{}
	for i := len(snaps) - 1; i >= 0; i-- {
		s, err := readSnapshotFile(snaps[i].path)
		if err != nil {
			rec.SkippedSnapshots++
			continue
		}
		rec.Snapshot = s
		break
	}
	if rec.Snapshot == nil && rec.SkippedSnapshots > 0 {
		// Snapshot files exist but none validates: the store held state
		// that cannot be read back. Treating this as a fresh store would
		// silently reseed over acknowledged data, so refuse.
		return nil, nil, fmt.Errorf(
			"store: %d snapshot file(s) present but none validates; refusing to treat %s as empty", rec.SkippedSnapshots, dir)
	}
	var snapSeq uint64
	var snapTime time.Time
	if rec.Snapshot != nil {
		snapSeq = rec.Snapshot.Seq
		if fi, err := os.Stat(snapshotPath(dir, snapSeq)); err == nil {
			snapTime = fi.ModTime()
		}
	}

	// The WAL must join the snapshot without a hole: if the oldest
	// segment starts past snapSeq+1, records between the snapshot and
	// the log were pruned against a newer snapshot that no longer
	// validates — acknowledged mutations would silently vanish.
	if len(segs) > 0 && segs[0].start > snapSeq+1 {
		return nil, nil, fmt.Errorf(
			"store: wal starts at sequence %d but the newest usable snapshot covers %d: the records in between are lost",
			segs[0].start, snapSeq)
	}

	// Replay segments in order, keeping records the snapshot does not
	// cover. Only the newest segment may end torn; earlier corruption
	// would silently lose acknowledged records, so it is an error.
	// Records are assigned densely, so every kept record must follow its
	// predecessor (or the snapshot boundary) exactly — a gap means a
	// pruned or missing file and is unrecoverable.
	lastSeq := snapSeq
	segRecords := make([]int, len(segs))
	tornGood := int64(-1)
	for i, sg := range segs {
		idx := i
		clean, good, err := replayWALSegment(sg.path, func(r *Record) error {
			segRecords[idx]++
			if r.Seq <= snapSeq {
				return nil
			}
			if r.Seq != lastSeq+1 {
				return fmt.Errorf("store: %s: sequence gap: %d after %d", sg.path, r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			rec.Tail = append(rec.Tail, r)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if !clean {
			if idx != len(segs)-1 {
				return nil, nil, fmt.Errorf("store: %s: corrupt record in the middle of the log", sg.path)
			}
			rec.TornTail = true
			tornGood = good
		}
	}

	st := &Store{
		dir:       dir,
		opts:      opts,
		fs:        opts.FS,
		seq:       lastSeq,
		snapSeq:   snapSeq,
		snapTime:  snapTime,
		snapCount: len(snaps),
	}
	// Seal the recovered segments and start a fresh one: their end
	// sequences are now known, and new appends never share a file with a
	// previous process's tail. Segments that held no intact records at
	// all (the empty file a mutation-free run leaves behind, or a lone
	// torn tail) are deleted here so the fresh segment's name is free.
	for i, sg := range segs {
		if segRecords[i] == 0 {
			_ = opts.FS.Remove(sg.path)
			continue
		}
		if i == len(segs)-1 && tornGood >= 0 {
			// The tolerated torn tail must not survive on disk: this
			// process may die again before its post-recovery checkpoint
			// prunes the segment, and the next Open would then find the
			// garbage in the *middle* of the log and refuse to start.
			if err := truncateWALSegment(opts.FS, sg.path, tornGood); err != nil {
				return nil, nil, err
			}
			sg.bytes = tornGood
		}
		end := lastSeq
		if i+1 < len(segs) {
			end = segs[i+1].start - 1
		}
		st.retained = append(st.retained, segment{path: sg.path, start: sg.start, end: end, bytes: sg.bytes})
	}
	st.walStart = lastSeq + 1
	w, err := createWALSegment(opts.FS, filepath.Join(dir, walName(st.walStart)))
	if err != nil {
		return nil, nil, err
	}
	st.wal = w
	// Drop stray temp files from interrupted snapshot writes.
	if tmp, err := filepath.Glob(filepath.Join(dir, "snap-*.tmp")); err == nil {
		for _, p := range tmp {
			_ = opts.FS.Remove(p)
		}
	}
	if opts.Fsync == FsyncInterval {
		st.stopFsync = make(chan struct{})
		st.fsyncDone = make(chan struct{})
		go st.fsyncLoop()
	}
	return st, rec, nil
}

// walName names the segment whose first record is seq.
func walName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.log", seq)
}

// scanDir lists snapshot files and WAL segments sorted by sequence.
func scanDir(dir string) (snaps, segs []segment, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		var kind *[]segment
		var hexPart string
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			kind, hexPart = &snaps, strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			kind, hexPart = &segs, strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		default:
			continue
		}
		seq, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		sg := segment{path: filepath.Join(dir, name), start: seq}
		if fi, err := e.Info(); err == nil {
			sg.bytes = fi.Size()
		}
		*kind = append(*kind, sg)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].start < snaps[j].start })
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return snaps, segs, nil
}

// Append assigns the next sequence number to rec, frames it and appends
// it to the current WAL segment under the configured fsync policy. The
// record reaches the OS page cache before Append returns (every mode
// flushes); with FsyncAlways it is durable. A write or sync failure is
// ambiguous — the frame may or may not be on disk — so it poisons the
// store: the sequence slot stays consumed (never reused, which would
// corrupt the log with duplicate numbers) and every later Append fails
// fast until a restart recovers whatever actually landed.
func (s *Store) Append(rec *Record) (uint64, error) {
	body, err := rec.encodeBody()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: append on closed store")
	}
	if s.failed != nil {
		return 0, fmt.Errorf("store: write-ahead log failed earlier, store is read-only until restart: %w", s.failed)
	}
	seq := s.seq + 1
	payload := make([]byte, 0, len(body)+binary.MaxVarintLen64)
	payload = appendUvarint(payload, seq)
	payload = append(payload, body...)
	if len(payload) > maxWALRecord {
		// The replayer rejects frames over the cap as corrupt, so
		// acknowledging one here would write a record recovery cannot
		// read back. A clean rejection: nothing was written, no sequence
		// slot consumed, the store stays usable.
		return 0, fmt.Errorf("store: record of %d bytes exceeds the %d-byte wal frame cap", len(payload), maxWALRecord)
	}
	m := s.opts.Metrics
	if err := s.wal.append(payload); err != nil {
		s.failed = err
		m.AppendFailuresTotal.Inc()
		return 0, err
	}
	// The frame occupies its sequence slot from here on, even if the
	// flush below fails.
	s.seq = seq
	rec.Seq = seq
	if err := s.wal.flush(); err != nil {
		s.failed = err
		m.AppendFailuresTotal.Inc()
		return 0, err
	}
	switch s.opts.Fsync {
	case FsyncAlways:
		if err := s.syncWALLocked(); err != nil {
			s.failed = err
			m.AppendFailuresTotal.Inc()
			return 0, err
		}
	case FsyncInterval:
		s.dirty = true
	}
	m.AppendsTotal.Inc()
	m.AppendBytesTotal.Add(uint64(8 + len(payload))) // frame header + payload
	return seq, nil
}

// syncWALLocked fsyncs the current segment, timing it into the fsync
// histogram. Callers hold s.mu.
func (s *Store) syncWALLocked() error {
	t0 := time.Now()
	if err := s.wal.sync(); err != nil {
		return err
	}
	s.opts.Metrics.FsyncSeconds.ObserveSince(t0)
	return nil
}

// SnapshotDue reports whether enough records accumulated since the last
// checkpoint boundary to warrant an automatic one. After a failed
// checkpoint write the clock restarts at the failed boundary, so a
// persistently failing disk sees one retry per SnapshotEvery records
// instead of a rotation plus a full snapshot encode on every mutation.
func (s *Store) SnapshotDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.SnapshotEvery < 0 {
		return false
	}
	base := s.snapSeq
	if s.snapHoldoff > base {
		base = s.snapHoldoff
	}
	return s.seq >= base+uint64(s.opts.SnapshotEvery) && s.seq >= s.walStart
}

// Rotate closes the current WAL segment (synced) and opens a fresh one,
// returning the last sequence number of the closed log — the exact
// boundary a snapshot taken now must cover. Call it under the same
// serialization as Append so no record lands between the boundary and
// the state capture.
func (s *Store) Rotate() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: rotate on closed store")
	}
	if s.failed != nil {
		return 0, fmt.Errorf("store: write-ahead log failed earlier: %w", s.failed)
	}
	boundary := s.seq
	if s.seq+1 == s.walStart {
		// Current segment is empty; nothing to rotate.
		return boundary, nil
	}
	old := s.wal
	if err := old.close(); err != nil {
		// close() syncs first, so a failure here is an ambiguous sync:
		// acknowledged records in this segment may not be durable under
		// the configured policy, and the file is closed either way.
		// Fail-stop rather than let the next Append discover it.
		s.failed = err
		return 0, err
	}
	s.retained = append(s.retained, segment{path: old.path, start: s.walStart, end: boundary, bytes: old.bytes})
	s.walStart = s.seq + 1
	w, err := createWALSegment(s.fs, filepath.Join(s.dir, walName(s.walStart)))
	if err != nil {
		// The old segment is already closed; without a fresh one there is
		// nowhere to append. Fail-stop like a write failure, instead of
		// letting the next Append consume a sequence slot buffering into
		// the closed file.
		s.failed = err
		return 0, err
	}
	s.wal = w
	s.dirty = false
	return boundary, nil
}

// WriteCheckpoint writes snap to disk, records it as the newest
// checkpoint, and prunes the WAL segments and snapshot files it
// supersedes. The expensive encoding runs without any Store lock; only
// the bookkeeping at the end takes it. Callers obtain snap.Seq from
// Rotate and capture the state while still holding their writer lock.
func (s *Store) WriteCheckpoint(snap *Snapshot) error {
	m := s.opts.Metrics
	t0 := time.Now()
	_, size, err := writeSnapshotFile(s.fs, s.dir, snap)
	if err != nil {
		m.CheckpointFailuresTotal.Inc()
		s.mu.Lock()
		if snap.Seq > s.snapHoldoff {
			s.snapHoldoff = snap.Seq
		}
		s.mu.Unlock()
		return err
	}
	m.CheckpointSeconds.ObserveSince(t0)
	m.CheckpointLastBytes.Set(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Seq > s.snapSeq {
		s.snapSeq = snap.Seq
		s.snapTime = time.Now()
		s.snapHoldoff = 0 // a successful checkpoint ends any holdoff
	}
	s.snapCount++
	s.checkpoints++
	s.pruneLocked()
	return nil
}

// pruneLocked deletes retained WAL segments fully covered by the newest
// snapshot and snapshot files beyond the retention count.
func (s *Store) pruneLocked() {
	kept := s.retained[:0]
	for _, sg := range s.retained {
		if sg.end <= s.snapSeq {
			_ = s.fs.Remove(sg.path)
			continue
		}
		kept = append(kept, sg)
	}
	s.retained = kept

	snaps, _, err := scanDir(s.dir)
	if err != nil {
		return
	}
	s.snapCount = len(snaps)
	for len(snaps) > s.opts.KeepSnapshots {
		_ = s.fs.Remove(snaps[0].path)
		snaps = snaps[1:]
		s.snapCount--
	}
}

// Stats is a point-in-time durability summary, surfaced by /v1/status.
type Stats struct {
	// Seq is the last assigned WAL sequence number.
	Seq uint64 `json:"seq"`
	// WALRecords counts records not yet covered by a snapshot.
	WALRecords uint64 `json:"wal_records"`
	// WALBytes is the on-disk size of all live WAL segments.
	WALBytes int64 `json:"wal_bytes"`
	// LastSnapshotSeq is the newest snapshot's covered sequence.
	LastSnapshotSeq uint64 `json:"last_snapshot_seq"`
	// LastSnapshotUnix is when it was written (0 = never).
	LastSnapshotUnix int64 `json:"last_snapshot_unix"`
	// Snapshots counts snapshot files on disk.
	Snapshots int `json:"snapshots"`
	// Checkpoints counts checkpoints completed by this process.
	Checkpoints uint64 `json:"checkpoints"`
	// Fsync echoes the active fsync policy.
	Fsync string `json:"fsync"`
}

// Stats returns the current durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Seq:             s.seq,
		WALRecords:      s.seq - s.snapSeq,
		WALBytes:        s.wal.bytes,
		LastSnapshotSeq: s.snapSeq,
		Snapshots:       s.snapCount,
		Checkpoints:     s.checkpoints,
		Fsync:           s.opts.Fsync.String(),
	}
	if !s.snapTime.IsZero() {
		st.LastSnapshotUnix = s.snapTime.Unix()
	}
	for _, sg := range s.retained {
		st.WALBytes += sg.bytes
	}
	return st
}

// Dir returns the durability directory.
func (s *Store) Dir() string { return s.dir }

// Failed returns the sticky WAL failure that fail-stopped the store, or
// nil while it is healthy. A failed store rejects every further Append
// and Rotate until a restart recovers whatever actually landed on disk;
// the service layer surfaces this as degraded read-only mode.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Holdoff arms the failed-checkpoint holdoff at the current sequence:
// SnapshotDue stays false until SnapshotEvery more records accumulate.
// WriteCheckpoint arms it itself when the snapshot write fails; the
// service calls this for checkpoint attempts that die earlier (rotation
// or state capture), so forced and automatic checkpoints back off
// identically instead of retrying a full snapshot encode per mutation.
func (s *Store) Holdoff() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq > s.snapHoldoff {
		s.snapHoldoff = s.seq
	}
}

// Sync flushes and fsyncs the current WAL segment. Like Append, a sync
// failure is ambiguous and poisons the store.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.syncWALLocked(); err != nil {
		s.failed = err
		return err
	}
	s.dirty = false
	return nil
}

// fsyncLoop is the FsyncInterval background syncer. A failed background
// sync poisons the store exactly like a failed foreground one — the
// loss-window contract is void once the disk stops accepting fsyncs, so
// acknowledging further writes would be lying.
func (s *Store) fsyncLoop() {
	defer close(s.fsyncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopFsync:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.failed == nil && s.dirty {
				if err := s.syncWALLocked(); err != nil {
					s.failed = err
				} else {
					s.dirty = false
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close flushes and fsyncs the WAL and releases the store. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop := s.stopFsync
	err := s.wal.close()
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.fsyncDone
	}
	return err
}
