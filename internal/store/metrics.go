package store

import "repro/internal/obs"

// Metrics holds the store's hot-path instruments. All fields are
// optional: a nil *Metrics (or any nil instrument) makes every
// observation a no-op, so the store never branches on "is monitoring
// on". Point-in-time durability state (sequence numbers, WAL bytes,
// snapshot counts, degraded flag) is NOT duplicated here — the service
// layer exposes it through Func gauges reading Stats(), so /metrics and
// /v1/status can never disagree.
type Metrics struct {
	// AppendsTotal counts acknowledged WAL appends.
	AppendsTotal *obs.Counter
	// AppendBytesTotal counts framed bytes written to the WAL
	// (header + payload, the same accounting as Stats().WALBytes).
	AppendBytesTotal *obs.Counter
	// AppendFailuresTotal counts appends that poisoned the store.
	AppendFailuresTotal *obs.Counter
	// FsyncSeconds times every WAL fsync (foreground and background).
	FsyncSeconds *obs.Histogram
	// CheckpointSeconds times successful snapshot writes.
	CheckpointSeconds *obs.Histogram
	// CheckpointLastBytes is the size of the newest snapshot file.
	CheckpointLastBytes *obs.Gauge
	// CheckpointFailuresTotal counts failed snapshot writes.
	CheckpointFailuresTotal *obs.Counter
}

// NewMetrics registers the store instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		AppendsTotal: reg.Counter("linkrules_wal_appends_total",
			"Acknowledged write-ahead log appends."),
		AppendBytesTotal: reg.Counter("linkrules_wal_append_bytes_total",
			"Framed bytes appended to the write-ahead log."),
		AppendFailuresTotal: reg.Counter("linkrules_wal_append_failures_total",
			"WAL append or sync failures (each poisons the store until restart)."),
		FsyncSeconds: reg.Histogram("linkrules_wal_fsync_seconds",
			"Write-ahead log fsync latency.", obs.FastBuckets()),
		CheckpointSeconds: reg.Histogram("linkrules_checkpoint_seconds",
			"Successful checkpoint (snapshot write) duration.", obs.DefBuckets()),
		CheckpointLastBytes: reg.Gauge("linkrules_checkpoint_last_bytes",
			"Size of the newest snapshot file."),
		CheckpointFailuresTotal: reg.Counter("linkrules_checkpoint_failures_total",
			"Failed checkpoint writes."),
	}
}
