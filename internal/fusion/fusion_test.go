package fusion

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

var (
	pn    = rdf.NewIRI("http://ex.org/pn")
	label = rdf.NewIRI("http://ex.org/label")
	mf    = rdf.NewIRI("http://ex.org/manufacturer")
)

func pair() ([][2]rdf.Term, *rdf.Graph, *rdf.Graph) {
	ext := rdf.NewIRI("http://provider/item1")
	loc := rdf.NewIRI("http://catalog/P1")
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	se.Add(rdf.T(ext, pn, rdf.NewLiteral("CRCW0805-100")))
	se.Add(rdf.T(ext, label, rdf.NewLiteral("chip resistor 100 ohm thick film")))
	se.Add(rdf.T(ext, mf, rdf.NewLiteral("Vishtronics")))
	sl.Add(rdf.T(loc, pn, rdf.NewLiteral("CRCW0805.100")))
	sl.Add(rdf.T(loc, label, rdf.NewLiteral("Chip resistor")))
	sl.Add(rdf.T(loc, rdf.TypeTerm, rdf.NewIRI("http://onto/Resistor")))
	return [][2]rdf.Term{{ext, loc}}, se, sl
}

func fusedProps(t *testing.T, cfg Config) Entity {
	t.Helper()
	pairs, se, sl := pair()
	ents := Fuse(pairs, se, sl, cfg)
	if len(ents) != 1 {
		t.Fatalf("entities = %d", len(ents))
	}
	return ents[0]
}

func values(e Entity, p rdf.Term) []string {
	var out []string
	for _, v := range e.Properties[p] {
		out = append(out, v.Term.Value)
	}
	return out
}

func TestFuseUnion(t *testing.T) {
	e := fusedProps(t, Config{Default: Union})
	if e.ID != rdf.NewIRI("http://catalog/P1") {
		t.Errorf("ID = %v, want the local IRI (naming authority)", e.ID)
	}
	got := values(e, pn)
	if len(got) != 2 {
		t.Errorf("union pn values = %v, want both variants", got)
	}
	// Provenance annotations.
	for _, v := range e.Properties[pn] {
		switch v.Term.Value {
		case "CRCW0805-100":
			if v.Provenance != FromExternal {
				t.Errorf("provider variant provenance = %v", v.Provenance)
			}
		case "CRCW0805.100":
			if v.Provenance != FromLocal {
				t.Errorf("catalog variant provenance = %v", v.Provenance)
			}
		}
	}
}

func TestFusePreferLocal(t *testing.T) {
	e := fusedProps(t, Config{Default: PreferLocal})
	if got := values(e, pn); len(got) != 1 || got[0] != "CRCW0805.100" {
		t.Errorf("prefer-local pn = %v", got)
	}
	// Property missing locally falls back to external.
	if got := values(e, mf); len(got) != 1 || got[0] != "Vishtronics" {
		t.Errorf("prefer-local manufacturer = %v", got)
	}
}

func TestFusePreferExternal(t *testing.T) {
	e := fusedProps(t, Config{Default: PreferExternal})
	if got := values(e, pn); len(got) != 1 || got[0] != "CRCW0805-100" {
		t.Errorf("prefer-external pn = %v", got)
	}
	// rdf:type exists only locally; falls back.
	if got := values(e, rdf.TypeTerm); len(got) != 1 {
		t.Errorf("types = %v", got)
	}
}

func TestFuseLongest(t *testing.T) {
	e := fusedProps(t, Config{Default: Longest})
	if got := values(e, label); len(got) != 1 || got[0] != "chip resistor 100 ohm thick film" {
		t.Errorf("longest label = %v", got)
	}
}

func TestFuseLongestNonLiteralFallsBackToUnion(t *testing.T) {
	ext := rdf.NewIRI("http://provider/x")
	loc := rdf.NewIRI("http://catalog/x")
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	rel := rdf.NewIRI("http://ex.org/seeAlso")
	se.Add(rdf.T(ext, rel, rdf.NewIRI("http://a")))
	sl.Add(rdf.T(loc, rel, rdf.NewIRI("http://b")))
	ents := Fuse([][2]rdf.Term{{ext, loc}}, se, sl, Config{Default: Longest})
	if got := len(ents[0].Properties[rel]); got != 2 {
		t.Errorf("non-literal Longest kept %d values, want union of 2", got)
	}
}

func TestFuseVote(t *testing.T) {
	ext := rdf.NewIRI("http://provider/x")
	loc := rdf.NewIRI("http://catalog/x")
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	// External asserts "64GB" twice is impossible in a set-based graph,
	// so voting counts distinct assertions per side: both sides say
	// "blue", external alone says "navy" -> blue wins 2:1.
	color := rdf.NewIRI("http://ex.org/color")
	se.Add(rdf.T(ext, color, rdf.NewLiteral("navy")))
	se.Add(rdf.T(ext, color, rdf.NewLiteral("blue")))
	sl.Add(rdf.T(loc, color, rdf.NewLiteral("blue")))
	ents := Fuse([][2]rdf.Term{{ext, loc}}, se, sl, Config{Default: Vote})
	got := values(ents[0], color)
	if len(got) != 1 || got[0] != "blue" {
		t.Errorf("vote = %v, want [blue]", got)
	}
	if ents[0].Properties[color][0].Provenance != FromBoth {
		t.Errorf("winner provenance = %v", ents[0].Properties[color][0].Provenance)
	}
}

func TestFuseVoteTieBreaksTowardLocal(t *testing.T) {
	ext := rdf.NewIRI("http://provider/x")
	loc := rdf.NewIRI("http://catalog/x")
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	w := rdf.NewIRI("http://ex.org/weight")
	se.Add(rdf.T(ext, w, rdf.NewLiteral("10g")))
	sl.Add(rdf.T(loc, w, rdf.NewLiteral("11g")))
	ents := Fuse([][2]rdf.Term{{ext, loc}}, se, sl, Config{Default: Vote})
	if got := values(ents[0], w); len(got) != 1 || got[0] != "11g" {
		t.Errorf("tie vote = %v, want the local 11g", got)
	}
}

func TestFusePerPropertyOverride(t *testing.T) {
	cfg := Config{
		Default:     PreferLocal,
		PerProperty: map[rdf.Term]Strategy{label: Longest},
	}
	e := fusedProps(t, cfg)
	if got := values(e, label); len(got) != 1 || got[0] != "chip resistor 100 ohm thick film" {
		t.Errorf("override label = %v", got)
	}
	if got := values(e, pn); len(got) != 1 || got[0] != "CRCW0805.100" {
		t.Errorf("default pn = %v", got)
	}
}

func TestFuseTypeAlwaysUnion(t *testing.T) {
	// Even under PreferExternal, rdf:type keeps the local types.
	e := fusedProps(t, Config{Default: PreferExternal})
	if got := values(e, rdf.TypeTerm); len(got) != 1 || got[0] != "http://onto/Resistor" {
		t.Errorf("types under PreferExternal = %v", got)
	}
}

func TestToGraph(t *testing.T) {
	pairs, se, sl := pair()
	ents := Fuse(pairs, se, sl, Config{Default: Union})
	g := ToGraph(ents)
	if !g.Has(rdf.T(pairs[0][0], rdf.SameAsTerm, pairs[0][1])) {
		t.Error("sameAs link missing from fused graph")
	}
	if got := len(g.Objects(pairs[0][1], pn)); got != 2 {
		t.Errorf("fused pn triples = %d, want 2", got)
	}
}

func TestStrategyAndProvenanceStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		Union: "union", PreferLocal: "prefer-local", PreferExternal: "prefer-external",
		Vote: "vote", Longest: "longest", Strategy(99): "Strategy(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", int(s), got, want)
		}
	}
	for p, want := range map[Provenance]string{
		FromLocal: "local", FromExternal: "external", FromBoth: "both", Provenance(9): "Provenance(9)",
	} {
		if got := p.String(); !strings.Contains(got, want) {
			t.Errorf("Provenance String = %q, want %q", got, want)
		}
	}
}

func TestFuseMultiplePairsSorted(t *testing.T) {
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	var pairs [][2]rdf.Term
	for _, id := range []string{"b", "a", "c"} {
		ext := rdf.NewIRI("http://provider/" + id)
		loc := rdf.NewIRI("http://catalog/" + id)
		se.Add(rdf.T(ext, pn, rdf.NewLiteral(id)))
		sl.Add(rdf.T(loc, pn, rdf.NewLiteral(id)))
		pairs = append(pairs, [2]rdf.Term{ext, loc})
	}
	ents := Fuse(pairs, se, sl, Config{Default: Union})
	if len(ents) != 3 {
		t.Fatalf("entities = %d", len(ents))
	}
	for i := 1; i < len(ents); i++ {
		if ents[i-1].ID.Compare(ents[i].ID) >= 0 {
			t.Errorf("entities not sorted: %v before %v", ents[i-1].ID, ents[i].ID)
		}
	}
}
