// Package fusion implements the data-fusion step the paper's
// introduction motivates: once same-as links are established, "one data
// item is built using all the data items that represent the same real
// world object". Given matched (external, local) pairs, the package
// merges their property values into one fused description per entity
// under a configurable conflict-resolution policy, preserving provenance.
package fusion

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Strategy resolves conflicting values of one property across the
// descriptions being fused.
type Strategy int

const (
	// Union keeps every distinct value (no conflict resolution).
	Union Strategy = iota
	// PreferLocal keeps the local source's values when it has any, else
	// the external ones — the catalog is the curated side.
	PreferLocal
	// PreferExternal keeps the external source's values when it has any
	// — providers are fresher.
	PreferExternal
	// Vote keeps the most frequent value; ties break toward the local
	// source, then deterministically by term order.
	Vote
	// Longest keeps the longest literal value (a common heuristic for
	// descriptive fields); non-literals fall back to Union.
	Longest
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case Union:
		return "union"
	case PreferLocal:
		return "prefer-local"
	case PreferExternal:
		return "prefer-external"
	case Vote:
		return "vote"
	case Longest:
		return "longest"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config maps properties to strategies; Default applies elsewhere.
type Config struct {
	// Default is the strategy for properties not listed in PerProperty.
	Default Strategy
	// PerProperty overrides the strategy for specific properties.
	PerProperty map[rdf.Term]Strategy
}

func (c Config) strategyFor(p rdf.Term) Strategy {
	if s, ok := c.PerProperty[p]; ok {
		return s
	}
	return c.Default
}

// Provenance tags a fused value with its origin.
type Provenance int

const (
	// FromLocal marks a value present only in the local description.
	FromLocal Provenance = iota + 1
	// FromExternal marks a value present only in the external description.
	FromExternal
	// FromBoth marks a value asserted by both sides.
	FromBoth
)

// String names the provenance for reports.
func (p Provenance) String() string {
	switch p {
	case FromLocal:
		return "local"
	case FromExternal:
		return "external"
	case FromBoth:
		return "both"
	default:
		return fmt.Sprintf("Provenance(%d)", int(p))
	}
}

// Value is one fused property value with provenance.
type Value struct {
	Term       rdf.Term
	Provenance Provenance
}

// Entity is one fused description.
type Entity struct {
	// ID is the fused entity's identifier: the local item's IRI (the
	// catalog keeps naming authority, honouring the UNA objective).
	ID rdf.Term
	// External and Local are the source items.
	External rdf.Term
	Local    rdf.Term
	// Properties maps each property to its fused values, sorted.
	Properties map[rdf.Term][]Value
}

// Fuse merges each (external, local) pair into one entity. Only data
// properties present on either side appear; rdf:type is always fused
// with Union (losing type information would be destructive).
func Fuse(pairs [][2]rdf.Term, se, sl *rdf.Graph, cfg Config) []Entity {
	out := make([]Entity, 0, len(pairs))
	for _, pair := range pairs {
		out = append(out, fuseOne(pair[0], pair[1], se, sl, cfg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Compare(out[j].ID) < 0 })
	return out
}

func fuseOne(ext, loc rdf.Term, se, sl *rdf.Graph, cfg Config) Entity {
	e := Entity{
		ID:         loc,
		External:   ext,
		Local:      loc,
		Properties: map[rdf.Term][]Value{},
	}
	extVals := valuesByProperty(se, ext)
	locVals := valuesByProperty(sl, loc)

	props := map[rdf.Term]struct{}{}
	for p := range extVals {
		props[p] = struct{}{}
	}
	for p := range locVals {
		props[p] = struct{}{}
	}
	for p := range props {
		strategy := cfg.strategyFor(p)
		if p == rdf.TypeTerm {
			strategy = Union
		}
		e.Properties[p] = resolve(strategy, extVals[p], locVals[p])
	}
	return e
}

func valuesByProperty(g *rdf.Graph, item rdf.Term) map[rdf.Term][]rdf.Term {
	out := map[rdf.Term][]rdf.Term{}
	g.Match(item, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
		out[t.P] = append(out[t.P], t.O)
		return true
	})
	return out
}

// resolve merges the two value lists under the strategy, annotating
// provenance. The result is sorted by term order.
func resolve(s Strategy, ext, loc []rdf.Term) []Value {
	extSet := toSet(ext)
	locSet := toSet(loc)
	provOf := func(t rdf.Term) Provenance {
		_, inExt := extSet[t]
		_, inLoc := locSet[t]
		switch {
		case inExt && inLoc:
			return FromBoth
		case inLoc:
			return FromLocal
		default:
			return FromExternal
		}
	}
	union := func() []Value {
		seen := map[rdf.Term]struct{}{}
		var out []Value
		for _, t := range append(append([]rdf.Term(nil), loc...), ext...) {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			out = append(out, Value{Term: t, Provenance: provOf(t)})
		}
		sortValues(out)
		return out
	}

	switch s {
	case PreferLocal:
		if len(loc) > 0 {
			return distinctValues(loc, provOf)
		}
		return distinctValues(ext, provOf)
	case PreferExternal:
		if len(ext) > 0 {
			return distinctValues(ext, provOf)
		}
		return distinctValues(loc, provOf)
	case Vote:
		counts := map[rdf.Term]int{}
		for _, t := range ext {
			counts[t]++
		}
		for _, t := range loc {
			counts[t]++
		}
		if len(counts) == 0 {
			return nil
		}
		var best rdf.Term
		bestScore := -1
		for t, n := range counts {
			score := n * 4
			if _, inLoc := locSet[t]; inLoc {
				score += 2 // tie-break toward the curated side
			}
			if score > bestScore || (score == bestScore && t.Compare(best) < 0) {
				best, bestScore = t, score
			}
		}
		return []Value{{Term: best, Provenance: provOf(best)}}
	case Longest:
		var best rdf.Term
		found := false
		for _, t := range append(append([]rdf.Term(nil), loc...), ext...) {
			if !t.IsLiteral() {
				return union()
			}
			if !found || len(t.Value) > len(best.Value) ||
				(len(t.Value) == len(best.Value) && t.Compare(best) < 0) {
				best, found = t, true
			}
		}
		if !found {
			return nil
		}
		return []Value{{Term: best, Provenance: provOf(best)}}
	default: // Union
		return union()
	}
}

func toSet(ts []rdf.Term) map[rdf.Term]struct{} {
	set := make(map[rdf.Term]struct{}, len(ts))
	for _, t := range ts {
		set[t] = struct{}{}
	}
	return set
}

func distinctValues(ts []rdf.Term, provOf func(rdf.Term) Provenance) []Value {
	seen := map[rdf.Term]struct{}{}
	var out []Value
	for _, t := range ts {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, Value{Term: t, Provenance: provOf(t)})
	}
	sortValues(out)
	return out
}

func sortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Term.Compare(vs[j].Term) < 0 })
}

// ToGraph serializes fused entities back to RDF: each entity's
// properties become triples on its ID, plus an owl:sameAs link to the
// external item recording the reconciliation.
func ToGraph(entities []Entity) *rdf.Graph {
	g := rdf.NewGraph()
	for _, e := range entities {
		g.Add(rdf.T(e.External, rdf.SameAsTerm, e.Local))
		for p, vals := range e.Properties {
			for _, v := range vals {
				g.Add(rdf.T(e.ID, p, v.Term))
			}
		}
	}
	return g
}
