package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// randomWorld builds a randomized but valid training world from a seed:
// a two-level ontology, externals with part numbers assembled from a
// small token pool, and consistent links.
func randomWorld(seed int64, nLinks int) (TrainingSet, *rdf.Graph, *rdf.Graph, *ontology.Ontology) {
	rng := rand.New(rand.NewSource(seed))
	ol := ontology.New()
	root := iri("Root")
	classes := make([]rdf.Term, 4)
	for i := range classes {
		classes[i] = iri(fmt.Sprintf("Class%d", i))
		ol.AddSubClassOf(classes[i], root)
	}
	tokens := []string{"AA", "BB", "CC", "DD", "EE", "FF"}
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	var ts TrainingSet
	for i := 0; i < nLinks; i++ {
		ext := iri(fmt.Sprintf("ext/%d", i))
		loc := iri(fmt.Sprintf("loc/%d", i))
		class := classes[rng.Intn(len(classes))]
		pn := tokens[rng.Intn(len(tokens))] + "-" + tokens[rng.Intn(len(tokens))] +
			fmt.Sprintf("-%d", rng.Intn(20))
		se.Add(rdf.T(ext, pnProp, rdf.NewLiteral(pn)))
		sl.Add(rdf.T(loc, rdf.TypeTerm, class))
		ts.Links = append(ts.Links, Link{External: ext, Local: loc})
	}
	return ts, se, sl, ol
}

// Property: raising the support threshold never adds rules, and the
// surviving rule set is exactly the subset clearing the higher bar.
func TestLearnThresholdMonotonicity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 20
		ts, se, sl, ol := randomWorld(seed, n)
		low, err := Learn(LearnerConfig{SupportThreshold: 0.05, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
		if err != nil {
			return false
		}
		high, err := Learn(LearnerConfig{SupportThreshold: 0.15, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
		if err != nil {
			return false
		}
		if high.Rules.Len() > low.Rules.Len() {
			return false
		}
		lowSet := map[string]Rule{}
		for _, r := range low.Rules.Rules {
			lowSet[r.Segment+"|"+r.Class.Value] = r
		}
		for _, r := range high.Rules.Rules {
			lr, ok := lowSet[r.Segment+"|"+r.Class.Value]
			if !ok {
				return false // high-threshold rule absent at low threshold
			}
			// Identical counts regardless of threshold.
			if lr != r {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every learned rule's counts are internally consistent
// (joint <= premise, joint <= classCount, all counts clear the strict
// threshold, measures in range).
func TestLearnRuleCountConsistency(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 20
		th := 0.08
		ts, se, sl, ol := randomWorld(seed, n)
		m, err := Learn(LearnerConfig{SupportThreshold: th, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
		if err != nil {
			return false
		}
		minCount := th * float64(m.Stats.TSSize)
		for _, r := range m.Rules.Rules {
			if r.JointCount > r.PremiseCount || r.JointCount > r.ClassCount {
				return false
			}
			if !(float64(r.JointCount) > minCount) {
				return false
			}
			if !(float64(r.PremiseCount) > minCount) || !(float64(r.ClassCount) > minCount) {
				return false
			}
			if r.Confidence() < 0 || r.Confidence() > 1 {
				return false
			}
			if r.Support() < 0 || r.Support() > 1 {
				return false
			}
			if r.Lift() < 0 {
				return false
			}
			// Evidence scan must agree exactly with the mined counts.
			ev := m.Evidence(r, 0)
			if len(ev.Supporting) != r.JointCount {
				return false
			}
			if len(ev.Supporting)+len(ev.Counter) != r.PremiseCount {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the classifier is a function of the rule set — same inputs,
// same predictions — and predictions are always sorted per the paper
// ordering with distinct classes.
func TestClassifierDeterministicAndSorted(t *testing.T) {
	f := func(seed int64, pnRaw uint16) bool {
		ts, se, sl, ol := randomWorld(seed, 60)
		m, err := Learn(LearnerConfig{SupportThreshold: 0.05, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
		if err != nil {
			return false
		}
		cl := NewClassifier(&m.Rules, m.Config.Splitter)
		value := fmt.Sprintf("AA-BB-%d", pnRaw%30)
		a := cl.ClassifyValues(map[rdf.Term][]string{pnProp: {value}})
		b := cl.ClassifyValues(map[rdf.Term][]string{pnProp: {value}})
		if len(a) != len(b) {
			return false
		}
		seen := map[rdf.Term]struct{}{}
		for i := range a {
			if a[i].Class != b[i].Class || a[i].Rule != b[i].Rule {
				return false
			}
			if _, dup := seen[a[i].Class]; dup {
				return false
			}
			seen[a[i].Class] = struct{}{}
			if i > 0 && a[i].Rule.Less(a[i-1].Rule) {
				return false // out of order
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(57))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Space reports are consistent — union size never exceeds the
// catalog, never exceeds the sum of subspace sizes, and the reduction
// factor is >= 1 whenever any subspace is non-empty.
func TestSpaceReportInvariants(t *testing.T) {
	f := func(seed int64) bool {
		ts, se, sl, ol := randomWorld(seed, 80)
		m, err := Learn(LearnerConfig{SupportThreshold: 0.05, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
		if err != nil {
			return false
		}
		cl := NewClassifier(&m.Rules, m.Config.Splitter)
		ix := NewInstanceIndex(sl, ol)
		for i, link := range ts.Links {
			if i >= 20 {
				break
			}
			preds := cl.Classify(link.External, se)
			sr := Space(link.External, preds, ix)
			if sr.UnionSize > sr.CatalogSize {
				return false
			}
			sum := 0
			for _, ss := range sr.Subspaces {
				sum += ss.Size
			}
			if sr.UnionSize > sum {
				return false
			}
			if sr.UnionSize > 0 && sr.ReductionFactor() < 1 {
				return false
			}
			if len(CandidatePairs(sr, ix)) != sr.UnionSize {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(59))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: generalized rule sets never lose coverage — every item
// classified by the base rules is still classified after Generalize with
// ReplaceChildren (the parent rule fires on the same premise).
func TestGeneralizeCoveragePreserved(t *testing.T) {
	f := func(seed int64) bool {
		ts, se, sl, ol := randomWorld(seed, 80)
		m, err := Learn(LearnerConfig{SupportThreshold: 0.05, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
		if err != nil {
			return false
		}
		base := NewClassifier(&m.Rules, m.Config.Splitter)
		gen := m.Generalize(ol, GeneralizeOptions{ReplaceChildren: true})
		genCl := NewClassifier(&gen, m.Config.Splitter)
		for i, link := range ts.Links {
			if i >= 30 {
				break
			}
			basePreds := base.Classify(link.External, se)
			genPreds := genCl.Classify(link.External, se)
			if len(basePreds) > 0 && len(genPreds) == 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
