package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// RuleEvidence is the expert-facing audit of one rule: training links
// that support it (premise and conclusion both hold) and counterexamples
// (premise holds, conclusion does not). The paper stresses that learned
// rules are "concise and easy to understand by an expert"; this is the
// inspection tooling that makes that promise practical.
type RuleEvidence struct {
	Rule Rule
	// Supporting holds up to the requested number of supporting links.
	Supporting []Link
	// Counter holds up to the requested number of counterexamples,
	// paired with the conflicting most-specific classes observed.
	Counter []CounterExample
}

// CounterExample is one premise-matching link whose local item belongs
// to other classes than the rule concludes.
type CounterExample struct {
	Link    Link
	Classes []rdf.Term
}

// Evidence scans the retained training index for links matching the
// rule's premise and splits them into supporting links and
// counterexamples, up to max of each (0 = all). The model must be the
// one the rule was learned by (or at least share its training index).
func (m *Model) Evidence(r Rule, max int) RuleEvidence {
	ev := RuleEvidence{Rule: r}
	if m.index == nil {
		return ev
	}
	for _, lf := range m.index.facts {
		set, ok := lf.segs[r.Property]
		if !ok {
			continue
		}
		if _, ok := set[r.Segment]; !ok {
			continue
		}
		inClass := false
		for _, c := range lf.classes {
			if c == r.Class {
				inClass = true
				break
			}
		}
		if inClass {
			if max == 0 || len(ev.Supporting) < max {
				ev.Supporting = append(ev.Supporting, lf.link)
			}
		} else if max == 0 || len(ev.Counter) < max {
			ev.Counter = append(ev.Counter, CounterExample{
				Link:    lf.link,
				Classes: append([]rdf.Term(nil), lf.classes...),
			})
		}
		if max > 0 && len(ev.Supporting) >= max && len(ev.Counter) >= max {
			break
		}
	}
	return ev
}

// Explanation traces a classification decision: every rule that fired
// for the item, grouped per prediction, in ranking order.
type Explanation struct {
	// Values are the property values that were split.
	Values map[rdf.Term][]string
	// Fired lists every distinct rule that matched a segment, best
	// first.
	Fired []Rule
	// Predictions is the deduplicated, ranked class list.
	Predictions []Prediction
}

// Explain classifies the raw property values and returns the full trace.
func (c *Classifier) Explain(values map[rdf.Term][]string) Explanation {
	segs := make(map[rdf.Term][]string, len(values))
	for p, vs := range values {
		for _, v := range vs {
			segs[p] = append(segs[p], c.splitter.Split(v)...)
		}
	}
	return Explanation{
		Values:      values,
		Fired:       c.FiredRules(segs),
		Predictions: c.ClassifySegments(segs),
	}
}

// String renders the explanation for terminal display.
func (e Explanation) String() string {
	var b strings.Builder
	props := make([]rdf.Term, 0, len(e.Values))
	for p := range e.Values {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool { return props[i].Compare(props[j]) < 0 })
	for _, p := range props {
		fmt.Fprintf(&b, "%s = %q\n", localName(p), e.Values[p])
	}
	if len(e.Fired) == 0 {
		b.WriteString("no rule fired\n")
		return b.String()
	}
	b.WriteString("fired rules:\n")
	for _, r := range e.Fired {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	b.WriteString("predictions:\n")
	for i, pr := range e.Predictions {
		fmt.Fprintf(&b, "  %d. %s (conf %.3f, lift %.1f)\n",
			i+1, localName(pr.Class), pr.Rule.Confidence(), pr.Rule.Lift())
	}
	return b.String()
}
