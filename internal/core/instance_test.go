package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// instFixtureOntology builds Part <- {Resistor <- SMDResistor, Capacitor}.
func instFixtureOntology(t *testing.T) (*ontology.Ontology, map[string]rdf.Term) {
	t.Helper()
	classes := map[string]rdf.Term{
		"Part":        rdf.NewIRI("http://ex.org/onto#Part"),
		"Resistor":    rdf.NewIRI("http://ex.org/onto#Resistor"),
		"SMDResistor": rdf.NewIRI("http://ex.org/onto#SMDResistor"),
		"Capacitor":   rdf.NewIRI("http://ex.org/onto#Capacitor"),
	}
	ol := ontology.New()
	for _, c := range classes {
		ol.AddClass(c)
	}
	ol.AddSubClassOf(classes["Resistor"], classes["Part"])
	ol.AddSubClassOf(classes["Capacitor"], classes["Part"])
	ol.AddSubClassOf(classes["SMDResistor"], classes["Resistor"])
	if err := ol.Validate(); err != nil {
		t.Fatal(err)
	}
	return ol, classes
}

func inst(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://ex.org/l/i%d", i)) }

// assertIndexEqual compares every observable of the incremental index
// against a freshly built one.
func assertIndexEqual(t *testing.T, step string, got *InstanceIndex, sl *rdf.Graph, ol *ontology.Ontology, classes map[string]rdf.Term) {
	t.Helper()
	want := NewInstanceIndex(sl, ol)
	if got.Total() != want.Total() {
		t.Fatalf("%s: Total() = %d, want %d", step, got.Total(), want.Total())
	}
	for name, c := range classes {
		g, w := got.Instances(c), want.Instances(c)
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: Instances(%s) = %v, want %v", step, name, g, w)
		}
	}
}

func TestInstanceIndexIncrementalEquivalence(t *testing.T) {
	ol, classes := instFixtureOntology(t)
	names := []string{"Part", "Resistor", "SMDResistor", "Capacitor"}
	sl := rdf.NewGraph()
	ix := NewInstanceIndex(sl, ol)

	// setTypes mirrors a graph mutation into the incremental index the
	// way Pipeline.Upsert does: rewrite the item's type triples, then
	// upsert with the new class list.
	setTypes := func(i int, cls ...rdf.Term) {
		item := inst(i)
		for _, tr := range sl.Find(item, rdf.TypeTerm, rdf.Term{}) {
			sl.Remove(tr)
		}
		for _, c := range cls {
			sl.Add(rdf.T(item, rdf.TypeTerm, c))
		}
		ix.UpsertInstance(item, cls)
	}

	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 400; step++ {
		i := rng.Intn(30)
		switch rng.Intn(4) {
		case 0: // type with one random class
			setTypes(i, classes[names[rng.Intn(len(names))]])
		case 1: // multi-class instance
			setTypes(i, classes[names[rng.Intn(len(names))]], classes[names[rng.Intn(len(names))]])
		case 2: // remove via empty upsert
			setTypes(i)
		case 3: // remove via RemoveInstance
			item := inst(i)
			for _, tr := range sl.Find(item, rdf.TypeTerm, rdf.Term{}) {
				sl.Remove(tr)
			}
			ix.RemoveInstance(item)
		}
		// Touch the memo so invalidation correctness is exercised, not
		// just slice maintenance.
		ix.Instances(classes[names[rng.Intn(len(names))]])
		if step%23 == 0 {
			assertIndexEqual(t, fmt.Sprintf("step %d", step), ix, sl, ol, classes)
		}
	}
	assertIndexEqual(t, "final", ix, sl, ol, classes)
}

func TestInstanceIndexUpsertReportsChange(t *testing.T) {
	ol, classes := instFixtureOntology(t)
	ix := NewInstanceIndex(rdf.NewGraph(), ol)
	if !ix.UpsertInstance(inst(1), []rdf.Term{classes["Resistor"]}) {
		t.Fatal("first upsert must report a change")
	}
	if ix.UpsertInstance(inst(1), []rdf.Term{classes["Resistor"]}) {
		t.Fatal("idempotent upsert must report no change")
	}
	if !ix.UpsertInstance(inst(1), []rdf.Term{classes["Capacitor"]}) {
		t.Fatal("class change must report a change")
	}
	if ix.Total() != 1 {
		t.Fatalf("Total() = %d, want 1", ix.Total())
	}
	if !ix.RemoveInstance(inst(1)) {
		t.Fatal("removing a present instance must report a change")
	}
	if ix.RemoveInstance(inst(1)) {
		t.Fatal("removing an absent instance must report no change")
	}
	if ix.Total() != 0 {
		t.Fatalf("Total() = %d, want 0 after removal", ix.Total())
	}
}

func TestInstanceIndexAncestorInvalidation(t *testing.T) {
	ol, classes := instFixtureOntology(t)
	sl := rdf.NewGraph()
	sl.Add(rdf.T(inst(1), rdf.TypeTerm, classes["SMDResistor"]))
	ix := NewInstanceIndex(sl, ol)
	// Memoize the whole chain.
	for _, n := range []string{"Part", "Resistor", "SMDResistor"} {
		if got := ix.Count(classes[n]); got != 1 {
			t.Fatalf("Count(%s) = %d, want 1", n, got)
		}
	}
	// A new SMD resistor must surface through every memoized ancestor.
	ix.UpsertInstance(inst(2), []rdf.Term{classes["SMDResistor"]})
	for _, n := range []string{"Part", "Resistor", "SMDResistor"} {
		if got := ix.Count(classes[n]); got != 2 {
			t.Fatalf("after upsert: Count(%s) = %d, want 2", n, got)
		}
	}
	if got := ix.Count(classes["Capacitor"]); got != 0 {
		t.Fatalf("Count(Capacitor) = %d, want 0", got)
	}
}

func TestInstanceIndexSnapshotImmutable(t *testing.T) {
	ol, classes := instFixtureOntology(t)
	sl := rdf.NewGraph()
	for i := 0; i < 10; i++ {
		sl.Add(rdf.T(inst(i), rdf.TypeTerm, classes["Resistor"]))
	}
	ix := NewInstanceIndex(sl, ol)
	ix.Freeze([]rdf.Term{classes["Part"], classes["Resistor"]})

	snap := ix.Snapshot()
	if !snap.Frozen() || ix.Frozen() {
		t.Fatal("snapshot must be frozen, live index must not be")
	}
	if snap.Snapshot() != snap {
		t.Fatal("snapshot of a snapshot should be itself")
	}
	wantRes := append([]rdf.Term(nil), snap.Instances(classes["Resistor"])...)
	wantPart := append([]rdf.Term(nil), snap.Instances(classes["Part"])...)
	wantTotal := snap.Total()

	// Mutate the live index heavily: adds, class moves, removals.
	for i := 0; i < 10; i++ {
		ix.UpsertInstance(inst(100+i), []rdf.Term{classes["SMDResistor"]})
	}
	for i := 0; i < 5; i++ {
		ix.UpsertInstance(inst(i), []rdf.Term{classes["Capacitor"]})
	}
	for i := 5; i < 8; i++ {
		ix.RemoveInstance(inst(i))
	}

	if snap.Total() != wantTotal {
		t.Fatalf("snapshot Total drifted: %d, want %d", snap.Total(), wantTotal)
	}
	if got := snap.Instances(classes["Resistor"]); !reflect.DeepEqual(got, wantRes) {
		t.Fatalf("snapshot Instances(Resistor) drifted: %v, want %v", got, wantRes)
	}
	if got := snap.Instances(classes["Part"]); !reflect.DeepEqual(got, wantPart) {
		t.Fatalf("snapshot Instances(Part) drifted: %v, want %v", got, wantPart)
	}
	// Unmemoized class on the frozen snapshot: computed per call, no
	// memo write, and it sees the snapshot-time state (zero capacitors).
	if got := snap.Count(classes["Capacitor"]); got != 0 {
		t.Fatalf("snapshot Count(Capacitor) = %d, want 0", got)
	}
	// The live index meanwhile reflects everything.
	if got := ix.Count(classes["Capacitor"]); got != 5 {
		t.Fatalf("live Count(Capacitor) = %d, want 5", got)
	}
	if ix.Total() != wantTotal+10-3 {
		t.Fatalf("live Total = %d, want %d", ix.Total(), wantTotal+10-3)
	}
}

// TestInstanceIndexSnapshotConcurrentReads drives snapshot readers while
// the live index mutates; -race proves the copy-on-write contract.
func TestInstanceIndexSnapshotConcurrentReads(t *testing.T) {
	ol, classes := instFixtureOntology(t)
	sl := rdf.NewGraph()
	for i := 0; i < 50; i++ {
		sl.Add(rdf.T(inst(i), rdf.TypeTerm, classes["Resistor"]))
	}
	ix := NewInstanceIndex(sl, ol)
	ix.Freeze([]rdf.Term{classes["Part"]})
	snap := ix.Snapshot()
	want := snap.Count(classes["Part"])

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := snap.Count(classes["Part"]); got != want {
					t.Errorf("snapshot read tore: %d, want %d", got, want)
					return
				}
				snap.Contains(classes["Resistor"], inst(7))
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		switch i % 3 {
		case 0:
			ix.UpsertInstance(inst(1000+i), []rdf.Term{classes["SMDResistor"]})
		case 1:
			ix.UpsertInstance(inst(i%50), []rdf.Term{classes["Capacitor"]})
		case 2:
			ix.RemoveInstance(inst(1000 + i - 2))
		}
	}
	close(stop)
	wg.Wait()
}

// TestInstanceIndexSnapshotColdOntologyConcurrentReads snapshots an
// index whose ontology closure was never touched, then reads unwarmed
// classes from several goroutines: the lazy closure build must have been
// forced at snapshot time, not raced on first use.
func TestInstanceIndexSnapshotColdOntologyConcurrentReads(t *testing.T) {
	ol, classes := instFixtureOntology(t)
	sl := rdf.NewGraph()
	for i := 0; i < 30; i++ {
		sl.Add(rdf.T(inst(i), rdf.TypeTerm, classes["SMDResistor"]))
	}
	snap := NewInstanceIndex(sl, ol).Snapshot() // no Freeze, closure cold
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := snap.Count(classes["Part"]); got != 30 {
					t.Errorf("Count(Part) = %d, want 30", got)
					return
				}
				snap.Count(classes["Resistor"])
			}
		}()
	}
	wg.Wait()
}

func TestInstanceIndexSnapshotMutationPanics(t *testing.T) {
	ol, classes := instFixtureOntology(t)
	snap := NewInstanceIndex(rdf.NewGraph(), ol).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a frozen snapshot did not panic")
		}
	}()
	snap.UpsertInstance(inst(1), []rdf.Term{classes["Resistor"]})
}
