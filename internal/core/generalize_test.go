package core

import (
	"testing"

	"repro/internal/rdf"
)

// generalizeFixture builds a scenario where the premise "RES" appears on
// both resistor leaf classes, so generalization can lift it to Resistor:
//
//	3 links to FFR with part numbers containing "RES"
//	3 links to WWR with part numbers containing "RES"
//	2 links to Tant with "T83"
func generalizeFixture(t testing.TB) *Model {
	t.Helper()
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	var ts TrainingSet
	add := func(id, pn string, class rdf.Term) {
		ext := iri("ext/" + id)
		loc := iri("loc/" + id)
		se.Add(rdf.T(ext, pnProp, rdf.NewLiteral(pn)))
		sl.Add(rdf.T(loc, rdf.TypeTerm, class))
		ts.Links = append(ts.Links, Link{External: ext, Local: loc})
	}
	add("f1", "RES-100", clsFFR)
	add("f2", "RES-200", clsFFR)
	add("f3", "RES-300", clsFFR)
	add("w1", "RES-510", clsWWR)
	add("w2", "RES-520", clsWWR)
	add("w3", "RES-530", clsWWR)
	add("t1", "T83-1", clsTant)
	add("t2", "T83-2", clsTant)
	// th = 0.2 of 8 links → count must exceed 1.6, so the singleton
	// numeric suffixes are filtered and only RES (6) and T83 (2) remain.
	m, err := Learn(LearnerConfig{SupportThreshold: 0.2, Properties: []rdf.Term{pnProp}}, ts, se, sl, testOntology(t))
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return m
}

func TestGeneralizeLiftsSiblingRules(t *testing.T) {
	m := generalizeFixture(t)
	ol := testOntology(t)

	// Base rules: RES⇒FFR (conf 0.5), RES⇒WWR (conf 0.5), T83⇒Tant.
	if m.Rules.Len() != 3 {
		t.Fatalf("base rules = %v", m.Rules.Rules)
	}

	gen := m.Generalize(ol, GeneralizeOptions{})
	var parent *Rule
	for i, r := range gen.Rules {
		if r.Class == clsRes && r.Segment == "RES" {
			parent = &gen.Rules[i]
		}
	}
	if parent == nil {
		t.Fatalf("no generalized RES⇒Resistor rule in %v", gen.Rules)
	}
	if !parent.Generalized {
		t.Error("parent rule not marked Generalized")
	}
	// Exact recomputed counts: premise 6, joint 6 (every RES link is a
	// resistor), class 6, TS 8 → conf 1, lift 8/6.
	if parent.PremiseCount != 6 || parent.JointCount != 6 || parent.ClassCount != 6 || parent.TSSize != 8 {
		t.Errorf("parent counts = %+v", *parent)
	}
	if parent.Confidence() != 1 {
		t.Errorf("parent confidence = %v, want 1 (better than either child)", parent.Confidence())
	}
	// Children still present without ReplaceChildren.
	if gen.Len() != 4 {
		t.Errorf("generalized set size = %d, want 4 (3 base + 1 parent)", gen.Len())
	}
}

func TestGeneralizeReplaceChildren(t *testing.T) {
	m := generalizeFixture(t)
	ol := testOntology(t)
	gen := m.Generalize(ol, GeneralizeOptions{ReplaceChildren: true})
	// RES⇒FFR and RES⇒WWR replaced by RES⇒Resistor; T83⇒Tant untouched.
	if gen.Len() != 2 {
		t.Fatalf("replaced set = %v", gen.Rules)
	}
	for _, r := range gen.Rules {
		if r.Class == clsFFR || r.Class == clsWWR {
			t.Errorf("child rule survived replacement: %v", r)
		}
	}
	rep := CompareGeneralization(&m.Rules, &gen)
	if rep.BaseRules != 3 || rep.GeneralizedRules != 2 || rep.AddedParentRules != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.CompressionRatio <= 0.6 || rep.CompressionRatio >= 0.7 {
		t.Errorf("CompressionRatio = %v, want 2/3", rep.CompressionRatio)
	}
}

func TestGeneralizeMinChildRules(t *testing.T) {
	m := generalizeFixture(t)
	ol := testOntology(t)
	// Requiring 3 sibling child rules prevents any lift (only 2 exist).
	gen := m.Generalize(ol, GeneralizeOptions{MinChildRules: 3})
	for _, r := range gen.Rules {
		if r.Generalized {
			t.Errorf("unexpected generalized rule %v", r)
		}
	}
	if gen.Len() != m.Rules.Len() {
		t.Errorf("rule count changed: %d vs %d", gen.Len(), m.Rules.Len())
	}
}

func TestGeneralizeMinConfidence(t *testing.T) {
	m := generalizeFixture(t)
	ol := testOntology(t)
	// The lifted rule has confidence 1, so a 0.9 floor keeps it...
	gen := m.Generalize(ol, GeneralizeOptions{MinConfidence: 0.9})
	found := false
	for _, r := range gen.Rules {
		if r.Generalized {
			found = true
		}
	}
	if !found {
		t.Error("conf-1 generalized rule dropped by 0.9 floor")
	}
	// ...and an impossible floor drops it.
	gen = m.Generalize(ol, GeneralizeOptions{MinConfidence: 1.01})
	for _, r := range gen.Rules {
		if r.Generalized {
			t.Errorf("generalized rule above impossible floor: %v", r)
		}
	}
}

func TestGeneralizeNilOntology(t *testing.T) {
	m := generalizeFixture(t)
	gen := m.Generalize(nil, GeneralizeOptions{})
	if gen.Len() != m.Rules.Len() {
		t.Errorf("nil ontology changed rule count: %d vs %d", gen.Len(), m.Rules.Len())
	}
}

func TestGeneralizedRulesClassifyThroughSubclassInstances(t *testing.T) {
	m := generalizeFixture(t)
	ol := testOntology(t)
	gen := m.Generalize(ol, GeneralizeOptions{ReplaceChildren: true})
	cl := NewClassifier(&gen, m.Config.Splitter)
	preds := cl.ClassifyValues(map[rdf.Term][]string{pnProp: {"RES-999"}})
	if len(preds) != 1 || preds[0].Class != clsRes {
		t.Fatalf("predictions = %v", preds)
	}
	// The Resistor subspace must include both FFR and WWR instances.
	sl := buildCatalog(t, map[rdf.Term]int{clsFFR: 4, clsWWR: 6, clsTant: 5})
	ix := NewInstanceIndex(sl, ol)
	sr := Space(iri("ext/q"), preds, ix)
	if sr.UnionSize != 10 {
		t.Errorf("UnionSize = %d, want 10 (FFR+WWR)", sr.UnionSize)
	}
}
