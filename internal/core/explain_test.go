package core

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestEvidence(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	smd := findRule(t, m.Rules, "SMD", clsTant)
	ev := m.Evidence(smd, 0)
	// SMD appears on: f1 (FFR), t1, t2 (Tant), c1 (Cer). Rule concludes
	// Tant, so 2 supporting and 2 counterexamples.
	if len(ev.Supporting) != 2 {
		t.Errorf("supporting = %v", ev.Supporting)
	}
	if len(ev.Counter) != 2 {
		t.Errorf("counter = %v", ev.Counter)
	}
	for _, ce := range ev.Counter {
		if len(ce.Classes) == 0 {
			t.Errorf("counterexample %v lacks classes", ce.Link)
		}
		for _, c := range ce.Classes {
			if c == clsTant {
				t.Errorf("counterexample %v is actually supporting", ce.Link)
			}
		}
	}
	// Counts must agree with the rule's own counters.
	if len(ev.Supporting) != smd.JointCount {
		t.Errorf("supporting %d != JointCount %d", len(ev.Supporting), smd.JointCount)
	}
	if len(ev.Supporting)+len(ev.Counter) != smd.PremiseCount {
		t.Errorf("evidence total %d != PremiseCount %d",
			len(ev.Supporting)+len(ev.Counter), smd.PremiseCount)
	}
}

func TestEvidenceMaxLimit(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	ohm := findRule(t, m.Rules, "ohm", clsFFR)
	ev := m.Evidence(ohm, 2)
	if len(ev.Supporting) != 2 {
		t.Errorf("supporting = %d, want capped at 2", len(ev.Supporting))
	}
}

func TestExplain(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	cl := NewClassifier(&m.Rules, m.Config.Splitter)
	exp := cl.Explain(map[rdf.Term][]string{pnProp: {"T83-SMD-999"}})
	// Fired: T83⇒Tant and SMD⇒Tant (two distinct rules), prediction
	// deduplicates to one class.
	if len(exp.Fired) != 2 {
		t.Errorf("fired = %v", exp.Fired)
	}
	if len(exp.Predictions) != 1 || exp.Predictions[0].Class != clsTant {
		t.Errorf("predictions = %v", exp.Predictions)
	}
	out := exp.String()
	for _, want := range []string{"partNumber", "fired rules:", "T83", "predictions:", "TantalumCapacitor"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainNoRuleFired(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	cl := NewClassifier(&m.Rules, m.Config.Splitter)
	exp := cl.Explain(map[rdf.Term][]string{pnProp: {"UNKNOWN"}})
	if len(exp.Fired) != 0 || len(exp.Predictions) != 0 {
		t.Errorf("unexpected trace: %+v", exp)
	}
	if !strings.Contains(exp.String(), "no rule fired") {
		t.Errorf("String = %q", exp.String())
	}
}
