package core

import (
	"sort"

	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/segment"
)

// Prediction is one class predicted for an external item, justified by
// the best rule that fired for it.
type Prediction struct {
	Class rdf.Term
	Rule  Rule
}

// Classifier applies a rule set to external items. It indexes rules by
// (property, segment) so classification of one item costs the number of
// its segments, not the number of rules. Safe for concurrent use.
type Classifier struct {
	splitter   segment.Splitter
	properties []rdf.Term
	// bySegment maps property -> segment -> rules sorted best-first.
	bySegment map[rdf.Term]map[string][]Rule
}

// NewClassifier builds a classifier over the rules using the given
// splitter (nil means the paper's default separator splitter, which must
// match the splitter used at learning time to be meaningful).
func NewClassifier(rs *RuleSet, sp segment.Splitter) *Classifier {
	if sp == nil {
		sp = segment.NewSeparatorSplitter(segment.Options{})
	}
	c := &Classifier{
		splitter:  sp,
		bySegment: map[rdf.Term]map[string][]Rule{},
	}
	propSet := map[rdf.Term]struct{}{}
	for _, r := range rs.Rules {
		propSet[r.Property] = struct{}{}
		m := c.bySegment[r.Property]
		if m == nil {
			m = map[string][]Rule{}
			c.bySegment[r.Property] = m
		}
		m[r.Segment] = append(m[r.Segment], r)
	}
	for _, m := range c.bySegment {
		for seg := range m {
			rules := m[seg]
			sort.Slice(rules, func(i, j int) bool { return rules[i].Less(rules[j]) })
		}
	}
	for p := range propSet {
		c.properties = append(c.properties, p)
	}
	sort.Slice(c.properties, func(i, j int) bool {
		return c.properties[i].Compare(c.properties[j]) < 0
	})
	return c
}

// Properties returns the properties the classifier consults, sorted.
func (c *Classifier) Properties() []rdf.Term {
	return append([]rdf.Term(nil), c.properties...)
}

// Classify predicts classes for the external item described in se. The
// result is deduplicated by class — two rules selecting the same subspace
// keep only the better one, per the paper — and ordered by confidence
// then lift (best first). A nil result means no rule fired.
func (c *Classifier) Classify(item rdf.Term, se *rdf.Graph) []Prediction {
	values := map[rdf.Term][]string{}
	for _, p := range c.properties {
		for _, o := range se.Objects(item, p) {
			if o.IsLiteral() {
				values[p] = append(values[p], o.Value)
			}
		}
	}
	return c.ClassifyValues(values)
}

// ClassifyValues predicts classes from raw property values, for callers
// that do not hold an RDF graph (e.g. streaming provider documents).
func (c *Classifier) ClassifyValues(values map[rdf.Term][]string) []Prediction {
	segs := make(map[rdf.Term][]string, len(values))
	for p, vs := range values {
		for _, v := range vs {
			segs[p] = append(segs[p], c.splitter.Split(v)...)
		}
	}
	return c.ClassifySegments(segs)
}

// ClassifySegments predicts classes from pre-split segments, for callers
// that already hold the segment decomposition (e.g. the evaluation
// harness replaying a learner's training index).
func (c *Classifier) ClassifySegments(segments map[rdf.Term][]string) []Prediction {
	best := map[rdf.Term]Rule{}
	for p, segs := range segments {
		segIndex := c.bySegment[p]
		if segIndex == nil {
			continue
		}
		for _, a := range segs {
			for _, r := range segIndex[a] {
				cur, ok := best[r.Class]
				if !ok || r.Less(cur) {
					best[r.Class] = r
				}
			}
		}
	}
	if len(best) == 0 {
		return nil
	}
	out := make([]Prediction, 0, len(best))
	for cls, r := range best {
		out = append(out, Prediction{Class: cls, Rule: r})
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Rule, out[j].Rule
		if ri.Less(rj) {
			return true
		}
		if rj.Less(ri) {
			return false
		}
		return out[i].Class.Compare(out[j].Class) < 0
	})
	return out
}

// Best returns the top prediction, if any.
func (c *Classifier) Best(item rdf.Term, se *rdf.Graph) (Prediction, bool) {
	preds := c.Classify(item, se)
	if len(preds) == 0 {
		return Prediction{}, false
	}
	return preds[0], true
}

// FiredRules returns every distinct rule that fires on the given
// segments, without per-class deduplication or ranking — raw material for
// alternative ordering policies (the E5 ablation).
func (c *Classifier) FiredRules(segments map[rdf.Term][]string) []Rule {
	seen := map[Rule]struct{}{}
	var out []Rule
	for p, segs := range segments {
		segIndex := c.bySegment[p]
		if segIndex == nil {
			continue
		}
		for _, a := range segs {
			for _, r := range segIndex[a] {
				if _, dup := seen[r]; dup {
					continue
				}
				seen[r] = struct{}{}
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// InstanceIndex resolves a class to its instance set in SL, including
// instances of all subclasses, with memoization. It also knows the total
// number of typed instances, the denominator of space-reduction factors.
//
// The index is incrementally maintainable: UpsertInstance and
// RemoveInstance update the sorted per-class slices in place and
// invalidate only the memo entries of the affected classes and their
// ancestors, so a catalog mutation costs O(classes of the item) instead
// of the full NewInstanceIndex pass over every rdf:type triple.
//
// Concurrency: a live index must be confined to one goroutine (or the
// caller's write lock). Snapshot returns a frozen view that is safe for
// unsynchronized concurrent readers while the live index keeps mutating
// — the sharing contract mirrors rdf.Graph.Snapshot.
type InstanceIndex struct {
	// direct maps a class to its sorted direct instances. Slices are
	// treated as immutable values: updates install a fresh slice, so a
	// snapshot sharing the old one never tears.
	direct map[rdf.Term][]rdf.Term
	// types is the reverse map (instance -> its direct classes), the
	// state that makes diff-based upserts possible. Only the live index
	// reads it, so snapshots share it without copying.
	types map[rdf.Term][]rdf.Term
	ont   *ontology.Ontology
	total int
	memo  map[rdf.Term][]rdf.Term
	// frozen marks a snapshot: mutations panic and memo misses compute
	// without writing, keeping concurrent reads safe.
	frozen bool
	// sharedDirect/sharedMemo record that a snapshot still shares the
	// respective map header; the next mutation shallow-copies it first.
	sharedDirect bool
	sharedMemo   bool
}

// NewInstanceIndex scans the rdf:type triples of sl.
func NewInstanceIndex(sl *rdf.Graph, ol *ontology.Ontology) *InstanceIndex {
	ix := &InstanceIndex{
		direct: map[rdf.Term][]rdf.Term{},
		types:  map[rdf.Term][]rdf.Term{},
		ont:    ol,
		memo:   map[rdf.Term][]rdf.Term{},
	}
	sl.Match(rdf.Term{}, rdf.TypeTerm, rdf.Term{}, func(t rdf.Triple) bool {
		if t.O == rdf.ClassTerm {
			return true // class declarations are not instances
		}
		ix.direct[t.O] = append(ix.direct[t.O], t.S)
		ix.types[t.S] = append(ix.types[t.S], t.O)
		return true
	})
	for c := range ix.direct {
		sortTermSlice(ix.direct[c])
	}
	for i := range ix.types {
		sortTermSlice(ix.types[i])
	}
	ix.total = len(ix.types)
	return ix
}

// Total returns the number of distinct typed instances in the catalog.
func (ix *InstanceIndex) Total() int { return ix.total }

// Frozen reports whether ix is an immutable snapshot.
func (ix *InstanceIndex) Frozen() bool { return ix.frozen }

// Snapshot returns a frozen view of the index in O(1): it shares the
// per-class slices and memo with the live index, which copy-on-writes
// whatever a later mutation touches. Reads on the snapshot are safe
// concurrently with live mutations; reads that miss the memo compute
// their result without storing it. Snapshot must be serialized with
// mutations. The snapshot of a snapshot is the snapshot itself.
func (ix *InstanceIndex) Snapshot() *InstanceIndex {
	if ix.frozen {
		return ix
	}
	if ix.ont != nil {
		// The subsumption closure is built lazily on first use, writing
		// shared ontology state; force it now, while still serialized
		// with mutations, so frozen readers that memo-miss never trigger
		// that write concurrently.
		ix.ont.Finalize()
	}
	snap := &InstanceIndex{
		direct: ix.direct,
		ont:    ix.ont,
		total:  ix.total,
		memo:   ix.memo,
		frozen: true,
	}
	ix.sharedDirect, ix.sharedMemo = true, true
	return snap
}

// mutableMaps shallow-copies any map header a snapshot still shares, so
// the caller may write. The slices inside stay shared: updates replace
// them wholesale.
func (ix *InstanceIndex) mutableMaps() {
	if ix.frozen {
		panic("core: mutating a frozen InstanceIndex snapshot")
	}
	if ix.sharedDirect {
		m := make(map[rdf.Term][]rdf.Term, len(ix.direct))
		for k, v := range ix.direct {
			m[k] = v
		}
		ix.direct, ix.sharedDirect = m, false
	}
	if ix.sharedMemo {
		m := make(map[rdf.Term][]rdf.Term, len(ix.memo))
		for k, v := range ix.memo {
			m[k] = v
		}
		ix.memo, ix.sharedMemo = m, false
	}
}

// UpsertInstance sets inst's direct classes (replacing whatever they
// were) and updates the index incrementally: per-class sorted slices are
// patched copy-on-write and only the memo entries of changed classes and
// their ancestors are invalidated. rdf.ClassTerm entries are ignored,
// matching NewInstanceIndex. An empty classes slice removes the
// instance. Reports whether anything changed.
func (ix *InstanceIndex) UpsertInstance(inst rdf.Term, classes []rdf.Term) bool {
	newClasses := make([]rdf.Term, 0, len(classes))
	for _, c := range classes {
		if c == rdf.ClassTerm || c.IsZero() {
			continue
		}
		newClasses = append(newClasses, c)
	}
	sortTermSlice(newClasses)
	newClasses = dedupSorted(newClasses)
	old := ix.types[inst]

	added := diffSorted(newClasses, old)
	removed := diffSorted(old, newClasses)
	if len(added) == 0 && len(removed) == 0 {
		return false
	}
	ix.mutableMaps()
	for _, c := range removed {
		if s := removeSorted(ix.direct[c], inst); len(s) == 0 {
			delete(ix.direct, c)
		} else {
			ix.direct[c] = s
		}
	}
	for _, c := range added {
		ix.direct[c] = insertSorted(ix.direct[c], inst)
	}
	switch {
	case len(old) == 0 && len(newClasses) > 0:
		ix.total++
	case len(old) > 0 && len(newClasses) == 0:
		ix.total--
	}
	if len(newClasses) == 0 {
		delete(ix.types, inst)
	} else {
		ix.types[inst] = newClasses
	}
	for _, c := range added {
		ix.invalidate(c)
	}
	for _, c := range removed {
		ix.invalidate(c)
	}
	return true
}

// RemoveInstance drops inst from the index entirely; equivalent to
// UpsertInstance(inst, nil). Reports whether the instance was present.
func (ix *InstanceIndex) RemoveInstance(inst rdf.Term) bool {
	return ix.UpsertInstance(inst, nil)
}

// invalidate drops the memo entries whose result can depend on class c:
// c itself and every ancestor (Instances includes descendant instances).
func (ix *InstanceIndex) invalidate(c rdf.Term) {
	delete(ix.memo, c)
	if ix.ont == nil {
		return
	}
	for _, a := range ix.ont.Ancestors(c) {
		delete(ix.memo, a)
	}
}

// Instances returns the instances of c, including those of its
// descendants, sorted. The returned slice is shared; callers must not
// mutate it.
func (ix *InstanceIndex) Instances(c rdf.Term) []rdf.Term {
	if got, ok := ix.memo[c]; ok {
		return got
	}
	set := map[rdf.Term]struct{}{}
	for _, i := range ix.direct[c] {
		set[i] = struct{}{}
	}
	if ix.ont != nil {
		for _, d := range ix.ont.Descendants(c) {
			for _, i := range ix.direct[d] {
				set[i] = struct{}{}
			}
		}
	}
	out := make([]rdf.Term, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sortTermSlice(out)
	if !ix.frozen {
		// A frozen snapshot may be read concurrently, so a memo miss is
		// computed per call instead of stored; the live index un-shares
		// its maps before memoizing.
		ix.mutableMaps()
		ix.memo[c] = out
	}
	return out
}

// Count returns |Instances(c)| without exposing the slice.
func (ix *InstanceIndex) Count(c rdf.Term) int { return len(ix.Instances(c)) }

// Contains reports whether inst is an instance of c (or of a descendant
// of c) by binary search over the memoized sorted instance set.
func (ix *InstanceIndex) Contains(c, inst rdf.Term) bool {
	insts := ix.Instances(c)
	i := sort.Search(len(insts), func(k int) bool { return insts[k].Compare(inst) >= 0 })
	return i < len(insts) && insts[i] == inst
}

// Freeze precomputes the instance sets of the given classes so later
// concurrent reads hit only the memo. A no-op on frozen snapshots, which
// never write their memo.
func (ix *InstanceIndex) Freeze(classes []rdf.Term) {
	if ix.frozen {
		return
	}
	ix.mutableMaps()
	for _, c := range classes {
		ix.Instances(c)
	}
}

// insertSorted returns a fresh sorted slice with x inserted (no-op copy
// when already present). The input slice is never written: snapshots may
// share it.
func insertSorted(s []rdf.Term, x rdf.Term) []rdf.Term {
	i := sort.Search(len(s), func(k int) bool { return s[k].Compare(x) >= 0 })
	if i < len(s) && s[i] == x {
		return s
	}
	out := make([]rdf.Term, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// removeSorted returns a fresh sorted slice without x, sharing nothing
// with the input.
func removeSorted(s []rdf.Term, x rdf.Term) []rdf.Term {
	i := sort.Search(len(s), func(k int) bool { return s[k].Compare(x) >= 0 })
	if i >= len(s) || s[i] != x {
		return s
	}
	out := make([]rdf.Term, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(s []rdf.Term) []rdf.Term {
	out := s[:0]
	for i, x := range s {
		if i == 0 || s[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// diffSorted returns the elements of a not present in b; both sorted.
func diffSorted(a, b []rdf.Term) []rdf.Term {
	var out []rdf.Term
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i].Compare(b[j]) < 0:
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}

// Subspace is the linking subspace selected by one rule for one external
// item: the pairs (item, j) for every instance j of the predicted class.
type Subspace struct {
	Item  rdf.Term
	Class rdf.Term
	Rule  Rule
	// Size is the number of local instances in the subspace.
	Size int
}

// SpaceReport aggregates the subspaces of one item and the resulting
// reduction of its linking space.
type SpaceReport struct {
	Item      rdf.Term
	Subspaces []Subspace
	// UnionSize is the number of distinct local candidates across all
	// subspaces — the item's reduced linking space.
	UnionSize int
	// CatalogSize is |SL| (typed instances), the naive per-item space.
	CatalogSize int
}

// ReductionFactor is CatalogSize / UnionSize; 0 when no rule fired
// (UnionSize 0), meaning the item's space is not reduced at all and the
// caller must fall back to the full catalog.
func (sr SpaceReport) ReductionFactor() float64 {
	if sr.UnionSize == 0 {
		return 0
	}
	return float64(sr.CatalogSize) / float64(sr.UnionSize)
}

// Candidates returns the union of local candidates across the item's
// subspaces, sorted.
func (sr *SpaceReport) candidates(ix *InstanceIndex) []rdf.Term {
	set := map[rdf.Term]struct{}{}
	for _, ss := range sr.Subspaces {
		for _, inst := range ix.Instances(ss.Class) {
			set[inst] = struct{}{}
		}
	}
	out := make([]rdf.Term, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sortTermSlice(out)
	return out
}

// Space computes the linking space of one external item: its ranked
// subspaces and the union size. Predictions whose class has no local
// instance yield empty subspaces that still appear in the report (they
// are cheap and the expert may want to see them).
func Space(item rdf.Term, preds []Prediction, ix *InstanceIndex) SpaceReport {
	sr := SpaceReport{Item: item, CatalogSize: ix.Total()}
	union := map[rdf.Term]struct{}{}
	for _, pr := range preds {
		insts := ix.Instances(pr.Class)
		sr.Subspaces = append(sr.Subspaces, Subspace{
			Item:  item,
			Class: pr.Class,
			Rule:  pr.Rule,
			Size:  len(insts),
		})
		for _, i := range insts {
			union[i] = struct{}{}
		}
	}
	sr.UnionSize = len(union)
	return sr
}

// CandidatePairs expands a space report into (external, local) pairs for
// a downstream matcher, deduplicated and sorted.
func CandidatePairs(sr SpaceReport, ix *InstanceIndex) [][2]rdf.Term {
	cands := sr.candidates(ix)
	out := make([][2]rdf.Term, 0, len(cands))
	for _, l := range cands {
		out = append(out, [2]rdf.Term{sr.Item, l})
	}
	return out
}

func sortTermSlice(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
