package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }

func TestRuleMeasuresKnownValues(t *testing.T) {
	// Of 100 training links: premise fires on 20, 15 of them in class,
	// class holds 25 links total.
	r := Rule{
		Property:     iri("pn"),
		Segment:      "ohm",
		Class:        iri("Resistor"),
		PremiseCount: 20,
		JointCount:   15,
		ClassCount:   25,
		TSSize:       100,
	}
	if got := r.Support(); got != 0.15 {
		t.Errorf("Support = %v, want 0.15", got)
	}
	if got := r.Confidence(); got != 0.75 {
		t.Errorf("Confidence = %v, want 0.75", got)
	}
	if got := r.Lift(); got != 3.0 {
		t.Errorf("Lift = %v, want 3.0", got)
	}
	if got := r.Coverage(); got != 0.2 {
		t.Errorf("Coverage = %v, want 0.2", got)
	}
	// Specificity: non-class = 75, premise∧non-class = 5 → 70/75.
	if got := r.Specificity(); math.Abs(got-70.0/75.0) > 1e-12 {
		t.Errorf("Specificity = %v, want %v", got, 70.0/75.0)
	}
}

func TestRuleMeasuresZeroDenominators(t *testing.T) {
	var r Rule
	if r.Support() != 0 || r.Confidence() != 0 || r.Lift() != 0 || r.Coverage() != 0 || r.Specificity() != 0 {
		t.Error("zero rule must not divide by zero")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Property: iri("partNumber"), Segment: "T83", Class: iri("TantalumCapacitor"),
		PremiseCount: 4, JointCount: 4, ClassCount: 8, TSSize: 40,
	}
	s := r.String()
	for _, want := range []string{"partNumber(X,Y)", `subsegment(Y,"T83")`, "TantalumCapacitor(X)", "conf=1.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestRuleLessPaperOrdering(t *testing.T) {
	highConf := Rule{PremiseCount: 10, JointCount: 10, ClassCount: 50, TSSize: 100}
	lowConf := Rule{PremiseCount: 10, JointCount: 8, ClassCount: 10, TSSize: 100}
	if !highConf.Less(lowConf) {
		t.Error("higher confidence must order first even with lower lift")
	}
	// Equal confidence: higher lift (rarer class → smaller subspace) first.
	smallClass := Rule{PremiseCount: 10, JointCount: 10, ClassCount: 10, TSSize: 100}
	bigClass := Rule{PremiseCount: 10, JointCount: 10, ClassCount: 50, TSSize: 100}
	if !smallClass.Less(bigClass) {
		t.Error("equal confidence: higher lift must order first")
	}
	// Deterministic total tie-break.
	a := Rule{Property: iri("p"), Segment: "a", Class: iri("C1"), PremiseCount: 2, JointCount: 2, ClassCount: 2, TSSize: 10}
	b := a
	b.Class = iri("C2")
	if !a.Less(b) || b.Less(a) {
		t.Error("identity tie-break not deterministic")
	}
}

func TestRuleSetSortAndBands(t *testing.T) {
	mk := func(joint, premise, class int) Rule {
		return Rule{PremiseCount: premise, JointCount: joint, ClassCount: class, TSSize: 100, Segment: "s", Property: iri("p"), Class: iri("c")}
	}
	rs := &RuleSet{Rules: []Rule{
		mk(5, 10, 10),  // conf 0.5
		mk(10, 10, 10), // conf 1
		mk(9, 10, 10),  // conf 0.9
		mk(7, 10, 10),  // conf 0.7
	}}
	rs.Sort()
	confs := make([]float64, rs.Len())
	for i, r := range rs.Rules {
		confs[i] = r.Confidence()
	}
	for i := 1; i < len(confs); i++ {
		if confs[i] > confs[i-1] {
			t.Fatalf("not sorted desc: %v", confs)
		}
	}
	if got := rs.ConfidenceBand(1, 2); len(got) != 1 {
		t.Errorf("band [1,2) = %d rules, want 1", len(got))
	}
	if got := rs.ConfidenceBand(0.8, 1); len(got) != 1 {
		t.Errorf("band [0.8,1) = %d rules, want 1", len(got))
	}
	if got := rs.ConfidenceBand(0.4, 0.8); len(got) != 2 {
		t.Errorf("band [0.4,0.8) = %d rules, want 2", len(got))
	}
	if got := rs.MinConfidence(0.7); len(got) != 3 {
		t.Errorf("MinConfidence(0.7) = %d rules, want 3", len(got))
	}
}

func TestRuleSetClassesProperties(t *testing.T) {
	rs := &RuleSet{Rules: []Rule{
		{Property: iri("p1"), Class: iri("A"), Segment: "x"},
		{Property: iri("p1"), Class: iri("B"), Segment: "y"},
		{Property: iri("p2"), Class: iri("A"), Segment: "z"},
	}}
	if got := rs.Classes(); len(got) != 2 {
		t.Errorf("Classes = %v", got)
	}
	if got := rs.Properties(); len(got) != 2 {
		t.Errorf("Properties = %v", got)
	}
}

func TestAverageLift(t *testing.T) {
	if got := AverageLift(nil); got != 0 {
		t.Errorf("AverageLift(nil) = %v", got)
	}
	rules := []Rule{
		{PremiseCount: 10, JointCount: 10, ClassCount: 10, TSSize: 100}, // lift 10
		{PremiseCount: 10, JointCount: 10, ClassCount: 50, TSSize: 100}, // lift 2
	}
	if got := AverageLift(rules); got != 6 {
		t.Errorf("AverageLift = %v, want 6", got)
	}
}

func TestRuleSetSerializationRoundTrip(t *testing.T) {
	rs := &RuleSet{Rules: []Rule{
		{Property: iri("pn"), Segment: "ohm", Class: iri("R"), PremiseCount: 5, JointCount: 4, ClassCount: 6, TSSize: 50},
		{Property: iri("pn"), Segment: "has\ttab and\nnewline", Class: iri("C"), PremiseCount: 3, JointCount: 3, ClassCount: 3, TSSize: 50, Generalized: true},
		{Property: iri("label"), Segment: `back\slash`, Class: iri("D"), PremiseCount: 2, JointCount: 2, ClassCount: 9, TSSize: 50},
	}}
	var buf bytes.Buffer
	if err := rs.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadRules(&buf)
	if err != nil {
		t.Fatalf("ReadRules: %v", err)
	}
	if got.Len() != rs.Len() {
		t.Fatalf("round-trip Len = %d, want %d", got.Len(), rs.Len())
	}
	for i := range rs.Rules {
		if got.Rules[i] != rs.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, got.Rules[i], rs.Rules[i])
		}
	}
}

func TestReadRulesErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad version", "other/9\n"},
		{"bad fields", "linkrules/1\nonly\tthree\tfields\n"},
		{"bad count", "linkrules/1\np\ts\tc\tx\t1\t1\t1\t0\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadRules(strings.NewReader(tc.input)); err == nil {
				t.Error("want error")
			}
		})
	}
}

// Property: serialization round-trips arbitrary segments exactly.
func TestRuleSerializationProperty(t *testing.T) {
	f := func(seg string, premise, joint uint8) bool {
		p := int(premise) + 1
		j := int(joint) % (p + 1)
		rs := &RuleSet{Rules: []Rule{{
			Property: iri("p"), Segment: seg, Class: iri("c"),
			PremiseCount: p, JointCount: j, ClassCount: j + 1, TSSize: 300,
		}}}
		var buf bytes.Buffer
		if err := rs.Write(&buf); err != nil {
			return false
		}
		got, err := ReadRules(&buf)
		if err != nil || got.Len() != 1 {
			return false
		}
		return got.Rules[0] == rs.Rules[0]
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Less is a strict weak ordering (irreflexive, asymmetric).
func TestRuleLessStrictWeakOrdering(t *testing.T) {
	f := func(j1, p1, c1, j2, p2, c2 uint8) bool {
		mk := func(j, p, c uint8) Rule {
			pp := int(p%20) + 1
			jj := int(j) % (pp + 1)
			cc := int(c%20) + 1
			return Rule{Property: iri("p"), Segment: "s", Class: iri("c"),
				PremiseCount: pp, JointCount: jj, ClassCount: cc, TSSize: 50}
		}
		a, b := mk(j1, p1, c1), mk(j2, p2, c2)
		if a.Less(a) || b.Less(b) {
			return false
		}
		return !(a.Less(b) && b.Less(a))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
