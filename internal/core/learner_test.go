package core

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

var (
	pnProp  = iri("partNumber")
	mfProp  = iri("manufacturer")
	clsFFR  = iri("FixedFilmResistor")
	clsWWR  = iri("WirewoundResistor")
	clsTant = iri("TantalumCapacitor")
	clsCer  = iri("CeramicCapacitor")
	clsRes  = iri("Resistor")
	clsCap  = iri("Capacitor")
	clsProd = iri("Product")
)

// testOntology builds Product > {Resistor > {FFR, WWR}, Capacitor > {Tant, Cer}}.
func testOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New()
	o.AddSubClassOf(clsRes, clsProd)
	o.AddSubClassOf(clsCap, clsProd)
	o.AddSubClassOf(clsFFR, clsRes)
	o.AddSubClassOf(clsWWR, clsRes)
	o.AddSubClassOf(clsTant, clsCap)
	o.AddSubClassOf(clsCer, clsCap)
	if err := o.Validate(); err != nil {
		t.Fatalf("ontology: %v", err)
	}
	return o
}

// fixture assembles SE, SL and TS for the hand-checked scenario:
//
//	4 links to FixedFilmResistor; all externals carry segment "ohm",
//	  the first also carries "SMD".
//	3 links to TantalumCapacitor; all carry "T83", two carry "SMD".
//	3 links to CeramicCapacitor; all carry "CER", one carries "SMD".
//
// With th = 0.1 (strict >, so count must be >= 2) the learner must emit
// exactly: ohm⇒FFR (conf 1), T83⇒Tant (conf 1), CER⇒Cer (conf 1),
// SMD⇒Tant (conf 0.5).
func fixture(t testing.TB) (TrainingSet, *rdf.Graph, *rdf.Graph, *ontology.Ontology) {
	t.Helper()
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	var ts TrainingSet
	add := func(id string, pn string, class rdf.Term) {
		ext := iri("ext/" + id)
		loc := iri("loc/" + id)
		se.Add(rdf.T(ext, pnProp, rdf.NewLiteral(pn)))
		se.Add(rdf.T(ext, mfProp, rdf.NewLiteral("ACME Corp")))
		sl.Add(rdf.T(loc, rdf.TypeTerm, class))
		ts.Links = append(ts.Links, Link{External: ext, Local: loc})
	}
	add("f1", "SMD-ohm-100", clsFFR)
	add("f2", "ohm-221", clsFFR)
	add("f3", "ohm-470k", clsFFR)
	add("f4", "ohm-10", clsFFR)
	add("t1", "T83.SMD.1", clsTant)
	add("t2", "T83.SMD.2", clsTant)
	add("t3", "T83.330", clsTant)
	add("c1", "CER-SMD", clsCer)
	add("c2", "CER-104", clsCer)
	add("c3", "CER-203", clsCer)
	return ts, se, sl, testOntology(t)
}

func findRule(t *testing.T, rs RuleSet, seg string, class rdf.Term) Rule {
	t.Helper()
	for _, r := range rs.Rules {
		if r.Segment == seg && r.Class == class {
			return r
		}
	}
	t.Fatalf("rule %q ⇒ %v not found in %v", seg, class, rs.Rules)
	return Rule{}
}

func TestLearnScenario(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.Rules.Len() != 4 {
		t.Fatalf("rules = %d, want 4:\n%v", m.Rules.Len(), m.Rules.Rules)
	}

	ohm := findRule(t, m.Rules, "ohm", clsFFR)
	if ohm.PremiseCount != 4 || ohm.JointCount != 4 || ohm.ClassCount != 4 || ohm.TSSize != 10 {
		t.Errorf("ohm rule counts = %+v", ohm)
	}
	if ohm.Confidence() != 1 || ohm.Lift() != 2.5 || ohm.Support() != 0.4 {
		t.Errorf("ohm measures: conf=%v lift=%v sup=%v", ohm.Confidence(), ohm.Lift(), ohm.Support())
	}

	smd := findRule(t, m.Rules, "SMD", clsTant)
	if smd.PremiseCount != 4 || smd.JointCount != 2 {
		t.Errorf("SMD rule counts = %+v", smd)
	}
	if smd.Confidence() != 0.5 {
		t.Errorf("SMD confidence = %v", smd.Confidence())
	}

	findRule(t, m.Rules, "T83", clsTant)
	findRule(t, m.Rules, "CER", clsCer)

	// Rules are sorted best-first: every conf-1 rule precedes SMD⇒Tant.
	if m.Rules.Rules[len(m.Rules.Rules)-1].Segment != "SMD" {
		t.Errorf("worst rule should be SMD⇒Tant, got %v", m.Rules.Rules[len(m.Rules.Rules)-1])
	}
}

func TestLearnStats(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	st := m.Stats
	if st.TSSize != 10 {
		t.Errorf("TSSize = %d", st.TSSize)
	}
	// Distinct segments: SMD ohm 100 221 470k 10 T83 1 2 330 CER 104 203 = 13
	if st.DistinctSegments != 13 {
		t.Errorf("DistinctSegments = %d, want 13", st.DistinctSegments)
	}
	// Occurrences: 3+2+2+2+3+3+2+2+2+2 segments over the ten values.
	if st.SegmentOccurrences != 23 {
		t.Errorf("SegmentOccurrences = %d, want 23", st.SegmentOccurrences)
	}
	// Frequent premises: ohm(4), SMD(4), T83(3), CER(3).
	if st.FrequentPairs != 4 {
		t.Errorf("FrequentPairs = %d, want 4", st.FrequentPairs)
	}
	// Selected occurrences = occurrences of those four segments = 4+4+3+3.
	if st.SelectedSegmentOccurrences != 14 {
		t.Errorf("SelectedSegmentOccurrences = %d, want 14", st.SelectedSegmentOccurrences)
	}
	if st.CandidateClasses != 3 || st.FrequentClasses != 3 {
		t.Errorf("classes: candidate=%d frequent=%d, want 3/3", st.CandidateClasses, st.FrequentClasses)
	}
	if st.RuleCount != 4 || st.ClassesWithRules != 3 {
		t.Errorf("RuleCount=%d ClassesWithRules=%d", st.RuleCount, st.ClassesWithRules)
	}
	if st.Properties != 1 {
		t.Errorf("Properties = %d", st.Properties)
	}
}

func TestLearnStrictThreshold(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	// th = 0.2 → minCount = 2, strict > → need >= 3. SMD⇒Tant (2) drops;
	// ohm(4), T83(3), CER(3) survive.
	m, err := Learn(LearnerConfig{SupportThreshold: 0.2, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.Rules.Len() != 3 {
		t.Errorf("rules = %d, want 3 (strict > threshold)", m.Rules.Len())
	}
	for _, r := range m.Rules.Rules {
		if r.Segment == "SMD" {
			t.Errorf("SMD rule must be filtered at th=0.2: %v", r)
		}
	}
}

func TestLearnPropertyDiscovery(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	// No Properties given: learner must discover partNumber AND
	// manufacturer. "ACME" and "Corp" appear on all 10 links under
	// manufacturer, frequent but evenly spread: conf per class <= 0.4,
	// still above th → extra rules appear; the point here is discovery.
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.Stats.Properties != 2 {
		t.Errorf("discovered properties = %d, want 2", m.Stats.Properties)
	}
	props := m.Rules.Properties()
	foundMf := false
	for _, p := range props {
		if p == mfProp {
			foundMf = true
		}
	}
	if !foundMf {
		t.Errorf("no rule used discovered property manufacturer; properties in rules: %v", props)
	}
	// Manufacturer rules must rank below the high-confidence partNumber
	// rules — the paper's reason for ignoring manufacturer.
	if best := m.Rules.Rules[0]; best.Property == mfProp {
		t.Errorf("best rule uses manufacturer: %v", best)
	}
}

func TestLearnEmptyTrainingSet(t *testing.T) {
	_, se, sl, ol := fixture(t)
	if _, err := Learn(LearnerConfig{}, TrainingSet{}, se, sl, ol); err != ErrEmptyTrainingSet {
		t.Errorf("err = %v, want ErrEmptyTrainingSet", err)
	}
}

func TestLearnRejectsBadThreshold(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	if _, err := Learn(LearnerConfig{SupportThreshold: 1.5}, ts, se, sl, ol); err == nil {
		t.Error("threshold 1.5 accepted")
	}
	if _, err := Learn(LearnerConfig{SupportThreshold: -0.1}, ts, se, sl, ol); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestLearnRejectsLiteralEndpoints(t *testing.T) {
	_, se, sl, ol := fixture(t)
	bad := TrainingSet{Links: []Link{{External: rdf.NewLiteral("x"), Local: iri("loc/y")}}}
	if _, err := Learn(LearnerConfig{}, bad, se, sl, ol); err == nil {
		t.Error("literal external endpoint accepted")
	}
}

func TestLearnDedupsTS(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	ts.Links = append(ts.Links, ts.Links[0], ts.Links[1]) // duplicates
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.Stats.TSSize != 10 {
		t.Errorf("TSSize = %d, want 10 after dedup", m.Stats.TSSize)
	}
}

func TestLearnMostSpecificClassOnly(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	// Locals additionally typed with ancestor classes: the learner must
	// count only the most-specific class.
	for _, link := range ts.Links {
		for _, c := range []rdf.Term{clsProd, clsRes} {
			sl.Add(rdf.T(link.Local, rdf.TypeTerm, c))
		}
	}
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.ClassFrequency(clsProd) != 0 {
		t.Errorf("Product counted %d times, want 0 (not most specific)", m.ClassFrequency(clsProd))
	}
	if m.ClassFrequency(clsFFR) != 4 {
		t.Errorf("FFR frequency = %d, want 4", m.ClassFrequency(clsFFR))
	}
	// Resistor IS most specific for capacitor links? No — capacitor links
	// have Tant/Cer below Capacitor, and Resistor is incomparable, so it
	// stays. Verify it is counted for the 6 non-resistor links only.
	if got := m.ClassFrequency(clsRes); got != 6 {
		t.Errorf("Resistor frequency = %d, want 6 (kept where incomparable)", got)
	}
}

func TestModelIntrospection(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if m.TrainingSize() != 10 {
		t.Errorf("TrainingSize = %d", m.TrainingSize())
	}
	if got := m.TrainingLink(0); got.External != iri("ext/f1") {
		t.Errorf("TrainingLink(0) = %v", got)
	}
	segs := m.SegmentsOf(0, pnProp)
	if len(segs) != 3 {
		t.Errorf("SegmentsOf(0) = %v", segs)
	}
	if got := m.TrueClasses(0); len(got) != 1 || got[0] != clsFFR {
		t.Errorf("TrueClasses(0) = %v", got)
	}
	if got := m.TrueClasses(99); got != nil {
		t.Errorf("TrueClasses(out of range) = %v", got)
	}
	if got := m.SegmentsOf(0, iri("nope")); len(got) != 0 {
		t.Errorf("SegmentsOf(unknown property) = %v", got)
	}
}

func TestFromGraphToGraphRoundTrip(t *testing.T) {
	ts, _, _, _ := fixture(t)
	g := ts.ToGraph()
	got := FromGraph(g)
	if got.Len() != ts.Len() {
		t.Fatalf("round-trip Len = %d, want %d", got.Len(), ts.Len())
	}
	want := map[Link]struct{}{}
	for _, l := range ts.Links {
		want[l] = struct{}{}
	}
	for _, l := range got.Links {
		if _, ok := want[l]; !ok {
			t.Errorf("unexpected link %v", l)
		}
	}
}
