package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ontology"
	"repro/internal/par"
	"repro/internal/rdf"
	"repro/internal/segment"
)

// Extend incrementally incorporates newly validated links into the
// model: the catalog receives provider deliveries over time, and each
// freshly confirmed reconciliation should sharpen the rules without
// re-splitting the entire history. Extend reuses the retained index for
// existing links, processes only the new ones, and recomputes the rule
// set; the result is exactly what Learn would produce on the union
// (guaranteed by TestExtendEquivalentToRelearn).
//
// Duplicate links (already in the model) are ignored. Extend returns the
// new model; the receiver is unchanged, so callers can keep serving the
// old rules until the swap.
func (m *Model) Extend(newLinks []Link, se, sl *rdf.Graph, ol *ontology.Ontology) (*Model, error) {
	if m.index == nil {
		return nil, fmt.Errorf("core: model has no retained index (was it deserialized?)")
	}
	cfg := m.Config
	seen := make(map[Link]struct{}, len(m.index.facts))
	for _, lf := range m.index.facts {
		seen[lf.link] = struct{}{}
	}

	props := cfg.Properties
	if len(props) == 0 {
		// Property discovery must consider the new externals too.
		old := make([]Link, 0, len(m.index.facts))
		for _, lf := range m.index.facts {
			old = append(old, lf.link)
		}
		all := append(old, newLinks...)
		props = discoverProperties(TrainingSet{Links: all}, se)
	}

	idx := &tsIndex{classOf: map[rdf.Term]int{}}
	segStats := segment.NewStats()
	// Re-register existing facts (segment stats recomputed from retained
	// segment sets would lose duplicate occurrences, so stats for old
	// links replay their stored multiset; we keep it simple and exact by
	// storing per-link occurrence counts at learn time — absent that, we
	// recount from SE which is still O(old) value lookups but avoids
	// re-splitting).
	for _, lf := range m.index.facts {
		idx.facts = append(idx.facts, lf)
		for _, c := range lf.classes {
			idx.classOf[c]++
		}
		for _, p := range props {
			for _, v := range se.Objects(lf.link.External, p) {
				if v.IsLiteral() {
					segStats.ObserveSegments(cfg.Splitter.Split(v.Value))
				}
			}
		}
	}
	added := 0
	for _, link := range newLinks {
		if _, dup := seen[link]; dup {
			continue
		}
		seen[link] = struct{}{}
		if link.External.IsZero() || link.External.IsLiteral() ||
			link.Local.IsZero() || link.Local.IsLiteral() {
			return nil, fmt.Errorf("core: new link %v has non-resource endpoint", link)
		}
		lf := linkFacts{link: link, segs: map[rdf.Term]map[string]struct{}{}}
		for _, p := range props {
			for _, v := range se.Objects(link.External, p) {
				if !v.IsLiteral() {
					continue
				}
				segs := cfg.Splitter.Split(v.Value)
				if len(segs) == 0 {
					continue
				}
				segStats.ObserveSegments(segs)
				set := lf.segs[p]
				if set == nil {
					set = map[string]struct{}{}
					lf.segs[p] = set
				}
				for _, a := range segs {
					set[a] = struct{}{}
				}
			}
		}
		lf.classes = mostSpecificClasses(link.Local, sl, ol)
		for _, c := range lf.classes {
			idx.classOf[c]++
		}
		idx.facts = append(idx.facts, lf)
		added++
	}

	return rebuildFromIndex(context.Background(), cfg, props, idx, segStats)
}

// mergeCounts folds the right counting map into the left, the merge step
// of the parallel counting passes. Addition commutes, so the merged map
// equals the serial count at every worker count.
func mergeCounts[K comparable](a, b map[K]int) map[K]int {
	for k, n := range b {
		a[k] += n
	}
	return a
}

// rebuildFromIndex reruns the counting passes of Algorithm 1 over an
// existing index. Shared by Learn (via the initial build) and Extend.
// The two O(|TS| x segments) counting passes fan out over cfg.Workers
// via par.ReduceChunks with per-chunk count maps merged in chunk order.
func rebuildFromIndex(ctx context.Context, cfg LearnerConfig, props []rdf.Term, idx *tsIndex, segStats *segment.Stats) (*Model, error) {
	n := len(idx.facts)
	if n == 0 {
		return nil, ErrEmptyTrainingSet
	}
	minCount := cfg.SupportThreshold * float64(n)

	premiseCount, err := par.ReduceChunks(ctx, cfg.Workers, 0, idx.facts,
		func() map[propertySegment]int { return map[propertySegment]int{} },
		func(acc map[propertySegment]int, lf linkFacts) map[propertySegment]int {
			for p, set := range lf.segs {
				for a := range set {
					acc[propertySegment{p, a}]++
				}
			}
			return acc
		},
		mergeCounts[propertySegment])
	if err != nil {
		return nil, err
	}
	frequentPremise := map[propertySegment]int{}
	selectedSegments := map[string]struct{}{}
	for ps, cnt := range premiseCount {
		if float64(cnt) > minCount {
			frequentPremise[ps] = cnt
			selectedSegments[ps.segment] = struct{}{}
		}
	}
	frequentClass := map[rdf.Term]int{}
	for c, cnt := range idx.classOf {
		if float64(cnt) > minCount {
			frequentClass[c] = cnt
		}
	}
	// frequentPremise and frequentClass are complete and read-only from
	// here on, so the conjunction pass can share them across workers.
	jointCount, err := par.ReduceChunks(ctx, cfg.Workers, 0, idx.facts,
		func() map[conjunction]int { return map[conjunction]int{} },
		func(acc map[conjunction]int, lf linkFacts) map[conjunction]int {
			for p, set := range lf.segs {
				for a := range set {
					ps := propertySegment{p, a}
					if _, ok := frequentPremise[ps]; !ok {
						continue
					}
					for _, c := range lf.classes {
						if _, ok := frequentClass[c]; !ok {
							continue
						}
						acc[conjunction{ps, c}]++
					}
				}
			}
			return acc
		},
		mergeCounts[conjunction])
	if err != nil {
		return nil, err
	}
	rules := RuleSet{}
	classesWithRules := map[rdf.Term]struct{}{}
	for conj, cnt := range jointCount {
		if float64(cnt) <= minCount {
			continue
		}
		rules.Rules = append(rules.Rules, Rule{
			Property:     conj.ps.property,
			Segment:      conj.ps.segment,
			Class:        conj.c,
			PremiseCount: frequentPremise[conj.ps],
			JointCount:   cnt,
			ClassCount:   idx.classOf[conj.c],
			TSSize:       n,
		})
		classesWithRules[conj.c] = struct{}{}
	}
	rules.Sort()

	selectedOcc := 0
	for seg := range selectedSegments {
		selectedOcc += segStats.Count(seg)
	}
	return &Model{
		Rules:  rules,
		Config: cfg,
		Stats: LearnStats{
			TSSize:                     n,
			Properties:                 len(props),
			DistinctSegments:           segStats.Distinct(),
			SegmentOccurrences:         segStats.Occurrences(),
			SelectedSegmentOccurrences: selectedOcc,
			FrequentPairs:              len(frequentPremise),
			CandidateClasses:           len(idx.classOf),
			FrequentClasses:            len(frequentClass),
			RuleCount:                  rules.Len(),
			ClassesWithRules:           len(classesWithRules),
		},
		index: idx,
	}, nil
}

// sortLinks orders links deterministically, used by tests comparing
// models.
func sortLinks(ls []Link) {
	sort.Slice(ls, func(i, j int) bool {
		if c := ls[i].External.Compare(ls[j].External); c != 0 {
			return c < 0
		}
		return ls[i].Local.Compare(ls[j].Local) < 0
	})
}
